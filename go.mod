module hgpart

go 1.22
