package hgpart

import (
	"bytes"
	"testing"
)

// TestEndToEndPipeline drives the full library surface the way a downstream
// user would: generate an instance, round-trip it through every file
// format, partition it with every engine, evaluate every objective, refine
// k-way, and place it — asserting cross-component consistency at each step.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Generate.
	spec := Scaled(MustIBMProfile(3), 0.04)
	h := MustGenerate(spec)
	stats := ComputeStats(h)
	if stats.Vertices != h.NumVertices() {
		t.Fatal("stats disagree with instance")
	}

	// 2. Round-trip through every format; structural invariants must hold.
	type roundTrip struct {
		name string
		run  func() (*Hypergraph, error)
	}
	var hgr, netd, are, patoh, nodes, nets bytes.Buffer
	if err := WriteHGR(&hgr, h); err != nil {
		t.Fatal(err)
	}
	if err := WriteNetD(&netd, h); err != nil {
		t.Fatal(err)
	}
	if err := WriteAre(&are, h); err != nil {
		t.Fatal(err)
	}
	if err := WritePaToH(&patoh, h); err != nil {
		t.Fatal(err)
	}
	if err := WriteBookshelf(&nodes, &nets, h, nil); err != nil {
		t.Fatal(err)
	}
	for _, rt := range []roundTrip{
		{"hgr", func() (*Hypergraph, error) { return ParseHGR(&hgr, "rt") }},
		{"netd", func() (*Hypergraph, error) { return ParseNetD(&netd, &are, "rt") }},
		{"patoh", func() (*Hypergraph, error) { return ParsePaToH(&patoh, "rt") }},
		{"bookshelf", func() (*Hypergraph, error) {
			d, err := ParseBookshelf(&nodes, &nets, "rt")
			if err != nil {
				return nil, err
			}
			return d.H, nil
		}},
	} {
		back, err := rt.run()
		if err != nil {
			t.Fatalf("%s: %v", rt.name, err)
		}
		if back.NumVertices() != h.NumVertices() || back.NumEdges() != h.NumEdges() ||
			back.NumPins() != h.NumPins() || back.TotalVertexWeight() != h.TotalVertexWeight() {
			t.Fatalf("%s round trip broke structure", rt.name)
		}
	}

	// 3. Partition with every engine; all must be legal and consistent.
	bal := NewBalance(h.TotalVertexWeight(), 0.05)
	cuts := map[string]int64{}
	for _, eng := range []struct {
		name string
		kind EngineKind
	}{{"ml", EngineML}, {"flat", EngineFlatFM}, {"clip", EngineFlatCLIP}} {
		p, res, err := Bisect(h, BisectOptions{Tolerance: 0.05, Starts: 2, Engine: eng.kind, Seed: 17})
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if !p.Legal(bal) || p.Cut() != p.CutFromScratch() || res.Cut != p.Cut() {
			t.Fatalf("%s: inconsistent result", eng.name)
		}
		cuts[eng.name] = res.Cut
		// The 2-way cut must equal the objective package's view.
		parts := make(Assignment, h.NumVertices())
		for v := 0; v < h.NumVertices(); v++ {
			parts[v] = int32(p.Side(int32(v)))
		}
		if CutSize(h, parts) != res.Cut {
			t.Fatalf("%s: objective.CutSize disagrees", eng.name)
		}
	}
	// Spectral too.
	if _, sres, err := SpectralBisect(h, bal, SpectralOptions{Seed: 18}); err != nil {
		t.Fatal(err)
	} else if sres.Cut <= 0 {
		t.Fatal("spectral returned nonpositive cut")
	}

	// 4. K-way + direct refinement + objectives.
	res, err := PartitionKWay(h, 4, KWayConfig{Tolerance: 0.1, DirectRefine: true}, NewRNG(19))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Parts.Validate(4); err != nil {
		t.Fatal(err)
	}
	if SumOfExternalDegrees(h, res.Parts) != ConnectivityMinusOne(h, res.Parts)+CutSize(h, res.Parts) {
		t.Fatal("SOED identity broken end-to-end")
	}
	init, final, err := RefineKWay(h, res.Parts, 4, KWayRefineConfig{Tolerance: 0.15}, NewRNG(20))
	if err != nil {
		t.Fatal(err)
	}
	if final > init {
		t.Fatal("k-way refinement worsened")
	}

	// 5. Place (both modes) and export .pl.
	for _, quad := range []bool{false, true} {
		pl, err := Place(h, PlacerConfig{Seed: 21, Quadrisection: quad})
		if err != nil {
			t.Fatal(err)
		}
		if pl.HPWL(h) <= 0 {
			t.Fatal("zero HPWL")
		}
		var plBuf bytes.Buffer
		if err := WriteBookshelfPl(&plBuf, pl.X, pl.Y, 1000); err != nil {
			t.Fatal(err)
		}
		if plBuf.Len() == 0 {
			t.Fatal("empty .pl")
		}
	}

	// 6. Instance realism diagnostic runs end to end.
	if _, err := RentAnalyze(h, RentOptions{}); err != nil {
		t.Fatalf("rent: %v", err)
	}
}
