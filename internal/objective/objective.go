// Package objective evaluates partitioning objective functions over k-way
// partitions. The paper's problem statement (§1) names cut size as the
// standard objective and cites ratio cut (Wei & Cheng), scaled cost (Chan,
// Schlag, Zien) and absorption (Sun & Sechen) as alternatives; this package
// implements all of them so experiments can report any objective over the
// same partitioning solutions (cf. footnote 2 of the paper: gain-update
// shortcuts that are "netcut- and two-way specific" do not generalize — the
// evaluation side must handle general objectives even when the optimizer
// does not).
package objective

import (
	"fmt"

	"hgpart/internal/hypergraph"
)

// Assignment is a k-way partition: part index per vertex.
type Assignment []int32

// Validate checks that every vertex is assigned a part in [0, k).
func (a Assignment) Validate(k int) error {
	for v, p := range a {
		if p < 0 || int(p) >= k {
			return fmt.Errorf("objective: vertex %d assigned part %d outside [0,%d)", v, p, k)
		}
	}
	return nil
}

// PartWeights returns the total vertex weight per part.
func PartWeights(h *hypergraph.Hypergraph, a Assignment, k int) []int64 {
	w := make([]int64, k)
	for v := 0; v < h.NumVertices(); v++ {
		w[a[v]] += h.VertexWeight(int32(v))
	}
	return w
}

// spannedParts returns how many distinct parts net e touches (its
// connectivity lambda).
func spannedParts(h *hypergraph.Hypergraph, a Assignment, e int32, scratch map[int32]struct{}) int {
	for p := range scratch {
		delete(scratch, p)
	}
	for _, v := range h.Pins(e) {
		scratch[a[v]] = struct{}{}
	}
	return len(scratch)
}

// CutSize returns the weighted number of nets spanning more than one part —
// the paper's standard objective.
func CutSize(h *hypergraph.Hypergraph, a Assignment) int64 {
	var cut int64
	scratch := make(map[int32]struct{}, 8)
	for e := 0; e < h.NumEdges(); e++ {
		if spannedParts(h, a, int32(e), scratch) > 1 {
			cut += h.EdgeWeight(int32(e))
		}
	}
	return cut
}

// ConnectivityMinusOne returns sum over nets of w(e) * (lambda(e) - 1), the
// k-way objective minimized by hMETIS-Kway and KaHyPar ("SOED - cut").
func ConnectivityMinusOne(h *hypergraph.Hypergraph, a Assignment) int64 {
	var total int64
	scratch := make(map[int32]struct{}, 8)
	for e := 0; e < h.NumEdges(); e++ {
		lambda := spannedParts(h, a, int32(e), scratch)
		total += h.EdgeWeight(int32(e)) * int64(lambda-1)
	}
	return total
}

// SumOfExternalDegrees returns sum over cut nets of w(e) * lambda(e)
// (SOED, Sanchis).
func SumOfExternalDegrees(h *hypergraph.Hypergraph, a Assignment) int64 {
	var total int64
	scratch := make(map[int32]struct{}, 8)
	for e := 0; e < h.NumEdges(); e++ {
		lambda := spannedParts(h, a, int32(e), scratch)
		if lambda > 1 {
			total += h.EdgeWeight(int32(e)) * int64(lambda)
		}
	}
	return total
}

// RatioCut returns cut / (|P0|_w * |P1|_w) for a 2-way partition (Wei &
// Cheng, ICCAD'89). It rewards balanced small cuts without a hard balance
// constraint. Returns +Inf-like large value when a side is empty.
func RatioCut(h *hypergraph.Hypergraph, a Assignment) float64 {
	w := PartWeights(h, a, 2)
	cut := CutSize(h, a)
	if w[0] == 0 || w[1] == 0 {
		return float64(cut) * 1e18
	}
	return float64(cut) / (float64(w[0]) * float64(w[1]))
}

// ScaledCost returns the Chan-Schlag-Zien scaled cost,
//
//	1/(n(k-1)) * sum_p cut(p)/w(p)
//
// where cut(p) is the weight of nets crossing part p's boundary.
func ScaledCost(h *hypergraph.Hypergraph, a Assignment, k int) float64 {
	partCut := make([]int64, k)
	scratch := make(map[int32]struct{}, 8)
	for e := 0; e < h.NumEdges(); e++ {
		for p := range scratch {
			delete(scratch, p)
		}
		for _, v := range h.Pins(int32(e)) {
			scratch[a[v]] = struct{}{}
		}
		if len(scratch) > 1 {
			for p := range scratch {
				partCut[p] += h.EdgeWeight(int32(e))
			}
		}
	}
	w := PartWeights(h, a, k)
	var sum float64
	for p := 0; p < k; p++ {
		if w[p] == 0 {
			return 1e18
		}
		sum += float64(partCut[p]) / float64(w[p])
	}
	n := float64(h.NumVertices())
	return sum / (n * float64(k-1))
}

// Absorption returns the Sun-Sechen absorption metric,
//
//	sum_e sum_p (pins(e,p)-1)/(|e|-1) * w(e)  over parts p with pins(e,p)>0,
//
// which rewards keeping large fractions of each net together (higher is
// better, unlike the cut objectives).
func Absorption(h *hypergraph.Hypergraph, a Assignment, k int) float64 {
	counts := make([]int32, k)
	var total float64
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.Pins(int32(e))
		if len(pins) < 2 {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range pins {
			counts[a[v]]++
		}
		w := float64(h.EdgeWeight(int32(e)))
		denom := float64(len(pins) - 1)
		for p := 0; p < k; p++ {
			if counts[p] > 0 {
				total += w * float64(counts[p]-1) / denom
			}
		}
	}
	return total
}

// Imbalance returns the relative deviation of the heaviest part from the
// perfectly balanced weight: max_p w(p) / (total/k) - 1.
func Imbalance(h *hypergraph.Hypergraph, a Assignment, k int) float64 {
	w := PartWeights(h, a, k)
	var maxW int64
	for _, x := range w {
		if x > maxW {
			maxW = x
		}
	}
	ideal := float64(h.TotalVertexWeight()) / float64(k)
	if ideal == 0 {
		return 0
	}
	return float64(maxW)/ideal - 1
}
