package objective

import (
	"math"
	"testing"

	"hgpart/internal/hypergraph"
)

// fixture: 6 vertices, 4 nets.
//
//	n0={0,1} w1; n1={1,2,3} w2; n2={3,4,5} w1; n3={0,5} w3
func fixture(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(6, 4)
	b.AddVertices(6, 1)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 1, 2, 3)
	b.AddEdge(1, 3, 4, 5)
	b.AddEdge(3, 0, 5)
	return b.MustBuild()
}

func TestValidate(t *testing.T) {
	a := Assignment{0, 1, 2}
	if err := a.Validate(3); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(2); err == nil {
		t.Fatal("part 2 accepted with k=2")
	}
	if err := (Assignment{-1}).Validate(2); err == nil {
		t.Fatal("negative part accepted")
	}
}

func TestPartWeights(t *testing.T) {
	h := fixture(t)
	a := Assignment{0, 0, 1, 1, 2, 2}
	w := PartWeights(h, a, 3)
	if w[0] != 2 || w[1] != 2 || w[2] != 2 {
		t.Fatalf("weights %v", w)
	}
}

func TestCutSizeTwoWay(t *testing.T) {
	h := fixture(t)
	// {0,1,2} vs {3,4,5}: n1 cut (w2), n3 cut (w3); n0, n2 internal.
	a := Assignment{0, 0, 0, 1, 1, 1}
	if got := CutSize(h, a); got != 5 {
		t.Fatalf("cut %d, want 5", got)
	}
}

func TestCutSizeAllTogether(t *testing.T) {
	h := fixture(t)
	a := Assignment{0, 0, 0, 0, 0, 0}
	if CutSize(h, a) != 0 {
		t.Fatal("single-part cut must be 0")
	}
}

func TestConnectivityMinusOne(t *testing.T) {
	h := fixture(t)
	// Three parts {0,1},{2,3},{4,5}:
	// n0 lambda=1 (0); n1 lambda=2 (+2); n2 lambda=2 (+1); n3 lambda=2 (+3).
	a := Assignment{0, 0, 1, 1, 2, 2}
	if got := ConnectivityMinusOne(h, a); got != 6 {
		t.Fatalf("(lambda-1) sum %d, want 6", got)
	}
	// For 2-way partitions, connectivity-1 equals cut size.
	b2 := Assignment{0, 0, 0, 1, 1, 1}
	if ConnectivityMinusOne(h, b2) != CutSize(h, b2) {
		t.Fatal("2-way connectivity-1 must equal cut")
	}
}

func TestSumOfExternalDegrees(t *testing.T) {
	h := fixture(t)
	a := Assignment{0, 0, 1, 1, 2, 2}
	// Cut nets: n1 lambda=2 w2 -> 4; n2 lambda=2 w1 -> 2; n3 lambda=2 w3 -> 6.
	if got := SumOfExternalDegrees(h, a); got != 12 {
		t.Fatalf("SOED %d, want 12", got)
	}
	// SOED = (lambda-1) + cut for any partition.
	if SumOfExternalDegrees(h, a) != ConnectivityMinusOne(h, a)+CutSize(h, a) {
		t.Fatal("SOED identity broken")
	}
}

func TestRatioCut(t *testing.T) {
	h := fixture(t)
	a := Assignment{0, 0, 0, 1, 1, 1}
	want := 5.0 / (3.0 * 3.0)
	if got := RatioCut(h, a); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio cut %v, want %v", got, want)
	}
	// Empty side is heavily penalized.
	empty := Assignment{0, 0, 0, 0, 0, 0}
	if RatioCut(h, empty) < 0 {
		t.Fatal("empty side not penalized")
	}
}

func TestScaledCost(t *testing.T) {
	h := fixture(t)
	a := Assignment{0, 0, 0, 1, 1, 1}
	// cut(p)=5 for both parts, w(p)=3; n=6, k=2.
	want := (5.0/3 + 5.0/3) / (6 * 1)
	if got := ScaledCost(h, a, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled cost %v, want %v", got, want)
	}
	if ScaledCost(h, Assignment{0, 0, 0, 0, 0, 0}, 2) < 1e17 {
		t.Fatal("empty part not penalized")
	}
}

func TestAbsorption(t *testing.T) {
	h := fixture(t)
	all := Assignment{0, 0, 0, 0, 0, 0}
	// Full absorption: each net contributes its full weight.
	want := 1.0 + 2 + 1 + 3
	if got := Absorption(h, all, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("full absorption %v, want %v", got, want)
	}
	// Any split absorbs strictly less.
	split := Assignment{0, 0, 0, 1, 1, 1}
	if Absorption(h, split, 2) >= want {
		t.Fatal("split should absorb less than whole")
	}
}

func TestImbalance(t *testing.T) {
	h := fixture(t)
	if got := Imbalance(h, Assignment{0, 0, 0, 1, 1, 1}, 2); math.Abs(got) > 1e-12 {
		t.Fatalf("balanced split imbalance %v", got)
	}
	// 5-1 split: max part 5 vs ideal 3 -> 2/3.
	if got := Imbalance(h, Assignment{0, 0, 0, 0, 0, 1}, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("imbalance %v, want 2/3", got)
	}
}
