package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hgpart/internal/hypergraph"
)

// ParsePaToH reads a PaToH-format hypergraph:
//
//	<base> <numCells> <numNets> <numPins> [weightScheme]
//	one line per net: [weight if scheme 2 or 3] pin pin ...
//	if scheme 1 or 3: a final line (or lines) of numCells cell weights
//
// base is 0 or 1 (index origin). weightScheme: 0 = unweighted,
// 1 = cell weights, 2 = net weights, 3 = both. '%' lines are comments.
//
// All failures are *ParseError values with Format "patoh".
func ParsePaToH(r io.Reader, name string) (*hypergraph.Hypergraph, error) {
	h, err := parsePaToH(r, name)
	return h, wrapParse("patoh", name, err)
}

func parsePaToH(r io.Reader, name string) (*hypergraph.Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	var tokens []string
	next := func() (string, error) {
		for len(tokens) == 0 {
			if !sc.Scan() {
				if err := sc.Err(); err != nil {
					return "", err
				}
				return "", io.EOF
			}
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			tokens = strings.Fields(line)
		}
		t := tokens[0]
		tokens = tokens[1:]
		return t, nil
	}
	nextInt := func(what string) (int, error) {
		t, err := next()
		if err != nil {
			return 0, fmt.Errorf("netlist: patoh %s: %w", what, err)
		}
		v, err := strconv.Atoi(t)
		if err != nil {
			return 0, fmt.Errorf("netlist: patoh %s: %q not an integer", what, t)
		}
		return v, nil
	}

	// Header line is consumed as a whole so net lines stay line-oriented
	// afterwards? PaToH is whitespace-oriented; nets are terminated by
	// counts, not newlines — but pin counts are not stored per net in the
	// header. The format is line-oriented per net, so re-scan by lines.
	base, err := nextInt("base")
	if err != nil {
		return nil, err
	}
	if base != 0 && base != 1 {
		return nil, fmt.Errorf("netlist: patoh base %d (want 0 or 1)", base)
	}
	numCells, err := nextInt("cell count")
	if err != nil {
		return nil, err
	}
	numNets, err := nextInt("net count")
	if err != nil {
		return nil, err
	}
	numPins, err := nextInt("pin count")
	if err != nil {
		return nil, err
	}
	if err := checkDeclared("patoh", "cell count", numCells); err != nil {
		return nil, err
	}
	if err := checkDeclared("patoh", "net count", numNets); err != nil {
		return nil, err
	}
	if err := checkDeclared("patoh", "pin count", numPins); err != nil {
		return nil, err
	}
	scheme := 0
	if len(tokens) > 0 {
		scheme, err = nextInt("weight scheme")
		if err != nil {
			return nil, err
		}
	}
	if scheme < 0 || scheme > 3 {
		return nil, fmt.Errorf("netlist: patoh weight scheme %d", scheme)
	}
	netWeighted := scheme == 2 || scheme == 3
	cellWeighted := scheme == 1 || scheme == 3

	b := hypergraph.NewBuilder(preallocCap(numCells), preallocCap(numNets))
	b.Name = name
	b.AddVertices(numCells, 1)

	// Nets are line-oriented: flush any residual tokens (none expected) and
	// read one line per net.
	readNetLine := func() ([]string, error) {
		if len(tokens) > 0 {
			t := tokens
			tokens = nil
			return t, nil
		}
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	pinsSeen := 0
	for e := 0; e < numNets; e++ {
		fields, err := readNetLine()
		if err != nil {
			return nil, fmt.Errorf("netlist: patoh net %d: %w", e, err)
		}
		w := int64(1)
		idx := 0
		if netWeighted {
			w, err = strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: patoh net %d weight: %w", e, err)
			}
			idx = 1
		}
		pins := make([]int32, 0, len(fields)-idx)
		for _, f := range fields[idx:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("netlist: patoh net %d pin %q: %w", e, f, err)
			}
			v -= base
			if v < 0 || v >= numCells {
				return nil, fmt.Errorf("netlist: patoh net %d pin %d out of range", e, v)
			}
			pins = append(pins, int32(v))
			pinsSeen++
		}
		b.AddEdge(w, pins...)
	}
	if pinsSeen != numPins {
		return nil, fmt.Errorf("netlist: patoh declares %d pins, found %d", numPins, pinsSeen)
	}
	if cellWeighted {
		for v := 0; v < numCells; v++ {
			w, err := nextInt(fmt.Sprintf("cell %d weight", v))
			if err != nil {
				return nil, err
			}
			b.SetVertexWeight(int32(v), int64(w))
		}
	}
	return b.Build()
}

// WritePaToH writes h in PaToH format with both net and cell weights
// (scheme 3, base 0).
func WritePaToH(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% %s\n", h.Name)
	fmt.Fprintf(bw, "0 %d %d %d 3\n", h.NumVertices(), h.NumEdges(), h.NumPins())
	for e := 0; e < h.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d", h.EdgeWeight(int32(e)))
		for _, v := range h.Pins(int32(e)) {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw)
	}
	for v := 0; v < h.NumVertices(); v++ {
		if v > 0 {
			fmt.Fprint(bw, " ")
		}
		fmt.Fprintf(bw, "%d", h.VertexWeight(int32(v)))
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}
