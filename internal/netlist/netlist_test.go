package netlist

import (
	"bytes"
	"strings"
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
)

func sample(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "rt", Cells: 200, Nets: 220, AvgNetSize: 3.4,
		NumMacros: 3, MaxMacroFrac: 0.04, NumGlobalNets: 1,
		GlobalNetFrac: 0.02, Locality: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func equalGraphs(t *testing.T, a, b *hypergraph.Hypergraph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() || a.NumPins() != b.NumPins() {
		t.Fatalf("shape differs: %d/%d/%d vs %d/%d/%d",
			a.NumVertices(), a.NumEdges(), a.NumPins(),
			b.NumVertices(), b.NumEdges(), b.NumPins())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.VertexWeight(int32(v)) != b.VertexWeight(int32(v)) {
			t.Fatalf("vertex %d weight differs", v)
		}
	}
	for e := 0; e < a.NumEdges(); e++ {
		if a.EdgeWeight(int32(e)) != b.EdgeWeight(int32(e)) {
			t.Fatalf("edge %d weight differs", e)
		}
		pa, pb := a.Pins(int32(e)), b.Pins(int32(e))
		if len(pa) != len(pb) {
			t.Fatalf("edge %d size differs", e)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("edge %d pin %d differs", e, i)
			}
		}
	}
}

func TestHGRRoundTrip(t *testing.T) {
	h := sample(t)
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ParseHGR(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, h, back)
}

func TestHGRUnweighted(t *testing.T) {
	in := `% a comment
3 4
1 2
2 3 4
1 4
`
	h, err := ParseHGR(strings.NewReader(in), "u")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 || h.NumEdges() != 3 {
		t.Fatalf("shape %d/%d", h.NumVertices(), h.NumEdges())
	}
	if h.VertexWeight(0) != 1 || h.EdgeWeight(0) != 1 {
		t.Fatal("default weights must be 1")
	}
	// Pins are converted to 0-based.
	p := h.Pins(0)
	if p[0] != 0 || p[1] != 1 {
		t.Fatalf("pins %v", p)
	}
}

func TestHGREdgeWeightsOnly(t *testing.T) {
	in := "2 3 1\n5 1 2\n7 2 3\n"
	h, err := ParseHGR(strings.NewReader(in), "w")
	if err != nil {
		t.Fatal(err)
	}
	if h.EdgeWeight(0) != 5 || h.EdgeWeight(1) != 7 {
		t.Fatal("edge weights not parsed")
	}
}

func TestHGRVertexWeightsOnly(t *testing.T) {
	in := "1 3 10\n1 2 3\n4\n5\n6\n"
	h, err := ParseHGR(strings.NewReader(in), "vw")
	if err != nil {
		t.Fatal(err)
	}
	if h.VertexWeight(0) != 4 || h.VertexWeight(2) != 6 {
		t.Fatal("vertex weights not parsed")
	}
}

func TestHGRErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"x 3\n",               // bad edge count
		"1\n",                 // short header
		"1 2\n1 5\n",          // pin out of range
		"2 3\n1 2\n",          // missing edge line
		"1 3 10\n1 2\n4\n5\n", // missing vertex weight line
	}
	for i, in := range cases {
		if _, err := ParseHGR(strings.NewReader(in), "bad"); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestNetDRoundTrip(t *testing.T) {
	h := sample(t)
	var nets, ares bytes.Buffer
	if err := WriteNetD(&nets, h); err != nil {
		t.Fatal(err)
	}
	if err := WriteAre(&ares, h); err != nil {
		t.Fatal(err)
	}
	back, err := ParseNetD(&nets, &ares, "rt")
	if err != nil {
		t.Fatal(err)
	}
	// Module order in the file is first-appearance order, not index order,
	// so compare invariants rather than exact pin identities.
	if back.NumVertices() != h.NumVertices() || back.NumEdges() != h.NumEdges() ||
		back.NumPins() != h.NumPins() {
		t.Fatalf("shape differs: %d/%d/%d vs %d/%d/%d",
			back.NumVertices(), back.NumEdges(), back.NumPins(),
			h.NumVertices(), h.NumEdges(), h.NumPins())
	}
	if back.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Fatal("total area differs after round trip")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Net size multiset must be preserved.
	sizes := func(g *hypergraph.Hypergraph) map[int]int {
		m := map[int]int{}
		for e := 0; e < g.NumEdges(); e++ {
			m[g.EdgeSize(int32(e))]++
		}
		return m
	}
	sa, sb := sizes(h), sizes(back)
	for k, v := range sa {
		if sb[k] != v {
			t.Fatalf("net size %d count differs: %d vs %d", k, v, sb[k])
		}
	}
}

func TestNetDUnitAreasWhenNoAreFile(t *testing.T) {
	h := sample(t)
	var nets bytes.Buffer
	if err := WriteNetD(&nets, h); err != nil {
		t.Fatal(err)
	}
	back, err := ParseNetD(&nets, nil, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalVertexWeight() != int64(back.NumVertices()) {
		t.Fatal("missing .are should give unit areas")
	}
}

func TestNetDParsesCanonicalForm(t *testing.T) {
	in := `0
7
2
4
4
a0 s O
a1 l I
p1 l B
a2 s I
a1 l O
p1 l B
a0 l B
`
	h, err := ParseNetD(strings.NewReader(in), nil, "c")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 || h.NumEdges() != 2 {
		t.Fatalf("shape %d/%d", h.NumVertices(), h.NumEdges())
	}
	if h.EdgeSize(0) != 3 || h.EdgeSize(1) != 4 {
		t.Fatalf("net sizes %d/%d", h.EdgeSize(0), h.EdgeSize(1))
	}
}

func TestNetDErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"badmagic", "1\n2\n1\n2\n2\na0 s\na1 l\n"},
		{"pinmismatch", "0\n5\n1\n2\n2\na0 s\na1 l\n"},
		{"badflag", "0\n2\n1\n2\n2\na0 s\na1 x\n"},
		{"toomanymodules", "0\n3\n1\n2\n2\na0 s\na1 l\na2 l\n"},
		{"shortline", "0\n2\n1\n2\n2\na0\na1 l\n"},
	}
	for _, c := range cases {
		if _, err := ParseNetD(strings.NewReader(c.in), nil, c.name); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
}

func TestAreFileErrors(t *testing.T) {
	nets := "0\n2\n1\n2\n2\na0 s\na1 l\n"
	if _, err := ParseNetD(strings.NewReader(nets), strings.NewReader("a0 x\n"), "b"); err == nil {
		t.Fatal("bad area accepted")
	}
	if _, err := ParseNetD(strings.NewReader(nets), strings.NewReader("a0 1 2 3\n"), "b"); err == nil {
		t.Fatal("malformed are line accepted")
	}
}
