package netlist

import "errors"

// ParseError is the typed failure every parser in this package returns: it
// records which format was being read and which input it came from, so
// callers that accept arbitrary user bytes — the CLI boundary and the
// hgserved HTTP service — can distinguish "the user handed us a bad file"
// (a client error, exit code 2 / HTTP 400) from an internal fault without
// string-matching messages.
//
// Error() passes the underlying message through unchanged (every message
// already carries the "netlist:" prefix and the offending line), so wrapping
// is invisible to humans and to golden output; Unwrap exposes the cause to
// errors.Is/As.
type ParseError struct {
	// Format is the input format: "hgr", "netD", "patoh" or "bookshelf".
	Format string
	// Name is the input name the caller supplied (usually a file path).
	Name string
	// Err is the underlying parse failure.
	Err error
}

func (e *ParseError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying cause.
func (e *ParseError) Unwrap() error { return e.Err }

// AsParseError unwraps err to a *ParseError, if it is one.
func AsParseError(err error) (*ParseError, bool) {
	var pe *ParseError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// wrapParse tags a parser failure with its format and input name. A nil err
// passes through untouched, so parser success paths need no special casing.
func wrapParse(format, name string, err error) error {
	if err == nil {
		return nil
	}
	return &ParseError{Format: format, Name: name, Err: err}
}
