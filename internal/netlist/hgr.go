// Package netlist reads and writes the two file formats relevant to the
// paper's experimental context:
//
//   - the hMETIS .hgr hypergraph format (Karypis & Kumar), the lingua
//     franca of partitioning research, and
//   - the ISPD98 benchmark-suite .netD/.net + .are netlist format (Alpert),
//     in which the IBM instances the paper evaluates were distributed.
//
// With these parsers the experiment drivers run unchanged on the real
// ISPD98 files when the user supplies them; the bundled experiments use
// synthetic stand-ins from internal/gen.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hgpart/internal/hypergraph"
)

// ParseHGR reads an hMETIS-format hypergraph:
//
//	% comment lines are ignored
//	<numHyperedges> <numVertices> [fmt]
//	one line per hyperedge: [weight] v1 v2 ... (1-indexed vertices)
//	if fmt has vertex weights, numVertices weight lines follow
//
// fmt is 0 (default, unweighted), 1 (edge weights), 10 (vertex weights) or
// 11 (both).
//
// All failures are *ParseError values with Format "hgr".
func ParseHGR(r io.Reader, name string) (*hypergraph.Hypergraph, error) {
	h, err := parseHGR(r, name)
	return h, wrapParse("hgr", name, err)
}

func parseHGR(r io.Reader, name string) (*hypergraph.Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	nextLine := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	header, err := nextLine()
	if err != nil {
		return nil, fmt.Errorf("netlist: hgr header: %w", err)
	}
	if len(header) < 2 || len(header) > 3 {
		return nil, fmt.Errorf("netlist: hgr header needs 2-3 fields, got %d", len(header))
	}
	numEdges, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("netlist: hgr edge count: %w", err)
	}
	numVertices, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("netlist: hgr vertex count: %w", err)
	}
	if err := checkDeclared("hgr", "edge count", numEdges); err != nil {
		return nil, err
	}
	if err := checkDeclared("hgr", "vertex count", numVertices); err != nil {
		return nil, err
	}
	format := 0
	if len(header) == 3 {
		format, err = strconv.Atoi(header[2])
		if err != nil {
			return nil, fmt.Errorf("netlist: hgr format field: %w", err)
		}
	}
	edgeWeighted := format == 1 || format == 11
	vertexWeighted := format == 10 || format == 11

	b := hypergraph.NewBuilder(preallocCap(numVertices), preallocCap(numEdges))
	b.Name = name
	b.AddVertices(numVertices, 1)

	for e := 0; e < numEdges; e++ {
		fields, err := nextLine()
		if err != nil {
			return nil, fmt.Errorf("netlist: hgr edge %d: %w", e+1, err)
		}
		w := int64(1)
		idx := 0
		if edgeWeighted {
			w, err = strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: hgr edge %d weight: %w", e+1, err)
			}
			idx = 1
		}
		pins := make([]int32, 0, len(fields)-idx)
		for _, f := range fields[idx:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("netlist: hgr edge %d pin %q: %w", e+1, f, err)
			}
			if v < 1 || v > numVertices {
				return nil, fmt.Errorf("netlist: hgr edge %d pin %d outside [1,%d]", e+1, v, numVertices)
			}
			pins = append(pins, int32(v-1))
		}
		b.AddEdge(w, pins...)
	}
	if vertexWeighted {
		for v := 0; v < numVertices; v++ {
			fields, err := nextLine()
			if err != nil {
				return nil, fmt.Errorf("netlist: hgr vertex weight %d: %w", v+1, err)
			}
			w, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: hgr vertex weight %d: %w", v+1, err)
			}
			b.SetVertexWeight(int32(v), w)
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, err
	}
	return h, nil
}

// WriteHGR writes h in hMETIS format with both edge and vertex weights
// (fmt 11).
func WriteHGR(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% %s: %d nets, %d cells, %d pins\n", h.Name, h.NumEdges(), h.NumVertices(), h.NumPins())
	fmt.Fprintf(bw, "%d %d 11\n", h.NumEdges(), h.NumVertices())
	for e := 0; e < h.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d", h.EdgeWeight(int32(e)))
		for _, v := range h.Pins(int32(e)) {
			fmt.Fprintf(bw, " %d", v+1)
		}
		fmt.Fprintln(bw)
	}
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Fprintf(bw, "%d\n", h.VertexWeight(int32(v)))
	}
	return bw.Flush()
}
