package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hgpart/internal/hypergraph"
)

// ParseNetD reads an ISPD98-suite netlist (.netD or .net) and an optional
// .are area file (pass nil for unit areas). The format, inherited from the
// older ACM/SIGDA layout benchmarks:
//
//	line 1: 0
//	line 2: number of pins
//	line 3: number of nets
//	line 4: number of modules
//	line 5: pad offset (modules with index > offset are pads, named pN;
//	        others are cells, named aN)
//	then one line per pin: <module-name> <s|l> [direction]
//
// 's' marks the first pin of a new net, 'l' a continuing pin. Directions
// (I/O/B), present only in .netD, are ignored — partitioning treats nets as
// undirected, per the paper's problem formulation.
//
// The .are file holds "<module-name> <area>" lines.
//
// All failures are *ParseError values with Format "netD".
func ParseNetD(netR io.Reader, areR io.Reader, name string) (*hypergraph.Hypergraph, error) {
	h, err := parseNetD(netR, areR, name)
	return h, wrapParse("netD", name, err)
}

func parseNetD(netR io.Reader, areR io.Reader, name string) (*hypergraph.Hypergraph, error) {
	sc := bufio.NewScanner(netR)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	readInt := func(what string) (int, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			v, err := strconv.Atoi(line)
			if err != nil {
				return 0, fmt.Errorf("netlist: %s: %q not an integer", what, line)
			}
			return v, nil
		}
		return 0, fmt.Errorf("netlist: missing %s line", what)
	}

	if magic, err := readInt("magic"); err != nil {
		return nil, err
	} else if magic != 0 {
		return nil, fmt.Errorf("netlist: .netD must start with 0, got %d", magic)
	}
	numPins, err := readInt("pin count")
	if err != nil {
		return nil, err
	}
	numNets, err := readInt("net count")
	if err != nil {
		return nil, err
	}
	numModules, err := readInt("module count")
	if err != nil {
		return nil, err
	}
	if _, err := readInt("pad offset"); err != nil {
		return nil, err
	}
	if err := checkDeclared(".netD", "pin count", numPins); err != nil {
		return nil, err
	}
	if err := checkDeclared(".netD", "net count", numNets); err != nil {
		return nil, err
	}
	if err := checkDeclared(".netD", "module count", numModules); err != nil {
		return nil, err
	}

	b := hypergraph.NewBuilder(preallocCap(numModules), preallocCap(numNets))
	b.Name = name
	b.AddVertices(numModules, 1)

	moduleIdx := make(map[string]int32, preallocCap(numModules))
	next := int32(0)
	lookup := func(nm string) (int32, error) {
		if v, ok := moduleIdx[nm]; ok {
			return v, nil
		}
		if int(next) >= numModules {
			return 0, fmt.Errorf("netlist: more distinct modules than declared (%d): %q", numModules, nm)
		}
		moduleIdx[nm] = next
		next++
		return next - 1, nil
	}

	var cur []int32
	flush := func() {
		if len(cur) > 0 {
			b.AddEdge(1, cur...)
			cur = nil
		}
	}
	pinsSeen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("netlist: malformed pin line %q", line)
		}
		v, err := lookup(fields[0])
		if err != nil {
			return nil, err
		}
		switch fields[1] {
		case "s":
			flush()
			cur = append(cur, v)
		case "l":
			cur = append(cur, v)
		default:
			return nil, fmt.Errorf("netlist: pin line %q: flag must be s or l", line)
		}
		pinsSeen++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	if pinsSeen != numPins {
		return nil, fmt.Errorf("netlist: header declares %d pins, file has %d", numPins, pinsSeen)
	}

	if areR != nil {
		asc := bufio.NewScanner(areR)
		asc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
		for asc.Scan() {
			line := strings.TrimSpace(asc.Text())
			if line == "" {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: malformed .are line %q", line)
			}
			v, ok := moduleIdx[fields[0]]
			if !ok {
				// Modules that never appear on a net still occupy area; give
				// them fresh indices so total area matches the design.
				var err error
				v, err = lookup(fields[0])
				if err != nil {
					return nil, err
				}
			}
			area, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: .are area %q: %w", fields[1], err)
			}
			b.SetVertexWeight(v, area)
		}
		if err := asc.Err(); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// WriteNetD writes h as an ISPD98 .netD netlist. Vertices are named a0..aN-1
// (no pad distinction). Directions are emitted as B (bidirectional).
func WriteNetD(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, 0)
	fmt.Fprintln(bw, h.NumPins())
	fmt.Fprintln(bw, h.NumEdges())
	fmt.Fprintln(bw, h.NumVertices())
	fmt.Fprintln(bw, h.NumVertices())
	for e := 0; e < h.NumEdges(); e++ {
		for i, v := range h.Pins(int32(e)) {
			flag := "l"
			if i == 0 {
				flag = "s"
			}
			fmt.Fprintf(bw, "a%d %s B\n", v, flag)
		}
	}
	return bw.Flush()
}

// WriteAre writes h's vertex areas as an ISPD98 .are file, matching the
// names WriteNetD emits.
func WriteAre(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Fprintf(bw, "a%d %d\n", v, h.VertexWeight(int32(v)))
	}
	return bw.Flush()
}
