package netlist

import (
	"strings"
	"testing"
	"testing/quick"

	"hgpart/internal/rng"
)

// Parser robustness: arbitrary input must produce an error or a valid
// hypergraph — never a panic or a structurally corrupt result. These tests
// feed random token soup and mutated valid files to every parser.

// randomTokenSoup builds a whitespace-separated string of random numeric
// and junk tokens.
func randomTokenSoup(seed uint64, n int) string {
	r := rng.New(seed)
	var b strings.Builder
	junk := []string{"-1", "0", "1", "7", "99999", "x", "%", "s", "l", "a0", "p1", "NaN", "\t", "\n"}
	for i := 0; i < n; i++ {
		b.WriteString(junk[r.Intn(len(junk))])
		if r.Intn(4) == 0 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func TestParsersNeverPanicOnSoup(t *testing.T) {
	if err := quick.Check(func(seed uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		soup := randomTokenSoup(seed, 60)
		if h, err := ParseHGR(strings.NewReader(soup), "soup"); err == nil {
			if h.Validate() != nil {
				return false
			}
		}
		if h, err := ParseNetD(strings.NewReader(soup), nil, "soup"); err == nil {
			if h.Validate() != nil {
				return false
			}
		}
		if h, err := ParsePaToH(strings.NewReader(soup), "soup"); err == nil {
			if h.Validate() != nil {
				return false
			}
		}
		if d, err := ParseBookshelf(strings.NewReader(soup), strings.NewReader(soup), "soup"); err == nil {
			if d.H.Validate() != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParsersSurviveTruncation(t *testing.T) {
	// Take a valid file of each format and parse every prefix: must never
	// panic, and any accepted result must validate.
	h := sample(t)
	var hgr, patoh strings.Builder
	if err := WriteHGR(&hgr, h); err != nil {
		t.Fatal(err)
	}
	if err := WritePaToH(&patoh, h); err != nil {
		t.Fatal(err)
	}
	for _, full := range []struct {
		name  string
		text  string
		parse func(string) error
	}{
		{"hgr", hgr.String(), func(s string) error {
			g, err := ParseHGR(strings.NewReader(s), "t")
			if err == nil {
				return g.Validate()
			}
			return nil
		}},
		{"patoh", patoh.String(), func(s string) error {
			g, err := ParsePaToH(strings.NewReader(s), "t")
			if err == nil {
				return g.Validate()
			}
			return nil
		}},
	} {
		step := len(full.text)/23 + 1
		for cut := 0; cut < len(full.text); cut += step {
			if err := full.parse(full.text[:cut]); err != nil {
				t.Fatalf("%s prefix %d: accepted invalid graph: %v", full.name, cut, err)
			}
		}
	}
}

func TestHGRWhitespaceTolerance(t *testing.T) {
	in := "  \n\n%c\n 2   3 \n  1 2\n\t2 3\n"
	g, err := ParseHGR(strings.NewReader(in), "ws")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges %d", g.NumEdges())
	}
}
