package netlist

import (
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests: the checked-in testdata files pin the on-disk formats
// so accidental format changes are caught even when write+parse round trips
// still agree with each other.

func openGolden(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestGoldenHGR(t *testing.T) {
	h, err := ParseHGR(openGolden(t, "tiny.hgr"), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// The file was generated from the 1% ibm01 profile (128 cells).
	if h.NumVertices() != 128 {
		t.Fatalf("golden hgr has %d vertices", h.NumVertices())
	}
	if h.NumEdges() == 0 || h.NumPins() == 0 {
		t.Fatal("golden hgr empty")
	}
	if h.TotalVertexWeight() <= int64(h.NumVertices()) {
		t.Fatal("golden hgr lost actual areas")
	}
}

func TestGoldenNetD(t *testing.T) {
	h, err := ParseNetD(openGolden(t, "tiny.netD"), openGolden(t, "tiny.are"), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 128 {
		t.Fatalf("golden netD has %d vertices", h.NumVertices())
	}
}

func TestGoldenFormatsAgree(t *testing.T) {
	// Both golden files were generated from the same instance; their
	// structural invariants must agree.
	hg, err := ParseHGR(openGolden(t, "tiny.hgr"), "hgr")
	if err != nil {
		t.Fatal(err)
	}
	nd, err := ParseNetD(openGolden(t, "tiny.netD"), openGolden(t, "tiny.are"), "netd")
	if err != nil {
		t.Fatal(err)
	}
	if hg.NumVertices() != nd.NumVertices() || hg.NumEdges() != nd.NumEdges() ||
		hg.NumPins() != nd.NumPins() {
		t.Fatalf("golden formats disagree: %d/%d/%d vs %d/%d/%d",
			hg.NumVertices(), hg.NumEdges(), hg.NumPins(),
			nd.NumVertices(), nd.NumEdges(), nd.NumPins())
	}
	if hg.TotalVertexWeight() != nd.TotalVertexWeight() {
		t.Fatal("golden formats disagree on total area")
	}
}
