package netlist

import "fmt"

// maxDeclaredCount caps every count read from a file header before any
// allocation proportional to it. Parsers must never trust a declared size: a
// corrupt or malicious header like "999999999999 3" would otherwise drive a
// multi-gigabyte allocation (or an out-of-memory abort) before the first net
// is read. 1<<24 (~16.8M) is comfortably above the largest real netlists
// (ISPD98 tops out around 210k cells; modern contest designs in the low
// millions) while keeping the worst-case pre-allocation in the low hundreds
// of megabytes.
const maxDeclaredCount = 1 << 24

// checkDeclared validates a header-declared count for a parser.
func checkDeclared(format, what string, v int) error {
	if v < 0 {
		return fmt.Errorf("netlist: %s %s is negative (%d)", format, what, v)
	}
	if v > maxDeclaredCount {
		return fmt.Errorf("netlist: %s %s %d exceeds the sanity cap %d", format, what, v, maxDeclaredCount)
	}
	return nil
}

// preallocCap bounds a capacity hint derived from untrusted input: the slice
// still grows to whatever the file actually contains, but a lying header
// cannot force a huge up-front allocation.
func preallocCap(n int) int {
	const limit = 1 << 16
	if n < 0 {
		return 0
	}
	if n > limit {
		return limit
	}
	return n
}
