package netlist

import (
	"errors"
	"strings"
	"testing"
)

// Table-driven coverage of the parser error paths: every malformed input —
// including the fuzz-corpus seeds that crashed earlier parser revisions —
// must come back as a typed *ParseError carrying the right Format and input
// name, never as a panic and never as an untyped error the CLI and the
// hgserved service cannot classify.

func TestHGRErrorPaths(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "header"},
		{"header one field", "3\n", "2-3 fields"},
		{"header four fields", "1 2 3 4\n", "2-3 fields"},
		{"edge count not a number", "x 3\n", "edge count"},
		{"vertex count not a number", "2 y\n", "vertex count"},
		{"edge count overflows int", "99999999999999999999 3\n", "edge count"},
		{"edge count over sanity cap", "999999999 2\n1 2\n", "sanity cap"},
		{"negative vertex count", "1 -2\n1\n", "negative"},
		{"bad format field", "1 2 z\n1 2\n", "format field"},
		{"pin not a number", "1 2\n1 q\n", "pin"},
		{"pin zero", "1 2\n0 1\n", "outside [1,2]"},
		{"pin out of range", "1 2\n1 999\n", "outside [1,2]"},
		{"truncated edge list", "2 3\n1 2\n", "edge 2"},
		{"bad edge weight", "1 2 1\nw 1 2\n", "weight"},
		{"missing vertex weights", "1 2 11\n5 1 2\n4\n", "vertex weight"},
		{"bad vertex weight", "1 2 11\n5 1 2\nx\ny\n", "vertex weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ParseHGR(strings.NewReader(tc.in), "bad.hgr")
			assertParseError(t, h, err, "hgr", "bad.hgr", tc.wantSub)
		})
	}
}

func TestNetDErrorPaths(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "missing magic"},
		{"bad magic", "7\n4\n2\n3\n3\n", "must start with 0"},
		{"magic not a number", "zero\n", "not an integer"},
		{"missing counts", "0\n", "missing pin count"},
		{"negative module count", "0\n4\n2\n-3\n3\n", "negative"},
		{"pin count over sanity cap", "0\n999999999\n2\n3\n3\n", "sanity cap"},
		{"malformed pin line", "0\n2\n1\n2\n2\nlonely\n", "malformed pin line"},
		{"bad flag", "0\n2\n1\n2\n2\na0 x\n", "flag must be s or l"},
		{"too many modules", "0\n3\n1\n1\n1\na0 s\na1 l\na2 l\n", "more distinct modules"},
		{"pin count mismatch", "0\n4\n2\n3\n3\na0 s\na1 l\n", "declares 4 pins"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ParseNetD(strings.NewReader(tc.in), nil, "bad.netD")
			assertParseError(t, h, err, "netD", "bad.netD", tc.wantSub)
		})
	}
}

func TestNetDAreErrorPaths(t *testing.T) {
	const goodNet = "0\n2\n1\n2\n2\na0 s\na1 l\n"
	cases := []struct {
		name, are, wantSub string
	}{
		{"malformed are line", "a0 1 extra\n", "malformed .are line"},
		{"area not a number", "a0 big\n", ".are area"},
		{"unknown module overflow", "a9 1\n", "more distinct modules"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ParseNetD(strings.NewReader(goodNet), strings.NewReader(tc.are), "bad.netD")
			assertParseError(t, h, err, "netD", "bad.netD", tc.wantSub)
		})
	}
}

func TestPaToHErrorPaths(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "base"},
		{"negative cells", "0 -1 2 4\n", "negative"},
		{"pins over sanity cap", "0 3 2 999999999\n0 1\n1 2\n", "sanity cap"},
		{"cells over sanity cap", "0 999999999 1 2\n0 1\n", "sanity cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ParsePaToH(strings.NewReader(tc.in), "bad.patoh")
			assertParseError(t, h, err, "patoh", "bad.patoh", tc.wantSub)
		})
	}
}

func TestBookshelfErrorPaths(t *testing.T) {
	nodes := "UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 1\n a0 2 3\n a1 1 1 terminal\n a2 4 2\n"
	cases := []struct {
		name, nodes, nets, wantSub string
	}{
		{"negative net degree", nodes, "UCLA nets 1.0\nNetDegree : -1\n", "net degree"},
		{"huge net degree", nodes, "UCLA nets 1.0\nNetDegree : 99999999999\n", "sanity cap"},
		{"unknown pin node", nodes, "UCLA nets 1.0\nNetDegree : 1\n zz B\n", "zz"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := ParseBookshelf(strings.NewReader(tc.nodes), strings.NewReader(tc.nets), "bad.bookshelf")
			if d != nil && err == nil {
				t.Fatalf("accepted malformed input")
			}
			assertParseError(t, nil, err, "bookshelf", "bad.bookshelf", tc.wantSub)
		})
	}
}

// assertParseError checks the full typed-error contract for one rejection.
func assertParseError(t *testing.T, h any, err error, format, name, wantSub string) {
	t.Helper()
	if err == nil {
		t.Fatalf("malformed input accepted (result %v)", h)
	}
	pe, ok := AsParseError(err)
	if !ok {
		t.Fatalf("error is not a *ParseError: %T %v", err, err)
	}
	if pe.Format != format {
		t.Errorf("ParseError.Format = %q, want %q", pe.Format, format)
	}
	if pe.Name != name {
		t.Errorf("ParseError.Name = %q, want %q", pe.Name, name)
	}
	if pe.Unwrap() == nil {
		t.Errorf("ParseError.Unwrap() = nil, want underlying cause")
	}
	var target *ParseError
	if !errors.As(err, &target) {
		t.Errorf("errors.As failed to match *ParseError")
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Errorf("error %q does not mention %q", err.Error(), wantSub)
	}
	if !strings.HasPrefix(err.Error(), "netlist:") {
		t.Errorf("error %q lost the netlist: prefix", err.Error())
	}
}
