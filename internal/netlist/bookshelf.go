package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hgpart/internal/hypergraph"
)

// Bookshelf is the UCLA placement benchmark format (ISPD 2005/2006
// contests) — the modern descendant of the flows the paper's driving
// application (top-down placement) comes from. A design is split across
// files; partitioning needs two of them:
//
//	.nodes — "UCLA nodes 1.0", NumNodes/NumTerminals, then
//	          "<name> <width> <height> [terminal]" per node;
//	.nets  — "UCLA nets 1.0", NumNets/NumPins, then per net
//	          "NetDegree : <d> [name]" followed by d pin lines
//	          "<node> <I|O|B> [: x y]".
//
// Vertex weight is the cell area (width*height, minimum 1). Terminals are
// reported via the returned terminal set so callers can fix them.

// BookshelfDesign is the parsed pair of files.
type BookshelfDesign struct {
	H *hypergraph.Hypergraph
	// Terminal marks pad/terminal nodes (candidates for fixing).
	Terminal []bool
	// Names maps vertex index to the node name from the .nodes file.
	Names []string
}

// ParseBookshelf parses a .nodes and a .nets reader into a design.
//
// All failures are *ParseError values with Format "bookshelf".
func ParseBookshelf(nodesR, netsR io.Reader, name string) (*BookshelfDesign, error) {
	d, err := parseBookshelf(nodesR, netsR, name)
	return d, wrapParse("bookshelf", name, err)
}

func parseBookshelf(nodesR, netsR io.Reader, name string) (*BookshelfDesign, error) {
	names, weights, terminal, err := parseBookshelfNodes(nodesR)
	if err != nil {
		return nil, err
	}
	index := make(map[string]int32, len(names))
	for i, n := range names {
		index[n] = int32(i)
	}

	b := hypergraph.NewBuilder(len(names), 1024)
	b.Name = name
	for _, w := range weights {
		b.AddVertex(w)
	}
	if err := parseBookshelfNets(netsR, index, b); err != nil {
		return nil, err
	}
	h, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &BookshelfDesign{H: h, Terminal: terminal, Names: names}, nil
}

func bookshelfLines(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	return sc
}

// nextContentLine returns the next non-comment, non-blank line.
func nextContentLine(sc *bufio.Scanner) (string, bool) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

// headerValue parses "Key : value" lines.
func headerValue(line, key string) (int, bool) {
	if !strings.HasPrefix(line, key) {
		return 0, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, key))
	rest = strings.TrimSpace(strings.TrimPrefix(rest, ":"))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false
	}
	return v, true
}

func parseBookshelfNodes(r io.Reader) (names []string, weights []int64, terminal []bool, err error) {
	sc := bookshelfLines(r)
	first, ok := nextContentLine(sc)
	if !ok || !strings.HasPrefix(first, "UCLA nodes") {
		return nil, nil, nil, fmt.Errorf("netlist: bookshelf .nodes must start with 'UCLA nodes'")
	}
	numNodes := -1
	for {
		line, ok := nextContentLine(sc)
		if !ok {
			break
		}
		if v, is := headerValue(line, "NumNodes"); is {
			numNodes = v
			continue
		}
		if _, is := headerValue(line, "NumTerminals"); is {
			continue
		}
		// Node line: <name> <width> <height> [terminal]
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, nil, nil, fmt.Errorf("netlist: bookshelf node line %q", line)
		}
		wd, err1 := strconv.ParseFloat(fields[1], 64)
		ht, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, nil, nil, fmt.Errorf("netlist: bookshelf node dims in %q", line)
		}
		area := int64(wd * ht)
		if area < 1 {
			area = 1
		}
		names = append(names, fields[0])
		weights = append(weights, area)
		terminal = append(terminal, len(fields) >= 4 && strings.EqualFold(fields[3], "terminal"))
	}
	if numNodes >= 0 && numNodes != len(names) {
		return nil, nil, nil, fmt.Errorf("netlist: bookshelf declares %d nodes, found %d", numNodes, len(names))
	}
	return names, weights, terminal, nil
}

func parseBookshelfNets(r io.Reader, index map[string]int32, b *hypergraph.Builder) error {
	sc := bookshelfLines(r)
	first, ok := nextContentLine(sc)
	if !ok || !strings.HasPrefix(first, "UCLA nets") {
		return fmt.Errorf("netlist: bookshelf .nets must start with 'UCLA nets'")
	}
	numNets := -1
	netsSeen := 0
	for {
		line, ok := nextContentLine(sc)
		if !ok {
			break
		}
		if v, is := headerValue(line, "NumNets"); is {
			numNets = v
			continue
		}
		if _, is := headerValue(line, "NumPins"); is {
			continue
		}
		deg, is := headerValue(line, "NetDegree")
		if !is {
			return fmt.Errorf("netlist: bookshelf expected NetDegree, got %q", line)
		}
		if err := checkDeclared("bookshelf", "net degree", deg); err != nil {
			return err
		}
		pins := make([]int32, 0, preallocCap(deg))
		for i := 0; i < deg; i++ {
			pinLine, ok := nextContentLine(sc)
			if !ok {
				return fmt.Errorf("netlist: bookshelf net truncated after %d of %d pins", i, deg)
			}
			fields := strings.Fields(pinLine)
			v, found := index[fields[0]]
			if !found {
				return fmt.Errorf("netlist: bookshelf pin references unknown node %q", fields[0])
			}
			pins = append(pins, v)
		}
		b.AddEdge(1, pins...)
		netsSeen++
	}
	if numNets >= 0 && numNets != netsSeen {
		return fmt.Errorf("netlist: bookshelf declares %d nets, found %d", numNets, netsSeen)
	}
	return nil
}

// WriteBookshelf writes h as a .nodes/.nets pair. Vertices are named oN and
// emitted as width=weight, height=1; terminals (per the provided set, which
// may be nil) get the terminal attribute.
func WriteBookshelf(nodesW, netsW io.Writer, h *hypergraph.Hypergraph, terminal []bool) error {
	nb := bufio.NewWriter(nodesW)
	fmt.Fprintln(nb, "UCLA nodes 1.0")
	fmt.Fprintf(nb, "NumNodes : %d\n", h.NumVertices())
	terms := 0
	for v := range terminal {
		if terminal[v] {
			terms++
		}
	}
	fmt.Fprintf(nb, "NumTerminals : %d\n", terms)
	for v := 0; v < h.NumVertices(); v++ {
		attr := ""
		if terminal != nil && terminal[v] {
			attr = " terminal"
		}
		fmt.Fprintf(nb, "  o%d %d 1%s\n", v, h.VertexWeight(int32(v)), attr)
	}
	if err := nb.Flush(); err != nil {
		return err
	}

	wb := bufio.NewWriter(netsW)
	fmt.Fprintln(wb, "UCLA nets 1.0")
	fmt.Fprintf(wb, "NumNets : %d\n", h.NumEdges())
	fmt.Fprintf(wb, "NumPins : %d\n", h.NumPins())
	for e := 0; e < h.NumEdges(); e++ {
		fmt.Fprintf(wb, "NetDegree : %d n%d\n", h.EdgeSize(int32(e)), e)
		for _, v := range h.Pins(int32(e)) {
			fmt.Fprintf(wb, "  o%d B\n", v)
		}
	}
	return wb.Flush()
}

// WriteBookshelfPl writes a Bookshelf .pl placement file for coordinates in
// the unit square, scaled by the given factor (typical flows use integer
// site coordinates; scale 1000 gives three digits of resolution):
//
//	UCLA pl 1.0
//	o0 x y : N
func WriteBookshelfPl(w io.Writer, x, y []float64, scale float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("netlist: pl coordinate slices differ: %d vs %d", len(x), len(y))
	}
	if scale <= 0 {
		scale = 1000
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "UCLA pl 1.0")
	for v := range x {
		fmt.Fprintf(bw, "o%d %.1f %.1f : N\n", v, x[v]*scale, y[v]*scale)
	}
	return bw.Flush()
}
