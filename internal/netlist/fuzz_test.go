package netlist

import (
	"strings"
	"testing"
)

// Native fuzz targets for every parser. The contract under fuzzing is
// parse-or-error: arbitrary bytes must yield either an error or a hypergraph
// that passes Validate — never a panic, never a structurally corrupt result,
// and never an allocation proportional to a number the file merely claims.
// The seed corpora include the inputs that crashed earlier parser revisions
// (negative NetDegree, astronomically large header counts) as regressions.

// checkedParse asserts the parse-or-error contract for one parser invocation.
func checkedParse(t *testing.T, what string, parse func() (interface{ Validate() error }, error)) {
	t.Helper()
	h, err := parse()
	if err != nil {
		return
	}
	if verr := h.Validate(); verr != nil {
		t.Fatalf("%s: accepted input but produced invalid hypergraph: %v", what, verr)
	}
}

func FuzzParseHGR(f *testing.F) {
	f.Add("2 3\n1 2\n2 3\n")
	f.Add("2 3 11\n5 1 2\n2 2 3\n4\n1\n1\n")
	f.Add("% comment\n1 2 1\n-5 1 2\n")
	f.Add("99999999999999999999 3\n") // overflows int
	f.Add("16777216 16777215\n")      // at the sanity cap
	f.Add("999999999 2\n1 2\n")       // over the sanity cap
	f.Add("1 2\n1 999\n")             // pin out of range
	f.Add("2 3\n1 2\n")               // truncated
	f.Fuzz(func(t *testing.T, in string) {
		checkedParse(t, "hgr", func() (interface{ Validate() error }, error) {
			return ParseHGR(strings.NewReader(in), "fuzz")
		})
	})
}

func FuzzParsePaToH(f *testing.F) {
	f.Add("0 3 2 4\n0 1\n1 2\n")
	f.Add("1 3 2 4 3\n2 1 2\n7 2 3\n5 5 5\n")
	f.Add("0 -1 2 4\n")
	f.Add("0 3 2 999999999\n0 1\n1 2\n")
	f.Add("0 999999999 1 2\n0 1\n")
	f.Add("0 3 2 4 2\n-9 0 1\n1 1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		checkedParse(t, "patoh", func() (interface{ Validate() error }, error) {
			return ParsePaToH(strings.NewReader(in), "fuzz")
		})
	})
}

func FuzzParseNetD(f *testing.F) {
	f.Add("0\n4\n2\n3\n3\na0 s\na1 l\na2 s\na0 l\n")
	f.Add("0\n4\n2\n999999999\n0\n")
	f.Add("0\n-4\n2\n3\n3\n")
	f.Add("7\n4\n2\n3\n3\n")       // wrong magic
	f.Add("0\n2\n1\n2\n2\na0 x\n") // bad flag
	f.Fuzz(func(t *testing.T, in string) {
		checkedParse(t, "netD", func() (interface{ Validate() error }, error) {
			return ParseNetD(strings.NewReader(in), nil, "fuzz")
		})
	})
}

func FuzzParseBookshelf(f *testing.F) {
	nodes := "UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 1\n a0 2 3\n a1 1 1 terminal\n a2 4 2\n"
	f.Add(nodes, "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n a0 B\n a1 B\n")
	f.Add(nodes, "UCLA nets 1.0\nNetDegree : -1\n")          // crashed: negative make cap
	f.Add(nodes, "UCLA nets 1.0\nNetDegree : 99999999999\n") // huge declared degree
	f.Add(nodes, "UCLA nets 1.0\nNetDegree : 2\n a0 B\n")    // truncated net
	f.Add("UCLA nodes 1.0\n a0 -3 -4\n", "UCLA nets 1.0\n")  // negative dims
	f.Add("not a header\n", "UCLA nets 1.0\n")
	f.Fuzz(func(t *testing.T, nodesIn, netsIn string) {
		checkedParse(t, "bookshelf", func() (interface{ Validate() error }, error) {
			d, err := ParseBookshelf(strings.NewReader(nodesIn), strings.NewReader(netsIn), "fuzz")
			if err != nil {
				return nil, err
			}
			return d.H, nil
		})
	})
}
