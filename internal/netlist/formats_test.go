package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestPaToHRoundTrip(t *testing.T) {
	h := sample(t)
	var buf bytes.Buffer
	if err := WritePaToH(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePaToH(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, h, back)
}

func TestPaToHBaseOneAndUnweighted(t *testing.T) {
	in := "1 4 2 5\n1 2 3\n3 4\n"
	h, err := ParsePaToH(strings.NewReader(in), "b1")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 4 || h.NumEdges() != 2 || h.NumPins() != 5 {
		t.Fatalf("shape %d/%d/%d", h.NumVertices(), h.NumEdges(), h.NumPins())
	}
	pins := h.Pins(0)
	if pins[0] != 0 || pins[2] != 2 {
		t.Fatalf("base-1 conversion wrong: %v", pins)
	}
}

func TestPaToHCellWeightsOnly(t *testing.T) {
	in := "0 3 1 2 1\n0 1\n5 6 7\n"
	h, err := ParsePaToH(strings.NewReader(in), "cw")
	if err != nil {
		t.Fatal(err)
	}
	if h.VertexWeight(0) != 5 || h.VertexWeight(2) != 7 {
		t.Fatal("cell weights not parsed")
	}
	if h.EdgeWeight(0) != 1 {
		t.Fatal("net weight should default to 1")
	}
}

func TestPaToHComments(t *testing.T) {
	in := "% header comment\n0 2 1 2\n% net comment\n0 1\n"
	if _, err := ParsePaToH(strings.NewReader(in), "c"); err != nil {
		t.Fatal(err)
	}
}

func TestPaToHErrors(t *testing.T) {
	cases := []string{
		"2 2 1 2\n0 1\n",      // bad base
		"0 2 1 2 9\n0 1\n",    // bad scheme
		"0 2 1 3\n0 1\n",      // pin count mismatch
		"0 2 1 2\n0 5\n",      // pin out of range
		"0 2 2 4\n0 1\n",      // missing net line
		"0 2 1 2 1\n0 1\nx\n", // bad cell weight
	}
	for i, in := range cases {
		if _, err := ParsePaToH(strings.NewReader(in), "bad"); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

const nodesFixture = `UCLA nodes 1.0
# comment
NumNodes : 4
NumTerminals : 1
  a 2 3
  b 1 1
  c 4 2
  p1 1 1 terminal
`

const netsFixture = `UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n0
  a I
  b O
  p1 B
NetDegree : 2
  b I
  c O
`

func TestBookshelfParse(t *testing.T) {
	d, err := ParseBookshelf(strings.NewReader(nodesFixture), strings.NewReader(netsFixture), "bs")
	if err != nil {
		t.Fatal(err)
	}
	if d.H.NumVertices() != 4 || d.H.NumEdges() != 2 || d.H.NumPins() != 5 {
		t.Fatalf("shape %d/%d/%d", d.H.NumVertices(), d.H.NumEdges(), d.H.NumPins())
	}
	if d.H.VertexWeight(0) != 6 || d.H.VertexWeight(2) != 8 {
		t.Fatalf("areas: %d %d", d.H.VertexWeight(0), d.H.VertexWeight(2))
	}
	if !d.Terminal[3] || d.Terminal[0] {
		t.Fatal("terminal flags wrong")
	}
	if d.Names[0] != "a" || d.Names[3] != "p1" {
		t.Fatalf("names %v", d.Names)
	}
}

func TestBookshelfRoundTrip(t *testing.T) {
	h := sample(t)
	terminal := make([]bool, h.NumVertices())
	terminal[0], terminal[5] = true, true
	var nodes, nets bytes.Buffer
	if err := WriteBookshelf(&nodes, &nets, h, terminal); err != nil {
		t.Fatal(err)
	}
	d, err := ParseBookshelf(&nodes, &nets, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if d.H.NumVertices() != h.NumVertices() || d.H.NumEdges() != h.NumEdges() ||
		d.H.NumPins() != h.NumPins() {
		t.Fatal("bookshelf round trip changed shape")
	}
	if d.H.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Fatal("bookshelf round trip changed area")
	}
	if !d.Terminal[0] || !d.Terminal[5] || d.Terminal[1] {
		t.Fatal("terminal flags lost")
	}
}

func TestBookshelfErrors(t *testing.T) {
	// Wrong magic.
	if _, err := ParseBookshelf(strings.NewReader("nodes\n"), strings.NewReader(netsFixture), "x"); err == nil {
		t.Fatal("bad .nodes magic accepted")
	}
	if _, err := ParseBookshelf(strings.NewReader(nodesFixture), strings.NewReader("nets\n"), "x"); err == nil {
		t.Fatal("bad .nets magic accepted")
	}
	// Unknown pin node.
	badNets := strings.Replace(netsFixture, "  c O", "  zzz O", 1)
	if _, err := ParseBookshelf(strings.NewReader(nodesFixture), strings.NewReader(badNets), "x"); err == nil {
		t.Fatal("unknown node accepted")
	}
	// Truncated net.
	trunc := strings.TrimSuffix(netsFixture, "  c O\n")
	if _, err := ParseBookshelf(strings.NewReader(nodesFixture), strings.NewReader(trunc), "x"); err == nil {
		t.Fatal("truncated net accepted")
	}
	// Node count mismatch.
	badNodes := strings.Replace(nodesFixture, "NumNodes : 4", "NumNodes : 9", 1)
	if _, err := ParseBookshelf(strings.NewReader(badNodes), strings.NewReader(netsFixture), "x"); err == nil {
		t.Fatal("node count mismatch accepted")
	}
}

func TestWriteBookshelfPl(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBookshelfPl(&buf, []float64{0.5, 0.25}, []float64{0.1, 0.9}, 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "UCLA pl 1.0\n") {
		t.Fatalf("pl header: %q", out)
	}
	if !strings.Contains(out, "o0 50.0 10.0 : N") || !strings.Contains(out, "o1 25.0 90.0 : N") {
		t.Fatalf("pl rows: %q", out)
	}
	if err := WriteBookshelfPl(&buf, []float64{1}, []float64{1, 2}, 0); err == nil {
		t.Fatal("mismatched slices accepted")
	}
}
