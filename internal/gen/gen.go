// Package gen synthesizes VLSI-netlist-like hypergraphs whose structural
// statistics match the published parameters of the ISPD98 circuit benchmark
// suite (Alpert, ISPD'98).
//
// The real ISPD98 netlists are not redistributable with this library, so the
// experiments run on synthetic stand-ins. Every phenomenon the paper studies
// is driven by structural statistics the generator reproduces (§2.1's
// "salient attributes of real-world inputs"):
//
//   - sparsity: number of nets close to the number of cells;
//   - average net sizes between 3 and 5 with a two-pin-dominated
//     distribution and a heavy tail;
//   - a small number of extremely large nets (clock, reset);
//   - wide variation in vertex weights — drive-strength spread for standard
//     cells plus large macro blocks (the cells that "cork" CLIP under tight
//     balance tolerances);
//   - spatial locality (nets connect cells that are close in a notional
//     layout), which is what gives real circuits small bisection cuts.
//
// The locality model assigns each cell an implicit 1-D position (its index,
// read as a position along a space-filling traversal of the layout) and
// draws net pins at log-uniformly distributed distances from a net center.
package gen

import (
	"fmt"
	"math"

	"hgpart/internal/hypergraph"
	"hgpart/internal/rng"
)

// Spec parameterizes one synthetic instance.
type Spec struct {
	// Name labels the generated hypergraph.
	Name string
	// Cells is the number of vertices (standard cells + macros).
	Cells int
	// Nets is the number of ordinary (non-global) nets to draw.
	Nets int
	// AvgNetSize is the target mean pins-per-net for ordinary nets;
	// achievable range is about [2.4, 8].
	AvgNetSize float64

	// UnitArea forces all vertex weights to 1, emulating the historical
	// "unit-area mode" of the MCNC benchmarks under which (the paper argues)
	// CLIP corking stayed hidden.
	UnitArea bool
	// NumMacros is the number of large macro blocks.
	NumMacros int
	// MaxMacroFrac is the area of the largest macro as a fraction of the
	// total standard-cell area (e.g. 0.05). Macros are drawn log-uniformly
	// between MaxMacroFrac/20 and MaxMacroFrac.
	MaxMacroFrac float64

	// NumGlobalNets is the number of huge clock/reset-like nets.
	NumGlobalNets int
	// GlobalNetFrac is the fraction of all cells each global net spans.
	GlobalNetFrac float64

	// Locality in (0, 4]: larger values bias net pins toward the net center.
	// 2 reproduces realistic cut magnitudes; 0 is treated as 2.
	Locality float64

	// Seed drives the instance's private random stream.
	Seed uint64
}

// Validate reports whether the spec is generatable.
func (s Spec) Validate() error {
	if s.Cells < 4 {
		return fmt.Errorf("gen: need at least 4 cells, got %d", s.Cells)
	}
	if s.Nets < 1 {
		return fmt.Errorf("gen: need at least 1 net, got %d", s.Nets)
	}
	if s.AvgNetSize < 2 {
		return fmt.Errorf("gen: AvgNetSize %.2f below 2", s.AvgNetSize)
	}
	if s.MaxMacroFrac < 0 || s.MaxMacroFrac > 0.25 {
		return fmt.Errorf("gen: MaxMacroFrac %.3f outside [0, 0.25]", s.MaxMacroFrac)
	}
	if s.GlobalNetFrac < 0 || s.GlobalNetFrac > 0.2 {
		return fmt.Errorf("gen: GlobalNetFrac %.3f outside [0, 0.2]", s.GlobalNetFrac)
	}
	return nil
}

// standard-cell weight palette: deep-submicron drive-strength spread.
var cellWeights = []int64{1, 1, 1, 2, 2, 2, 3, 4, 4, 6, 8, 12, 16}

// Generate builds the hypergraph described by spec. Identical specs produce
// identical hypergraphs.
func Generate(spec Spec) (*hypergraph.Hypergraph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(spec.Seed ^ 0xc1ac_ca1d_da99_0001)
	n := spec.Cells

	b := hypergraph.NewBuilder(n, spec.Nets+spec.NumGlobalNets)
	b.Name = spec.Name

	// Vertex weights: standard cells first, then macro upgrades.
	var baseTotal int64
	for i := 0; i < n; i++ {
		var w int64 = 1
		if !spec.UnitArea {
			w = cellWeights[r.Intn(len(cellWeights))]
		}
		b.AddVertex(w)
		baseTotal += w
	}
	// Macro blocks. The paper's corking analysis hinges on a correlation
	// present in real netlists: "the cells with the highest gain will tend
	// to be the cells of highest degree, which are also the cells with
	// greatest area". Macros therefore get both a large area and a degree
	// boost — extra 2-pin nets to nearby cells, proportional to their area
	// share — drawn from the ordinary-net budget so pin statistics stay on
	// target.
	macroNets := 0
	var macros []int32
	if !spec.UnitArea && spec.NumMacros > 0 && spec.MaxMacroFrac > 0 {
		loFrac := spec.MaxMacroFrac / 20
		for i := 0; i < spec.NumMacros; i++ {
			v := int32(r.Intn(n))
			// Log-uniform in [loFrac, MaxMacroFrac]; force one macro to the
			// maximum so the corking threshold is reliably exercised.
			frac := loFrac * math.Exp(r.Float64()*math.Log(spec.MaxMacroFrac/loFrac))
			if i == 0 {
				frac = spec.MaxMacroFrac
			}
			w := int64(frac * float64(baseTotal))
			if w < 1 {
				w = 1
			}
			b.SetVertexWeight(v, w)
			macros = append(macros, v)
			// Degree boost: 8..40 extra pins scaled by area share, capped
			// by the net budget.
			boost := 8 + int(frac*600)
			if boost > 40 {
				boost = 40
			}
			macroNets += boost
		}
		if macroNets > spec.Nets/4 {
			macroNets = spec.Nets / 4
		}
	}

	locality := spec.Locality
	if locality <= 0 {
		locality = 2
	}
	maxDist := float64(n) / 2
	logMaxDist := math.Log(maxDist)

	// Tail probability tuned so ordinary-net sizes have mean AvgNetSize:
	// sizes 2 (p2), 3 (0.2), 4 (0.1) and a tail of mean 8 (5 + Geom(1/4)).
	tail := (spec.AvgNetSize - 2.4) / 6
	if tail < 0 {
		tail = 0
	}
	if tail > 0.7 {
		tail = 0.7
	}

	pinBuf := make([]int32, 0, 64)

	// Macro connectivity nets: 2-pin nets from a macro to a nearby cell.
	for i := 0; i < macroNets; i++ {
		mv := macros[i%len(macros)]
		u := r.Float64()
		d := int(math.Exp(math.Pow(u, locality) * logMaxDist))
		if d < 1 {
			d = 1
		}
		if r.Bool() {
			d = -d
		}
		p := ((int(mv)+d)%n + n) % n
		b.AddEdge(1, mv, int32(p))
	}

	for e := macroNets; e < spec.Nets; e++ {
		size := sampleNetSize(r, tail)
		center := r.Intn(n)
		pinBuf = pinBuf[:0]
		pinBuf = append(pinBuf, int32(center))
		for len(pinBuf) < size {
			// Log-uniform distance, biased local by exponent locality.
			u := r.Float64()
			d := int(math.Exp(math.Pow(u, locality) * logMaxDist))
			if d < 1 {
				d = 1
			}
			if r.Bool() {
				d = -d
			}
			p := ((center+d)%n + n) % n
			pinBuf = append(pinBuf, int32(p))
		}
		b.AddEdge(1, pinBuf...)
	}

	// Global clock/reset-like nets: uniform pins over all cells.
	for g := 0; g < spec.NumGlobalNets; g++ {
		size := int(spec.GlobalNetFrac * float64(n))
		if size < 2 {
			size = 2
		}
		pinBuf = pinBuf[:0]
		for i := 0; i < size; i++ {
			pinBuf = append(pinBuf, int32(r.Intn(n)))
		}
		b.AddEdge(1, pinBuf...)
	}

	return b.Build()
}

// MustGenerate is Generate that panics on error; for specs known valid.
func MustGenerate(spec Spec) *hypergraph.Hypergraph {
	h, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return h
}

// sampleNetSize draws an ordinary net size: 2-pin dominated with a
// geometric heavy tail.
func sampleNetSize(r *rng.RNG, tail float64) int {
	u := r.Float64()
	switch {
	case u < tail:
		return 5 + r.Geometric(0.25)
	case u < tail+0.1:
		return 4
	case u < tail+0.3:
		return 3
	default:
		return 2
	}
}
