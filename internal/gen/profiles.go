package gen

import (
	"fmt"
	"math"
	"sort"
)

// ibmParams holds the published ISPD98 benchmark-suite parameters (Alpert,
// "The ISPD98 Circuit Benchmark Suite", ISPD'98): cell, net and pin counts
// per instance. The synthetic profiles below target these statistics.
type ibmParams struct {
	cells, nets, pins int
	// macroFrac is the approximate area of the largest cell as a fraction of
	// total cell area. The ISPD98 instances contain many large macrocells;
	// ibm05 is the well-known exception with no large cells, which is why
	// corking-sensitive results look different there.
	macroFrac float64
	numMacros int
}

// Published ISPD98 instance parameters, indexed by instance number (1-18).
var ibmTable = map[int]ibmParams{
	1:  {12752, 14111, 50566, 0.063, 30},
	2:  {19601, 19584, 81199, 0.117, 40},
	3:  {23136, 27401, 93573, 0.057, 50},
	4:  {27507, 31970, 105859, 0.091, 50},
	5:  {29347, 28446, 126308, 0.000, 0},
	6:  {32498, 34826, 128182, 0.061, 60},
	7:  {45926, 48117, 175639, 0.043, 70},
	8:  {51309, 50513, 204890, 0.120, 70},
	9:  {53395, 60902, 222088, 0.056, 80},
	10: {69429, 75196, 297567, 0.046, 90},
	11: {70558, 81454, 280786, 0.036, 90},
	12: {71076, 77240, 317760, 0.062, 90},
	13: {84199, 99666, 357075, 0.035, 100},
	14: {147605, 152772, 546816, 0.021, 120},
	15: {161570, 186608, 715823, 0.015, 120},
	16: {183484, 190048, 778823, 0.024, 130},
	17: {185495, 189581, 860036, 0.009, 130},
	18: {210613, 201920, 819697, 0.011, 130},
}

// IBMProfile returns a Spec reproducing the published structural statistics
// of ISPD98 instance i (1-18). The returned instance name is "ibmNN" with a
// "-like" suffix to make the synthetic provenance explicit in reports.
func IBMProfile(i int) (Spec, error) {
	p, ok := ibmTable[i]
	if !ok {
		return Spec{}, fmt.Errorf("gen: no IBM profile %d (valid: 1-18)", i)
	}
	// Global nets absorb some pins; subtract their share before computing
	// the ordinary-net average size.
	numGlobal := 2 + p.cells/50000
	globalFrac := 0.01
	globalPins := float64(numGlobal) * globalFrac * float64(p.cells)
	avg := (float64(p.pins) - globalPins) / float64(p.nets)
	if avg < 2.4 {
		avg = 2.4
	}
	return Spec{
		Name:          fmt.Sprintf("ibm%02d-like", i),
		Cells:         p.cells,
		Nets:          p.nets,
		AvgNetSize:    avg,
		NumMacros:     p.numMacros,
		MaxMacroFrac:  p.macroFrac,
		NumGlobalNets: numGlobal,
		GlobalNetFrac: globalFrac,
		Locality:      2,
		Seed:          uint64(1000 + i),
	}, nil
}

// MustIBMProfile is IBMProfile that panics on an invalid index.
func MustIBMProfile(i int) Spec {
	s, err := IBMProfile(i)
	if err != nil {
		panic(err)
	}
	return s
}

// Scaled returns a copy of spec downscaled by factor f in (0, 1]: cell and
// net counts shrink by f while the distributional parameters (net sizes,
// macro fractions, locality) are preserved, so scaled instances exhibit the
// same qualitative phenomena at a fraction of the runtime. The paper's full
// experiments consumed weeks of CPU; test and bench defaults use f around
// 0.1-0.25.
func Scaled(spec Spec, f float64) Spec {
	if f <= 0 || f > 1 {
		panic("gen: scale factor must be in (0,1]")
	}
	s := spec
	s.Cells = maxInt(8, int(math.Round(float64(spec.Cells)*f)))
	s.Nets = maxInt(4, int(math.Round(float64(spec.Nets)*f)))
	s.NumMacros = int(math.Round(float64(spec.NumMacros) * math.Sqrt(f)))
	if spec.NumMacros > 0 && s.NumMacros < 1 {
		s.NumMacros = 1
	}
	if f < 1 {
		s.Name = fmt.Sprintf("%s@%.2g", spec.Name, f)
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mcncTable holds published parameters of the classic ACM/SIGDA (MCNC)
// partitioning test cases — the suite the paper argues had gone stale:
// "The MCNC cases are small and lack nodes with large degree or large
// area", and were historically run in unit-area mode, which is how CLIP
// corking stayed hidden. Cell/net counts follow the standard literature
// values for the netlist-partitioning versions of these circuits.
var mcncTable = map[string]struct {
	cells, nets int
	avgNetSize  float64
}{
	"fract":    {149, 147, 3.1},
	"prim1":    {833, 902, 3.1},
	"prim2":    {3014, 3029, 3.7},
	"struct":   {1952, 1920, 2.8},
	"ind1":     {2271, 2192, 3.2},
	"bio":      {6417, 5742, 3.6},
	"ind2":     {12637, 13419, 3.7},
	"ind3":     {15406, 21923, 3.1},
	"avqsmall": {21918, 22124, 3.7},
	"avqlarge": {25178, 25384, 3.7},
}

// MCNCProfile returns a synthetic stand-in spec for a classic MCNC test
// case: unit areas, no macros, no huge global nets — exactly the instance
// class whose historical dominance the paper blames for masking
// actual-area pathologies like corking.
func MCNCProfile(name string) (Spec, error) {
	p, ok := mcncTable[name]
	if !ok {
		return Spec{}, fmt.Errorf("gen: no MCNC profile %q", name)
	}
	return Spec{
		Name:       name + "-like",
		Cells:      p.cells,
		Nets:       p.nets,
		AvgNetSize: p.avgNetSize,
		UnitArea:   true,
		Locality:   2,
		Seed:       uint64(2000 + len(name)),
	}, nil
}

// MCNCNames lists the available MCNC profiles, sorted.
func MCNCNames() []string {
	names := make([]string, 0, len(mcncTable))
	for n := range mcncTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
