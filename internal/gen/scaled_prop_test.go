package gen

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"hgpart/internal/rng"
)

// TestScaledPreservesRatios is the property test for Scaled's rounding
// invariants: for every published profile and a seeded spread of scale
// factors, the spec-level pins-per-vertex ratio (Nets*AvgNetSize/Cells)
// must survive downscaling within rounding tolerance, the distributional
// parameters must be untouched, and the documented floors (Cells >= 8,
// Nets >= 4, >= 1 macro when the original had any) must hold. The
// portfolio scheduler buckets instances by exactly these ratios, so a
// drift here silently reshuffles which stored arm statistics a scaled
// profile consults.
func TestScaledPreservesRatios(t *testing.T) {
	var specs []Spec
	for i := 1; i <= 18; i++ {
		specs = append(specs, MustIBMProfile(i))
	}
	for _, name := range MCNCNames() {
		s, err := MCNCProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}

	// Fixed factors cover the documented bench range plus the extremes;
	// seeded draws fill the space in between, deterministically.
	factors := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.9, 1.0}
	r := rng.New(7)
	for i := 0; i < 25; i++ {
		factors = append(factors, 0.01+0.99*r.Float64())
	}

	for _, spec := range specs {
		for _, f := range factors {
			s := Scaled(spec, f)
			label := fmt.Sprintf("%s f=%.4f", spec.Name, f)

			if s.Cells < 8 || s.Nets < 4 {
				t.Fatalf("%s: floors violated: cells=%d nets=%d", label, s.Cells, s.Nets)
			}
			if spec.NumMacros > 0 && s.NumMacros < 1 {
				t.Fatalf("%s: macros vanished (had %d)", label, spec.NumMacros)
			}
			if s.AvgNetSize != spec.AvgNetSize || s.MaxMacroFrac != spec.MaxMacroFrac ||
				s.Locality != spec.Locality || s.GlobalNetFrac != spec.GlobalNetFrac ||
				s.UnitArea != spec.UnitArea || s.Seed != spec.Seed {
				t.Fatalf("%s: distributional parameters changed: %+v vs %+v", label, s, spec)
			}
			if f < 1 && !strings.HasPrefix(s.Name, spec.Name+"@") {
				t.Fatalf("%s: scaled name %q lacks the @factor suffix", label, s.Name)
			}

			// The ratio invariant only binds while neither count is clamped
			// to its floor: at the floors the ratio is allowed to drift
			// (that is the point of the floors).
			if s.Cells == 8 || s.Nets == 4 {
				continue
			}
			want := float64(spec.Nets) * spec.AvgNetSize / float64(spec.Cells)
			got := float64(s.Nets) * s.AvgNetSize / float64(s.Cells)
			// Rounding moves each count by at most 0.5, so the ratio moves
			// by at most roughly 0.5/Nets + 0.5/Cells relatively; allow 2x
			// slack for the compounding of the two roundings.
			tol := 2 * (0.5/float64(s.Nets) + 0.5/float64(s.Cells))
			if rel := math.Abs(got-want) / want; rel > tol {
				t.Fatalf("%s: pin/vertex ratio drifted %.4f%% (tol %.4f%%): %.5f -> %.5f",
					label, 100*rel, 100*tol, want, got)
			}
		}
	}
}
