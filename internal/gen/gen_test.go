package gen

import (
	"math"
	"testing"

	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func baseSpec() Spec {
	return Spec{
		Name:          "t",
		Cells:         2000,
		Nets:          2200,
		AvgNetSize:    3.6,
		NumMacros:     8,
		MaxMacroFrac:  0.05,
		NumGlobalNets: 2,
		GlobalNetFrac: 0.01,
		Locality:      2,
		Seed:          1,
	}
}

func TestGenerateBasicValidity(t *testing.T) {
	h, err := Generate(baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 2000 {
		t.Fatalf("cells %d", h.NumVertices())
	}
	// Nets can shrink slightly (dedup to <2 pins) but must stay close.
	if h.NumEdges() < 2100 || h.NumEdges() > 2202 {
		t.Fatalf("nets %d", h.NumEdges())
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(baseSpec())
	b := MustGenerate(baseSpec())
	if a.NumEdges() != b.NumEdges() || a.NumPins() != b.NumPins() ||
		a.TotalVertexWeight() != b.TotalVertexWeight() {
		t.Fatal("identical specs produced different hypergraphs")
	}
	for e := 0; e < a.NumEdges(); e++ {
		pa, pb := a.Pins(int32(e)), b.Pins(int32(e))
		if len(pa) != len(pb) {
			t.Fatalf("edge %d size differs", e)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("edge %d pin %d differs", e, i)
			}
		}
	}
}

func TestSeedChangesInstance(t *testing.T) {
	a := MustGenerate(baseSpec())
	s2 := baseSpec()
	s2.Seed = 2
	b := MustGenerate(s2)
	if a.NumPins() == b.NumPins() && a.TotalVertexWeight() == b.TotalVertexWeight() {
		t.Fatal("different seeds produced suspiciously identical instances")
	}
}

func TestSalientAttributes(t *testing.T) {
	// The §2.1 checklist: sparsity, avg net size 3-5, weight skew, huge nets.
	h := MustGenerate(baseSpec())
	s := hypergraph.ComputeStats(h)
	if s.AvgNetSize < 2.8 || s.AvgNetSize > 5.0 {
		t.Fatalf("avg net size %.2f outside [2.8,5]", s.AvgNetSize)
	}
	ratio := float64(s.Edges) / float64(s.Vertices)
	if ratio < 0.8 || ratio > 1.4 {
		t.Fatalf("sparsity |E|/|V| = %.2f not near 1", ratio)
	}
	if s.WeightSkew < 5 {
		t.Fatalf("weight skew %.1f too small — macros missing", s.WeightSkew)
	}
	if s.MaxNetSize < int(0.005*float64(s.Vertices)) {
		t.Fatalf("no clock-like global net: max size %d", s.MaxNetSize)
	}
}

func TestMacroExceedsCorkThreshold(t *testing.T) {
	// The largest macro must exceed the 2%-tolerance balance slack so the
	// corking experiments are actually exercised.
	h := MustGenerate(baseSpec())
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	if h.MaxVertexWeight() <= bal.Slack() {
		t.Fatalf("max weight %d does not exceed 2%% slack %d",
			h.MaxVertexWeight(), bal.Slack())
	}
}

func TestUnitAreaMode(t *testing.T) {
	s := baseSpec()
	s.UnitArea = true
	h := MustGenerate(s)
	if h.MaxVertexWeight() != 1 || h.TotalVertexWeight() != int64(s.Cells) {
		t.Fatal("unit-area mode produced non-unit weights")
	}
}

func TestLocalityReducesCut(t *testing.T) {
	// Structured instances must have far smaller optimized cuts than pin
	// count; verify locality by comparing a random balanced cut with the
	// number of nets (a local instance has most nets fully on one side
	// after sorting by index).
	h := MustGenerate(baseSpec())
	// Index bisection: first half vs second half exploits generator
	// locality directly.
	p := partition.New(h)
	sides := make([]uint8, h.NumVertices())
	for i := h.NumVertices() / 2; i < h.NumVertices(); i++ {
		sides[i] = 1
	}
	if err := p.Assign(sides); err != nil {
		t.Fatal(err)
	}
	indexCut := p.Cut()

	rp := partition.New(h)
	r := rng.New(9)
	rsides := make([]uint8, h.NumVertices())
	for i := range rsides {
		rsides[i] = uint8(r.Intn(2))
	}
	if err := rp.Assign(rsides); err != nil {
		t.Fatal(err)
	}
	randomCut := rp.Cut()
	if float64(indexCut) > 0.5*float64(randomCut) {
		t.Fatalf("no locality: index-bisection cut %d vs random %d", indexCut, randomCut)
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{Cells: 2, Nets: 5, AvgNetSize: 3},
		{Cells: 100, Nets: 0, AvgNetSize: 3},
		{Cells: 100, Nets: 10, AvgNetSize: 1.2},
		{Cells: 100, Nets: 10, AvgNetSize: 3, MaxMacroFrac: 0.5},
		{Cells: 100, Nets: 10, AvgNetSize: 3, GlobalNetFrac: 0.9},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic")
		}
	}()
	MustGenerate(Spec{})
}

func TestAllIBMProfilesScaled(t *testing.T) {
	for i := 1; i <= 18; i++ {
		spec := Scaled(MustIBMProfile(i), 0.02)
		h, err := Generate(spec)
		if err != nil {
			t.Fatalf("profile %d: %v", i, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("profile %d: %v", i, err)
		}
	}
}

func TestIBMProfileCounts(t *testing.T) {
	spec := MustIBMProfile(1)
	if spec.Cells != 12752 || spec.Nets != 14111 {
		t.Fatalf("ibm01 counts wrong: %d/%d", spec.Cells, spec.Nets)
	}
	if spec.Name != "ibm01-like" {
		t.Fatalf("name %q", spec.Name)
	}
	if _, err := IBMProfile(0); err == nil {
		t.Fatal("profile 0 accepted")
	}
	if _, err := IBMProfile(19); err == nil {
		t.Fatal("profile 19 accepted")
	}
}

func TestIBM05HasNoMacros(t *testing.T) {
	// ibm05 is the known exception: no large cells. Its stand-in must
	// preserve that, since corking results differ qualitatively there.
	spec := MustIBMProfile(5)
	if spec.NumMacros != 0 || spec.MaxMacroFrac != 0 {
		t.Fatalf("ibm05 should have no macros: %+v", spec)
	}
	h := MustGenerate(Scaled(spec, 0.05))
	s := hypergraph.ComputeStats(h)
	if s.WeightSkew > 20 {
		t.Fatalf("ibm05-like has macro-level skew %.1f", s.WeightSkew)
	}
}

func TestScaledPreservesShape(t *testing.T) {
	spec := MustIBMProfile(1)
	small := Scaled(spec, 0.1)
	if small.Cells != int(math.Round(float64(spec.Cells)*0.1)) {
		t.Fatalf("scaled cells %d", small.Cells)
	}
	if small.AvgNetSize != spec.AvgNetSize {
		t.Fatal("scaling changed net-size distribution")
	}
	if small.Name == spec.Name {
		t.Fatal("scaled name should be annotated")
	}
	h := MustGenerate(small)
	s := hypergraph.ComputeStats(h)
	if s.AvgNetSize < 2.5 || s.AvgNetSize > 5 {
		t.Fatalf("scaled avg net size %.2f", s.AvgNetSize)
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	for _, f := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Scaled(%v) did not panic", f)
				}
			}()
			Scaled(baseSpec(), f)
		}()
	}
}

func TestAvgNetSizeTracksTarget(t *testing.T) {
	for _, target := range []float64{2.6, 3.5, 4.5} {
		s := baseSpec()
		s.AvgNetSize = target
		s.NumGlobalNets = 0
		h := MustGenerate(s)
		got := float64(h.NumPins()) / float64(h.NumEdges())
		// Dedup trims a little; allow a modest band.
		if math.Abs(got-target) > 0.55 {
			t.Fatalf("target %.1f produced avg %.2f", target, got)
		}
	}
}

func TestMacrosHaveHighDegree(t *testing.T) {
	// The paper's corking mechanism requires area and degree to correlate:
	// macros must sit in the top of the degree distribution.
	h := MustGenerate(baseSpec())
	// Identify macros (weight far above the cell palette maximum of 16).
	avgDeg := float64(h.NumPins()) / float64(h.NumVertices())
	macros := 0
	highDeg := 0
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexWeight(int32(v)) > 50 {
			macros++
			if float64(h.Degree(int32(v))) >= 2*avgDeg {
				highDeg++
			}
		}
	}
	if macros == 0 {
		t.Fatal("no macros found")
	}
	if highDeg*2 < macros {
		t.Fatalf("only %d/%d macros have >=2x average degree", highDeg, macros)
	}
}

func TestMCNCProfiles(t *testing.T) {
	names := MCNCNames()
	if len(names) != 10 {
		t.Fatalf("%d MCNC profiles", len(names))
	}
	for _, name := range names {
		spec, err := MCNCProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !spec.UnitArea || spec.NumMacros != 0 || spec.NumGlobalNets != 0 {
			t.Fatalf("%s: MCNC profile must be unit-area macro-free: %+v", name, spec)
		}
		h, err := Generate(Scaled(spec, 0.3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := hypergraph.ComputeStats(h)
		if s.MaxVertexWeight != 1 {
			t.Fatalf("%s: non-unit areas", name)
		}
		if s.WeightSkew != 1 {
			t.Fatalf("%s: weight skew %.1f on unit instance", name, s.WeightSkew)
		}
	}
	if _, err := MCNCProfile("nope"); err == nil {
		t.Fatal("unknown MCNC profile accepted")
	}
}

func TestMCNCPrim2Counts(t *testing.T) {
	spec, err := MCNCProfile("prim2")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cells != 3014 || spec.Nets != 3029 {
		t.Fatalf("prim2 counts %d/%d", spec.Cells, spec.Nets)
	}
}
