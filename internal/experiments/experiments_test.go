package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps experiment tests fast: 2%-size instances, few runs.
func tinyOpts() Options {
	return Options{Scale: 0.03, Runs: 3, Reps: 1, StartCounts: []int{1, 2}, Seed: 42}
}

func parseMinAvg(t *testing.T, cell string) (float64, float64) {
	t.Helper()
	parts := strings.Split(cell, "/")
	if len(parts) != 2 {
		t.Fatalf("cell %q not min/avg", cell)
	}
	mn, err1 := strconv.ParseFloat(parts[0], 64)
	avg, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("cell %q unparseable", cell)
	}
	return mn, avg
}

func TestTable1Shape(t *testing.T) {
	tab := Table1(tinyOpts())
	if len(tab.Headers) != 6 {
		t.Fatalf("headers %v", tab.Headers)
	}
	// 4 engines x 6 combos = 24 rows.
	if len(tab.Rows) != 24 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	engines := map[string]int{}
	for _, row := range tab.Rows {
		engines[row[0]]++
		for _, cell := range row[3:] {
			mn, avg := parseMinAvg(t, cell)
			if mn <= 0 || avg < mn {
				t.Fatalf("bad cell %q", cell)
			}
		}
	}
	for _, e := range []string{"Flat LIFO FM", "Flat CLIP FM", "ML LIFO FM", "ML CLIP FM"} {
		if engines[e] != 6 {
			t.Fatalf("engine %q has %d rows", e, engines[e])
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2(tinyOpts())
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][1] != "Reported LIFO" || tab.Rows[1][1] != "Our LIFO" {
		t.Fatalf("row labels %v", tab.Rows)
	}
	// Tolerances 02% then 10%.
	if tab.Rows[0][0] != "02%" || tab.Rows[2][0] != "10%" {
		t.Fatalf("tolerance labels %v %v", tab.Rows[0][0], tab.Rows[2][0])
	}
}

func TestTable2OursBeatsReported(t *testing.T) {
	// The headline phenomenon must hold even at tiny scale, on average
	// across instances.
	tab := Table2(Options{Scale: 0.05, Runs: 6, Reps: 1, StartCounts: []int{1}, Seed: 7})
	var repAvg, ourAvg float64
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			_, avg := parseMinAvg(t, cell)
			if strings.HasPrefix(row[1], "Reported") {
				repAvg += avg
			} else {
				ourAvg += avg
			}
		}
	}
	if ourAvg >= repAvg {
		t.Fatalf("tuned LIFO (%f) not better than naive (%f)", ourAvg, repAvg)
	}
}

func TestTable3Shape(t *testing.T) {
	tab := Table3(tinyOpts())
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][1], "CLIP") {
		t.Fatalf("labels %v", tab.Rows[0])
	}
}

func TestTable45Shape(t *testing.T) {
	tab := Table45(tinyOpts(), 0.02)
	if len(tab.Rows) != len(table45Instances) {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if len(tab.Headers) != 1+2 {
		t.Fatalf("headers %v", tab.Headers)
	}
	if !strings.HasPrefix(tab.Title, "Table 4") {
		t.Fatalf("title %q", tab.Title)
	}
	if !strings.HasPrefix(Table45(tinyOpts(), 0.10).Title, "Table 5") {
		t.Fatal("tolerance 0.10 should be Table 5")
	}
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[0], "ibm") {
			t.Fatalf("circuit label %q", row[0])
		}
		for _, cell := range row[1:] {
			parts := strings.Split(cell, "/")
			if len(parts) != 2 {
				t.Fatalf("cell %q", cell)
			}
		}
	}
}

func TestFigureBSFShape(t *testing.T) {
	tab := FigureBSF(tinyOpts())
	if len(tab.Headers) != 4 {
		t.Fatalf("headers %v", tab.Headers)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no budget rows")
	}
}

func TestFigureParetoShape(t *testing.T) {
	tab := FigurePareto(tinyOpts())
	// 3 instances x 3 heuristics x 3 start counts = 27 points.
	if len(tab.Rows) != 27 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	frontier := 0
	for _, row := range tab.Rows {
		if row[4] == "*" {
			frontier++
		}
	}
	if frontier == 0 {
		t.Fatal("empty frontier")
	}
}

func TestFigureRankingShape(t *testing.T) {
	tab := FigureRanking(tinyOpts())
	if len(tab.Rows) == 0 {
		t.Fatal("no ranking cells")
	}
	for _, row := range tab.Rows {
		if row[2] == "" {
			t.Fatalf("missing winner in %v", row)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o.Scale != d.Scale || o.Runs != d.Runs || o.Reps != d.Reps || o.Seed != d.Seed {
		t.Fatalf("defaults not applied: %+v", o)
	}
	p := PaperOptions()
	if p.Scale != 1 || p.Runs != 100 || p.Reps != 50 {
		t.Fatalf("paper protocol wrong: %+v", p)
	}
	if len(p.StartCounts) != 6 || p.StartCounts[5] != 100 {
		t.Fatalf("paper start counts %v", p.StartCounts)
	}
}

func TestTableCorkingShape(t *testing.T) {
	tab := TableCorking(Options{Scale: 0.04, Runs: 3, Seed: 11})
	// 2 instances x 2 area modes x 2 guard settings = 8 rows.
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "true" && row[2] != "false" {
			t.Fatalf("guard cell %q", row[2])
		}
	}
}

func TestTableInsertionShape(t *testing.T) {
	tab := TableInsertion(Options{Scale: 0.03, Runs: 3, Seed: 12})
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "LIFO" || tab.Rows[1][0] != "FIFO" || tab.Rows[2][0] != "Random" {
		t.Fatalf("row labels %v", tab.Rows)
	}
}

func TestTableSignificanceShape(t *testing.T) {
	tab := TableSignificance(Options{Scale: 0.03, Runs: 10, Seed: 13})
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// The naive-vs-tuned gap must be detected even at tiny scale.
	if tab.Rows[0][6] != "true" {
		t.Fatalf("naive-vs-tuned not significant: %v", tab.Rows[0])
	}
}

func TestTableRegimesShape(t *testing.T) {
	tab := TableRegimes(Options{Scale: 0.03, Runs: 8, Seed: 14})
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	labels := map[string]bool{}
	for _, row := range tab.Rows {
		labels[row[0]] = true
	}
	for _, want := range []string{"best-of-k", "pruned", "budget", "P(ML beats flat)"} {
		if !labels[want] {
			t.Fatalf("missing regime %q", want)
		}
	}
}

func TestFigureBSFChartRenders(t *testing.T) {
	out := FigureBSFChart(Options{Scale: 0.03, Runs: 6, Seed: 15})
	if len(out) == 0 {
		t.Fatal("empty chart")
	}
	for _, name := range []string{"flat-LIFO", "flat-CLIP", "ML"} {
		if !containsStr(out, name) {
			t.Fatalf("chart missing legend %q", name)
		}
	}
}

func containsStr(s, sub string) bool {
	return strings.Contains(s, sub)
}

func TestTableBenchmarkEraShape(t *testing.T) {
	tab := TableBenchmarkEra(Options{Scale: 0.04, Runs: 6, Seed: 16})
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	suites := map[string]int{}
	for _, row := range tab.Rows {
		suites[row[0]]++
	}
	if suites["MCNC"] != 2 || suites["ISPD98"] != 2 {
		t.Fatalf("suite rows %v", suites)
	}
}
