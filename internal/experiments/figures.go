package experiments

import (
	"fmt"
	"math"

	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/partition"
	"hgpart/internal/plot"
	"hgpart/internal/report"
	"hgpart/internal/rng"
)

// The paper contains no numbered figures, but §3.2 prescribes three
// reporting artifacts any methodology-faithful evaluation should produce.
// We label them Figures A-C:
//
//	Figure A — best-so-far (BSF) curves (Barr et al.): expected best cut
//	           versus CPU budget for each heuristic;
//	Figure B — the non-dominated (cost, runtime) frontier (Pareto set) of
//	           heuristic configurations;
//	Figure C — a speed-dependent ranking diagram (Schreiber & Martin):
//	           the winning heuristic per (instance size, CPU budget) cell.

// figureHeuristics builds the three heuristics compared in the figures on
// hypergraph h: tuned flat LIFO FM, tuned flat CLIP FM, and the multilevel
// partitioner.
func figureHeuristics(h *hypergraph.Hypergraph, tol float64, r *rng.RNG) []eval.Heuristic {
	bal := partition.NewBalance(h.TotalVertexWeight(), tol)
	return []eval.Heuristic{
		eval.NewFlat("flat-LIFO", h, core.StrongConfig(false), bal, r.Split()),
		eval.NewFlat("flat-CLIP", h, core.StrongConfig(true), bal, r.Split()),
		eval.NewML("ML", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 0),
	}
}

// FigureBSF computes Figure A on the ibm01-like instance at 2% tolerance:
// for each heuristic, Options.Runs single starts are sampled and the
// expected best cut under a range of normalized CPU budgets is reported.
func FigureBSF(o Options) *report.Table {
	o = o.withDefaults()
	h := o.instance(1)
	root := rng.New(o.Seed + 100)
	heuristics := figureHeuristics(h, 0.02, root)

	sampleSets := make([][]eval.Outcome, len(heuristics))
	var maxMean float64
	for i, heur := range heuristics {
		samples := o.samples(heur, o.Runs, root.Split())
		sampleSets[i] = samples
		if len(samples) == 0 {
			continue
		}
		var mean float64
		for _, s := range samples {
			mean += s.NormalizedSeconds()
		}
		mean /= float64(len(samples))
		if mean > maxMean {
			maxMean = mean
		}
	}
	// Budgets: log-spaced from a fraction of the slowest heuristic's
	// single-start time to enough for ~32 of its starts.
	budgets := make([]float64, 0, 12)
	for b := maxMean / 8; b <= maxMean*32; b *= 2 {
		budgets = append(budgets, b)
	}

	headers := []string{"Budget (norm. sec)"}
	for _, heur := range heuristics {
		headers = append(headers, heur.Name()+" E[best] (starts)")
	}
	t := report.NewTable(
		fmt.Sprintf("Figure A: best-so-far curves, %s, 2%% tolerance, %d samples/heuristic", h.Name, o.Runs),
		headers...)
	curves := make([][]eval.BSFPoint, len(heuristics))
	for i := range heuristics {
		curves[i] = eval.BSFCurve(sampleSets[i], budgets, true)
	}
	for bi, tau := range budgets {
		row := []string{fmt.Sprintf("%.3f", tau)}
		for i := range heuristics {
			p := curves[i][bi]
			if math.IsInf(p.ExpectedBest, 1) {
				row = append(row, "- (0)")
			} else {
				row = append(row, fmt.Sprintf("%.1f (%d)", p.ExpectedBest, p.Starts))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// FigurePareto computes Figure B: the (cost, runtime) performance points of
// multistart configurations of each heuristic on ibm01-03, and whether each
// point lies on the non-dominated frontier.
func FigurePareto(o Options) *report.Table {
	o = o.withDefaults()
	root := rng.New(o.Seed + 200)
	t := report.NewTable(
		fmt.Sprintf("Figure B: non-dominated (cost, runtime) frontier, 2%% tolerance (scale %.2g)", o.Scale),
		"Instance", "Configuration", "AvgBestCut", "NormSec", "OnFrontier")

	startCounts := []int{1, 4, 16}
	for _, inst := range []int{1, 2, 3} {
		h := o.instance(inst)
		heuristics := figureHeuristics(h, 0.02, root)
		var points []eval.PerfPoint
		for _, heur := range heuristics {
			cps, _ := eval.EvaluateConfigurationsCtx(o.ctx(), heur, startCounts, maxI(2, o.Reps), root.Split())
			for _, cp := range cps {
				points = append(points, eval.PerfPoint{
					Label:   fmt.Sprintf("%s x%d", heur.Name(), cp.Starts),
					Cost:    cp.AvgBestCut,
					Seconds: cp.AvgNormalizedSecs,
				})
			}
		}
		front := eval.ParetoFrontier(points)
		onFront := make(map[string]bool, len(front))
		for _, p := range front {
			onFront[p.Label] = true
		}
		for _, p := range points {
			mark := ""
			if onFront[p.Label] {
				mark = "*"
			}
			t.AddRow(h.Name, p.Label, fmt.Sprintf("%.1f", p.Cost), fmt.Sprintf("%.3f", p.Seconds), mark)
		}
	}
	return t
}

// FigureRanking computes Figure C: for instances of several sizes and a
// grid of CPU budgets, the heuristic with the best expected BSF cut — the
// paper's "(instance size, CPU time) dominance" diagnostic.
func FigureRanking(o Options) *report.Table {
	o = o.withDefaults()
	root := rng.New(o.Seed + 300)

	sizes := []float64{0.25, 0.5, 1.0} // fractions of the scaled ibm01
	samplesBySize := map[int]map[string][]eval.Outcome{}
	var budgets []float64
	for _, f := range sizes {
		spec := gen.Scaled(gen.MustIBMProfile(1), o.Scale*f)
		h := gen.MustGenerate(spec)
		heuristics := figureHeuristics(h, 0.02, root)
		bySz := map[string][]eval.Outcome{}
		for _, heur := range heuristics {
			samples := o.samples(heur, maxI(10, o.Runs/2), root.Split())
			bySz[heur.Name()] = samples
			if f == sizes[len(sizes)-1] && heur.Name() == "ML" && len(samples) > 0 {
				var mean float64
				for _, s := range samples {
					mean += s.NormalizedSeconds()
				}
				mean /= float64(len(samples))
				for b := mean / 16; b <= mean*16; b *= 4 {
					budgets = append(budgets, b)
				}
			}
		}
		samplesBySize[h.NumVertices()] = bySz
	}
	cells := eval.RankingDiagram(samplesBySize, budgets, true)

	t := report.NewTable(
		fmt.Sprintf("Figure C: speed-dependent ranking (winner per instance-size x budget cell), scale %.2g", o.Scale),
		"Vertices", "Budget (norm. sec)", "Winner", "E[best] flat-LIFO", "E[best] flat-CLIP", "E[best] ML")
	fmtE := func(v float64) string {
		if math.IsInf(v, 1) {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, c := range cells {
		t.AddRow(
			fmt.Sprintf("%d", c.InstanceSize),
			fmt.Sprintf("%.3f", c.Budget),
			c.Winner,
			fmtE(c.Expected["flat-LIFO"]),
			fmtE(c.Expected["flat-CLIP"]),
			fmtE(c.Expected["ML"]),
		)
	}
	return t
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FigureBSFChart renders the Figure A comparison as an ASCII chart
// (expected best cut vs log CPU budget) — the visual form the paper's §3.2
// recommends for communicating quality-runtime tradeoffs.
func FigureBSFChart(o Options) string {
	o = o.withDefaults()
	h := o.instance(1)
	root := rng.New(o.Seed + 100)
	heuristics := figureHeuristics(h, 0.02, root)

	chart := plot.Chart{
		Title:  fmt.Sprintf("Figure A: best-so-far curves, %s, 2%% tolerance", h.Name),
		XLabel: "normalized CPU seconds (log)",
		LogX:   true,
		Width:  72,
		Height: 22,
	}
	for _, heur := range heuristics {
		samples := o.samples(heur, o.Runs, root.Split())
		if len(samples) == 0 {
			continue
		}
		var mean float64
		for _, s := range samples {
			mean += s.NormalizedSeconds()
		}
		mean /= float64(len(samples))
		var budgets []float64
		for b := mean; b <= mean*64; b *= 2 {
			budgets = append(budgets, b)
		}
		pts := eval.BSFCurve(samples, budgets, true)
		var xs, ys []float64
		for _, p := range pts {
			if math.IsInf(p.ExpectedBest, 1) {
				continue
			}
			xs = append(xs, p.Budget)
			ys = append(ys, p.ExpectedBest)
		}
		chart.Add(plot.Series{Name: heur.Name(), X: xs, Y: ys})
	}
	return chart.Render()
}
