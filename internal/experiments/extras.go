package experiments

import (
	"fmt"

	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/partition"
	"hgpart/internal/report"
	"hgpart/internal/rng"
	"hgpart/internal/stats"
)

// Extra experiments supporting claims the paper makes in prose rather than
// tables:
//
//   - TableCorking quantifies "traces of CLIP executions show that corking
//     actually occurs fairly often, particularly with the more modern
//     ISPD98 actual-area benchmarks" (§2.3) and its absence in unit-area
//     mode ("the older MCNC test cases lack large cells, and have
//     historically been used in unit-area mode").
//   - TableInsertion reproduces the Hagen-Huang-Kahng EDAC'95 comparison of
//     LIFO/FIFO/Random gain-bucket insertion cited in footnote 3 ("inserting
//     moves into gain buckets in LIFO order is much preferable").
//   - TableSignificance demonstrates the §3.2 recommendation of statistical
//     tests (after Brglez): a Mann-Whitney U test on paired heuristic
//     comparisons, showing which quality gaps are significant and which are
//     chance.

// TableCorking reports corked (zero-move) pass counts and total moves for
// unguarded vs guarded CLIP, on actual-area and unit-area variants of the
// same instances, at 2% tolerance.
func TableCorking(o Options) *report.Table {
	o = o.withDefaults()
	t := report.NewTable(
		fmt.Sprintf("Corking trace: CLIP pass progress over %d runs, 2%% tolerance (scale %.2g)", o.Runs, o.Scale),
		"Instance", "Areas", "Guard", "CorkEvents", "Passes", "Moves/Pass", "AvgCut")

	root := rng.New(o.Seed + 500)
	for _, inst := range []int{1, 2} {
		for _, unit := range []bool{false, true} {
			spec := gen.Scaled(gen.MustIBMProfile(inst), o.Scale)
			spec.UnitArea = unit
			areas := "actual"
			if unit {
				areas = "unit"
				spec.Name += "-unit"
			}
			h := gen.MustGenerate(spec)
			bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
			for _, guard := range []bool{false, true} {
				cfg := core.StrongConfig(true)
				cfg.CorkGuard = guard
				eng := core.NewEngine(h, cfg, bal, root.Split())
				r := root.Split()
				var passes int
				var corks, moves, cutSum int64
				done := 0
				for i := 0; i < o.Runs; i++ {
					if o.ctx().Err() != nil {
						break
					}
					p := partition.New(h)
					p.RandomBalanced(r.Split(), bal)
					res := eng.Run(p)
					passes += res.Passes
					corks += res.CorkEvents
					moves += res.Moves
					cutSum += res.Cut
					done++
				}
				if done < o.Runs {
					t.AddRow(fmt.Sprintf("ibm%02d", inst), areas, fmt.Sprint(guard),
						cancelledCell, cancelledCell, cancelledCell, cancelledCell)
					continue
				}
				movesPerPass := 0.0
				if passes > 0 {
					movesPerPass = float64(moves) / float64(passes)
				}
				t.AddRow(
					fmt.Sprintf("ibm%02d", inst), areas, fmt.Sprint(guard),
					fmt.Sprint(corks), fmt.Sprint(passes),
					fmt.Sprintf("%.0f", movesPerPass),
					fmt.Sprintf("%.1f", float64(cutSum)/float64(o.Runs)))
			}
		}
	}
	return t
}

// TableInsertion compares LIFO, FIFO and Random gain-bucket insertion for a
// tuned flat FM, min/avg cut over Options.Runs single starts.
func TableInsertion(o Options) *report.Table {
	o = o.withDefaults()
	instances := []int{1, 2, 3}
	t := report.NewTable(
		fmt.Sprintf("Insertion-order study (Hagen-Huang-Kahng): min/avg over %d runs, 2%% tolerance (scale %.2g)", o.Runs, o.Scale),
		"Insertion", "ibm01", "ibm02", "ibm03")

	hs := make([]*hypergraph.Hypergraph, len(instances))
	for i, inst := range instances {
		hs[i] = o.instance(inst)
	}
	root := rng.New(o.Seed + 600)
	for _, ins := range []core.InsertionOrder{core.LIFO, core.FIFO, core.RandomOrder} {
		cfg := core.StrongConfig(false)
		cfg.Insertion = ins
		cells := make([]string, 0, len(instances))
		for _, h := range hs {
			bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
			heur := eval.NewFlat(ins.String(), h, o.debug(cfg), bal, root.Split())
			cells = append(cells, o.minAvgCell(heur, bal, o.Runs, root.Split()))
		}
		t.AddRow(append([]string{ins.String()}, cells...)...)
	}
	return t
}

// TableSignificance runs two heuristic pairs on ibm01 and reports
// Mann-Whitney U p-values: a pair with a real quality gap (naive vs tuned)
// and a pair that differs only by a minor knob (Away vs Toward bias), whose
// gap is typically not significant — the paper's point that experiments
// must distinguish improvement from chance.
func TableSignificance(o Options) *report.Table {
	o = o.withDefaults()
	h := o.instance(1)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	root := rng.New(o.Seed + 700)

	cuts := func(cfg core.Config) []float64 {
		heur := eval.NewFlat(cfg.String(), h, cfg, bal, root.Split())
		samples, _ := eval.Multistart(heur, o.Runs, root.Split())
		out := make([]float64, len(samples))
		for i, s := range samples {
			out[i] = float64(s.Cut)
		}
		return out
	}

	t := report.NewTable(
		fmt.Sprintf("Significance of pairwise comparisons (Mann-Whitney U, %d runs each, %s)", o.Runs, h.Name),
		"Comparison", "MeanA", "MeanB", "U", "Z", "p", "Significant@0.05")

	addPair := func(name string, a, b []float64) {
		res, err := stats.MannWhitneyU(a, b)
		if err != nil {
			panic(err)
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f", stats.Mean(a)),
			fmt.Sprintf("%.1f", stats.Mean(b)),
			fmt.Sprintf("%.0f", res.Statistic),
			fmt.Sprintf("%.2f", res.Z),
			fmt.Sprintf("%.4f", res.P),
			fmt.Sprint(res.Significant(0.05)))
	}

	naive := cuts(core.NaiveConfig(false))
	strong := cuts(core.StrongConfig(false))
	addPair("Naive vs Tuned LIFO FM", naive, strong)

	away := core.StrongConfig(false)
	away.Bias = core.Away
	toward := core.StrongConfig(false)
	toward.Bias = core.Toward
	addPair("Away vs Toward bias (tuned FM)", cuts(away), cuts(toward))

	return t
}

// TableRegimes contrasts the multistart regimes of §3.2 on the ibm01
// stand-in at 2% tolerance: the traditional best-of-k, the pruned
// multistart (early termination of unpromising starts) and the
// budget-bounded regime, plus the Schreiber-Martin probability that the ML
// engine beats tuned flat FM at a range of budgets.
func TableRegimes(o Options) *report.Table {
	o = o.withDefaults()
	h := o.instance(1)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	root := rng.New(o.Seed + 800)

	t := report.NewTable(
		fmt.Sprintf("Multistart regimes on %s, 2%% tolerance", h.Name),
		"Regime", "Detail", "BestCut", "Cost (norm. sec)")

	// Best-of-k (traditional).
	flat := eval.NewFlat("flat", h, core.StrongConfig(false), bal, root.Split())
	kBest, _, kWork := eval.BestOfK(flat, 8, root.Split())
	t.AddRow("best-of-k", "flat FM, k=8",
		fmt.Sprint(kBest.Cut), fmt.Sprintf("%.3f", float64(kWork)/eval.WorkUnitsPerSecond))

	// Pruned multistart: same start count, tighter total cost.
	pBest, _, pruned := eval.PrunedMultistart(o.ctx(), h, core.StrongConfig(false), bal, 8, 1, 1.15, root.Split())
	t.AddRow("pruned", fmt.Sprintf("flat FM, k=8, %d pruned", pruned),
		fmt.Sprint(pBest.Cut), fmt.Sprintf("%.3f", float64(pBest.Work)/eval.WorkUnitsPerSecond))

	// Budget-bounded: whatever fits in the cost of ~4 ML starts.
	ml := eval.NewML("ML", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 0)
	one := ml.Run(root.Split())
	budget := 4 * one.NormalizedSeconds()
	bBest, starts, spent := eval.BestWithinBudget(o.ctx(), ml, budget, root.Split())
	t.AddRow("budget", fmt.Sprintf("ML, %d starts in budget", starts),
		fmt.Sprint(bBest.Cut), fmt.Sprintf("%.3f", spent))

	// Schreiber-Martin P(ML best) across budgets.
	flatSamples, _ := eval.Multistart(flat, o.Runs, root.Split())
	mlSamples, _ := eval.Multistart(ml, o.Runs, root.Split())
	for _, mult := range []float64{1, 4, 16} {
		tau := one.NormalizedSeconds() * mult
		p := eval.ProbBest(mlSamples, flatSamples, tau, true)
		t.AddRow("P(ML beats flat)", fmt.Sprintf("budget %.3fs", tau),
			fmt.Sprintf("%.2f", p), "-")
	}
	return t
}

// TableBenchmarkEra makes the paper's §2.3 "incomplete set of data"
// argument measurable: the same implementation defect (no corking guard)
// is scored on an old-era MCNC-like unit-area instance and a modern
// ISPD98-like actual-area instance. The defect is invisible on the former
// and catastrophic on the latter — "the fact that CLIP corking was not
// previously realized is due to testing of algorithms on an incomplete set
// of data".
func TableBenchmarkEra(o Options) *report.Table {
	o = o.withDefaults()
	t := report.NewTable(
		fmt.Sprintf("Benchmark era and defect visibility: unguarded/guarded CLIP avg cut, %d runs, 2%% tolerance", o.Runs),
		"Suite", "Instance", "Unguarded", "Guarded", "Penalty")

	type inst struct {
		suite string
		h     *hypergraph.Hypergraph
	}
	var instances []inst
	// MCNC instances are small; run them at double scale, clamped to the
	// generator's (0,1] domain so a user-chosen -scale above 0.5 cannot
	// panic deep inside gen.Scaled.
	mcncScale := o.Scale * 2
	if mcncScale > 1 {
		mcncScale = 1
	}
	for _, name := range []string{"prim2", "avqsmall"} {
		spec, err := gen.MCNCProfile(name)
		if err != nil {
			panic(err)
		}
		instances = append(instances, inst{"MCNC", gen.MustGenerate(gen.Scaled(spec, mcncScale))})
	}
	for _, id := range []int{1, 2} {
		instances = append(instances, inst{"ISPD98", gen.MustGenerate(gen.Scaled(gen.MustIBMProfile(id), o.Scale))})
	}

	root := rng.New(o.Seed + 900)
	for _, in := range instances {
		bal := partition.NewBalance(in.h.TotalVertexWeight(), 0.02)
		avg := func(guard bool) (float64, bool) {
			cfg := core.StrongConfig(true)
			cfg.CorkGuard = guard
			eng := core.NewEngine(in.h, cfg, bal, root.Split())
			r := root.Split()
			var sum int64
			done := 0
			for i := 0; i < o.Runs; i++ {
				if o.ctx().Err() != nil {
					break
				}
				p := partition.New(in.h)
				p.RandomBalanced(r.Split(), bal)
				sum += eng.Run(p).Cut
				done++
			}
			if done < o.Runs {
				return 0, false
			}
			return float64(sum) / float64(o.Runs), true
		}
		un, unOK := avg(false)
		gu, guOK := avg(true)
		if !unOK || !guOK {
			t.AddRow(in.suite, in.h.Name, cancelledCell, cancelledCell, cancelledCell)
			continue
		}
		t.AddRow(in.suite, in.h.Name,
			fmt.Sprintf("%.1f", un), fmt.Sprintf("%.1f", gu),
			fmt.Sprintf("%.2fx", un/gu))
	}
	return t
}
