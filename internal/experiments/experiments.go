// Package experiments regenerates every table and figure of the paper's
// evaluation. Each function returns a rendered report.Table so the same
// code drives cmd/hgeval, the bench harness in the repository root, and the
// numbers recorded in EXPERIMENTS.md.
//
// The paper's full protocol (100 independent runs per table cell, 50
// repetitions per multistart configuration, instances up to 210k cells —
// "the equivalent of nearly 10,000 starts for each test case") consumed
// weeks of 1998 CPU time. Options.Scale and the run counts downscale the
// protocol while preserving its structure; Options with Scale == 1 and the
// paper's run counts reproduce the full protocol.
package experiments

import (
	"context"
	"fmt"

	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/partition"
	"hgpart/internal/report"
	"hgpart/internal/rng"
	"hgpart/internal/stats"
)

// Options scales the experimental protocol.
type Options struct {
	// Scale downsizes instances (1 = published ISPD98 sizes).
	Scale float64
	// Runs is the number of independent single-start trials per cell of
	// Tables 1-3 (paper: 100).
	Runs int
	// Reps is the number of repetitions per multistart configuration in
	// Tables 4/5 (paper: 50).
	Reps int
	// StartCounts are the multistart configurations of Tables 4/5
	// (paper: 1, 2, 4, 8, 16, 100).
	StartCounts []int
	// Seed drives all randomization.
	Seed uint64
	// Spread appends the standard deviation of the per-repetition best cuts
	// to each Tables 4/5 cell — the "standard deviations and other
	// descriptors of the distributions" the paper says were omitted from
	// the printed medium but belong in any flexible presentation.
	Spread bool
	// Ctx, when non-nil, bounds table generation: on cancellation the sweep
	// stops between cells and the table reports which cells were not
	// evaluated instead of silently publishing a truncated protocol. Nil
	// means run to completion.
	Ctx context.Context
	// CheckInvariants runs every engine in debug mode (per-pass partition and
	// gain-structure verification) and verifies every completed start's
	// outcome. Roughly doubles runtime; results are unchanged on a healthy
	// build.
	CheckInvariants bool
}

// DefaultOptions returns a laptop-scale protocol: 15%-size instances and
// reduced run counts. The structure of every experiment is unchanged.
func DefaultOptions() Options {
	return Options{
		Scale:       0.15,
		Runs:        20,
		Reps:        3,
		StartCounts: []int{1, 2, 4, 8, 16, 100},
		Seed:        1999,
	}
}

// PaperOptions returns the paper's full protocol.
func PaperOptions() Options {
	return Options{
		Scale:       1.0,
		Runs:        100,
		Reps:        50,
		StartCounts: []int{1, 2, 4, 8, 16, 100},
		Seed:        1999,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.Runs <= 0 {
		o.Runs = d.Runs
	}
	if o.Reps <= 0 {
		o.Reps = d.Reps
	}
	if len(o.StartCounts) == 0 {
		o.StartCounts = d.StartCounts
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// instance materializes the scaled synthetic stand-in for ISPD98 instance i.
func (o Options) instance(i int) *hypergraph.Hypergraph {
	spec := gen.Scaled(gen.MustIBMProfile(i), o.Scale)
	return gen.MustGenerate(spec)
}

// ctx returns the options' context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// debug stamps the options' invariant-checking mode onto an engine config.
func (o Options) debug(cfg core.Config) core.Config {
	cfg.CheckInvariants = o.CheckInvariants
	return cfg
}

// cancelledCell marks a table cell whose evaluation never ran because the
// context was cancelled first.
const cancelledCell = "(cancelled)"

// minAvgCell runs n independent single starts of heuristic h through the
// robust sequential harness and renders the (min cut, avg cut) cell. The
// generator-split discipline matches eval.Multistart exactly, so table values
// are unchanged by the harness on a fault-free run. Failed starts (recovered
// panics, outcomes rejected by verification under CheckInvariants) and
// cancellation are annotated in the cell rather than silently absorbed into
// the statistics.
func (o Options) minAvgCell(h eval.Heuristic, bal partition.Balance, n int, r *rng.RNG) string {
	var verify func(eval.Outcome) error
	if o.CheckInvariants {
		verify = eval.VerifyOutcome(bal)
	}
	samples, _, info := eval.MultistartRobust(o.ctx(), h, n, r, verify)
	if len(samples) == 0 {
		if info.Incomplete {
			return cancelledCell
		}
		return fmt.Sprintf("(all %d starts failed)", n)
	}
	cuts := make([]float64, len(samples))
	for i, s := range samples {
		cuts[i] = float64(s.Cut)
	}
	cell := report.MinAvg(stats.Min(cuts), stats.Mean(cuts))
	if info.Failed > 0 {
		cell += fmt.Sprintf(" [%d failed]", info.Failed)
	}
	if info.Incomplete {
		cell += fmt.Sprintf(" [stopped at %d/%d]", info.Completed+info.Failed, n)
	}
	return cell
}

// samples draws n single starts of h through the cancellable robust harness.
// The generator-split discipline matches eval.Multistart exactly, so on an
// uncancelled fault-free run the outcomes are identical; a cancelled context
// yields just the starts finished so far.
func (o Options) samples(h eval.Heuristic, n int, r *rng.RNG) []eval.Outcome {
	out, _, _ := eval.MultistartRobust(o.ctx(), h, n, r, nil)
	return out
}

// table1Engines enumerates the four optimization engines of Table 1 in the
// paper's order of increasing strength reversed (the paper lists Flat LIFO,
// Flat CLIP, ML LIFO, ML CLIP).
var table1Engines = []struct {
	name string
	ml   bool
	clip bool
}{
	{"Flat LIFO FM", false, false},
	{"Flat CLIP FM", false, true},
	{"ML LIFO FM", true, false},
	{"ML CLIP FM", true, true},
}

// table1Combos enumerates the six implicit-decision combinations.
var table1Combos = []struct {
	update core.UpdatePolicy
	bias   core.Bias
}{
	{core.AllDeltaGain, core.Away},
	{core.AllDeltaGain, core.Part0},
	{core.AllDeltaGain, core.Toward},
	{core.NonzeroOnly, core.Away},
	{core.NonzeroOnly, core.Part0},
	{core.NonzeroOnly, core.Toward},
}

// table1Config builds the flat-engine configuration for one Table 1 row:
// a competent LIFO/CLIP engine in which only the two studied implicit
// decisions vary.
func table1Config(clip bool, update core.UpdatePolicy, bias core.Bias) core.Config {
	return core.Config{
		CLIP:      clip,
		Update:    update,
		Bias:      bias,
		Insertion: core.LIFO,
		BestTie:   core.FirstBest,
		CorkGuard: clip, // Our CLIP ships the corking guard; plain FM rows study the raw decisions
		MaxPasses: 0,
	}
}

// Table1 regenerates the paper's Table 1: best and average cuts with actual
// areas and 2% balance tolerance over Options.Runs independent runs, for
// every combination of the zero-delta-gain update policy and the
// equal-gain-bucket bias, under four engines.
func Table1(o Options) *report.Table {
	o = o.withDefaults()
	instances := []int{1, 2, 3}
	t := report.NewTable(
		fmt.Sprintf("Table 1: min/avg cuts, actual areas, 2%% tolerance, %d runs (scale %.2g)", o.Runs, o.Scale),
		"Engine", "Updates", "Bias", "ibm01", "ibm02", "ibm03")

	hs := make([]*hypergraph.Hypergraph, len(instances))
	for i, inst := range instances {
		hs[i] = o.instance(inst)
	}
	root := rng.New(o.Seed)

	for _, engine := range table1Engines {
		for _, combo := range table1Combos {
			cells := make([]string, 0, len(instances))
			for _, h := range hs {
				bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
				cfg := o.debug(table1Config(engine.clip, combo.update, combo.bias))
				var heur eval.Heuristic
				if engine.ml {
					heur = eval.NewML(engine.name, h, multilevel.Config{Refine: cfg}, bal, 0)
				} else {
					heur = eval.NewFlat(engine.name, h, cfg, bal, root.Split())
				}
				cells = append(cells, o.minAvgCell(heur, bal, o.Runs, root.Split()))
			}
			t.AddRow(append([]string{engine.name, combo.update.String(), combo.bias.String()}, cells...)...)
		}
	}
	return t
}

// Table2 regenerates the paper's Table 2: a naive ("Reported") LIFO FM
// against the tuned ("Our") LIFO FM, min/avg over Options.Runs single-start
// trials, at 2% and 10% balance tolerance with actual areas. The naive
// configuration stands in for the irreproducible external implementation of
// [Alpert 98] — the paper's thesis is precisely that silent implementation
// choices produce such spreads.
func Table2(o Options) *report.Table {
	return tableReportedVsOurs(o, false,
		"Table 2: LIFO FM — naive (\"Reported\") vs tuned (\"Our\") implementation")
}

// Table3 regenerates the paper's Table 3: naive CLIP (corking-prone)
// against our CLIP with the corking guard (cells with area greater than the
// balance slack never enter the gain structure).
func Table3(o Options) *report.Table {
	return tableReportedVsOurs(o, true,
		"Table 3: CLIP FM — corking-prone (\"Reported\") vs corking-guarded (\"Our\")")
}

func tableReportedVsOurs(o Options, clip bool, title string) *report.Table {
	o = o.withDefaults()
	instances := []int{1, 2, 3}
	t := report.NewTable(
		fmt.Sprintf("%s, %d single-start trials (scale %.2g)", title, o.Runs, o.Scale),
		"Tolerance", "Algorithm", "ibm01", "ibm02", "ibm03")

	hs := make([]*hypergraph.Hypergraph, len(instances))
	for i, inst := range instances {
		hs[i] = o.instance(inst)
	}
	kind := "LIFO"
	if clip {
		kind = "CLIP"
	}
	root := rng.New(o.Seed + 2)
	for _, tol := range []float64{0.02, 0.10} {
		for _, variant := range []struct {
			label string
			cfg   core.Config
		}{
			{"Reported " + kind, core.NaiveConfig(clip)},
			{"Our " + kind, core.StrongConfig(clip)},
		} {
			cells := make([]string, 0, len(instances))
			for _, h := range hs {
				bal := partition.NewBalance(h.TotalVertexWeight(), tol)
				heur := eval.NewFlat(variant.label, h, o.debug(variant.cfg), bal, root.Split())
				cells = append(cells, o.minAvgCell(heur, bal, o.Runs, root.Split()))
			}
			t.AddRow(append([]string{fmt.Sprintf("%02.0f%%", tol*100), variant.label}, cells...)...)
		}
	}
	return t
}

// table45Instances are the nine ISPD98 instances evaluated in Tables 4/5.
var table45Instances = []int{1, 2, 3, 4, 5, 6, 10, 14, 18}

// Table45 regenerates Table 4 (tolerance 0.02) or Table 5 (tolerance 0.10):
// the hMetis-1.5-style multilevel partitioner evaluated in its default
// configuration, varying only the number of starts (Configurations 1-6 =
// 1, 2, 4, 8, 16, 100 starts, with a V-cycle applied to the best of the
// starts). Each configuration is repeated Options.Reps times; cells show
// average best cut / average normalized CPU seconds.
func Table45(o Options, tolerance float64) *report.Table {
	o = o.withDefaults()
	name := "Table 4"
	if tolerance > 0.05 {
		name = "Table 5"
	}
	headers := []string{"Circuit"}
	for i := range o.StartCounts {
		headers = append(headers, fmt.Sprintf("Cfg %d (%d starts)", i+1, o.StartCounts[i]))
	}
	t := report.NewTable(
		fmt.Sprintf("%s: ML partitioner, %.0f%% tolerance, avg cut / avg normalized CPU sec, %d reps (scale %.2g)",
			name, tolerance*100, o.Reps, o.Scale),
		headers...)

	root := rng.New(o.Seed + 45)
	for _, inst := range table45Instances {
		h := o.instance(inst)
		bal := partition.NewBalance(h.TotalVertexWeight(), tolerance)
		heur := eval.NewML("ML", h, multilevel.Config{Refine: o.debug(core.StrongConfig(false))}, bal, 1)
		points, incomplete := eval.EvaluateConfigurationsCtx(o.ctx(), heur, o.StartCounts, o.Reps, root.Split())
		row := []string{fmt.Sprintf("ibm%02d", inst)}
		for _, p := range points {
			cell := report.CutTime(p.AvgBestCut, p.AvgNormalizedSecs)
			if o.Spread && len(p.Cuts) > 1 {
				cell += fmt.Sprintf(" (sd %.1f)", stats.Summarize(p.Cuts).StdDev)
			}
			row = append(row, cell)
		}
		// Never publish a truncated protocol as if it were complete: cells
		// the cancelled sweep did not reach are marked, not omitted.
		for len(row) < len(headers) {
			row = append(row, cancelledCell)
		}
		t.AddRow(row...)
		if incomplete {
			break
		}
	}
	return t
}
