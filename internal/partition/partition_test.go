package partition

import (
	"testing"
	"testing/quick"

	"hgpart/internal/hypergraph"
	"hgpart/internal/rng"
)

func tinyGraph(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(4, 3)
	b.AddVertices(4, 1)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 1, 2, 3)
	b.AddEdge(1, 0, 3)
	return b.MustBuild()
}

func randomGraph(seed uint64, nv, ne int) *hypergraph.Hypergraph {
	r := rng.New(seed)
	b := hypergraph.NewBuilder(nv, ne)
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + r.Intn(10)))
	}
	for e := 0; e < ne; e++ {
		size := 2 + r.Intn(4)
		pins := make([]int32, size)
		for i := range pins {
			pins[i] = int32(r.Intn(nv))
		}
		b.AddEdge(1, pins...)
	}
	return b.MustBuild()
}

func TestNewBalanceBounds(t *testing.T) {
	b := NewBalance(1000, 0.02)
	if b.Lo != 490 || b.Hi != 510 {
		t.Fatalf("2%% of 1000: got [%d,%d], want [490,510]", b.Lo, b.Hi)
	}
	b = NewBalance(1000, 0.10)
	if b.Lo != 450 || b.Hi != 550 {
		t.Fatalf("10%% of 1000: got [%d,%d], want [450,550]", b.Lo, b.Hi)
	}
	if b.Slack() != 100 {
		t.Fatalf("slack %d", b.Slack())
	}
	if !b.Contains(500) || b.Contains(560) || b.Contains(440) {
		t.Fatal("Contains wrong")
	}
}

func TestNewBalanceRounding(t *testing.T) {
	// Odd totals must round so that an exact split remains legal.
	b := NewBalance(101, 0.02)
	if !b.Contains(50) && !b.Contains(51) {
		t.Fatalf("odd-total bisection infeasible: [%d,%d]", b.Lo, b.Hi)
	}
	if b.Hi > 101 {
		t.Fatalf("Hi %d exceeds total", b.Hi)
	}
}

func TestAssignAndCut(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	if err := p.Assign([]uint8{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	// net0={0,1} uncut; net1={1,2,3} cut (w2); net2={0,3} cut (w1)
	if p.Cut() != 3 {
		t.Fatalf("cut %d, want 3", p.Cut())
	}
	if p.Cut() != p.CutFromScratch() {
		t.Fatal("incremental != scratch")
	}
	if p.Area(0) != 2 || p.Area(1) != 2 {
		t.Fatalf("areas %d/%d", p.Area(0), p.Area(1))
	}
}

func TestAssignRejects(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	if err := p.Assign([]uint8{0, 0, 1}); err == nil {
		t.Fatal("short side vector accepted")
	}
	if err := p.Assign([]uint8{0, 0, 1, 2}); err == nil {
		t.Fatal("side 2 accepted")
	}
	p.Fix(0, 1)
	if err := p.Assign([]uint8{0, 0, 1, 1}); err == nil {
		t.Fatal("assignment conflicting with fixed vertex accepted")
	}
}

func TestMoveUpdatesCutIncrementally(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	if err := p.Assign([]uint8{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	before := p.Cut()
	delta := p.Move(1) // vertex 1 to side 1
	if p.Cut() != before+delta {
		t.Fatal("Move delta inconsistent with Cut")
	}
	if p.Cut() != p.CutFromScratch() {
		t.Fatalf("incremental %d != scratch %d", p.Cut(), p.CutFromScratch())
	}
	if p.Side(1) != 1 {
		t.Fatal("side not flipped")
	}
}

func TestGainPredictsMove(t *testing.T) {
	// gain(v) must equal the cut decrease of moving v, for random states.
	if err := quick.Check(func(seed uint64) bool {
		h := randomGraph(seed, 25, 40)
		p := New(h)
		r := rng.New(seed ^ 0xabc)
		sides := make([]uint8, h.NumVertices())
		for i := range sides {
			sides[i] = uint8(r.Intn(2))
		}
		if err := p.Assign(sides); err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			v := int32(r.Intn(h.NumVertices()))
			g := p.Gain(v)
			before := p.Cut()
			p.Move(v)
			if before-p.Cut() != g {
				return false
			}
			if p.Cut() != p.CutFromScratch() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveSequencePreservesInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		h := randomGraph(seed, 30, 50)
		p := New(h)
		r := rng.New(seed ^ 0xdef)
		total := h.TotalVertexWeight()
		for i := 0; i < 100; i++ {
			p.Move(int32(r.Intn(h.NumVertices())))
		}
		if p.Area(0)+p.Area(1) != total {
			return false
		}
		return p.Cut() == p.CutFromScratch()
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSideCount(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	if err := p.Assign([]uint8{0, 1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	// net1 = {1,2,3}: sides 1,1,0
	if p.SideCount(1, 0) != 1 || p.SideCount(1, 1) != 2 {
		t.Fatalf("side counts %d/%d", p.SideCount(1, 0), p.SideCount(1, 1))
	}
}

func TestFixedVertices(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	p.Fix(2, 1)
	if p.Side(2) != 1 {
		t.Fatal("Fix did not move vertex to its side")
	}
	if !p.IsFixed(2) || p.IsFixed(0) {
		t.Fatal("IsFixed wrong")
	}
	if p.NumFixed() != 1 {
		t.Fatalf("NumFixed %d", p.NumFixed())
	}
	bal := NewBalance(h.TotalVertexWeight(), 0.5)
	if p.MoveLegal(2, bal) {
		t.Fatal("fixed vertex reported movable")
	}
	p.Fix(2, Free)
	if p.IsFixed(2) {
		t.Fatal("unfix failed")
	}
}

func TestMovePanicsOnFixed(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	p.Fix(0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("moving a fixed vertex did not panic")
		}
	}()
	p.Move(0)
}

func TestMoveLegal(t *testing.T) {
	h := tinyGraph(t) // 4 unit vertices
	p := New(h)
	if err := p.Assign([]uint8{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	tight := Balance{Lo: 2, Hi: 2} // exact bisection
	for v := int32(0); v < 4; v++ {
		if p.MoveLegal(v, tight) {
			t.Fatalf("move of %d legal under exact bisection", v)
		}
	}
	loose := Balance{Lo: 1, Hi: 3}
	if !p.MoveLegal(0, loose) {
		t.Fatal("move illegal under loose balance")
	}
}

func TestBalanceViolation(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	if err := p.Assign([]uint8{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	b := Balance{Lo: 1, Hi: 3}
	// side0=4 exceeds Hi by 1; side1=0 under Lo by 1.
	if got := p.BalanceViolation(b); got != 2 {
		t.Fatalf("violation %d, want 2", got)
	}
	if p.Legal(b) {
		t.Fatal("illegal state reported legal")
	}
}

func TestCopyIndependence(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	if err := p.Assign([]uint8{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	cp := p.Copy()
	p.Move(0)
	if cp.Side(0) != 0 {
		t.Fatal("copy mutated by original's Move")
	}
	if cp.Cut() != cp.CutFromScratch() {
		t.Fatal("copy inconsistent")
	}
}

func TestRandomBalancedLegality(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		h := randomGraph(seed, 60, 80)
		p := New(h)
		bal := NewBalance(h.TotalVertexWeight(), 0.10)
		p.RandomBalanced(rng.New(seed), bal)
		return p.Legal(bal) && p.Cut() == p.CutFromScratch()
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBalancedRespectsFixed(t *testing.T) {
	h := randomGraph(7, 50, 60)
	p := New(h)
	p.Fix(3, 1)
	p.Fix(9, 0)
	bal := NewBalance(h.TotalVertexWeight(), 0.10)
	p.RandomBalanced(rng.New(1), bal)
	if p.Side(3) != 1 || p.Side(9) != 0 {
		t.Fatal("RandomBalanced moved fixed vertices")
	}
}

func TestSidesReturnsCopy(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	s := p.Sides()
	s[0] = 1
	if p.Side(0) != 0 {
		t.Fatal("Sides aliases internal state")
	}
}

func TestFixedSideAccessor(t *testing.T) {
	h := tinyGraph(t)
	p := New(h)
	if p.FixedSide(0) != Free {
		t.Fatal("default not Free")
	}
	p.Fix(0, 1)
	if p.FixedSide(0) != 1 {
		t.Fatal("FixedSide after Fix")
	}
}

func TestNewBalanceClamping(t *testing.T) {
	// Very loose tolerance must clamp Hi to total and Lo to >= 0.
	b := NewBalance(10, 3.0)
	if b.Hi > 10 || b.Lo < 0 {
		t.Fatalf("bounds not clamped: [%d,%d]", b.Lo, b.Hi)
	}
}

func TestRandomBalancedRepairsSkewedWeights(t *testing.T) {
	// One huge vertex plus dust: greedy fill overshoots and the repair pass
	// must pull the light side back above Lo when feasible.
	b := hypergraph.NewBuilder(21, 0)
	big := b.AddVertex(100)
	for i := 0; i < 20; i++ {
		b.AddVertex(5)
	}
	_ = big
	h := b.MustBuild()
	// total 200; tolerance 0.2 -> [80,120]: the macro must sit alone-ish.
	bal := NewBalance(h.TotalVertexWeight(), 0.2)
	for seed := uint64(0); seed < 10; seed++ {
		p := New(h)
		p.RandomBalanced(rng.New(seed), bal)
		if !p.Legal(bal) {
			t.Fatalf("seed %d: RandomBalanced failed on skewed weights: %d/%d",
				seed, p.Area(0), p.Area(1))
		}
	}
}
