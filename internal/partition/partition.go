// Package partition maintains 2-way partitioning state over a hypergraph:
// side assignment, per-side areas, per-net side pin counts, the (weighted)
// cut, balance constraints and fixed vertices.
//
// The incremental state here — per-net pin counts by side and an
// incrementally maintained cut — is the substrate every FM variant in
// internal/core builds on. Keeping it separate lets tests cross-check the
// incremental cut against a from-scratch recount (a key invariant).
package partition

import (
	"fmt"

	"hgpart/internal/hypergraph"
	"hgpart/internal/rng"
)

// Free marks a vertex that may be assigned to either side.
const Free int8 = -1

// Balance expresses the paper's balance constraint: each side's total vertex
// weight must lie in [Lo, Hi]. A tolerance of 2% means sides in
// [49%, 51%] of total weight; 10% means [45%, 55%].
type Balance struct {
	Lo, Hi int64
}

// NewBalance converts a fractional tolerance (0.02 for "2%") into absolute
// bounds for a hypergraph of the given total weight.
func NewBalance(totalWeight int64, tolerance float64) Balance {
	half := float64(totalWeight) / 2
	lo := int64(half * (1 - tolerance))
	hi := int64(half*(1+tolerance) + 0.9999)
	if hi > totalWeight {
		hi = totalWeight
	}
	if lo < 0 {
		lo = 0
	}
	return Balance{Lo: lo, Hi: hi}
}

// Slack returns Hi-Lo, the total freedom in side size. A vertex heavier than
// the slack can never move legally once both sides are within bounds; this
// is the threshold behind the paper's corking guard.
func (b Balance) Slack() int64 { return b.Hi - b.Lo }

// Contains reports whether a side area satisfies the constraint.
func (b Balance) Contains(area int64) bool { return area >= b.Lo && area <= b.Hi }

// P is a mutable 2-way partition of a hypergraph.
type P struct {
	H    *hypergraph.Hypergraph
	side []uint8 // 0 or 1 per vertex
	// fixedSide[v] is Free, 0 or 1. Fixed vertices model terminal
	// propagation / pad locations in top-down placement.
	fixedSide []int8

	area  [2]int64
	count [][2]int32 // per-edge pin counts by side
	cut   int64      // weighted cut, maintained incrementally
}

// New allocates partition state for h with every vertex free and on side 0.
// Call Assign or one of the initial-solution generators before partitioning.
func New(h *hypergraph.Hypergraph) *P {
	p := &P{
		H:         h,
		side:      make([]uint8, h.NumVertices()),
		fixedSide: make([]int8, h.NumVertices()),
		count:     make([][2]int32, h.NumEdges()),
	}
	for i := range p.fixedSide {
		p.fixedSide[i] = Free
	}
	p.recount()
	return p
}

// recount rebuilds areas, per-net counts and the cut from the side vector.
func (p *P) recount() {
	p.area = [2]int64{}
	for v := 0; v < p.H.NumVertices(); v++ {
		p.area[p.side[v]] += p.H.VertexWeight(int32(v))
	}
	p.cut = 0
	for e := 0; e < p.H.NumEdges(); e++ {
		var c [2]int32
		for _, v := range p.H.Pins(int32(e)) {
			c[p.side[v]]++
		}
		p.count[e] = c
		if c[0] > 0 && c[1] > 0 {
			p.cut += p.H.EdgeWeight(int32(e))
		}
	}
}

// Assign sets the side of every vertex at once and rebuilds derived state.
// len(sides) must equal the vertex count; entries must be 0 or 1 and must
// agree with any fixed vertices.
func (p *P) Assign(sides []uint8) error {
	if len(sides) != len(p.side) {
		return fmt.Errorf("partition: Assign got %d sides for %d vertices", len(sides), len(p.side))
	}
	for v, s := range sides {
		if s > 1 {
			return fmt.Errorf("partition: vertex %d assigned invalid side %d", v, s)
		}
		if f := p.fixedSide[v]; f != Free && uint8(f) != s {
			return fmt.Errorf("partition: vertex %d is fixed to side %d but assigned %d", v, f, s)
		}
	}
	copy(p.side, sides)
	p.recount()
	return nil
}

// Side returns the current side of v.
func (p *P) Side(v int32) uint8 { return p.side[v] }

// Sides returns a copy of the full side vector.
func (p *P) Sides() []uint8 {
	cp := make([]uint8, len(p.side))
	copy(cp, p.side)
	return cp
}

// Fix pins vertex v to a side (or frees it with Free). If the current
// assignment disagrees, the vertex is moved.
func (p *P) Fix(v int32, side int8) {
	p.fixedSide[v] = side
	if side != Free && p.side[v] != uint8(side) {
		p.Move(v)
	}
}

// FixedSide returns Free, 0 or 1 for v.
func (p *P) FixedSide(v int32) int8 { return p.fixedSide[v] }

// IsFixed reports whether v may not move.
func (p *P) IsFixed(v int32) bool { return p.fixedSide[v] != Free }

// NumFixed returns how many vertices are fixed.
func (p *P) NumFixed() int {
	n := 0
	for _, f := range p.fixedSide {
		if f != Free {
			n++
		}
	}
	return n
}

// Area returns the total vertex weight currently on side s.
func (p *P) Area(s uint8) int64 { return p.area[s] }

// Cut returns the incrementally maintained weighted cut.
func (p *P) Cut() int64 { return p.cut }

// SideCount returns how many pins of edge e lie on side s.
func (p *P) SideCount(e int32, s uint8) int32 { return p.count[e][s] }

// Move flips vertex v to the other side, updating areas, per-net counts and
// the cut in O(sum of incident net sizes is NOT required — O(degree)).
// It returns the change in cut (negative is improvement). Fixed vertices may
// not be moved; callers enforce that (the method panics to catch bugs).
func (p *P) Move(v int32) int64 {
	if p.fixedSide[v] != Free && uint8(p.fixedSide[v]) == p.side[v] {
		panic("partition: moving a fixed vertex off its fixed side")
	}
	from := p.side[v]
	to := 1 - from
	w := p.H.VertexWeight(v)
	var delta int64
	for _, e := range p.H.IncidentEdges(v) {
		c := &p.count[e]
		ew := p.H.EdgeWeight(e)
		wasCut := c[0] > 0 && c[1] > 0
		c[from]--
		c[to]++
		isCut := c[0] > 0 && c[1] > 0
		if wasCut && !isCut {
			delta -= ew
		} else if !wasCut && isCut {
			delta += ew
		}
	}
	p.side[v] = to
	p.area[from] -= w
	p.area[to] += w
	p.cut += delta
	return delta
}

// Gain returns the FM gain of moving v: the cut decrease if v flips sides.
// gain(v) = sum over incident nets e of
//
//	+w(e) if v is the only pin of e on its side (net becomes uncut)
//	-w(e) if all pins of e are on v's side      (net becomes cut)
func (p *P) Gain(v int32) int64 {
	from := p.side[v]
	to := 1 - from
	var g int64
	for _, e := range p.H.IncidentEdges(v) {
		c := p.count[e]
		w := p.H.EdgeWeight(e)
		if c[from] == 1 {
			g += w
		}
		if c[to] == 0 {
			g -= w
		}
	}
	return g
}

// CutFromScratch recomputes the weighted cut directly from the side vector,
// ignoring incremental state. Tests use it to validate Move.
func (p *P) CutFromScratch() int64 {
	var cut int64
	for e := 0; e < p.H.NumEdges(); e++ {
		pins := p.H.Pins(int32(e))
		if len(pins) == 0 {
			continue
		}
		s0 := p.side[pins[0]]
		for _, v := range pins[1:] {
			if p.side[v] != s0 {
				cut += p.H.EdgeWeight(int32(e))
				break
			}
		}
	}
	return cut
}

// Legal reports whether both sides satisfy the balance constraint.
func (p *P) Legal(b Balance) bool {
	return b.Contains(p.area[0]) && b.Contains(p.area[1])
}

// MoveLegal reports whether flipping v keeps both sides within b.
func (p *P) MoveLegal(v int32, b Balance) bool {
	if p.fixedSide[v] != Free {
		return false
	}
	from := p.side[v]
	w := p.H.VertexWeight(v)
	return b.Contains(p.area[from]-w) && b.Contains(p.area[1-from]+w)
}

// BalanceViolation returns how far the partition is from feasibility: the
// total amount by which side areas exceed Hi or fall below Lo (0 when legal).
func (p *P) BalanceViolation(b Balance) int64 {
	var viol int64
	for s := 0; s < 2; s++ {
		if p.area[s] > b.Hi {
			viol += p.area[s] - b.Hi
		}
		if p.area[s] < b.Lo {
			viol += b.Lo - p.area[s]
		}
	}
	return viol
}

// Copy returns an independent deep copy of the partition state.
func (p *P) Copy() *P {
	cp := &P{
		H:         p.H,
		side:      make([]uint8, len(p.side)),
		fixedSide: make([]int8, len(p.fixedSide)),
		area:      p.area,
		count:     make([][2]int32, len(p.count)),
		cut:       p.cut,
	}
	copy(cp.side, p.side)
	copy(cp.fixedSide, p.fixedSide)
	copy(cp.count, p.count)
	return cp
}

// RandomBalanced produces a random initial solution respecting fixed
// vertices and attempting to satisfy b: vertices are visited in random order
// (heaviest first among the random blocks would be more robust, but the
// paper's testbenches use plain randomized greedy) and each is placed on the
// side with smaller current area, subject to fixed constraints.
func (p *P) RandomBalanced(r *rng.RNG, b Balance) {
	sides := make([]uint8, len(p.side))
	var area [2]int64
	// Fixed vertices first.
	for v, f := range p.fixedSide {
		if f != Free {
			sides[v] = uint8(f)
			area[f] += p.H.VertexWeight(int32(v))
		}
	}
	order := r.Perm(len(p.side))
	for _, v := range order {
		if p.fixedSide[v] != Free {
			continue
		}
		w := p.H.VertexWeight(int32(v))
		// Random choice when both fit comfortably; otherwise lighter side.
		var s uint8
		if area[0]+w <= b.Hi && area[1]+w <= b.Hi {
			s = uint8(r.Intn(2))
		} else if area[0] <= area[1] {
			s = 0
		} else {
			s = 1
		}
		sides[v] = s
		area[s] += w
	}
	// Repair pass: while one side is under Lo, move the lightest helpful
	// vertices from the heavy side. Simple linear scans suffice because the
	// greedy fill rarely leaves more than a small imbalance.
	for iter := 0; iter < 64; iter++ {
		var light uint8
		if area[0] < b.Lo {
			light = 0
		} else if area[1] < b.Lo {
			light = 1
		} else {
			break
		}
		need := b.Lo - area[light]
		moved := false
		for _, v := range order {
			if p.fixedSide[v] != Free || sides[v] == light {
				continue
			}
			w := p.H.VertexWeight(int32(v))
			if w <= need+(b.Hi-b.Lo) && area[1-light]-w >= b.Lo {
				sides[v] = light
				area[light] += w
				area[1-light] -= w
				moved = true
				if area[light] >= b.Lo {
					break
				}
				need = b.Lo - area[light]
			}
		}
		if !moved {
			break
		}
	}
	if err := p.Assign(sides); err != nil {
		panic(err) // internal construction cannot violate Assign's checks
	}
}
