package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hgpart/internal/rng"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("basic fields: %+v", s)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("mean %v", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almost(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev %v", s.StdDev)
	}
	if !almost(s.Median, 4.5, 1e-12) {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.StdDev != 0 || s.Median != 3 || s.Q1 != 3 || s.Q3 != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 5 {
		t.Fatal("extremes")
	}
	if !almost(Quantile(sorted, 0.5), 3, 1e-12) {
		t.Fatal("median")
	}
	if !almost(Quantile(sorted, 0.25), 2, 1e-12) {
		t.Fatal("q1")
	}
	// Interpolation between points.
	if !almost(Quantile([]float64{0, 10}, 0.3), 3, 1e-12) {
		t.Fatal("interpolation")
	}
}

func TestMeanAndMin(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Min([]float64{3, 1, 2}) != 1 {
		t.Fatal("Min")
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64() + 0.5 // clearly shifted
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.01) {
		t.Fatalf("obvious shift not detected: p=%v", res.P)
	}
}

func TestMannWhitneyNullNoFalsePositive(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 80)
	b := make([]float64, 80)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64()
	}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Fatalf("identical distributions flagged: p=%v", res.P)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	a := []float64{5, 5, 5}
	b := []float64{5, 5, 5, 5}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("tied samples should give p=1, got %v", res.P)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestMannWhitneySymmetry(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]float64, 20)
		b := make([]float64, 25)
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64() * 1.5
		}
		ra, err1 := MannWhitneyU(a, b)
		rb, err2 := MannWhitneyU(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(ra.P, rb.P, 1e-9)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWilcoxonDetectsPairedShift(t *testing.T) {
	r := rng.New(3)
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		base := r.Float64()
		a[i] = base
		b[i] = base + 0.2 + 0.05*r.Float64()
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.01) {
		t.Fatalf("paired shift not detected: p=%v", res.P)
	}
}

func TestWilcoxonNull(t *testing.T) {
	r := rng.New(4)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = r.Float64()
		b[i] = a[i] + (r.Float64()-0.5)*0.01 // symmetric noise
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Fatalf("null rejected: p=%v", res.P)
	}
}

func TestWilcoxonAllZeroDiffs(t *testing.T) {
	a := []float64{1, 2, 3}
	res, err := WilcoxonSignedRank(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Fatalf("identical pairs should give p=1, got %v", res.P)
	}
}

func TestWilcoxonLengthMismatch(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNormalCDF(t *testing.T) {
	if !almost(normalCDF(0), 0.5, 1e-12) {
		t.Fatal("cdf(0)")
	}
	if !almost(normalCDF(1.96), 0.975, 0.001) {
		t.Fatalf("cdf(1.96) = %v", normalCDF(1.96))
	}
	if !almost(normalCDF(-1.96), 0.025, 0.001) {
		t.Fatal("cdf(-1.96)")
	}
}

func TestPValueInUnitInterval(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + int(seed%20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.Float64()
			b[i] = r.Float64() * 2
		}
		u, err1 := MannWhitneyU(a, b)
		w, err2 := WilcoxonSignedRank(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return u.P >= 0 && u.P <= 1 && w.P >= 0 && w.P <= 1
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
