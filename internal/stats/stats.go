// Package stats provides the descriptive and inferential statistics the
// paper's reporting methodology calls for: distribution summaries for
// multistart results, and significance tests (following Brglez's critique of
// chance effects in CAD benchmarking) for claims that one heuristic beats
// another.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds the descriptors the paper says any flexible presentation
// medium should include alongside min/average values.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	StdDev   float64 // sample standard deviation (n-1)
	Median   float64
	Q1, Q3   float64
	Sum      float64
}

// Summarize computes a Summary of xs. It panics on empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q1 = Quantile(sorted, 0.25)
	s.Q3 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of sorted data using linear
// interpolation. sorted must be ascending and non-empty.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// TestResult reports a two-sided hypothesis test.
type TestResult struct {
	// Statistic is the test statistic (U for Mann-Whitney, W for Wilcoxon).
	Statistic float64
	// Z is the normal-approximation z-score.
	Z float64
	// P is the two-sided p-value under the normal approximation.
	P float64
}

// Significant reports whether the test rejects at level alpha.
func (t TestResult) Significant(alpha float64) bool { return t.P < alpha }

// MannWhitneyU performs the two-sided Mann-Whitney U test (a.k.a. Wilcoxon
// rank-sum) for whether samples a and b come from distributions with the
// same location — the appropriate test for comparing two heuristics'
// independent multistart cut distributions. Uses the normal approximation
// with tie correction; both samples should have at least ~8 points for the
// approximation to be reasonable.
func MannWhitneyU(a, b []float64) (TestResult, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return TestResult{}, errors.New("stats: MannWhitneyU needs non-empty samples")
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range a {
		all = append(all, obs{x, 0})
	}
	for _, x := range b {
		all = append(all, obs{x, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks; accumulate tie correction term sum(t^3 - t).
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	u2 := float64(n1)*float64(n2) - u1
	u := math.Min(u1, u2)

	mu := float64(n1) * float64(n2) / 2
	nTot := float64(n1 + n2)
	sigma2 := float64(n1) * float64(n2) / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if sigma2 <= 0 {
		// All observations tied: no evidence of difference.
		return TestResult{Statistic: u, Z: 0, P: 1}, nil
	}
	z := (u - mu) / math.Sqrt(sigma2)
	p := 2 * normalCDF(-math.Abs(z))
	return TestResult{Statistic: u, Z: z, P: p}, nil
}

// WilcoxonSignedRank performs the two-sided Wilcoxon signed-rank test on
// paired samples (e.g. two heuristics run on the same instances with shared
// seeds). Zero differences are dropped, per standard practice.
func WilcoxonSignedRank(a, b []float64) (TestResult, error) {
	if len(a) != len(b) {
		return TestResult{}, errors.New("stats: WilcoxonSignedRank needs equal-length samples")
	}
	type d struct {
		abs  float64
		sign float64
	}
	var ds []d
	for i := range a {
		diff := a[i] - b[i]
		if diff == 0 {
			continue
		}
		s := 1.0
		if diff < 0 {
			s = -1.0
		}
		ds = append(ds, d{math.Abs(diff), s})
	}
	n := len(ds)
	if n == 0 {
		return TestResult{Statistic: 0, Z: 0, P: 1}, nil
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].abs < ds[j].abs })
	var wPlus float64
	var tieTerm float64
	for i := 0; i < n; {
		j := i
		for j < n && ds[j].abs == ds[i].abs {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if ds[k].sign > 0 {
				wPlus += mid
			}
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	nf := float64(n)
	mu := nf * (nf + 1) / 4
	sigma2 := nf*(nf+1)*(2*nf+1)/24 - tieTerm/48
	if sigma2 <= 0 {
		return TestResult{Statistic: wPlus, Z: 0, P: 1}, nil
	}
	z := (wPlus - mu) / math.Sqrt(sigma2)
	p := 2 * normalCDF(-math.Abs(z))
	return TestResult{Statistic: wPlus, Z: z, P: p}, nil
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
