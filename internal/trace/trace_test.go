package trace

import (
	"bytes"
	"strings"
	"testing"

	"hgpart/internal/core"
	"hgpart/internal/gen"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func runTraced(t *testing.T, keep bool) (*Recorder, core.Result) {
	t.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "trace-test", Cells: 300, Nets: 330, AvgNetSize: 3.3,
		NumMacros: 2, MaxMacroFrac: 0.03, NumGlobalNets: 1,
		GlobalNetFrac: 0.01, Locality: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	eng := core.NewEngine(h, core.StrongConfig(false), bal, rng.New(1))
	rec := &Recorder{KeepTrajectories: keep}
	eng.SetTracer(rec)
	p := partition.New(h)
	p.RandomBalanced(rng.New(2), bal)
	res := eng.Run(p)
	return rec, res
}

func TestRecorderAgreesWithResult(t *testing.T) {
	rec, res := runTraced(t, false)
	if len(rec.Passes()) != res.Passes {
		t.Fatalf("recorded %d passes, engine reports %d", len(rec.Passes()), res.Passes)
	}
	var moves int64
	for _, p := range rec.Passes() {
		moves += p.Moves
	}
	if moves != res.Moves {
		t.Fatalf("recorded %d moves, engine reports %d", moves, res.Moves)
	}
	last := rec.Passes()[len(rec.Passes())-1]
	if last.EndCut != res.Cut {
		t.Fatalf("final pass end cut %d, result %d", last.EndCut, res.Cut)
	}
}

func TestPassCutsMonotoneAcrossPasses(t *testing.T) {
	rec, _ := runTraced(t, false)
	ps := rec.Passes()
	for i := 1; i < len(ps); i++ {
		if ps[i].StartCut != ps[i-1].EndCut {
			t.Fatalf("pass %d starts at %d but previous ended at %d",
				ps[i].Pass, ps[i].StartCut, ps[i-1].EndCut)
		}
		if ps[i].EndCut > ps[i].StartCut {
			t.Fatalf("pass %d worsened the cut", ps[i].Pass)
		}
	}
}

func TestTrajectoriesKept(t *testing.T) {
	rec, res := runTraced(t, true)
	var pts int64
	for _, p := range rec.Passes() {
		pts += int64(len(p.Cuts))
	}
	if pts != res.Moves {
		t.Fatalf("trajectory points %d != moves %d", pts, res.Moves)
	}
}

func TestCSVOutputs(t *testing.T) {
	rec, _ := runTraced(t, true)
	var sum bytes.Buffer
	if err := rec.WriteSummaryCSV(&sum); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sum.String()), "\n")
	if lines[0] != "pass,start_cut,end_cut,moves,rolled_back" {
		t.Fatalf("summary header %q", lines[0])
	}
	if len(lines)-1 != len(rec.Passes()) {
		t.Fatalf("summary rows %d, passes %d", len(lines)-1, len(rec.Passes()))
	}
	var traj bytes.Buffer
	if err := rec.WriteTrajectoryCSV(&traj); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(traj.String(), "pass,move,cut\n") {
		t.Fatal("trajectory header missing")
	}
}

func TestSummarize(t *testing.T) {
	rec, res := runTraced(t, false)
	s := rec.Summarize()
	if s.Passes != res.Passes || s.TotalMoves != res.Moves {
		t.Fatalf("summary %+v vs result %+v", s, res)
	}
	if s.FinalCut != res.Cut {
		t.Fatal("summary final cut mismatch")
	}
	if s.ShortestPassMoves > s.TotalMoves {
		t.Fatal("shortest pass cannot exceed total")
	}
}

func TestReset(t *testing.T) {
	rec, _ := runTraced(t, false)
	rec.Reset()
	if len(rec.Passes()) != 0 {
		t.Fatal("Reset left passes")
	}
	if s := rec.Summarize(); s.Passes != 0 {
		t.Fatal("Reset summary not empty")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n--
	if w.n <= 0 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestCSVWriteErrorsPropagate(t *testing.T) {
	rec, _ := runTraced(t, true)
	if err := rec.WriteSummaryCSV(&failWriter{n: 1}); err == nil {
		t.Fatal("summary header write error swallowed")
	}
	if err := rec.WriteSummaryCSV(&failWriter{n: 2}); err == nil {
		t.Fatal("summary row write error swallowed")
	}
	if err := rec.WriteTrajectoryCSV(&failWriter{n: 1}); err == nil {
		t.Fatal("trajectory header write error swallowed")
	}
	if err := rec.WriteTrajectoryCSV(&failWriter{n: 2}); err == nil {
		t.Fatal("trajectory row write error swallowed")
	}
}
