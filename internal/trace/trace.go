// Package trace records FM execution trajectories — per-pass cut curves,
// move counts and rollback depths. It implements core.Tracer.
//
// The paper's methodology sections lean on exactly this kind of evidence:
// the corking diagnosis came from "traces of CLIP executions", and Gent et
// al.'s "Do collect all data possible" is quoted approvingly. A Recorder
// costs two slice appends per move and can be dumped to CSV for offline
// analysis, or summarized in-process.
package trace

import (
	"fmt"
	"io"
)

// PassRecord summarizes one FM pass.
type PassRecord struct {
	Pass       int
	StartCut   int64
	EndCut     int64
	Moves      int64
	RolledBack int
	// Cuts holds the running cut after each move (present only when the
	// Recorder keeps trajectories).
	Cuts []int64
}

// Recorder implements core.Tracer.
type Recorder struct {
	// KeepTrajectories retains the per-move cut curve of every pass (memory
	// proportional to total moves). When false only per-pass summaries are
	// kept.
	KeepTrajectories bool

	passes  []PassRecord
	current *PassRecord
}

// PassStart implements core.Tracer.
func (r *Recorder) PassStart(pass int, cut int64) {
	r.passes = append(r.passes, PassRecord{Pass: pass, StartCut: cut})
	r.current = &r.passes[len(r.passes)-1]
}

// MoveMade implements core.Tracer.
func (r *Recorder) MoveMade(pass int, moveIdx int64, v int32, cut int64) {
	if r.current == nil {
		return
	}
	r.current.Moves = moveIdx
	if r.KeepTrajectories {
		r.current.Cuts = append(r.current.Cuts, cut)
	}
}

// PassEnd implements core.Tracer.
func (r *Recorder) PassEnd(pass int, bestCut int64, moves int64, rolledBack int) {
	if r.current == nil {
		return
	}
	r.current.EndCut = bestCut
	r.current.Moves = moves
	r.current.RolledBack = rolledBack
	r.current = nil
}

// Passes returns the recorded pass summaries.
func (r *Recorder) Passes() []PassRecord { return r.passes }

// Reset clears all recorded data for reuse.
func (r *Recorder) Reset() {
	r.passes = r.passes[:0]
	r.current = nil
}

// WriteSummaryCSV emits one row per pass:
// pass,start_cut,end_cut,moves,rolled_back.
func (r *Recorder) WriteSummaryCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "pass,start_cut,end_cut,moves,rolled_back"); err != nil {
		return err
	}
	for _, p := range r.passes {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
			p.Pass, p.StartCut, p.EndCut, p.Moves, p.RolledBack); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrajectoryCSV emits one row per move: pass,move,cut. Requires
// KeepTrajectories.
func (r *Recorder) WriteTrajectoryCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "pass,move,cut"); err != nil {
		return err
	}
	for _, p := range r.passes {
		for i, c := range p.Cuts {
			if _, err := fmt.Fprintf(w, "%d,%d,%d\n", p.Pass, i+1, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary aggregates the whole run.
type Summary struct {
	Passes          int
	TotalMoves      int64
	TotalRolledBack int64
	FirstCut        int64
	FinalCut        int64
	// ShortestPassMoves exposes corked behaviour: a corked pass dies after
	// very few moves.
	ShortestPassMoves int64
}

// Summarize derives a Summary from the recorded passes.
func (r *Recorder) Summarize() Summary {
	s := Summary{Passes: len(r.passes)}
	if s.Passes == 0 {
		return s
	}
	s.FirstCut = r.passes[0].StartCut
	s.FinalCut = r.passes[len(r.passes)-1].EndCut
	s.ShortestPassMoves = r.passes[0].Moves
	for _, p := range r.passes {
		s.TotalMoves += p.Moves
		s.TotalRolledBack += int64(p.RolledBack)
		if p.Moves < s.ShortestPassMoves {
			s.ShortestPassMoves = p.Moves
		}
	}
	return s
}
