package chaos

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock reads and sleeps so latency injection and the
// retry helper are testable without real delays. The production clock is
// RealClock; tests use a FakeClock that records sleeps and advances
// instantly.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the system clock.
func RealClock() Clock { return realClock{} }

// FakeClock is a deterministic Clock for tests: Sleep returns immediately,
// advancing the fake time by the requested duration and recording it.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the fake time by d without blocking and records d.
func (c *FakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.sleeps = append(c.sleeps, d)
}

// Sleeps returns every Sleep duration observed, in order.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}
