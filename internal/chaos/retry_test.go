package chaos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Same seed → identical sleep schedule; backoff upper bounds double per
// attempt and cap at MaxDelay.
func TestRetryJitterIsSeedDeterministic(t *testing.T) {
	errTransient := errors.New("transient")
	schedule := func(seed uint64) []time.Duration {
		clock := NewFakeClock(time.Unix(0, 0))
		p := Retry{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Seed: seed, Clock: clock}
		err := p.Do(context.Background(), func() (time.Duration, bool, error) {
			return 0, true, errTransient
		})
		if !errors.Is(err, errTransient) {
			t.Fatalf("exhausted retry must return last error, got %v", err)
		}
		return clock.Sleeps()
	}
	a, b := schedule(42), schedule(42)
	if len(a) != 4 { // 5 attempts → 4 waits
		t.Fatalf("got %d sleeps, want 4: %v", len(a), a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at wait %d: %v vs %v", i, a, b)
		}
	}
	bounds := []time.Duration{100, 200, 250, 250} // ms; 2^k growth capped at MaxDelay
	for i, d := range a {
		if max := bounds[i] * time.Millisecond; d < 0 || d >= max {
			t.Errorf("wait %d = %v, want in [0, %v)", i, d, max)
		}
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	p := Retry{MaxAttempts: 3, BaseDelay: time.Millisecond, Clock: clock}
	calls := 0
	err := p.Do(context.Background(), func() (time.Duration, bool, error) {
		calls++
		if calls == 1 {
			return 7 * time.Second, true, errors.New("draining")
		}
		return 0, false, nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	sleeps := clock.Sleeps()
	if len(sleeps) != 1 || sleeps[0] != 7*time.Second {
		t.Fatalf("sleeps = %v, want the server-provided 7s wait", sleeps)
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("bad request")
	calls := 0
	err := Retry{Clock: NewFakeClock(time.Unix(0, 0))}.Do(context.Background(), func() (time.Duration, bool, error) {
		calls++
		return 0, false, fatal
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want one attempt returning the fatal error", err, calls)
	}
}

func TestRetryCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry{MaxAttempts: 4, BaseDelay: time.Millisecond}.Do(ctx, func() (time.Duration, bool, error) {
		calls++
		cancel()
		return 0, true, errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancellation interrupts the first wait)", calls)
	}
}

// A context cancelled DURING a backoff sleep must abort the wait
// immediately — not after the sleep completes. The attempt demands a 30s
// Retry-After wait on the real clock; cancellation after ~30ms must return
// within a small fraction of that, with no second attempt.
func TestRetryAbortsPromptlyDuringBackoffSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := Retry{MaxAttempts: 3, BaseDelay: time.Millisecond}.Do(ctx, func() (time.Duration, bool, error) {
		calls++
		return 30 * time.Second, true, errors.New("server says: come back in 30s")
	})
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1: the cancelled sleep must not be followed by another attempt", calls)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Do returned after %v; a cancel 30ms into a 30s sleep must abort promptly", elapsed)
	}
}

// Retry-After bounds the wait: even when the backoff schedule would wait on
// the order of minutes, a server-provided Retry-After replaces it exactly —
// the client sleeps the server's estimate, no more.
func TestRetryAfterBoundsWait(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	p := Retry{MaxAttempts: 3, BaseDelay: 60 * time.Second, MaxDelay: 120 * time.Second, Clock: clock}
	calls := 0
	err := p.Do(context.Background(), func() (time.Duration, bool, error) {
		calls++
		if calls == 1 {
			return 5 * time.Second, true, errors.New("draining")
		}
		return 0, false, nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	sleeps := clock.Sleeps()
	if len(sleeps) != 1 || sleeps[0] != 5*time.Second {
		t.Fatalf("sleeps = %v, want exactly the 5s Retry-After (not the 60s-scale backoff)", sleeps)
	}
}

func TestRetryAfterHeader(t *testing.T) {
	if d, ok := RetryAfterHeader("5"); !ok || d != 5*time.Second {
		t.Fatalf("got (%v, %v)", d, ok)
	}
	for _, v := range []string{"", "-1", "soon", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		if _, ok := RetryAfterHeader(v); ok {
			t.Errorf("RetryAfterHeader(%q): want ok=false", v)
		}
	}
}
