package chaos

import (
	"fmt"
	"io"
	"os"
	"syscall"
	"time"
)

// Op classifies filesystem operations for fault matching.
type Op uint8

const (
	// OpWrite matches File.Write calls.
	OpWrite Op = iota
	// OpSync matches File.Sync calls.
	OpSync
	// OpOpen matches FS.Open and FS.OpenFile calls.
	OpOpen
	// OpRename matches FS.Rename calls.
	OpRename
	// OpRemove matches FS.Remove calls.
	OpRemove
	// OpNet matches HTTP requests made through a Transport; the rule path
	// matches against "host/path" of the request URL.
	OpNet
)

// String returns the spec-grammar name of the op.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpOpen:
		return "open"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpNet:
		return "net"
	}
	return fmt.Sprintf("op(%d)", o)
}

// Fault is the kind of failure a rule injects.
type Fault uint8

const (
	// FaultErr fails the operation with the rule's Err (default EIO) without
	// performing it.
	FaultErr Fault = iota
	// FaultTorn performs a prefix of the write (Frac of the payload), then
	// fails with the rule's Err — the on-disk state a power cut mid-write
	// leaves behind.
	FaultTorn
	// FaultShort performs a prefix of the write and returns io.ErrShortWrite,
	// modeling a short write the caller is expected to notice.
	FaultShort
	// FaultLatency sleeps for the rule's Delay, then performs the operation
	// normally — a slow disk, used by hgchaos to hold drain windows open.
	FaultLatency
	// FaultCrash performs no I/O and invokes the crash action (default
	// SelfKill) — the operation never returns.
	FaultCrash
	// FaultRefused fails an HTTP request with ECONNREFUSED before any bytes
	// are sent — the peer's listener is gone. Net-only.
	FaultRefused
	// FaultCorrupt delivers the HTTP response with deterministically
	// bit-flipped body bytes (length preserved) — a dirty link or bad NIC
	// that checksums are supposed to catch. Net-only.
	FaultCorrupt
	// FaultBlackhole parks an HTTP request until its context is done, then
	// fails with the context error — a network partition: no RST, no bytes,
	// only the caller's deadline gets it back. Net-only.
	FaultBlackhole
)

// String returns the spec-grammar name of the fault.
func (f Fault) String() string {
	switch f {
	case FaultErr:
		return "err"
	case FaultTorn:
		return "torn"
	case FaultShort:
		return "short"
	case FaultLatency:
		return "latency"
	case FaultCrash:
		return "kill"
	case FaultRefused:
		return "refused"
	case FaultCorrupt:
		return "corrupt"
	case FaultBlackhole:
		return "blackhole"
	}
	return fmt.Sprintf("fault(%d)", f)
}

// Rule is one entry of a fault schedule. A rule matches an operation when
// the op kind matches and Path (substring; empty matches everything) occurs
// in the operation's path. Among matching operations, the rule fires on the
// Nth one (1-based) when Nth > 0, or with probability Prob drawn from the
// schedule's seeded stream when Nth == 0. Counter-based rules are exactly
// replayable for any serialized operation sequence; probability-based rules
// are replayable given the same interleaving.
type Rule struct {
	Op   Op
	Path string
	Nth  int
	Prob float64

	Fault Fault
	// Err is the injected error for FaultErr/FaultTorn; nil means EIO.
	// Use syscall.ENOSPC for full-disk experiments.
	Err error
	// Frac is the fraction of a torn/short write that is persisted before
	// the failure; 0 means half.
	Frac float64
	// Delay is the FaultLatency sleep.
	Delay time.Duration
	// Crash, when set, invokes the crash action after the fault's partial
	// effect (e.g. torn+kill: persist half the write, then SIGKILL) — the
	// mid-record and mid-fsync kill points cmd/hgchaos drives.
	Crash bool
}

// Config parameterizes a FaultFS.
type Config struct {
	// Seed drives probability-based rules; counter-based rules ignore it.
	Seed uint64
	// Rules is the fault schedule; the first firing rule wins.
	Rules []Rule
	// Clock serves FaultLatency sleeps; nil means the real clock.
	Clock Clock
	// CrashFn is invoked for FaultCrash and Crash-flagged rules; nil means
	// SelfKill. Tests substitute a recorder.
	CrashFn func()
}

// InjectedError is the error FaultFS returns for injected failures. It
// unwraps to the rule's underlying errno, so errors.Is(err, syscall.ENOSPC)
// works across the journal layers.
type InjectedError struct {
	Op   Op
	Path string
	Err  error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected fault on %s %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the injected errno to errors.Is/As.
func (e *InjectedError) Unwrap() error { return e.Err }

// FaultFS wraps an FS with a deterministic, seed-driven fault schedule. The
// rule-matching engine (schedule) serializes all matching state behind one
// mutex, so a serialized operation sequence — like the single-writer
// journal's — sees an exactly replayable schedule.
type FaultFS struct {
	inner FS
	clock Clock
	crash func()
	sched *schedule
}

// NewFaultFS wraps inner with cfg's fault schedule.
func NewFaultFS(inner FS, cfg Config) *FaultFS {
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	crash := cfg.CrashFn
	if crash == nil {
		crash = SelfKill
	}
	return &FaultFS{
		inner: inner,
		clock: clock,
		crash: crash,
		sched: newSchedule(cfg),
	}
}

// fire reports the first rule firing for (op, path), or nil. See
// schedule.fire for the counter-advancing discipline.
func (f *FaultFS) fire(op Op, path string) *Rule {
	return f.sched.fire(op, path)
}

// apply performs a non-write fault. It returns (handled, err): handled is
// false when the operation should proceed normally (no rule fired, or a
// latency fault already slept).
func (f *FaultFS) apply(op Op, path string) (bool, error) {
	r := f.fire(op, path)
	if r == nil {
		return false, nil
	}
	switch r.Fault {
	case FaultLatency:
		f.clock.Sleep(r.Delay)
		if r.Crash {
			f.crash()
		}
		return false, nil
	case FaultCrash:
		f.crash()
		return true, &InjectedError{Op: op, Path: path, Err: syscall.EINTR}
	default:
		if r.Crash {
			f.crash()
		}
		return true, &InjectedError{Op: op, Path: path, Err: r.Err}
	}
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if handled, err := f.apply(OpOpen, name); handled {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if handled, err := f.apply(OpOpen, name); handled {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if handled, err := f.apply(OpRename, oldpath); handled {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if handled, err := f.apply(OpRemove, name); handled {
		return err
	}
	return f.inner.Remove(name)
}

// faultFile routes Write and Sync through the schedule.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Write(p []byte) (int, error) {
	r := f.fs.fire(OpWrite, f.name)
	if r == nil {
		return f.inner.Write(p)
	}
	switch r.Fault {
	case FaultLatency:
		f.fs.clock.Sleep(r.Delay)
		if r.Crash {
			f.fs.crash()
		}
		return f.inner.Write(p)
	case FaultTorn, FaultShort:
		k := int(float64(len(p)) * r.Frac)
		if k > len(p) {
			k = len(p)
		}
		n, werr := f.inner.Write(p[:k])
		if r.Crash {
			f.fs.crash()
		}
		if werr != nil {
			return n, werr
		}
		if r.Fault == FaultShort {
			return n, io.ErrShortWrite
		}
		return n, &InjectedError{Op: OpWrite, Path: f.name, Err: r.Err}
	case FaultCrash:
		f.fs.crash()
		return 0, &InjectedError{Op: OpWrite, Path: f.name, Err: syscall.EINTR}
	default: // FaultErr
		if r.Crash {
			f.fs.crash()
		}
		return 0, &InjectedError{Op: OpWrite, Path: f.name, Err: r.Err}
	}
}

func (f *faultFile) Sync() error {
	r := f.fs.fire(OpSync, f.name)
	if r == nil {
		return f.inner.Sync()
	}
	switch r.Fault {
	case FaultLatency:
		f.fs.clock.Sleep(r.Delay)
		if r.Crash {
			f.fs.crash()
		}
		return f.inner.Sync()
	case FaultCrash:
		f.fs.crash()
		return &InjectedError{Op: OpSync, Path: f.name, Err: syscall.EINTR}
	default:
		if r.Crash {
			f.fs.crash()
		}
		return &InjectedError{Op: OpSync, Path: f.name, Err: r.Err}
	}
}

func (f *faultFile) Close() error { return f.inner.Close() }
