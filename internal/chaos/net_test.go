package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestParseSpecNetTokens(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"net::1:refused", Rule{Op: OpNet, Nth: 1, Fault: FaultRefused}},
		{"net:readyz:2:refused", Rule{Op: OpNet, Path: "readyz", Nth: 2, Fault: FaultRefused}},
		{"net:/v1/partition:1:corrupt", Rule{Op: OpNet, Path: "/v1/partition", Nth: 1, Fault: FaultCorrupt}},
		{"net:9001/:p1:blackhole", Rule{Op: OpNet, Path: "9001/", Prob: 1, Fault: FaultBlackhole}},
		{"net::3:torn", Rule{Op: OpNet, Nth: 3, Fault: FaultTorn}},
		{"net:internal:p0.5:latency=250ms", Rule{Op: OpNet, Path: "internal", Prob: 0.5, Fault: FaultLatency, Delay: 250 * time.Millisecond}},
	}
	for _, tc := range cases {
		rules, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if len(rules) != 1 {
			t.Errorf("ParseSpec(%q): got %d rules, want 1", tc.spec, len(rules))
			continue
		}
		if rules[0] != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.spec, rules[0], tc.want)
		}
	}
}

func TestParseSpecNetRejections(t *testing.T) {
	cases := []struct {
		spec   string
		reason string // substring the error must contain
	}{
		{"net::1:eio", "applies only to filesystem ops"},
		{"net::1:enospc", "applies only to filesystem ops"},
		{"net::1:short", "applies only to filesystem ops"},
		{"net::1:kill", "applies only to filesystem ops"},
		{"net::1:torn+kill", "a remote peer cannot crash this process"},
		{"net::1:blackhole+kill", "a remote peer cannot crash this process"},
		{"write::1:refused", "applies only to op net"},
		{"sync:x:2:corrupt", "applies only to op net"},
		{"open::p0.5:blackhole", "applies only to op net"},
		{"net::0:refused", "must be a positive count"},
		{"net::p2:refused", "must be in (0,1]"},
		{"net::1:partition", "unknown fault"},
		{"net:a:b", "want op:path:when:fault"},
	}
	for _, tc := range cases {
		rules, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q): want error containing %q, got rules %+v", tc.spec, tc.reason, rules)
			continue
		}
		if !strings.Contains(err.Error(), tc.reason) {
			t.Errorf("ParseSpec(%q) error %q does not contain %q", tc.spec, err, tc.reason)
		}
	}
}

// roundTrip sends one GET through tr and returns the full body (or the
// read error) so fault effects on the body surface.
func roundTrip(t *testing.T, tr *Transport, url string) ([]byte, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func netTestServer(t *testing.T, body []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestTransportRefusedNthCounting(t *testing.T) {
	body := []byte("payload")
	ts := netTestServer(t, body)
	rules, err := ParseSpec("net::2:refused")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(nil, Config{Seed: 1, Rules: rules})

	got, err := roundTrip(t, tr, ts.URL)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("request 1 should pass through, got (%q, %v)", got, err)
	}
	if _, err := roundTrip(t, tr, ts.URL); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("request 2 should be refused, got %v", err)
	}
	if _, err := roundTrip(t, tr, ts.URL); err != nil {
		t.Fatalf("request 3 should pass through, got %v", err)
	}
}

func TestTransportPathMatchesHostAndPath(t *testing.T) {
	ts := netTestServer(t, []byte("x"))
	host := strings.TrimPrefix(ts.URL, "http://")
	// Match by host:port substring (the documented "PORT/" idiom needs a
	// path; plain host matching also works).
	rules := []Rule{{Op: OpNet, Path: host, Nth: 1, Fault: FaultRefused}}
	tr := NewTransport(nil, Config{Rules: rules})
	if _, err := roundTrip(t, tr, ts.URL+"/v1/partition"); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("host match should refuse, got %v", err)
	}

	// A rule for a different path must not match.
	rules2, err := ParseSpec("net:/internal/:1:refused")
	if err != nil {
		t.Fatal(err)
	}
	tr2 := NewTransport(nil, Config{Rules: rules2})
	if _, err := roundTrip(t, tr2, ts.URL+"/v1/partition"); err != nil {
		t.Fatalf("non-matching path should pass through, got %v", err)
	}
}

func TestTransportLatency(t *testing.T) {
	ts := netTestServer(t, []byte("slow"))
	clock := NewFakeClock(time.Unix(0, 0))
	rules, err := ParseSpec("net::1:latency=750ms")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(nil, Config{Rules: rules, Clock: clock})
	got, err := roundTrip(t, tr, ts.URL)
	if err != nil || string(got) != "slow" {
		t.Fatalf("latency fault must still deliver the response, got (%q, %v)", got, err)
	}
	sleeps := clock.Sleeps()
	if len(sleeps) != 1 || sleeps[0] != 750*time.Millisecond {
		t.Fatalf("want one 750ms sleep, got %v", sleeps)
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	ts := netTestServer(t, []byte("slow"))
	rules, err := ParseSpec("net::1:latency=10s")
	if err != nil {
		t.Fatal(err)
	}
	// Real clock: the sleep must be abandoned when the context dies, not
	// served in full — this is what bounds a slow-peer probe.
	tr := NewTransport(nil, Config{Rules: rules})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := tr.RoundTrip(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the injected error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled latency sleep took %v", elapsed)
	}
}

func TestTransportTornBody(t *testing.T) {
	body := bytes.Repeat([]byte("abcdefgh"), 128) // 1024 bytes, Content-Length known
	ts := netTestServer(t, body)
	rules, err := ParseSpec("net::1:torn")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(nil, Config{Rules: rules})
	got, err := roundTrip(t, tr, ts.URL)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn body must end in ErrUnexpectedEOF, got %v", err)
	}
	if len(got) != len(body)/2 {
		t.Fatalf("torn body delivered %d bytes, want %d (Frac default 0.5)", len(got), len(body)/2)
	}
	if !bytes.Equal(got, body[:len(got)]) {
		t.Fatal("torn body must be a clean prefix")
	}
}

func TestTransportCorruptBody(t *testing.T) {
	body := bytes.Repeat([]byte("abcdefgh"), 32) // 256 bytes spans several strides
	ts := netTestServer(t, body)
	spec := "net::1:corrupt"
	run := func() []byte {
		rules, err := ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTransport(nil, Config{Seed: 7, Rules: rules})
		got, err := roundTrip(t, tr, ts.URL)
		if err != nil {
			t.Fatalf("corrupt fault must deliver a readable body, got %v", err)
		}
		return got
	}
	got := run()
	if len(got) != len(body) {
		t.Fatalf("corruption must preserve length: got %d, want %d", len(got), len(body))
	}
	if bytes.Equal(got, body) {
		t.Fatal("corrupt fault left the body unchanged")
	}
	if got[0] == body[0] {
		t.Fatal("corruption must always touch byte 0, so even tiny bodies are detectable")
	}
	if again := run(); !bytes.Equal(got, again) {
		t.Fatal("corruption must be deterministic across identical runs")
	}
}

func TestTransportBlackhole(t *testing.T) {
	ts := netTestServer(t, []byte("x"))
	rules, err := ParseSpec("net::1:blackhole")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(nil, Config{Rules: rules})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RoundTrip(req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackhole must surface the caller's deadline, got %v", err)
	}
}

func TestTransportOnFaultHook(t *testing.T) {
	ts := netTestServer(t, []byte("x"))
	rules, err := ParseSpec("net::2:refused")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(nil, Config{Rules: rules})
	var mu sync.Mutex
	var fired []Fault
	tr.SetOnFault(func(r Rule) {
		mu.Lock()
		defer mu.Unlock()
		fired = append(fired, r.Fault)
	})
	_, _ = roundTrip(t, tr, ts.URL) // passes
	_, _ = roundTrip(t, tr, ts.URL) // refused
	_, _ = roundTrip(t, tr, ts.URL) // passes (nth=2 already spent)
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 1 || fired[0] != FaultRefused {
		t.Fatalf("hook should see exactly the one refused firing, got %v", fired)
	}
}

func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"write:.jsonl:3:torn+kill",
		"sync:.jsonl:4:kill",
		"write::2:enospc",
		"write:.jsonl:p1:latency=300ms",
		"net:9001/:p1:blackhole",
		"net:/v1/partition:1:corrupt",
		"net:readyz:2:refused",
		"net::3:torn,net:internal:p0.5:latency=250ms",
		"net::1:eio",
		"write::1:refused",
		"net::1:torn+kill",
		"",
		":::",
		"net::p2:refused",
		"net::0:blackhole",
		"net::1:latency=",
		"net::1:latency=-3s",
		"open:x:p0.0001:eio+kill",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParseSpec(spec)
		if err != nil {
			if rules != nil {
				t.Fatalf("ParseSpec(%q): non-nil rules alongside error %v", spec, err)
			}
			return
		}
		if len(rules) == 0 {
			t.Fatalf("ParseSpec(%q): nil error with zero rules", spec)
		}
		for _, r := range rules {
			if (r.Nth > 0) == (r.Prob > 0) {
				t.Fatalf("rule %+v: exactly one of Nth/Prob must be set", r)
			}
			if r.Prob < 0 || r.Prob > 1 {
				t.Fatalf("rule %+v: probability out of (0,1]", r)
			}
			if r.Fault == FaultLatency && r.Delay <= 0 {
				t.Fatalf("rule %+v: latency without positive delay", r)
			}
			if err := checkFaultOp(r, r.Fault.String()); err != nil {
				t.Fatalf("rule %+v survived parsing but fails op check: %v", r, err)
			}
			if r.Op == OpNet && r.Crash {
				t.Fatalf("rule %+v: net rule with crash flag", r)
			}
		}
		// Parsing must be deterministic.
		again, err := ParseSpec(spec)
		if err != nil || len(again) != len(rules) {
			t.Fatalf("ParseSpec(%q) unstable: (%v, %v) vs %d rules", spec, again, err, len(rules))
		}
	})
}
