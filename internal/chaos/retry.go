package chaos

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"hgpart/internal/rng"
)

// Retry is a bounded retry policy with full-jitter exponential backoff.
// Clients of hgserved use it to ride out the transient 503s a draining
// instance returns before the load balancer routes elsewhere, and
// cmd/hgchaos uses it to resubmit work across a daemon restart.
//
// Per the repository's determinism rules (hglint detrand), the jitter does
// not come from a shared wall-clock-seeded source: it is drawn from a
// private internal/rng stream seeded by Seed, so a retry schedule is a pure
// function of (Seed, attempt outcomes) and a chaos run that exercises
// retries is replayable.
type Retry struct {
	// MaxAttempts bounds the total attempts; <= 0 means 5.
	MaxAttempts int
	// BaseDelay is the first backoff's upper bound; <= 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; <= 0 means 2s.
	MaxDelay time.Duration
	// Seed seeds the jitter stream.
	Seed uint64
	// Clock serves the sleeps; nil means the real clock.
	Clock Clock
}

// Do runs attempt until it succeeds, returns a non-retryable error, ctx is
// cancelled, or MaxAttempts is exhausted (returning the last error).
//
// attempt reports (retryAfter, retryable, err): a nil err stops the loop
// successfully; retryable=false stops it with err; retryAfter > 0 — e.g.
// the parsed Retry-After header of a 503 — replaces the computed backoff
// for the next wait, honoring the server's own estimate of when the drain
// window closes. Otherwise the wait before attempt k (0-based) is uniform
// in [0, min(MaxDelay, BaseDelay·2^k)) — "full jitter", so a fleet of
// retrying clients does not stampede a restarting daemon in sync.
func (p Retry) Do(ctx context.Context, attempt func() (time.Duration, bool, error)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	maxAttempts := p.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 5
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	clock := p.Clock
	if clock == nil {
		clock = RealClock()
	}
	jitter := rng.New(p.Seed)

	var err error
	for k := 0; k < maxAttempts; k++ {
		var retryAfter time.Duration
		var retryable bool
		retryAfter, retryable, err = runAttempt(attempt)
		if err == nil {
			return nil
		}
		if !retryable || k+1 >= maxAttempts {
			return err
		}
		d := base << uint(k)
		if d > maxDelay || d <= 0 {
			d = maxDelay
		}
		d = time.Duration(jitter.Float64() * float64(d))
		if retryAfter > 0 {
			d = retryAfter
		}
		if serr := sleepCtx(ctx, clock, d); serr != nil {
			return fmt.Errorf("chaos: retry interrupted after %d attempts: %w (last error: %v)", k+1, serr, err)
		}
	}
	return err
}

// runAttempt isolates one attempt call. (The name matters: the ctxflow
// analyzer treats runAttempt callees as work loops that must remain
// cancellable, which Do's context threading guarantees.)
func runAttempt(attempt func() (time.Duration, bool, error)) (time.Duration, bool, error) {
	return attempt()
}

// sleepCtx sleeps d on clock, returning early with ctx.Err() if the context
// is cancelled first.
func sleepCtx(ctx context.Context, clock Clock, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	done := make(chan struct{})
	go func() {
		clock.Sleep(d)
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// RetryAfterHeader parses the delta-seconds form of a Retry-After response
// header ("5" → 5s). HTTP-date forms are not parsed (hgserved never emits
// them); callers get (0, false) and fall back to jittered backoff.
func RetryAfterHeader(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
