package chaos

import (
	"io"
	"net/http"
	"syscall"
)

// Body corruption is deterministic and length-preserving: the low bit of
// every corruptStride-th body byte (starting at offset 0, so even one-byte
// bodies are corrupted) is flipped. Detection is the integrity envelope's
// job, not the corruption pattern's, so a simple fixed pattern keeps replays
// exact.
const (
	corruptStride = 64
	corruptMask   = 0x01
)

// Transport is a seed-deterministic fault-injecting http.RoundTripper. It
// shares the spec grammar and rule-matching engine with FaultFS: rules with
// Op == OpNet match against "host/path" of each outgoing request (substring,
// empty matches all), triggered on the Nth matching request or with a seeded
// probability. Supported faults:
//
//	refused      fail with ECONNREFUSED before sending
//	latency=DUR  sleep DUR (context-aware), then forward normally
//	torn         forward, then truncate the response body after Frac of it
//	corrupt      forward, then flip bits in the response body (same length)
//	blackhole    park until the request context is done (partition)
//
// Faults injected before the inner round trip return *InjectedError, which
// unwraps to the underlying cause (ECONNREFUSED, context error) for
// errors.Is. Torn and corrupt surface through the response body instead,
// exactly like a misbehaving network would.
type Transport struct {
	inner http.RoundTripper
	clock Clock
	sched *schedule
}

// NewTransport wraps inner (nil means http.DefaultTransport) with cfg's
// fault schedule. Only OpNet rules can match; mixing fs rules into cfg is
// harmless but pointless.
func NewTransport(inner http.RoundTripper, cfg Config) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	return &Transport{
		inner: inner,
		clock: clock,
		sched: newSchedule(cfg),
	}
}

// SetOnFault installs a hook invoked with a copy of every rule that fires.
// hgserved wires this to the hgserved_net_faults_injected_total counter.
func (t *Transport) SetOnFault(fn func(Rule)) { t.sched.setOnFault(fn) }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host + req.URL.Path
	r := t.sched.fire(OpNet, target)
	if r == nil {
		return t.inner.RoundTrip(req)
	}
	switch r.Fault {
	case FaultRefused:
		return nil, &InjectedError{Op: OpNet, Path: target, Err: syscall.ECONNREFUSED}
	case FaultBlackhole:
		<-req.Context().Done()
		return nil, &InjectedError{Op: OpNet, Path: target, Err: req.Context().Err()}
	case FaultLatency:
		if err := sleepCtx(req.Context(), t.clock, r.Delay); err != nil {
			return nil, &InjectedError{Op: OpNet, Path: target, Err: err}
		}
		return t.inner.RoundTrip(req)
	case FaultTorn:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = tearBody(resp.Body, resp.ContentLength, r.Frac)
		return resp, nil
	case FaultCorrupt:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &corruptBody{inner: resp.Body}
		return resp, nil
	default:
		// Fs-only faults cannot reach here through ParseSpec; treat any
		// hand-built rule conservatively as a plain injected error.
		return nil, &InjectedError{Op: OpNet, Path: target, Err: r.Err}
	}
}

// tearBody truncates body after frac of the declared content length (or a
// fixed 512 bytes when the length is unknown), then fails the read with
// io.ErrUnexpectedEOF — the bytes a connection reset mid-response leaves
// behind.
func tearBody(body io.ReadCloser, contentLength int64, frac float64) io.ReadCloser {
	keep := int64(512)
	if contentLength >= 0 {
		keep = int64(float64(contentLength) * frac)
	}
	return &tornBody{inner: body, remaining: keep}
}

type tornBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The tear is strictly inside the body; a clean EOF would make the
		// truncation look like a complete short response.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *tornBody) Close() error { return b.inner.Close() }

type corruptBody struct {
	inner io.ReadCloser
	off   int64
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	for i := 0; i < n; i++ {
		if (b.off+int64(i))%corruptStride == 0 {
			p[i] ^= corruptMask
		}
	}
	b.off += int64(n)
	return n, err
}

func (b *corruptBody) Close() error { return b.inner.Close() }
