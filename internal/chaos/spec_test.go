package chaos

import (
	"syscall"
	"testing"
	"time"
)

func TestParseSpecDocumentedExamples(t *testing.T) {
	rules, err := ParseSpec("write:.jsonl:3:torn+kill, sync:.jsonl:4:kill,write::2:enospc,write:.jsonl:p1:latency=300ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: OpWrite, Path: ".jsonl", Nth: 3, Fault: FaultTorn, Crash: true},
		{Op: OpSync, Path: ".jsonl", Nth: 4, Fault: FaultCrash, Crash: true},
		{Op: OpWrite, Path: "", Nth: 2, Fault: FaultErr, Err: syscall.ENOSPC},
		{Op: OpWrite, Path: ".jsonl", Prob: 1, Fault: FaultLatency, Delay: 300 * time.Millisecond},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i, w := range want {
		g := rules[i]
		if g.Op != w.Op || g.Path != w.Path || g.Nth != w.Nth || g.Prob != w.Prob ||
			g.Fault != w.Fault || g.Err != w.Err || g.Delay != w.Delay || g.Crash != w.Crash {
			t.Errorf("rule %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                       // empty schedule
		"write:.jsonl:3",         // missing fault field
		"chmod:.jsonl:1:eio",     // unknown op
		"write:.jsonl:0:eio",     // count must be >= 1
		"write:.jsonl:p1.5:eio",  // probability out of range
		"write:.jsonl:1:explode", // unknown fault
		"write:.jsonl:1:latency", // latency without duration
		"write:.jsonl:1:latency=-1s",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", spec)
		}
	}
}
