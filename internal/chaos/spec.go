package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// ParseSpec parses a comma-separated fault schedule of the form
//
//	op:path:when:fault[,op:path:when:fault...]
//
// where
//
//	op     = write | sync | open | rename | remove   filesystem operations
//	       | net                                     HTTP requests (Transport)
//	path   = substring the operation's path must contain ("" matches all);
//	         for net rules the match target is "host/path" of the request URL
//	when   = N        fire on the Nth matching operation (1-based)
//	       | pF       fire with probability F from the seeded stream
//	fault  = eio | enospc | torn | short | kill | latency=DUR
//	         with an optional "+kill" suffix (crash after the fault's
//	         partial effect), e.g. torn+kill, eio+kill, latency=300ms
//	       | refused | corrupt | blackhole            net-only faults
//
// Fault applicability is checked per op: eio/enospc/short/kill (and the
// +kill suffix) are filesystem-only, refused/corrupt/blackhole are net-only;
// torn and latency=DUR work for both. Violations are rejected with the
// reason in the error.
//
// Examples:
//
//	write:.jsonl:3:torn+kill    SIGKILL mid-way through journal write #3
//	sync:.jsonl:4:kill          SIGKILL during journal fsync #4
//	write::2:enospc             journal write #2 fails with ENOSPC
//	write:.jsonl:p1:latency=300ms  every journal write takes an extra 300ms
//	net:9001/:p1:blackhole         partition everything sent to port 9001
//	net:/v1/partition:1:corrupt    flip bits in the first dispatch response
//	net:readyz:2:refused           refuse the 2nd heartbeat probe
//
// (The ":" field separator means a net path cannot contain a literal
// host:port; match a unique substring instead — "PORT/" pins a port because
// the match target always has a "/" right after it.)
//
// The grammar is what hgserved's -chaos and -net-chaos flags and cmd/hgchaos
// speak; see DESIGN.md §11 and §16.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("chaos: rule %q: %w", part, err)
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: empty fault spec")
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	fields := strings.Split(s, ":")
	if len(fields) != 4 {
		return Rule{}, fmt.Errorf("want op:path:when:fault, got %d fields", len(fields))
	}
	var r Rule

	switch fields[0] {
	case "write":
		r.Op = OpWrite
	case "sync":
		r.Op = OpSync
	case "open":
		r.Op = OpOpen
	case "rename":
		r.Op = OpRename
	case "remove":
		r.Op = OpRemove
	case "net":
		r.Op = OpNet
	default:
		return Rule{}, fmt.Errorf("unknown op %q (want write|sync|open|rename|remove|net)", fields[0])
	}

	r.Path = fields[1]

	when := fields[2]
	if p, ok := strings.CutPrefix(when, "p"); ok {
		prob, err := strconv.ParseFloat(p, 64)
		if err != nil || prob <= 0 || prob > 1 {
			return Rule{}, fmt.Errorf("probability %q must be in (0,1]", when)
		}
		r.Prob = prob
	} else {
		nth, err := strconv.Atoi(when)
		if err != nil || nth < 1 {
			return Rule{}, fmt.Errorf("when %q must be a positive count or pF probability", when)
		}
		r.Nth = nth
	}

	fault := fields[3]
	if base, ok := strings.CutSuffix(fault, "+kill"); ok {
		if r.Op == OpNet {
			return Rule{}, fmt.Errorf("suffix \"+kill\" applies only to filesystem ops (a remote peer cannot crash this process)")
		}
		r.Crash = true
		fault = base
	}
	switch {
	case fault == "eio":
		r.Fault = FaultErr
		r.Err = syscall.EIO
	case fault == "enospc":
		r.Fault = FaultErr
		r.Err = syscall.ENOSPC
	case fault == "torn":
		r.Fault = FaultTorn
	case fault == "short":
		r.Fault = FaultShort
	case fault == "kill":
		r.Fault = FaultCrash
		r.Crash = true
	case strings.HasPrefix(fault, "latency="):
		d, err := time.ParseDuration(strings.TrimPrefix(fault, "latency="))
		if err != nil || d <= 0 {
			return Rule{}, fmt.Errorf("latency %q needs a positive duration", fault)
		}
		r.Fault = FaultLatency
		r.Delay = d
	case fault == "refused":
		r.Fault = FaultRefused
	case fault == "corrupt":
		r.Fault = FaultCorrupt
	case fault == "blackhole":
		r.Fault = FaultBlackhole
	default:
		return Rule{}, fmt.Errorf("unknown fault %q (want eio|enospc|torn|short|kill|latency=DUR, optionally +kill; or refused|corrupt|blackhole for op net)", fault)
	}
	if err := checkFaultOp(r, fault); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// checkFaultOp rejects fault/op combinations that have no defined effect:
// the net transport has no partial-write or errno semantics, and the
// filesystem has no connections to refuse or partition.
func checkFaultOp(r Rule, token string) error {
	netOnly := r.Fault == FaultRefused || r.Fault == FaultCorrupt || r.Fault == FaultBlackhole
	if r.Op == OpNet {
		switch r.Fault {
		case FaultErr, FaultShort, FaultCrash:
			return fmt.Errorf("fault %q applies only to filesystem ops (net faults: refused|corrupt|blackhole|torn|latency=DUR)", token)
		}
		return nil
	}
	if netOnly {
		return fmt.Errorf("fault %q applies only to op net (filesystem faults: eio|enospc|torn|short|kill|latency=DUR)", token)
	}
	return nil
}
