package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// ParseSpec parses a comma-separated fault schedule of the form
//
//	op:path:when:fault[,op:path:when:fault...]
//
// where
//
//	op     = write | sync | open | rename | remove
//	path   = substring the operation's path must contain ("" matches all)
//	when   = N        fire on the Nth matching operation (1-based)
//	       | pF       fire with probability F from the seeded stream
//	fault  = eio | enospc | torn | short | kill | latency=DUR
//	         with an optional "+kill" suffix (crash after the fault's
//	         partial effect), e.g. torn+kill, eio+kill, latency=300ms
//
// Examples:
//
//	write:.jsonl:3:torn+kill    SIGKILL mid-way through journal write #3
//	sync:.jsonl:4:kill          SIGKILL during journal fsync #4
//	write::2:enospc             journal write #2 fails with ENOSPC
//	write:.jsonl:p1:latency=300ms  every journal write takes an extra 300ms
//
// The grammar is what hgserved's -chaos flag and cmd/hgchaos speak; see
// DESIGN.md §11.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("chaos: rule %q: %w", part, err)
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: empty fault spec")
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	fields := strings.Split(s, ":")
	if len(fields) != 4 {
		return Rule{}, fmt.Errorf("want op:path:when:fault, got %d fields", len(fields))
	}
	var r Rule

	switch fields[0] {
	case "write":
		r.Op = OpWrite
	case "sync":
		r.Op = OpSync
	case "open":
		r.Op = OpOpen
	case "rename":
		r.Op = OpRename
	case "remove":
		r.Op = OpRemove
	default:
		return Rule{}, fmt.Errorf("unknown op %q (want write|sync|open|rename|remove)", fields[0])
	}

	r.Path = fields[1]

	when := fields[2]
	if p, ok := strings.CutPrefix(when, "p"); ok {
		prob, err := strconv.ParseFloat(p, 64)
		if err != nil || prob <= 0 || prob > 1 {
			return Rule{}, fmt.Errorf("probability %q must be in (0,1]", when)
		}
		r.Prob = prob
	} else {
		nth, err := strconv.Atoi(when)
		if err != nil || nth < 1 {
			return Rule{}, fmt.Errorf("when %q must be a positive count or pF probability", when)
		}
		r.Nth = nth
	}

	fault := fields[3]
	if base, ok := strings.CutSuffix(fault, "+kill"); ok {
		r.Crash = true
		fault = base
	}
	switch {
	case fault == "eio":
		r.Fault = FaultErr
		r.Err = syscall.EIO
	case fault == "enospc":
		r.Fault = FaultErr
		r.Err = syscall.ENOSPC
	case fault == "torn":
		r.Fault = FaultTorn
	case fault == "short":
		r.Fault = FaultShort
	case fault == "kill":
		r.Fault = FaultCrash
		r.Crash = true
	case strings.HasPrefix(fault, "latency="):
		d, err := time.ParseDuration(strings.TrimPrefix(fault, "latency="))
		if err != nil || d <= 0 {
			return Rule{}, fmt.Errorf("latency %q needs a positive duration", fault)
		}
		r.Fault = FaultLatency
		r.Delay = d
	default:
		return Rule{}, fmt.Errorf("unknown fault %q (want eio|enospc|torn|short|kill|latency=DUR, optionally +kill)", fault)
	}
	return r, nil
}
