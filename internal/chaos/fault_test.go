package chaos

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func writeThrough(t *testing.T, fsys FS, path string, chunks ...string) []error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	var errs []error
	for _, c := range chunks {
		_, werr := f.Write([]byte(c))
		errs = append(errs, werr)
	}
	return errs
}

// An Nth-counter rule fires on exactly the configured operation and leaves
// the torn prefix on disk — the state a crash mid-write produces.
func TestTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	fsys := NewFaultFS(OS(), Config{Rules: []Rule{
		{Op: OpWrite, Path: ".jsonl", Nth: 2, Fault: FaultTorn},
	}})
	errs := writeThrough(t, fsys, path, "aaaa\n", "bbbb\n", "cccc\n")
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("non-target writes failed: %v", errs)
	}
	var inj *InjectedError
	if !errors.As(errs[1], &inj) || !errors.Is(errs[1], syscall.EIO) {
		t.Fatalf("write #2: want injected EIO, got %v", errs[1])
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Write #2 persisted half its 5 bytes ("bb"), then failed.
	if got, want := string(b), "aaaa\nbbcccc\n"; got != want {
		t.Fatalf("on-disk state %q, want %q (torn prefix of write #2)", got, want)
	}
}

func TestShortWriteReturnsErrShortWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS(), Config{Rules: []Rule{
		{Op: OpWrite, Nth: 1, Fault: FaultShort, Frac: 0.25},
	}})
	errs := writeThrough(t, fsys, filepath.Join(dir, "x"), "12345678")
	if !errors.Is(errs[0], io.ErrShortWrite) {
		t.Fatalf("want io.ErrShortWrite, got %v", errs[0])
	}
	b, _ := os.ReadFile(filepath.Join(dir, "x"))
	if string(b) != "12" {
		t.Fatalf("short write persisted %q, want %q", b, "12")
	}
}

func TestENOSPCAndSyncFailure(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(OS(), Config{Rules: []Rule{
		{Op: OpWrite, Nth: 1, Fault: FaultErr, Err: syscall.ENOSPC},
		{Op: OpSync, Nth: 1, Fault: FaultErr},
	}})
	f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want injected EIO on sync, got %v", err)
	}
	// Both rules are spent; subsequent ops succeed.
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("post-fault sync: %v", err)
	}
}

// The crash action fires at the exact configured point — here recorded
// instead of delivering SIGKILL.
func TestCrashHookFiresAtExactOp(t *testing.T) {
	dir := t.TempDir()
	crashed := 0
	fsys := NewFaultFS(OS(), Config{
		Rules:   []Rule{{Op: OpSync, Path: ".jsonl", Nth: 2, Fault: FaultCrash}},
		CrashFn: func() { crashed++ },
	})
	f, err := fsys.OpenFile(filepath.Join(dir, "j.jsonl"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil || crashed != 0 {
		t.Fatalf("sync #1: err=%v crashed=%d", err, crashed)
	}
	if err := f.Sync(); err == nil || crashed != 1 {
		t.Fatalf("sync #2: want crash + error, got err=%v crashed=%d", err, crashed)
	}
	if err := f.Sync(); err != nil || crashed != 1 {
		t.Fatalf("sync #3: err=%v crashed=%d", err, crashed)
	}
}

// Probability-based rules are a pure function of the seed for a serialized
// op sequence: same seed, same fault pattern; different seed, (here)
// different pattern.
func TestProbabilisticScheduleIsSeedDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		dir := t.TempDir()
		fsys := NewFaultFS(OS(), Config{Seed: seed, Rules: []Rule{
			{Op: OpWrite, Prob: 0.5, Fault: FaultErr},
		}})
		var out []bool
		f, err := fsys.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 32; i++ {
			_, werr := f.Write([]byte("z"))
			out = append(out, werr != nil)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at op %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 32-op fault patterns — stream not seeded?")
	}
}

func TestLatencyUsesInjectedClock(t *testing.T) {
	dir := t.TempDir()
	clock := NewFakeClock(time.Unix(0, 0))
	fsys := NewFaultFS(OS(), Config{
		Clock: clock,
		Rules: []Rule{{Op: OpWrite, Nth: 1, Fault: FaultLatency, Delay: 300 * time.Millisecond}},
	})
	errs := writeThrough(t, fsys, filepath.Join(dir, "x"), "a", "b")
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("latency fault must not fail the op: %v", errs)
	}
	sleeps := clock.Sleeps()
	if len(sleeps) != 1 || sleeps[0] != 300*time.Millisecond {
		t.Fatalf("sleeps = %v, want one 300ms sleep", sleeps)
	}
}
