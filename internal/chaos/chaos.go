// Package chaos is the crash-consistency test bed for the storage and
// service tiers: an injectable filesystem and clock abstraction whose fault
// schedules are pure functions of a seed, so every chaos experiment is
// replayable the same way every partitioning experiment is.
//
// The paper's methodology holds that experimental results are meaningful
// only when runs are reproducible and reported losslessly. A multistart
// sweep that silently drops or corrupts journaled starts after a crash
// fabricates statistics exactly the way the paper warns against — so the
// journal code is written against the FS interface here, and tests (and the
// cmd/hgchaos harness) substitute a FaultFS that injects torn writes, short
// writes, ENOSPC, fsync failures, latency and process kills at exact,
// seed-determined points. See DESIGN.md §11.
package chaos

import (
	"io"
	"os"
)

// File is the subset of *os.File the journal layer uses. Implementations
// must be safe for the single-writer discipline the journal follows (one
// goroutine writes at a time, guarded by the journal's own mutex).
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem surface the checkpoint journal and service storage
// paths go through. The production implementation (OS) delegates to package
// os; FaultFS wraps any FS with a deterministic fault schedule.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens name read-only (files and directories; directories are
	// opened only to fsync them after a rename).
	Open(name string) (File, error)
	// Rename atomically renames oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
}

// osFS is the passthrough production filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error)        { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }

// OS returns the real filesystem.
func OS() FS { return osFS{} }

// SelfKill delivers an uncatchable SIGKILL to the current process — the
// default crash action of a FaultFS rule with Crash set. Unlike os.Exit it
// models the failure the journal must survive: no deferred functions run,
// no buffers flush, the process simply stops mid-operation. It never
// returns; if signal delivery is somehow delayed, it blocks forever rather
// than letting execution continue past a configured crash point.
func SelfKill() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	select {}
}
