package chaos

import (
	"strings"
	"sync"
	"syscall"

	"hgpart/internal/rng"
)

// schedule is the seeded rule-matching engine shared by FaultFS and
// Transport. All rule-matching state (per-rule match counters, the
// probability stream) sits behind one mutex, so a serialized operation
// sequence sees an exactly replayable schedule regardless of which wrapper
// drives it.
type schedule struct {
	mu sync.Mutex
	//hglint:guardedby mu
	rules []Rule
	//hglint:guardedby mu
	count []int // matches seen per rule
	//hglint:guardedby mu
	r *rng.RNG
	//hglint:guardedby mu
	onFault func(Rule)
}

// newSchedule copies and normalizes cfg's rules (Err defaults to EIO, Frac
// to one half) and seeds the probability stream.
func newSchedule(cfg Config) *schedule {
	rules := append([]Rule(nil), cfg.Rules...)
	for i := range rules {
		if rules[i].Err == nil {
			rules[i].Err = syscall.EIO
		}
		if rules[i].Frac <= 0 || rules[i].Frac > 1 {
			rules[i].Frac = 0.5
		}
	}
	return &schedule{
		rules: rules,
		count: make([]int, len(rules)),
		r:     rng.New(cfg.Seed),
	}
}

// setOnFault installs a hook invoked (outside the schedule lock) with a copy
// of every rule that fires. hgserved uses it to count injected faults in
// /metrics.
func (s *schedule) setOnFault(fn func(Rule)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onFault = fn
}

// fire reports the first rule firing for (op, path), or nil. It advances
// the match counters of every matching rule, firing or not, so rule order
// never changes which operation a counter refers to.
func (s *schedule) fire(op Op, path string) *Rule {
	s.mu.Lock()
	var hit *Rule
	for i := range s.rules {
		r := &s.rules[i]
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		s.count[i]++
		if hit != nil {
			continue
		}
		switch {
		case r.Nth > 0:
			if s.count[i] == r.Nth {
				hit = r
			}
		case r.Prob > 0:
			if s.r.Float64() < r.Prob {
				hit = r
			}
		}
	}
	hook := s.onFault
	s.mu.Unlock()
	if hit != nil && hook != nil {
		hook(*hit)
	}
	return hit
}
