// Package kwayfm implements direct k-way FM refinement in the style of
// Sanchis ("Multiple-way network partitioning", IEEE ToC 1993), one of the
// k-way generalizations cited by the paper. Where internal/kway builds a
// k-way solution top-down by recursive bisection, this package improves an
// existing k-way assignment by moving single vertices between parts under
// per-part balance bounds.
//
// The paper's footnote 2 observes that the original FM gain-update shortcut
// is "netcut- and two-way-specific; it is by no means certain that the FM
// implementer will find analogous solutions for k-way partitioning with a
// general objective". The frozen reference (reference.go) takes the general
// route the footnote implies: neighbor gains are recomputed from net pin
// counts on every touch. Engine finds the analogous solution for both
// supported objectives: each vertex's gain vector is cached in a decomposed
// form (see recompute) and patched in O(1) per affected component as moves
// change pin counts, so the dominant neighbor-refresh loop never sweeps a
// net. The cached values are exact — not approximations — so Engine and
// RefineReference produce bit-identical results from the same RNG stream;
// the differential tests enforce it, and cmd/hgbench times the pair to
// report the speedup.
//
// Engine also owns every piece of mutable state as a reusable arena
// (flattened pin counts, locked flags, move stack, permutation buffer, gain
// container, gain-vector cache) so that repeated Refine calls and the
// passes within them allocate nothing in steady state.
package kwayfm

import (
	"fmt"
	"math"

	"hgpart/internal/gain"
	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
	"hgpart/internal/rng"
)

// Objective selects what the refiner optimizes.
type Objective int

const (
	// CutObjective minimizes the weighted number of nets spanning more
	// than one part.
	CutObjective Objective = iota
	// ConnectivityObjective minimizes sum w(e)*(lambda(e)-1).
	ConnectivityObjective
)

func (o Objective) String() string {
	switch o {
	case CutObjective:
		return "cut"
	case ConnectivityObjective:
		return "connectivity"
	}
	return "objective(?)"
}

// Config controls refinement.
type Config struct {
	// Tolerance bounds each part's weight within (1±Tolerance)*total/k.
	// Default 0.1.
	Tolerance float64
	// Objective to optimize. Default CutObjective.
	Objective Objective
	// MaxPasses caps passes; 0 means until no improvement.
	MaxPasses int
}

func (c Config) withDefaults() Config {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	return c
}

// Result reports a refinement run.
type Result struct {
	// Initial and Final objective values.
	Initial, Final int64
	Passes         int
	Moves          int64
}

type moveRec struct {
	v    int32
	from int32
}

// Engine is a reusable k-way refiner bound to one hypergraph and part
// count. All scratch state lives in arenas owned by the engine, so a worker
// that calls Refine repeatedly (one start after another) allocates nothing
// after the first call. An Engine is not safe for concurrent use; the
// evaluation harness gives each worker its own.
type Engine struct {
	h   *hypergraph.Hypergraph
	k   int
	cfg Config

	part   []int32
	pw     []int64 // part weights
	count  []int32 // flattened per-edge pin counts: count[e*k+p]
	locked []bool
	stack  []moveRec
	perm   []int
	gbase  []int64 // cached target-independent gain term per vertex
	gtgt   []int64 // cached per-target gain terms: gtgt[v*k+t]
	cont   *gain.Container

	value  int64 // current objective value
	lo, hi int64
}

// NewEngine builds a refiner for h split into k parts.
func NewEngine(h *hypergraph.Hypergraph, k int, cfg Config) (*Engine, error) {
	if k < 2 {
		return nil, fmt.Errorf("kwayfm: need k >= 2, got %d", k)
	}
	cfg = cfg.withDefaults()
	n := h.NumVertices()
	e := &Engine{
		h:      h,
		k:      k,
		cfg:    cfg,
		part:   make([]int32, n),
		pw:     make([]int64, k),
		count:  make([]int32, h.NumEdges()*k),
		locked: make([]bool, n),
		perm:   make([]int, n),
		gbase:  make([]int64, n),
		gtgt:   make([]int64, n*k),
	}
	ideal := float64(h.TotalVertexWeight()) / float64(k)
	e.lo = int64(ideal * (1 - cfg.Tolerance))
	e.hi = int64(ideal*(1+cfg.Tolerance) + 0.9999)
	return e, nil
}

// reset loads a starting assignment into the arenas and recomputes part
// weights, pin counts and the objective value.
func (e *Engine) reset(parts objective.Assignment, r *rng.RNG) {
	copy(e.part, parts)
	clear(e.pw)
	for v := 0; v < e.h.NumVertices(); v++ {
		e.pw[e.part[v]] += e.h.VertexWeight(int32(v))
	}
	clear(e.count)
	for ei := 0; ei < e.h.NumEdges(); ei++ {
		row := e.count[ei*e.k : (ei+1)*e.k]
		for _, v := range e.h.Pins(int32(ei)) {
			row[e.part[v]]++
		}
	}
	// Objective value from the counts just built — same quantity
	// objective.CutSize / ConnectivityMinusOne compute, without their
	// per-net scratch maps. An empty net has lambda 0 and contributes -w
	// to connectivity, matching objective.ConnectivityMinusOne exactly.
	e.value = 0
	for ei := 0; ei < e.h.NumEdges(); ei++ {
		row := e.count[ei*e.k : (ei+1)*e.k]
		lambda := int64(0)
		for _, c := range row {
			if c > 0 {
				lambda++
			}
		}
		w := e.h.EdgeWeight(int32(ei))
		switch e.cfg.Objective {
		case CutObjective:
			if lambda > 1 {
				e.value += w
			}
		case ConnectivityObjective:
			e.value += w * (lambda - 1)
		}
	}
	if e.cont == nil {
		e.cont = gain.NewContainer(e.h.NumVertices(), e.h.MaxWeightedDegree(), gain.LIFO, r)
	} else {
		e.cont.Reinit(e.h.NumVertices(), e.h.MaxWeightedDegree(), gain.LIFO, r)
	}
	// Build the gain-vector cache once per Refine; every move afterwards
	// (forward or rollback) patches it exactly, so no pass ever recomputes.
	for v := 0; v < e.h.NumVertices(); v++ {
		e.recompute(int32(v))
	}
}

// gain returns the objective decrease of moving v to part t, computed from
// scratch by sweeping v's nets. The hot path never calls this — it reads
// the cached decomposition instead — but pass rollback and the tests do,
// and it documents the quantity the cache must reproduce exactly.
//
//hglint:hotpath
func (e *Engine) gain(v int32, t int32) int64 {
	src := e.part[v]
	var g int64
	connectivity := e.cfg.Objective == ConnectivityObjective
	for _, ed := range e.h.IncidentEdges(v) {
		w := e.h.EdgeWeight(ed)
		row := e.count[int(ed)*e.k:]
		if connectivity {
			if row[src] == 1 {
				g += w
			}
			if row[t] == 0 {
				g -= w
			}
		} else {
			size := int32(e.h.EdgeSize(ed))
			beforeUncut := row[src] == size
			afterUncut := row[t] == size-1
			if afterUncut && !beforeUncut {
				g += w
			} else if beforeUncut && !afterUncut {
				g -= w
			}
		}
	}
	return g
}

// Cached gain decomposition. For every vertex v the engine maintains
//
//	gain(v, t) = gbase[v] + gtgt[v*k+t]   for all targets t,
//
// split so that each term is touched by at most O(1) updates per changed
// pin-count entry:
//
//	connectivity: gbase[v] = sum_e w*[row[part(v)]==1]
//	              gtgt[v][t] = -sum_e w*[row[t]==0]
//	cut:          gbase[v] = -sum_e w*[row[part(v)]==size]
//	              gtgt[v][t] = sum_e w*[row[t]==size-1]
//
// (For cut, when both indicators of a net fire the w-terms cancel, matching
// the if/else-if of gain exactly.) The t==part(v) entry is never read:
// selection skips it through the legality filter. A vertex's decomposition
// is invalidated only when a pin count of an incident net changes — i.e.
// when a pin-sharing neighbor moves — and move patches exactly the affected
// components then, so the cache equals a fresh recompute at every selection
// point. That exactness is what keeps Engine bit-identical to the
// reference: both read the same numbers, one from O(1)-maintained state,
// the other from an O(deg*k) sweep.

// recompute fills v's cached decomposition from the current pin counts.
// Called once per vertex per Refine (from reset); moves keep it current
// afterwards, across passes.
//
//hglint:hotpath
func (e *Engine) recompute(v int32) {
	src := e.part[v]
	tgt := e.gtgt[int(v)*e.k : int(v)*e.k+e.k]
	clear(tgt)
	var base int64
	if e.cfg.Objective == ConnectivityObjective {
		for _, ed := range e.h.IncidentEdges(v) {
			w := e.h.EdgeWeight(ed)
			row := e.count[int(ed)*e.k : int(ed)*e.k+e.k]
			if row[src] == 1 {
				base += w
			}
			for t, c := range row {
				if c == 0 {
					tgt[t] -= w
				}
			}
		}
	} else {
		for _, ed := range e.h.IncidentEdges(v) {
			w := e.h.EdgeWeight(ed)
			row := e.count[int(ed)*e.k : int(ed)*e.k+e.k]
			size := int32(e.h.EdgeSize(ed))
			if row[src] == size {
				base -= w
			}
			for t, c := range row {
				if c == size-1 {
					tgt[t] += w
				}
			}
		}
	}
	e.gbase[v] = base
}

// selectBest returns v's highest-gain legal target from the cached
// decomposition, or ok=false when no legal move exists right now. Because
// gbase[v] shifts every target equally, the argmax over gtgt alone equals
// the argmax over full gains; target order and strict-improvement
// tie-breaking are identical to the reference's per-target gain calls.
//
//hglint:hotpath
func (e *Engine) selectBest(v int32) (t int32, g int64, ok bool) {
	src := e.part[v]
	w := e.h.VertexWeight(v)
	if e.pw[src]-w < e.lo {
		// v cannot leave its part at all; same verdict legal gives for
		// every candidate, settled once instead of k times.
		return 0, 0, false
	}
	tgt := e.gtgt[int(v)*e.k : int(v)*e.k+e.k]
	g = math.MinInt64
	for cand := int32(0); cand < int32(e.k); cand++ {
		if cand == src || e.pw[cand]+w > e.hi {
			continue
		}
		if cg := tgt[cand]; cg > g {
			g, t, ok = cg, cand, true
		}
	}
	if ok {
		g += e.gbase[v]
	}
	return t, g, ok
}

// move relocates v to part t, updating counts, weights, the objective value
// (g must equal gain(v, t)), and the cached decompositions of every other
// pin of v's nets. Each net contributes per-edge delta scalars derived from
// its post-move src/dst counts cs/cd (pre-move: cs+1, cd-1):
//
// connectivity (see recompute's sums):
//
//	gtgt[y][src]: -w*([cs==0]-[cs+1==0])           = -w*[cs==0]
//	gtgt[y][t]:   -w*([cd==0]-[cd-1==0])           = +w*[cd==1]
//	gbase[y], part(y)==src: w*([cs==1]-[cs+1==1])  = w*([cs==1]-[cs==0])
//	gbase[y], part(y)==t:   w*([cd==1]-[cd-1==1])  = w*([cd==1]-[cd==2])
//
// cut:
//
//	gtgt[y][src]: w*([cs==size-1]-[cs==size-2])
//	gtgt[y][t]:   w*([cd==size-1]-[cd==size])
//	gbase[y], part(y)==src: -w*([cs==size]-[cs==size-1])
//	gbase[y], part(y)==t:   -w*[cd==size]
//
// All scalars depend only on the edge, so nets whose deltas are all zero
// (the common case for nets far from critical) skip their pin loop
// entirely.
//
// The mover itself keeps an exact cache too, which is what lets the cache
// survive across passes with no per-pass rebuild: gtgt is independent of
// its owner's part, so v's row takes the same per-edge deltas as everyone
// else's, and gbase[v] follows from FM move reversibility — undoing the
// move must yield gain -g, so gbase[v] = -g - gtgt[v][src] after patching.
// (Both objectives are exactly reversible: each net's post-move counts are
// the pre-move counts of the reverse move, term by term.)
//
//hglint:hotpath
func (e *Engine) move(v int32, t int32, g int64) {
	src := e.part[v]
	connectivity := e.cfg.Objective == ConnectivityObjective
	for _, ed := range e.h.IncidentEdges(v) {
		rowAt := int(ed) * e.k
		e.count[rowAt+int(src)]--
		e.count[rowAt+int(t)]++
		cs := e.count[rowAt+int(src)]
		cd := e.count[rowAt+int(t)]
		w := e.h.EdgeWeight(ed)
		var dTgtSrc, dTgtDst, dBaseSrc, dBaseDst int64
		if connectivity {
			switch cs {
			case 0:
				dTgtSrc = -w
				dBaseSrc = -w
			case 1:
				dBaseSrc = w
			}
			switch cd {
			case 1:
				dTgtDst = w
				dBaseDst = w
			case 2:
				dBaseDst = -w
			}
		} else {
			size := int32(e.h.EdgeSize(ed))
			switch cs {
			case size - 1:
				dTgtSrc = w
				dBaseSrc = w
			case size - 2:
				dTgtSrc = -w
			case size:
				dBaseSrc = -w
			}
			switch cd {
			case size - 1:
				dTgtDst = w
			case size:
				dTgtDst = -w
				dBaseDst = -w
			}
		}
		if dTgtSrc == 0 && dTgtDst == 0 && dBaseSrc == 0 && dBaseDst == 0 {
			continue
		}
		for _, y := range e.h.Pins(ed) {
			yAt := int(y) * e.k
			e.gtgt[yAt+int(src)] += dTgtSrc
			e.gtgt[yAt+int(t)] += dTgtDst
			if y == v {
				continue // gbase[v] is rebuilt from reversibility below
			}
			switch e.part[y] {
			case src:
				e.gbase[y] += dBaseSrc
			case t:
				e.gbase[y] += dBaseDst
			}
		}
	}
	e.gbase[v] = -g - e.gtgt[int(v)*e.k+int(src)]
	w := e.h.VertexWeight(v)
	e.part[v] = t
	e.pw[src] -= w
	e.pw[t] += w
	e.value -= g
}

// legal reports whether moving v to t keeps both affected parts in bounds.
//
//hglint:hotpath
func (e *Engine) legal(v int32, t int32) bool {
	src := e.part[v]
	if src == t {
		return false
	}
	w := e.h.VertexWeight(v)
	return e.pw[src]-w >= e.lo && e.pw[t]+w <= e.hi
}

// Refine improves parts in place and returns the outcome. parts must be a
// valid assignment into [0, k). r drives the per-pass random visit order;
// identical streams reproduce identical refinements (and identical to
// RefineReference with the same arguments).
func (e *Engine) Refine(parts objective.Assignment, r *rng.RNG) (Result, error) {
	if err := validate(e.h, parts, e.k); err != nil {
		return Result{}, err
	}
	e.reset(parts, r)
	res := Result{Initial: e.value}

	for {
		improved, moves := e.pass(r)
		res.Passes++
		res.Moves += moves
		if !improved {
			break
		}
		if e.cfg.MaxPasses > 0 && res.Passes >= e.cfg.MaxPasses {
			break
		}
	}
	copy(parts, e.part)
	res.Final = e.value
	return res, nil
}

// pass performs one k-way FM pass with prefix rollback, structured exactly
// as referencePass (see reference.go for the lazy-revalidation discipline)
// but running entirely in the engine's arenas, with every gain read served
// by the cached decomposition: the initial fill recomputes each vertex once
// and all later reads — pop-loop revalidation and the neighbor refresh
// after each move — are O(k) selectBest calls against cache state that move
// keeps exact. The container Remove/Insert sequence (including repeated
// refreshes of a vertex sharing several nets with the mover, which reset
// its LIFO position) is byte-for-byte the reference's.
//
//hglint:hotpath
func (e *Engine) pass(r *rng.RNG) (bool, int64) {
	clear(e.locked)
	e.cont.Clear()
	e.stack = e.stack[:0]

	for i := range e.perm {
		e.perm[i] = i
	}
	r.ShuffleInts(e.perm)
	for _, vi := range e.perm {
		v := int32(vi)
		if _, g, ok := e.selectBest(v); ok {
			e.cont.Insert(v, 0, g)
		}
	}

	startValue := e.value
	bestValue := e.value
	bestIdx := -1
	var moves int64

	for {
		v, key, ok := e.cont.Head(0)
		if !ok {
			break
		}
		// Lazy revalidation.
		t, g, legal := e.selectBest(v)
		if !legal {
			e.cont.Remove(v)
			continue
		}
		if g != key {
			e.cont.Update(v, g-key)
			continue
		}

		from := e.part[v]
		e.cont.Remove(v)
		e.locked[v] = true
		e.move(v, t, g)
		//hglint:ignore hotalloc arena append: stack keeps its capacity across passes, so growth happens once per engine, not per pass
		e.stack = append(e.stack, moveRec{v: v, from: from})
		moves++

		// Refresh cached entries of affected neighbors.
		for _, ed := range e.h.IncidentEdges(v) {
			for _, y := range e.h.Pins(ed) {
				if y == v || e.locked[y] {
					continue
				}
				if e.cont.Contains(y) {
					e.cont.Remove(y)
				}
				if _, gy, okY := e.selectBest(y); okY {
					e.cont.Insert(y, 0, gy)
				}
			}
		}

		if e.value < bestValue {
			bestValue = e.value
			bestIdx = len(e.stack) - 1
		}
	}
	// Roll back past the best prefix. The cache is exact for every vertex —
	// movers included — so the rollback gain is a lookup, not a sweep.
	for i := len(e.stack) - 1; i > bestIdx; i-- {
		rec := e.stack[i]
		e.move(rec.v, rec.from, e.gbase[rec.v]+e.gtgt[int(rec.v)*e.k+int(rec.from)])
	}
	return bestValue < startValue, moves
}

// validate checks the (h, parts, k) triple shared by both implementations.
func validate(h *hypergraph.Hypergraph, parts objective.Assignment, k int) error {
	if k < 2 {
		return fmt.Errorf("kwayfm: need k >= 2, got %d", k)
	}
	if len(parts) != h.NumVertices() {
		return fmt.Errorf("kwayfm: assignment length %d != %d vertices", len(parts), h.NumVertices())
	}
	return parts.Validate(k)
}

// Refine improves parts in place and returns the outcome; it is the
// convenience form of Engine.Refine for one-shot callers, constructing a
// throwaway engine. Workers refining many starts should hold an Engine.
func Refine(h *hypergraph.Hypergraph, parts objective.Assignment, k int, cfg Config, r *rng.RNG) (Result, error) {
	e, err := NewEngine(h, k, cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Refine(parts, r)
}
