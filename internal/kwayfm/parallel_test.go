package kwayfm

import (
	"context"
	"testing"

	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
)

// refineTrace runs one parallel refinement and captures everything the
// determinism contract covers: the result struct, the final assignment and
// the full per-round trajectory.
type refineTrace struct {
	res    ParResult
	parts  objective.Assignment
	rounds []RoundInfo
}

func traceEngine(t *testing.T, h trHG, start objective.Assignment, k int, cfg ParConfig) refineTrace {
	t.Helper()
	var tr refineTrace
	cfg.OnRound = func(ri RoundInfo) { tr.rounds = append(tr.rounds, ri) }
	e, err := NewParEngine(h, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tr.parts = append(objective.Assignment(nil), start...)
	tr.res, err = e.Refine(context.Background(), tr.parts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func traceReference(t *testing.T, h trHG, start objective.Assignment, k int, cfg ParConfig) refineTrace {
	t.Helper()
	var tr refineTrace
	cfg.OnRound = func(ri RoundInfo) { tr.rounds = append(tr.rounds, ri) }
	tr.parts = append(objective.Assignment(nil), start...)
	var err error
	tr.res, err = ParRefineReference(h, tr.parts, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

type trHG = *hypergraph.Hypergraph

func requireSameTrace(t *testing.T, label string, want, got refineTrace) {
	t.Helper()
	if got.res != want.res {
		t.Fatalf("%s: result %+v, want %+v", label, got.res, want.res)
	}
	if len(got.rounds) != len(want.rounds) {
		t.Fatalf("%s: %d rounds, want %d", label, len(got.rounds), len(want.rounds))
	}
	for i := range want.rounds {
		if got.rounds[i] != want.rounds[i] {
			t.Fatalf("%s: round %d = %+v, want %+v", label, i+1, got.rounds[i], want.rounds[i])
		}
	}
	for v := range want.parts {
		if got.parts[v] != want.parts[v] {
			t.Fatalf("%s: assignment diverges at vertex %d: %d vs %d", label, v, got.parts[v], want.parts[v])
		}
	}
}

// TestParEngineMatchesReference is the differential oracle: ParEngine at
// threads 1, 2, 4 and 8 must be byte-identical — assignment, result struct
// and full cut trajectory — to the frozen sequential ParRefineReference,
// across sizes, part counts, objectives and seeds. Run under -race this is
// also the data-race proof for the evaluate phase.
func TestParEngineMatchesReference(t *testing.T) {
	threadCounts := []int{1, 2, 4, 8}
	for _, cells := range []int{120, 400} {
		for _, k := range []int{2, 3, 5, 8} {
			for _, obj := range []Objective{CutObjective, ConnectivityObjective} {
				for seed := uint64(1); seed <= 3; seed++ {
					h := instance(t, cells, seed)
					start := randomAssignment(h, k, seed+10)
					cfg := ParConfig{Tolerance: 0.2, Objective: obj}
					want := traceReference(t, h, start, k, cfg)
					if want.res.Rounds == 0 {
						t.Fatalf("cells=%d k=%d %v seed=%d: oracle did no rounds — test instance too easy", cells, k, obj, seed)
					}
					for _, threads := range threadCounts {
						for _, chunk := range []int{0, 7} {
							cfg := ParConfig{Tolerance: 0.2, Objective: obj, Threads: threads, ChunkSize: chunk, CheckInvariants: true}
							got := traceEngine(t, h, start, k, cfg)
							label := labelOf(cells, k, obj, seed, threads, chunk)
							requireSameTrace(t, label, want, got)
						}
					}
				}
			}
		}
	}
}

func labelOf(cells, k int, obj Objective, seed uint64, threads, chunk int) string {
	return "cells=" + itoa(cells) + " k=" + itoa(k) + " obj=" + obj.String() +
		" seed=" + itoa(int(seed)) + " threads=" + itoa(threads) + " chunk=" + itoa(chunk)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestParRefineImproves checks the refiner actually earns its keep on the
// quality axis, for both objectives.
func TestParRefineImproves(t *testing.T) {
	h := instance(t, 500, 1)
	for _, k := range []int{2, 4, 8} {
		start := randomAssignment(h, k, uint64(k))
		parts := append(objective.Assignment(nil), start...)
		res, err := ParRefine(context.Background(), h, parts, k, ParConfig{Tolerance: 0.2, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Initial != objective.CutSize(h, start) {
			t.Fatalf("k=%d initial mismatch", k)
		}
		if got := objective.CutSize(h, parts); got != res.Final {
			t.Fatalf("k=%d final mismatch: result %d, recomputed %d", k, res.Final, got)
		}
		if float64(res.Final) > 0.8*float64(res.Initial) {
			t.Fatalf("k=%d refinement too weak: %d -> %d", k, res.Initial, res.Final)
		}
	}
}

// partWeights recomputes per-part weights of an assignment.
func partWeights(h trHG, parts objective.Assignment, k int) []int64 {
	pw := make([]int64, k)
	for v, p := range parts {
		pw[p] += h.VertexWeight(int32(v))
	}
	return pw
}

// legalStart fabricates a start and verifies it sits inside the engine's
// balance window, so per-round balance preservation is a meaningful claim.
func legalStart(t *testing.T, h trHG, k int, seed uint64, tol float64) objective.Assignment {
	t.Helper()
	start := randomAssignment(h, k, seed)
	ideal := float64(h.TotalVertexWeight()) / float64(k)
	lo := int64(ideal * (1 - tol))
	hi := int64(ideal*(1+tol) + 0.9999)
	for p, w := range partWeights(h, start, k) {
		if w < lo || w > hi {
			t.Fatalf("start not legal: part %d weight %d outside [%d,%d] — pick another seed", p, w, lo, hi)
		}
	}
	return start
}

// TestParRoundInvariants is the property-based round test: every prefix of
// the round sequence (reached via MaxRounds) must (a) be an exact prefix
// of the full trajectory, and (b) leave a legal, balanced assignment whose
// objective value matches a from-scratch recompute. Together with
// CheckInvariants in the differential test (counts, lambda, boundary set
// vs reference recomputation, clean cache rows vs fresh decomposition,
// verified after every committed round) this is the -check-invariants
// machinery applied per round.
func TestParRoundInvariants(t *testing.T) {
	const tol = 0.2
	h := instance(t, 300, 7)
	for _, k := range []int{3, 8} {
		for _, obj := range []Objective{CutObjective, ConnectivityObjective} {
			start := legalStart(t, h, k, 11, tol)
			cfg := ParConfig{Tolerance: tol, Objective: obj, Threads: 4, CheckInvariants: true}
			full := traceEngine(t, h, start, k, cfg)
			if full.res.Rounds < 2 {
				t.Fatalf("k=%d %v: only %d rounds — instance too easy for a prefix test", k, obj, full.res.Rounds)
			}
			ideal := float64(h.TotalVertexWeight()) / float64(k)
			lo := int64(ideal * (1 - tol))
			hi := int64(ideal*(1+tol) + 0.9999)
			for r := 1; r <= full.res.Rounds; r++ {
				cfg := cfg
				cfg.MaxRounds = r
				pre := traceEngine(t, h, start, k, cfg)
				if len(pre.rounds) != r {
					t.Fatalf("k=%d %v MaxRounds=%d: got %d rounds", k, obj, r, len(pre.rounds))
				}
				for i := 0; i < r; i++ {
					if pre.rounds[i] != full.rounds[i] {
						t.Fatalf("k=%d %v: round %d not a prefix: %+v vs %+v", k, obj, i+1, pre.rounds[i], full.rounds[i])
					}
				}
				if err := pre.parts.Validate(k); err != nil {
					t.Fatalf("k=%d %v after round %d: invalid assignment: %v", k, obj, r, err)
				}
				for p, w := range partWeights(h, pre.parts, k) {
					if w < lo || w > hi {
						t.Fatalf("k=%d %v after round %d: part %d weight %d outside [%d,%d]", k, obj, r, p, w, lo, hi)
					}
				}
				want := objective.CutSize(h, pre.parts)
				if obj == ConnectivityObjective {
					want = objective.ConnectivityMinusOne(h, pre.parts)
				}
				if pre.res.Final != want {
					t.Fatalf("k=%d %v after round %d: reported value %d, recomputed %d", k, obj, r, pre.res.Final, want)
				}
			}
		}
	}
}

// TestParRefineCancelMidRun is the seeded chaos case: a context cancelled
// from inside the round hook (deterministically, after round 2) must stop
// the run at the next round boundary, report Cancelled, and leave a legal
// balanced assignment — byte-identical to an uncancelled run capped at
// MaxRounds=2, because commits are atomic per round.
func TestParRefineCancelMidRun(t *testing.T) {
	const tol = 0.2
	h := instance(t, 300, 3)
	k := 4
	start := legalStart(t, h, k, 9, tol)

	capped := traceEngine(t, h, start, k, ParConfig{Tolerance: tol, Threads: 4, MaxRounds: 2})
	if capped.res.Rounds != 2 {
		t.Fatalf("capped run did %d rounds, want 2", capped.res.Rounds)
	}

	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		e, err := NewParEngine(h, k, ParConfig{
			Tolerance: tol,
			Threads:   threads,
			OnRound: func(ri RoundInfo) {
				if ri.Round == 2 {
					cancel()
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		parts := append(objective.Assignment(nil), start...)
		res, err := e.Refine(ctx, parts)
		e.Close()
		if err != context.Canceled {
			t.Fatalf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		if !res.Cancelled || res.Rounds != 2 {
			t.Fatalf("threads=%d: res = %+v, want Cancelled after 2 rounds", threads, res)
		}
		for v := range parts {
			if parts[v] != capped.parts[v] {
				t.Fatalf("threads=%d: cancelled state diverges from capped run at vertex %d", threads, v)
			}
		}
		if err := parts.Validate(k); err != nil {
			t.Fatalf("threads=%d: cancelled run left invalid assignment: %v", threads, err)
		}
		if got := objective.CutSize(h, parts); got != res.Final {
			t.Fatalf("threads=%d: reported %d, recomputed %d", threads, res.Final, got)
		}
	}
}

// TestParEngineReuse proves arena reuse leaks nothing: one engine refining
// a sequence of different starts must match fresh engines start for start.
func TestParEngineReuse(t *testing.T) {
	h := instance(t, 250, 5)
	k := 5
	cfg := ParConfig{Tolerance: 0.2, Threads: 2}
	shared, err := NewParEngine(h, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	for seed := uint64(20); seed < 25; seed++ {
		start := randomAssignment(h, k, seed)
		a := append(objective.Assignment(nil), start...)
		b := append(objective.Assignment(nil), start...)
		resShared, err := shared.Refine(context.Background(), a)
		if err != nil {
			t.Fatal(err)
		}
		resFresh, err := ParRefine(context.Background(), h, b, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if resShared != resFresh {
			t.Fatalf("seed %d: reused engine result %+v, fresh %+v", seed, resShared, resFresh)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("seed %d: reused engine assignment diverges at vertex %d", seed, v)
			}
		}
	}
}

// TestParEngineSteadyStateDoesNotAllocate pins the 0 allocs/move contract
// for the parallel containers at an actually-parallel thread count.
func TestParEngineSteadyStateDoesNotAllocate(t *testing.T) {
	h := instance(t, 300, 6)
	k := 8
	e, err := NewParEngine(h, k, ParConfig{Tolerance: 0.2, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	start := randomAssignment(h, k, 13)
	parts := make(objective.Assignment, len(start))
	refine := func() {
		copy(parts, start)
		if _, err := e.Refine(context.Background(), parts); err != nil {
			t.Fatal(err)
		}
	}
	refine() // warm up: arenas grow once
	if allocs := testing.AllocsPerRun(10, refine); allocs != 0 {
		t.Fatalf("steady-state Refine allocates %.2f times, want 0", allocs)
	}
}

func TestParEngineErrors(t *testing.T) {
	h := instance(t, 50, 1)
	if _, err := NewParEngine(h, 1, ParConfig{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	e, err := NewParEngine(h, 2, ParConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Refine(context.Background(), make(objective.Assignment, 3)); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := make(objective.Assignment, h.NumVertices())
	bad[0] = 7
	if _, err := e.Refine(context.Background(), bad); err == nil {
		t.Fatal("out-of-range part accepted")
	}
	if _, err := ParRefineReference(h, bad, 2, ParConfig{}); err == nil {
		t.Fatal("reference accepted out-of-range part")
	}
}
