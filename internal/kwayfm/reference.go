// The seed k-way refiner, frozen verbatim as the differential-testing
// oracle for the arena-based Engine in kwayfm.go.
//
// DO NOT OPTIMIZE OR OTHERWISE EDIT THIS FILE. RefineReference allocates
// its full state per call and per pass, exactly as the seed did; the Engine
// must produce bit-identical results from the same RNG stream
// (TestEngineMatchesReference), and cmd/hgbench times this path to report
// an honest baseline-vs-optimized speedup.
package kwayfm

import (
	"math"

	"hgpart/internal/gain"
	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
	"hgpart/internal/rng"
)

// state holds the mutable k-way partition.
type state struct {
	h      *hypergraph.Hypergraph
	k      int
	part   []int32
	pw     []int64   // part weights
	count  [][]int32 // per edge: pins per part
	obj    Objective
	value  int64 // current objective value
	lo, hi int64
}

func newState(h *hypergraph.Hypergraph, parts objective.Assignment, k int, cfg Config) *state {
	s := &state{
		h:    h,
		k:    k,
		part: make([]int32, h.NumVertices()),
		pw:   make([]int64, k),
		obj:  cfg.Objective,
	}
	copy(s.part, parts)
	for v := 0; v < h.NumVertices(); v++ {
		s.pw[s.part[v]] += h.VertexWeight(int32(v))
	}
	s.count = make([][]int32, h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		s.count[e] = make([]int32, k)
		for _, v := range h.Pins(int32(e)) {
			s.count[e][s.part[v]]++
		}
	}
	switch s.obj {
	case CutObjective:
		s.value = objective.CutSize(h, parts)
	case ConnectivityObjective:
		s.value = objective.ConnectivityMinusOne(h, parts)
	}
	ideal := float64(h.TotalVertexWeight()) / float64(k)
	s.lo = int64(ideal * (1 - cfg.Tolerance))
	s.hi = int64(ideal*(1+cfg.Tolerance) + 0.9999)
	return s
}

// gain returns the objective decrease of moving v to part t.
func (s *state) gain(v int32, t int32) int64 {
	src := s.part[v]
	var g int64
	for _, e := range s.h.IncidentEdges(v) {
		w := s.h.EdgeWeight(e)
		c := s.count[e]
		switch s.obj {
		case CutObjective:
			size := int32(s.h.EdgeSize(e))
			beforeUncut := c[src] == size
			afterUncut := c[t] == size-1
			if afterUncut && !beforeUncut {
				g += w
			} else if beforeUncut && !afterUncut {
				g -= w
			}
		case ConnectivityObjective:
			if c[src] == 1 {
				g += w
			}
			if c[t] == 0 {
				g -= w
			}
		}
	}
	return g
}

// move relocates v to part t, updating counts, weights and objective value.
func (s *state) move(v int32, t int32) {
	g := s.gain(v, t)
	src := s.part[v]
	w := s.h.VertexWeight(v)
	for _, e := range s.h.IncidentEdges(v) {
		s.count[e][src]--
		s.count[e][t]++
	}
	s.part[v] = t
	s.pw[src] -= w
	s.pw[t] += w
	s.value -= g
}

// legal reports whether moving v to t keeps both affected parts in bounds.
func (s *state) legal(v int32, t int32) bool {
	src := s.part[v]
	if src == t {
		return false
	}
	w := s.h.VertexWeight(v)
	return s.pw[src]-w >= s.lo && s.pw[t]+w <= s.hi
}

// bestOf returns v's highest-gain legal target, or ok=false when no legal
// move exists right now.
func (s *state) bestOf(v int32) (t int32, g int64, ok bool) {
	g = math.MinInt64
	for cand := int32(0); cand < int32(s.k); cand++ {
		if !s.legal(v, cand) {
			continue
		}
		if cg := s.gain(v, cand); cg > g {
			g, t, ok = cg, cand, true
		}
	}
	return t, g, ok
}

// RefineReference improves parts in place with the frozen seed
// implementation. Contract and behavior are identical to Engine.Refine with
// the same arguments; only the allocation profile differs.
func RefineReference(h *hypergraph.Hypergraph, parts objective.Assignment, k int, cfg Config, r *rng.RNG) (Result, error) {
	if err := validate(h, parts, k); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	s := newState(h, parts, k, cfg)
	res := Result{Initial: s.value}

	for {
		improved, moves := referencePass(s, r)
		res.Passes++
		res.Moves += moves
		if !improved {
			break
		}
		if cfg.MaxPasses > 0 && res.Passes >= cfg.MaxPasses {
			break
		}
	}
	copy(parts, s.part)
	res.Final = s.value
	return res, nil
}

// referencePass performs one k-way FM pass with prefix rollback. Each
// unlocked vertex's best (gain, target) is cached in a gain-bucket priority
// queue (internal/gain, one side). Because a move changes two part weights,
// cached entries can go stale with respect to legality or value; the pop
// loop revalidates lazily: a popped entry whose recomputed best move
// differs is reinserted at its fresh key (or dropped when no legal move
// remains). Neighbors of a moved vertex are refreshed eagerly.
func referencePass(s *state, r *rng.RNG) (bool, int64) {
	n := s.h.NumVertices()
	locked := make([]bool, n)

	maxKey := s.h.MaxWeightedDegree()
	cont := gain.NewLegacyContainer(n, maxKey, gain.LIFO, r)
	target := make([]int32, n)

	// Initial fill in random order (LIFO buckets make this the intra-bucket
	// order, mirroring the 2-way testbench's randomized initial insertion).
	for _, vi := range r.Perm(n) {
		v := int32(vi)
		if t, g, ok := s.bestOf(v); ok {
			cont.Insert(v, 0, g)
			target[v] = t
		}
	}

	type moveRec struct {
		v    int32
		from int32
	}
	var stack []moveRec
	startValue := s.value
	bestValue := s.value
	bestIdx := -1
	var moves int64

	for {
		v, key, ok := cont.Head(0)
		if !ok {
			break
		}
		// Lazy revalidation.
		t, g, legal := s.bestOf(v)
		if !legal {
			cont.Remove(v)
			continue
		}
		if g != key {
			cont.Update(v, g-key)
			target[v] = t
			continue
		}
		target[v] = t

		from := s.part[v]
		cont.Remove(v)
		locked[v] = true
		s.move(v, t)
		stack = append(stack, moveRec{v: v, from: from})
		moves++

		// Refresh cached entries of affected neighbors.
		for _, e := range s.h.IncidentEdges(v) {
			for _, y := range s.h.Pins(e) {
				if y == v || locked[y] {
					continue
				}
				if cont.Contains(y) {
					cont.Remove(y)
				}
				if ty, gy, okY := s.bestOf(y); okY {
					cont.Insert(y, 0, gy)
					target[y] = ty
				}
			}
		}

		if s.value < bestValue {
			bestValue = s.value
			bestIdx = len(stack) - 1
		}
	}
	// Roll back past the best prefix.
	for i := len(stack) - 1; i > bestIdx; i-- {
		s.move(stack[i].v, stack[i].from)
	}
	return bestValue < startValue, moves
}
