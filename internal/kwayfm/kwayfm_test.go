package kwayfm

import (
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
	"hgpart/internal/rng"
)

func instance(tb testing.TB, cells int, seed uint64) *hypergraph.Hypergraph {
	tb.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "kwayfm-test", Cells: cells, Nets: cells + cells/10,
		AvgNetSize: 3.4, NumMacros: 2, MaxMacroFrac: 0.02,
		NumGlobalNets: 1, GlobalNetFrac: 0.01, Locality: 2, Seed: seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

// randomAssignment builds a roughly balanced random k-way start.
func randomAssignment(h *hypergraph.Hypergraph, k int, seed uint64) objective.Assignment {
	r := rng.New(seed)
	a := make(objective.Assignment, h.NumVertices())
	for _, vi := range r.Perm(h.NumVertices()) {
		a[vi] = int32(vi % k) // round-robin over a random order: balanced
	}
	return a
}

func TestRefineImprovesCut(t *testing.T) {
	h := instance(t, 500, 1)
	for _, k := range []int{2, 3, 4} {
		a := randomAssignment(h, k, uint64(k))
		before := objective.CutSize(h, a)
		res, err := Refine(h, a, k, Config{Tolerance: 0.15}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if res.Initial != before {
			t.Fatalf("k=%d initial mismatch: %d vs %d", k, res.Initial, before)
		}
		after := objective.CutSize(h, a)
		if res.Final != after {
			t.Fatalf("k=%d final mismatch: result %d, recomputed %d", k, res.Final, after)
		}
		if after > before {
			t.Fatalf("k=%d refinement worsened: %d -> %d", k, before, after)
		}
		if float64(after) > 0.8*float64(before) {
			t.Fatalf("k=%d refinement too weak: %d -> %d", k, before, after)
		}
	}
}

func TestRefineConnectivityObjective(t *testing.T) {
	h := instance(t, 400, 2)
	k := 4
	a := randomAssignment(h, k, 3)
	before := objective.ConnectivityMinusOne(h, a)
	res, err := Refine(h, a, k, Config{Tolerance: 0.15, Objective: ConnectivityObjective}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	after := objective.ConnectivityMinusOne(h, a)
	if res.Final != after || after > before {
		t.Fatalf("connectivity refine: result %d, recomputed %d, before %d", res.Final, after, before)
	}
}

func TestRefineRespectsBalance(t *testing.T) {
	h := instance(t, 400, 4)
	k := 4
	a := randomAssignment(h, k, 5)
	tol := 0.12
	if _, err := Refine(h, a, k, Config{Tolerance: tol}, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	if imb := objective.Imbalance(h, a, k); imb > tol+0.02 {
		t.Fatalf("imbalance %.3f exceeds tolerance %.2f", imb, tol)
	}
}

func TestRefineErrors(t *testing.T) {
	h := instance(t, 100, 7)
	a := randomAssignment(h, 2, 1)
	if _, err := Refine(h, a, 1, Config{}, rng.New(1)); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Refine(h, a[:10], 2, Config{}, rng.New(1)); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := randomAssignment(h, 2, 1)
	bad[0] = 7
	if _, err := Refine(h, bad, 2, Config{}, rng.New(1)); err == nil {
		t.Fatal("out-of-range part accepted")
	}
}

func TestRefineDeterministic(t *testing.T) {
	h := instance(t, 300, 8)
	k := 3
	a1 := randomAssignment(h, k, 2)
	a2 := randomAssignment(h, k, 2)
	r1, err := Refine(h, a1, k, Config{Tolerance: 0.15}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Refine(h, a2, k, Config{Tolerance: 0.15}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Final != r2.Final || r1.Moves != r2.Moves {
		t.Fatalf("not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestRefineMaxPasses(t *testing.T) {
	h := instance(t, 300, 9)
	a := randomAssignment(h, 3, 4)
	res, err := Refine(h, a, 3, Config{Tolerance: 0.15, MaxPasses: 1}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Fatalf("MaxPasses=1 but ran %d", res.Passes)
	}
}

func TestTwoWayAgreesWithCoreObjective(t *testing.T) {
	// For k=2, cut and connectivity objectives coincide; both refiners must
	// report identical objective values for the same final assignment.
	h := instance(t, 300, 10)
	a := randomAssignment(h, 2, 5)
	res, err := Refine(h, a, 2, Config{Tolerance: 0.1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != objective.ConnectivityMinusOne(h, a) {
		t.Fatal("k=2 cut != connectivity")
	}
}

func TestObjectiveString(t *testing.T) {
	if CutObjective.String() != "cut" || ConnectivityObjective.String() != "connectivity" {
		t.Fatal("objective strings")
	}
}
