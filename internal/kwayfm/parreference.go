// The sequential oracle for the synchronous-round parallel refiner, frozen
// as the differential-testing baseline the way reference.go is for Engine.
//
// DO NOT OPTIMIZE OR OTHERWISE EDIT THIS FILE. ParRefineReference is the
// executable specification of one round: evaluate every boundary vertex
// against the round-start snapshot, then commit the strictly-improving
// proposals in ascending vertex-ID order with live revalidation. It
// allocates freely, recomputes every gain from scratch, and runs on one
// goroutine; ParEngine must produce a byte-identical ParResult, assignment
// and round trajectory at every thread count
// (TestParEngineMatchesReference), which is what turns "deterministic
// parallel refinement" from a claim into a regression-tested contract.
package kwayfm

import (
	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
)

// refBoundary reports whether v touches a net spanning more than one part,
// computed from the reference state's pin counts.
func refBoundary(s *state, v int32) bool {
	for _, e := range s.h.IncidentEdges(v) {
		nonzero := 0
		for _, c := range s.count[e] {
			if c > 0 {
				nonzero++
				if nonzero > 1 {
					return true
				}
			}
		}
	}
	return false
}

// ParRefineReference improves parts in place with the frozen sequential
// round algorithm. Contract: identical ParResult, final assignment and
// OnRound trajectory as ParEngine.Refine with the same (h, parts, k,
// cfg) — Threads and ChunkSize are irrelevant by construction here, which
// is exactly the property the engine must reproduce.
func ParRefineReference(h *hypergraph.Hypergraph, parts objective.Assignment, k int, cfg ParConfig) (ParResult, error) {
	if err := validate(h, parts, k); err != nil {
		return ParResult{}, err
	}
	cfg = cfg.withParDefaults()
	s := newState(h, parts, k, Config{Tolerance: cfg.Tolerance, Objective: cfg.Objective})
	if cfg.HiBound > 0 {
		s.lo, s.hi = cfg.LoBound, cfg.HiBound
	}
	res := ParResult{Initial: s.value}

	for {
		if cfg.MaxRounds > 0 && res.Rounds >= cfg.MaxRounds {
			break
		}
		// Round-start boundary in ascending vertex-ID order.
		var active []int32
		for v := int32(0); v < int32(h.NumVertices()); v++ {
			if refBoundary(s, v) {
				active = append(active, v)
			}
		}
		if len(active) == 0 {
			break
		}
		for _, v := range active {
			res.Work += int64(h.Degree(v))
		}
		// Evaluate phase: every proposal computed before any move, i.e.
		// against the frozen round-start state.
		target := make([]int32, len(active))
		ok := make([]bool, len(active))
		proposed := 0
		for i, v := range active {
			if t, g, o := s.bestOf(v); o && g > 0 {
				target[i], ok[i] = t, true
				proposed++
			}
		}
		// Commit phase: ascending vertex-ID order, live revalidation.
		committed := 0
		for i, v := range active {
			if !ok[i] {
				continue
			}
			t := target[i]
			if !s.legal(v, t) {
				continue
			}
			if s.gain(v, t) <= 0 {
				continue
			}
			s.move(v, t)
			committed++
			res.Work += int64(h.Degree(v))
		}
		res.Rounds++
		res.Moves += int64(committed)
		res.Proposed += int64(proposed)
		if cfg.OnRound != nil {
			cfg.OnRound(RoundInfo{
				Round:     res.Rounds,
				Active:    len(active),
				Proposed:  proposed,
				Committed: committed,
				Value:     s.value,
			})
		}
		if committed == 0 {
			break
		}
	}
	copy(parts, s.part)
	res.Final = s.value
	return res, nil
}
