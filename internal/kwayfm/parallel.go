// Synchronous-round parallel k-way FM (the deterministic intra-job
// parallelism layer). Sequential FM is inherently serial: every move
// depends on the gain structure left by the previous one. Following
// Deterministic Parallel Hypergraph Partitioning (arXiv 2112.12704) and
// the evaluate/commit kernel split of the OpenMP/CUDA FM ports, ParEngine
// restructures a pass into rounds:
//
//  1. Rebuild: the boundary (every vertex touching a net that spans more
//     than one part) is listed in ascending vertex-ID order. Positive-gain
//     moves only ever start from boundary vertices — for both objectives a
//     non-boundary vertex has gain <= 0 to every target — so the
//     restriction loses nothing.
//  2. Evaluate (parallel): workers claim chunks of the active list through
//     core.RoundPool and, against the frozen round-start state, refresh
//     the cached gain decomposition of vertices marked dirty by the
//     previous commit, then propose each vertex's best strictly-improving
//     legal move into its own slot of a gain.ProposalTable. Every slot has
//     exactly one writer and all shared state is read-only, so the table
//     contents are a pure function of the round-start state — independent
//     of thread count, chunk assignment and scheduling.
//  3. Commit (serial): proposals are applied in ascending vertex-ID order.
//     Each is revalidated against the live state (balance and a fresh
//     O(deg) gain sweep) and applied only while still strictly improving —
//     the deterministic conflict resolution. The committer maintains pin
//     counts, net spanning counts (lambda), the boundary cut-degrees, and
//     marks the pins of gain-affected nets dirty for the next round's
//     parallel phase instead of patching their caches inline; deferring
//     the O(deg*k) cache repair to the evaluate phase is what moves the
//     dominant cost into the parallel section.
//
// Rounds repeat until none commits (each committed move strictly decreases
// the objective, so termination is guaranteed) — a greedy positive-gain
// refiner rather than the sequential engine's hill-climbing pass with
// prefix rollback. The two explore different trajectories and are NOT
// bit-identical to each other; the parallel contract is different:
// ParEngine's output is byte-identical across every thread count, enforced
// against the frozen sequential oracle ParRefineReference (parreference.go)
// by the differential tests under -race.
package kwayfm

import (
	"context"
	"fmt"
	"math"

	"hgpart/internal/core"
	"hgpart/internal/gain"
	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
)

// ParConfig controls synchronous-round parallel refinement.
type ParConfig struct {
	// Tolerance bounds each part's weight within (1±Tolerance)*total/k.
	// Default 0.1. Ignored when HiBound is set.
	Tolerance float64
	// Objective to optimize. Default CutObjective.
	Objective Objective
	// MaxRounds caps rounds; 0 means until no move commits.
	MaxRounds int
	// Threads is the evaluation parallelism. 0 or 1 evaluates on the
	// calling goroutine; the committed result is identical for every
	// value. <0 selects GOMAXPROCS.
	Threads int
	// ChunkSize is the active-list slice a worker claims at a time.
	// Default 64. Like Threads, it cannot change the result.
	ChunkSize int
	// LoBound/HiBound, when HiBound > 0, override the tolerance-derived
	// part-weight bounds with exact values (the service passes its
	// partition.Balance window through unchanged).
	LoBound, HiBound int64
	// CheckInvariants re-derives counts, lambda, boundary and clean cache
	// entries from scratch after every round and panics on divergence.
	// Debug mode: orders of magnitude slower.
	CheckInvariants bool
	// OnRound, when set, observes each completed round (after its commit,
	// on the committing goroutine). Trajectory capture for tests/tracing.
	OnRound func(RoundInfo)
}

func (c ParConfig) withParDefaults() ParConfig {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	return c
}

// RoundInfo describes one committed round.
type RoundInfo struct {
	Round     int   // 1-based round number
	Active    int   // boundary size at round start
	Proposed  int   // strictly-improving proposals made
	Committed int   // proposals that survived in-order revalidation
	Value     int64 // objective value after the commit
}

// ParResult reports a parallel refinement run. Every field is a pure
// function of (hypergraph, starting assignment, config minus
// Threads/ChunkSize); the differential tests compare results wholesale.
type ParResult struct {
	// Initial and Final objective values.
	Initial, Final int64
	Rounds         int
	// Moves counts committed moves, Proposed the proposals they were
	// filtered from.
	Moves, Proposed int64
	// Work is the deterministic effort measure: degree of every evaluated
	// boundary vertex per round plus the degree of every committed mover.
	Work int64
	// Cancelled is set when ctx expired; the assignment written back is
	// the legal state after the last fully committed round.
	Cancelled bool
}

// ParEngine is a reusable synchronous-round parallel refiner bound to one
// hypergraph and part count. Like Engine it owns all mutable state as
// arenas, so repeated Refine calls allocate nothing in steady state — at
// any thread count. It additionally owns a core.RoundPool of persistent
// workers; call Close when done with the engine. Not safe for concurrent
// use.
type ParEngine struct {
	h   *hypergraph.Hypergraph
	k   int
	cfg ParConfig

	part   []int32
	pw     []int64 // part weights
	count  []int32 // flattened per-edge pin counts: count[e*k+p]
	lambda []int32 // per-edge spanned-part count
	gbase  []int64 // cached target-independent gain term per vertex
	gtgt   []int64 // cached per-target gain terms: gtgt[v*k+t]

	front *gain.Frontier
	props *gain.ProposalTable
	pool  *core.RoundPool

	active   []int32          // current round's active list (aliases front's arena)
	evalBody func(lo, hi int) // bound once; closures per round would allocate

	value  int64
	lo, hi int64
}

// NewParEngine builds a parallel refiner for h split into k parts.
func NewParEngine(h *hypergraph.Hypergraph, k int, cfg ParConfig) (*ParEngine, error) {
	if k < 2 {
		return nil, fmt.Errorf("kwayfm: need k >= 2, got %d", k)
	}
	cfg = cfg.withParDefaults()
	n := h.NumVertices()
	e := &ParEngine{
		h:      h,
		k:      k,
		cfg:    cfg,
		part:   make([]int32, n),
		pw:     make([]int64, k),
		count:  make([]int32, h.NumEdges()*k),
		lambda: make([]int32, h.NumEdges()),
		gbase:  make([]int64, n),
		gtgt:   make([]int64, n*k),
		front:  gain.NewFrontier(n),
		props:  gain.NewProposalTable(n),
		pool:   core.NewRoundPool(cfg.Threads),
	}
	e.evalBody = e.evalRange
	if cfg.HiBound > 0 {
		e.lo, e.hi = cfg.LoBound, cfg.HiBound
	} else {
		ideal := float64(h.TotalVertexWeight()) / float64(k)
		e.lo = int64(ideal * (1 - cfg.Tolerance))
		e.hi = int64(ideal*(1+cfg.Tolerance) + 0.9999)
	}
	return e, nil
}

// Threads returns the evaluation parallelism the engine runs with.
func (e *ParEngine) Threads() int { return e.pool.Threads() }

// Close releases the worker pool. The engine must not be used afterwards.
func (e *ParEngine) Close() { e.pool.Close() }

// reset loads a starting assignment into the arenas: part weights, pin
// counts, lambda, the objective value, cut-degrees, and an all-dirty cache
// (the first evaluate phase performs the full recompute, in parallel).
func (e *ParEngine) reset(parts objective.Assignment) {
	copy(e.part, parts)
	clear(e.pw)
	for v := 0; v < e.h.NumVertices(); v++ {
		e.pw[e.part[v]] += e.h.VertexWeight(int32(v))
	}
	clear(e.count)
	for ei := 0; ei < e.h.NumEdges(); ei++ {
		row := e.count[ei*e.k : (ei+1)*e.k]
		for _, v := range e.h.Pins(int32(ei)) {
			row[e.part[v]]++
		}
	}
	e.front.Reinit(e.h.NumVertices())
	e.props.Reinit(e.h.NumVertices())
	// Objective value and lambda from the counts just built; same formula
	// as Engine.reset (an empty net has lambda 0 and contributes -w to
	// connectivity, matching objective.ConnectivityMinusOne exactly).
	e.value = 0
	for ei := 0; ei < e.h.NumEdges(); ei++ {
		row := e.count[ei*e.k : (ei+1)*e.k]
		lambda := int32(0)
		for _, c := range row {
			if c > 0 {
				lambda++
			}
		}
		e.lambda[ei] = lambda
		w := e.h.EdgeWeight(int32(ei))
		switch e.cfg.Objective {
		case CutObjective:
			if lambda > 1 {
				e.value += w
			}
		case ConnectivityObjective:
			e.value += w * (int64(lambda) - 1)
		}
	}
	for ei := 0; ei < e.h.NumEdges(); ei++ {
		if e.lambda[ei] > 1 {
			e.front.AddCutNet(e.h.Pins(int32(ei)))
		}
	}
}

// recomputePar fills v's cached decomposition from the current pin counts;
// the same exact quantities as Engine.recompute (see the decomposition
// comment in kwayfm.go). Workers call it for dirty vertices inside their
// own active-list chunk, so each gbase/gtgt row has one writer per round.
//
//hglint:hotpath
func (e *ParEngine) recomputePar(v int32) {
	src := e.part[v]
	tgt := e.gtgt[int(v)*e.k : int(v)*e.k+e.k]
	clear(tgt)
	var base int64
	if e.cfg.Objective == ConnectivityObjective {
		for _, ed := range e.h.IncidentEdges(v) {
			w := e.h.EdgeWeight(ed)
			row := e.count[int(ed)*e.k : int(ed)*e.k+e.k]
			if row[src] == 1 {
				base += w
			}
			for t, c := range row {
				if c == 0 {
					tgt[t] -= w
				}
			}
		}
	} else {
		for _, ed := range e.h.IncidentEdges(v) {
			w := e.h.EdgeWeight(ed)
			row := e.count[int(ed)*e.k : int(ed)*e.k+e.k]
			size := int32(e.h.EdgeSize(ed))
			if row[src] == size {
				base -= w
			}
			for t, c := range row {
				if c == size-1 {
					tgt[t] += w
				}
			}
		}
	}
	e.gbase[v] = base
}

// parSelect returns v's highest-gain legal target from the cached
// decomposition against the frozen round-start weights; target order and
// strict-improvement tie-breaking match Engine.selectBest and the
// reference's bestOf (lowest part index wins ties).
//
//hglint:hotpath
func (e *ParEngine) parSelect(v int32) (t int32, g int64, ok bool) {
	src := e.part[v]
	w := e.h.VertexWeight(v)
	if e.pw[src]-w < e.lo {
		return 0, 0, false
	}
	tgt := e.gtgt[int(v)*e.k : int(v)*e.k+e.k]
	g = math.MinInt64
	for cand := int32(0); cand < int32(e.k); cand++ {
		if cand == src || e.pw[cand]+w > e.hi {
			continue
		}
		if cg := tgt[cand]; cg > g {
			g, t, ok = cg, cand, true
		}
	}
	if ok {
		g += e.gbase[v]
	}
	return t, g, ok
}

// evalRange is the parallel round body: for each active-list position in
// [lo, hi), refresh the vertex's cache if dirty and file its proposal.
// Writes are confined to slot i state (proposal slot, dirty flag, the
// vertex's own gbase/gtgt row); everything else read is frozen for the
// round, which is the whole determinism argument.
//
//hglint:hotpath
func (e *ParEngine) evalRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		v := e.active[i]
		if e.front.Dirty(v) {
			e.recomputePar(v)
			e.front.ClearDirty(v)
		}
		if t, g, ok := e.parSelect(v); ok && g > 0 {
			e.props.Propose(i, t, g)
		} else {
			e.props.None(i)
		}
	}
}

// gainLive computes the objective decrease of moving v to t from the live
// pin counts with an O(deg) sweep — the committer's revalidation read.
// Same quantity as Engine.gain.
//
//hglint:hotpath
func (e *ParEngine) gainLive(v int32, t int32) int64 {
	src := e.part[v]
	var g int64
	connectivity := e.cfg.Objective == ConnectivityObjective
	for _, ed := range e.h.IncidentEdges(v) {
		w := e.h.EdgeWeight(ed)
		row := e.count[int(ed)*e.k:]
		if connectivity {
			if row[src] == 1 {
				g += w
			}
			if row[t] == 0 {
				g -= w
			}
		} else {
			size := int32(e.h.EdgeSize(ed))
			beforeUncut := row[src] == size
			afterUncut := row[t] == size-1
			if afterUncut && !beforeUncut {
				g += w
			} else if beforeUncut && !afterUncut {
				g -= w
			}
		}
	}
	return g
}

// apply relocates v to part t (g must equal gainLive(v, t)), maintaining
// counts, lambda, part weights, the objective value, the boundary
// cut-degrees, and the dirty set. Unlike Engine.move it does NOT patch
// neighbor caches: it marks the pins of gain-affected nets dirty using the
// same per-net delta-scalar test (a net whose scalars are all zero cannot
// have changed any pin's decomposition), and the next round's parallel
// evaluate phase repairs exactly those rows.
//
//hglint:hotpath
func (e *ParEngine) apply(v int32, t int32, g int64) {
	src := e.part[v]
	connectivity := e.cfg.Objective == ConnectivityObjective
	for _, ed := range e.h.IncidentEdges(v) {
		rowAt := int(ed) * e.k
		e.count[rowAt+int(src)]--
		e.count[rowAt+int(t)]++
		cs := e.count[rowAt+int(src)]
		cd := e.count[rowAt+int(t)]
		spanBefore := e.lambda[ed] > 1
		if cs == 0 {
			e.lambda[ed]--
		}
		if cd == 1 {
			e.lambda[ed]++
		}
		spanAfter := e.lambda[ed] > 1
		w := e.h.EdgeWeight(ed)
		var dTgtSrc, dTgtDst, dBaseSrc, dBaseDst int64
		if connectivity {
			switch cs {
			case 0:
				dTgtSrc = -w
				dBaseSrc = -w
			case 1:
				dBaseSrc = w
			}
			switch cd {
			case 1:
				dTgtDst = w
				dBaseDst = w
			case 2:
				dBaseDst = -w
			}
		} else {
			size := int32(e.h.EdgeSize(ed))
			switch cs {
			case size - 1:
				dTgtSrc = w
				dBaseSrc = w
			case size - 2:
				dTgtSrc = -w
			case size:
				dBaseSrc = -w
			}
			switch cd {
			case size - 1:
				dTgtDst = w
			case size:
				dTgtDst = -w
				dBaseDst = -w
			}
		}
		if dTgtSrc != 0 || dTgtDst != 0 || dBaseSrc != 0 || dBaseDst != 0 {
			e.front.MarkDirtyPins(e.h.Pins(ed))
		}
		if spanBefore != spanAfter {
			if spanAfter {
				e.front.AddCutNet(e.h.Pins(ed))
			} else {
				e.front.DropCutNet(e.h.Pins(ed))
			}
		}
	}
	// The mover's gbase is defined relative to its own part, so its cache
	// is stale even when every net's scalars were zero.
	e.front.MarkDirty(v)
	w := e.h.VertexWeight(v)
	e.part[v] = t
	e.pw[src] -= w
	e.pw[t] += w
	e.value -= g
}

// commit applies the round's proposals in ascending vertex-ID order
// (= active-list order), revalidating each against the live state. A
// proposal survives only if its move is still legal and still strictly
// improving by a fresh sweep; earlier-ID movers therefore win conflicts,
// identically at every thread count.
//
//hglint:hotpath
func (e *ParEngine) commit() (committed, proposed int, work int64) {
	for i, n := 0, len(e.active); i < n; i++ {
		t, _, ok := e.props.Get(i)
		if !ok {
			continue
		}
		proposed++
		v := e.active[i]
		src := e.part[v]
		w := e.h.VertexWeight(v)
		if e.pw[src]-w < e.lo || e.pw[t]+w > e.hi {
			continue
		}
		g := e.gainLive(v, t)
		if g <= 0 {
			continue
		}
		e.apply(v, t, g)
		committed++
		work += int64(e.h.Degree(v))
	}
	return committed, proposed, work
}

// Refine improves parts in place and returns the outcome. parts must be a
// valid assignment into [0, k). The result is byte-identical for every
// Threads/ChunkSize setting; ctx is polled at round boundaries, so a
// cancelled run still leaves parts legal and self-consistent (the state
// after the last fully committed round).
func (e *ParEngine) Refine(ctx context.Context, parts objective.Assignment) (ParResult, error) {
	if err := validate(e.h, parts, e.k); err != nil {
		return ParResult{}, err
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	e.reset(parts)
	res := ParResult{Initial: e.value}
	var err error

	for {
		if e.cfg.MaxRounds > 0 && res.Rounds >= e.cfg.MaxRounds {
			break
		}
		select {
		case <-done:
			res.Cancelled = true
			err = ctx.Err()
		default:
		}
		if res.Cancelled {
			break
		}
		e.active = e.front.Rebuild()
		if len(e.active) == 0 {
			break
		}
		for _, v := range e.active {
			res.Work += int64(e.h.Degree(v))
		}
		e.pool.Run(len(e.active), e.cfg.ChunkSize, e.evalBody)
		committed, proposed, moveWork := e.commit()
		res.Rounds++
		res.Moves += int64(committed)
		res.Proposed += int64(proposed)
		res.Work += moveWork
		if e.cfg.CheckInvariants {
			e.verifyRound()
		}
		if e.cfg.OnRound != nil {
			e.cfg.OnRound(RoundInfo{
				Round:     res.Rounds,
				Active:    len(e.active),
				Proposed:  proposed,
				Committed: committed,
				Value:     e.value,
			})
		}
		if committed == 0 {
			break
		}
	}
	copy(parts, e.part)
	res.Final = e.value
	return res, err
}

// verifyRound re-derives every maintained structure from scratch and
// panics on the first divergence. Debug mode only (ParConfig
// .CheckInvariants); allocation cost is irrelevant here.
func (e *ParEngine) verifyRound() {
	h, k := e.h, e.k
	// Part weights.
	pw := make([]int64, k)
	for v := 0; v < h.NumVertices(); v++ {
		pw[e.part[v]] += h.VertexWeight(int32(v))
	}
	for p := 0; p < k; p++ {
		if pw[p] != e.pw[p] {
			panic(fmt.Sprintf("kwayfm: par round invariant: pw[%d]=%d, recomputed %d", p, e.pw[p], pw[p]))
		}
	}
	// Counts, lambda, value, cut-degrees.
	cutdeg := make([]int32, h.NumVertices())
	var value int64
	for ei := 0; ei < h.NumEdges(); ei++ {
		row := make([]int32, k)
		for _, v := range h.Pins(int32(ei)) {
			row[e.part[v]]++
		}
		lambda := int32(0)
		for p := 0; p < k; p++ {
			if row[p] != e.count[ei*k+p] {
				panic(fmt.Sprintf("kwayfm: par round invariant: count[%d,%d]=%d, recomputed %d", ei, p, e.count[ei*k+p], row[p]))
			}
			if row[p] > 0 {
				lambda++
			}
		}
		if lambda != e.lambda[ei] {
			panic(fmt.Sprintf("kwayfm: par round invariant: lambda[%d]=%d, recomputed %d", ei, e.lambda[ei], lambda))
		}
		w := h.EdgeWeight(int32(ei))
		switch e.cfg.Objective {
		case CutObjective:
			if lambda > 1 {
				value += w
			}
		case ConnectivityObjective:
			value += w * (int64(lambda) - 1)
		}
		if lambda > 1 {
			for _, v := range h.Pins(int32(ei)) {
				cutdeg[v]++
			}
		}
	}
	if value != e.value {
		panic(fmt.Sprintf("kwayfm: par round invariant: value=%d, recomputed %d", e.value, value))
	}
	for v := 0; v < h.NumVertices(); v++ {
		if (cutdeg[v] > 0) != e.front.InBoundary(int32(v)) {
			panic(fmt.Sprintf("kwayfm: par round invariant: boundary[%d]=%v, recomputed cutdeg %d", v, e.front.InBoundary(int32(v)), cutdeg[v]))
		}
	}
	// Clean cache rows must equal a fresh decomposition.
	gbase := make([]int64, len(e.gbase))
	gtgt := make([]int64, len(e.gtgt))
	copy(gbase, e.gbase)
	copy(gtgt, e.gtgt)
	for v := 0; v < h.NumVertices(); v++ {
		if e.front.Dirty(int32(v)) {
			continue
		}
		e.recomputePar(int32(v))
		if gbase[v] != e.gbase[v] {
			panic(fmt.Sprintf("kwayfm: par round invariant: clean gbase[%d]=%d, recomputed %d", v, gbase[v], e.gbase[v]))
		}
		for t := 0; t < k; t++ {
			if gtgt[v*k+t] != e.gtgt[v*k+t] {
				panic(fmt.Sprintf("kwayfm: par round invariant: clean gtgt[%d,%d]=%d, recomputed %d", v, t, gtgt[v*k+t], e.gtgt[v*k+t]))
			}
		}
	}
	copy(e.gbase, gbase)
	copy(e.gtgt, gtgt)
}

// ParRefine improves parts in place with a throwaway ParEngine; the
// convenience form for one-shot callers (CLI, service polish). Callers
// refining many starts should hold a ParEngine to amortize the arenas and
// the worker pool.
func ParRefine(ctx context.Context, h *hypergraph.Hypergraph, parts objective.Assignment, k int, cfg ParConfig) (ParResult, error) {
	e, err := NewParEngine(h, k, cfg)
	if err != nil {
		return ParResult{}, err
	}
	defer e.Close()
	return e.Refine(ctx, parts)
}
