package kwayfm

import (
	"runtime"
	"testing"

	"hgpart/internal/objective"
	"hgpart/internal/rng"
)

// TestEngineMatchesReference: the arena-based Engine must be bit-identical
// to the frozen seed implementation — same RNG stream, same instance, same
// start implies the same final assignment and the same pass/move counts,
// for both objectives and several k.
func TestEngineMatchesReference(t *testing.T) {
	for _, cells := range []int{120, 400} {
		h := instance(t, cells, uint64(cells))
		for _, k := range []int{2, 3, 5} {
			for _, obj := range []Objective{CutObjective, ConnectivityObjective} {
				for seed := uint64(1); seed <= 3; seed++ {
					cfg := Config{Tolerance: 0.12, Objective: obj}
					aRef := randomAssignment(h, k, seed)
					aOpt := append(objective.Assignment(nil), aRef...)

					refRes, err := RefineReference(h, aRef, k, cfg, rng.New(seed * 7))
					if err != nil {
						t.Fatal(err)
					}
					eng, err := NewEngine(h, k, cfg)
					if err != nil {
						t.Fatal(err)
					}
					optRes, err := eng.Refine(aOpt, rng.New(seed*7))
					if err != nil {
						t.Fatal(err)
					}
					if refRes != optRes {
						t.Fatalf("cells=%d k=%d obj=%v seed=%d: results differ:\n  reference: %+v\n  engine:    %+v",
							cells, k, obj, seed, refRes, optRes)
					}
					for v := range aRef {
						if aRef[v] != aOpt[v] {
							t.Fatalf("cells=%d k=%d obj=%v seed=%d: assignments differ at vertex %d: %d vs %d",
								cells, k, obj, seed, v, aRef[v], aOpt[v])
						}
					}
				}
			}
		}
	}
}

// TestEngineReuseMatchesFresh: an engine that has already refined several
// starts must behave exactly like a throwaway one on the next start — no
// state may leak between Refine calls through the arenas.
func TestEngineReuseMatchesFresh(t *testing.T) {
	h := instance(t, 300, 9)
	const k = 4
	cfg := Config{Tolerance: 0.15, Objective: ConnectivityObjective}
	reused, err := NewEngine(h, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for start := uint64(0); start < 6; start++ {
		aReused := randomAssignment(h, k, start)
		aFresh := append(objective.Assignment(nil), aReused...)
		resReused, err := reused.Refine(aReused, rng.New(start+100))
		if err != nil {
			t.Fatal(err)
		}
		resFresh, err := Refine(h, aFresh, k, cfg, rng.New(start+100))
		if err != nil {
			t.Fatal(err)
		}
		if resReused != resFresh {
			t.Fatalf("start %d: reused engine %+v differs from fresh %+v", start, resReused, resFresh)
		}
		for v := range aReused {
			if aReused[v] != aFresh[v] {
				t.Fatalf("start %d: assignments differ at vertex %d", start, v)
			}
		}
	}
}

// TestEngineFinalValueMatchesObjective pins Engine.reset's map-free
// objective computation to the internal/objective implementations.
func TestEngineFinalValueMatchesObjective(t *testing.T) {
	h := instance(t, 250, 17)
	for _, k := range []int{2, 5} {
		for _, obj := range []Objective{CutObjective, ConnectivityObjective} {
			a := randomAssignment(h, k, uint64(k))
			eng, err := NewEngine(h, k, Config{Tolerance: 0.2, Objective: obj})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Refine(a, rng.New(3))
			if err != nil {
				t.Fatal(err)
			}
			var want int64
			switch obj {
			case CutObjective:
				want = objective.CutSize(h, a)
			case ConnectivityObjective:
				want = objective.ConnectivityMinusOne(h, a)
			}
			if res.Final != want {
				t.Fatalf("k=%d obj=%v: engine final %d, objective recount %d", k, obj, res.Final, want)
			}
		}
	}
}

// TestEngineSteadyStateDoesNotAllocate: after the first Refine call has
// sized every arena, further starts on the same engine must not allocate at
// all.
func TestEngineSteadyStateDoesNotAllocate(t *testing.T) {
	h := instance(t, 200, 23)
	const k = 3
	eng, err := NewEngine(h, k, Config{Tolerance: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	master := randomAssignment(h, k, 1)
	scratch := make(objective.Assignment, len(master))
	r := rng.New(1)

	// Warm up: size the move stack and container arenas across a few
	// distinct trajectories.
	for i := uint64(0); i < 4; i++ {
		copy(scratch, master)
		r.Seed(i)
		if _, err := eng.Refine(scratch, r); err != nil {
			t.Fatal(err)
		}
	}

	run := uint64(0)
	allocs := testing.AllocsPerRun(5, func() {
		copy(scratch, master)
		r.Seed(run % 4) // replay warmed trajectories only
		run++
		if _, err := eng.Refine(scratch, r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Refine allocates %.1f times per start, want 0", allocs)
	}
	runtime.KeepAlive(eng)
}
