package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestMicroSuiteSmoke runs the full pinned suite at minimal settings: every
// case must build, the reference/optimized move-count cross-check must hold,
// and the zero-alloc cases must measure zero. This is the same gate
// cmd/hgbench applies in CI, exercised at the package level.
func TestMicroSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-suite smoke is not short")
	}
	r := Runner{Warmup: 1, Reps: 2}
	rep, err := r.RunSuite(MicroSuiteName, MicroSuite())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Cases), len(MicroSuite()); got != want {
		t.Fatalf("suite ran %d cases, want %d", got, want)
	}
	for _, c := range rep.Cases {
		if c.Optimized.Moves == 0 {
			t.Errorf("case %q made no moves — workload is degenerate", c.Name)
		}
		if c.Optimized.NsPerMove <= 0 {
			t.Errorf("case %q: non-positive ns/move %v", c.Name, c.Optimized.NsPerMove)
		}
	}
	if problems := CheckZeroAllocs(rep, MicroSuite()); len(problems) != 0 {
		t.Errorf("zero-alloc assertion failed:\n  %s", strings.Join(problems, "\n  "))
	}
}

// TestReportHasNoTimestamps: the committed BENCH_pr3.json must be
// reproducible up to measured numbers, so the serialized report may carry no
// wall-clock or host-identity fields.
func TestReportHasNoTimestamps(t *testing.T) {
	rep := Report{Schema: SchemaV1, Suite: MicroSuiteName}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"time", "date", "host", "stamp"} {
		if strings.Contains(strings.ToLower(string(raw)), banned) {
			t.Errorf("report JSON contains non-reproducible field matching %q: %s", banned, raw)
		}
	}
}

// TestCheckRegression covers the three comparison outcomes: within
// tolerance, beyond tolerance, and a case missing from the current run.
func TestCheckRegression(t *testing.T) {
	base := Report{Cases: []CaseResult{
		{Name: "a", Optimized: Metrics{NsPerMove: 100}},
		{Name: "b", Optimized: Metrics{NsPerMove: 100}},
		{Name: "gone", Optimized: Metrics{NsPerMove: 100}},
	}}
	cur := Report{Cases: []CaseResult{
		{Name: "a", Optimized: Metrics{NsPerMove: 109}}, // +9%: ok at 10%
		{Name: "b", Optimized: Metrics{NsPerMove: 115}}, // +15%: regression
	}}
	problems := CheckRegression(cur, base, 0.10)
	if len(problems) != 2 {
		t.Fatalf("want 2 problems (regression + missing case), got %d: %v", len(problems), problems)
	}
	if !strings.Contains(problems[0], `"b"`) {
		t.Errorf("first problem should name case b: %s", problems[0])
	}
	if !strings.Contains(problems[1], `"gone"`) {
		t.Errorf("second problem should name the missing case: %s", problems[1])
	}
	if problems := CheckRegression(cur, base, 0.20); len(problems) != 1 {
		t.Errorf("at 20%% tolerance only the missing case should remain, got %v", problems)
	}
}

// TestCheckRegressionDriftNormalization: when both reports carry reference
// measurements, uniform machine slowdown (ref and opt drift by the same
// factor) must not trip the gate, while a genuine relative regression (opt
// drifts, ref does not) must — even if the raw opt numbers are identical.
func TestCheckRegressionDriftNormalization(t *testing.T) {
	base := Report{Cases: []CaseResult{
		{Name: "a", Reference: Metrics{NsPerMove: 400}, Optimized: Metrics{NsPerMove: 100}},
	}}
	slowMachine := Report{Cases: []CaseResult{
		// Everything 30% slower: same opt/ref ratio, no regression.
		{Name: "a", Reference: Metrics{NsPerMove: 520}, Optimized: Metrics{NsPerMove: 130}},
	}}
	if problems := CheckRegression(slowMachine, base, 0.10); len(problems) != 0 {
		t.Errorf("uniform machine slowdown should cancel out, got %v", problems)
	}
	realRegression := Report{Cases: []CaseResult{
		// Ref unchanged, opt 30% slower: a code regression.
		{Name: "a", Reference: Metrics{NsPerMove: 400}, Optimized: Metrics{NsPerMove: 130}},
	}}
	if problems := CheckRegression(realRegression, base, 0.10); len(problems) != 1 {
		t.Errorf("want the relative regression flagged, got %v", problems)
	}
}

// TestCheckZeroAllocs only enforces the assertion on marked cases.
func TestCheckZeroAllocs(t *testing.T) {
	cases := []Case{{Name: "pinned", AssertZeroAlloc: true}, {Name: "free"}}
	rep := Report{Cases: []CaseResult{
		{Name: "pinned", Optimized: Metrics{AllocsPerMove: 0.5}},
		{Name: "free", Optimized: Metrics{AllocsPerMove: 3}},
	}}
	problems := CheckZeroAllocs(rep, cases)
	if len(problems) != 1 || !strings.Contains(problems[0], `"pinned"`) {
		t.Fatalf("want exactly one problem about case pinned, got %v", problems)
	}
}
