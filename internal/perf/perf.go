// Package perf is the reproducible benchmark runner behind cmd/hgbench.
//
// The paper's methodology chapter argues that (cost, runtime) trade-offs are
// the unit of comparison for iterative heuristics, and that runtime claims
// are meaningless unless the experiment is controlled: pinned inputs, pinned
// seeds, warmup, repetition, and a robust aggregate. This package applies
// that discipline to the repository's own hot path. Every case runs the
// frozen seed implementation (the reference path) and the optimized path on
// identical pinned instances and seed streams — the two are bit-identical by
// construction, which the runner re-verifies by comparing total move counts
// — and reports ns/move and allocs/move for each, plus their ratio.
//
// Timing normalization: ns/move divides wall time by the number of FM moves
// made, the same per-machine normalization the repository's Work counter
// provides deterministically; allocs/move divides the runtime.MemStats
// malloc-count delta by moves, the quantity CI pins to zero for the
// steady-state pass loop.
package perf

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"
)

// Case is one benchmark: a pinned instance plus a pinned workload, with a
// reference and an optimized execution of the same work.
type Case struct {
	// Name identifies the case in reports; it is the key regression checks
	// match on.
	Name string
	// Build constructs the two workload closures. Each closure runs the full
	// pinned multistart batch once and returns the number of FM moves made.
	// Build is called once per measurement; the closures own all state they
	// need, pre-sized so that steady-state repetitions do not allocate in
	// harness code.
	Build func() (reference, optimized func() int64)
	// AssertZeroAlloc marks cases whose optimized path must not allocate at
	// all in steady state (the flat-FM and k-way pass loops). Cases with
	// inherent per-start allocations (multilevel hierarchy construction)
	// leave it false.
	AssertZeroAlloc bool
	// Parallel marks cases whose optimized closure runs on multiple OS
	// threads; the runner then skips its single-P pin (which would serialize
	// the workers and measure nothing but scheduling overhead).
	Parallel bool
	// MinSpeedup, when > 0, is the minimum reference/optimized ns-per-move
	// ratio CheckSpeedups enforces — but only on hosts with at least
	// MinSpeedupCPUs CPUs, since a parallel speedup target is unfalsifiable
	// on a smaller machine. On smaller hosts the gate degrades to a no-
	// severe-slowdown bound instead.
	MinSpeedup     float64
	MinSpeedupCPUs int
}

// Metrics summarizes one implementation's measured reps.
type Metrics struct {
	// NsPerMove is the median over reps of wall-nanoseconds per FM move.
	NsPerMove float64 `json:"ns_per_move"`
	// AllocsPerMove is total heap allocations across all measured reps
	// divided by total moves.
	AllocsPerMove float64 `json:"allocs_per_move"`
	// Moves is the total number of FM moves across all measured reps.
	Moves int64 `json:"moves"`
	// Reps is the number of measured repetitions.
	Reps int `json:"reps"`
}

// CaseResult pairs the two implementations' metrics for one case.
type CaseResult struct {
	Name      string  `json:"name"`
	Reference Metrics `json:"reference"`
	Optimized Metrics `json:"optimized"`
	// Speedup is reference ns/move divided by optimized ns/move.
	Speedup float64 `json:"speedup"`
	// Parallel marks a thread-scaling case (both closures run the same
	// parallel code at different thread counts). Persisted so baseline
	// comparisons know to gate it via CheckSpeedups rather than ns/move.
	Parallel bool `json:"parallel,omitempty"`
}

// Report is the machine-readable output of a suite run (BENCH_pr3.json).
// It deliberately carries no timestamps or hostnames: rerunning the same
// suite with the same toolchain on the same machine should produce a file
// that differs only in measured numbers.
type Report struct {
	Schema    string       `json:"schema"`
	Suite     string       `json:"suite"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Warmup    int          `json:"warmup"`
	Reps      int          `json:"reps"`
	Cases     []CaseResult `json:"cases"`
	// GeomeanSpeedup aggregates per-case speedups the way the paper
	// aggregates per-benchmark ratios.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// SchemaV1 identifies the report format.
const SchemaV1 = "hgbench/v1"

// Runner executes cases with fixed warmup and repetition counts.
type Runner struct {
	// Warmup runs are executed and discarded before measurement; they size
	// every arena so the measured reps see the steady state.
	Warmup int
	// Reps is the number of measured repetitions; ns/move is the median.
	Reps int
}

// measure runs one workload closure Warmup+Reps times and aggregates.
func (r Runner) measure(run func() int64, parallel bool) Metrics {
	for i := 0; i < r.Warmup; i++ {
		run()
	}
	if !parallel {
		// Single-P measurement, as testing.AllocsPerRun does: background
		// scheduling cannot smear allocations or time across the sample.
		// Parallel cases keep all Ps — pinning would serialize the very
		// workers whose speedup is being measured.
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	}

	nsPerMove := make([]float64, 0, r.Reps)
	var ms runtime.MemStats
	var totalMoves int64
	var totalAllocs uint64
	if parallel {
		// The first stop-the-world ReadMemStats after a parallel workload
		// perturbs the runtime's goroutine-parking caches enough that the
		// next run makes a handful of one-time allocations. Pay that on a
		// discarded rep so the measured ones see the true steady state.
		runtime.ReadMemStats(&ms)
		run()
	}
	for i := 0; i < r.Reps; i++ {
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		t0 := time.Now()
		moves := run()
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&ms)
		if moves <= 0 {
			moves = 1 // degenerate workload; avoid dividing by zero
		}
		totalMoves += moves
		totalAllocs += ms.Mallocs - m0
		nsPerMove = append(nsPerMove, float64(elapsed.Nanoseconds())/float64(moves))
	}
	sort.Float64s(nsPerMove)
	return Metrics{
		NsPerMove:     median(nsPerMove),
		AllocsPerMove: float64(totalAllocs) / float64(totalMoves),
		Moves:         totalMoves,
		Reps:          r.Reps,
	}
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// RunCase measures both implementations of one case and cross-checks that
// they did identical work (equal total move counts — the cheap observable
// consequence of bit-identical behavior).
func (r Runner) RunCase(c Case) (CaseResult, error) {
	reference, optimized := c.Build()
	refM := r.measure(reference, c.Parallel)
	optM := r.measure(optimized, c.Parallel)
	if refM.Moves != optM.Moves {
		return CaseResult{}, fmt.Errorf(
			"perf: case %q: reference made %d moves but optimized made %d — the implementations diverged",
			c.Name, refM.Moves, optM.Moves)
	}
	res := CaseResult{Name: c.Name, Reference: refM, Optimized: optM, Parallel: c.Parallel}
	if optM.NsPerMove > 0 {
		res.Speedup = refM.NsPerMove / optM.NsPerMove
	}
	return res, nil
}

// RunSuite measures every case and assembles the report.
func (r Runner) RunSuite(suite string, cases []Case) (Report, error) {
	rep := Report{
		Schema:    SchemaV1,
		Suite:     suite,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Warmup:    r.Warmup,
		Reps:      r.Reps,
	}
	logSpeedup := 0.0
	for _, c := range cases {
		cr, err := r.RunCase(c)
		if err != nil {
			return Report{}, err
		}
		rep.Cases = append(rep.Cases, cr)
		logSpeedup += math.Log(cr.Speedup)
	}
	if len(rep.Cases) > 0 {
		rep.GeomeanSpeedup = math.Exp(logSpeedup / float64(len(rep.Cases)))
	}
	return rep, nil
}

// CheckRegression compares a fresh report against a committed baseline:
// every baseline case must still exist, and its optimized ns/move must not
// have regressed by more than tolerance (e.g. 0.10 for 10%).
//
// Raw ns/move is not comparable across machine states — ambient load,
// frequency scaling, and a different host all shift every measurement by
// the same factor (the speed-dependent-ranking trap METHODOLOGY.md quotes
// from Schreiber & Martin). The frozen reference implementation runs in the
// same process on the same inputs, so its drift measures exactly that
// factor. The check therefore rescales the current optimized ns/move into
// baseline machine units by base.Reference/current.Reference before
// comparing: a real code regression changes opt relative to ref and still
// trips the gate, while uniform machine slowdown cancels. Cases without a
// usable reference measurement fall back to the raw comparison.
//
// Returned problems are human-readable; an empty slice means the check
// passed.
func CheckRegression(current, baseline Report, tolerance float64) []string {
	var problems []string
	cur := make(map[string]CaseResult, len(current.Cases))
	for _, c := range current.Cases {
		cur[c.Name] = c
	}
	for _, base := range baseline.Cases {
		c, ok := cur[base.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("case %q present in baseline but not in current run", base.Name))
			continue
		}
		if base.Parallel {
			// Thread-scaling cases are gated by CheckSpeedups instead: their
			// "reference" is the same parallel code at one thread, not a
			// frozen serial yardstick, so the drift normalization below
			// would just amplify scheduler noise — especially on hosts with
			// fewer CPUs than the case's thread count.
			continue
		}
		adjusted := c.Optimized.NsPerMove
		note := ""
		if c.Reference.NsPerMove > 0 && base.Reference.NsPerMove > 0 {
			adjusted = c.Optimized.NsPerMove * base.Reference.NsPerMove / c.Reference.NsPerMove
			note = " (machine-drift adjusted via reference)"
		}
		limit := base.Optimized.NsPerMove * (1 + tolerance)
		if adjusted > limit {
			problems = append(problems, fmt.Sprintf(
				"case %q: optimized ns/move %.1f%s exceeds baseline %.1f by more than %.0f%%",
				base.Name, adjusted, note, base.Optimized.NsPerMove, tolerance*100))
		}
	}
	return problems
}

// CheckZeroAllocs verifies that every case marked AssertZeroAlloc measured
// exactly zero optimized-path allocations per move.
func CheckZeroAllocs(rep Report, cases []Case) []string {
	mustBeZero := make(map[string]bool, len(cases))
	for _, c := range cases {
		if c.AssertZeroAlloc {
			mustBeZero[c.Name] = true
		}
	}
	var problems []string
	for _, c := range rep.Cases {
		if mustBeZero[c.Name] && c.Optimized.AllocsPerMove != 0 {
			problems = append(problems, fmt.Sprintf(
				"case %q: optimized path allocates %.6f times per move in steady state, want 0",
				c.Name, c.Optimized.AllocsPerMove))
		}
	}
	return problems
}

// CheckSpeedups verifies every case's MinSpeedup target against the measured
// reference/optimized ratio. The full target only arms on hosts with at
// least MinSpeedupCPUs CPUs: a 4-thread speedup claim cannot be tested on a
// 1-CPU machine, where the same case instead degrades to a bound against
// severe slowdown (the synchronization overhead a correct synchronous-round
// implementation still pays when its workers share one CPU).
func CheckSpeedups(rep Report, cases []Case) []string {
	// On an undersized host, tolerate up to 2x slowdown before failing.
	const maxSerialSlowdown = 0.5

	targets := make(map[string]Case, len(cases))
	for _, c := range cases {
		if c.MinSpeedup > 0 {
			targets[c.Name] = c
		}
	}
	cpus := runtime.NumCPU()
	var problems []string
	for _, cr := range rep.Cases {
		c, ok := targets[cr.Name]
		if !ok {
			continue
		}
		want := c.MinSpeedup
		if cpus < c.MinSpeedupCPUs {
			want = maxSerialSlowdown
		}
		if cr.Speedup < want {
			problems = append(problems, fmt.Sprintf(
				"case %q: speedup %.2fx below required %.2fx (host has %d CPUs; full %.2fx target arms at %d)",
				cr.Name, cr.Speedup, want, cpus, c.MinSpeedup, c.MinSpeedupCPUs))
		}
	}
	return problems
}
