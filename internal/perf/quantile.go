package perf

import (
	"math"
	"sort"
	"sync"
)

// Percentile returns the q-quantile (q in [0,1]) of an ascending-sorted
// sample using linear interpolation between closest ranks — the same
// estimator for every consumer (hgbench reports, hgserved /metrics), so a
// "p99 ns/move" means one thing across the repository. An empty sample
// returns NaN.
func Percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Sampler is a bounded, concurrency-safe window of float64 observations —
// the live-serving counterpart of the benchmark runner's fixed-rep samples.
// It keeps the most recent capacity observations in a ring, so quantiles
// reflect current behavior rather than the whole process lifetime, and its
// memory is fixed no matter how long the daemon runs.
type Sampler struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	full  bool
	count int64
}

// NewSampler returns a sampler holding the most recent capacity
// observations; capacity < 1 is treated as 1.
func NewSampler(capacity int) *Sampler {
	if capacity < 1 {
		capacity = 1
	}
	return &Sampler{buf: make([]float64, 0, capacity)}
}

// Observe records one observation.
func (s *Sampler) Observe(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, v)
		return
	}
	s.full = true
	s.buf[s.next] = v
	s.next = (s.next + 1) % cap(s.buf)
}

// Count returns the total number of observations ever recorded (not just
// those still in the window).
func (s *Sampler) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantiles returns the requested quantiles of the current window, in the
// order asked. With no observations every entry is NaN.
func (s *Sampler) Quantiles(qs ...float64) []float64 {
	s.mu.Lock()
	window := make([]float64, len(s.buf))
	copy(window, s.buf)
	s.mu.Unlock()
	sort.Float64s(window)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = Percentile(window, q)
	}
	return out
}
