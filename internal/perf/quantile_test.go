package perf

import (
	"math"
	"testing"
)

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5}, {-1, 1}, {2, 5},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.q); got != tc.want {
			t.Errorf("Percentile(q=%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty sample should give NaN")
	}
	one := []float64{7}
	if got := Percentile(one, 0.99); got != 7 {
		t.Errorf("single sample p99 = %g, want 7", got)
	}
}

func TestSamplerWindowAndCount(t *testing.T) {
	s := NewSampler(4)
	for i := 1; i <= 10; i++ {
		s.Observe(float64(i))
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	// Window holds the most recent 4 observations: 7, 8, 9, 10.
	qs := s.Quantiles(0, 0.5, 1)
	if qs[0] != 7 || qs[2] != 10 {
		t.Fatalf("window quantiles = %v, want min 7 max 10", qs)
	}
	if qs[1] != 8.5 {
		t.Fatalf("median of {7,8,9,10} = %g, want 8.5", qs[1])
	}
}

func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(0)
	for _, q := range s.Quantiles(0.5, 0.9) {
		if !math.IsNaN(q) {
			t.Fatal("quantiles of empty sampler should be NaN")
		}
	}
	s.Observe(3)
	s.Observe(9) // capacity clamped to 1: only the latest survives
	if got := s.Quantiles(0.5)[0]; got != 9 {
		t.Fatalf("clamped window median = %g, want 9", got)
	}
}
