package perf

import (
	"context"

	"hgpart/internal/core"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/kwayfm"
	"hgpart/internal/multilevel"
	"hgpart/internal/objective"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// MicroSuiteName labels the pinned suite in reports; regression checks
// refuse to compare reports from different suites.
const MicroSuiteName = "micro/v1"

// Pinned workload sizes. Small enough that the whole suite runs in seconds
// (it gates CI), large enough that a multistart batch makes thousands of
// moves, so ns/move is a stable median rather than timer noise.
const (
	flatStarts = 4
	kwayStarts = 3
	mlStarts   = 3
)

// MicroSuite returns the pinned benchmark cases. Everything is fixed —
// instance generator specs, seeds, start counts — so two runs of the same
// binary execute identical move sequences and reports are comparable across
// commits.
func MicroSuite() []Case {
	return []Case{
		flatCase("flat-fm-strong", core.StrongConfig(false),
			gen.Spec{Cells: 1200, Nets: 1700, AvgNetSize: 3.5, Locality: 0.6, Seed: 41}),
		flatCase("flat-fm-naive-alldelta", core.NaiveConfig(false),
			gen.Spec{Cells: 1200, Nets: 1700, AvgNetSize: 3.5, Locality: 0.6, Seed: 41}),
		flatCase("clip-strong", core.StrongConfig(true),
			gen.Spec{Cells: 1000, Nets: 1400, AvgNetSize: 3.8, Locality: 0.5, Seed: 43}),
		kwayCase("kwayfm-k8-connectivity", 8,
			kwayfm.Config{Tolerance: 0.15, Objective: kwayfm.ConnectivityObjective},
			gen.Spec{Cells: 900, Nets: 1300, AvgNetSize: 4.0, Locality: 0.5, Seed: 59}),
		kwayCase("kwayfm-k8-cut", 8,
			kwayfm.Config{Tolerance: 0.15, Objective: kwayfm.CutObjective},
			gen.Spec{Cells: 900, Nets: 1300, AvgNetSize: 4.0, Locality: 0.5, Seed: 61}),
		parfmCase("parfm-k8-cut", 8, 4,
			gen.Spec{Cells: 2500, Nets: 3600, AvgNetSize: 4.0, Locality: 0.5, Seed: 67}),
		mlCase("ml-strong", core.StrongConfig(false),
			gen.Spec{Cells: 2000, Nets: 2800, AvgNetSize: 3.6, Locality: 0.7, Seed: 53}),
	}
}

// flatStartSides pre-generates the pinned multistart seed partitions so the
// measured closures only replay them.
func flatStartSides(h *hypergraph.Hypergraph, bal partition.Balance, starts int) [][]uint8 {
	sides := make([][]uint8, starts)
	p := partition.New(h)
	for s := range sides {
		p.RandomBalanced(rng.New(uint64(1000+s)), bal)
		sides[s] = append([]uint8(nil), p.Sides()...)
	}
	return sides
}

// flatCase: a flat-FM multistart batch. The reference closure drives the
// frozen seed pass (Config.ReferenceImpl); the optimized closure drives the
// arena engine. Both must make the same total number of moves — they are
// bit-identical — and the optimized pass loop must not allocate.
func flatCase(name string, cfg core.Config, spec gen.Spec) Case {
	return Case{
		Name:            name,
		AssertZeroAlloc: true,
		Build: func() (func() int64, func() int64) {
			h := gen.MustGenerate(spec)
			bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
			sides := flatStartSides(h, bal, flatStarts)
			mk := func(reference bool) func() int64 {
				c := cfg
				c.ReferenceImpl = reference
				eng := core.NewEngine(h, c, bal, rng.New(11))
				p := partition.New(h)
				return func() int64 {
					var moves int64
					for _, s := range sides {
						if err := p.Assign(s); err != nil {
							panic(err)
						}
						res := eng.Run(p)
						moves += res.Moves
					}
					return moves
				}
			}
			return mk(true), mk(false)
		},
	}
}

// kwayCase: direct k-way refinement of pinned random assignments. The seed
// implementation reallocates its container, locked set and move log every
// pass; the engine reuses arenas.
func kwayCase(name string, k int, cfg kwayfm.Config, spec gen.Spec) Case {
	return Case{
		Name:            name,
		AssertZeroAlloc: true,
		Build: func() (func() int64, func() int64) {
			h := gen.MustGenerate(spec)
			starts := make([]objective.Assignment, kwayStarts)
			for s := range starts {
				starts[s] = make(objective.Assignment, h.NumVertices())
				r := rng.New(uint64(2000 + s))
				for v := range starts[s] {
					starts[s][v] = int32(r.Intn(k))
				}
			}
			scratchRef := make(objective.Assignment, h.NumVertices())
			scratchOpt := make(objective.Assignment, h.NumVertices())

			// Each closure owns an RNG; both start from the same seed and
			// advance in lockstep because the implementations draw
			// identically, so move totals stay comparable rep by rep.
			rRef := rng.New(5)
			reference := func() int64 {
				var moves int64
				for _, s := range starts {
					copy(scratchRef, s)
					res, err := kwayfm.RefineReference(h, scratchRef, k, cfg, rRef)
					if err != nil {
						panic(err)
					}
					moves += res.Moves
				}
				return moves
			}
			eng, err := kwayfm.NewEngine(h, k, cfg)
			if err != nil {
				panic(err)
			}
			rOpt := rng.New(5)
			optimized := func() int64 {
				var moves int64
				for _, s := range starts {
					copy(scratchOpt, s)
					res, err := eng.Refine(scratchOpt, rOpt)
					if err != nil {
						panic(err)
					}
					moves += res.Moves
				}
				return moves
			}
			return reference, optimized
		},
	}
}

// parfmCase: the synchronous-round parallel k-way refiner at two thread
// counts over identical pinned starts. Unlike the other cases, "reference"
// and "optimized" run the SAME implementation — only the thread count
// differs, which by the refiner's contract cannot change a single move (the
// runner's equal-moves cross-check doubles as a determinism check here).
// What the case gates is the speedup the extra threads buy (CheckSpeedups,
// armed on hosts with >= MinSpeedupCPUs CPUs) and zero steady-state
// allocations at any thread count.
func parfmCase(name string, k, threads int, spec gen.Spec) Case {
	return Case{
		Name:            name,
		AssertZeroAlloc: true,
		Parallel:        true,
		MinSpeedup:      1.5,
		MinSpeedupCPUs:  4,
		Build: func() (func() int64, func() int64) {
			h := gen.MustGenerate(spec)
			starts := make([]objective.Assignment, kwayStarts)
			for s := range starts {
				starts[s] = make(objective.Assignment, h.NumVertices())
				r := rng.New(uint64(3000 + s))
				for v := range starts[s] {
					starts[s][v] = int32(r.Intn(k))
				}
			}
			mk := func(threads int) func() int64 {
				eng, err := kwayfm.NewParEngine(h, k, kwayfm.ParConfig{
					Tolerance: 0.15,
					Objective: kwayfm.CutObjective,
					Threads:   threads,
				})
				if err != nil {
					panic(err)
				}
				scratch := make(objective.Assignment, h.NumVertices())
				return func() int64 {
					var moves int64
					for _, s := range starts {
						copy(scratch, s)
						res, err := eng.Refine(context.Background(), scratch)
						if err != nil {
							panic(err)
						}
						moves += res.Moves
					}
					return moves
				}
			}
			return mk(1), mk(threads)
		},
	}
}

// mlCase: full multilevel bisection starts. Hierarchy construction allocates
// by design (each start builds a fresh coarsening), so this case measures
// end-to-end ns/move without a zero-alloc assertion; what it isolates is the
// per-level engine rebinding versus the seed's per-level reallocation.
func mlCase(name string, refine core.Config, spec gen.Spec) Case {
	return Case{
		Name:            name,
		AssertZeroAlloc: false,
		Build: func() (func() int64, func() int64) {
			h := gen.MustGenerate(spec)
			bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
			mk := func(reference bool) func() int64 {
				cfg := multilevel.Config{Refine: refine}
				cfg.Refine.ReferenceImpl = reference
				ml := multilevel.New(h, cfg, bal)
				r := rng.New(31)
				return func() int64 {
					var moves int64
					for s := 0; s < mlStarts; s++ {
						_, st := ml.Partition(r.Split())
						moves += st.Moves
					}
					return moves
				}
			}
			return mk(true), mk(false)
		},
	}
}
