package perf

import "testing"

// BenchmarkMicroSuite exposes every micro-suite case to `go test -bench`
// (and pprof via -cpuprofile) without going through cmd/hgbench. The
// sub-benchmark names mirror the hgbench report rows: <case>/ref runs the
// frozen reference implementation, <case>/opt the arena engine, so
//
//	go test -bench 'MicroSuite/kwayfm-k8-cut' -benchmem ./internal/perf
//
// profiles exactly the pair a BENCH_pr3.json row came from. -benchmem on the
// /opt rows is the raw form of the harness's allocs/move assertion.
func BenchmarkMicroSuite(b *testing.B) {
	for _, c := range MicroSuite() {
		c := c
		b.Run(c.Name+"/ref", func(b *testing.B) {
			ref, _ := c.Build()
			ref() // warm caches and touch lazily-built state once
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref()
			}
		})
		b.Run(c.Name+"/opt", func(b *testing.B) {
			_, opt := c.Build()
			opt()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opt()
			}
		})
	}
}
