package multilevel

import (
	"testing"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func allSchemes() []Matching {
	return []Matching{FirstChoice, RandomMatching, HeavyEdge, HyperedgeCoarsening}
}

func TestMatchingStrings(t *testing.T) {
	want := map[Matching]string{
		FirstChoice: "FirstChoice", RandomMatching: "Random",
		HeavyEdge: "HeavyEdge", HyperedgeCoarsening: "HEC",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%v.String() = %q", int(m), m.String())
		}
	}
}

func TestAllSchemesProduceValidPartitions(t *testing.T) {
	h := testInstance(t, 41, 700)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	for _, scheme := range allSchemes() {
		ml := New(h, Config{Refine: core.StrongConfig(false), Matching: scheme}, bal)
		p, st := ml.Partition(rng.New(uint64(scheme) + 7))
		if !p.Legal(bal) {
			t.Fatalf("%v: illegal partition", scheme)
		}
		if p.Cut() != p.CutFromScratch() || st.Cut != p.Cut() {
			t.Fatalf("%v: cut inconsistent", scheme)
		}
		if st.Levels < 2 {
			t.Fatalf("%v: no coarsening on 700 cells", scheme)
		}
	}
}

func TestSchemesReduceGraph(t *testing.T) {
	h := testInstance(t, 43, 500)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	for _, scheme := range allSchemes() {
		m := New(h, Config{Refine: core.StrongConfig(false), Matching: scheme}, bal)
		clusterOf, k := m.matchWith(h, rng.New(3), nil, nil, h.TotalVertexWeight())
		if k >= h.NumVertices() {
			t.Fatalf("%v: no reduction (%d of %d)", scheme, k, h.NumVertices())
		}
		for v, c := range clusterOf {
			if c < 0 || int(c) >= k {
				t.Fatalf("%v: vertex %d has invalid cluster %d", scheme, v, c)
			}
		}
	}
}

func TestHECCollapsesWholeNets(t *testing.T) {
	h := testInstance(t, 44, 400)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	m := New(h, Config{Refine: core.StrongConfig(false), Matching: HyperedgeCoarsening}, bal)
	clusterOf, k := m.matchWith(h, rng.New(5), nil, nil, h.TotalVertexWeight())
	// HEC can produce clusters larger than 2 (whole nets); verify at least
	// one such cluster exists on a net-rich instance.
	counts := make([]int, k)
	for _, c := range clusterOf {
		counts[c]++
	}
	big := 0
	for _, c := range counts {
		if c > 2 {
			big++
		}
	}
	if big == 0 {
		t.Fatal("HEC produced no multi-vertex net clusters")
	}
}

func TestHeavyEdgeRecoversPlantedPairs(t *testing.T) {
	// Plant 20 heavy pairs {2i, 2i+1} (weight 100) inside a light ring
	// (weight 1). HeavyEdge should recover the vast majority of planted
	// pairs regardless of visit order, because whenever either endpoint
	// initiates a match its heaviest available net is the planted one.
	const n = 40
	bld := hypergraph.NewBuilder(n, 2*n)
	bld.AddVertices(n, 1)
	for i := 0; i < n/2; i++ {
		bld.AddEdge(100, int32(2*i), int32(2*i+1))
	}
	for i := 0; i < n; i++ {
		bld.AddEdge(1, int32(i), int32((i+1)%n))
	}
	h := bld.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.5)
	m := New(h, Config{Refine: core.StrongConfig(false), Matching: HeavyEdge}, bal)
	clusterOf, _ := m.matchWith(h, rng.New(9), nil, nil, h.TotalVertexWeight())
	recovered := 0
	for i := 0; i < n/2; i++ {
		if clusterOf[2*i] == clusterOf[2*i+1] {
			recovered++
		}
	}
	if recovered < n/2-2 {
		t.Fatalf("HeavyEdge recovered only %d/%d planted pairs", recovered, n/2)
	}
}
