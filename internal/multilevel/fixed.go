package multilevel

import (
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Fixed-vertex multilevel partitioning.
//
// The paper (§2.1) observes that in top-down placement "almost all
// hypergraph partitioning instances have many vertices fixed in partitions
// due to terminal propagation or pad locations", and that fixed terminals
// fundamentally change the problem (Caldwell, Kahng, Markov, DAC'99,
// "Hypergraph Partitioning With Fixed Vertices"). PartitionFixed extends
// the multilevel engine to such instances: matching never merges vertices
// fixed to different sides, clusters inherit their members' fixed sides,
// the coarsest-level initial partitions honor them, and every refinement
// level re-pins the projected fixed vertices.

// fixedLevel pairs a coarsening level with the fixed-side vector of its
// coarse hypergraph.
type fixedLevel struct {
	level
	coarseFixed []int8
}

// PartitionFixed runs one multilevel start honoring fixedSide: entries are
// partition.Free (-1), 0 or 1 per fine-level vertex. The returned partition
// has those vertices fixed (and on their required sides).
func (m *Partitioner) PartitionFixed(fixedSide []int8, r *rng.RNG) (*partition.P, Stats) {
	if len(fixedSide) != m.h.NumVertices() {
		panic("multilevel: fixedSide length mismatch")
	}
	st := Stats{}
	levels := m.coarsenFixed(m.h, r, fixedSide)
	st.Levels = len(levels) + 1

	coarsest := m.h
	coarsestFixed := fixedSide
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].h
		coarsestFixed = levels[len(levels)-1].coarseFixed
	}
	st.CoarsestVertices = coarsest.NumVertices()

	p := m.initialPartitionFixed(coarsest, coarsestFixed, r, &st)

	// Uncoarsen with per-level fixing.
	for i := len(levels) - 1; i >= 0; i-- {
		var fine *hypergraph.Hypergraph
		var fineFixed []int8
		if i == 0 {
			fine = m.h
			fineFixed = fixedSide
		} else {
			fine = levels[i-1].h
			fineFixed = levels[i-1].coarseFixed
		}
		coarseSides := p.Sides()
		p = partition.New(fine)
		fineSides := make([]uint8, fine.NumVertices())
		for v := range fineSides {
			fineSides[v] = coarseSides[levels[i].clusterOf[v]]
		}
		applyFixed(p, fineFixed, fineSides)
		if err := p.Assign(fineSides); err != nil {
			panic(err)
		}
		m.refine(p, r, &st)
	}
	if len(levels) == 0 {
		m.refine(p, r, &st)
	}
	st.Cut = p.Cut()
	return p, st
}

// applyFixed pins the fixed vertices on p and forces the side vector to
// agree with them before Assign.
func applyFixed(p *partition.P, fixed []int8, sides []uint8) {
	for v, f := range fixed {
		if f == partition.Free {
			continue
		}
		sides[v] = uint8(f)
		p.Fix(int32(v), f)
	}
}

// coarsenFixed builds the hierarchy with fixed-compatibility matching,
// propagating fixed sides onto clusters.
func (m *Partitioner) coarsenFixed(h *hypergraph.Hypergraph, r *rng.RNG, fixed []int8) []fixedLevel {
	var levels []fixedLevel
	cur := h
	curFixed := fixed
	cap64 := int64(m.cfg.ClusterCapFrac * float64(h.TotalVertexWeight()))
	if slack := m.bal.Slack(); slack > h.TotalVertexWeight()/200 && slack < cap64 {
		cap64 = slack
	}
	if cap64 < 1 {
		cap64 = 1
	}
	for cur.NumVertices() > m.cfg.CoarsestSize {
		clusterOf, numClusters := m.match(cur, r, nil, curFixed, cap64)
		if float64(cur.NumVertices()-numClusters) < m.cfg.StallFraction*float64(cur.NumVertices()) {
			break
		}
		coarse, _ := cur.Contract(clusterOf, numClusters)
		nextFixed := make([]int8, numClusters)
		for i := range nextFixed {
			nextFixed[i] = partition.Free
		}
		for v, c := range clusterOf {
			if curFixed[v] != partition.Free {
				// match guarantees members agree; keep the fixed side.
				nextFixed[c] = curFixed[v]
			}
		}
		levels = append(levels, fixedLevel{
			level:       level{h: coarse, clusterOf: clusterOf},
			coarseFixed: nextFixed,
		})
		cur = coarse
		curFixed = nextFixed
	}
	return levels
}

// initialPartitionFixed is initialPartition with fixed clusters pinned
// before each random start.
func (m *Partitioner) initialPartitionFixed(coarsest *hypergraph.Hypergraph, fixed []int8, r *rng.RNG, st *Stats) *partition.P {
	var best *partition.P
	var bestCut int64
	for t := 0; t < m.cfg.InitialTries; t++ {
		p := partition.New(coarsest)
		for v, f := range fixed {
			if f != partition.Free {
				p.Fix(int32(v), f)
			}
		}
		p.RandomBalanced(r.Split(), m.bal)
		m.refine(p, r, st)
		if !p.Legal(m.bal) {
			continue
		}
		if best == nil || p.Cut() < bestCut {
			best, bestCut = p, p.Cut()
		}
	}
	if best == nil {
		best = partition.New(coarsest)
		for v, f := range fixed {
			if f != partition.Free {
				best.Fix(int32(v), f)
			}
		}
		best.RandomBalanced(r.Split(), m.bal)
	}
	return best
}
