package multilevel

import (
	"testing"

	"hgpart/internal/core"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func makeFixed(n int, pin map[int]int8) []int8 {
	f := make([]int8, n)
	for i := range f {
		f[i] = partition.Free
	}
	for v, s := range pin {
		f[v] = s
	}
	return f
}

func TestPartitionFixedHonorsPins(t *testing.T) {
	h := testInstance(t, 21, 700)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)

	pins := map[int]int8{0: 0, 1: 1, 2: 1, 50: 0, 99: 1}
	fixed := makeFixed(h.NumVertices(), pins)
	p, st := ml.PartitionFixed(fixed, rng.New(22))

	for v, s := range pins {
		if p.Side(int32(v)) != uint8(s) {
			t.Fatalf("fixed vertex %d on side %d, pinned to %d", v, p.Side(int32(v)), s)
		}
		if !p.IsFixed(int32(v)) {
			t.Fatalf("vertex %d not marked fixed in result", v)
		}
	}
	if !p.Legal(bal) {
		t.Fatal("fixed ML result illegal")
	}
	if p.Cut() != p.CutFromScratch() || st.Cut != p.Cut() {
		t.Fatal("fixed ML cut inconsistent")
	}
}

func TestPartitionFixedNoPinsMatchesQuality(t *testing.T) {
	// With an all-Free vector, PartitionFixed must be a competent
	// partitioner (comparable to Partition, not degenerate).
	h := testInstance(t, 23, 600)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	fixed := makeFixed(h.NumVertices(), nil)
	pf, _ := ml.PartitionFixed(fixed, rng.New(24))
	pu, _ := ml.Partition(rng.New(24))
	if float64(pf.Cut()) > 1.6*float64(pu.Cut())+20 {
		t.Fatalf("fixed path much worse without pins: %d vs %d", pf.Cut(), pu.Cut())
	}
}

func TestPartitionFixedManyTerminals(t *testing.T) {
	// Terminal-propagation-like load: 10% of vertices fixed, alternating.
	h := testInstance(t, 25, 800)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	pins := map[int]int8{}
	for v := 0; v < h.NumVertices()/10; v++ {
		pins[v*10] = int8(v % 2)
	}
	fixed := makeFixed(h.NumVertices(), pins)
	p, _ := ml.PartitionFixed(fixed, rng.New(26))
	for v, s := range pins {
		if p.Side(int32(v)) != uint8(s) {
			t.Fatalf("terminal %d escaped to side %d", v, p.Side(int32(v)))
		}
	}
	if !p.Legal(bal) {
		t.Fatal("illegal result with many terminals")
	}
}

func TestPartitionFixedAnchorsBiasSolution(t *testing.T) {
	// Pinning a block of mutually close vertices to side 0 must pull their
	// unfixed neighbors along: the anchored solution should place most of
	// the generator-adjacent block on side 0.
	h := testInstance(t, 27, 600)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	pins := map[int]int8{}
	for v := 0; v < 30; v++ { // the generator gives index locality
		pins[v] = 0
	}
	fixed := makeFixed(h.NumVertices(), pins)
	p, _ := ml.PartitionFixed(fixed, rng.New(28))
	onZero := 0
	for v := 30; v < 90; v++ {
		if p.Side(int32(v)) == 0 {
			onZero++
		}
	}
	if onZero < 30 {
		t.Fatalf("anchoring had no pull: only %d/60 neighbors on side 0", onZero)
	}
}

func TestMatchNeverMergesConflictingFixed(t *testing.T) {
	h := testInstance(t, 29, 300)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	m := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	r := rng.New(30)
	fixed := make([]int8, h.NumVertices())
	for i := range fixed {
		switch r.Intn(4) {
		case 0:
			fixed[i] = 0
		case 1:
			fixed[i] = 1
		default:
			fixed[i] = partition.Free
		}
	}
	clusterOf, k := m.match(h, r, nil, fixed, h.TotalVertexWeight())
	sideOf := make([]int8, k)
	for i := range sideOf {
		sideOf[i] = partition.Free
	}
	for v, c := range clusterOf {
		if fixed[v] == partition.Free {
			continue
		}
		if sideOf[c] == partition.Free {
			sideOf[c] = fixed[v]
		} else if sideOf[c] != fixed[v] {
			t.Fatalf("cluster %d merges vertices fixed to both sides", c)
		}
	}
}

func TestPartitionFixedPanicsOnBadLength(t *testing.T) {
	h := testInstance(t, 31, 200)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	ml.PartitionFixed(make([]int8, 3), rng.New(1))
}
