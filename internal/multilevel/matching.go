package multilevel

import (
	"sort"

	"hgpart/internal/hypergraph"
	"hgpart/internal/rng"
)

// Matching selects the coarsening scheme — the hMETIS family of schemes
// (Karypis et al., DAC'97 describes EC/HEC variants; FirstChoice arrived
// with hMetis-1.5). Coarsening choice is one of the "metaheuristic
// interactions" the paper says the field needs deeper understanding of
// ("we believe that the effects of clustering in multilevel FM ... are
// fundamental gaps in knowledge"); the ablation bench compares them.
type Matching int

const (
	// FirstChoice scores every unmatched neighbor by total connectivity
	// sum(w(e)/(|e|-1)) and merges with the best (the default, strongest).
	FirstChoice Matching = iota
	// RandomMatching merges each unmatched vertex with a uniformly random
	// unmatched neighbor (the fastest, weakest).
	RandomMatching
	// HeavyEdge merges with the unmatched neighbor sharing the single
	// heaviest (scaled) net, ignoring aggregate connectivity.
	HeavyEdge
	// HyperedgeCoarsening collapses entire small nets into clusters
	// (hyperedge coarsening, "HEC"): nets are visited in increasing size
	// and a net whose pins are all unmatched becomes one cluster; leftover
	// vertices pair by FirstChoice.
	HyperedgeCoarsening
)

func (m Matching) String() string {
	switch m {
	case FirstChoice:
		return "FirstChoice"
	case RandomMatching:
		return "Random"
	case HeavyEdge:
		return "HeavyEdge"
	case HyperedgeCoarsening:
		return "HEC"
	}
	return "Matching(?)"
}

// matchWith dispatches to the configured scheme. sides/fixed semantics are
// as in match (FirstChoice); schemes other than FirstChoice are only used
// on unrestricted coarsening paths (initial descent), so restricted inputs
// fall back to FirstChoice.
func (m *Partitioner) matchWith(h *hypergraph.Hypergraph, r *rng.RNG, sides []uint8, fixed []int8, cap64 int64) ([]int32, int) {
	if sides != nil || fixed != nil {
		return m.match(h, r, sides, fixed, cap64)
	}
	switch m.cfg.Matching {
	case RandomMatching:
		return m.matchRandom(h, r, cap64)
	case HeavyEdge:
		return m.matchHeavyEdge(h, r, cap64)
	case HyperedgeCoarsening:
		return m.matchHEC(h, r, cap64)
	default:
		return m.match(h, r, nil, nil, cap64)
	}
}

// matchRandom pairs each unmatched vertex with a random unmatched neighbor.
func (m *Partitioner) matchRandom(h *hypergraph.Hypergraph, r *rng.RNG, cap64 int64) ([]int32, int) {
	n := h.NumVertices()
	clusterOf := make([]int32, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := int32(0)
	cands := make([]int32, 0, 64)
	for _, vi := range r.Perm(n) {
		v := int32(vi)
		if clusterOf[v] != -1 {
			continue
		}
		cands = cands[:0]
		wv := h.VertexWeight(v)
		for _, e := range h.IncidentEdges(v) {
			if h.EdgeSize(e) > m.cfg.MaxNetSizeForMatch {
				continue
			}
			for _, u := range h.Pins(e) {
				if u != v && clusterOf[u] == -1 && wv+h.VertexWeight(u) <= cap64 {
					cands = append(cands, u)
				}
			}
		}
		clusterOf[v] = next
		if len(cands) > 0 {
			clusterOf[cands[r.Intn(len(cands))]] = next
		}
		next++
	}
	return clusterOf, int(next)
}

// matchHeavyEdge pairs each unmatched vertex with the neighbor sharing the
// single heaviest scaled net.
func (m *Partitioner) matchHeavyEdge(h *hypergraph.Hypergraph, r *rng.RNG, cap64 int64) ([]int32, int) {
	n := h.NumVertices()
	clusterOf := make([]int32, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := int32(0)
	for _, vi := range r.Perm(n) {
		v := int32(vi)
		if clusterOf[v] != -1 {
			continue
		}
		wv := h.VertexWeight(v)
		var best int32 = -1
		bestScore := 0.0
		for _, e := range h.IncidentEdges(v) {
			sz := h.EdgeSize(e)
			if sz < 2 || sz > m.cfg.MaxNetSizeForMatch {
				continue
			}
			score := float64(h.EdgeWeight(e)) / float64(sz-1)
			if score <= bestScore {
				continue
			}
			for _, u := range h.Pins(e) {
				if u != v && clusterOf[u] == -1 && wv+h.VertexWeight(u) <= cap64 {
					best = u
					bestScore = score
					break
				}
			}
		}
		clusterOf[v] = next
		if best != -1 {
			clusterOf[best] = next
		}
		next++
	}
	return clusterOf, int(next)
}

// matchHEC collapses whole small nets whose pins are all unmatched, then
// pairs leftovers FirstChoice-style.
func (m *Partitioner) matchHEC(h *hypergraph.Hypergraph, r *rng.RNG, cap64 int64) ([]int32, int) {
	n := h.NumVertices()
	clusterOf := make([]int32, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := int32(0)

	// Visit nets in increasing size (heaviest scaled weight first within a
	// size class), collapsing fully unmatched small nets.
	order := make([]int32, h.NumEdges())
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := h.EdgeSize(order[a]), h.EdgeSize(order[b])
		if sa != sb {
			return sa < sb
		}
		return h.EdgeWeight(order[a]) > h.EdgeWeight(order[b])
	})
	for _, e := range order {
		sz := h.EdgeSize(e)
		if sz < 2 || sz > 8 { // collapse only small nets, as HEC does
			continue
		}
		pins := h.Pins(e)
		var total int64
		ok := true
		for _, u := range pins {
			if clusterOf[u] != -1 {
				ok = false
				break
			}
			total += h.VertexWeight(u)
		}
		if !ok || total > cap64 {
			continue
		}
		for _, u := range pins {
			clusterOf[u] = next
		}
		next++
	}
	// Pair leftovers with FirstChoice restricted to unmatched vertices.
	score := make([]float64, n)
	touched := make([]int32, 0, 128)
	for _, vi := range r.Perm(n) {
		v := int32(vi)
		if clusterOf[v] != -1 {
			continue
		}
		touched = touched[:0]
		wv := h.VertexWeight(v)
		for _, e := range h.IncidentEdges(v) {
			sz := h.EdgeSize(e)
			if sz < 2 || sz > m.cfg.MaxNetSizeForMatch {
				continue
			}
			contrib := float64(h.EdgeWeight(e)) / float64(sz-1)
			for _, u := range h.Pins(e) {
				if u == v || clusterOf[u] != -1 || wv+h.VertexWeight(u) > cap64 {
					continue
				}
				if score[u] == 0 {
					touched = append(touched, u)
				}
				score[u] += contrib
			}
		}
		var best int32 = -1
		bestScore := 0.0
		for _, u := range touched {
			if score[u] > bestScore {
				bestScore = score[u]
				best = u
			}
			score[u] = 0
		}
		clusterOf[v] = next
		if best != -1 {
			clusterOf[best] = next
		}
		next++
	}
	return clusterOf, int(next)
}
