package multilevel

import (
	"testing"
	"testing/quick"

	"hgpart/internal/core"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func testInstance(tb testing.TB, seed uint64, cells int) *hypergraph.Hypergraph {
	tb.Helper()
	h, err := gen.Generate(gen.Spec{
		Name:          "ml-test",
		Cells:         cells,
		Nets:          cells + cells/10,
		AvgNetSize:    3.5,
		NumMacros:     4,
		MaxMacroFrac:  0.03,
		NumGlobalNets: 1,
		GlobalNetFrac: 0.01,
		Locality:      2,
		Seed:          seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

func TestPartitionLegalAndConsistent(t *testing.T) {
	h := testInstance(t, 1, 800)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	p, st := ml.Partition(rng.New(2))
	if !p.Legal(bal) {
		t.Fatal("ML produced illegal partition")
	}
	if p.Cut() != p.CutFromScratch() || st.Cut != p.Cut() {
		t.Fatalf("cut inconsistent: stats=%d p=%d scratch=%d", st.Cut, p.Cut(), p.CutFromScratch())
	}
	if st.Levels < 2 {
		t.Fatalf("no coarsening happened on an 800-cell instance: levels=%d", st.Levels)
	}
	if st.CoarsestVertices > 800 {
		t.Fatalf("coarsest larger than input: %d", st.CoarsestVertices)
	}
}

func TestMLBeatsFlatOnAverage(t *testing.T) {
	h := testInstance(t, 3, 1200)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	r := rng.New(4)

	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	eng := core.NewEngine(h, core.StrongConfig(false), bal, r.Split())

	const runs = 6
	var mlSum, flatSum int64
	for i := 0; i < runs; i++ {
		p, st := ml.Partition(r.Split())
		_ = p
		mlSum += st.Cut
		fp := partition.New(h)
		fp.RandomBalanced(r.Split(), bal)
		flatSum += eng.Run(fp).Cut
	}
	if mlSum >= flatSum {
		t.Fatalf("ML avg cut (%d) not better than flat (%d)", mlSum/runs, flatSum/runs)
	}
}

func TestVCycleNeverWorsens(t *testing.T) {
	h := testInstance(t, 5, 700)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	r := rng.New(6)
	p, _ := ml.Partition(r)
	before := p.Cut()
	st := ml.VCycle(p, r)
	if st.Cut > before {
		t.Fatalf("V-cycle worsened cut: %d -> %d", before, st.Cut)
	}
	if p.Cut() != p.CutFromScratch() || !p.Legal(bal) {
		t.Fatal("V-cycle broke partition invariants")
	}
}

func TestVCycleRepeatedStable(t *testing.T) {
	h := testInstance(t, 7, 500)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	r := rng.New(8)
	p, _ := ml.Partition(r)
	prev := p.Cut()
	for i := 0; i < 3; i++ {
		st := ml.VCycle(p, r)
		if st.Cut > prev {
			t.Fatalf("V-cycle %d worsened: %d -> %d", i, prev, st.Cut)
		}
		prev = st.Cut
	}
}

func TestMatchProducesPairsAndSingletons(t *testing.T) {
	h := testInstance(t, 9, 300)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	m := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	clusterOf, k := m.match(h, rng.New(1), nil, nil, h.TotalVertexWeight())
	if k <= 0 || k > h.NumVertices() {
		t.Fatalf("cluster count %d", k)
	}
	sizes := SortedClusterSizes(clusterOf, k)
	if sizes[0] < 1 || sizes[len(sizes)-1] > 2 {
		t.Fatalf("matching produced cluster sizes outside {1,2}: min=%d max=%d",
			sizes[0], sizes[len(sizes)-1])
	}
	// Matching must actually reduce the graph meaningfully on a structured
	// instance.
	if k > h.NumVertices()*3/4 {
		t.Fatalf("matching barely reduced: %d of %d", k, h.NumVertices())
	}
}

func TestMatchRespectsClusterCap(t *testing.T) {
	h := testInstance(t, 10, 300)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	m := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	cap64 := int64(5)
	clusterOf, k := m.match(h, rng.New(2), nil, nil, cap64)
	weight := make([]int64, k)
	count := make([]int, k)
	for v, c := range clusterOf {
		weight[c] += h.VertexWeight(int32(v))
		count[c]++
	}
	for c := range weight {
		if count[c] == 2 && weight[c] > cap64 {
			t.Fatalf("pair cluster %d weight %d exceeds cap %d", c, weight[c], cap64)
		}
	}
}

func TestRestrictedMatchingKeepsSides(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		h := testInstance(t, seed%100, 200)
		bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
		m := New(h, Config{Refine: core.StrongConfig(false)}, bal)
		r := rng.New(seed)
		sides := make([]uint8, h.NumVertices())
		for i := range sides {
			sides[i] = uint8(r.Intn(2))
		}
		clusterOf, k := m.match(h, r, sides, nil, h.TotalVertexWeight())
		sideOf := make([]int8, k)
		for i := range sideOf {
			sideOf[i] = -1
		}
		for v, c := range clusterOf {
			if sideOf[c] == -1 {
				sideOf[c] = int8(sides[v])
			} else if sideOf[c] != int8(sides[v]) {
				return false // cluster spans the cut
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.CoarsestSize != 150 || c.InitialTries != 10 || c.MaxNetSizeForMatch != 64 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{CoarsestSize: 99}.withDefaults()
	if c2.CoarsestSize != 99 {
		t.Fatal("explicit CoarsestSize overridden")
	}
}

func TestDeterminism(t *testing.T) {
	h := testInstance(t, 11, 600)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	_, a := ml.Partition(rng.New(42))
	_, b := ml.Partition(rng.New(42))
	if a.Cut != b.Cut || a.Work != b.Work {
		t.Fatalf("ML not deterministic: %+v vs %+v", a, b)
	}
}

func TestTinyInstanceNoCoarsening(t *testing.T) {
	// Instances already below CoarsestSize must still partition correctly.
	b := hypergraph.NewBuilder(8, 8)
	b.AddVertices(8, 1)
	for i := int32(0); i < 8; i++ {
		b.AddEdge(1, i, (i+1)%8)
	}
	h := b.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.3)
	ml := New(h, Config{Refine: core.StrongConfig(false)}, bal)
	p, st := ml.Partition(rng.New(1))
	if !p.Legal(bal) || p.Cut() != p.CutFromScratch() {
		t.Fatal("tiny instance mishandled")
	}
	if st.Levels != 1 {
		t.Fatalf("unexpected coarsening of tiny instance: %d levels", st.Levels)
	}
	// A ring of 8 bisects with cut 2.
	if p.Cut() != 2 {
		t.Fatalf("ring cut %d, want 2", p.Cut())
	}
}

func TestCLIPRefinementWorks(t *testing.T) {
	h := testInstance(t, 13, 600)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	ml := New(h, Config{Refine: core.StrongConfig(true)}, bal)
	p, st := ml.Partition(rng.New(3))
	if !p.Legal(bal) || st.Cut != p.CutFromScratch() {
		t.Fatal("ML CLIP invalid result")
	}
}
