// Package multilevel implements a multilevel FM hypergraph bisection in the
// style of hMETIS (Karypis, Aggarwal, Kumar, Shekhar, DAC'97) and MLPart:
// FirstChoice-style coarsening by connectivity, initial partitioning at the
// coarsest level, FM refinement during uncoarsening, and optional V-cycles.
//
// In the paper's evaluation this engine plays two roles: the "ML LIFO" /
// "ML CLIP" rows of Table 1 (a strong optimization engine wrapped around the
// flat testbenches, compressing — but not eliminating — the dynamic range of
// the implicit implementation decisions), and the hMetis-1.5 stand-in for
// the multistart evaluations of Tables 4 and 5.
package multilevel

import (
	"sort"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Config parameterizes the multilevel partitioner.
type Config struct {
	// Refine configures the FM engine used for refinement at every level
	// (and for initial-partition polishing at the coarsest level). This is
	// where "ML LIFO" vs "ML CLIP" and the Table 1 knobs plug in.
	Refine core.Config

	// CoarsestSize stops coarsening once the level has at most this many
	// vertices. Default 150.
	CoarsestSize int

	// ClusterCapFrac caps cluster weight at this fraction of total vertex
	// weight during matching. Default 0.04. The cap is additionally limited
	// to the balance slack when the slack is not degenerate, so coarsening
	// does not manufacture immovable vertices.
	ClusterCapFrac float64

	// MaxNetSizeForMatch: nets larger than this are ignored when scoring
	// matches (huge clock-like nets carry no clustering signal and make
	// scoring quadratic). Default 64.
	MaxNetSizeForMatch int

	// InitialTries is the number of random initial partitions attempted at
	// the coarsest level; the best refined one is kept. Default 10.
	InitialTries int

	// StallFraction aborts coarsening when a level shrinks by less than
	// this factor (e.g. 0.05 means "stop unless at least 5% fewer
	// vertices"). Default 0.05.
	StallFraction float64

	// Matching selects the coarsening scheme (FirstChoice default; see
	// Matching for the hMETIS-family alternatives). Restricted coarsening
	// (V-cycles, fixed vertices) always uses FirstChoice.
	Matching Matching
}

// withDefaults fills zero fields with defaults.
func (c Config) withDefaults() Config {
	if c.CoarsestSize <= 0 {
		c.CoarsestSize = 150
	}
	if c.ClusterCapFrac <= 0 {
		c.ClusterCapFrac = 0.04
	}
	if c.MaxNetSizeForMatch <= 0 {
		c.MaxNetSizeForMatch = 64
	}
	if c.InitialTries <= 0 {
		c.InitialTries = 10
	}
	if c.StallFraction <= 0 {
		c.StallFraction = 0.05
	}
	return c
}

// Stats reports the outcome of one multilevel run.
type Stats struct {
	// Cut is the final weighted cut.
	Cut int64
	// Levels is the depth of the coarsening hierarchy (1 = no coarsening).
	Levels int
	// CoarsestVertices is the vertex count at the coarsest level.
	CoarsestVertices int
	// Work accumulates FM work units over all refinement passes.
	Work int64
	// Moves accumulates FM moves over all refinement passes.
	Moves int64
}

// Partitioner is a reusable multilevel bisector for one hypergraph and
// balance constraint. It owns a scratch FM engine rebound across the levels
// of every start instead of allocated per level, so a Partitioner is not
// safe for concurrent use — the evaluation harness constructs one per
// worker (its factory contract).
type Partitioner struct {
	h   *hypergraph.Hypergraph
	cfg Config
	bal partition.Balance

	scratch *core.Engine
}

// New builds a Partitioner. cfg zero-fields take defaults.
func New(h *hypergraph.Hypergraph, cfg Config, bal partition.Balance) *Partitioner {
	return &Partitioner{h: h, cfg: cfg.withDefaults(), bal: bal}
}

// level is one rung of the coarsening hierarchy.
type level struct {
	h         *hypergraph.Hypergraph
	clusterOf []int32 // maps this level's vertices to the next-coarser level
}

// Partition runs one full multilevel start seeded by r and returns the
// resulting fine-level partition.
func (m *Partitioner) Partition(r *rng.RNG) (*partition.P, Stats) {
	levels := m.coarsen(m.h, r, nil)
	st := Stats{Levels: len(levels) + 1}

	coarsest := m.h
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].h
	}
	st.CoarsestVertices = coarsest.NumVertices()

	p := m.initialPartition(coarsest, r, &st)
	p = m.uncoarsen(p, levels, r, &st)
	st.Cut = p.Cut()
	return p, st
}

// VCycle improves an existing fine-level partition by restricted coarsening
// (clusters never span the cut) followed by refinement during uncoarsening —
// the technique hMetis-1.5 applies to the best of several starts.
func (m *Partitioner) VCycle(p *partition.P, r *rng.RNG) Stats {
	st := Stats{}
	sides := p.Sides()
	levels := m.coarsen(m.h, r, sides)
	st.Levels = len(levels) + 1

	// Project the current partition down the restricted hierarchy. Because
	// matching never crosses the cut, every cluster has a well-defined side.
	cur := sides
	for _, lv := range levels {
		coarseSides := make([]uint8, lv.h.NumVertices())
		for v, c := range lv.clusterOf {
			coarseSides[c] = cur[v]
		}
		cur = coarseSides
	}
	coarsest := m.h
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].h
	}
	st.CoarsestVertices = coarsest.NumVertices()

	cp := partition.New(coarsest)
	if err := cp.Assign(cur); err != nil {
		panic(err)
	}
	m.refine(cp, r, &st)
	res := m.uncoarsen(cp, levels, r, &st)

	// Keep the V-cycle result only if it does not worsen the cut.
	if res.Cut() <= p.Cut() {
		if err := p.Assign(res.Sides()); err != nil {
			panic(err)
		}
	}
	st.Cut = p.Cut()
	return st
}

// coarsen builds the hierarchy. When restrictSides is non-nil, matching only
// pairs vertices on the same side (V-cycle mode). The returned slice is
// ordered fine-to-coarse; levels[i].clusterOf maps level-i vertices into
// level i+1 (level 0 input is h itself).
func (m *Partitioner) coarsen(h *hypergraph.Hypergraph, r *rng.RNG, restrictSides []uint8) []level {
	var levels []level
	cur := h
	sides := restrictSides
	cap64 := int64(m.cfg.ClusterCapFrac * float64(h.TotalVertexWeight()))
	if slack := m.bal.Slack(); slack > h.TotalVertexWeight()/200 && slack < cap64 {
		cap64 = slack
	}
	if cap64 < 1 {
		cap64 = 1
	}

	for cur.NumVertices() > m.cfg.CoarsestSize {
		clusterOf, numClusters := m.matchWith(cur, r, sides, nil, cap64)
		if float64(cur.NumVertices()-numClusters) < m.cfg.StallFraction*float64(cur.NumVertices()) {
			break // coarsening stalled
		}
		coarse, _ := cur.Contract(clusterOf, numClusters)
		levels = append(levels, level{h: coarse, clusterOf: clusterOf})
		if sides != nil {
			next := make([]uint8, numClusters)
			for v, c := range clusterOf {
				next[c] = sides[v]
			}
			sides = next
		}
		cur = coarse
	}
	return levels
}

// match performs one FirstChoice-style pass: each unmatched vertex, visited
// in random order, merges with the unmatched neighbor sharing the highest
// connectivity score sum(w(e)/(|e|-1)) over common nets, subject to the
// cluster weight cap, (in V-cycle mode) side agreement, and (with fixed
// vertices) fixed-side compatibility — two vertices fixed to different
// sides never merge.
func (m *Partitioner) match(h *hypergraph.Hypergraph, r *rng.RNG, sides []uint8, fixed []int8, cap64 int64) ([]int32, int) {
	n := h.NumVertices()
	clusterOf := make([]int32, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	score := make([]float64, n)
	touched := make([]int32, 0, 128)
	next := int32(0)

	order := r.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if clusterOf[v] != -1 {
			continue
		}
		touched = touched[:0]
		wv := h.VertexWeight(v)
		for _, e := range h.IncidentEdges(v) {
			sz := h.EdgeSize(e)
			if sz < 2 || sz > m.cfg.MaxNetSizeForMatch {
				continue
			}
			contrib := float64(h.EdgeWeight(e)) / float64(sz-1)
			for _, u := range h.Pins(e) {
				if u == v || clusterOf[u] != -1 {
					continue
				}
				if sides != nil && sides[u] != sides[v] {
					continue
				}
				if fixed != nil && fixed[u] != partition.Free && fixed[v] != partition.Free && fixed[u] != fixed[v] {
					continue
				}
				if wv+h.VertexWeight(u) > cap64 {
					continue
				}
				if score[u] == 0 {
					touched = append(touched, u)
				}
				score[u] += contrib
			}
		}
		var best int32 = -1
		bestScore := 0.0
		for _, u := range touched {
			if score[u] > bestScore {
				bestScore = score[u]
				best = u
			}
			score[u] = 0
		}
		clusterOf[v] = next
		if best != -1 {
			clusterOf[best] = next
		}
		next++
	}
	return clusterOf, int(next)
}

// initialPartition generates InitialTries random balanced solutions at the
// coarsest level, refines each, and keeps the best legal one.
func (m *Partitioner) initialPartition(coarsest *hypergraph.Hypergraph, r *rng.RNG, st *Stats) *partition.P {
	eng := m.engineFor(coarsest, r.Split())
	var best *partition.P
	var bestCut int64
	for t := 0; t < m.cfg.InitialTries; t++ {
		p := partition.New(coarsest)
		p.RandomBalanced(r.Split(), m.bal)
		res := eng.Run(p)
		st.Work += res.Work
		st.Moves += res.Moves
		if !p.Legal(m.bal) {
			continue
		}
		if best == nil || res.Cut < bestCut {
			best, bestCut = p, res.Cut
		}
	}
	if best == nil {
		// Every try was infeasible (pathological weights); fall back to the
		// last random solution and let refinement legalize what it can.
		best = partition.New(coarsest)
		best.RandomBalanced(r.Split(), m.bal)
	}
	return best
}

// uncoarsen projects p up through the hierarchy, refining at each level.
func (m *Partitioner) uncoarsen(p *partition.P, levels []level, r *rng.RNG, st *Stats) *partition.P {
	for i := len(levels) - 1; i >= 0; i-- {
		var fine *hypergraph.Hypergraph
		if i == 0 {
			fine = m.h
		} else {
			fine = levels[i-1].h
		}
		coarseSides := p.Sides()
		fineSides := make([]uint8, fine.NumVertices())
		for v := range fineSides {
			fineSides[v] = coarseSides[levels[i].clusterOf[v]]
		}
		p = partition.New(fine)
		if err := p.Assign(fineSides); err != nil {
			panic(err)
		}
		m.refine(p, r, st)
	}
	if len(levels) == 0 {
		m.refine(p, r, st)
	}
	return p
}

// refine runs the configured FM engine on p.
func (m *Partitioner) refine(p *partition.P, r *rng.RNG, st *Stats) {
	eng := m.engineFor(p.H, r.Split())
	res := eng.Run(p)
	st.Work += res.Work
	st.Moves += res.Moves
}

// engineFor returns the scratch engine rebound to h with a fresh random
// stream. The r.Split() at each call site preserves the seed
// implementation's draw sequence exactly (it constructed an engine per
// level with a split stream), and Engine.Rebind guarantees a rebound engine
// is indistinguishable from a fresh one — so reusing the arenas changes no
// observable behavior.
func (m *Partitioner) engineFor(h *hypergraph.Hypergraph, r *rng.RNG) *core.Engine {
	if m.scratch == nil {
		m.scratch = core.NewEngine(h, m.cfg.Refine, m.bal, r)
	} else {
		m.scratch.Rebind(h, m.bal, r)
	}
	return m.scratch
}

// SortedClusterSizes returns the multiset of cluster sizes of a matching —
// exposed for tests that verify the matcher produces only singletons and
// pairs.
func SortedClusterSizes(clusterOf []int32, numClusters int) []int {
	counts := make([]int, numClusters)
	for _, c := range clusterOf {
		counts[c]++
	}
	sort.Ints(counts)
	return counts
}
