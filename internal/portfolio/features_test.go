package portfolio

import (
	"bytes"
	"encoding/json"
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
)

// buildTiny constructs a hand-checkable instance: 8 vertices (one 10x macro),
// 4 nets of sizes 2, 2, 3, 5.
func buildTiny(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder(8, 4)
	b.AddVertices(7, 1)
	b.AddVertex(10)
	b.AddEdge(1, 0, 1)
	b.AddEdge(1, 2, 3)
	b.AddEdge(1, 4, 5, 6)
	b.AddEdge(1, 0, 2, 4, 6, 7)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestExtractTiny(t *testing.T) {
	f := Extract(buildTiny(t))
	if f.Vertices != 8 || f.Nets != 4 || f.Pins != 12 {
		t.Fatalf("dimensions = %d/%d/%d, want 8/4/12", f.Vertices, f.Nets, f.Pins)
	}
	if f.PinVertexRatio != 1.5 {
		t.Errorf("PinVertexRatio = %v, want 1.5", f.PinVertexRatio)
	}
	if f.AvgNetSize != 3 {
		t.Errorf("AvgNetSize = %v, want 3", f.AvgNetSize)
	}
	// Sorted sizes: 2 2 3 5. Nearest-rank: q50 -> idx 1 (=2), q90 -> idx 2
	// (=3), q99 -> idx 2 (=3), max 5.
	if f.NetSizeQ50 != 2 || f.NetSizeQ90 != 3 || f.NetSizeQ99 != 3 || f.MaxNetSize != 5 {
		t.Errorf("quantiles = %d/%d/%d max %d, want 2/3/3 max 5",
			f.NetSizeQ50, f.NetSizeQ90, f.NetSizeQ99, f.MaxNetSize)
	}
	// Every net spans more than 8/100 = 0 pins.
	if f.LargeNets != 4 {
		t.Errorf("LargeNets = %d, want 4", f.LargeNets)
	}
	// Total weight 17, mean 2.125; skew 10/2.125; one vertex above 4x mean.
	if f.MacroVertices != 1 {
		t.Errorf("MacroVertices = %d, want 1", f.MacroVertices)
	}
	if f.UnitArea {
		t.Error("UnitArea = true for a macro-bearing instance")
	}
	if f.WeightSkew < 4.7 || f.WeightSkew > 4.71 {
		t.Errorf("WeightSkew = %v, want ~4.706", f.WeightSkew)
	}
}

func TestExtractDeterministic(t *testing.T) {
	spec := gen.Scaled(gen.MustIBMProfile(1), 0.05)
	h, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(Extract(h))
	b, _ := json.Marshal(Extract(h))
	if !bytes.Equal(a, b) {
		t.Fatalf("Extract is not byte-deterministic:\n%s\n%s", a, b)
	}
}

func TestBucketKey(t *testing.T) {
	cases := []struct {
		f    Features
		want string
	}{
		{Features{Vertices: 500, AvgNetSize: 2.8, WeightSkew: 1.0}, "s0.n0.k0.g0"},
		{Features{Vertices: 5_000, AvgNetSize: 3.6, WeightSkew: 3, LargeNets: 2}, "s1.n1.k1.g1"},
		{Features{Vertices: 50_000, AvgNetSize: 4.5, WeightSkew: 20}, "s2.n2.k2.g0"},
		{Features{Vertices: 500_000, AvgNetSize: 3.4, WeightSkew: 1.5}, "s3.n1.k1.g0"},
	}
	for _, c := range cases {
		if got := BucketOf(c.f).Key(); got != c.want {
			t.Errorf("BucketOf(%+v).Key() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestUnitAreaProfileFeatures(t *testing.T) {
	spec := gen.Scaled(mustMCNC(t, "struct"), 0.5)
	h, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := Extract(h)
	if !f.UnitArea {
		t.Error("MCNC profile instance should be unit-area")
	}
	if f.WeightSkew != 1 {
		t.Errorf("WeightSkew = %v, want 1 for unit area", f.WeightSkew)
	}
	if f.MacroVertices != 0 {
		t.Errorf("MacroVertices = %d, want 0", f.MacroVertices)
	}
	if b := BucketOf(f); b.SkewClass != 0 {
		t.Errorf("SkewClass = %d, want 0", b.SkewClass)
	}
}

func mustMCNC(t *testing.T, name string) gen.Spec {
	t.Helper()
	s, err := gen.MCNCProfile(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
