package portfolio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpStore(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "portfolio.store")
}

func TestStoreRoundTrip(t *testing.T) {
	path := tmpStore(t)
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	traces := []ArmTrace{
		{Arm: "clip-guarded", Starts: 1, Cut: 40, Work: 100, OK: true, Won: true},
		{Arm: "flat-lifo", Starts: 1, Cut: 55, Work: 90, OK: true},
		{Arm: "ml-strong", Starts: 1, OK: false}, // infeasible arm: not recorded
	}
	st.RecordRace("s0.n0.k0.g0", 1, traces)
	st.RecordRace("s0.n0.k0.g0", 2, traces)
	if arm, ok := st.Predict("s0.n0.k0.g0"); !ok || arm != "clip-guarded" {
		t.Fatalf("Predict = %q/%v, want clip-guarded/true", arm, ok)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("store error: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: tallies must replay from the framed log.
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Quarantined() != 0 {
		t.Fatalf("Quarantined = %d on a clean store", st2.Quarantined())
	}
	tal := st2.Tallies()["s0.n0.k0.g0"]
	if tal == nil {
		t.Fatal("bucket missing after reopen")
	}
	if got := tal["clip-guarded"]; got.Races != 2 || got.Wins != 2 || got.BestCut != 40 || got.Work != 200 {
		t.Fatalf("clip-guarded tally = %+v", got)
	}
	if got := tal["flat-lifo"]; got.Races != 2 || got.Wins != 0 {
		t.Fatalf("flat-lifo tally = %+v", got)
	}
	if _, found := tal["ml-strong"]; found {
		t.Fatal("infeasible arm must not be recorded")
	}
	if arm, ok := st2.Predict("s0.n0.k0.g0"); !ok || arm != "clip-guarded" {
		t.Fatalf("reopened Predict = %q/%v, want clip-guarded/true", arm, ok)
	}
	if _, ok := st2.Predict("s9.n9.k9.g9"); ok {
		t.Fatal("cold bucket must not predict")
	}
}

func TestStoreQuarantinesDamage(t *testing.T) {
	path := tmpStore(t)
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	st.RecordRace("b", 1, []ArmTrace{{Arm: "a1", Cut: 10, Work: 5, OK: true, Won: true}})
	st.Close()

	// Corrupt: a bit-flipped frame, an unframed line, and a torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	good := lines[1]
	flipped := strings.Replace(good, `"cut":10`, `"cut":99`, 1)
	damaged := string(raw) + flipped + "not a frame\n" + good[:len(good)/2]
	if err := os.WriteFile(path, []byte(damaged), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Quarantined() != 3 {
		t.Fatalf("Quarantined = %d, want 3 (crc mismatch, unframed, torn tail)", st2.Quarantined())
	}
	if got := st2.Tallies()["b"]["a1"]; got.Races != 1 || got.BestCut != 10 {
		t.Fatalf("intact record lost: %+v", got)
	}

	// Appending after a torn tail must repair the line boundary.
	st2.RecordRace("b", 2, []ArmTrace{{Arm: "a1", Cut: 8, Work: 5, OK: true, Won: true}})
	if err := st2.Err(); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := st3.Tallies()["b"]["a1"]; got.Races != 2 || got.BestCut != 8 {
		t.Fatalf("post-repair tally = %+v", got)
	}
}

func TestStoreBadHeaderRecreated(t *testing.T) {
	path := tmpStore(t)
	if err := os.WriteFile(path, []byte("garbage, not a store\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path)
	if err != nil {
		t.Fatalf("advisory store must recreate on bad header, got %v", err)
	}
	defer st.Close()
	if len(st.Tallies()) != 0 {
		t.Fatal("recreated store should be empty")
	}
	st.RecordRace("b", 1, []ArmTrace{{Arm: "a1", Cut: 3, Work: 1, OK: true, Won: true}})
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Tallies()["b"]["a1"]; got.Wins != 1 {
		t.Fatalf("tally after recreate+reopen = %+v", got)
	}
}

func TestStorePredictTieBreaks(t *testing.T) {
	path := tmpStore(t)
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// zeta and alpha tie on wins; zeta has the lower best cut and must win
	// despite sorting last.
	st.RecordRace("b", 1, []ArmTrace{{Arm: "zeta", Cut: 5, Work: 1, OK: true, Won: true}})
	st.RecordRace("b", 2, []ArmTrace{{Arm: "alpha", Cut: 9, Work: 1, OK: true, Won: true}})
	if arm, ok := st.Predict("b"); !ok || arm != "zeta" {
		t.Fatalf("Predict = %q/%v, want zeta (lower best cut)", arm, ok)
	}
	// Full tie (wins and best cut): lexicographically smaller name.
	st.RecordRace("c", 1, []ArmTrace{{Arm: "zeta", Cut: 7, Work: 1, OK: true, Won: true}})
	st.RecordRace("c", 2, []ArmTrace{{Arm: "alpha", Cut: 7, Work: 1, OK: true, Won: true}})
	if arm, ok := st.Predict("c"); !ok || arm != "alpha" {
		t.Fatalf("Predict = %q/%v, want alpha (name tie-break)", arm, ok)
	}
}
