package portfolio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hgpart/internal/chaos"
)

// Store is the persistent per-bucket arm-outcome store: a CRC-framed,
// journal-v2-style append log on the checkpoint directory (DESIGN.md §15).
// Every race appends one framed record per arm; on open, the log is replayed
// into per-(bucket, arm) tallies that warm-start the scheduler's prediction
// across requests and — because the file lives on the shared checkpoint dir
// and appends are single O_APPEND writes — across cluster failover, where
// coordinator and workers observe the same file.
//
// Determinism contract: the store is strictly ADVISORY. Predictions feed
// logs and Prometheus metrics (races run, store hits) only; the race itself
// always runs in full and alone decides the winner. A cold store and a warm
// store therefore produce byte-identical reports, which is what lets
// portfolio mode coexist with the result cache and the chaos harness's
// byte-identity contracts. Consequently store corruption is never fatal:
// a damaged header recreates the store, damaged records are counted and
// skipped.
//
// File layout mirrors the eval checkpoint journal v2 (whose framing helpers
// are deliberately unexported — this is an independent copy, same format):
//
//	{"kind":"header","v":1,"store":"portfolio"}
//	@91:4c1f22aa:{"kind":"race","bucket":"s0.n1.k0.g1","arm":"clip-guarded","won":true,"cut":41,"work":193412,"seed":1}
//
// All I/O goes through a chaos.FS so cmd/hgchaos can drive torn writes and
// kill/restart cycles through the same code paths production uses.
type Store struct {
	mu   sync.Mutex
	fsys chaos.FS      // immutable after OpenStoreFS
	f    chaos.File    //hglint:guardedby mu
	w    *bufio.Writer //hglint:guardedby mu
	// needNL means the file ends mid-line (torn tail); repair before appending.
	needNL      bool                         //hglint:guardedby mu
	tallies     map[string]map[string]*Tally //hglint:guardedby mu
	quarantined int                          //hglint:guardedby mu
	err         error                        //hglint:guardedby mu
}

// Tally aggregates one arm's recorded outcomes within one bucket.
type Tally struct {
	// Races and Wins count recorded races and wins for the arm.
	Races, Wins int64
	// BestCut is the best cut the arm ever recorded in the bucket.
	BestCut int64
	// Work is the cumulative recorded work.
	Work int64
}

const storeVersion = 1

type storeHeader struct {
	Kind  string `json:"kind"`
	V     int    `json:"v"`
	Store string `json:"store"`
}

type raceRecord struct {
	Kind   string `json:"kind"`
	Bucket string `json:"bucket"`
	Arm    string `json:"arm"`
	Won    bool   `json:"won,omitempty"`
	Cut    int64  `json:"cut"`
	Work   int64  `json:"work"`
	Seed   uint64 `json:"seed"`
}

var storeCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// storeFrame wraps a marshaled record payload in the length+CRC frame,
// newline included — the same "@<len>:<crc32c>:<json>\n" frame as journal v2.
func storeFrame(payload []byte) []byte {
	crc := crc32.Checksum(payload, storeCastagnoli)
	out := make([]byte, 0, len(payload)+16)
	out = append(out, fmt.Sprintf("@%d:%08x:", len(payload), crc)...)
	out = append(out, payload...)
	return append(out, '\n')
}

// storeParseFrame validates a frame and returns its payload.
func storeParseFrame(line []byte) ([]byte, error) {
	if len(line) == 0 || line[0] != '@' {
		return nil, errors.New("missing frame marker")
	}
	rest := line[1:]
	i := bytes.IndexByte(rest, ':')
	if i < 1 {
		return nil, errors.New("missing length field")
	}
	var n int
	for _, ch := range rest[:i] {
		if ch < '0' || ch > '9' {
			return nil, errors.New("malformed length field")
		}
		n = n*10 + int(ch-'0')
		if n > 1<<30 {
			return nil, errors.New("implausible length field")
		}
	}
	rest = rest[i+1:]
	j := bytes.IndexByte(rest, ':')
	if j != 8 {
		return nil, errors.New("missing crc field")
	}
	var want uint32
	for _, ch := range rest[:8] {
		var d uint32
		switch {
		case ch >= '0' && ch <= '9':
			d = uint32(ch - '0')
		case ch >= 'a' && ch <= 'f':
			d = uint32(ch-'a') + 10
		default:
			return nil, errors.New("malformed crc field")
		}
		want = want<<4 | d
	}
	payload := rest[9:]
	if len(payload) != n {
		return nil, fmt.Errorf("length mismatch: frame says %d bytes, line has %d", n, len(payload))
	}
	if got := crc32.Checksum(payload, storeCastagnoli); got != want {
		return nil, fmt.Errorf("crc mismatch: frame says %08x, payload is %08x", want, got)
	}
	return payload, nil
}

// OpenStore opens (or creates) the outcome store at path on the real
// filesystem. See OpenStoreFS.
func OpenStore(path string) (*Store, error) {
	return OpenStoreFS(chaos.OS(), path)
}

// OpenStoreFS is OpenStore over an explicit filesystem. An existing store is
// replayed into tallies (damaged records counted and skipped); a missing
// file, an empty file or an invalid header recreates the store fresh — the
// store is advisory, so losing it degrades to a cold scheduler, never to an
// error the request path has to handle.
func OpenStoreFS(fsys chaos.FS, path string) (*Store, error) {
	st := &Store{fsys: fsys, tallies: make(map[string]map[string]*Tally)}
	if err := st.load(path); err != nil {
		// Unreadable or headerless store: recreate. A create failure is
		// fatal — the directory itself is broken.
		hdr := storeHeader{Kind: "header", V: storeVersion, Store: "portfolio"}
		if cerr := createStore(fsys, path, hdr); cerr != nil {
			return nil, cerr
		}
		st.mu.Lock()
		st.tallies = make(map[string]map[string]*Tally)
		st.quarantined = 0
		st.needNL = false
		st.mu.Unlock()
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("portfolio: open store: %w", err)
	}
	st.mu.Lock()
	st.f = f
	st.w = bufio.NewWriter(f)
	st.mu.Unlock()
	return st, nil
}

// createStore writes a store containing only the header to a temporary
// sibling file, fsyncs it and atomically renames it over path (then fsyncs
// the directory), so a crash can never leave a torn header.
func createStore(fsys chaos.FS, path string, hdr storeHeader) error {
	b, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("portfolio: encode store header: %w", err)
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("portfolio: create store: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("portfolio: write store header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("portfolio: sync store header: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("portfolio: close store header: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("portfolio: install store: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// load replays an existing store into tallies. A missing file or a file
// without a valid header returns an error so OpenStoreFS recreates it.
func (s *Store) load(path string) error {
	// load runs during construction, before the Store is shared; holding the
	// lock keeps the guarded-field discipline uniform at zero contention.
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.fsys.Open(path)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("portfolio: read store: %w", err)
	}
	if len(data) == 0 {
		return errors.New("portfolio: empty store")
	}
	torn := data[len(data)-1] != '\n'
	s.needNL = torn
	lines := bytes.Split(data, []byte("\n"))
	if !torn {
		lines = lines[:len(lines)-1]
	}
	var hdr storeHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Kind != "header" || hdr.Store != "portfolio" {
		return fmt.Errorf("portfolio: store %s has no valid header line", path)
	}
	for i, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if torn && i == len(lines)-2 {
			s.quarantined++ // torn final record (crash mid-write)
			continue
		}
		payload, err := storeParseFrame(line)
		if err != nil {
			s.quarantined++
			continue
		}
		var rec raceRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Kind != "race" || rec.Bucket == "" || rec.Arm == "" {
			s.quarantined++
			continue
		}
		s.applyLocked(rec)
	}
	return nil
}

// applyLocked folds one record into the tallies. Callers hold s.mu.
//
//hglint:holds s.mu
func (s *Store) applyLocked(rec raceRecord) {
	arms := s.tallies[rec.Bucket]
	if arms == nil {
		arms = make(map[string]*Tally)
		s.tallies[rec.Bucket] = arms
	}
	t := arms[rec.Arm]
	if t == nil {
		t = &Tally{}
		arms[rec.Arm] = t
	}
	t.Races++
	if rec.Won {
		t.Wins++
	}
	if t.Races == 1 || rec.Cut < t.BestCut {
		t.BestCut = rec.Cut
	}
	t.Work += rec.Work
}

// RecordRace appends one framed record per arm trace and folds them into the
// in-memory tallies. The whole race is written as one buffered batch with a
// single flush+fsync, and each record line is a single Write once flushed —
// the O_APPEND discipline that lets several hgserved processes share one
// store file on the cluster's checkpoint dir without interleaving torn
// lines. Errors are retained (see Err) rather than propagated: the store is
// advisory and must never fail a request.
func (s *Store) RecordRace(bucket string, seed uint64, traces []ArmTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		if s.err == nil {
			s.err = errors.New("portfolio: store is closed")
		}
		return
	}
	for _, tr := range traces {
		if !tr.OK {
			continue
		}
		rec := raceRecord{Kind: "race", Bucket: bucket, Arm: tr.Arm,
			Won: tr.Won, Cut: tr.Cut, Work: tr.Work, Seed: seed}
		b, err := json.Marshal(rec)
		if err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("portfolio: encode store record: %w", err)
			}
			return
		}
		if s.needNL {
			if err := s.w.WriteByte('\n'); err != nil {
				if s.err == nil {
					s.err = fmt.Errorf("portfolio: repair torn store tail: %w", err)
				}
				return
			}
			s.needNL = false
		}
		if _, err := s.w.Write(storeFrame(b)); err != nil {
			if s.err == nil {
				s.err = fmt.Errorf("portfolio: write store record: %w", err)
			}
			return
		}
		s.applyLocked(rec)
	}
	if err := s.w.Flush(); err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	if err := s.f.Sync(); err != nil && s.err == nil {
		s.err = err
	}
}

// Predict returns the store's best guess for bucket: the arm with the most
// recorded wins, ties broken by lower best cut, then by name — a fully
// deterministic read of the tallies. ok is false for a cold bucket (no wins
// recorded). The prediction is advisory telemetry; it never selects an arm.
func (s *Store) Predict(bucket string) (arm string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	arms := s.tallies[bucket]
	if len(arms) == 0 {
		return "", false
	}
	names := make([]string, 0, len(arms))
	for name := range arms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := arms[name]
		if t.Wins == 0 {
			continue
		}
		if !ok {
			arm = name
			ok = true
			continue
		}
		best := arms[arm]
		if t.Wins > best.Wins || (t.Wins == best.Wins && t.BestCut < best.BestCut) {
			arm = name
		}
	}
	return arm, ok
}

// Tallies returns a deep copy of the per-bucket tallies, for inspection and
// tests.
func (s *Store) Tallies() map[string]map[string]Tally {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[string]Tally, len(s.tallies))
	for bucket, arms := range s.tallies {
		m := make(map[string]Tally, len(arms))
		for name, t := range arms {
			m[name] = *t
		}
		out[bucket] = m
	}
	return out
}

// Quarantined returns how many damaged records were skipped during load.
func (s *Store) Quarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Err returns the first write error encountered, if any. The store stays
// advisory: a write error means future predictions warm-start from stale
// tallies, nothing more.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and closes the store file. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	ferr := s.w.Flush()
	cerr := s.f.Close()
	s.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
