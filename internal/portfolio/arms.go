package portfolio

import (
	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Arm is one portfolio member: a named engine configuration the scheduler
// can race and commit to. Arms are value types; the curated portfolio is a
// fixed, ordered list so that arm indices (and therefore winner selection
// tie-breaks) are stable across builds.
type Arm struct {
	// Name identifies the arm in traces, the outcome store and metrics.
	Name string
	// Multilevel selects the ML engine; VCycles is its polish depth.
	Multilevel bool
	VCycles    int
	// Config is the flat engine configuration (also the ML refinement
	// configuration when Multilevel is set).
	Config core.Config
}

// NewHeuristic instantiates the arm's engine for h under bal. r feeds only
// construction-time randomness (flat engines take a generator for
// RandomOrder insertion); per-start randomness flows through Heuristic.Run.
func (a Arm) NewHeuristic(h *hypergraph.Hypergraph, bal partition.Balance, r *rng.RNG) eval.Heuristic {
	if a.Multilevel {
		return eval.NewML(a.Name, h, multilevel.Config{Refine: a.Config}, bal, a.VCycles)
	}
	return eval.NewFlat(a.Name, h, a.Config, bal, r)
}

// Factory adapts the arm to the eval.RunMultistart factory contract with a
// fixed construction seed, so the commit phase reuses the harness's
// retry/checkpoint machinery unchanged.
func (a Arm) Factory(h *hypergraph.Hypergraph, bal partition.Balance, seed uint64) func() eval.Heuristic {
	return func() eval.Heuristic { return a.NewHeuristic(h, bal, rng.New(seed)) }
}

// DefaultArms is the curated portfolio. It spans the paper's four decisive
// axes — LIFO vs CLIP, corking on/off, tie-breaking, and multilevel on/off —
// with one representative per axis rather than the full cross product, so a
// race stays a small fraction of a request's budget:
//
//	ml-strong       multilevel + strong flat refinement, 1 V-cycle — the
//	                fixed default hgserved runs today, kept as arm 0.
//	flat-lifo       strong single-level FM (LIFO, nonzero-only updates,
//	                toward-bias, most-balanced ties, corking guard).
//	clip-guarded    strong CLIP with the corking guard — the paper's best
//	                flat configuration on most instances.
//	clip-unguarded  the same CLIP arm with the corking guard off — wins on
//	                instances where corking rarely bites and the guard's
//	                bookkeeping is pure overhead.
//	flat-firstbest  strong flat FM breaking gain ties first-best instead of
//	                most-balanced — the tie-break axis.
//	flat-alldelta   strong flat FM with all-delta gain updates — the
//	                update-rule axis.
func DefaultArms() []Arm {
	clipNoGuard := core.StrongConfig(true)
	clipNoGuard.CorkGuard = false
	firstBest := core.StrongConfig(false)
	firstBest.BestTie = core.FirstBest
	allDelta := core.StrongConfig(false)
	allDelta.Update = core.AllDeltaGain
	return []Arm{
		{Name: "ml-strong", Multilevel: true, VCycles: 1, Config: core.StrongConfig(false)},
		{Name: "flat-lifo", Config: core.StrongConfig(false)},
		{Name: "clip-guarded", Config: core.StrongConfig(true)},
		{Name: "clip-unguarded", Config: clipNoGuard},
		{Name: "flat-firstbest", Config: firstBest},
		{Name: "flat-alldelta", Config: allDelta},
	}
}
