package portfolio

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
)

func genScaled(t *testing.T, spec gen.Spec, f float64) *hypergraph.Hypergraph {
	t.Helper()
	h, err := gen.Generate(gen.Scaled(spec, f))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func balanceFor(h *hypergraph.Hypergraph) partition.Balance {
	return partition.NewBalance(h.TotalVertexWeight(), 0.02)
}

// raceBytes serializes the deterministic surface of a race result — exactly
// the fields that may enter a report body. Predicted/StoreHit are advisory
// and deliberately excluded.
func raceBytes(t *testing.T, res *RaceResult) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Bucket   string
		Features Features
		Traces   []ArmTrace
		Winner   string
		Cut      int64
		RaceWork int64
	}{res.Bucket.Key(), res.Features, res.Traces, res.Arms[res.Winner].Name,
		res.Best.Cut, res.RaceWork})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runBytes serializes the deterministic surface of a full portfolio run.
func runBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Race    json.RawMessage
		Commit  string
		Final   int64
		Source  string
		Total   int64
		Balance int64
	}{json.RawMessage(raceBytes(t, res.Race)), res.Commit.Summary(),
		res.Final.Cut, res.Source, res.TotalWork, res.Final.P.Area(0)})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRaceDeterministicAndWinnerIsBest(t *testing.T) {
	h := genScaled(t, gen.MustIBMProfile(1), 0.04)
	bal := balanceFor(h)
	s := &Scheduler{}
	a, err := s.Race(context.Background(), h, bal, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Race(context.Background(), h, bal, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ab, bb := raceBytes(t, a), raceBytes(t, b); string(ab) != string(bb) {
		t.Fatalf("race not byte-deterministic:\n%s\n%s", ab, bb)
	}
	if len(a.Traces) != len(DefaultArms()) {
		t.Fatalf("raced %d arms, want %d", len(a.Traces), len(DefaultArms()))
	}
	w := a.Traces[a.Winner]
	if !w.Won || !w.OK {
		t.Fatalf("winner trace %+v not marked Won/OK", w)
	}
	for _, tr := range a.Traces {
		if tr.OK && tr.Cut < w.Cut {
			t.Fatalf("arm %s cut %d beats winner %s cut %d", tr.Arm, tr.Cut, w.Arm, w.Cut)
		}
	}
	if a.Best.Cut != w.Cut || a.Best.P == nil {
		t.Fatalf("Best = {cut %d, P %v}, want winner cut %d with partition", a.Best.Cut, a.Best.P, w.Cut)
	}
	// A different seed should change at least the per-arm work profile.
	c, err := s.Race(context.Background(), h, bal, 43, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(raceBytes(t, a)) == string(raceBytes(t, c)) {
		t.Fatal("different seeds produced identical race bytes (suspicious)")
	}
}

func TestRaceBudgetedRunsMultipleStarts(t *testing.T) {
	h := genScaled(t, mustMCNC(t, "struct"), 0.3)
	bal := balanceFor(h)
	s := &Scheduler{}
	// First measure a one-start race to size a budget that forces >=2 starts
	// for at least one arm.
	probe, err := s.Race(context.Background(), h, bal, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.RaceWork * 3
	res, err := s.Race(context.Background(), h, bal, 7, budget)
	if err != nil {
		t.Fatal(err)
	}
	multi := false
	for _, tr := range res.Traces {
		if tr.Starts > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatalf("budget %d (3x one-start race) produced no multi-start arm: %+v", budget, res.Traces)
	}
	// Budgeted races are deterministic too.
	res2, err := s.Race(context.Background(), h, bal, 7, budget)
	if err != nil {
		t.Fatal(err)
	}
	if string(raceBytes(t, res)) != string(raceBytes(t, res2)) {
		t.Fatal("budgeted race not byte-deterministic")
	}
}

func TestRaceCancelled(t *testing.T) {
	h := genScaled(t, gen.MustIBMProfile(1), 0.04)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Scheduler{}).Race(ctx, h, balanceFor(h), 1, 0); err == nil {
		t.Fatal("cancelled race must return an error")
	}
}

func TestRaceInfeasible(t *testing.T) {
	// Two vertices with wildly different weights cannot be balanced at 2%.
	b := hypergraph.NewBuilder(2, 1)
	b.AddVertex(1)
	b.AddVertex(100)
	b.AddEdge(1, 0, 1)
	h := b.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	if _, err := (&Scheduler{}).Race(context.Background(), h, bal, 1, 0); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestPortfolioSmoke is the CI portfolio-smoke gate (make portfolio-smoke):
// on two gen profiles — one macro-bearing IBM-like, one unit-area MCNC-like —
// the full race+commit schedule must produce byte-identical results across
// two runs and across a cold vs warm outcome store (including a store
// reopened from disk, i.e. a restart). This is the package-level half of the
// determinism contract; cmd/hgchaos proves the service-level half across
// cluster topologies.
func TestPortfolioSmoke(t *testing.T) {
	profiles := []struct {
		name string
		spec gen.Spec
		f    float64
	}{
		{"ibm01", gen.MustIBMProfile(1), 0.04},
		{"struct", mustMCNC(t, "struct"), 0.3},
	}
	for _, pr := range profiles {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			h := genScaled(t, pr.spec, pr.f)
			bal := balanceFor(h)
			const seed, starts = 1, 3

			run := func(st *Store) []byte {
				s := &Scheduler{Store: st}
				res, err := s.Run(context.Background(), h, bal, seed, starts, 0)
				if err != nil {
					t.Fatal(err)
				}
				return runBytes(t, res)
			}

			// Two cold runs, no store.
			first := run(nil)
			if second := run(nil); string(first) != string(second) {
				t.Fatalf("repeat run differs:\n%s\n%s", first, second)
			}

			// Cold store, then the same store warm in-memory, then warm
			// reopened from disk: the store must never change the bytes.
			path := filepath.Join(t.TempDir(), "portfolio.store")
			st, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			if cold := run(st); string(cold) != string(first) {
				t.Fatalf("cold-store run differs from storeless run:\n%s\n%s", first, cold)
			}
			if warm := run(st); string(warm) != string(first) {
				t.Fatalf("warm-store run differs:\n%s", warm)
			}
			if err := st.Err(); err != nil {
				t.Fatalf("store error: %v", err)
			}
			st.Close()
			st2, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			// The reopened store is warm: it must predict and still not
			// perturb a single byte.
			bucket := BucketOf(Extract(h)).Key()
			if _, ok := st2.Predict(bucket); !ok {
				t.Fatalf("reopened store is cold for bucket %s", bucket)
			}
			if reopened := run(st2); string(reopened) != string(first) {
				t.Fatalf("restarted-store run differs:\n%s", reopened)
			}
		})
	}
}

// TestRunCommitImproves checks the commit phase is actually wired: the
// commit report must have run starts, and the final cut can only be <= the
// race winner's cut.
func TestRunCommitImproves(t *testing.T) {
	h := genScaled(t, gen.MustIBMProfile(1), 0.04)
	bal := balanceFor(h)
	res, err := (&Scheduler{}).Run(context.Background(), h, bal, 5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commit.Completed == 0 {
		t.Fatalf("commit ran no starts: %s", res.Commit.Summary())
	}
	if res.Final.Cut > res.Race.Best.Cut {
		t.Fatalf("final cut %d worse than race best %d", res.Final.Cut, res.Race.Best.Cut)
	}
	if res.Final.P == nil {
		t.Fatal("final outcome carries no partition")
	}
	if res.Source != "race" && res.Source != "commit" {
		t.Fatalf("Source = %q", res.Source)
	}
	t.Logf("final cut %d from %s (race winner %s)", res.Final.Cut, res.Source,
		res.Race.Arms[res.Race.Winner].Name)
}
