// Package portfolio implements the adaptive portfolio scheduler: a
// deterministic feature→bucket→race→commit pipeline over the existing engine
// configurations, plus a persistent, CRC-framed per-bucket outcome store.
//
// The paper's core empirical finding is that configuration choice (LIFO vs
// CLIP, tie-breaking, corking) dominates partitioner quality and is strongly
// instance-dependent, and that rankings must be reported as speed-dependent.
// Rather than a learned black box, the scheduler races a small curated
// portfolio of configurations for the first slice of a request's budget and
// commits the remainder to the winning arm. Every step — feature extraction,
// bucketing, the race, winner selection, the commit — is a pure function of
// (instance, seed, budget), so portfolio mode preserves the repo's
// byte-identical-output contract (DESIGN.md §15). The outcome store is
// strictly advisory: it observes races and predicts winners for telemetry,
// but never influences which arm wins.
package portfolio

import (
	"fmt"
	"sort"

	"hgpart/internal/hypergraph"
)

// Features is the cheap, deterministic instance-feature vector the scheduler
// buckets on. It mirrors the structural statistics internal/gen profiles
// target (vertex/net counts, net-size distribution, pin/vertex ratio, area
// skew, macro count) so generated and parsed instances land in comparable
// buckets. Extraction is O(pins) with no randomness and no wall clock.
type Features struct {
	// Vertices, Nets and Pins are the raw instance dimensions.
	Vertices int `json:"vertices"`
	Nets     int `json:"nets"`
	Pins     int `json:"pins"`
	// PinVertexRatio is Pins/Vertices — the paper's primary density measure.
	PinVertexRatio float64 `json:"pin_vertex_ratio"`
	// AvgNetSize is Pins/Nets.
	AvgNetSize float64 `json:"avg_net_size"`
	// NetSizeQ50/Q90/Q99 are nearest-rank quantiles of the net-size
	// distribution; MaxNetSize is its maximum.
	NetSizeQ50 int `json:"net_size_q50"`
	NetSizeQ90 int `json:"net_size_q90"`
	NetSizeQ99 int `json:"net_size_q99"`
	MaxNetSize int `json:"max_net_size"`
	// LargeNets counts nets spanning more than Vertices/100 pins — the same
	// "global net" notion hypergraph.Stats reports.
	LargeNets int `json:"large_nets"`
	// WeightSkew is MaxVertexWeight over the mean vertex weight (1.0 for
	// unit-area instances); MacroVertices counts vertices heavier than 4x
	// the mean (the gen profiles' macro blocks).
	WeightSkew    float64 `json:"weight_skew"`
	MacroVertices int     `json:"macro_vertices"`
	// UnitArea reports that every vertex has the same weight.
	UnitArea bool `json:"unit_area"`
}

// Extract computes the feature vector for h. It is deterministic: same
// hypergraph, same bytes out.
func Extract(h *hypergraph.Hypergraph) Features {
	f := Features{
		Vertices:   h.NumVertices(),
		Nets:       h.NumEdges(),
		Pins:       h.NumPins(),
		MaxNetSize: h.MaxEdgeSize(),
	}
	if f.Vertices > 0 {
		f.PinVertexRatio = float64(f.Pins) / float64(f.Vertices)
	}
	if f.Nets > 0 {
		f.AvgNetSize = float64(f.Pins) / float64(f.Nets)
	}

	sizes := make([]int, f.Nets)
	largeAt := f.Vertices / 100
	for e := 0; e < f.Nets; e++ {
		s := h.EdgeSize(int32(e))
		sizes[e] = s
		if s > largeAt {
			f.LargeNets++
		}
	}
	sort.Ints(sizes)
	f.NetSizeQ50 = quantile(sizes, 50)
	f.NetSizeQ90 = quantile(sizes, 90)
	f.NetSizeQ99 = quantile(sizes, 99)

	if f.Vertices > 0 {
		mean := float64(h.TotalVertexWeight()) / float64(f.Vertices)
		f.WeightSkew = float64(h.MaxVertexWeight()) / mean
		macroAt := int64(4 * mean)
		f.UnitArea = true
		w0 := h.VertexWeight(0)
		for v := 0; v < f.Vertices; v++ {
			w := h.VertexWeight(int32(v))
			if w != w0 {
				f.UnitArea = false
			}
			if w > macroAt {
				f.MacroVertices++
			}
		}
	}
	return f
}

// quantile returns the nearest-rank pct-th percentile of the ascending
// sizes slice (0 for an empty slice).
func quantile(sizes []int, pct int) int {
	if len(sizes) == 0 {
		return 0
	}
	idx := (len(sizes) - 1) * pct / 100
	return sizes[idx]
}

// Bucket is a cell of the small discrete feature grid the outcome store
// aggregates over. The grid is deliberately coarse — a handful of classes
// per axis — so that per-bucket statistics accumulate quickly across
// requests and the store stays inspectable by hand.
type Bucket struct {
	// SizeClass classifies vertex count: 0 (<2e3), 1 (<2e4), 2 (<2e5), 3.
	SizeClass int `json:"size_class"`
	// NetClass classifies average net size: 0 (<3.4), 1 (<4.2), 2 (>=4.2) —
	// boundaries chosen to split the IBM/MCNC profile suite roughly in
	// thirds.
	NetClass int `json:"net_class"`
	// SkewClass classifies vertex-area skew: 0 (near-unit), 1 (moderate),
	// 2 (macro-dominated, skew >= 8).
	SkewClass int `json:"skew_class"`
	// GlobalClass is 1 when the instance has any large ("global") nets.
	GlobalClass int `json:"global_class"`
}

// BucketOf maps a feature vector onto the grid.
func BucketOf(f Features) Bucket {
	var b Bucket
	switch {
	case f.Vertices < 2_000:
		b.SizeClass = 0
	case f.Vertices < 20_000:
		b.SizeClass = 1
	case f.Vertices < 200_000:
		b.SizeClass = 2
	default:
		b.SizeClass = 3
	}
	switch {
	case f.AvgNetSize < 3.4:
		b.NetClass = 0
	case f.AvgNetSize < 4.2:
		b.NetClass = 1
	default:
		b.NetClass = 2
	}
	switch {
	case f.WeightSkew < 1.5:
		b.SkewClass = 0
	case f.WeightSkew < 8:
		b.SkewClass = 1
	default:
		b.SkewClass = 2
	}
	if f.LargeNets > 0 {
		b.GlobalClass = 1
	}
	return b
}

// Key renders the bucket as a compact stable string ("s1.n0.k2.g1") used as
// the store's grouping key and the Prometheus bucket label.
func (b Bucket) Key() string {
	return fmt.Sprintf("s%d.n%d.k%d.g%d", b.SizeClass, b.NetClass, b.SkewClass, b.GlobalClass)
}
