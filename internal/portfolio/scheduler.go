package portfolio

import (
	"context"
	"errors"
	"fmt"

	"hgpart/internal/eval"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// goldenGamma is the repo's standard SplitMix64 odd constant, used here to
// derive per-arm and commit-phase seeds from the request seed.
const goldenGamma = 0x9e3779b97f4a7c15

// commitSalt separates the commit phase's seed space from the race's (and
// from the fixed-default engine's plain request seed): "portfoli" in ASCII.
const commitSalt = 0x706f7274666f6c69

// ErrInfeasible reports that no arm produced a legal partition during the
// race — the balance constraint cannot be met (the portfolio analogue of the
// fixed engines' infeasible-tolerance failure).
var ErrInfeasible = errors.New("portfolio: no arm produced a legal partition")

// armSeed derives the deterministic root seed for arm i of a race rooted at
// seed. Arms never share generator state, so adding or re-ordering starts
// within one arm cannot perturb another.
func armSeed(seed uint64, i int) uint64 {
	return seed ^ uint64(i+1)*goldenGamma
}

// CommitSeed derives the commit phase's multistart seed from the request
// seed. It is distinct from every armSeed and from the raw request seed, so
// the commit explores starts the race has not already spent.
func CommitSeed(seed uint64) uint64 { return seed ^ commitSalt }

// PolishSeed derives the seed for the final polish pass applied to a
// commit-phase best (the same seed^gamma idiom the service uses for its
// fixed-default polish).
func PolishSeed(seed uint64) uint64 { return CommitSeed(seed) ^ goldenGamma }

// ArmTrace is the per-arm outcome of one race, in arm order. It is part of
// the deterministic report surface: every field is a pure function of
// (instance, seed, budget).
type ArmTrace struct {
	// Arm names the arm.
	Arm string `json:"arm"`
	// Starts is how many starts the arm ran during the race.
	Starts int `json:"starts"`
	// Cut is the arm's best legal cut (after the arm's own polish step);
	// meaningful only when OK.
	Cut int64 `json:"cut"`
	// Work is the arm's total deterministic work units, polish included.
	Work int64 `json:"work"`
	// OK reports that at least one start produced a verified legal
	// partition.
	OK bool `json:"ok"`
	// Won marks the winning arm.
	Won bool `json:"won,omitempty"`
}

// RaceResult is the outcome of the racing slice: the extracted features and
// bucket, one trace per arm, and the winning arm's best outcome.
//
// Predicted and StoreHit are advisory observability fields fed by the
// outcome store — they report what the store would have guessed and whether
// the guess matched. They feed logs and metrics only and MUST NOT enter any
// deterministic report body: a warm store would otherwise change the bytes.
type RaceResult struct {
	Features Features
	Bucket   Bucket
	// Arms is the raced portfolio, in order; Traces is parallel to it.
	Arms   []Arm
	Traces []ArmTrace
	// Winner indexes Arms/Traces; Best is the winner's best outcome (P is
	// non-nil and verified legal).
	Winner int
	Best   eval.Outcome
	// RaceWork is the total work spent racing, across all arms.
	RaceWork int64
	// Predicted is the store's pre-race prediction ("" when the bucket was
	// cold or no store is attached); StoreHit reports Predicted matched the
	// actual winner. Advisory only — see above.
	Predicted string
	StoreHit  bool
}

// Scheduler races a portfolio of arms and selects the winner for a commit.
// The zero value races DefaultArms with one start per arm and no store.
type Scheduler struct {
	// Arms is the portfolio; nil means DefaultArms().
	Arms []Arm
	// RaceStarts is the per-arm start count used when the race has no work
	// budget; <= 0 means 1.
	RaceStarts int
	// Store, when non-nil, records every race and supplies the advisory
	// Predicted/StoreHit fields. It never influences winner selection.
	Store *Store
	// Progress, when non-nil, is called after every race start with the arm
	// name and that start's raw cut — a heartbeat hook for watchdogs and
	// live status views. It observes only; it cannot influence the race.
	Progress func(arm string, cut int64)
}

// Race runs the racing slice: every arm runs starts until its share of
// raceWork is spent (raceWork <= 0 means RaceStarts starts per arm; every
// arm always runs at least one start), each arm's best is polished by the
// arm's own polish step, and the winner is the lexicographic minimum of
// (cut, work, arm index) over arms with a legal best. The result is a pure
// function of (h, seed, raceWork): arms run sequentially, each from its own
// derived seed, and the store — warm or cold — never affects the outcome.
//
// A cancelled ctx aborts the race with ctx's error; partial races are never
// returned, so callers cannot commit to a winner chosen under a truncated
// race (which would break determinism).
func (s *Scheduler) Race(ctx context.Context, h *hypergraph.Hypergraph, bal partition.Balance, seed uint64, raceWork int64) (*RaceResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	arms := s.Arms
	if len(arms) == 0 {
		arms = DefaultArms()
	}
	raceStarts := s.RaceStarts
	if raceStarts <= 0 {
		raceStarts = 1
	}
	perArm := int64(0)
	if raceWork > 0 {
		perArm = raceWork / int64(len(arms))
		if perArm < 1 {
			perArm = 1
		}
	}

	res := &RaceResult{
		Features: Extract(h),
		Arms:     arms,
		Traces:   make([]ArmTrace, len(arms)),
		Winner:   -1,
	}
	res.Bucket = BucketOf(res.Features)
	if s.Store != nil {
		res.Predicted, _ = s.Store.Predict(res.Bucket.Key())
	}

	verify := eval.VerifyOutcome(bal)
	bests := make([]eval.Outcome, len(arms))
	for i, arm := range arms {
		r := rng.New(armSeed(seed, i))
		heur := arm.NewHeuristic(h, bal, r.Split())
		tr := ArmTrace{Arm: arm.Name}
		var best eval.Outcome
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o := heur.Run(r.Split())
			tr.Starts++
			tr.Work += o.Work
			if s.Progress != nil {
				s.Progress(arm.Name, o.Cut)
			}
			if verify(o) == nil && (!tr.OK || o.Cut < best.Cut) {
				best = o
				tr.OK = true
			}
			if perArm > 0 {
				if tr.Work >= perArm {
					break
				}
			} else if tr.Starts >= raceStarts {
				break
			}
		}
		if tr.OK {
			// The arm's own polish (V-cycles for the multilevel arm) is part
			// of its race cost and its reported quality, mirroring BestOfK.
			if polish := heur.PolishBest(best.P, r.Split()); polish.P != nil {
				tr.Work += polish.Work
				best.Cut = polish.Cut
			}
			tr.Cut = best.Cut
			bests[i] = best
		}
		res.Traces[i] = tr
		res.RaceWork += tr.Work
	}

	for i, tr := range res.Traces {
		if !tr.OK {
			continue
		}
		if res.Winner < 0 {
			res.Winner = i
			continue
		}
		w := res.Traces[res.Winner]
		if tr.Cut < w.Cut || (tr.Cut == w.Cut && tr.Work < w.Work) {
			res.Winner = i
		}
	}
	if res.Winner < 0 {
		return nil, ErrInfeasible
	}
	res.Traces[res.Winner].Won = true
	res.Best = bests[res.Winner]
	res.StoreHit = res.Predicted != "" && res.Predicted == arms[res.Winner].Name
	if s.Store != nil {
		// Recording is advisory: a full disk or corrupted store must not
		// fail the race. Errors surface via Store.Err for telemetry.
		s.Store.RecordRace(res.Bucket.Key(), seed, res.Traces)
	}
	return res, nil
}

// Result is the outcome of a full Run: the race, the commit-phase report,
// and the final polished best across both phases.
type Result struct {
	Race *RaceResult
	// Commit is the commit phase's multistart report (winner arm only).
	Commit *eval.RunReport
	// Final is the overall best outcome (P non-nil, verified legal); Source
	// is "race" or "commit" depending on which phase produced it.
	Final  eval.Outcome
	Source string
	// TotalWork is race + commit + final polish work.
	TotalWork int64
}

// Run executes the full portfolio schedule: race for the first quarter of
// workBudget (or one start per arm when unbudgeted), then commit the
// remaining budget to the winning arm as an eval.RunMultistart of starts
// starts rooted at CommitSeed(seed). The commit runs on a single worker so
// the work-budget cutoff is schedule-independent, making the whole Result a
// pure function of (h, seed, starts, workBudget) — the property the smoke
// test and the hgbench gate assert byte-for-byte.
//
// When the commit phase's best comes from the commit (not the race) and the
// winning arm has a polish step, the polish is applied once, seeded from
// PolishSeed(seed); race-sourced bests were already polished during the race.
func (s *Scheduler) Run(ctx context.Context, h *hypergraph.Hypergraph, bal partition.Balance, seed uint64, starts int, workBudget int64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	raceWork := int64(0)
	if workBudget > 0 {
		raceWork = workBudget / 4
	}
	race, err := s.Race(ctx, h, bal, seed, raceWork)
	if err != nil {
		return nil, err
	}
	arm := race.Arms[race.Winner]

	remaining := int64(0)
	if workBudget > 0 {
		remaining = workBudget - race.RaceWork
		if remaining < 1 {
			remaining = 1 // the commit always gets at least one start
		}
	}
	cseed := CommitSeed(seed)
	rep := eval.RunMultistart(ctx, arm.Factory(h, bal, cseed), starts, cseed, eval.RunOptions{
		Workers:    1,
		Verify:     eval.VerifyOutcome(bal),
		WorkBudget: remaining,
	})

	res := &Result{Race: race, Commit: rep, Final: race.Best, Source: "race",
		TotalWork: race.RaceWork + rep.TotalWork}
	if rep.BestIdx >= 0 && rep.Best.P != nil && rep.Best.Cut < res.Final.Cut {
		res.Final = rep.Best
		res.Source = "commit"
		ph := arm.NewHeuristic(h, bal, rng.New(cseed))
		if polish := ph.PolishBest(res.Final.P, rng.New(PolishSeed(seed))); polish.P != nil {
			res.Final.Cut = polish.Cut
			res.TotalWork += polish.Work
		}
	}
	if res.Final.P == nil {
		return nil, fmt.Errorf("portfolio: no final partition (commit: %s)", rep.Summary())
	}
	return res, nil
}
