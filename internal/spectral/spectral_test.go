package spectral

import (
	"math"
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
)

// twoClusters builds two dense blocks joined by `bridges` 2-pin nets.
func twoClusters(blockSize, bridges int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(2*blockSize, 0)
	b.AddVertices(2*blockSize, 1)
	for blk := 0; blk < 2; blk++ {
		base := int32(blk * blockSize)
		for i := 0; i < blockSize; i++ {
			b.AddEdge(1, base+int32(i), base+int32((i+1)%blockSize))
			b.AddEdge(1, base+int32(i), base+int32((i+2)%blockSize))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddEdge(1, int32(i), int32(blockSize+i))
	}
	return b.MustBuild()
}

func TestFiedlerSeparatesClusters(t *testing.T) {
	h := twoClusters(20, 1)
	vec, _, err := Fiedler(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The eigenvector must have (nearly) uniform sign within each block.
	agree := 0
	for v := 0; v < 20; v++ {
		if (vec[v] < 0) == (vec[0] < 0) {
			agree++
		}
	}
	for v := 20; v < 40; v++ {
		if (vec[v] < 0) != (vec[0] < 0) {
			agree++
		}
	}
	if agree < 36 {
		t.Fatalf("Fiedler vector separates only %d/40 vertices", agree)
	}
}

func TestBisectFindsBridgeCut(t *testing.T) {
	h := twoClusters(16, 2)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p, res, err := Bisect(h, bal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 2 {
		t.Fatalf("spectral cut %d, want the 2 bridge nets", res.Cut)
	}
	if !p.Legal(bal) || p.Cut() != res.Cut {
		t.Fatal("result inconsistent")
	}
}

func TestBisectOnGeneratedInstance(t *testing.T) {
	h := gen.MustGenerate(gen.Spec{
		Name: "spec-test", Cells: 600, Nets: 660, AvgNetSize: 3.3,
		NumMacros: 2, MaxMacroFrac: 0.02, NumGlobalNets: 1,
		GlobalNetFrac: 0.01, Locality: 2, Seed: 6,
	})
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p, res, err := Bisect(h, bal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Legal(bal) {
		t.Fatal("illegal spectral partition")
	}
	// Must clearly beat a random split (roughly half the nets cut).
	if float64(res.Cut) > 0.5*float64(h.NumEdges()) {
		t.Fatalf("spectral cut %d no better than random on %d nets", res.Cut, h.NumEdges())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	h := twoClusters(12, 3)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.2)
	_, a, err := Bisect(h, bal, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Bisect(h, bal, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cut != b.Cut {
		t.Fatalf("not deterministic: %d vs %d", a.Cut, b.Cut)
	}
}

func TestFiedlerOrthogonalToConstant(t *testing.T) {
	h := twoClusters(10, 1)
	vec, _, err := Fiedler(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum, norm float64
	for _, v := range vec {
		sum += v
		norm += v * v
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("eigenvector not deflated: component sum %v", sum)
	}
	if math.Abs(norm-1) > 1e-6 {
		t.Fatalf("eigenvector not normalized: %v", norm)
	}
}

func TestTinyErrors(t *testing.T) {
	b := hypergraph.NewBuilder(1, 0)
	b.AddVertex(1)
	h := b.MustBuild()
	if _, _, err := Fiedler(h, Options{}); err == nil {
		t.Fatal("single-vertex instance accepted")
	}
}

func TestInfeasibleSweep(t *testing.T) {
	b := hypergraph.NewBuilder(2, 1)
	b.AddVertex(100)
	b.AddVertex(1)
	b.AddEdge(1, 0, 1)
	h := b.MustBuild()
	// No split puts both sides within [45,56].
	if _, _, err := Bisect(h, partition.Balance{Lo: 45, Hi: 56}, Options{}); err == nil {
		t.Fatal("infeasible sweep accepted")
	}
}

func TestLaplacianAgainstDense(t *testing.T) {
	// Verify the matrix-free apply against an explicit dense Laplacian on a
	// small instance.
	b := hypergraph.NewBuilder(5, 3)
	b.AddVertices(5, 1)
	b.AddEdge(2, 0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(3, 3, 4, 0)
	h := b.MustBuild()
	n := 5
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
	}
	addClique := func(pins []int32, w float64) {
		s := w / float64(len(pins)-1)
		for _, u := range pins {
			for _, v := range pins {
				if u == v {
					dense[u][u] += s
				} else {
					dense[u][v] -= s
				}
			}
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		addClique(h.Pins(int32(e)), float64(h.EdgeWeight(int32(e))))
	}
	// dense[u][u] currently counts s once per ordered pair (u,u)... fix by
	// construction: diagonal added once per pin per clique should be
	// s*(k-1); we added s per (u,u) only once per clique, so scale:
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.Pins(int32(e))
		s := float64(h.EdgeWeight(int32(e))) / float64(len(pins)-1)
		for _, u := range pins {
			dense[u][u] += s * float64(len(pins)-2)
		}
	}
	x := []float64{0.3, -1.2, 2.5, 0.1, -0.7}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += dense[i][j] * x[j]
		}
	}
	got := make([]float64, n)
	laplacian(h, x, got)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("Lx[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRatioCutSweep(t *testing.T) {
	h := twoClusters(15, 1)
	p, res, ratio, err := BisectRatioCut(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Fatalf("ratio-cut missed the bridge: cut %d", res.Cut)
	}
	// The blocks are equal-sized, so the ratio should be cut/(15*15).
	want := 1.0 / (15.0 * 15.0)
	if math.Abs(ratio-want) > 1e-12 {
		t.Fatalf("ratio %v, want %v", ratio, want)
	}
	if p.Cut() != res.Cut {
		t.Fatal("inconsistent")
	}
}

func TestRatioCutPrefersNaturalSplit(t *testing.T) {
	// Unequal blocks (10 vs 30) joined by one bridge: ratio cut should
	// still find the bridge even though the split is unbalanced — the
	// behaviour hard balance constraints forbid.
	b := hypergraph.NewBuilder(40, 0)
	b.AddVertices(40, 1)
	for i := 0; i < 10; i++ {
		b.AddEdge(1, int32(i), int32((i+1)%10))
		b.AddEdge(1, int32(i), int32((i+3)%10))
	}
	for i := 0; i < 30; i++ {
		b.AddEdge(1, int32(10+i), int32(10+(i+1)%30))
		b.AddEdge(1, int32(10+i), int32(10+(i+4)%30))
	}
	b.AddEdge(1, 0, 10)
	h := b.MustBuild()
	_, res, _, err := BisectRatioCut(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Fatalf("ratio cut %d, want the single bridge", res.Cut)
	}
}
