// Package spectral implements spectral bisection — the ratio-cut lineage of
// Wei & Cheng and Chan, Schlag & Zien that the paper's problem statement
// cites as the main non-move-based alternative. It serves as an independent
// baseline for the evaluation harness: a heuristic family with a completely
// different failure profile from FM, which is exactly what "Do measure with
// many instruments" asks for.
//
// The hypergraph is clique-expanded with the standard 1/(|e|-1) weighting;
// the second eigenvector (Fiedler vector) of the graph Laplacian is
// computed matrix-free by deflated power iteration on a spectral shift; and
// the vector is rounded by the classic sweep: sort vertices by eigenvector
// value and take the best legal prefix split.
package spectral

import (
	"fmt"
	"math"
	"sort"

	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Options controls the eigensolver and rounding.
type Options struct {
	// Iterations bounds power-iteration steps (default 400).
	Iterations int
	// Tolerance stops iteration when successive Rayleigh quotients agree to
	// this relative precision (default 1e-7).
	Tolerance float64
	// Seed initializes the start vector (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 400
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-7
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result reports a spectral bisection.
type Result struct {
	Cut int64
	// Fiedler is the computed eigenvector (for diagnostics and tests).
	Fiedler []float64
	// Iterations actually performed.
	Iterations int
}

// laplacian applies y = L x in O(pins) using the clique expansion: for each
// net e with scaled weight s = w(e)/(|e|-1), every pin u receives
// s*((|e|)x_u - sum x) toward (Lx)_u... concretely
// (Lx)_u = sum_e s_e (|pins(e)| x_u - sum_{v in e} x_v) restricted to e's pins.
func laplacian(h *hypergraph.Hypergraph, x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.Pins(int32(e))
		if len(pins) < 2 {
			continue
		}
		s := float64(h.EdgeWeight(int32(e))) / float64(len(pins)-1)
		var sum float64
		for _, v := range pins {
			sum += x[v]
		}
		k := float64(len(pins))
		for _, v := range pins {
			y[v] += s * (k*x[v] - sum)
		}
	}
}

// maxEigenBound returns an upper bound on L's largest eigenvalue:
// 2 * max weighted degree of the clique expansion.
func maxEigenBound(h *hypergraph.Hypergraph) float64 {
	deg := make([]float64, h.NumVertices())
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.Pins(int32(e))
		if len(pins) < 2 {
			continue
		}
		s := float64(h.EdgeWeight(int32(e))) / float64(len(pins)-1)
		add := s * float64(len(pins)-1)
		for _, v := range pins {
			deg[v] += add
		}
	}
	m := 0.0
	for _, d := range deg {
		if d > m {
			m = d
		}
	}
	if m == 0 {
		m = 1
	}
	return 2 * m
}

// Fiedler computes the second-smallest eigenvector of the clique-expansion
// Laplacian by power iteration on (cI - L) with deflation of the constant
// vector.
func Fiedler(h *hypergraph.Hypergraph, opt Options) ([]float64, int, error) {
	opt = opt.withDefaults()
	n := h.NumVertices()
	if n < 2 {
		return nil, 0, fmt.Errorf("spectral: need at least 2 vertices")
	}
	c := maxEigenBound(h)
	r := rng.New(opt.Seed ^ 0x5bec7a11)

	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	deflate(x)
	normalize(x)

	prevRQ := math.Inf(1)
	iters := 0
	for it := 0; it < opt.Iterations; it++ {
		iters++
		laplacian(h, x, y)
		// y = (cI - L) x
		for i := range y {
			y[i] = c*x[i] - y[i]
		}
		deflate(y)
		nrm := normalize(y)
		if nrm == 0 {
			// x was (numerically) in the constant space; restart randomly.
			for i := range y {
				y[i] = r.Float64() - 0.5
			}
			deflate(y)
			normalize(y)
		}
		x, y = y, x
		// Rayleigh quotient of L on x.
		laplacian(h, x, y)
		var rq float64
		for i := range x {
			rq += x[i] * y[i]
		}
		if math.Abs(rq-prevRQ) <= opt.Tolerance*(math.Abs(rq)+1e-12) {
			break
		}
		prevRQ = rq
	}
	return x, iters, nil
}

// deflate removes the component along the all-ones vector.
func deflate(x []float64) {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

func normalize(x []float64) float64 {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	nrm := math.Sqrt(ss)
	if nrm == 0 {
		return 0
	}
	for i := range x {
		x[i] /= nrm
	}
	return nrm
}

// Bisect computes a spectral bisection of h under bal: Fiedler vector, then
// a sweep over the sorted vector choosing the minimum-cut legal split.
func Bisect(h *hypergraph.Hypergraph, bal partition.Balance, opt Options) (*partition.P, Result, error) {
	vec, iters, err := Fiedler(h, opt)
	if err != nil {
		return nil, Result{}, err
	}
	n := h.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if vec[order[a]] != vec[order[b]] {
			return vec[order[a]] < vec[order[b]]
		}
		return order[a] < order[b]
	})

	// Sweep: start with everything on side 1, move vertices to side 0 in
	// eigenvector order, tracking the cut incrementally via partition.P.
	p := partition.New(h)
	sides := make([]uint8, n)
	for i := range sides {
		sides[i] = 1
	}
	if err := p.Assign(sides); err != nil {
		return nil, Result{}, err
	}
	bestCut := int64(math.MaxInt64)
	bestPrefix := -1
	bestViol := int64(math.MaxInt64)
	bestViolPrefix := -1
	for i, v := range order[:n-1] {
		p.Move(v)
		if p.Legal(bal) && p.Cut() < bestCut {
			bestCut = p.Cut()
			bestPrefix = i
		}
		if viol := p.BalanceViolation(bal); viol < bestViol {
			bestViol = viol
			bestViolPrefix = i
		}
	}
	if bestPrefix < 0 {
		// A balance window narrower than the largest cell can be skipped by
		// the one-vertex-at-a-time sweep (a macro straddles it). Take the
		// least-infeasible split and legalize by swapping boundary-adjacent
		// vertices across the cut.
		bestPrefix = bestViolPrefix
	}
	// Rebuild the best prefix.
	for i := range sides {
		sides[i] = 1
	}
	for _, v := range order[:bestPrefix+1] {
		sides[v] = 0
	}
	p = partition.New(h)
	if err := p.Assign(sides); err != nil {
		return nil, Result{}, err
	}
	if !p.Legal(bal) {
		legalizeSweep(p, bal, order, bestPrefix)
	}
	if !p.Legal(bal) {
		return nil, Result{}, fmt.Errorf("spectral: no legal sweep split for bounds [%d,%d]", bal.Lo, bal.Hi)
	}
	return p, Result{Cut: p.Cut(), Fiedler: vec, Iterations: iters}, nil
}

// legalizeSweep repairs a nearly balanced sweep split: vertices nearest the
// split point (in eigenvector order) are moved across the cut while doing
// so reduces the balance violation. Moving in eigenvector-boundary order
// keeps the spectral embedding's locality mostly intact.
func legalizeSweep(p *partition.P, bal partition.Balance, order []int32, prefix int) {
	n := len(order)
	for iter := 0; iter < n; iter++ {
		viol := p.BalanceViolation(bal)
		if viol == 0 {
			return
		}
		moved := false
		// Candidates alternate outward from the split boundary.
		for d := 0; d < n; d++ {
			var idx int
			if d%2 == 0 {
				idx = prefix - d/2
			} else {
				idx = prefix + 1 + d/2
			}
			if idx < 0 || idx >= n {
				continue
			}
			v := order[idx]
			if p.IsFixed(v) {
				continue
			}
			before := p.BalanceViolation(bal)
			p.Move(v)
			if p.BalanceViolation(bal) < before {
				moved = true
				break
			}
			p.Move(v) // undo
		}
		if !moved {
			return
		}
	}
}

// BisectRatioCut computes the Wei-Cheng ratio-cut spectral bisection: the
// Fiedler sweep split minimizing cut / (w(P0) * w(P1)), with no hard
// balance constraint — the original formulation of reference [37], whose
// objective rewards naturally balanced small cuts instead of enforcing
// bounds. Returns the partition, its plain cut, and the achieved ratio.
func BisectRatioCut(h *hypergraph.Hypergraph, opt Options) (*partition.P, Result, float64, error) {
	vec, iters, err := Fiedler(h, opt)
	if err != nil {
		return nil, Result{}, 0, err
	}
	n := h.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if vec[order[a]] != vec[order[b]] {
			return vec[order[a]] < vec[order[b]]
		}
		return order[a] < order[b]
	})

	p := partition.New(h)
	sides := make([]uint8, n)
	for i := range sides {
		sides[i] = 1
	}
	if err := p.Assign(sides); err != nil {
		return nil, Result{}, 0, err
	}
	total := h.TotalVertexWeight()
	bestRatio := math.Inf(1)
	bestPrefix := -1
	var w0 int64
	for i, v := range order[:n-1] {
		p.Move(v)
		w0 += h.VertexWeight(v)
		w1 := total - w0
		if w0 == 0 || w1 == 0 {
			continue
		}
		ratio := float64(p.Cut()) / (float64(w0) * float64(w1))
		if ratio < bestRatio {
			bestRatio = ratio
			bestPrefix = i
		}
	}
	if bestPrefix < 0 {
		return nil, Result{}, 0, fmt.Errorf("spectral: degenerate ratio-cut sweep")
	}
	for i := range sides {
		sides[i] = 1
	}
	for _, v := range order[:bestPrefix+1] {
		sides[v] = 0
	}
	p = partition.New(h)
	if err := p.Assign(sides); err != nil {
		return nil, Result{}, 0, err
	}
	return p, Result{Cut: p.Cut(), Fiedler: vec, Iterations: iters}, bestRatio, nil
}
