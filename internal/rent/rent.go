// Package rent estimates the Rent exponent of a netlist by recursive
// min-cut bisection — the classic empirical measure of interconnect
// locality (Landman & Russo). Rent's rule T = t * G^p relates the number of
// external connections T of a block to its gate count G; real VLSI designs
// exhibit p in roughly [0.5, 0.75], while structureless random graphs push
// p toward 1.
//
// The paper's §2.1 argues that experiments must run on instances whose
// structure reflects the driving application. This package quantifies that
// structure: the test suite checks that internal/gen's synthetic ISPD98
// stand-ins land in the realistic exponent band, and cmd/hgstats reports
// the estimate for any input netlist.
package rent

import (
	"fmt"
	"math"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Options controls the estimation.
type Options struct {
	// MinBlock stops the recursion once blocks are at most this many cells
	// (default 24).
	MinBlock int
	// Tolerance is the per-bisection balance tolerance (default 0.15 —
	// loose, since the goal is structure measurement, not quality).
	Tolerance float64
	// Seed drives the bisection randomness (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MinBlock <= 0 {
		o.MinBlock = 24
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.15
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Sample is one (block size, external connections) observation.
type Sample struct {
	Cells     int
	Terminals int
}

// Estimate reports the fitted Rent parameters.
type Estimate struct {
	// P is the Rent exponent (slope of log T over log G).
	P float64
	// T0 is the Rent coefficient t (average terminals of a single cell).
	T0 float64
	// Samples are the observations the fit used.
	Samples []Sample
	// R2 is the coefficient of determination of the log-log fit.
	R2 float64
}

// Analyze estimates the Rent exponent of h.
func Analyze(h *hypergraph.Hypergraph, opt Options) (Estimate, error) {
	opt = opt.withDefaults()
	n := h.NumVertices()
	if n < opt.MinBlock*2 {
		return Estimate{}, fmt.Errorf("rent: instance too small (%d cells, need >= %d)", n, opt.MinBlock*2)
	}
	r := rng.New(opt.Seed ^ 0x9e37_0b5e)

	var samples []Sample
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	// The whole design is one observation only if it has external pins —
	// it does not, so start sampling at the first split.
	var recurse func(cells []int32)
	recurse = func(cells []int32) {
		samples = append(samples, Sample{Cells: len(cells), Terminals: externalNets(h, cells)})
		if len(cells) <= opt.MinBlock {
			return
		}
		left, right := bisectBlock(h, cells, opt, r)
		if len(left) == 0 || len(right) == 0 {
			return
		}
		recurse(left)
		recurse(right)
	}
	left, right := bisectBlock(h, all, opt, r)
	recurse(left)
	recurse(right)

	return fit(samples)
}

// externalNets counts nets with pins both inside and outside the block.
func externalNets(h *hypergraph.Hypergraph, cells []int32) int {
	in := make(map[int32]bool, len(cells))
	for _, v := range cells {
		in[v] = true
	}
	seen := make(map[int32]bool)
	count := 0
	for _, v := range cells {
		for _, e := range h.IncidentEdges(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			inside, outside := false, false
			for _, u := range h.Pins(e) {
				if in[u] {
					inside = true
				} else {
					outside = true
				}
				if inside && outside {
					count++
					break
				}
			}
		}
	}
	return count
}

// bisectBlock splits a block with tuned flat FM on the induced
// sub-hypergraph (external pins dropped — Rent estimation conventionally
// uses intrinsic partitioning).
func bisectBlock(h *hypergraph.Hypergraph, cells []int32, opt Options, r *rng.RNG) (left, right []int32) {
	local := make(map[int32]int32, len(cells))
	for i, v := range cells {
		local[v] = int32(i)
	}
	b := hypergraph.NewBuilder(len(cells), len(cells))
	b.Name = "rent-block"
	for range cells {
		b.AddVertex(1) // unit weights: Rent counts cells, not area
	}
	seen := make(map[int32]bool)
	for _, v := range cells {
		for _, e := range h.IncidentEdges(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			var pins []int32
			for _, u := range h.Pins(e) {
				if lu, ok := local[u]; ok {
					pins = append(pins, lu)
				}
			}
			if len(pins) >= 2 {
				b.AddEdge(1, pins...)
			}
		}
	}
	sub := b.MustBuild()
	bal := partition.NewBalance(sub.TotalVertexWeight(), opt.Tolerance)
	p := partition.New(sub)
	p.RandomBalanced(r.Split(), bal)
	eng := core.NewEngine(sub, core.StrongConfig(false), bal, r.Split())
	eng.Run(p)
	for i, v := range cells {
		if p.Side(int32(i)) == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return left, right
}

// fit performs least squares on log T = log t + p log G, ignoring
// observations with zero terminals (log undefined; blocks fully internal).
func fit(samples []Sample) (Estimate, error) {
	var xs, ys []float64
	for _, s := range samples {
		if s.Terminals <= 0 || s.Cells <= 1 {
			continue
		}
		xs = append(xs, math.Log(float64(s.Cells)))
		ys = append(ys, math.Log(float64(s.Terminals)))
	}
	if len(xs) < 3 {
		return Estimate{}, fmt.Errorf("rent: only %d usable observations", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return Estimate{}, fmt.Errorf("rent: degenerate observations (all blocks equal size)")
	}
	p := (n*sxy - sx*sy) / denom
	intercept := (sy - p*sx) / n

	// R^2 of the fit.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + p*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Estimate{P: p, T0: math.Exp(intercept), Samples: samples, R2: r2}, nil
}
