package rent

import (
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/rng"
)

func TestGeneratedInstanceHasRealisticExponent(t *testing.T) {
	h := gen.MustGenerate(gen.Spec{
		Name: "rent-test", Cells: 1200, Nets: 1320, AvgNetSize: 3.5,
		NumMacros: 0, NumGlobalNets: 0, Locality: 2, Seed: 9, UnitArea: true,
	})
	est, err := Analyze(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.P < 0.3 || est.P > 0.92 {
		t.Fatalf("synthetic instance Rent exponent %.3f outside the plausible band", est.P)
	}
	if est.R2 < 0.5 {
		t.Fatalf("log-log fit very poor: R2=%.3f", est.R2)
	}
	if len(est.Samples) < 10 {
		t.Fatalf("only %d samples", len(est.Samples))
	}
}

func TestRandomGraphHasHigherExponentThanLocal(t *testing.T) {
	// Structureless random hypergraph: exponent should be clearly higher
	// than a strongly local instance of the same size.
	r := rng.New(4)
	b := hypergraph.NewBuilder(800, 900)
	b.AddVertices(800, 1)
	for e := 0; e < 900; e++ {
		b.AddEdge(1, int32(r.Intn(800)), int32(r.Intn(800)), int32(r.Intn(800)))
	}
	random := b.MustBuild()
	randomEst, err := Analyze(random, Options{})
	if err != nil {
		t.Fatal(err)
	}

	local := gen.MustGenerate(gen.Spec{
		Name: "local", Cells: 800, Nets: 900, AvgNetSize: 3.0,
		Locality: 3, Seed: 5, UnitArea: true,
	})
	localEst, err := Analyze(local, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if randomEst.P <= localEst.P {
		t.Fatalf("random exponent %.3f not above local %.3f", randomEst.P, localEst.P)
	}
}

func TestAnalyzeTooSmall(t *testing.T) {
	b := hypergraph.NewBuilder(10, 5)
	b.AddVertices(10, 1)
	for i := int32(0); i < 5; i++ {
		b.AddEdge(1, i, i+5)
	}
	h := b.MustBuild()
	if _, err := Analyze(h, Options{}); err == nil {
		t.Fatal("tiny instance accepted")
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	h := gen.MustGenerate(gen.Spec{
		Name: "det", Cells: 600, Nets: 660, AvgNetSize: 3.2,
		Locality: 2, Seed: 6, UnitArea: true,
	})
	a, err := Analyze(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.P != b.P || a.T0 != b.T0 {
		t.Fatalf("not deterministic: %.4f/%.4f vs %.4f/%.4f", a.P, a.T0, b.P, b.T0)
	}
}

func TestSamplesCoverSizes(t *testing.T) {
	h := gen.MustGenerate(gen.Spec{
		Name: "sizes", Cells: 600, Nets: 650, AvgNetSize: 3.2,
		Locality: 2, Seed: 7, UnitArea: true,
	})
	est, err := Analyze(h, Options{MinBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	small, large := false, false
	for _, s := range est.Samples {
		if s.Cells <= 32 {
			small = true
		}
		if s.Cells >= 150 {
			large = true
		}
	}
	if !small || !large {
		t.Fatal("samples do not span block sizes")
	}
}
