package faultinject

import (
	"errors"
	"testing"
	"time"

	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func testInstance(tb testing.TB) (*hypergraph.Hypergraph, partition.Balance) {
	tb.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "faultinject-test", Cells: 120, Nets: 140, AvgNetSize: 3.0,
		NumMacros: 1, MaxMacroFrac: 0.03, NumGlobalNets: 1,
		GlobalNetFrac: 0.02, Locality: 2, Seed: 2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h, partition.NewBalance(h.TotalVertexWeight(), 0.10)
}

func newFaulty(tb testing.TB, cfg Config) *Faulty {
	h, bal := testInstance(tb)
	return Wrap(eval.NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(17)), cfg)
}

// panicPattern runs one start per seed and records which seeds panic.
func panicPattern(f *Faulty, seeds []uint64) []bool {
	out := make([]bool, len(seeds))
	for i, s := range seeds {
		out[i] = func() (panicked bool) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			f.Run(rng.New(s))
			return false
		}()
	}
	return out
}

// Fault decisions must be a pure function of the start's seed: the same seeds
// panic on every replay, different salts reshuffle the pattern.
func TestFaultDecisionsAreSeedDeterministic(t *testing.T) {
	seeds := make([]uint64, 32)
	for i := range seeds {
		seeds[i] = uint64(1000 + i)
	}
	f := newFaulty(t, Config{PanicProb: 0.5, Salt: 4})
	a := panicPattern(f, seeds)
	b := panicPattern(f, seeds)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d: fault decision changed across replays", seeds[i])
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(seeds) {
		t.Fatalf("p=0.5 over 32 seeds produced %d panics — stream looks degenerate", hits)
	}
	salted := panicPattern(newFaulty(t, Config{PanicProb: 0.5, Salt: 999}), seeds)
	same := true
	for i := range a {
		if a[i] != salted[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing Salt left the fault pattern unchanged")
	}
}

func TestInjectedPanicCarriesSentinel(t *testing.T) {
	f := newFaulty(t, Config{PanicProb: 1})
	defer func() {
		v := recover()
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrInjectedPanic) {
			t.Fatalf("panic value %v is not ErrInjectedPanic", v)
		}
	}()
	f.Run(rng.New(1))
	t.Fatal("PanicProb=1 did not panic")
}

// Corruption mutates the partition only after the outcome's cut was taken, so
// the reported cut disagrees with the partition — exactly the silent failure
// eval.VerifyOutcome exists to catch.
func TestCorruptionBreaksCutAgreement(t *testing.T) {
	f := newFaulty(t, Config{CorruptProb: 1})
	o := f.Run(rng.New(8))
	if o.P == nil {
		t.Fatal("no partition returned")
	}
	if o.Cut == o.P.Cut() {
		t.Fatal("CorruptProb=1 left outcome cut and partition cut in agreement")
	}
	if err := core.VerifyPartitionState(o.P); err != nil {
		t.Fatalf("corruption must keep the partition internally consistent, got %v", err)
	}
}

func TestStallDelaysRun(t *testing.T) {
	f := newFaulty(t, Config{StallProb: 1, StallFor: 30 * time.Millisecond})
	begin := time.Now()
	f.Run(rng.New(5))
	if d := time.Since(begin); d < 25*time.Millisecond {
		t.Fatalf("StallFor=30ms but run returned after %v", d)
	}
	if Wrap(nil, Config{StallProb: 0.5}).cfg.StallFor <= 0 {
		t.Fatal("default StallFor not applied")
	}
}

func TestNameMarksWrappedHeuristic(t *testing.T) {
	f := newFaulty(t, Config{})
	if f.Name() != "flat+faults" {
		t.Fatalf("Name() = %q", f.Name())
	}
}
