package faultinject

// Checkpoint-write faults: a full disk or a failing fsync must never abort
// the computation (the answer is still correct), but it must surface as a
// hard JournalErr — silently pretending the journal is durable is exactly
// the failure crash recovery cannot tolerate.

import (
	"context"
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"hgpart/internal/chaos"
	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/rng"
)

func TestJournalWriteFaultsSurfaceAsHardErrors(t *testing.T) {
	cases := []struct {
		name string
		rule chaos.Rule
		want error
	}{
		{
			name: "enospc on record write",
			rule: chaos.Rule{Op: chaos.OpWrite, Path: ".jsonl", Nth: 3, Fault: chaos.FaultErr, Err: syscall.ENOSPC},
			want: syscall.ENOSPC,
		},
		{
			name: "failed fsync",
			rule: chaos.Rule{Op: chaos.OpSync, Path: ".jsonl", Nth: 3, Fault: chaos.FaultErr, Err: syscall.EIO},
			want: syscall.EIO,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, bal := testInstance(t)
			factory := func() eval.Heuristic {
				return eval.NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(17))
			}
			fsys := chaos.NewFaultFS(chaos.OS(), chaos.Config{Rules: []chaos.Rule{tc.rule}})
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			cp, err := eval.OpenCheckpointFS(fsys, path, "journal-fault", 5, 4, false)
			if err != nil {
				t.Fatalf("open checkpoint: %v", err)
			}
			defer cp.Close()

			rep := eval.RunMultistart(context.Background(), factory, 4, 5,
				eval.RunOptions{Workers: 1, Checkpoint: cp, Verify: eval.VerifyOutcome(bal)})
			if rep.Completed != 4 || rep.Incomplete {
				t.Fatalf("journal fault aborted the run: %+v", rep)
			}
			if rep.JournalErr == nil {
				t.Fatal("JournalErr is nil: a failed durability write went unreported")
			}
			if !errors.Is(rep.JournalErr, tc.want) {
				t.Fatalf("JournalErr = %v, want errors.Is %v", rep.JournalErr, tc.want)
			}
			var inj *chaos.InjectedError
			if !errors.As(rep.JournalErr, &inj) {
				t.Fatalf("JournalErr %v should carry the chaos.InjectedError locus", rep.JournalErr)
			}
		})
	}
}
