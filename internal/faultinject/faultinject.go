// Package faultinject wraps any eval.Heuristic with deterministic, seeded
// fault injection: panics, stalls and silent partition corruption at
// configurable rates. It exists to prove the evaluation harness's
// fault-tolerance claims the same way the paper proves algorithmic claims —
// by experiment: harness tests inject faults and assert that a panicking
// start is recorded as failed without aborting its siblings, that corrupted
// outcomes are caught by invariant verification, and that per-start results
// stay deterministic across worker counts even when faults fire.
//
// All fault decisions derive from the start's own generator (one draw from
// the per-start RNG seeds a private fault stream), so whether a given start
// faults is a pure function of the root seed and start index — never of
// scheduling. The injected panic value is ErrInjectedPanic, so tests can
// distinguish injected faults from real bugs.
package faultinject

import (
	"errors"
	"time"

	"hgpart/internal/eval"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// ErrInjectedPanic is the value injected panics carry.
var ErrInjectedPanic = errors.New("faultinject: injected panic")

// Config sets per-start fault probabilities. All probabilities are
// independent and evaluated in a fixed order (stall, panic, corrupt) from
// the start's private fault stream.
type Config struct {
	// PanicProb is the probability that a start panics before running.
	PanicProb float64
	// StallProb is the probability that a start sleeps for StallFor before
	// running — a model of a hung I/O or a scheduling stall.
	StallProb float64
	// StallFor is the stall duration (default 10ms when StallProb > 0).
	StallFor time.Duration
	// CorruptProb is the probability that a completed start's partition is
	// silently modified after its cut was measured: a random free vertex is
	// flipped, so the outcome reports a cut its partition no longer has.
	// Harness-level verification (eval.VerifyOutcome) must catch this.
	CorruptProb float64
	// Salt perturbs the fault stream without touching the heuristic's
	// randomness, so different fault scenarios can share a root seed.
	Salt uint64
}

// Faulty is a Heuristic wrapped with fault injection.
type Faulty struct {
	inner eval.Heuristic
	cfg   Config
}

// Wrap returns h with faults injected per cfg.
func Wrap(h eval.Heuristic, cfg Config) *Faulty {
	if cfg.StallProb > 0 && cfg.StallFor <= 0 {
		cfg.StallFor = 10 * time.Millisecond
	}
	return &Faulty{inner: h, cfg: cfg}
}

// Name implements eval.Heuristic.
func (f *Faulty) Name() string { return f.inner.Name() + "+faults" }

// Run implements eval.Heuristic: it draws the start's fault decisions, then
// delegates to the wrapped heuristic. The single Uint64 drawn from r to seed
// the fault stream shifts the inner heuristic's randomness relative to an
// unwrapped run, but identically so for every execution schedule — the
// determinism contract of the harness is preserved.
func (f *Faulty) Run(r *rng.RNG) eval.Outcome {
	fr := rng.New(r.Uint64() ^ f.cfg.Salt)
	if f.cfg.StallProb > 0 && fr.Float64() < f.cfg.StallProb {
		time.Sleep(f.cfg.StallFor)
	}
	if f.cfg.PanicProb > 0 && fr.Float64() < f.cfg.PanicProb {
		panic(ErrInjectedPanic)
	}
	o := f.inner.Run(r)
	if f.cfg.CorruptProb > 0 && fr.Float64() < f.cfg.CorruptProb && o.P != nil {
		corrupt(o.P, fr)
	}
	return o
}

// PolishBest implements eval.Heuristic by delegating; polish runs once on
// the best solution and is not a fault-injection target.
func (f *Faulty) PolishBest(p *partition.P, r *rng.RNG) eval.Outcome {
	return f.inner.PolishBest(p, r)
}

// corrupt flips one random movable vertex of p — after the outcome's cut was
// recorded, so the reported number silently disagrees with the partition.
func corrupt(p *partition.P, fr *rng.RNG) {
	n := p.H.NumVertices()
	if n == 0 {
		return
	}
	at := fr.Intn(n)
	for i := 0; i < n; i++ {
		v := int32((at + i) % n)
		if !p.IsFixed(v) {
			p.Move(v)
			return
		}
	}
}
