package hypergraph

import (
	"testing"
	"testing/quick"

	"hgpart/internal/rng"
)

// tiny builds the 4-vertex, 3-net example used across the basic tests:
//
//	net0 = {0,1}  net1 = {1,2,3}  net2 = {0,3}
func tiny(t *testing.T) *Hypergraph {
	t.Helper()
	b := NewBuilder(4, 3)
	b.Name = "tiny"
	b.AddVertices(4, 1)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 1, 2, 3)
	b.AddEdge(1, 0, 3)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildBasics(t *testing.T) {
	h := tiny(t)
	if h.NumVertices() != 4 || h.NumEdges() != 3 || h.NumPins() != 7 {
		t.Fatalf("got %d vertices %d edges %d pins", h.NumVertices(), h.NumEdges(), h.NumPins())
	}
	if h.TotalVertexWeight() != 4 {
		t.Fatalf("total weight %d", h.TotalVertexWeight())
	}
	if h.EdgeWeight(1) != 2 || h.EdgeSize(1) != 3 {
		t.Fatalf("edge 1: weight %d size %d", h.EdgeWeight(1), h.EdgeSize(1))
	}
	if h.MaxEdgeSize() != 3 {
		t.Fatalf("max edge size %d", h.MaxEdgeSize())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIncidenceCrossConsistency(t *testing.T) {
	h := tiny(t)
	// vertex 1 is on nets 0 and 1
	edges := h.IncidentEdges(1)
	if len(edges) != 2 {
		t.Fatalf("vertex 1 has %d incident edges", len(edges))
	}
	if h.Degree(0) != 2 || h.Degree(2) != 1 {
		t.Fatalf("degrees: %d %d", h.Degree(0), h.Degree(2))
	}
}

func TestPinDeduplication(t *testing.T) {
	b := NewBuilder(3, 1)
	b.AddVertices(3, 1)
	b.AddEdge(1, 0, 1, 1, 0, 2)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.EdgeSize(0) != 3 {
		t.Fatalf("dedup failed: size %d", h.EdgeSize(0))
	}
}

func TestSingletonNetsDropped(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddVertices(3, 1)
	b.AddEdge(1, 0)       // single pin: dropped
	b.AddEdge(1, 1, 1, 1) // dedups to single pin: dropped
	b.AddEdge(1, 0, 2)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 1 {
		t.Fatalf("expected 1 surviving net, got %d", h.NumEdges())
	}
}

func TestKeepSingleton(t *testing.T) {
	b := NewBuilder(2, 1)
	b.KeepSingleton = true
	b.AddVertices(2, 1)
	b.AddEdge(1, 0)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 1 {
		t.Fatalf("KeepSingleton dropped the net")
	}
}

func TestBuildRejectsBadPin(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddVertices(2, 1)
	b.AddEdge(1, 0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected out-of-range pin error")
	}
}

func TestBuildRejectsBadWeight(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddVertices(2, 1)
	b.AddEdge(0, 0, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected non-positive edge weight error")
	}
}

func TestMaxWeightedDegree(t *testing.T) {
	h := tiny(t)
	// vertex 1: nets 0 (w1) + 1 (w2) = 3; vertex 3: nets 1 (2) + 2 (1) = 3
	if got := h.MaxWeightedDegree(); got != 3 {
		t.Fatalf("MaxWeightedDegree = %d, want 3", got)
	}
}

func TestStats(t *testing.T) {
	h := tiny(t)
	s := ComputeStats(h)
	if s.Vertices != 4 || s.Edges != 3 || s.Pins != 7 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.MaxNetSize != 3 || s.NetSizeHist[0] != 2 || s.NetSizeHist[1] != 1 {
		t.Fatalf("net histogram wrong: %+v", s)
	}
	if s.AvgNetSize < 2.3 || s.AvgNetSize > 2.4 {
		t.Fatalf("avg net size %.3f", s.AvgNetSize)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

// randomHypergraph builds a random valid hypergraph for property tests.
func randomHypergraph(seed uint64, nv, ne int) *Hypergraph {
	r := rng.New(seed)
	b := NewBuilder(nv, ne)
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + r.Intn(20)))
	}
	for e := 0; e < ne; e++ {
		size := 2 + r.Intn(5)
		pins := make([]int32, size)
		for i := range pins {
			pins[i] = int32(r.Intn(nv))
		}
		b.AddEdge(int64(1+r.Intn(3)), pins...)
	}
	return b.MustBuild()
}

func TestRandomHypergraphsValidate(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		h := randomHypergraph(seed, 20+int(seed%30), 30+int(seed%40))
		return h.Validate() == nil && h.sortedPinsCheck()
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestContractPreservesWeight(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		h := randomHypergraph(seed, 30, 50)
		r := rng.New(seed ^ 1)
		k := 5 + r.Intn(10)
		clusterOf := make([]int32, h.NumVertices())
		for v := range clusterOf {
			clusterOf[v] = int32(r.Intn(k))
		}
		coarse, _ := h.Contract(clusterOf, k)
		return coarse.TotalVertexWeight() == h.TotalVertexWeight() &&
			coarse.Validate() == nil
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestContractCutPreservation(t *testing.T) {
	// The cut of any coarse partition must equal the cut of its projection
	// to the fine hypergraph. This is the central invariant multilevel
	// partitioning relies on.
	if err := quick.Check(func(seed uint64) bool {
		h := randomHypergraph(seed, 40, 60)
		r := rng.New(seed ^ 2)
		k := 6 + r.Intn(8)
		clusterOf := make([]int32, h.NumVertices())
		for v := range clusterOf {
			clusterOf[v] = int32(r.Intn(k))
		}
		coarse, _ := h.Contract(clusterOf, k)

		coarseSide := make([]uint8, k)
		for c := range coarseSide {
			coarseSide[c] = uint8(r.Intn(2))
		}
		cutCoarse := directCut(coarse, func(v int32) uint8 { return coarseSide[v] })
		cutFine := directCut(h, func(v int32) uint8 { return coarseSide[clusterOf[v]] })
		return cutCoarse == cutFine
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func directCut(h *Hypergraph, side func(int32) uint8) int64 {
	var cut int64
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.Pins(int32(e))
		s0 := side(pins[0])
		for _, v := range pins[1:] {
			if side(v) != s0 {
				cut += h.EdgeWeight(int32(e))
				break
			}
		}
	}
	return cut
}

func TestContractMergesParallelNets(t *testing.T) {
	b := NewBuilder(4, 3)
	b.AddVertices(4, 1)
	b.AddEdge(1, 0, 1)
	b.AddEdge(3, 2, 3)
	b.AddEdge(2, 0, 1) // parallel to net 0 after identity contraction
	h := b.MustBuild()
	clusterOf := []int32{0, 1, 2, 3}
	coarse, _ := h.Contract(clusterOf, 4)
	if coarse.NumEdges() != 2 {
		t.Fatalf("parallel nets not merged: %d edges", coarse.NumEdges())
	}
	// The merged {0,1} net must carry weight 1+2=3.
	found := false
	for e := 0; e < coarse.NumEdges(); e++ {
		pins := coarse.Pins(int32(e))
		if len(pins) == 2 && pins[0] == 0 && pins[1] == 1 {
			found = true
			if coarse.EdgeWeight(int32(e)) != 3 {
				t.Fatalf("merged weight %d, want 3", coarse.EdgeWeight(int32(e)))
			}
		}
	}
	if !found {
		t.Fatal("merged net {0,1} missing")
	}
}

func TestContractDropsInternalNets(t *testing.T) {
	h := tiny(t)
	// Merge all vertices into one cluster: every net becomes internal.
	coarse, _ := h.Contract([]int32{0, 0, 0, 0}, 1)
	if coarse.NumEdges() != 0 {
		t.Fatalf("internal nets survived: %d", coarse.NumEdges())
	}
	if coarse.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Fatal("weight not conserved")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	h := tiny(t)
	h.eind[0] = 99 // out-of-range pin
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted pin")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid input")
		}
	}()
	b := NewBuilder(1, 1)
	b.AddVertex(1)
	b.AddEdge(1, 0, 7)
	b.MustBuild()
}
