// Package hypergraph provides the weighted hypergraph representation used by
// all partitioning engines in this library.
//
// A hypergraph H = (V, E) has integer-weighted vertices (standard-cell or
// macro areas in the VLSI context) and integer-weighted hyperedges (nets).
// The representation is a compressed sparse row (CSR) layout in both
// directions: edge -> pins and vertex -> incident edges. This is the layout
// used by serious partitioning codes (hMETIS, MLPart, KaHyPar): it is
// compact, cache-friendly and makes the inner loops of Fiduccia–Mattheyses
// gain updates allocation-free.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
)

// Hypergraph is an immutable weighted hypergraph in CSR form. Construct one
// with a Builder (or netlist parsers / the synthetic generator, which use a
// Builder internally). Immutability after Build is what lets partitioners
// share one instance across concurrent multistart trials.
type Hypergraph struct {
	// Name identifies the instance in reports (e.g. "ibm01-like").
	Name string

	vertexWeight []int64
	edgeWeight   []int64

	eptr []int32 // len numEdges+1; pins of edge e are eind[eptr[e]:eptr[e+1]]
	eind []int32
	vptr []int32 // len numVertices+1; edges of v are vind[vptr[v]:vptr[v+1]]
	vind []int32

	totalVertexWeight int64
	maxVertexWeight   int64
	maxEdgeSize       int
}

// NumVertices returns |V|.
func (h *Hypergraph) NumVertices() int { return len(h.vertexWeight) }

// NumEdges returns |E|.
func (h *Hypergraph) NumEdges() int { return len(h.edgeWeight) }

// NumPins returns the total number of (vertex, edge) incidences.
func (h *Hypergraph) NumPins() int { return len(h.eind) }

// Pins returns the vertices of edge e. The returned slice aliases internal
// storage and must not be modified.
func (h *Hypergraph) Pins(e int32) []int32 { return h.eind[h.eptr[e]:h.eptr[e+1]] }

// IncidentEdges returns the edges incident to vertex v. The returned slice
// aliases internal storage and must not be modified.
func (h *Hypergraph) IncidentEdges(v int32) []int32 { return h.vind[h.vptr[v]:h.vptr[v+1]] }

// VertexWeight returns the weight (area) of vertex v.
func (h *Hypergraph) VertexWeight(v int32) int64 { return h.vertexWeight[v] }

// EdgeWeight returns the weight of edge e.
func (h *Hypergraph) EdgeWeight(e int32) int64 { return h.edgeWeight[e] }

// EdgeSize returns the number of pins of edge e.
func (h *Hypergraph) EdgeSize(e int32) int { return int(h.eptr[e+1] - h.eptr[e]) }

// Degree returns the number of edges incident to v.
func (h *Hypergraph) Degree(v int32) int { return int(h.vptr[v+1] - h.vptr[v]) }

// TotalVertexWeight returns the sum of all vertex weights.
func (h *Hypergraph) TotalVertexWeight() int64 { return h.totalVertexWeight }

// MaxVertexWeight returns the largest single vertex weight.
func (h *Hypergraph) MaxVertexWeight() int64 { return h.maxVertexWeight }

// MaxEdgeSize returns the largest net size.
func (h *Hypergraph) MaxEdgeSize() int { return h.maxEdgeSize }

// MaxWeightedDegree returns max over vertices of the sum of incident edge
// weights. This bounds the absolute value of any FM gain and therefore sizes
// the gain bucket array.
func (h *Hypergraph) MaxWeightedDegree() int64 {
	var best int64
	for v := 0; v < h.NumVertices(); v++ {
		var s int64
		for _, e := range h.IncidentEdges(int32(v)) {
			s += h.edgeWeight[e]
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Validate checks structural invariants: monotone CSR offsets, pin indices
// in range, cross-consistency between the two adjacency directions, and
// positive weights. It is used by tests and by the netlist parsers.
func (h *Hypergraph) Validate() error {
	nv, ne := h.NumVertices(), h.NumEdges()
	if len(h.eptr) != ne+1 || len(h.vptr) != nv+1 {
		return errors.New("hypergraph: CSR offset arrays have wrong length")
	}
	if h.eptr[0] != 0 || h.vptr[0] != 0 {
		return errors.New("hypergraph: CSR offsets must start at 0")
	}
	for e := 0; e < ne; e++ {
		if h.eptr[e+1] < h.eptr[e] {
			return fmt.Errorf("hypergraph: eptr not monotone at edge %d", e)
		}
		if h.edgeWeight[e] <= 0 {
			return fmt.Errorf("hypergraph: edge %d has non-positive weight", e)
		}
	}
	for v := 0; v < nv; v++ {
		if h.vptr[v+1] < h.vptr[v] {
			return fmt.Errorf("hypergraph: vptr not monotone at vertex %d", v)
		}
		if h.vertexWeight[v] < 0 {
			return fmt.Errorf("hypergraph: vertex %d has negative weight", v)
		}
	}
	if int(h.eptr[ne]) != len(h.eind) {
		return errors.New("hypergraph: eptr end does not match eind length")
	}
	if int(h.vptr[nv]) != len(h.vind) {
		return errors.New("hypergraph: vptr end does not match vind length")
	}
	for _, p := range h.eind {
		if p < 0 || int(p) >= nv {
			return fmt.Errorf("hypergraph: pin vertex %d out of range", p)
		}
	}
	for _, e := range h.vind {
		if e < 0 || int(e) >= ne {
			return fmt.Errorf("hypergraph: incident edge %d out of range", e)
		}
	}
	// Cross-consistency: count incidences both ways.
	if len(h.eind) != len(h.vind) {
		return errors.New("hypergraph: pin count mismatch between directions")
	}
	seen := make(map[[2]int32]int, len(h.eind))
	for e := 0; e < ne; e++ {
		for _, v := range h.Pins(int32(e)) {
			seen[[2]int32{int32(e), v}]++
		}
	}
	for v := 0; v < nv; v++ {
		for _, e := range h.IncidentEdges(int32(v)) {
			seen[[2]int32{e, int32(v)}]--
		}
	}
	for k, c := range seen {
		if c != 0 {
			return fmt.Errorf("hypergraph: incidence (edge %d, vertex %d) inconsistent between directions", k[0], k[1])
		}
	}
	return nil
}

// Builder accumulates vertices and nets and produces an immutable
// Hypergraph. Pins of a net are deduplicated; nets that end up with fewer
// than two distinct pins are dropped (they can never be cut).
type Builder struct {
	Name          string
	vertexWeights []int64
	edgeWeights   []int64
	pins          [][]int32
	KeepSingleton bool // retain nets with <2 pins (parsers may want exact counts)
}

// NewBuilder returns a Builder with capacity hints.
func NewBuilder(vertexHint, edgeHint int) *Builder {
	return &Builder{
		vertexWeights: make([]int64, 0, vertexHint),
		edgeWeights:   make([]int64, 0, edgeHint),
		pins:          make([][]int32, 0, edgeHint),
	}
}

// AddVertex appends a vertex with the given weight and returns its index.
func (b *Builder) AddVertex(weight int64) int32 {
	b.vertexWeights = append(b.vertexWeights, weight)
	return int32(len(b.vertexWeights) - 1)
}

// AddVertices appends n vertices of uniform weight and returns the index of
// the first.
func (b *Builder) AddVertices(n int, weight int64) int32 {
	first := int32(len(b.vertexWeights))
	for i := 0; i < n; i++ {
		b.vertexWeights = append(b.vertexWeights, weight)
	}
	return first
}

// SetVertexWeight overrides the weight of an existing vertex.
func (b *Builder) SetVertexWeight(v int32, weight int64) { b.vertexWeights[v] = weight }

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.vertexWeights) }

// AddEdge appends a net with the given weight and pins and returns its index.
// The pin slice is copied.
func (b *Builder) AddEdge(weight int64, pins ...int32) int32 {
	cp := make([]int32, len(pins))
	copy(cp, pins)
	b.edgeWeights = append(b.edgeWeights, weight)
	b.pins = append(b.pins, cp)
	return int32(len(b.edgeWeights) - 1)
}

// Build validates the accumulated data and produces the CSR hypergraph.
func (b *Builder) Build() (*Hypergraph, error) {
	nv := len(b.vertexWeights)
	for v, w := range b.vertexWeights {
		if w < 0 {
			return nil, fmt.Errorf("hypergraph: vertex %d has negative weight %d", v, w)
		}
	}
	for e, ps := range b.pins {
		for _, p := range ps {
			if p < 0 || int(p) >= nv {
				return nil, fmt.Errorf("hypergraph: net %d references vertex %d outside [0,%d)", e, p, nv)
			}
		}
		if b.edgeWeights[e] <= 0 {
			return nil, fmt.Errorf("hypergraph: net %d has non-positive weight %d", e, b.edgeWeights[e])
		}
	}

	// Deduplicate pins per net; drop degenerate nets unless KeepSingleton.
	type net struct {
		w    int64
		pins []int32
	}
	nets := make([]net, 0, len(b.pins))
	for e, ps := range b.pins {
		uniq := dedupPins(ps)
		if len(uniq) < 2 && !b.KeepSingleton {
			continue
		}
		nets = append(nets, net{w: b.edgeWeights[e], pins: uniq})
	}

	h := &Hypergraph{Name: b.Name}
	h.vertexWeight = make([]int64, nv)
	copy(h.vertexWeight, b.vertexWeights)
	h.edgeWeight = make([]int64, len(nets))
	h.eptr = make([]int32, len(nets)+1)
	totalPins := 0
	for _, n := range nets {
		totalPins += len(n.pins)
	}
	h.eind = make([]int32, 0, totalPins)
	for e, n := range nets {
		h.edgeWeight[e] = n.w
		h.eind = append(h.eind, n.pins...)
		h.eptr[e+1] = int32(len(h.eind))
		if len(n.pins) > h.maxEdgeSize {
			h.maxEdgeSize = len(n.pins)
		}
	}

	// Build vertex -> edges via counting sort.
	h.vptr = make([]int32, nv+1)
	for _, v := range h.eind {
		h.vptr[v+1]++
	}
	for v := 0; v < nv; v++ {
		h.vptr[v+1] += h.vptr[v]
	}
	h.vind = make([]int32, len(h.eind))
	cursor := make([]int32, nv)
	for e := range nets {
		for _, v := range h.Pins(int32(e)) {
			h.vind[h.vptr[v]+cursor[v]] = int32(e)
			cursor[v]++
		}
	}

	for _, w := range h.vertexWeight {
		h.totalVertexWeight += w
		if w > h.maxVertexWeight {
			h.maxVertexWeight = w
		}
	}
	return h, nil
}

// dedupPins returns the distinct values of ps, sorted ascending.
func dedupPins(ps []int32) []int32 {
	uniq := make([]int32, len(ps))
	copy(uniq, ps)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	out := uniq[:0]
	for i, p := range uniq {
		if i == 0 || p != uniq[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// MustBuild is Build that panics on error; for tests and generators whose
// inputs are constructed to be valid.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}
