package hypergraph

import (
	"fmt"
	"strings"
)

// Stats summarizes the "salient attributes of real-world inputs" the paper
// lists in §2.1: size, sparsity, average vertex degree, average net size,
// presence of a few extremely large nets, and wide variation in vertex
// weights. cmd/hgstats prints these for any instance.
type Stats struct {
	Name     string
	Vertices int
	Edges    int
	Pins     int

	AvgDegree  float64
	MaxDegree  int
	AvgNetSize float64
	MaxNetSize int

	TotalVertexWeight int64
	MaxVertexWeight   int64
	MinVertexWeight   int64
	// WeightSkew is MaxVertexWeight / mean vertex weight; large values signal
	// macro cells, the instances on which CLIP corking manifests.
	WeightSkew float64

	// NetSizeHist counts nets by size bucket: 2, 3, 4, 5-10, 11-100, >100.
	NetSizeHist [6]int
	// LargeNets is the number of nets spanning more than 1% of all vertices
	// (clock/reset-like nets).
	LargeNets int
}

// ComputeStats derives Stats for h.
func ComputeStats(h *Hypergraph) Stats {
	s := Stats{
		Name:              h.Name,
		Vertices:          h.NumVertices(),
		Edges:             h.NumEdges(),
		Pins:              h.NumPins(),
		TotalVertexWeight: h.TotalVertexWeight(),
		MaxVertexWeight:   h.MaxVertexWeight(),
		MaxNetSize:        h.MaxEdgeSize(),
	}
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Pins) / float64(s.Vertices)
	}
	if s.Edges > 0 {
		s.AvgNetSize = float64(s.Pins) / float64(s.Edges)
	}
	s.MinVertexWeight = s.MaxVertexWeight
	for v := 0; v < s.Vertices; v++ {
		if d := h.Degree(int32(v)); d > s.MaxDegree {
			s.MaxDegree = d
		}
		if w := h.VertexWeight(int32(v)); w < s.MinVertexWeight {
			s.MinVertexWeight = w
		}
	}
	if s.Vertices > 0 && s.TotalVertexWeight > 0 {
		mean := float64(s.TotalVertexWeight) / float64(s.Vertices)
		s.WeightSkew = float64(s.MaxVertexWeight) / mean
	}
	bigThreshold := s.Vertices / 100
	for e := 0; e < s.Edges; e++ {
		sz := h.EdgeSize(int32(e))
		switch {
		case sz <= 2:
			s.NetSizeHist[0]++
		case sz == 3:
			s.NetSizeHist[1]++
		case sz == 4:
			s.NetSizeHist[2]++
		case sz <= 10:
			s.NetSizeHist[3]++
		case sz <= 100:
			s.NetSizeHist[4]++
		default:
			s.NetSizeHist[5]++
		}
		if bigThreshold > 0 && sz > bigThreshold {
			s.LargeNets++
		}
	}
	return s
}

// String renders the statistics as a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance %s\n", s.Name)
	fmt.Fprintf(&b, "  vertices %d  nets %d  pins %d\n", s.Vertices, s.Edges, s.Pins)
	fmt.Fprintf(&b, "  avg degree %.2f (max %d)  avg net size %.2f (max %d)\n",
		s.AvgDegree, s.MaxDegree, s.AvgNetSize, s.MaxNetSize)
	fmt.Fprintf(&b, "  vertex weight: total %d  min %d  max %d  skew %.1fx\n",
		s.TotalVertexWeight, s.MinVertexWeight, s.MaxVertexWeight, s.WeightSkew)
	fmt.Fprintf(&b, "  net sizes: 2:%d 3:%d 4:%d 5-10:%d 11-100:%d >100:%d  large(>1%%V):%d\n",
		s.NetSizeHist[0], s.NetSizeHist[1], s.NetSizeHist[2],
		s.NetSizeHist[3], s.NetSizeHist[4], s.NetSizeHist[5], s.LargeNets)
	return b.String()
}

// Contract builds the coarser hypergraph induced by mapping each vertex v to
// cluster clusterOf[v] in [0, numClusters). Cluster weights are the sums of
// member weights. Each net is projected onto clusters; nets reduced to a
// single cluster disappear, and parallel nets (identical projected pin sets)
// are merged with their weights summed — the standard multilevel contraction
// used by hMETIS-style partitioners.
//
// The second return value maps each coarse edge back to one representative
// fine edge (the first fine net that produced it), which is useful for
// debugging and for tests that check cut preservation.
func (h *Hypergraph) Contract(clusterOf []int32, numClusters int) (*Hypergraph, []int32) {
	if len(clusterOf) != h.NumVertices() {
		panic("hypergraph: Contract cluster map has wrong length")
	}
	coarse := &Hypergraph{Name: h.Name}
	coarse.vertexWeight = make([]int64, numClusters)
	for v, c := range clusterOf {
		if c < 0 || int(c) >= numClusters {
			panic("hypergraph: Contract cluster index out of range")
		}
		coarse.vertexWeight[c] += h.vertexWeight[v]
	}

	type coarseNet struct {
		pins   []int32
		weight int64
		rep    int32
	}
	// Dedup identical projected nets by hashing their sorted pin lists.
	byHash := make(map[uint64][]int, h.NumEdges())
	nets := make([]coarseNet, 0, h.NumEdges())
	scratch := make([]int32, 0, 64)

	for e := 0; e < h.NumEdges(); e++ {
		scratch = scratch[:0]
		for _, v := range h.Pins(int32(e)) {
			scratch = append(scratch, clusterOf[v])
		}
		uniq := dedupPins(scratch)
		if len(uniq) < 2 {
			continue
		}
		hsh := hashPins(uniq)
		merged := false
		for _, idx := range byHash[hsh] {
			if pinsEqual(nets[idx].pins, uniq) {
				nets[idx].weight += h.edgeWeight[e]
				merged = true
				break
			}
		}
		if !merged {
			cp := make([]int32, len(uniq))
			copy(cp, uniq)
			nets = append(nets, coarseNet{pins: cp, weight: h.edgeWeight[e], rep: int32(e)})
			byHash[hsh] = append(byHash[hsh], len(nets)-1)
		}
	}

	// Assemble CSR for the coarse graph.
	coarse.edgeWeight = make([]int64, len(nets))
	coarse.eptr = make([]int32, len(nets)+1)
	total := 0
	for _, n := range nets {
		total += len(n.pins)
	}
	coarse.eind = make([]int32, 0, total)
	repOf := make([]int32, len(nets))
	for e, n := range nets {
		coarse.edgeWeight[e] = n.weight
		coarse.eind = append(coarse.eind, n.pins...)
		coarse.eptr[e+1] = int32(len(coarse.eind))
		repOf[e] = n.rep
		if len(n.pins) > coarse.maxEdgeSize {
			coarse.maxEdgeSize = len(n.pins)
		}
	}
	coarse.vptr = make([]int32, numClusters+1)
	for _, v := range coarse.eind {
		coarse.vptr[v+1]++
	}
	for v := 0; v < numClusters; v++ {
		coarse.vptr[v+1] += coarse.vptr[v]
	}
	coarse.vind = make([]int32, len(coarse.eind))
	cursor := make([]int32, numClusters)
	for e := range nets {
		for _, v := range coarse.Pins(int32(e)) {
			coarse.vind[coarse.vptr[v]+cursor[v]] = int32(e)
			cursor[v]++
		}
	}
	for _, w := range coarse.vertexWeight {
		coarse.totalVertexWeight += w
		if w > coarse.maxVertexWeight {
			coarse.maxVertexWeight = w
		}
	}
	return coarse, repOf
}

// hashPins is an FNV-1a hash over a sorted pin list.
func hashPins(pins []int32) uint64 {
	var hsh uint64 = 1469598103934665603
	for _, p := range pins {
		for i := 0; i < 4; i++ {
			hsh ^= uint64(byte(p >> (8 * i)))
			hsh *= 1099511628211
		}
	}
	return hsh
}

func pinsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedPinsCheck reports whether each net's pins are sorted ascending; the
// Builder guarantees this and Contract relies on it for equality checks.
func (h *Hypergraph) sortedPinsCheck() bool {
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.Pins(int32(e))
		for i := 1; i < len(pins); i++ {
			if pins[i] < pins[i-1] {
				return false
			}
		}
	}
	return true
}
