package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"hgpart/internal/perf"
)

// Metrics is the service's observability surface, rendered in Prometheus
// text exposition format at /metrics. It is hand-rolled — the repository
// adds no dependencies — and deliberately tiny: counters, gauges read at
// scrape time, and ns-per-work-unit quantiles from a bounded perf.Sampler
// window (the serving-time analogue of hgbench's ns/move).
type reqKey struct {
	route string
	code  int
}

// armKey labels one portfolio arm-win counter series.
type armKey struct {
	bucket string
	arm    string
}

type Metrics struct {
	mu            sync.Mutex
	requests      map[reqKey]int64   //hglint:guardedby mu
	submitted     int64              //hglint:guardedby mu
	finished      map[JobState]int64 //hglint:guardedby mu
	workUnits     int64              //hglint:guardedby mu
	watchdogKicks int64              //hglint:guardedby mu
	requeued      int64              //hglint:guardedby mu

	// cluster/peering counters; zero (and harmless) on single-node daemons.
	peerHits       int64 //hglint:guardedby mu
	dispatches     int64 //hglint:guardedby mu
	failovers      int64 //hglint:guardedby mu
	steals         int64 //hglint:guardedby mu
	localFallbacks int64 //hglint:guardedby mu

	// portfolio-mode counters: races run, outcome-store prediction hits, and
	// wins per (feature bucket, arm) pair. All advisory observability — the
	// store never influences results (DESIGN.md §15).
	portfolioRaces     int64            //hglint:guardedby mu
	portfolioStoreHits int64            //hglint:guardedby mu
	portfolioWins      map[armKey]int64 //hglint:guardedby mu

	// net-chaos / RPC-integrity counters (DESIGN.md §16): faults the chaos
	// transport injected by kind, internal responses that failed the sha256
	// envelope by source ("peer" or "dispatch"), and jobs abandoned because
	// the coordinator's propagated deadline passed.
	netFaults         map[string]int64 //hglint:guardedby mu
	integrityFailures map[string]int64 //hglint:guardedby mu
	deadlineAbandons  int64            //hglint:guardedby mu

	// nsPerWork samples wall-nanoseconds per deterministic work unit for
	// every executed run; quantiles expose serving-speed drift the same way
	// hgbench's ns/move exposes benchmark drift.
	nsPerWork *perf.Sampler
}

// NewMetrics builds the registry. window bounds the ns/work sampler.
func NewMetrics(window int) *Metrics {
	return &Metrics{
		requests:          make(map[reqKey]int64),
		finished:          make(map[JobState]int64),
		portfolioWins:     make(map[armKey]int64),
		netFaults:         make(map[string]int64),
		integrityFailures: make(map[string]int64),
		nsPerWork:         perf.NewSampler(window),
	}
}

// ObserveRequest counts one HTTP request by route label and status code.
func (m *Metrics) ObserveRequest(route string, code int) {
	m.mu.Lock()
	m.requests[reqKey{route, code}]++
	m.mu.Unlock()
}

// JobSubmitted counts one accepted job.
func (m *Metrics) JobSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// JobFinished counts one terminal job transition.
func (m *Metrics) JobFinished(state JobState) {
	m.mu.Lock()
	m.finished[state]++
	m.mu.Unlock()
}

// WatchdogKick counts one watchdog cancellation of a stalled run.
func (m *Metrics) WatchdogKick() {
	m.mu.Lock()
	m.watchdogKicks++
	m.mu.Unlock()
}

// JobRequeued counts one watchdog-driven requeue of a stuck job.
func (m *Metrics) JobRequeued() {
	m.mu.Lock()
	m.requeued++
	m.mu.Unlock()
}

// PeerHit counts one report served from a sibling worker's cache.
func (m *Metrics) PeerHit() {
	m.mu.Lock()
	m.peerHits++
	m.mu.Unlock()
}

// ClusterDispatch counts one job dispatch RPC to a worker.
func (m *Metrics) ClusterDispatch() {
	m.mu.Lock()
	m.dispatches++
	m.mu.Unlock()
}

// ClusterFailover counts one job reassigned off a dead worker.
func (m *Metrics) ClusterFailover() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

// ClusterSteal counts one queued job stolen by an idle worker's dispatcher.
func (m *Metrics) ClusterSteal() {
	m.mu.Lock()
	m.steals++
	m.mu.Unlock()
}

// ClusterLocalFallback counts one job degraded to a local compute because
// no healthy worker remained (or a job bounced too often).
func (m *Metrics) ClusterLocalFallback() {
	m.mu.Lock()
	m.localFallbacks++
	m.mu.Unlock()
}

// NetFaultInjected counts one fault the chaos transport injected, by the
// fault's spec-grammar name ("refused", "corrupt", ...).
func (m *Metrics) NetFaultInjected(fault string) {
	m.mu.Lock()
	m.netFaults[fault]++
	m.mu.Unlock()
}

// IntegrityFailure counts one internal response whose body failed the
// sha256 envelope check; source is "peer" or "dispatch".
func (m *Metrics) IntegrityFailure(source string) {
	m.mu.Lock()
	m.integrityFailures[source]++
	m.mu.Unlock()
}

// DeadlineAbandon counts one job abandoned because the coordinator's
// propagated X-Hg-Deadline had passed.
func (m *Metrics) DeadlineAbandon() {
	m.mu.Lock()
	m.deadlineAbandons++
	m.mu.Unlock()
}

// PortfolioRace counts one mode=portfolio race: which (bucket, arm) pair
// won, and whether the outcome store's prediction matched the winner.
func (m *Metrics) PortfolioRace(bucket, winner string, storeHit bool) {
	m.mu.Lock()
	m.portfolioRaces++
	if storeHit {
		m.portfolioStoreHits++
	}
	m.portfolioWins[armKey{bucket, winner}]++
	m.mu.Unlock()
}

// ObserveRun records one executed multistart: wall time and deterministic
// work, feeding the ns/work quantiles and the work-unit throughput counter.
func (m *Metrics) ObserveRun(elapsed time.Duration, work int64) {
	m.mu.Lock()
	m.workUnits += work
	m.mu.Unlock()
	if work > 0 {
		m.nsPerWork.Observe(float64(elapsed.Nanoseconds()) / float64(work))
	}
}

// Render writes the exposition text. Gauges that live elsewhere (queue
// depth, running jobs, cache state, readiness) are read through the
// supplied snapshot so Metrics has no back-pointer into the server.
type GaugeSnapshot struct {
	QueueDepth int
	Running    int
	Ready      bool
	Cache      CacheStats
	// ClusterWorkers/ClusterHealthy describe the coordinator's fleet view;
	// both zero on non-coordinator nodes.
	ClusterWorkers int
	ClusterHealthy int
	// Breakers maps worker address to circuit-breaker state (0 closed,
	// 1 half-open, 2 open); nil on non-coordinator nodes.
	Breakers map[string]int
}

// Render writes all metrics in Prometheus text format, keys sorted so
// consecutive scrapes differ only in values.
func (m *Metrics) Render(w io.Writer, g GaugeSnapshot) {
	m.mu.Lock()
	reqKeys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	stateKeys := make([]string, 0, len(m.finished))
	for k := range m.finished {
		stateKeys = append(stateKeys, string(k))
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].route != reqKeys[j].route {
			return reqKeys[i].route < reqKeys[j].route
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	sort.Strings(stateKeys)
	requests := make(map[reqKey]int64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	finished := make(map[string]int64, len(m.finished))
	for k, v := range m.finished {
		finished[string(k)] = v
	}
	submitted, workUnits := m.submitted, m.workUnits
	kicks, requeued := m.watchdogKicks, m.requeued
	peerHits, dispatches := m.peerHits, m.dispatches
	failovers, steals, localFallbacks := m.failovers, m.steals, m.localFallbacks
	portfolioRaces, portfolioStoreHits := m.portfolioRaces, m.portfolioStoreHits
	deadlineAbandons := m.deadlineAbandons
	faultKeys := make([]string, 0, len(m.netFaults))
	for k := range m.netFaults {
		faultKeys = append(faultKeys, k)
	}
	sort.Strings(faultKeys)
	netFaults := make(map[string]int64, len(m.netFaults))
	for k, v := range m.netFaults {
		netFaults[k] = v
	}
	integrityKeys := make([]string, 0, len(m.integrityFailures))
	for k := range m.integrityFailures {
		integrityKeys = append(integrityKeys, k)
	}
	sort.Strings(integrityKeys)
	integrityFailures := make(map[string]int64, len(m.integrityFailures))
	for k, v := range m.integrityFailures {
		integrityFailures[k] = v
	}
	winKeys := make([]armKey, 0, len(m.portfolioWins))
	for k := range m.portfolioWins {
		winKeys = append(winKeys, k)
	}
	sort.Slice(winKeys, func(i, j int) bool {
		if winKeys[i].bucket != winKeys[j].bucket {
			return winKeys[i].bucket < winKeys[j].bucket
		}
		return winKeys[i].arm < winKeys[j].arm
	})
	wins := make(map[armKey]int64, len(m.portfolioWins))
	for k, v := range m.portfolioWins {
		wins[k] = v
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP hgserved_requests_total HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE hgserved_requests_total counter")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "hgserved_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, requests[k])
	}

	fmt.Fprintln(w, "# HELP hgserved_jobs_submitted_total Jobs accepted into the queue.")
	fmt.Fprintln(w, "# TYPE hgserved_jobs_submitted_total counter")
	fmt.Fprintf(w, "hgserved_jobs_submitted_total %d\n", submitted)

	fmt.Fprintln(w, "# HELP hgserved_jobs_finished_total Jobs reaching a terminal state.")
	fmt.Fprintln(w, "# TYPE hgserved_jobs_finished_total counter")
	for _, k := range stateKeys {
		fmt.Fprintf(w, "hgserved_jobs_finished_total{state=%q} %d\n", k, finished[k])
	}

	fmt.Fprintln(w, "# HELP hgserved_watchdog_kicks_total Stalled runs cancelled by the progress watchdog.")
	fmt.Fprintln(w, "# TYPE hgserved_watchdog_kicks_total counter")
	fmt.Fprintf(w, "hgserved_watchdog_kicks_total %d\n", kicks)

	fmt.Fprintln(w, "# HELP hgserved_jobs_requeued_total Stuck jobs requeued by the watchdog for another attempt.")
	fmt.Fprintln(w, "# TYPE hgserved_jobs_requeued_total counter")
	fmt.Fprintf(w, "hgserved_jobs_requeued_total %d\n", requeued)

	fmt.Fprintln(w, "# HELP hgserved_queue_depth Jobs waiting in the priority queue.")
	fmt.Fprintln(w, "# TYPE hgserved_queue_depth gauge")
	fmt.Fprintf(w, "hgserved_queue_depth %d\n", g.QueueDepth)

	fmt.Fprintln(w, "# HELP hgserved_running_jobs Jobs currently executing.")
	fmt.Fprintln(w, "# TYPE hgserved_running_jobs gauge")
	fmt.Fprintf(w, "hgserved_running_jobs %d\n", g.Running)

	fmt.Fprintln(w, "# HELP hgserved_ready Whether the service accepts new work (drain flips to 0).")
	fmt.Fprintln(w, "# TYPE hgserved_ready gauge")
	ready := 0
	if g.Ready {
		ready = 1
	}
	fmt.Fprintf(w, "hgserved_ready %d\n", ready)

	fmt.Fprintln(w, "# HELP hgserved_cache_hits_total Result-cache hits.")
	fmt.Fprintln(w, "# TYPE hgserved_cache_hits_total counter")
	fmt.Fprintf(w, "hgserved_cache_hits_total %d\n", g.Cache.Hits)
	fmt.Fprintln(w, "# HELP hgserved_cache_misses_total Result-cache misses (one per computed report).")
	fmt.Fprintln(w, "# TYPE hgserved_cache_misses_total counter")
	fmt.Fprintf(w, "hgserved_cache_misses_total %d\n", g.Cache.Misses)
	fmt.Fprintln(w, "# HELP hgserved_cache_coalesced_total Requests coalesced onto an in-flight identical job.")
	fmt.Fprintln(w, "# TYPE hgserved_cache_coalesced_total counter")
	fmt.Fprintf(w, "hgserved_cache_coalesced_total %d\n", g.Cache.Coalesced)
	fmt.Fprintln(w, "# HELP hgserved_cache_evictions_total LRU evictions from the result cache.")
	fmt.Fprintln(w, "# TYPE hgserved_cache_evictions_total counter")
	fmt.Fprintf(w, "hgserved_cache_evictions_total %d\n", g.Cache.Evictions)
	fmt.Fprintln(w, "# HELP hgserved_cache_entries Result-cache resident entries.")
	fmt.Fprintln(w, "# TYPE hgserved_cache_entries gauge")
	fmt.Fprintf(w, "hgserved_cache_entries %d\n", g.Cache.Entries)
	fmt.Fprintln(w, "# HELP hgserved_cache_bytes Result-cache resident body bytes.")
	fmt.Fprintln(w, "# TYPE hgserved_cache_bytes gauge")
	fmt.Fprintf(w, "hgserved_cache_bytes %d\n", g.Cache.Bytes)

	fmt.Fprintln(w, "# HELP hgserved_peer_cache_hits_total Reports served from a sibling worker's cache.")
	fmt.Fprintln(w, "# TYPE hgserved_peer_cache_hits_total counter")
	fmt.Fprintf(w, "hgserved_peer_cache_hits_total %d\n", peerHits)

	fmt.Fprintln(w, "# HELP hgserved_cluster_dispatches_total Job dispatch RPCs sent to workers.")
	fmt.Fprintln(w, "# TYPE hgserved_cluster_dispatches_total counter")
	fmt.Fprintf(w, "hgserved_cluster_dispatches_total %d\n", dispatches)

	fmt.Fprintln(w, "# HELP hgserved_cluster_failovers_total Jobs reassigned off a dead worker.")
	fmt.Fprintln(w, "# TYPE hgserved_cluster_failovers_total counter")
	fmt.Fprintf(w, "hgserved_cluster_failovers_total %d\n", failovers)

	fmt.Fprintln(w, "# HELP hgserved_cluster_steals_total Queued jobs stolen by idle workers.")
	fmt.Fprintln(w, "# TYPE hgserved_cluster_steals_total counter")
	fmt.Fprintf(w, "hgserved_cluster_steals_total %d\n", steals)

	fmt.Fprintln(w, "# HELP hgserved_cluster_local_fallbacks_total Jobs degraded to a local compute (no healthy workers).")
	fmt.Fprintln(w, "# TYPE hgserved_cluster_local_fallbacks_total counter")
	fmt.Fprintf(w, "hgserved_cluster_local_fallbacks_total %d\n", localFallbacks)

	fmt.Fprintln(w, "# HELP hgserved_cluster_workers Configured cluster workers (coordinator mode).")
	fmt.Fprintln(w, "# TYPE hgserved_cluster_workers gauge")
	fmt.Fprintf(w, "hgserved_cluster_workers %d\n", g.ClusterWorkers)

	fmt.Fprintln(w, "# HELP hgserved_cluster_workers_healthy Workers currently passing heartbeats.")
	fmt.Fprintln(w, "# TYPE hgserved_cluster_workers_healthy gauge")
	fmt.Fprintf(w, "hgserved_cluster_workers_healthy %d\n", g.ClusterHealthy)

	fmt.Fprintln(w, "# HELP hgserved_net_faults_injected_total Faults injected by the chaos net transport, by fault kind.")
	fmt.Fprintln(w, "# TYPE hgserved_net_faults_injected_total counter")
	for _, k := range faultKeys {
		fmt.Fprintf(w, "hgserved_net_faults_injected_total{fault=%q} %d\n", k, netFaults[k])
	}

	fmt.Fprintln(w, "# HELP hgserved_integrity_failures_total Internal responses failing the sha256 body envelope, by source.")
	fmt.Fprintln(w, "# TYPE hgserved_integrity_failures_total counter")
	for _, k := range integrityKeys {
		fmt.Fprintf(w, "hgserved_integrity_failures_total{source=%q} %d\n", k, integrityFailures[k])
	}

	fmt.Fprintln(w, "# HELP hgserved_breaker_state Per-worker circuit breaker state (0 closed, 1 half-open, 2 open).")
	fmt.Fprintln(w, "# TYPE hgserved_breaker_state gauge")
	breakerKeys := make([]string, 0, len(g.Breakers))
	for k := range g.Breakers {
		breakerKeys = append(breakerKeys, k)
	}
	sort.Strings(breakerKeys)
	for _, k := range breakerKeys {
		fmt.Fprintf(w, "hgserved_breaker_state{worker=%q} %d\n", k, g.Breakers[k])
	}

	fmt.Fprintln(w, "# HELP hgserved_deadline_abandons_total Jobs abandoned because the coordinator's propagated deadline passed.")
	fmt.Fprintln(w, "# TYPE hgserved_deadline_abandons_total counter")
	fmt.Fprintf(w, "hgserved_deadline_abandons_total %d\n", deadlineAbandons)

	fmt.Fprintln(w, "# HELP hgserved_portfolio_races_total Portfolio-mode races run.")
	fmt.Fprintln(w, "# TYPE hgserved_portfolio_races_total counter")
	fmt.Fprintf(w, "hgserved_portfolio_races_total %d\n", portfolioRaces)

	fmt.Fprintln(w, "# HELP hgserved_portfolio_store_hits_total Races where the outcome store predicted the winner.")
	fmt.Fprintln(w, "# TYPE hgserved_portfolio_store_hits_total counter")
	fmt.Fprintf(w, "hgserved_portfolio_store_hits_total %d\n", portfolioStoreHits)

	fmt.Fprintln(w, "# HELP hgserved_portfolio_arm_wins_total Race wins by feature bucket and arm.")
	fmt.Fprintln(w, "# TYPE hgserved_portfolio_arm_wins_total counter")
	for _, k := range winKeys {
		fmt.Fprintf(w, "hgserved_portfolio_arm_wins_total{bucket=%q,arm=%q} %d\n", k.bucket, k.arm, wins[k])
	}

	fmt.Fprintln(w, "# HELP hgserved_work_units_total Deterministic FM work units executed.")
	fmt.Fprintln(w, "# TYPE hgserved_work_units_total counter")
	fmt.Fprintf(w, "hgserved_work_units_total %d\n", workUnits)

	fmt.Fprintln(w, "# HELP hgserved_ns_per_work_unit Wall nanoseconds per deterministic work unit, recent-window quantiles.")
	fmt.Fprintln(w, "# TYPE hgserved_ns_per_work_unit summary")
	qs := m.nsPerWork.Quantiles(0.5, 0.9, 0.99)
	labels := []string{"0.5", "0.9", "0.99"}
	for i, q := range qs {
		if math.IsNaN(q) {
			continue
		}
		fmt.Fprintf(w, "hgserved_ns_per_work_unit{quantile=%q} %g\n", labels[i], q)
	}
	fmt.Fprintf(w, "hgserved_ns_per_work_unit_count %d\n", m.nsPerWork.Count())
}
