package service

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"time"
)

// PeerSet is a worker's view of its sibling nodes' result caches. On a local
// cache miss a worker asks each sibling for the key before computing; reports
// are deterministic and content-addressed, so a sibling's bytes are exactly
// the bytes this node would produce.
//
// Peering is strictly best-effort: each probe has a short timeout and ANY
// failure — connection refused, timeout, non-200, torn body — falls through
// silently to the next sibling and finally to a local compute. A slow or dead
// peer can therefore cost at most len(addrs)*timeout of latency, never an
// error. That is also why lookups deliberately do NOT use chaos.Retry: the
// cheapest correct recovery from a flaky peer is computing locally, not
// waiting out a backoff schedule.
type PeerSet struct {
	addrs   []string
	timeout time.Duration
	// maxBody bounds one probe's response read (default maxPeerBody); a
	// body exceeding it is a miss, never a truncated "hit".
	maxBody int64
	client  *http.Client
	metrics *Metrics
	log     *slog.Logger
}

// maxPeerBody bounds a peer cache response read; reports are small (tens of
// KB) and a misbehaving peer must not balloon the coordinator's memory.
const maxPeerBody = 32 << 20

// NewPeerSet builds the peering client. timeout <= 0 defaults to 250ms.
// transport, when non-nil, replaces http.DefaultTransport — cmd/hgserved
// threads the chaos net transport through here under -net-chaos.
func NewPeerSet(addrs []string, timeout time.Duration, transport http.RoundTripper, metrics *Metrics, log *slog.Logger) *PeerSet {
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	return &PeerSet{
		addrs:   append([]string(nil), addrs...),
		timeout: timeout,
		maxBody: maxPeerBody,
		client:  &http.Client{Transport: transport},
		metrics: metrics,
		log:     log,
	}
}

// Lookup asks each sibling for key in configured order and returns the first
// cached report found. ok=false means every sibling missed, failed, or timed
// out; the caller computes locally. ctx (normally the client request's) also
// bounds the whole sweep, so a caller that has gone away stops probing.
func (p *PeerSet) Lookup(ctx context.Context, key string) ([]byte, bool) {
	for _, addr := range p.addrs {
		if ctx.Err() != nil {
			return nil, false
		}
		body, ok := p.lookupOne(ctx, addr, key)
		if ok {
			p.metrics.PeerHit()
			p.log.Info("peer cache hit", "peer", addr, "key", key[:12])
			return body, true
		}
	}
	return nil, false
}

func (p *PeerSet) lookupOne(ctx context.Context, addr, key string) ([]byte, bool) {
	pctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, "http://"+addr+"/internal/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, false
	}
	// Read one byte past the bound so an oversized body is distinguishable
	// from one that exactly fits — the former is a misbehaving peer and must
	// be a miss, not a silently truncated report.
	body, err := io.ReadAll(io.LimitReader(resp.Body, p.maxBody+1))
	if err != nil || len(body) == 0 {
		return nil, false
	}
	if int64(len(body)) > p.maxBody {
		p.log.Warn("peer cache response exceeds the body bound; ignoring", "peer", addr, "limit", p.maxBody)
		return nil, false
	}
	if !integrityOK(resp.Header, body) {
		p.metrics.IntegrityFailure("peer")
		p.log.Warn("peer cache response failed the sha256 envelope; demoting to miss", "peer", addr, "key", key[:12])
		return nil, false
	}
	return body, true
}
