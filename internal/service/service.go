// Package service implements hgserved, the partitioning-as-a-service
// daemon: a long-running HTTP front end over the repository's evaluation
// machinery. Requests (inline netlists or named synthetic benchmarks) run
// through eval.RunMultistart on a bounded worker pool with per-job
// contexts, wall/work budgets and priority queueing; results are
// deterministic documents (same instance + config + seed ⇒ byte-identical
// report) served from a content-addressed LRU cache with singleflight
// coalescing of duplicate in-flight requests. The daemon exposes live job
// status with best-so-far progress, Prometheus metrics, health/readiness
// probes, structured logs, and a graceful drain that checkpoints running
// jobs through the eval JSONL journal so a restart loses no completed
// starts. See DESIGN.md §10.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"hgpart/internal/chaos"
	"hgpart/internal/eval"
	"hgpart/internal/hypergraph"
	"hgpart/internal/netlist"
	"hgpart/internal/partition"
	"hgpart/internal/report"
)

// Config parameterizes the daemon. The zero value is unusable; use
// DefaultConfig as the base.
type Config struct {
	// Workers is the number of jobs executing concurrently.
	Workers int
	// StartWorkers caps concurrent starts within one job (results are
	// identical at any value — the harness pre-splits seeds).
	StartWorkers int
	// MaxRefineThreads caps a request's refine_threads (results are
	// identical at any positive value — the parallel refiner commits in
	// vertex order). <= 0 leaves requests unclamped.
	MaxRefineThreads int
	// QueueCap bounds the number of queued jobs; submissions beyond it get
	// HTTP 429.
	QueueCap int
	// HistoryCap bounds how many terminal jobs remain queryable.
	HistoryCap int
	// MaxRetries reseeds a panicking start up to this many times.
	MaxRetries int
	// CacheEntries / CacheBytes bound the result cache (either <= 0
	// disables that bound).
	CacheEntries int
	CacheBytes   int64
	// CheckpointDir, when non-empty, journals every job's completed starts
	// there so a drain (or crash) loses nothing; resubmitting an identical
	// request resumes the journal.
	CheckpointDir string
	// MaxBodyBytes bounds request bodies (inline netlists). Oversized bodies
	// get a structured HTTP 413 naming the configured limit.
	MaxBodyBytes int64
	// MaxVertices and MaxPins cap admitted instances; a request resolving to
	// a larger hypergraph is rejected with HTTP 422 before any work is
	// queued. 0 disables the respective cap.
	MaxVertices int
	MaxPins     int
	// MetricsWindow bounds the ns/work-unit quantile sampler.
	MetricsWindow int
	// StuckAfter is how long a running job may go without work progress (no
	// start beginning or finishing) before the watchdog cancels it for
	// requeue; <= 0 disables the watchdog.
	StuckAfter time.Duration
	// WatchdogInterval is how often the watchdog scans running jobs; <= 0
	// means 5s.
	WatchdogInterval time.Duration
	// MaxRequeues bounds how many times the watchdog requeues one stuck job
	// before failing it with HTTP 500.
	MaxRequeues int
	// FS is the filesystem checkpoint journals live on. Nil means the real
	// filesystem; cmd/hgserved installs a chaos.FaultFS under -chaos so
	// crash-consistency experiments exercise the same code paths production
	// uses.
	FS chaos.FS
	// Transport, when non-nil, replaces http.DefaultTransport for every
	// inter-node client — cluster dispatch, peer cache probes, heartbeat
	// probers. cmd/hgserved installs a chaos.Transport here under -net-chaos
	// so degraded-network experiments exercise the exact RPC paths
	// production uses (DESIGN.md §16).
	Transport http.RoundTripper
	// Peers lists sibling worker addresses ("host:port") whose result caches
	// are consulted on a local miss before computing. Reports are
	// content-addressed and deterministic, so a peer's bytes are exactly the
	// bytes this node would produce. Empty disables peering.
	Peers []string
	// PeerTimeout bounds each sibling cache probe; <= 0 means 250ms.
	PeerTimeout time.Duration
	// Cluster, when it names workers, puts this node in coordinator mode:
	// requests route to the worker fleet by consistent hashing on the cache
	// key (with heartbeat failover, work-stealing and single-node
	// degradation) instead of running on the local pool. See DESIGN.md §12.
	Cluster ClusterConfig
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger

	// testFactory, when non-nil, replaces buildFactory (tests only: it lets
	// the watchdog suite wedge a start deterministically).
	testFactory func(PartitionRequest, *hypergraph.Hypergraph, partition.Balance) func() eval.Heuristic
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		Workers:          2,
		StartWorkers:     2,
		MaxRefineThreads: 8,
		QueueCap:         256,
		HistoryCap:       512,
		MaxRetries:       1,
		CacheEntries:     4096,
		CacheBytes:       64 << 20,
		MaxBodyBytes:     64 << 20,
		MaxVertices:      2_000_000,
		MaxPins:          20_000_000,
		MetricsWindow:    1024,
		StuckAfter:       2 * time.Minute,
		WatchdogInterval: 5 * time.Second,
		MaxRequeues:      1,
	}
}

// Server is the daemon: job manager, result cache, metrics and HTTP mux.
// In coordinator mode cluster is non-nil and routes work to the fleet; in
// worker mode peers (when configured) probes sibling caches before
// computing. Both nil is the plain single-node daemon.
type Server struct {
	cfg     Config
	log     *slog.Logger
	cache   *Cache
	metrics *Metrics
	manager *Manager
	peers   *PeerSet
	cluster *Coordinator
	mux     *http.ServeMux
	ready   atomic.Bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.StartWorkers < 1 {
		cfg.StartWorkers = 1
	}
	if cfg.MetricsWindow < 1 {
		cfg.MetricsWindow = 1024
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = 5 * time.Second
	}
	if cfg.MaxRequeues < 0 {
		cfg.MaxRequeues = 0
	}
	if cfg.FS == nil {
		cfg.FS = chaos.OS()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		log:     log,
		cache:   NewCache(cfg.CacheEntries, cfg.CacheBytes),
		metrics: NewMetrics(cfg.MetricsWindow),
	}
	s.manager = newManager(cfg, s.cache, s.metrics, log)
	// A chaos transport reports each injected fault into /metrics; wire the
	// hook before any coordinator or peer client can send a request.
	if ct, ok := cfg.Transport.(*chaos.Transport); ok {
		metrics := s.metrics
		ct.SetOnFault(func(r chaos.Rule) { metrics.NetFaultInjected(r.Fault.String()) })
	}
	if len(cfg.Peers) > 0 {
		s.peers = NewPeerSet(cfg.Peers, cfg.PeerTimeout, cfg.Transport, s.metrics, log)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/partition", s.instrument("partition", s.handlePartition))
	s.mux.HandleFunc("POST /v1/trace", s.instrument("trace", s.handleTrace))
	s.mux.HandleFunc("GET /v1/jobs", s.instrument("jobs", s.handleJobs))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job", s.handleJob))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("job_cancel", s.handleJobCancel))
	s.mux.HandleFunc("GET /v1/cluster", s.instrument("cluster", s.handleCluster))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /internal/v1/cache/{key}", s.instrument("peer_cache", s.handlePeerCache))
	if len(cfg.Cluster.Workers) > 0 {
		s.cluster = newCoordinator(cfg.Cluster, s)
	}
	s.ready.Store(true)
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready reports whether the server accepts new work.
func (s *Server) Ready() bool { return s.ready.Load() }

// CacheStats snapshots the result cache's counters (tests and ops tooling).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Drain gracefully stops the server's work: readiness flips false first (so
// load balancers stop routing here while the listener still answers), new
// submissions are rejected, queued jobs are cancelled, running jobs are
// interrupted with their completed starts checkpointed. It returns when all
// workers are idle or ctx expires. The HTTP listener itself is the
// caller's to close — after Drain returns, per the SIGTERM sequence in
// cmd/hgserved.
func (s *Server) Drain(ctx context.Context) error {
	s.ready.Store(false)
	s.log.Info("drain: readiness flipped, stopping job intake")
	if s.cluster != nil {
		s.cluster.Close()
	}
	err := s.manager.Drain(ctx)
	if err != nil {
		s.log.Error("drain: incomplete", "err", err)
	} else {
		s.log.Info("drain: all workers idle")
	}
	return err
}

// Close tears the worker pool down without drain semantics (tests).
func (s *Server) Close() {
	s.ready.Store(false)
	if s.cluster != nil {
		s.cluster.Close()
	}
	s.manager.Close()
}

// statusRecorder captures the response code for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and structured logging.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: 200}
		h(rec, r)
		s.metrics.ObserveRequest(route, rec.code)
		s.log.Info("request", "route", route, "method", r.Method, "path", r.URL.Path,
			"code", rec.code, "elapsed_ms", time.Since(t0).Milliseconds())
	}
}

// errorBody writes a JSON error document. Every shed-load response (503 and
// 429) carries a Retry-After header (delta-seconds) so well-behaved clients
// — chaos.Retry among them — back off for the server's own estimate of the
// pressure window instead of hammering a loaded or restarting instance.
func errorBody(w http.ResponseWriter, code int, msg string) {
	errorBodyFields(w, code, msg, nil)
}

// errorBodyFields is errorBody with extra machine-readable fields alongside
// "error" — e.g. the configured limit a request exceeded.
func errorBodyFields(w http.ResponseWriter, code int, msg string, fields map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	doc := map[string]any{"error": msg}
	for k, v := range fields {
		doc[k] = v
	}
	_ = json.NewEncoder(w).Encode(doc)
}

// decodeRequest reads and decodes a PartitionRequest body under the
// configured byte limit, writing the structured error response itself on
// failure. An oversized body gets 413 with the configured limit; malformed
// JSON gets 400.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (PartitionRequest, bool) {
	var req PartitionRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			errorBodyFields(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the configured limit of %d bytes", s.cfg.MaxBodyBytes),
				map[string]any{"limit_bytes": s.cfg.MaxBodyBytes})
			return req, false
		}
		errorBody(w, http.StatusBadRequest, "decode request: "+err.Error())
		return req, false
	}
	return req, true
}

// admitInstance enforces the resolved-instance size caps, writing the 422
// itself when the instance is too large to serve.
func (s *Server) admitInstance(w http.ResponseWriter, h *hypergraph.Hypergraph) bool {
	if s.cfg.MaxVertices > 0 && h.NumVertices() > s.cfg.MaxVertices {
		errorBodyFields(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("instance has %d vertices, above the configured cap of %d", h.NumVertices(), s.cfg.MaxVertices),
			map[string]any{"vertices": h.NumVertices(), "limit_vertices": s.cfg.MaxVertices})
		return false
	}
	if s.cfg.MaxPins > 0 && h.NumPins() > s.cfg.MaxPins {
		errorBodyFields(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("instance has %d pins, above the configured cap of %d", h.NumPins(), s.cfg.MaxPins),
			map[string]any{"pins": h.NumPins(), "limit_pins": s.cfg.MaxPins})
		return false
	}
	return true
}

// handlePartition is the main entry point. Flow: decode → validate →
// resolve instance → cache lookup → singleflight submit → (sync) wait.
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		errorBody(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	req.normalize()
	if err := req.validate(); err != nil {
		errorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	// A coordinator stamps dispatches with its absolute deadline; honoring
	// it here means a worker never computes for a coordinator that has
	// already failed over (the journal keeps completed starts either way).
	deadline, hasDeadline, derr := parseDeadline(r.Header)
	if derr != nil {
		errorBody(w, http.StatusBadRequest, derr.Error())
		return
	}
	if hasDeadline && !time.Now().Before(deadline) {
		s.metrics.DeadlineAbandon()
		errorBody(w, http.StatusGatewayTimeout,
			"propagated coordinator deadline already passed; job abandoned before start")
		return
	}
	h, instName, err := req.resolveInstance()
	if err != nil {
		var pe *netlist.ParseError
		if errors.As(err, &pe) {
			errorBody(w, http.StatusBadRequest,
				fmt.Sprintf("%s instance rejected: %s", pe.Format, pe.Error()))
			return
		}
		var re *RequestError
		if errors.As(err, &re) {
			errorBody(w, http.StatusBadRequest, re.Error())
			return
		}
		errorBody(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !s.admitInstance(w, h) {
		return
	}
	instHash := instanceHash(h)
	key := cacheKey(instHash, &req)

	if cached, ok := s.cache.Get(key); ok {
		s.writeReport(w, cached, "hit", "")
		return
	}

	// Coordinator mode: route into the fleet instead of the local pool.
	if s.cluster != nil {
		s.serveCluster(w, r, req, h, instName, instHash, key)
		return
	}

	// Worker mode: a sibling may already hold these exact bytes. Any peer
	// failure falls through to a local compute.
	if s.peers != nil {
		if body, ok := s.peers.Lookup(r.Context(), key); ok {
			s.cache.Put(key, body)
			s.writeReport(w, body, "peer", "")
			return
		}
	}

	job, coalesced, err := s.manager.Submit(req, h, instName, instHash, key)
	switch {
	case errors.Is(err, errDraining):
		errorBody(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, errQueueFull):
		errorBody(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		errorBody(w, http.StatusInternalServerError, err.Error())
		return
	}
	if coalesced {
		s.cache.Coalesced()
	} else {
		s.cache.Miss()
	}

	if req.Async {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Hgserved-Cache", flightLabel(coalesced))
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"job": job.ID, "cache_key": key, "status": "/v1/jobs/" + job.ID,
		})
		return
	}

	var abandon <-chan time.Time
	if hasDeadline {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		abandon = timer.C
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// The client went away; the job keeps running and will fill the
		// cache for the next asker.
		errorBody(w, 499, "client closed request; job "+job.ID+" continues")
		return
	case <-abandon:
		// Unlike a vanished client, a passed deadline cancels the compute:
		// nobody is waiting for these bytes, and the redispatch resumes from
		// the job's journal instead of re-earning the completed starts.
		s.metrics.DeadlineAbandon()
		s.manager.Cancel(job.ID)
		errorBody(w, http.StatusGatewayTimeout,
			"propagated coordinator deadline passed; job "+job.ID+" abandoned (completed starts stay journaled)")
		return
	}
	code, reportBytes, errMsg := job.Result()
	if code != http.StatusOK {
		errorBody(w, code, errMsg)
		return
	}
	s.writeReport(w, reportBytes, flightLabel(coalesced), job.ID)
}

func flightLabel(coalesced bool) string {
	if coalesced {
		return "coalesced"
	}
	return "miss"
}

// serveCluster is handlePartition's coordinator-mode tail: submit to the
// Coordinator (singleflight by cache key, like Manager), then either return
// the async handle or wait. A waiting client that goes away detaches with
// 499 while the cluster job keeps running and fills the cache — the same
// waiter discipline as the single-node path.
func (s *Server) serveCluster(w http.ResponseWriter, r *http.Request,
	req PartitionRequest, h *hypergraph.Hypergraph, instName, instHash, key string) {
	cj, coalesced, err := s.cluster.Submit(req, h, instName, instHash, key)
	switch {
	case errors.Is(err, errDraining):
		errorBody(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, errClusterBusy):
		errorBody(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		errorBody(w, http.StatusInternalServerError, err.Error())
		return
	}
	if coalesced {
		s.cache.Coalesced()
	} else {
		s.cache.Miss()
	}

	if req.Async {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Hgserved-Cache", flightLabel(coalesced))
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]string{
			"job": cj.ID, "cache_key": key, "status": "/v1/jobs/" + cj.ID,
		})
		return
	}

	select {
	case <-cj.Done():
	case <-r.Context().Done():
		errorBody(w, 499, "client closed request; job "+cj.ID+" continues")
		return
	}
	code, reportBytes, errMsg := cj.Result()
	if code != http.StatusOK {
		errorBody(w, code, errMsg)
		return
	}
	disposition := flightLabel(coalesced)
	if st := cj.Status(); st.Worker == "local" {
		disposition = "local-fallback"
	}
	s.writeReport(w, reportBytes, disposition, cj.ID)
}

// handleCluster reports the coordinator's fleet view; a non-coordinator
// node answers with its mode so ops tooling can probe any node uniformly.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.cluster == nil {
		mode := "single-node"
		if s.peers != nil {
			mode = "worker"
		}
		_ = json.NewEncoder(w).Encode(ClusterStatus{Mode: mode})
		return
	}
	_ = json.NewEncoder(w).Encode(s.cluster.Status())
}

// handlePeerCache serves sibling cache probes: the raw cached report bytes
// for a key, or 404. Peek leaves this node's own hit accounting untouched.
func (s *Server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cache.Peek(r.PathValue("key"))
	if !ok {
		errorBody(w, http.StatusNotFound, "key not cached")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(integrityHeader, bodySHA(body))
	_, _ = w.Write(body)
}

// writeReport sends the deterministic report bytes verbatim. Cache
// disposition and job id ride in headers so the body stays byte-identical
// across hit, miss and coalesced paths; the sha256 integrity envelope lets
// a coordinator or peer detect bytes corrupted in transit.
func (s *Server) writeReport(w http.ResponseWriter, body []byte, disposition, jobID string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Hgserved-Cache", disposition)
	w.Header().Set(integrityHeader, bodySHA(body))
	if jobID != "" {
		w.Header().Set("X-Hgserved-Job", jobID)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.cluster != nil {
		if cj, ok := s.cluster.Job(id); ok {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(cj.Status())
			return
		}
	}
	j, ok := s.manager.Job(id)
	if !ok {
		errorBody(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(j.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.manager.Job(id); !ok {
		errorBody(w, http.StatusNotFound, "no such job")
		return
	}
	if !s.manager.Cancel(id) {
		errorBody(w, http.StatusConflict, "job already terminal")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"job": id, "cancel": "requested"})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.manager.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Report = nil // list view stays light; fetch the job for the report
		st.BSF = nil
		out = append(out, st)
	}
	if s.cluster != nil {
		for _, cj := range s.cluster.Jobs() {
			st := cj.Status()
			st.Report = nil
			out = append(out, st)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleStats renders a human-readable service summary using the
// repository's report tables.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	t := report.NewTable("hgserved", "quantity", "value")
	t.AddRow("queue depth", fmt.Sprint(s.manager.QueueDepth()))
	t.AddRow("running jobs", fmt.Sprint(s.manager.Running()))
	t.AddRow("cache entries", fmt.Sprint(cs.Entries))
	t.AddRow("cache bytes", fmt.Sprint(cs.Bytes))
	t.AddRow("cache hits", fmt.Sprint(cs.Hits))
	t.AddRow("cache misses", fmt.Sprint(cs.Misses))
	ratio := 0.0
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		ratio = float64(cs.Hits) / float64(lookups)
	}
	t.AddRow("cache hit ratio", fmt.Sprintf("%.3f", ratio))
	t.AddRow("coalesced", fmt.Sprint(cs.Coalesced))
	t.AddRow("evictions", fmt.Sprint(cs.Evictions))
	t.AddRow("ready", fmt.Sprint(s.ready.Load()))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	t.Render(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g := GaugeSnapshot{
		QueueDepth: s.manager.QueueDepth(),
		Running:    s.manager.Running(),
		Ready:      s.ready.Load(),
		Cache:      s.cache.Stats(),
	}
	if s.cluster != nil {
		g.ClusterHealthy, g.ClusterWorkers = s.cluster.healthyCount()
		g.Breakers = s.cluster.breakerStates()
	}
	s.metrics.Render(w, g)
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: flips to 503 the moment a drain begins, while
// the listener is still up — the load balancer's cue to route elsewhere.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
