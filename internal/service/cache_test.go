package service

import (
	"container/heap"
	"fmt"
	"testing"
)

func TestCacheLRUEntryBound(t *testing.T) {
	c := NewCache(3, 0)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 survived past the entry bound")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d evicted though recent", i)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want 3 entries / 1 eviction", st)
	}

	// Touching k1 makes k2 the LRU victim.
	c.Get("k1")
	c.Put("k4", []byte{4})
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 survived though least recently used")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("recently touched k1 evicted")
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(0, 10)
	c.Put("a", make([]byte, 6))
	c.Put("b", make([]byte, 4))
	if st := c.Stats(); st.Bytes != 10 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 10 bytes / 2 entries", st)
	}
	c.Put("c", make([]byte, 5)) // must evict "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived past the byte bound")
	}
	if st := c.Stats(); st.Bytes != 9 || st.Entries != 2 {
		t.Fatalf("stats after eviction %+v, want 9 bytes / 2 entries", st)
	}

	// A single body over the budget is not cached at all.
	c.Put("huge", make([]byte, 11))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized body cached")
	}

	// In-place update adjusts the byte accounting.
	c.Put("b", make([]byte, 1))
	if st := c.Stats(); st.Bytes != 6 {
		t.Fatalf("bytes %d after shrink, want 6", st.Bytes)
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewCache(8, 0)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	c.Miss()
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Coalesced()
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 1 {
		t.Fatalf("counters %+v, want 1/1/1", st)
	}
}

func TestJobPQOrdering(t *testing.T) {
	// Higher priority first; FIFO within a priority level.
	mkjob := func(seq int64, prio int) *Job {
		return &Job{seq: seq, req: PartitionRequest{Priority: prio}}
	}
	q := jobPQ{mkjob(1, 0), mkjob(2, 5), mkjob(3, 0), mkjob(4, 5)}
	order := []int64{}
	heap.Init(&q)
	for len(q) > 0 {
		order = append(order, heap.Pop(&q).(*Job).seq)
	}
	want := []int64{2, 4, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}
