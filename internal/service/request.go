package service

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/netlist"
	"hgpart/internal/portfolio"
)

// PartitionRequest is the POST /v1/partition body. Exactly one instance
// source must be set: a named synthetic benchmark ("ibm01".."ibm18" or
// "mcnc:<name>"), an inline hMETIS .hgr text, or an inline ISPD98 .netD
// text (with optional .are).
type PartitionRequest struct {
	// Benchmark names a bundled synthetic instance: "ibmNN" or "mcnc:<name>".
	Benchmark string `json:"benchmark,omitempty"`
	// Scale downsizes a benchmark spec, in (0, 1]; default 1.
	Scale float64 `json:"scale,omitempty"`
	// InstanceSeed overrides the benchmark spec's instance-generation seed
	// (0 keeps the profile default).
	InstanceSeed uint64 `json:"instance_seed,omitempty"`
	// HGR is an inline hMETIS-format hypergraph.
	HGR string `json:"hgr,omitempty"`
	// NetD is an inline ISPD98 .netD/.net netlist; Are optionally supplies
	// areas.
	NetD string `json:"netd,omitempty"`
	Are  string `json:"are,omitempty"`
	// Label names an inline instance in reports (default: derived from the
	// instance hash).
	Label string `json:"label,omitempty"`

	// Engine is "ml" (default), "flat" or "clip".
	Engine string `json:"engine,omitempty"`
	// Mode selects the scheduling strategy: "" (fixed engine, the default)
	// or "portfolio" — race the curated arm portfolio for the first slice of
	// the budget, then commit the remainder to the winner (DESIGN.md §15).
	// With mode=portfolio the engine/vcycles fields are ignored: the winning
	// arm brings its own configuration.
	Mode string `json:"mode,omitempty"`
	// Starts is the number of independent starts (default 4).
	Starts int `json:"starts,omitempty"`
	// VCycles applied to the best solution with the ml engine (default 1).
	VCycles int `json:"vcycles,omitempty"`
	// Tolerance is the balance tolerance (default 0.02).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Seed drives all partitioning randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`

	// Workers caps concurrent starts within this job (bounded by the
	// server's per-job limit). Results are identical at any worker count.
	Workers int `json:"workers,omitempty"`
	// RefineThreads > 0 applies a deterministic synchronous-round parallel
	// FM polish (kwayfm.ParRefine) to the best partition after any V-cycle
	// polish, evaluated on that many threads (bounded by the server's
	// MaxRefineThreads). Results are byte-identical at any positive value —
	// only whether the polish ran changes the report, never the count.
	RefineThreads int `json:"refine_threads,omitempty"`
	// WallBudgetMS bounds the job's wall-clock time; 0 means unbounded.
	// A budget-truncated run is reported incomplete and never cached.
	WallBudgetMS int64 `json:"wall_budget_ms,omitempty"`
	// WorkBudget bounds the job's deterministic work units; 0 = unbounded.
	WorkBudget int64 `json:"work_budget,omitempty"`
	// Priority orders the queue: higher runs sooner; ties run in submission
	// order.
	Priority int `json:"priority,omitempty"`
	// Async returns a job id immediately instead of waiting for the result.
	Async bool `json:"async,omitempty"`
}

// RequestError is a client-side validation failure (HTTP 400).
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

func reqErrf(format string, args ...any) error {
	return &RequestError{Msg: fmt.Sprintf(format, args...)}
}

// normalize applies defaults in place.
func (r *PartitionRequest) normalize() {
	if r.Engine == "" {
		r.Engine = "ml"
	}
	if r.Starts == 0 {
		r.Starts = 4
	}
	if r.VCycles == 0 {
		r.VCycles = 1
	}
	if r.Tolerance == 0 {
		r.Tolerance = 0.02
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scale == 0 {
		r.Scale = 1
	}
}

// validate mirrors the CLI boundary checks: user input is validated here,
// deeper layers treat bad values as programming errors.
func (r *PartitionRequest) validate() error {
	sources := 0
	if r.Benchmark != "" {
		sources++
	}
	if r.HGR != "" {
		sources++
	}
	if r.NetD != "" {
		sources++
	}
	if sources != 1 {
		return reqErrf("exactly one of benchmark, hgr, netd must be set (got %d)", sources)
	}
	if r.Are != "" && r.NetD == "" {
		return reqErrf("are requires netd")
	}
	if r.Scale <= 0 || r.Scale > 1 {
		return reqErrf("scale %g out of range (0,1]", r.Scale)
	}
	if r.Tolerance <= 0 || r.Tolerance >= 1 {
		return reqErrf("tolerance %g out of range (0,1)", r.Tolerance)
	}
	if r.Starts < 1 || r.Starts > 100000 {
		return reqErrf("starts %d out of range [1,100000]", r.Starts)
	}
	if r.VCycles < 0 || r.VCycles > 64 {
		return reqErrf("vcycles %d out of range [0,64]", r.VCycles)
	}
	switch r.Engine {
	case "ml", "flat", "clip":
	default:
		return reqErrf("engine %q must be ml, flat or clip", r.Engine)
	}
	switch r.Mode {
	case "", "portfolio":
	default:
		return reqErrf("mode %q must be empty or portfolio", r.Mode)
	}
	if r.Mode == "portfolio" && r.RefineThreads > 0 {
		return reqErrf("refine_threads is not supported with mode=portfolio")
	}
	if r.Workers < 0 {
		return reqErrf("workers %d negative", r.Workers)
	}
	if r.RefineThreads < 0 || r.RefineThreads > 64 {
		return reqErrf("refine_threads %d out of range [0,64]", r.RefineThreads)
	}
	if r.WallBudgetMS < 0 || r.WorkBudget < 0 {
		return reqErrf("budgets must be non-negative")
	}
	return nil
}

// resolveInstance turns the request's instance source into a hypergraph and
// a human-readable instance name. Parse failures come back as typed
// *netlist.ParseError values (HTTP 400 at the handler).
func (r *PartitionRequest) resolveInstance() (*hypergraph.Hypergraph, string, error) {
	switch {
	case r.Benchmark != "":
		spec, name, err := benchmarkSpec(r.Benchmark)
		if err != nil {
			return nil, "", err
		}
		if r.Scale < 1 {
			spec = gen.Scaled(spec, r.Scale)
			name = fmt.Sprintf("%s@%g", name, r.Scale)
		}
		if r.InstanceSeed != 0 {
			spec.Seed = r.InstanceSeed
			name = fmt.Sprintf("%s#%d", name, r.InstanceSeed)
		}
		h, err := gen.Generate(spec)
		if err != nil {
			return nil, "", reqErrf("benchmark %q: %v", r.Benchmark, err)
		}
		return h, name, nil
	case r.HGR != "":
		h, err := netlist.ParseHGR(strings.NewReader(r.HGR), r.inlineName())
		if err != nil {
			return nil, "", err
		}
		return h, r.inlineName(), nil
	default:
		var are *strings.Reader
		if r.Are != "" {
			are = strings.NewReader(r.Are)
		}
		var h *hypergraph.Hypergraph
		var err error
		if are != nil {
			h, err = netlist.ParseNetD(strings.NewReader(r.NetD), are, r.inlineName())
		} else {
			h, err = netlist.ParseNetD(strings.NewReader(r.NetD), nil, r.inlineName())
		}
		if err != nil {
			return nil, "", err
		}
		return h, r.inlineName(), nil
	}
}

func (r *PartitionRequest) inlineName() string {
	if r.Label != "" {
		return r.Label
	}
	return "inline"
}

// benchmarkSpec resolves a benchmark name to a generator spec.
func benchmarkSpec(name string) (gen.Spec, string, error) {
	if rest, ok := strings.CutPrefix(name, "mcnc:"); ok {
		spec, err := gen.MCNCProfile(rest)
		if err != nil {
			return gen.Spec{}, "", reqErrf("benchmark %q: %v", name, err)
		}
		return spec, name, nil
	}
	if rest, ok := strings.CutPrefix(name, "ibm"); ok {
		i, err := strconv.Atoi(rest)
		if err != nil {
			return gen.Spec{}, "", reqErrf("benchmark %q: want ibmNN or mcnc:<name>", name)
		}
		spec, err := gen.IBMProfile(i)
		if err != nil {
			return gen.Spec{}, "", reqErrf("benchmark %q: %v", name, err)
		}
		return spec, fmt.Sprintf("ibm%02d", i), nil
	}
	return gen.Spec{}, "", reqErrf("benchmark %q: want ibmNN or mcnc:<name>", name)
}

// instanceHash content-addresses a hypergraph: the SHA-256 of its canonical
// hMETIS-style serialization (structure and weights only — no name, no
// comments). Two inline uploads that differ only in whitespace or comments —
// or a benchmark request and an upload of the identical instance — coalesce
// to the same hash and therefore the same cache entries.
func instanceHash(h *hypergraph.Hypergraph) string {
	hash := sha256.New()
	bw := bufio.NewWriter(hash)
	fmt.Fprintf(bw, "%d %d 11\n", h.NumEdges(), h.NumVertices())
	for e := 0; e < h.NumEdges(); e++ {
		fmt.Fprintf(bw, "%d", h.EdgeWeight(int32(e)))
		for _, v := range h.Pins(int32(e)) {
			fmt.Fprintf(bw, " %d", v+1)
		}
		fmt.Fprintln(bw)
	}
	for v := 0; v < h.NumVertices(); v++ {
		fmt.Fprintf(bw, "%d\n", h.VertexWeight(int32(v)))
	}
	bw.Flush()
	return hex.EncodeToString(hash.Sum(nil))
}

// cacheKey derives the content-addressed result key: every field that can
// change the deterministic report participates; fields that cannot (worker
// count, budgets, priority) are deliberately excluded. Budget-truncated runs
// are never cached, so a complete budgeted run may legitimately share its
// key with the unbudgeted one — they are byte-identical.
//
// RefineThreads follows the same rule split in two: whether the parallel
// polish runs changes the answer (so its presence is keyed), but the thread
// count does not — the synchronous-round refiner is byte-identical at every
// positive count — so refine_threads=1 and refine_threads=8 share an entry.
func cacheKey(instHash string, r *PartitionRequest) string {
	cfg := fmt.Sprintf("hgserved/v1|inst=%s|engine=%s|starts=%d|vcycles=%d|tol=%s|seed=%d",
		instHash, r.Engine, r.Starts, r.VCycles,
		strconv.FormatFloat(r.Tolerance, 'g', -1, 64), r.Seed)
	if r.RefineThreads > 0 {
		cfg += "|parfm=1"
	}
	if r.Mode == "portfolio" {
		// The portfolio schedule replaces the fixed engine entirely; its
		// report is a pure function of (instance, starts, tolerance, seed),
		// so those fields stay in the key and the ignored engine/vcycles do
		// no harm (they are normalized defaults under mode=portfolio).
		cfg += "|mode=portfolio"
	}
	sum := sha256.Sum256([]byte(cfg))
	return hex.EncodeToString(sum[:])
}

// BSFEntry is one improvement of the best-so-far cut: after start Start
// (in deterministic start order), the best cut seen so far was Cut.
type BSFEntry struct {
	Start int   `json:"start"`
	Cut   int64 `json:"cut"`
}

// Report is the deterministic result document: for a given (instance,
// config, seed) it is byte-identical across runs, restarts, worker counts
// and checkpoint resumes — wall-clock quantities are deliberately absent
// (they ride in headers and the job-status endpoint instead). The cache
// stores the marshaled bytes verbatim, so a hit returns exactly what the
// miss computed.
type Report struct {
	Schema       string `json:"schema"`
	Instance     string `json:"instance"`
	InstanceHash string `json:"instance_hash"`
	Vertices     int    `json:"vertices"`
	Edges        int    `json:"edges"`
	Pins         int    `json:"pins"`

	Engine    string  `json:"engine"`
	Starts    int     `json:"starts"`
	VCycles   int     `json:"vcycles"`
	Tolerance float64 `json:"tolerance"`
	Seed      uint64  `json:"seed"`
	CacheKey  string  `json:"cache_key"`

	// Cut is the final best cut (after V-cycle polish with the ml engine);
	// MinCut/AvgCut summarize the raw multistart distribution per the
	// paper's min/avg reporting discipline.
	Cut       int64   `json:"cut"`
	MinCut    int64   `json:"min_cut"`
	AvgCut    float64 `json:"avg_cut"`
	BestStart int     `json:"best_start"`
	Side0     int64   `json:"side0"`
	Side1     int64   `json:"side1"`

	// RefineRounds/RefineMoves report the parallel FM polish when the
	// request set refine_threads > 0 (omitted when zero); both are
	// independent of the thread count.
	RefineRounds int   `json:"refine_rounds,omitempty"`
	RefineMoves  int64 `json:"refine_moves,omitempty"`

	Completed  int    `json:"completed"`
	Failed     int    `json:"failed"`
	Skipped    int    `json:"skipped"`
	Incomplete bool   `json:"incomplete,omitempty"`
	Reason     string `json:"reason,omitempty"`

	// Work is the deterministic work-unit total (multistart plus polish);
	// NormalizedSeconds converts it to the paper's machine-independent
	// seconds. Wall-clock time is intentionally not here.
	Work              int64   `json:"work"`
	NormalizedSeconds float64 `json:"normalized_seconds"`

	// BSF is the best-so-far trajectory over starts in deterministic start
	// order (not completion order).
	BSF []BSFEntry `json:"bsf"`

	// Portfolio is present only under mode=portfolio: the racing slice's
	// deterministic trace. Advisory store fields (prediction, store hit) are
	// deliberately absent — they ride in metrics and logs so a warm store
	// cannot change the report bytes.
	Portfolio *PortfolioReport `json:"portfolio,omitempty"`
}

// PortfolioReport is the mode=portfolio race section of a Report: the
// instance's feature bucket, one trace per raced arm, the winner, and which
// phase (race or commit) produced the final answer. Every field is a pure
// function of (instance, seed, budget).
type PortfolioReport struct {
	Bucket   string               `json:"bucket"`
	Arms     []portfolio.ArmTrace `json:"arms"`
	Winner   string               `json:"winner"`
	RaceWork int64                `json:"race_work"`
	// Source is "race" when the race winner's polished best survived the
	// commit phase, "commit" when a commit start beat it.
	Source string `json:"source"`
}
