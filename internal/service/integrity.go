package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// The cluster RPC plane does not trust the transport (DESIGN.md §16):
//
//   - integrityHeader carries hex(sha256(body)) on every internal response
//     (reports and peer cache hits). Receivers verify before using the
//     bytes: a corrupted peer cache hit is demoted to a miss and a
//     corrupted dispatch result is retried/failed over, so corruption can
//     never poison the content-addressed result cache.
//   - deadlineHeader carries the coordinator's absolute dispatch deadline
//     (unix milliseconds). A worker that receives an already-expired
//     deadline — or crosses it mid-job — abandons with 504; its journal
//     keeps the completed starts for the redispatch.
const (
	integrityHeader = "X-Hg-Body-Sha256"
	deadlineHeader  = "X-Hg-Deadline"
)

// bodySHA returns the integrity envelope value for body.
func bodySHA(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// integrityOK verifies body against the response's integrity envelope. A
// missing header passes: the envelope authenticates bytes when present, it
// is not a handshake (mixed-version fleets interoperate during a rollout).
func integrityOK(h http.Header, body []byte) bool {
	want := h.Get(integrityHeader)
	return want == "" || want == bodySHA(body)
}

// parseDeadline extracts the propagated coordinator deadline, if any.
func parseDeadline(h http.Header) (time.Time, bool, error) {
	v := h.Get(deadlineHeader)
	if v == "" {
		return time.Time{}, false, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return time.Time{}, false, fmt.Errorf("malformed %s header %q (want unix milliseconds)", deadlineHeader, v)
	}
	return time.UnixMilli(ms), true, nil
}
