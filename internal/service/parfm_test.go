package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"hgpart/internal/service"
)

// The refine_threads contract through the HTTP surface: the parallel FM
// polish must produce byte-identical report bodies at every thread count.
// Each count runs on its OWN server — refine_threads is deliberately absent
// from the cache key, so a single server would answer the second request
// from cache and the test would prove nothing.

func parfmReq(threads int) string {
	return fmt.Sprintf(
		`{"benchmark":"ibm01","scale":0.1,"engine":"flat","starts":3,"seed":7,"refine_threads":%d}`,
		threads)
}

func TestRefineThreadsByteIdentityAcrossServers(t *testing.T) {
	bodies := map[int][]byte{}
	reports := map[int]*service.Report{}
	for _, threads := range []int{1, 4} {
		_, hs := testServer(t, nil)
		resp, body := post(t, hs, parfmReq(threads))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("refine_threads=%d: status %d, body %s", threads, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Hgserved-Cache"); got != "miss" {
			t.Fatalf("refine_threads=%d: want a fresh computation, got X-Hgserved-Cache=%q",
				threads, got)
		}
		bodies[threads] = body
		var rep service.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("refine_threads=%d: decode report: %v", threads, err)
		}
		reports[threads] = &rep
	}
	if string(bodies[1]) != string(bodies[4]) {
		t.Errorf("refine_threads=1 and =4 bodies differ\n--- 1 ---\n%s\n--- 4 ---\n%s",
			bodies[1], bodies[4])
	}

	// Sanity on the shared report: the polish never worsens the multistart
	// answer, and the balance sides account for every vertex.
	rep := reports[1]
	if rep.Cut > rep.MinCut {
		t.Errorf("polished cut %d worse than multistart min %d", rep.Cut, rep.MinCut)
	}
	if rep.Side0+rep.Side1 == 0 {
		t.Errorf("report sides empty: side0=%d side1=%d", rep.Side0, rep.Side1)
	}

	// The polish presence (not its count) is part of the identity: the same
	// request without refine_threads must map to a different cache key.
	_, hs := testServer(t, nil)
	resp, body := post(t, hs, `{"benchmark":"ibm01","scale":0.1,"engine":"flat","starts":3,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sequential request: status %d, body %s", resp.StatusCode, body)
	}
	var seq service.Report
	if err := json.Unmarshal(body, &seq); err != nil {
		t.Fatalf("decode sequential report: %v", err)
	}
	if seq.CacheKey == rep.CacheKey {
		t.Errorf("refine_threads>0 shares cache key %s with the sequential request", seq.CacheKey)
	}
	if seq.RefineRounds != 0 || seq.RefineMoves != 0 {
		t.Errorf("sequential report carries refine stats: rounds=%d moves=%d",
			seq.RefineRounds, seq.RefineMoves)
	}
}

// Clamping to the server's MaxRefineThreads must be invisible in the bytes:
// a server capped at 1 thread and a server allowing 8 answer the same
// refine_threads=8 request identically.
func TestRefineThreadsClampIsByteInvisible(t *testing.T) {
	bodies := map[int][]byte{}
	for _, cap := range []int{1, 8} {
		_, hs := testServer(t, func(cfg *service.Config) { cfg.MaxRefineThreads = cap })
		resp, body := post(t, hs, parfmReq(8))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cap=%d: status %d, body %s", cap, resp.StatusCode, body)
		}
		bodies[cap] = body
	}
	if string(bodies[1]) != string(bodies[8]) {
		t.Errorf("MaxRefineThreads=1 and =8 bodies differ\n--- 1 ---\n%s\n--- 8 ---\n%s",
			bodies[1], bodies[8])
	}
}

func TestRefineThreadsValidation(t *testing.T) {
	_, hs := testServer(t, nil)
	for _, threads := range []int{-1, 65} {
		resp, body := post(t, hs, parfmReq(threads))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("refine_threads=%d: want 400, got %d (body %s)", threads, resp.StatusCode, body)
		}
	}
}
