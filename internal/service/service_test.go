package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hgpart/internal/gen"
	"hgpart/internal/netlist"
	"hgpart/internal/service"
)

// testServer boots a Server (with test-friendly defaults) behind httptest.
func testServer(t *testing.T, mutate func(*service.Config)) (*service.Server, *httptest.Server) {
	t.Helper()
	cfg := service.DefaultConfig()
	cfg.Workers = 2
	cfg.StartWorkers = 2
	if mutate != nil {
		mutate(&cfg)
	}
	srv := service.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func post(t *testing.T, hs *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/partition: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, hs *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(hs.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// smallReq is a fast deterministic request used by most tests.
const smallReq = `{"benchmark":"ibm01","scale":0.1,"engine":"flat","starts":3,"seed":7}`

// TestDeterminismUnderLoad is the singleflight acceptance test: N concurrent
// identical requests yield byte-identical bodies with exactly one cache miss
// (the flight leader); every follower is coalesced or a hit.
func TestDeterminismUnderLoad(t *testing.T) {
	srv, hs := testServer(t, nil)
	// ~20 starts x ~10ms keeps the flight open long enough that all
	// submissions overlap the leader's computation.
	req := `{"benchmark":"ibm01","scale":0.25,"engine":"flat","starts":20,"seed":7}`
	const n = 8
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, body := post(t, hs, req)
			codes[i] = resp.StatusCode
			bodies[i] = body
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	stats := srv.CacheStats()
	if stats.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (hits %d, coalesced %d)",
			stats.Misses, stats.Hits, stats.Coalesced)
	}
	if stats.Hits+stats.Coalesced != n-1 {
		t.Fatalf("hits %d + coalesced %d != %d followers", stats.Hits, stats.Coalesced, n-1)
	}

	// A later identical request is a pure cache hit, still byte-identical.
	resp, body := post(t, hs, req)
	if resp.Header.Get("X-Hgserved-Cache") != "hit" {
		t.Fatalf("post-flight request disposition %q, want hit", resp.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body, bodies[0]) {
		t.Fatalf("cached body differs from computed body")
	}
}

// TestByteIdenticalAcrossServers: the same request on two fresh processes
// (simulated by two fresh Servers) produces byte-identical reports — the
// cache-correctness precondition.
func TestByteIdenticalAcrossServers(t *testing.T) {
	_, hs1 := testServer(t, nil)
	_, hs2 := testServer(t, nil)
	resp1, body1 := post(t, hs1, smallReq)
	resp2, body2 := post(t, hs2, smallReq)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d / %d; bodies %s / %s", resp1.StatusCode, resp2.StatusCode, body1, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("fresh servers disagree:\n%s\nvs\n%s", body1, body2)
	}
	var rep service.Report
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Schema != "hgserved/v1" || rep.Cut <= 0 || rep.Instance == "" {
		t.Fatalf("implausible report: %+v", rep)
	}
	if len(rep.BSF) == 0 || rep.BSF[len(rep.BSF)-1].Cut != rep.MinCut {
		t.Fatalf("BSF trajectory %v inconsistent with min cut %d", rep.BSF, rep.MinCut)
	}
}

// TestInstanceHashCoalescing: a benchmark request and an inline upload of the
// identical instance share a cache entry (content addressing ignores names).
func TestInstanceHashCoalescing(t *testing.T) {
	_, hs := testServer(t, nil)
	resp, body := post(t, hs, smallReq)
	if resp.StatusCode != 200 {
		t.Fatalf("benchmark request failed: %d %s", resp.StatusCode, body)
	}
	var rep service.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}

	// Re-upload the exact instance inline: hgserved must serve it from cache
	// because content addressing ignores instance names and text formatting.
	spec, err := gen.IBMProfile(1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := gen.Generate(gen.Scaled(spec, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	var hgr bytes.Buffer
	if err := netlist.WriteHGR(&hgr, h); err != nil {
		t.Fatal(err)
	}
	inline, err := json.Marshal(map[string]any{
		"hgr": hgr.String(), "engine": "flat", "starts": 3, "seed": 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp2, body2 := post(t, hs, string(inline))
	if resp2.StatusCode != 200 {
		t.Fatalf("inline request failed: %d %s", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("X-Hgserved-Cache") != "hit" {
		t.Fatalf("inline upload of identical instance: disposition %q, want hit",
			resp2.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("inline and benchmark reports differ")
	}
}

// TestGracefulDrain is the drain acceptance test: SIGTERM semantics —
// readiness flips before the listener closes, the in-flight job is
// interrupted with its completed starts checkpointed, and resubmitting the
// identical request on a fresh server resumes the journal and produces a
// report byte-identical to an uninterrupted run.
func TestGracefulDrain(t *testing.T) {
	cpDir := t.TempDir()
	req := `{"benchmark":"ibm01","scale":0.25,"engine":"flat","starts":120,"seed":3,"async":true}`
	syncReq := strings.Replace(req, `,"async":true`, "", 1)

	// Reference: the uninterrupted answer from an unrelated server.
	_, ref := testServer(t, nil)
	refResp, refBody := post(t, ref, syncReq)
	if refResp.StatusCode != 200 {
		t.Fatalf("reference run failed: %d %s", refResp.StatusCode, refBody)
	}

	srv, hs := testServer(t, func(c *service.Config) {
		c.Workers = 1
		c.StartWorkers = 1
		c.CheckpointDir = cpDir
	})
	resp, body := post(t, hs, req)
	if resp.StatusCode != 202 {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var acc struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	// Wait until the job has really completed some starts. Deadlines are
	// generous: the race detector slows the engine an order of magnitude.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st service.JobStatus
		getJSON(t, hs, "/v1/jobs/"+acc.Job, &st)
		if st.Completed >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain in the background; readiness must flip while the listener still
	// answers (that is the load balancer's signal).
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDrain()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(drainCtx) }()
	for {
		resp, err := http.Get(hs.URL + "/readyz")
		if err != nil {
			t.Fatalf("readyz during drain: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// New submissions are refused after drain.
	resp2, _ := post(t, hs, syncReq)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", resp2.StatusCode)
	}

	// The job is interrupted, and its journal is on disk with real records.
	var st service.JobStatus
	getJSON(t, hs, "/v1/jobs/"+acc.Job, &st)
	if st.State != service.JobInterrupted {
		t.Fatalf("job state %q after drain, want interrupted (%+v)", st.State, st)
	}
	if st.Completed >= 120 {
		t.Fatalf("job completed all %d starts; drain came too late to test resume", st.Completed)
	}
	files, err := filepath.Glob(filepath.Join(cpDir, "*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files %v (err %v), want exactly one", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines < 1+st.Completed {
		t.Fatalf("journal holds %d lines, want header + >= %d starts", lines, st.Completed)
	}

	// A fresh server over the same checkpoint dir resumes and finishes; the
	// final report is byte-identical to the uninterrupted reference.
	_, hs3 := testServer(t, func(c *service.Config) {
		c.Workers = 1
		c.StartWorkers = 1
		c.CheckpointDir = cpDir
	})
	resp3, body3 := post(t, hs3, req)
	if resp3.StatusCode != 202 {
		t.Fatalf("resume submit: %d %s", resp3.StatusCode, body3)
	}
	var acc3 struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(body3, &acc3); err != nil {
		t.Fatal(err)
	}
	var st3 service.JobStatus
	resumeDeadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, hs3, "/v1/jobs/"+acc3.Job, &st3)
		if st3.State == service.JobDone || st3.State == service.JobFailed {
			break
		}
		if time.Now().After(resumeDeadline) {
			t.Fatalf("resumed job never finished: %+v", st3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st3.State != service.JobDone {
		t.Fatalf("resumed job state %q: %s", st3.State, st3.Error)
	}
	if st3.Resumed == 0 {
		t.Fatalf("resumed job loaded 0 starts from the journal")
	}
	if !bytes.Equal([]byte(st3.Report), refBody) {
		t.Fatalf("resumed report differs from uninterrupted reference:\n%s\nvs\n%s",
			st3.Report, refBody)
	}
	// The journal is retired once the complete result is cached.
	if files, _ := filepath.Glob(filepath.Join(cpDir, "*.jsonl")); len(files) != 0 {
		t.Fatalf("journal %v survived a completed run", files)
	}
}

// TestValidationErrors: malformed requests get 400s with useful messages and
// never reach the worker pool.
func TestValidationErrors(t *testing.T) {
	_, hs := testServer(t, nil)
	cases := []struct {
		name, body, want string
	}{
		{"no source", `{}`, "exactly one of"},
		{"two sources", `{"benchmark":"ibm01","hgr":"0 0 11\n"}`, "exactly one of"},
		{"bad engine", `{"benchmark":"ibm01","engine":"quantum"}`, "engine"},
		{"bad tolerance", `{"benchmark":"ibm01","tolerance":1.5}`, "tolerance"},
		{"bad scale", `{"benchmark":"ibm01","scale":2}`, "scale"},
		{"bad benchmark", `{"benchmark":"ibm99"}`, "benchmark"},
		{"unknown field", `{"benchmark":"ibm01","turbo":true}`, "turbo"},
		{"malformed hgr", `{"hgr":"3 2 11\n1 1 2\n"}`, "hgr"},
		{"are without netd", `{"benchmark":"ibm01","are":"x"}`, "are requires netd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, hs, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.want) {
				t.Fatalf("body %q missing %q", body, tc.want)
			}
		})
	}
}

// TestJobLifecycle: async submit, status polling, job listing, cancel
// semantics on terminal jobs, and 404s.
func TestJobLifecycle(t *testing.T) {
	_, hs := testServer(t, nil)
	resp, body := post(t, hs, `{"benchmark":"ibm01","scale":0.1,"engine":"flat","starts":2,"seed":11,"async":true}`)
	if resp.StatusCode != 202 {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var acc struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var st service.JobStatus
	for {
		getJSON(t, hs, "/v1/jobs/"+acc.Job, &st)
		if st.State == service.JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(st.Report) == 0 {
		t.Fatal("done job carries no report")
	}
	var jobs []service.JobStatus
	if code := getJSON(t, hs, "/v1/jobs", &jobs); code != 200 || len(jobs) != 1 {
		t.Fatalf("job list: code %d, %d jobs", code, len(jobs))
	}
	if len(jobs[0].Report) != 0 {
		t.Fatal("list view must omit report bodies")
	}

	if code := getJSON(t, hs, "/v1/jobs/j-999999", nil); code != 404 {
		t.Fatalf("unknown job: %d, want 404", code)
	}
	delReq, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+acc.Job, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusConflict {
		t.Fatalf("cancelling a done job: %d, want 409", delResp.StatusCode)
	}
}

// TestProbesAndMetrics: liveness, readiness, stats and the Prometheus text
// surface expose the counters the tests above exercised.
func TestProbesAndMetrics(t *testing.T) {
	_, hs := testServer(t, nil)
	if _, body := post(t, hs, smallReq); len(body) == 0 {
		t.Fatal("empty report")
	}
	post(t, hs, smallReq) // cache hit

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`hgserved_requests_total{route="partition",code="200"} 2`,
		"hgserved_cache_hits_total 1",
		"hgserved_cache_misses_total 1",
		"hgserved_jobs_submitted_total 1",
		`hgserved_jobs_finished_total{state="done"} 1`,
		"hgserved_ready 1",
		"hgserved_work_units_total",
		"hgserved_ns_per_work_unit_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	statsResp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	sb.ReadFrom(statsResp.Body)
	statsResp.Body.Close()
	if !strings.Contains(sb.String(), "cache hits") {
		t.Fatalf("/v1/stats missing cache hits:\n%s", sb.String())
	}
}

// TestInfeasibleTolerance: a tolerance no legal partition can satisfy
// surfaces as 422, not a panic or a 500.
func TestInfeasibleTolerance(t *testing.T) {
	_, hs := testServer(t, nil)
	// Two vertices with wildly unequal weights and a tight tolerance: no
	// bisection is balanced.
	req, _ := json.Marshal(map[string]any{
		"hgr":       "1 2 11\n1 1 2\n1\n1000\n",
		"engine":    "flat",
		"starts":    2,
		"tolerance": 0.001,
	})
	resp, body := post(t, hs, string(req))
	if resp.StatusCode != 422 {
		t.Fatalf("infeasible tolerance: %d %s, want 422", resp.StatusCode, body)
	}
}

// postTrace posts to /v1/trace and returns the response and body.
func postTrace(t *testing.T, hs *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(hs.URL+"/v1/trace", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/trace: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, buf.Bytes()
}

// TestTraceEndpoint exercises POST /v1/trace: deterministic across calls,
// pass records consistent with the summary fields, engine gating.
func TestTraceEndpoint(t *testing.T) {
	srv, hs := testServer(t, nil)
	_ = srv

	req := `{"benchmark":"ibm01","scale":0.1,"engine":"clip","seed":11}`
	resp1, body1 := postTrace(t, hs, req)
	if resp1.StatusCode != 200 {
		t.Fatalf("trace: %d\n%s", resp1.StatusCode, body1)
	}
	resp2, body2 := postTrace(t, hs, req)
	if resp2.StatusCode != 200 || !bytes.Equal(body1, body2) {
		t.Fatalf("trace not deterministic:\n%s\nvs\n%s", body1, body2)
	}

	var rep service.TraceReport
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "hgserved/trace/v1" || rep.Engine != "clip" || rep.Seed != 11 {
		t.Fatalf("bad header fields: %+v", rep)
	}
	if len(rep.Passes) == 0 {
		t.Fatal("no pass records")
	}
	last := rep.Passes[len(rep.Passes)-1]
	if rep.Cut <= 0 || last.EndCut < rep.Cut {
		t.Fatalf("cut inconsistent: final=%d last pass end=%d", rep.Cut, last.EndCut)
	}
	var moves int64
	for i, pr := range rep.Passes {
		if pr.Pass != i+1 {
			t.Fatalf("pass numbering: got %d at index %d", pr.Pass, i)
		}
		moves += pr.Moves
	}
	if moves != rep.TotalMoves {
		t.Fatalf("moves: sum of passes %d != total %d", moves, rep.TotalMoves)
	}

	// A multistart engine has no per-pass tracer; the endpoint must refuse.
	resp3, body3 := postTrace(t, hs,
		`{"benchmark":"ibm01","scale":0.1,"engine":"ml","seed":11}`)
	if resp3.StatusCode != 400 || !strings.Contains(string(body3), "flat or clip") {
		t.Fatalf("ml trace: %d %s", resp3.StatusCode, body3)
	}
}
