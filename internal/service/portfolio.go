package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"hgpart/internal/eval"
	"hgpart/internal/partition"
	"hgpart/internal/portfolio"
	"hgpart/internal/rng"
)

// runPortfolio executes a mode=portfolio job: race the curated arm portfolio
// for the first slice of the request's budget, then commit the remaining
// budget to the winning arm as an ordinary checkpointed multistart. The
// report is a pure function of (instance, starts, tolerance, seed, work
// budget) — the shared outcome store only feeds logs and metrics, so a warm
// store, a restart, or a different cluster topology cannot change a byte.
// See DESIGN.md §15.
func (m *Manager) runPortfolio(j *Job) {
	t0 := time.Now()
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	// The wall budget bounds the whole schedule, race included. A wall
	// expiry during the commit surfaces as the usual incomplete report; an
	// expiry during the race (budget far too small to race at all) is a 422.
	if j.req.WallBudgetMS > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(j.req.WallBudgetMS)*time.Millisecond)
		defer tcancel()
	}

	bal := partition.NewBalance(j.inst.TotalVertexWeight(), j.req.Tolerance)
	sched := &portfolio.Scheduler{
		Store:    m.store,
		Progress: func(string, int64) { j.beat() },
	}
	raceWork := int64(0)
	if j.req.WorkBudget > 0 {
		raceWork = j.req.WorkBudget / 4
	}

	j.beat()
	race, err := sched.Race(ctx, j.inst, bal, j.req.Seed, raceWork)
	if err != nil {
		m.finishFailedRace(j, err)
		return
	}
	arm := race.Arms[race.Winner]
	if serr := m.store; serr != nil && serr.Err() != nil {
		m.log.Warn("portfolio store degraded; outcomes may not persist",
			"job", j.ID, "err", serr.Err())
	}
	m.metrics.PortfolioRace(race.Bucket.Key(), arm.Name, race.StoreHit)
	m.log.Info("portfolio race", "job", j.ID, "bucket", race.Bucket.Key(),
		"winner", arm.Name, "predicted", race.Predicted, "store_hit", race.StoreHit,
		"race_work", race.RaceWork)

	// Commit phase: the winner's arm runs the request's multistart rooted at
	// the commit seed, with the same retry/verify/checkpoint machinery as the
	// fixed path. Worker count stays an execution knob: the harness pre-splits
	// seeds, and budget-truncated runs are never cached.
	cseed := portfolio.CommitSeed(j.req.Seed)
	craw := arm.Factory(j.inst, bal, cseed)
	factory := func() eval.Heuristic { return progressHeuristic{inner: craw(), job: j} }
	opt := eval.RunOptions{
		Workers:      j.req.Workers,
		MaxRetries:   m.maxRetries,
		Verify:       eval.VerifyOutcome(bal),
		AbandonGrace: m.stuckAfter,
	}
	if opt.Workers <= 0 || opt.Workers > m.startWorkers {
		opt.Workers = m.startWorkers
	}
	if j.req.WallBudgetMS > 0 {
		opt.WallBudget = time.Duration(j.req.WallBudgetMS)*time.Millisecond - time.Since(t0)
		if opt.WallBudget < time.Millisecond {
			opt.WallBudget = time.Millisecond
		}
	}
	if j.req.WorkBudget > 0 {
		remaining := j.req.WorkBudget - race.RaceWork
		if remaining < 1 {
			remaining = 1 // the commit always gets at least one start
		}
		opt.WorkBudget = remaining
	}

	var cpPath string
	if m.checkpointDir != "" {
		cpPath = filepath.Join(m.checkpointDir, j.Key+".jsonl")
		cp, err := eval.OpenCheckpointFS(m.fs, cpPath, j.Key, cseed, j.req.Starts, true)
		if err != nil {
			m.log.Warn("checkpoint open failed; running without journal",
				"job", j.ID, "path", cpPath, "err", err)
			cpPath = ""
		} else {
			defer cp.Close()
			opt.Checkpoint = cp
			if q := cp.Quarantined(); len(q) > 0 {
				m.log.Warn("checkpoint journal had damaged records; quarantined",
					"job", j.ID, "records", len(q), "lost_starts", cp.LostStarts())
			}
			if n := cp.Resumed(); n > 0 {
				j.mu.Lock()
				j.resumed = n
				j.mu.Unlock()
				m.log.Info("resuming from checkpoint", "job", j.ID, "starts", n)
			}
		}
	}

	rep := eval.RunMultistart(ctx, factory, j.req.Starts, cseed, opt)
	m.metrics.ObserveRun(time.Since(t0), race.RaceWork+rep.TotalWork)
	if rep.JournalErr != nil {
		m.log.Error("checkpoint journal degraded; completed starts may not be durable",
			"job", j.ID, "path", cpPath, "err", rep.JournalErr)
	}

	// Watchdog kick during the commit: same requeue discipline as the fixed
	// path. The journal preserves completed commit starts, and the race reruns
	// deterministically on the next attempt (it is the cheap slice).
	j.mu.Lock()
	kicked := j.kicked
	requeues := j.requeues
	j.mu.Unlock()
	if kicked && rep.Incomplete && rep.Reason == "cancelled" && !m.isDraining() {
		if requeues < m.maxRequeues && m.requeue(j) {
			m.metrics.JobRequeued()
			m.log.Warn("watchdog: requeued stuck portfolio job",
				"job", j.ID, "requeue", requeues+1, "of", m.maxRequeues,
				"completed", rep.Completed, "starts", j.req.Starts)
			return
		}
		m.removeInflight(j.Key)
		j.finish(JobFailed, 500, nil, fmt.Sprintf(
			"job made no progress for %s and exhausted %d requeue(s); %d of %d commit starts checkpointed",
			m.stuckAfter, m.maxRequeues, rep.Completed, j.req.Starts))
		m.metrics.JobFinished(JobFailed)
		return
	}
	m.removeInflight(j.Key)

	if rep.Incomplete && rep.Reason == "cancelled" {
		if m.isDraining() {
			j.finish(JobInterrupted, 503, nil, fmt.Sprintf(
				"service drained mid-commit: %d of %d starts checkpointed; resubmit the identical request to resume",
				rep.Completed, j.req.Starts))
			m.metrics.JobFinished(JobInterrupted)
		} else {
			j.finish(JobCanceled, 409, nil, fmt.Sprintf(
				"job cancelled: %d of %d commit starts completed", rep.Completed, j.req.Starts))
			m.metrics.JobFinished(JobCanceled)
		}
		return
	}
	// Unlike the fixed path, rep.BestIdx < 0 is not fatal here: the race
	// already holds a verified-legal best, so the commit merely failed to
	// improve on it.

	report, err := m.buildPortfolioReport(j, bal, craw, cseed, race, rep)
	if err != nil {
		j.finish(JobFailed, 500, nil, err.Error())
		m.metrics.JobFinished(JobFailed)
		m.log.Error("portfolio report construction failed", "job", j.ID, "err", err)
		return
	}
	body, err := json.Marshal(report)
	if err != nil {
		j.finish(JobFailed, 500, nil, fmt.Sprintf("encode report: %v", err))
		m.metrics.JobFinished(JobFailed)
		return
	}
	if !rep.Incomplete {
		m.cache.Put(j.Key, body)
		if cpPath != "" {
			m.fs.Remove(cpPath)
		}
	}
	j.finish(JobDone, 200, body, "")
	m.metrics.JobFinished(JobDone)
	m.log.Info("portfolio job done", "job", j.ID, "instance", j.instName,
		"bucket", report.Portfolio.Bucket, "winner", report.Portfolio.Winner,
		"source", report.Portfolio.Source, "cut", report.Cut, "work", report.Work,
		"incomplete", report.Incomplete, "elapsed_ms", time.Since(t0).Milliseconds())
}

// finishFailedRace maps a race error onto the job dispositions the fixed
// path uses: infeasible tolerance → 422, wall expiry mid-race → 422 (the
// budget cannot even cover the racing slice), watchdog kick → bounded
// requeue, drain → 503, client cancel → 409.
func (m *Manager) finishFailedRace(j *Job, err error) {
	if errors.Is(err, portfolio.ErrInfeasible) {
		m.removeInflight(j.Key)
		j.finish(JobFailed, 422, nil,
			"portfolio race found no legal partition (tolerance may be infeasible)")
		m.metrics.JobFinished(JobFailed)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		m.removeInflight(j.Key)
		j.finish(JobFailed, 422, nil,
			"wall budget expired during the portfolio race; raise wall_budget_ms")
		m.metrics.JobFinished(JobFailed)
		return
	}
	j.mu.Lock()
	kicked := j.kicked
	requeues := j.requeues
	j.mu.Unlock()
	if kicked && !m.isDraining() && requeues < m.maxRequeues && m.requeue(j) {
		m.metrics.JobRequeued()
		m.log.Warn("watchdog: requeued portfolio job kicked during race",
			"job", j.ID, "requeue", requeues+1, "of", m.maxRequeues)
		return
	}
	m.removeInflight(j.Key)
	if m.isDraining() {
		// No partial races survive a drain: the race is the cheap slice and
		// reruns deterministically on resubmission.
		j.finish(JobInterrupted, 503, nil,
			"service drained during the portfolio race; resubmit the identical request to rerun")
		m.metrics.JobFinished(JobInterrupted)
		return
	}
	j.finish(JobCanceled, 409, nil, "job cancelled during the portfolio race")
	m.metrics.JobFinished(JobCanceled)
}

// buildPortfolioReport assembles the deterministic mode=portfolio Report:
// the race trace plus the commit multistart summary, with the final answer
// taken from whichever phase produced the lower cut (ties favor the race,
// whose best is already polished). A commit-sourced best that was resumed
// from the journal is recomputed exactly, then polished once with the
// winning arm's own polish step.
func (m *Manager) buildPortfolioReport(j *Job, bal partition.Balance,
	craw func() eval.Heuristic, cseed uint64, race *portfolio.RaceResult,
	rep *eval.RunReport) (*Report, error) {
	arm := race.Arms[race.Winner]
	final := race.Best
	source := "race"
	work := race.RaceWork + rep.TotalWork
	if rep.BestIdx >= 0 && rep.Best.Cut < final.Cut {
		best := rep.Best
		if best.P == nil {
			o, err := eval.RerunStart(craw, cseed, rep.BestIdx, rep.Results[rep.BestIdx].Attempts)
			if err != nil {
				return nil, fmt.Errorf("recompute resumed commit start %d: %w", rep.BestIdx, err)
			}
			if o.Cut != best.Cut {
				return nil, fmt.Errorf("recomputed commit start %d cut %d != journaled %d (corrupt checkpoint?)",
					rep.BestIdx, o.Cut, best.Cut)
			}
			best = o
		}
		final = best
		source = "commit"
		ph := arm.NewHeuristic(j.inst, bal, rng.New(cseed))
		if polish := ph.PolishBest(final.P, rng.New(portfolio.PolishSeed(j.req.Seed))); polish.P != nil {
			final.Cut = polish.Cut
			work += polish.Work
		}
	}

	// MinCut keeps the paper's raw-multistart discipline over the commit
	// phase; when no commit start succeeded it falls back to the race best.
	minCut := final.Cut
	if rep.BestIdx >= 0 {
		minCut = rep.Best.Cut
	}
	r := &Report{
		Schema:       "hgserved/v1",
		Instance:     j.instName,
		InstanceHash: j.instHash,
		Vertices:     j.inst.NumVertices(),
		Edges:        j.inst.NumEdges(),
		Pins:         j.inst.NumPins(),
		Engine:       "portfolio",
		Starts:       j.req.Starts,
		VCycles:      arm.VCycles,
		Tolerance:    j.req.Tolerance,
		Seed:         j.req.Seed,
		CacheKey:     j.Key,
		Cut:          final.Cut,
		MinCut:       minCut,
		BestStart:    rep.BestIdx,
		Side0:        final.P.Area(0),
		Side1:        final.P.Area(1),
		Completed:    rep.Completed,
		Failed:       rep.Failed,
		Skipped:      rep.Skipped,
		Incomplete:   rep.Incomplete,
		Reason:       rep.Reason,
		Work:         work,
		Portfolio: &PortfolioReport{
			Bucket:   race.Bucket.Key(),
			Arms:     race.Traces,
			Winner:   arm.Name,
			RaceWork: race.RaceWork,
			Source:   source,
		},
	}
	r.NormalizedSeconds = float64(work) / eval.WorkUnitsPerSecond

	var sum int64
	n := 0
	for _, sr := range rep.Results {
		if sr.Status != eval.StartOK {
			continue
		}
		sum += sr.Outcome.Cut
		n++
		if len(r.BSF) == 0 || sr.Outcome.Cut < r.BSF[len(r.BSF)-1].Cut {
			r.BSF = append(r.BSF, BSFEntry{Start: sr.Start, Cut: sr.Outcome.Cut})
		}
	}
	if n > 0 {
		r.AvgCut = float64(sum) / float64(n)
	}
	return r, nil
}
