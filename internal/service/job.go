package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"hgpart/internal/chaos"
	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/hypergraph"
	"hgpart/internal/kwayfm"
	"hgpart/internal/multilevel"
	"hgpart/internal/objective"
	"hgpart/internal/partition"
	"hgpart/internal/portfolio"
	"hgpart/internal/rng"
)

// JobState is a job's lifecycle position.
type JobState string

const (
	// JobQueued means the job waits in the priority queue.
	JobQueued JobState = "queued"
	// JobRunning means a worker is executing the multistart.
	JobRunning JobState = "running"
	// JobDone means the job produced a report (possibly incomplete, if it
	// ran under a budget).
	JobDone JobState = "done"
	// JobFailed means no start produced a legal partition.
	JobFailed JobState = "failed"
	// JobCanceled means the job was cancelled before or during execution.
	JobCanceled JobState = "canceled"
	// JobInterrupted means a graceful drain stopped the job mid-run; its
	// completed starts are checkpointed, and resubmitting the identical
	// request resumes from the journal.
	JobInterrupted JobState = "interrupted"
)

// BSFLive is one live best-so-far improvement in completion order: after
// Completed finished starts, the best cut seen so far was Cut. Completion
// order is scheduler-dependent, so this trajectory is informational; the
// deterministic start-order trajectory lives in the final Report.
type BSFLive struct {
	Completed int   `json:"completed"`
	Cut       int64 `json:"cut"`
}

// Job is one partitioning request moving through the service.
type Job struct {
	// ID is the service-assigned job identifier ("j-000042").
	ID string
	// Key is the content-addressed cache key the job computes toward.
	Key string
	seq int64

	req      PartitionRequest
	inst     *hypergraph.Hypergraph
	instName string
	instHash string

	mu         sync.Mutex
	state      JobState           //hglint:guardedby mu
	completed  int                //hglint:guardedby mu
	failed     int                //hglint:guardedby mu
	resumed    int                //hglint:guardedby mu
	bsfCut     int64              //hglint:guardedby mu
	bsf        []BSFLive          //hglint:guardedby mu
	report     []byte             //hglint:guardedby mu
	httpStatus int                //hglint:guardedby mu
	errMsg     string             //hglint:guardedby mu
	enqueued   time.Time          //hglint:guardedby mu
	started    time.Time          //hglint:guardedby mu
	finished   time.Time          //hglint:guardedby mu
	cancel     context.CancelFunc //hglint:guardedby mu
	// lastBeat is the job's work-progress heartbeat: set at worker pickup and
	// on every start entry/completion. The watchdog compares it against
	// StuckAfter to detect a run that is alive but doing nothing.
	lastBeat time.Time //hglint:guardedby mu
	// kicked marks that the watchdog cancelled this run for lack of progress;
	// run() turns that into a requeue (bounded by requeues) or a 500.
	kicked   bool //hglint:guardedby mu
	requeues int  //hglint:guardedby mu

	done chan struct{}
}

// JobStatus is the GET /v1/jobs/{id} document — a live, wall-clock-aware
// view (unlike the deterministic Report embedded once the job is done).
type JobStatus struct {
	ID        string    `json:"id"`
	State     JobState  `json:"state"`
	Instance  string    `json:"instance"`
	CacheKey  string    `json:"cache_key"`
	Priority  int       `json:"priority"`
	Starts    int       `json:"starts"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	Resumed   int       `json:"resumed,omitempty"`
	Requeues  int       `json:"requeues,omitempty"`
	BSFCut    *int64    `json:"bsf_cut,omitempty"`
	BSF       []BSFLive `json:"bsf,omitempty"`
	ElapsedMS int64     `json:"elapsed_ms"`
	Error     string    `json:"error,omitempty"`
	// Worker and RemoteJob are set on coordinator job views: the node that
	// executed (or is executing) the job — "local" for single-node
	// degradation — and its job id there.
	Worker    string `json:"worker,omitempty"`
	RemoteJob string `json:"remote_job,omitempty"`
	// Report is the deterministic result document, present once State is
	// "done" or "failed".
	Report json.RawMessage `json:"report,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		Instance:  j.instName,
		CacheKey:  j.Key,
		Priority:  j.req.Priority,
		Starts:    j.req.Starts,
		Completed: j.completed,
		Failed:    j.failed,
		Resumed:   j.resumed,
		Requeues:  j.requeues,
		Error:     j.errMsg,
	}
	if len(j.bsf) > 0 {
		cut := j.bsfCut
		st.BSFCut = &cut
		st.BSF = append([]BSFLive(nil), j.bsf...)
	}
	switch {
	case j.state == JobQueued:
		st.ElapsedMS = 0
	case j.finished.IsZero():
		st.ElapsedMS = time.Since(j.started).Milliseconds()
	default:
		st.ElapsedMS = j.finished.Sub(j.started).Milliseconds()
	}
	if len(j.report) > 0 {
		st.Report = json.RawMessage(j.report)
	}
	return st
}

// noteStart records one finished start for the live BSF view. Called from
// harness worker goroutines in completion order. Doubles as a heartbeat: a
// completing start is progress by definition.
func (j *Job) noteStart(cut int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed++
	j.lastBeat = time.Now()
	if len(j.bsf) == 0 || cut < j.bsfCut {
		j.bsfCut = cut
		j.bsf = append(j.bsf, BSFLive{Completed: j.completed, Cut: cut})
	}
}

// beat refreshes the work-progress heartbeat the watchdog watches.
func (j *Job) beat() {
	j.mu.Lock()
	j.lastBeat = time.Now()
	j.mu.Unlock()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the terminal HTTP status, report bytes and error message.
// Valid only after Done() is closed.
func (j *Job) Result() (int, []byte, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.httpStatus, j.report, j.errMsg
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, httpStatus int, report []byte, errMsg string) {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled || j.state == JobInterrupted {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.httpStatus = httpStatus
	j.report = report
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// progressHeuristic wraps a Heuristic to feed the job's live BSF view. It
// changes nothing about the computation: outcomes pass through untouched,
// and panics propagate to the harness's recovery exactly as before.
type progressHeuristic struct {
	inner eval.Heuristic
	job   *Job
}

func (p progressHeuristic) Name() string { return p.inner.Name() }

func (p progressHeuristic) Run(r *rng.RNG) eval.Outcome {
	p.job.beat() // entering a start is progress; only a wedged start goes quiet
	o := p.inner.Run(r)
	p.job.noteStart(o.Cut)
	return o
}

func (p progressHeuristic) PolishBest(b *partition.P, r *rng.RNG) eval.Outcome {
	return p.inner.PolishBest(b, r)
}

// jobPQ is the priority queue: higher Priority first, FIFO within a
// priority level (by submission sequence number).
type jobPQ []*Job

func (q jobPQ) Len() int { return len(q) }
func (q jobPQ) Less(i, j int) bool {
	if q[i].req.Priority != q[j].req.Priority {
		return q[i].req.Priority > q[j].req.Priority
	}
	return q[i].seq < q[j].seq
}
func (q jobPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobPQ) Push(x any)   { *q = append(*q, x.(*Job)) }
func (q *jobPQ) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// Manager owns the bounded worker pool, the priority queue, and job
// lifecycle. Submissions coalesce by cache key: a second identical request
// while the first is queued or running joins the existing job (the
// singleflight the acceptance test verifies).
type Manager struct {
	workers          int
	startWorkers     int
	maxRefineThreads int
	queueCap         int
	historyCap       int
	maxRetries       int
	checkpointDir    string
	stuckAfter       time.Duration
	watchdogInterval time.Duration
	maxRequeues      int
	fs               chaos.FS
	factory          func(PartitionRequest, *hypergraph.Hypergraph, partition.Balance) func() eval.Heuristic
	cache            *Cache
	metrics          *Metrics
	log              *slog.Logger
	// store is the portfolio outcome store, shared by every mode=portfolio
	// job on this node. It lives next to the checkpoint journals so cluster
	// workers sharing a checkpoint dir warm-start each other; nil when
	// checkpointing is off or the store failed to open (portfolio jobs then
	// run storeless — the store is advisory and never changes results).
	store *portfolio.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	pq       jobPQ           //hglint:guardedby mu
	inflight map[string]*Job //hglint:guardedby mu
	jobs     map[string]*Job //hglint:guardedby mu
	order    []string        //hglint:guardedby mu
	nextSeq  int64           //hglint:guardedby mu
	running  int             //hglint:guardedby mu
	draining bool            //hglint:guardedby mu
	closed   bool            //hglint:guardedby mu
	wg       sync.WaitGroup
}

// errDraining rejects submissions during graceful drain.
var errDraining = fmt.Errorf("service is draining; retry against another instance")

// errQueueFull rejects submissions beyond the queue bound.
var errQueueFull = fmt.Errorf("job queue is full; retry later or lower the request rate")

// newManager starts the worker pool and, when StuckAfter is set, the
// watchdog that reclaims runs which stop making progress.
func newManager(cfg Config, cache *Cache, metrics *Metrics, log *slog.Logger) *Manager {
	m := &Manager{
		workers:          cfg.Workers,
		startWorkers:     cfg.StartWorkers,
		maxRefineThreads: cfg.MaxRefineThreads,
		queueCap:         cfg.QueueCap,
		historyCap:       cfg.HistoryCap,
		maxRetries:       cfg.MaxRetries,
		checkpointDir:    cfg.CheckpointDir,
		stuckAfter:       cfg.StuckAfter,
		watchdogInterval: cfg.WatchdogInterval,
		maxRequeues:      cfg.MaxRequeues,
		fs:               cfg.FS,
		factory:          cfg.testFactory,
		cache:            cache,
		metrics:          metrics,
		log:              log,
		inflight:         make(map[string]*Job),
		jobs:             make(map[string]*Job),
	}
	if m.fs == nil {
		m.fs = chaos.OS()
	}
	if m.factory == nil {
		m.factory = buildFactory
	}
	if m.checkpointDir != "" {
		path := filepath.Join(m.checkpointDir, "portfolio.store")
		st, err := portfolio.OpenStoreFS(m.fs, path)
		if err != nil {
			log.Warn("portfolio store open failed; racing storeless", "path", path, "err", err)
		} else {
			m.store = st
		}
	}
	m.cond = sync.NewCond(&m.mu)
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	for w := 0; w < m.workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	if m.stuckAfter > 0 {
		m.wg.Add(1)
		go m.watchdog()
	}
	return m
}

// watchdog periodically scans running jobs for stalled heartbeats and
// cancels runs that made no progress for stuckAfter. The cancelled run's
// worker decides between a bounded requeue (the journal preserves completed
// starts, so a requeue resumes rather than restarts) and a terminal 500.
func (m *Manager) watchdog() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.watchdogInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-ticker.C:
		}
		now := time.Now()
		var kicks []*Job
		m.mu.Lock()
		// Scan in submission order (m.order), not map order, so concurrent
		// stalls are kicked oldest-first deterministically.
		for _, id := range m.order {
			j, ok := m.jobs[id]
			if !ok {
				continue
			}
			j.mu.Lock()
			stuck := j.state == JobRunning && !j.kicked &&
				!j.lastBeat.IsZero() && now.Sub(j.lastBeat) > m.stuckAfter
			if stuck {
				j.kicked = true
				kicks = append(kicks, j)
			}
			j.mu.Unlock()
		}
		m.mu.Unlock()
		for _, j := range kicks {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			m.metrics.WatchdogKick()
			m.log.Warn("watchdog: job made no progress; cancelling run",
				"job", j.ID, "stuck_after", m.stuckAfter)
			if cancel != nil {
				cancel()
			}
		}
	}
}

// Submit enqueues a job for req (already normalized, validated and
// resolved). If an identical request (same cache key) is already queued or
// running, the existing job is returned with coalesced = true and nothing
// new is enqueued.
func (m *Manager) Submit(req PartitionRequest, inst *hypergraph.Hypergraph,
	instName, instHash, key string) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || m.closed {
		return nil, false, errDraining
	}
	if j, ok := m.inflight[key]; ok {
		return j, true, nil
	}
	if m.queueCap > 0 && len(m.pq) >= m.queueCap {
		return nil, false, errQueueFull
	}
	m.nextSeq++
	j := &Job{
		ID:       fmt.Sprintf("j-%06d", m.nextSeq),
		Key:      key,
		seq:      m.nextSeq,
		req:      req,
		inst:     inst,
		instName: instName,
		instHash: instHash,
		state:    JobQueued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.inflight[key] = j
	heap.Push(&m.pq, j)
	m.pruneLocked()
	m.metrics.JobSubmitted()
	m.cond.Signal()
	return j, false, nil
}

// Job looks a job up by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots all retained jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// QueueDepth returns the number of queued (not yet running) jobs.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.pq {
		j.mu.Lock()
		if j.state == JobQueued {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Running returns the number of jobs currently executing.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// Cancel cancels a job: a queued job terminates immediately (workers skip
// it), a running job has its context cancelled and finishes as canceled
// with partial starts checkpointed (if checkpointing is on).
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case JobQueued:
		m.removeInflight(j.Key)
		j.finish(JobCanceled, 409, nil, "job cancelled while queued")
		m.metrics.JobFinished(JobCanceled)
		return true
	case JobRunning:
		if cancel != nil {
			cancel()
		}
		return true
	default:
		return false
	}
}

// Drain performs the graceful SIGTERM sequence: stop accepting submissions,
// cancel queued jobs, cancel the contexts of running jobs (the harness lets
// in-flight starts finish and journals them), and wait — bounded by ctx —
// for every worker to go idle. After Drain returns, every job is terminal
// and every interrupted job's checkpoint is durable on disk.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	// Queued jobs never started: cancel them outright.
	for _, j := range m.pq {
		j.mu.Lock()
		queued := j.state == JobQueued
		j.mu.Unlock()
		if queued {
			delete(m.inflight, j.Key)
			j.finish(JobCanceled, 503, nil, "service draining before the job started")
			m.metrics.JobFinished(JobCanceled)
		}
	}
	m.pq = nil
	m.mu.Unlock()

	// Running jobs: cancel their contexts; RunMultistart stops dispatching
	// and the checkpoint journal retains every completed start.
	m.baseCancel()

	idle := make(chan struct{})
	go func() {
		m.mu.Lock()
		for m.running > 0 {
			m.cond.Wait()
		}
		m.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		return fmt.Errorf("drain: %w with %d jobs still running", ctx.Err(), m.Running())
	}

	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	if m.store != nil {
		m.store.Close()
	}
	return nil
}

// Close shuts the pool down without the drain semantics (tests).
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.draining = true
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
	if m.store != nil {
		m.store.Close()
	}
}

func (m *Manager) removeInflight(key string) {
	m.mu.Lock()
	delete(m.inflight, key)
	m.mu.Unlock()
}

// requeue puts a watchdog-kicked job back on the queue for another attempt.
// Returns false if the pool is draining or closed — the caller then fails
// the job instead. The live progress counters reset because the next attempt
// resumes from the journal and re-reports completions from there.
func (m *Manager) requeue(j *Job) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining || m.closed {
		return false
	}
	j.mu.Lock()
	j.state = JobQueued
	j.kicked = false
	j.requeues++
	j.cancel = nil
	j.completed = 0
	j.failed = 0
	j.bsf = nil
	j.bsfCut = 0
	j.mu.Unlock()
	heap.Push(&m.pq, j)
	m.cond.Signal()
	return true
}

// pruneLocked bounds job history: oldest terminal jobs beyond historyCap are
// forgotten. Queued and running jobs are never pruned.
func (m *Manager) pruneLocked() {
	if m.historyCap <= 0 || len(m.order) <= m.historyCap {
		return
	}
	kept := m.order[:0]
	excess := len(m.order) - m.historyCap
	for _, id := range m.order {
		j := m.jobs[id]
		terminal := false
		if j != nil {
			j.mu.Lock()
			terminal = j.state != JobQueued && j.state != JobRunning
			j.mu.Unlock()
		}
		if excess > 0 && (j == nil || terminal) {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// worker executes jobs until the pool closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pq) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.pq) == 0 {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.pq).(*Job)
		j.mu.Lock()
		skip := j.state != JobQueued
		if !skip {
			j.state = JobRunning
			j.started = time.Now()
			j.lastBeat = j.started
		}
		j.mu.Unlock()
		if skip {
			m.mu.Unlock()
			continue
		}
		m.running++
		m.mu.Unlock()

		m.run(j)

		m.mu.Lock()
		m.running--
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// buildFactory mirrors cmd/hgpart's engine construction: StrongConfig FM
// tuned per the paper's Tables 2/3, multilevel by default. Each factory call
// constructs a fresh heuristic with a generator derived from the request
// seed alone, so results are a pure function of (instance, config, seed).
func buildFactory(req PartitionRequest, h *hypergraph.Hypergraph, bal partition.Balance) func() eval.Heuristic {
	switch req.Engine {
	case "flat":
		return func() eval.Heuristic {
			return eval.NewFlat("flat-FM", h, core.StrongConfig(false), bal, rng.New(req.Seed))
		}
	case "clip":
		return func() eval.Heuristic {
			return eval.NewFlat("flat-CLIP", h, core.StrongConfig(true), bal, rng.New(req.Seed))
		}
	default:
		return func() eval.Heuristic {
			return eval.NewML("ML", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, req.VCycles)
		}
	}
}

// run executes one job end to end: multistart through the fault-tolerant
// harness under the job's context, deterministic report construction,
// cache fill, checkpoint lifecycle and metrics.
func (m *Manager) run(j *Job) {
	if j.req.Mode == "portfolio" {
		m.runPortfolio(j)
		return
	}
	t0 := time.Now()
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	bal := partition.NewBalance(j.inst.TotalVertexWeight(), j.req.Tolerance)
	raw := m.factory(j.req, j.inst, bal)
	factory := func() eval.Heuristic { return progressHeuristic{inner: raw(), job: j} }

	opt := eval.RunOptions{
		Workers:    j.req.Workers,
		MaxRetries: m.maxRetries,
		// Every served answer is verified against a from-scratch recount and
		// the balance constraint; an infeasible tolerance therefore fails all
		// starts and surfaces as 422 instead of a silently-illegal partition.
		Verify: eval.VerifyOutcome(bal),
		// When the watchdog cancels a wedged run, don't wait forever for the
		// wedged start: abandon it after the same stuck threshold so the
		// worker slot can requeue the job. Zero disables abandonment.
		AbandonGrace: m.stuckAfter,
	}
	if opt.Workers <= 0 || opt.Workers > m.startWorkers {
		opt.Workers = m.startWorkers
	}
	if j.req.WallBudgetMS > 0 {
		opt.WallBudget = time.Duration(j.req.WallBudgetMS) * time.Millisecond
	}
	opt.WorkBudget = j.req.WorkBudget

	var cpPath string
	if m.checkpointDir != "" {
		cpPath = filepath.Join(m.checkpointDir, j.Key+".jsonl")
		cp, err := eval.OpenCheckpointFS(m.fs, cpPath, j.Key, j.req.Seed, j.req.Starts, true)
		if err != nil {
			// A corrupt journal must not take the job down; run without one.
			m.log.Warn("checkpoint open failed; running without journal",
				"job", j.ID, "path", cpPath, "err", err)
			cpPath = ""
		} else {
			defer cp.Close()
			opt.Checkpoint = cp
			if q := cp.Quarantined(); len(q) > 0 {
				m.log.Warn("checkpoint journal had damaged records; quarantined",
					"job", j.ID, "records", len(q), "lost_starts", cp.LostStarts())
			}
			if n := cp.Resumed(); n > 0 {
				j.mu.Lock()
				j.resumed = n
				j.mu.Unlock()
				m.log.Info("resuming from checkpoint", "job", j.ID, "starts", n)
			}
		}
	}

	rep := eval.RunMultistart(ctx, factory, j.req.Starts, j.req.Seed, opt)
	m.metrics.ObserveRun(time.Since(t0), rep.TotalWork)
	if rep.JournalErr != nil {
		// Journal writes degraded (disk full, fsync failure, ...): the run's
		// answer is still sound, but a crash would lose the unjournaled
		// starts. Surface it loudly rather than silently losing durability.
		m.log.Error("checkpoint journal degraded; completed starts may not be durable",
			"job", j.ID, "path", cpPath, "err", rep.JournalErr)
	}

	// A watchdog kick is handled before anything else: the run was cancelled
	// not by a client or a drain but because it wedged, and the job deserves
	// another chance on a (possibly healthier) worker. The inflight entry is
	// kept across the requeue so identical submissions keep coalescing, and
	// the journal turns the retry into a resume of the completed starts.
	j.mu.Lock()
	kicked := j.kicked
	requeues := j.requeues
	j.mu.Unlock()
	if kicked && rep.Incomplete && rep.Reason == "cancelled" && !m.isDraining() {
		if requeues < m.maxRequeues && m.requeue(j) {
			m.metrics.JobRequeued()
			m.log.Warn("watchdog: requeued stuck job",
				"job", j.ID, "requeue", requeues+1, "of", m.maxRequeues,
				"completed", rep.Completed, "starts", j.req.Starts)
			return
		}
		m.removeInflight(j.Key)
		j.finish(JobFailed, 500, nil, fmt.Sprintf(
			"job made no progress for %s and exhausted %d requeue(s); %d of %d starts checkpointed",
			m.stuckAfter, m.maxRequeues, rep.Completed, j.req.Starts))
		m.metrics.JobFinished(JobFailed)
		m.log.Error("watchdog: job failed after exhausting requeues",
			"job", j.ID, "requeues", requeues, "completed", rep.Completed)
		return
	}
	m.removeInflight(j.Key)

	switch {
	case rep.Incomplete && rep.Reason == "cancelled":
		if m.isDraining() {
			j.finish(JobInterrupted, 503, nil, fmt.Sprintf(
				"service drained mid-run: %d of %d starts checkpointed; resubmit the identical request to resume",
				rep.Completed, j.req.Starts))
			m.metrics.JobFinished(JobInterrupted)
			m.log.Info("job interrupted by drain", "job", j.ID,
				"completed", rep.Completed, "starts", j.req.Starts, "checkpoint", cpPath)
		} else {
			j.finish(JobCanceled, 409, nil, fmt.Sprintf(
				"job cancelled: %d of %d starts completed", rep.Completed, j.req.Starts))
			m.metrics.JobFinished(JobCanceled)
		}
		return
	case rep.BestIdx < 0:
		msg := "no legal partition found (tolerance may be infeasible)"
		if fr := firstErr(rep); fr != "" {
			msg += ": " + fr
		}
		if cpPath != "" {
			m.fs.Remove(cpPath)
		}
		j.finish(JobFailed, 422, nil, msg)
		m.metrics.JobFinished(JobFailed)
		return
	}

	report, err := m.buildReport(ctx, j, bal, raw, rep)
	if err != nil {
		j.finish(JobFailed, 500, nil, err.Error())
		m.metrics.JobFinished(JobFailed)
		m.log.Error("report construction failed", "job", j.ID, "err", err)
		return
	}
	body, err := json.Marshal(report)
	if err != nil {
		j.finish(JobFailed, 500, nil, fmt.Sprintf("encode report: %v", err))
		m.metrics.JobFinished(JobFailed)
		return
	}
	if !rep.Incomplete {
		// Complete runs are deterministic: cache the bytes and retire the
		// journal — the cache now answers faster than a resume would.
		m.cache.Put(j.Key, body)
		if cpPath != "" {
			m.fs.Remove(cpPath)
		}
	}
	j.finish(JobDone, 200, body, "")
	m.metrics.JobFinished(JobDone)
	m.log.Info("job done", "job", j.ID, "instance", j.instName,
		"cut", report.Cut, "work", report.Work, "incomplete", report.Incomplete,
		"elapsed_ms", time.Since(t0).Milliseconds())
}

// buildReport assembles the deterministic Report from the harness result.
// ctx bounds the optional parallel-refine polish; a cancelled polish fails
// the job rather than caching a partially refined answer.
func (m *Manager) buildReport(ctx context.Context, j *Job, bal partition.Balance,
	raw func() eval.Heuristic, rep *eval.RunReport) (*Report, error) {
	best := rep.Best
	if best.P == nil {
		// The best start was resumed from the journal: recompute exactly
		// that start to recover its partition. Determinism makes this a
		// lookup, not a gamble — the cut must match the journaled one.
		o, err := eval.RerunStart(raw, j.req.Seed, rep.BestIdx, rep.Results[rep.BestIdx].Attempts)
		if err != nil {
			return nil, fmt.Errorf("recompute resumed best start %d: %w", rep.BestIdx, err)
		}
		if o.Cut != best.Cut {
			return nil, fmt.Errorf("recomputed start %d cut %d != journaled %d (corrupt checkpoint?)",
				rep.BestIdx, o.Cut, best.Cut)
		}
		best = o
	}

	work := rep.TotalWork
	cut := best.Cut
	// ML V-cycle polish on the best solution, with the same derived seed the
	// CLI uses, so service and CLI answers agree byte for byte.
	if j.req.Engine == "ml" && j.req.VCycles > 0 {
		if polish := raw().PolishBest(best.P, rng.New(j.req.Seed^0x9e3779b97f4a7c15)); polish.P != nil {
			cut = polish.Cut
			work += polish.Work
		}
	}

	// Optional deterministic parallel FM polish: synchronous rounds of
	// parallel evaluation with a vertex-ID-ordered commit, so the refined
	// partition — and therefore the report bytes — is identical at every
	// positive thread count (matching the thread-count-free cache key). The
	// requested count is an execution knob only and is clamped to the
	// server's cap. A ctx-cancelled polish aborts the report instead of
	// caching a partially refined answer.
	var refineRounds int
	var refineMoves int64
	side0, side1 := best.P.Area(0), best.P.Area(1)
	if j.req.RefineThreads > 0 {
		threads := j.req.RefineThreads
		if m.maxRefineThreads > 0 && threads > m.maxRefineThreads {
			threads = m.maxRefineThreads
		}
		parts := make(objective.Assignment, j.inst.NumVertices())
		for v := range parts {
			parts[v] = int32(best.P.Side(int32(v)))
		}
		pres, err := kwayfm.ParRefine(ctx, j.inst, parts, 2, kwayfm.ParConfig{
			Objective: kwayfm.CutObjective,
			Threads:   threads,
			LoBound:   bal.Lo,
			HiBound:   bal.Hi,
		})
		if err != nil {
			return nil, fmt.Errorf("parallel refine polish: %w", err)
		}
		cut = pres.Final
		work += pres.Work
		refineRounds = pres.Rounds
		refineMoves = pres.Moves
		side0, side1 = 0, 0
		for v, p := range parts {
			if p == 0 {
				side0 += j.inst.VertexWeight(int32(v))
			} else {
				side1 += j.inst.VertexWeight(int32(v))
			}
		}
	}

	r := &Report{
		Schema:       "hgserved/v1",
		Instance:     j.instName,
		InstanceHash: j.instHash,
		Vertices:     j.inst.NumVertices(),
		Edges:        j.inst.NumEdges(),
		Pins:         j.inst.NumPins(),
		Engine:       j.req.Engine,
		Starts:       j.req.Starts,
		VCycles:      j.req.VCycles,
		Tolerance:    j.req.Tolerance,
		Seed:         j.req.Seed,
		CacheKey:     j.Key,
		Cut:          cut,
		MinCut:       rep.Best.Cut,
		BestStart:    rep.BestIdx,
		Side0:        side0,
		Side1:        side1,
		RefineRounds: refineRounds,
		RefineMoves:  refineMoves,
		Completed:    rep.Completed,
		Failed:       rep.Failed,
		Skipped:      rep.Skipped,
		Incomplete:   rep.Incomplete,
		Reason:       rep.Reason,
		Work:         work,
	}
	r.NormalizedSeconds = float64(work) / eval.WorkUnitsPerSecond

	// Start-order BSF trajectory and the min/avg discipline over successful
	// starts: both pure functions of the per-start outcomes.
	var sum int64
	n := 0
	for _, sr := range rep.Results {
		if sr.Status != eval.StartOK {
			continue
		}
		sum += sr.Outcome.Cut
		n++
		if len(r.BSF) == 0 || sr.Outcome.Cut < r.BSF[len(r.BSF)-1].Cut {
			r.BSF = append(r.BSF, BSFEntry{Start: sr.Start, Cut: sr.Outcome.Cut})
		}
	}
	if n > 0 {
		r.AvgCut = float64(sum) / float64(n)
	}
	return r, nil
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// firstErr extracts the first per-start failure message, if any.
func firstErr(rep *eval.RunReport) string {
	for _, sr := range rep.Results {
		if sr.Err != nil {
			return sr.Err.Error()
		}
	}
	return ""
}
