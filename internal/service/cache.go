package service

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: marshaled Report bytes keyed
// by the cache key of (instance hash, partitioning config, seed). Reports
// are deterministic, so an entry never goes stale — eviction exists only to
// bound memory, LRU over both an entry count and a total byte budget.
//
// Hit/miss accounting is the service's singleflight evidence: N concurrent
// identical requests must record exactly one miss (the flight leader) with
// the followers counted as coalesced, and later identical requests as hits.
type Cache struct {
	mu         sync.Mutex
	maxEntries int   // immutable after NewCache
	maxBytes   int64 // immutable after NewCache
	bytes      int64 //hglint:guardedby mu
	// ll orders entries front = most recently used.
	ll    *list.List               //hglint:guardedby mu
	items map[string]*list.Element //hglint:guardedby mu

	hits, misses, coalesced, evictions int64 //hglint:guardedby mu
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache builds a cache bounded to maxEntries entries and maxBytes total
// body bytes (either <= 0 disables that bound; both <= 0 means unbounded).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the cached report bytes for key, updating recency and the
// hit counter. The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Peek returns the cached bytes for key without touching the hit counter or
// recency order. Sibling workers use it to serve peer cache lookups, so a
// peer's probes never skew this node's own hit-rate accounting.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).body, true
}

// Miss records one cache miss (called by the flight leader exactly once per
// computed report).
func (c *Cache) Miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Coalesced records one coalesced request (a follower that piggybacked on an
// in-flight identical computation — neither hit nor miss).
func (c *Cache) Coalesced() {
	c.mu.Lock()
	c.coalesced++
	c.mu.Unlock()
}

// Put stores body under key and evicts LRU entries beyond the bounds. A body
// alone larger than the byte budget is simply not cached.
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(body)) > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot for /metrics.
type CacheStats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Coalesced int64
	Evictions int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
	}
}
