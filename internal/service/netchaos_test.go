package service_test

// DESIGN.md §16 contract tests: the integrity envelope demotes corrupted
// internal responses to retries/misses without ever touching the result
// cache, the per-worker circuit breaker recovers deterministically through
// half-open, and propagated dispatch deadlines abandon work whose
// coordinator has moved on. All failures here are injected — either by the
// chaos net transport or by hand-built misbehaving peers — so every
// assertion also pins byte-identity against an unfaulted baseline.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"testing"
	"time"

	"hgpart/internal/chaos"
	"hgpart/internal/service"
)

// getText fetches a plain-text endpoint (e.g. /metrics) as a string.
func getText(t *testing.T, hs *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(hs.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(b)
}

// waitBreaker polls GET /v1/cluster until the named worker's breaker reports
// the wanted state.
func waitBreaker(t *testing.T, hs *httptest.Server, addr, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st service.ClusterStatus
		if code := getJSON(t, hs, "/v1/cluster", &st); code != 200 {
			t.Fatalf("GET /v1/cluster: %d", code)
		}
		for _, w := range st.Workers {
			if w.Addr == addr && w.Breaker == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never reached breaker state %q: %+v", addr, want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// mustRules parses a chaos spec or fails the test.
func mustRules(t *testing.T, spec string) []chaos.Rule {
	t.Helper()
	rules, err := chaos.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return rules
}

// The breaker recovery satellite: probes are stepped one at a time through a
// test-controlled /readyz, so the exact transition sequence closed → open →
// half-open → closed is observable, local fallback covers the outage, and a
// post-recovery submission routes back to the worker.
func TestClusterBreakerHeartbeatRecovery(t *testing.T) {
	_, single := testServer(t, nil)
	_, baseline := post(t, single, smallReq)

	_, worker := testServer(t, nil)
	wu, err := url.Parse(worker.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(wu)

	// Each /readyz probe blocks until the test feeds it a status code, so the
	// breaker walks its state machine exactly one probe at a time. Everything
	// else proxies to the real worker.
	codes := make(chan int)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(<-codes)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)
	frontAddr := strings.TrimPrefix(front.URL, "http://")

	_, hs := testServer(t, func(c *service.Config) {
		c.Cluster = service.ClusterConfig{
			Workers:           []string{frontAddr},
			HeartbeatInterval: 10 * time.Millisecond,
			// Probes block on the test's channel; the timeout must not turn
			// that deliberate pause into a counted failure.
			HeartbeatTimeout: 30 * time.Second,
			FailThreshold:    2,
			DispatchRetries:  1,
			RetrySeed:        1,
		}
	})

	// FailThreshold consecutive probe failures trip the breaker open.
	codes <- 503
	codes <- 503
	waitBreaker(t, hs, frontAddr, "open")

	// With the only worker out of rotation the coordinator degrades to a
	// local compute — byte-identical, disposition visible.
	resp, body := post(t, hs, smallReq)
	if resp.StatusCode != 200 || resp.Header.Get("X-Hgserved-Cache") != "local-fallback" {
		t.Fatalf("open-breaker submit: status %d disposition %q, want 200/local-fallback",
			resp.StatusCode, resp.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body, baseline) {
		t.Fatal("local-fallback body differs from single-node baseline")
	}

	// One probe success half-opens; the next closes. Both states must be
	// visible in /v1/cluster, in order.
	codes <- 200
	waitBreaker(t, hs, frontAddr, "half-open")
	codes <- 200
	waitBreaker(t, hs, frontAddr, "closed")
	go func() { // keep later probes unblocked
		for {
			select {
			case codes <- 200:
			case <-time.After(10 * time.Second):
				return
			}
		}
	}()
	waitClusterHealthy(t, hs, 1)

	// A fresh request (different seed, so no coordinator cache hit) routes to
	// the recovered worker instead of falling back locally.
	req2 := `{"benchmark":"ibm01","scale":0.1,"engine":"flat","starts":3,"seed":8}`
	resp2, body2 := post(t, hs, req2)
	if resp2.StatusCode != 200 {
		t.Fatalf("post-recovery submit: status %d, body %s", resp2.StatusCode, body2)
	}
	var st service.JobStatus
	if code := getJSON(t, hs, "/v1/jobs/"+resp2.Header.Get("X-Hgserved-Job"), &st); code != 200 {
		t.Fatalf("job status fetch: %d", code)
	}
	if st.Worker != frontAddr {
		t.Fatalf("post-recovery job ran on %q, want routed to recovered worker %q", st.Worker, frontAddr)
	}
}

// A bit-corrupted dispatch response fails the sha256 envelope, is retried to
// a clean success, and never reaches the coordinator's result cache: the
// repeat request is a cache hit with the uncorrupted bytes.
func TestDispatchCorruptionRetriesAndNeverPoisonsCache(t *testing.T) {
	_, single := testServer(t, nil)
	_, baseline := post(t, single, smallReq)

	_, worker := testServer(t, nil)
	workerAddr := strings.TrimPrefix(worker.URL, "http://")
	_, hs := testServer(t, func(c *service.Config) {
		c.Transport = chaos.NewTransport(nil, chaos.Config{
			Seed:  1,
			Rules: mustRules(t, "net:/v1/partition:1:corrupt"),
		})
		c.Cluster = service.ClusterConfig{
			Workers:           []string{workerAddr},
			HeartbeatInterval: 20 * time.Millisecond,
			DispatchRetries:   3,
			RetrySeed:         1,
		}
	})
	waitClusterHealthy(t, hs, 1)

	resp, body := post(t, hs, smallReq)
	if resp.StatusCode != 200 {
		t.Fatalf("corrupted-then-retried dispatch: status %d, body %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, baseline) {
		t.Fatal("body after integrity retry differs from baseline")
	}

	metrics := getText(t, hs, "/metrics")
	for _, want := range []string{
		`hgserved_integrity_failures_total{source="dispatch"} 1`,
		`hgserved_net_faults_injected_total{fault="corrupt"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// The cache holds only verified bytes: a repeat is a hit, still identical.
	resp2, body2 := post(t, hs, smallReq)
	if resp2.Header.Get("X-Hgserved-Cache") != "hit" || !bytes.Equal(body2, baseline) {
		t.Fatalf("repeat: disposition %q identical=%v, want an unpoisoned cache hit",
			resp2.Header.Get("X-Hgserved-Cache"), bytes.Equal(body2, baseline))
	}
}

// A peer whose cache response fails the integrity envelope is demoted to a
// miss: the worker computes locally, serves correct bytes, and counts the
// failure under source="peer".
func TestPeerIntegrityMismatchDemotesToMiss(t *testing.T) {
	_, single := testServer(t, nil)
	_, baseline := post(t, single, smallReq)

	// A lying peer: 200 for every cache key, body and sha disagreeing.
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Hg-Body-Sha256", strings.Repeat("0", 64))
		fmt.Fprint(w, `{"fake":"report"}`)
	}))
	t.Cleanup(liar.Close)

	_, hs := testServer(t, func(c *service.Config) {
		c.Peers = []string{strings.TrimPrefix(liar.URL, "http://")}
		c.PeerTimeout = 500 * time.Millisecond
	})
	resp, body := post(t, hs, smallReq)
	if resp.StatusCode != 200 || resp.Header.Get("X-Hgserved-Cache") != "miss" {
		t.Fatalf("status %d disposition %q, want 200/miss (corrupt peer must demote, not poison)",
			resp.StatusCode, resp.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body, baseline) {
		t.Fatal("locally recomputed body differs from baseline")
	}
	if m := getText(t, hs, "/metrics"); !strings.Contains(m, `hgserved_integrity_failures_total{source="peer"} 1`) {
		t.Fatalf("metrics missing peer integrity failure:\n%s", m)
	}
}

// postWithDeadline submits a partition request carrying an X-Hg-Deadline
// header, the way a dispatching coordinator would.
func postWithDeadline(t *testing.T, hs *httptest.Server, body, deadline string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/partition", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Hg-Deadline", deadline)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/partition: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// A propagated deadline already in the past abandons the job before any
// compute starts: HTTP 504, counted in the abandon metric.
func TestDeadlineExpiredOnArrival(t *testing.T) {
	_, hs := testServer(t, nil)
	past := fmt.Sprint(time.Now().Add(-time.Second).UnixMilli())
	resp, body := postWithDeadline(t, hs, smallReq, past)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s; want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "already passed") {
		t.Fatalf("504 body %q should say the deadline already passed", body)
	}
	if m := getText(t, hs, "/metrics"); !strings.Contains(m, "hgserved_deadline_abandons_total 1") {
		t.Fatalf("metrics missing deadline abandon:\n%s", m)
	}

	// A malformed deadline is a client error, not a silent ignore.
	respBad, _ := postWithDeadline(t, hs, smallReq, "not-a-timestamp")
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d, want 400", respBad.StatusCode)
	}
}

// A deadline that passes mid-compute abandons the synchronous wait with a
// 504; the job is cancelled rather than computed for a coordinator that has
// already failed the job over.
func TestDeadlineAbandonsMidJob(t *testing.T) {
	_, hs := testServer(t, nil)
	slow := `{"benchmark":"ibm01","scale":0.25,"engine":"flat","starts":40,"seed":11}`
	soon := fmt.Sprint(time.Now().Add(150 * time.Millisecond).UnixMilli())
	resp, body := postWithDeadline(t, hs, slow, soon)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s; want 504 mid-job abandon", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "abandoned") {
		t.Fatalf("504 body %q should describe the abandon", body)
	}
	if m := getText(t, hs, "/metrics"); !strings.Contains(m, "hgserved_deadline_abandons_total 1") {
		t.Fatalf("metrics missing deadline abandon:\n%s", m)
	}
}
