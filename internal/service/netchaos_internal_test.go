package service

// In-package tests for the DESIGN.md §16 plumbing that has no public seam:
// the peer probe's body bound, the integrity/deadline header helpers, and
// the exact Prometheus lines the new counters render.

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// peerServing builds a PeerSet probing one fake sibling that answers every
// cache lookup with body (integrity header included), bounded at maxBody.
func peerServing(t *testing.T, body []byte, maxBody int64) *PeerSet {
	t.Helper()
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(integrityHeader, bodySHA(body))
		w.Write(body)
	}))
	t.Cleanup(peer.Close)
	p := NewPeerSet([]string{strings.TrimPrefix(peer.URL, "http://")},
		time.Second, nil, NewMetrics(8), discardLogger())
	p.maxBody = maxBody
	return p
}

// The satellite regression: a peer streaming more than the body bound is a
// miss — never a truncated "hit" — while a body exactly at the bound passes.
func TestPeerLookupBoundsResponseBody(t *testing.T) {
	const key = "deadbeefdeadbeef"
	oversized := peerServing(t, bytes.Repeat([]byte("x"), 4096), 1024)
	if _, ok := oversized.Lookup(context.Background(), key); ok {
		t.Fatal("a 4096-byte body against a 1024-byte bound must be a miss")
	}

	exact := bytes.Repeat([]byte("y"), 1024)
	fits := peerServing(t, exact, 1024)
	got, ok := fits.Lookup(context.Background(), key)
	if !ok || !bytes.Equal(got, exact) {
		t.Fatalf("a body exactly at the bound must be a verbatim hit (ok=%v, %d bytes)", ok, len(got))
	}
}

func TestIntegrityHelpers(t *testing.T) {
	body := []byte("report bytes")
	h := http.Header{}
	if !integrityOK(h, body) {
		t.Fatal("a missing envelope header must pass (mixed-version rollout)")
	}
	h.Set(integrityHeader, bodySHA(body))
	if !integrityOK(h, body) {
		t.Fatal("a matching sha256 envelope must pass")
	}
	if integrityOK(h, []byte("report byteZ")) {
		t.Fatal("a mismatched body must fail the envelope")
	}
}

func TestParseDeadlineHeader(t *testing.T) {
	if _, ok, err := parseDeadline(http.Header{}); ok || err != nil {
		t.Fatalf("absent header: ok=%v err=%v, want no deadline and no error", ok, err)
	}
	h := http.Header{}
	h.Set(deadlineHeader, "1754000000000")
	dl, ok, err := parseDeadline(h)
	if err != nil || !ok || dl.UnixMilli() != 1754000000000 {
		t.Fatalf("valid header: dl=%v ok=%v err=%v", dl, ok, err)
	}
	h.Set(deadlineHeader, "soon")
	if _, _, err := parseDeadline(h); err == nil || !strings.Contains(err.Error(), "unix milliseconds") {
		t.Fatalf("malformed header error %v should name the expected format", err)
	}
}

// The metrics-surface satellite: every new series renders with its exact
// name, labels sorted, including the per-worker breaker gauge.
func TestMetricsRenderNetChaosSurface(t *testing.T) {
	m := NewMetrics(8)
	m.NetFaultInjected("refused")
	m.NetFaultInjected("refused")
	m.NetFaultInjected("corrupt")
	m.IntegrityFailure("peer")
	m.IntegrityFailure("dispatch")
	m.DeadlineAbandon()

	var buf bytes.Buffer
	m.Render(&buf, GaugeSnapshot{Breakers: map[string]int{"w2:9001": 2, "w1:9001": 0}})
	out := buf.String()
	for _, want := range []string{
		`hgserved_net_faults_injected_total{fault="corrupt"} 1`,
		`hgserved_net_faults_injected_total{fault="refused"} 2`,
		`hgserved_integrity_failures_total{source="dispatch"} 1`,
		`hgserved_integrity_failures_total{source="peer"} 1`,
		`hgserved_breaker_state{worker="w1:9001"} 0`,
		`hgserved_breaker_state{worker="w2:9001"} 2`,
		"hgserved_deadline_abandons_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, `worker="w1:9001"`) > strings.Index(out, `worker="w2:9001"`) {
		t.Fatal("breaker gauge labels must render in sorted order")
	}
}
