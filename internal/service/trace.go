package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"hgpart/internal/core"
	"hgpart/internal/netlist"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
	"hgpart/internal/trace"
)

// The trace endpoint is the service face of the paper's diagnostic
// methodology: the corking effect was found in "traces of CLIP executions",
// and hgpart exposes the same evidence via -trace. POST /v1/trace runs one
// traced flat/clip start and returns the per-pass cut curve summaries —
// deterministic for a given (instance, engine, seed), like every other
// answer the daemon gives.

// TracePass is one FM pass of a traced run.
type TracePass struct {
	Pass       int   `json:"pass"`
	StartCut   int64 `json:"start_cut"`
	EndCut     int64 `json:"end_cut"`
	Moves      int64 `json:"moves"`
	RolledBack int   `json:"rolled_back"`
}

// TraceReport is the POST /v1/trace response document.
type TraceReport struct {
	Schema       string  `json:"schema"`
	Instance     string  `json:"instance"`
	InstanceHash string  `json:"instance_hash"`
	Engine       string  `json:"engine"`
	Tolerance    float64 `json:"tolerance"`
	Seed         uint64  `json:"seed"`

	Cut               int64       `json:"cut"`
	Passes            []TracePass `json:"passes"`
	TotalMoves        int64       `json:"total_moves"`
	TotalRolledBack   int64       `json:"total_rolled_back"`
	ShortestPassMoves int64       `json:"shortest_pass_moves"`
}

// handleTrace runs a single traced start inline (one FM run, no queueing)
// and returns the pass summaries.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		errorBody(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	req.normalize()
	if err := req.validate(); err != nil {
		errorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Engine != "flat" && req.Engine != "clip" {
		errorBody(w, http.StatusBadRequest, "trace requires engine flat or clip (pass tracers exist for the flat FM engines)")
		return
	}
	h, instName, err := req.resolveInstance()
	if err != nil {
		var pe *netlist.ParseError
		if errors.As(err, &pe) {
			errorBody(w, http.StatusBadRequest, pe.Format+" instance rejected: "+pe.Error())
			return
		}
		errorBody(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.admitInstance(w, h) {
		return
	}

	bal := partition.NewBalance(h.TotalVertexWeight(), req.Tolerance)
	gen := rng.New(req.Seed)
	eng := core.NewEngine(h, core.StrongConfig(req.Engine == "clip"), bal, gen)
	rec := &trace.Recorder{}
	eng.SetTracer(rec)
	p := partition.New(h)
	p.RandomBalanced(gen, bal)
	res := eng.Run(p)

	sum := rec.Summarize()
	rep := TraceReport{
		Schema:            "hgserved/trace/v1",
		Instance:          instName,
		InstanceHash:      instanceHash(h),
		Engine:            req.Engine,
		Tolerance:         req.Tolerance,
		Seed:              req.Seed,
		Cut:               res.Cut,
		TotalMoves:        sum.TotalMoves,
		TotalRolledBack:   sum.TotalRolledBack,
		ShortestPassMoves: sum.ShortestPassMoves,
	}
	for _, pr := range rec.Passes() {
		rep.Passes = append(rep.Passes, TracePass{
			Pass: pr.Pass, StartCut: pr.StartCut, EndCut: pr.EndCut,
			Moves: pr.Moves, RolledBack: pr.RolledBack,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rep)
}
