package service

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over cluster worker addresses. Jobs route
// by their content-addressed cache key, so the same (instance, config,
// seed) always prefers the same worker — which is what makes each worker's
// result cache and checkpoint journal directory hot for the keys it owns.
// Virtual replicas smooth the load split; the ring is a pure function of
// (nodes, replicas), never of insertion order or wall clock, so every
// coordinator over the same worker list routes identically.
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node string
}

// ringHash hashes a label onto the ring: the first 8 bytes of its SHA-256,
// big-endian. SHA-256 keeps the placement independent of Go's runtime map
// or string hash, which may change between releases.
func ringHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over nodes with the given number of virtual
// replicas per node (<= 0 means 64). Duplicate nodes collapse to one.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// itoa is a dependency-free strconv.Itoa for small non-negative ints.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// Nodes returns the distinct ring members in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Order returns every node in preference order for key: the owner (first
// ring point at or after the key's hash) first, then each subsequent
// distinct node walking the ring. Failover uses the same order, so a dead
// owner's keys land on a stable, predictable successor.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for k := 0; k < len(r.points) && len(out) < len(r.nodes); k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the first-choice node for key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	o := r.Order(key)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
