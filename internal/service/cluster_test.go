package service_test

// Coordinator/worker cluster tests over httptest servers: routing through a
// real worker, graceful degradation to local compute against a dead fleet,
// peer cache probing with fall-through, and the singleflight waiter-cancel
// discipline. The SIGKILL/restart variants live in cmd/hgchaos; these cover
// the same contracts at unit scale.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hgpart/internal/service"
)

// deadAddr reserves a loopback port and releases it, yielding an address
// that refuses connections promptly.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitClusterHealthy polls GET /v1/cluster until the healthy worker count
// matches, so tests don't race the heartbeat prober.
func waitClusterHealthy(t *testing.T, hs *httptest.Server, want int) service.ClusterStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st service.ClusterStatus
		if code := getJSON(t, hs, "/v1/cluster", &st); code != 200 {
			t.Fatalf("GET /v1/cluster: %d", code)
		}
		if st.Healthy == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached %d healthy workers: %+v", want, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A coordinator whose entire fleet is unreachable must still answer: the job
// computes locally (disposition "local-fallback"), the body is byte-identical
// to a single-node server's, and /v1/cluster reports the degradation.
func TestClusterDegradesToLocalCompute(t *testing.T) {
	_, single := testServer(t, nil)
	_, baseline := post(t, single, smallReq)

	w1, w2 := deadAddr(t), deadAddr(t)
	_, hs := testServer(t, func(c *service.Config) {
		c.Cluster = service.ClusterConfig{
			Workers:           []string{w1, w2},
			HeartbeatInterval: 20 * time.Millisecond,
			DispatchRetries:   1,
			RetrySeed:         1,
		}
	})
	waitClusterHealthy(t, hs, 0)

	resp, body := post(t, hs, smallReq)
	if resp.StatusCode != 200 {
		t.Fatalf("degraded coordinator: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Hgserved-Cache"); got != "local-fallback" {
		t.Fatalf("disposition %q, want local-fallback", got)
	}
	if !bytes.Equal(body, baseline) {
		t.Fatalf("degraded-mode body differs from single-node baseline:\n%s\nvs\n%s", body, baseline)
	}

	st := waitClusterHealthy(t, hs, 0)
	if st.Mode != "coordinator" || st.LocalFallbacks < 1 {
		t.Fatalf("cluster status %+v, want coordinator mode with >=1 local fallback", st)
	}
}

// Routing through a live worker: the coordinator's response is the worker's
// response verbatim (byte-identical to single-node), the coordinator caches
// it so a repeat is a coordinator-side hit, and status names the worker.
func TestClusterRoutesToWorker(t *testing.T) {
	_, single := testServer(t, nil)
	_, baseline := post(t, single, smallReq)

	_, worker := testServer(t, nil)
	workerAddr := strings.TrimPrefix(worker.URL, "http://")
	_, hs := testServer(t, func(c *service.Config) {
		c.Cluster = service.ClusterConfig{
			Workers:           []string{workerAddr},
			HeartbeatInterval: 20 * time.Millisecond,
			RetrySeed:         1,
		}
	})
	waitClusterHealthy(t, hs, 1)

	resp, body := post(t, hs, smallReq)
	if resp.StatusCode != 200 {
		t.Fatalf("routed request: status %d, body %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, baseline) {
		t.Fatalf("routed body differs from single-node baseline:\n%s\nvs\n%s", body, baseline)
	}
	jobID := resp.Header.Get("X-Hgserved-Job")
	if !strings.HasPrefix(jobID, "c-") {
		t.Fatalf("X-Hgserved-Job = %q, want a coordinator job id", jobID)
	}
	var st struct {
		Worker string `json:"worker"`
		State  string `json:"state"`
	}
	if code := getJSON(t, hs, "/v1/jobs/"+jobID, &st); code != 200 {
		t.Fatalf("GET /v1/jobs/%s: %d", jobID, code)
	}
	if st.Worker != workerAddr || st.State != "done" {
		t.Fatalf("job status %+v, want done on worker %s", st, workerAddr)
	}

	resp2, body2 := post(t, hs, smallReq)
	if resp2.Header.Get("X-Hgserved-Cache") != "hit" || !bytes.Equal(body2, baseline) {
		t.Fatalf("repeat request: disposition %q, identical=%v; want coordinator cache hit",
			resp2.Header.Get("X-Hgserved-Cache"), bytes.Equal(body2, baseline))
	}
}

// Peer cache probing: a worker whose sibling already holds the result serves
// it with disposition "peer" and byte-identical bytes; dead or empty peers
// degrade silently to local compute — never an error.
func TestPeerCacheHitAndFallThrough(t *testing.T) {
	_, a := testServer(t, nil)
	respA, bodyA := post(t, a, smallReq)
	if respA.StatusCode != 200 {
		t.Fatalf("prime peer A: %d", respA.StatusCode)
	}
	aAddr := strings.TrimPrefix(a.URL, "http://")

	// B probes a dead sibling first, then A: the dead probe falls through and
	// the hit still lands.
	_, b := testServer(t, func(c *service.Config) {
		c.Peers = []string{deadAddr(t), aAddr}
		c.PeerTimeout = 200 * time.Millisecond
	})
	respB, bodyB := post(t, b, smallReq)
	if respB.StatusCode != 200 || respB.Header.Get("X-Hgserved-Cache") != "peer" {
		t.Fatalf("peer lookup: status %d disposition %q, want 200/peer",
			respB.StatusCode, respB.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(bodyB, bodyA) {
		t.Fatalf("peer-served body differs:\n%s\nvs\n%s", bodyB, bodyA)
	}

	// C has only a dead peer: the probe times out / refuses and C computes
	// locally — a miss, not a 5xx.
	_, cSrv := testServer(t, func(c *service.Config) {
		c.Peers = []string{deadAddr(t)}
		c.PeerTimeout = 50 * time.Millisecond
	})
	respC, bodyC := post(t, cSrv, smallReq)
	if respC.StatusCode != 200 || respC.Header.Get("X-Hgserved-Cache") != "miss" {
		t.Fatalf("dead-peer fall-through: status %d disposition %q, want 200/miss",
			respC.StatusCode, respC.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(bodyC, bodyA) {
		t.Fatalf("locally computed body differs from peer A's:\n%s\nvs\n%s", bodyC, bodyA)
	}
}

// Singleflight waiter-cancel regression (the audit behind DESIGN.md §12's
// waiter-detach rule): a coalesced waiter that cancels mid-flight detaches
// with its own 499 while the leader's job — whose context derives from the
// server, not any request — runs to completion, fills the cache, and leaves
// exactly one miss.
func TestSingleflightWaiterCancelDoesNotPoisonFlight(t *testing.T) {
	srv, hs := testServer(t, nil)
	// Slow enough that the waiter can join and cancel while the leader is
	// still computing.
	req := `{"benchmark":"ibm01","scale":0.25,"engine":"flat","starts":40,"seed":11}`

	leaderDone := make(chan struct {
		code int
		body []byte
	}, 1)
	go func() {
		resp, body := post(t, hs, req)
		leaderDone <- struct {
			code int
			body []byte
		}{resp.StatusCode, body}
	}()

	// Wait for the leader's flight to open.
	deadline := time.Now().Add(5 * time.Second)
	for srv.CacheStats().Misses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader flight never opened")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The waiter coalesces onto the flight, then cancels.
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		hreq, err := http.NewRequestWithContext(ctx, "POST", hs.URL+"/v1/partition", strings.NewReader(req))
		if err != nil {
			waiterErr <- err
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		waiterErr <- err
	}()
	for srv.CacheStats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced onto the leader's flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-waiterErr; err == nil {
		t.Fatal("cancelled waiter should see its request aborted")
	}

	// The leader is unaffected by the waiter's departure.
	res := <-leaderDone
	if res.code != 200 {
		t.Fatalf("leader status %d after waiter cancel, body %s", res.code, res.body)
	}

	// The flight completed and cached: a third request is a pure hit and the
	// miss count never grew.
	resp, body := post(t, hs, req)
	if resp.Header.Get("X-Hgserved-Cache") != "hit" {
		t.Fatalf("post-flight disposition %q, want hit (flight must not be poisoned)",
			resp.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body, res.body) {
		t.Fatal("cached body differs from the leader's response")
	}
	if m := srv.CacheStats().Misses; m != 1 {
		t.Fatalf("misses = %d, want exactly 1: the cancelled waiter must not trigger recompute", m)
	}
}

// Regression: newCoordinator used to interleave unlocked c.health map writes
// with dispatcher/prober spawns, so worker N's entry was written while worker
// 1's already-running dispatchers read the same map under c.mu (sharedguard
// catches the shape statically; under the old code this test trips `make
// race` at boot). Post-fix every health entry is published before the first
// spawn, so a freshly booted coordinator already reports its whole,
// optimistically healthy fleet.
func TestClusterStartupPublishesHealthBeforeSpawn(t *testing.T) {
	workers := make([]string, 4)
	for i := range workers {
		workers[i] = deadAddr(t)
	}
	_, hs := testServer(t, func(c *service.Config) {
		c.Cluster = service.ClusterConfig{
			Workers:           workers,
			HeartbeatInterval: time.Hour, // no probes: observe pure boot state
			DispatchPerWorker: 4,         // widen the old write/read race window
			DispatchRetries:   1,
			RetrySeed:         1,
		}
	})
	var st service.ClusterStatus
	if code := getJSON(t, hs, "/v1/cluster", &st); code != 200 {
		t.Fatalf("GET /v1/cluster: %d", code)
	}
	if st.Healthy != len(workers) || len(st.Workers) != len(workers) {
		t.Fatalf("boot status %+v, want all %d workers published and optimistically healthy",
			st, len(workers))
	}
}

// Regression: Submit bumped cj.dispatches holding only the coordinator lock,
// after registerLocked had already published the job to Job/Jobs readers that
// synchronize on cj.mu alone. The counter now takes cj.mu; the observable
// contract is that a job routed once reports zero requeues, and polling job
// status concurrently with fresh submissions stays clean under -race.
func TestClusterFirstDispatchCountsZeroRequeues(t *testing.T) {
	_, worker := testServer(t, nil)
	workerAddr := strings.TrimPrefix(worker.URL, "http://")
	_, hs := testServer(t, func(c *service.Config) {
		c.Cluster = service.ClusterConfig{
			Workers:           []string{workerAddr},
			HeartbeatInterval: 20 * time.Millisecond,
			RetrySeed:         1,
		}
	})
	waitClusterHealthy(t, hs, 1)

	stop := make(chan struct{})
	donePolling := make(chan struct{})
	go func() {
		defer close(donePolling)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var jobs []service.JobStatus
			getJSON(t, hs, "/v1/jobs", &jobs)
		}
	}()
	for seed := 1; seed <= 3; seed++ {
		req := fmt.Sprintf(`{"benchmark":"ibm01","scale":0.1,"engine":"flat","starts":2,"seed":%d}`, seed)
		resp, body := post(t, hs, req)
		if resp.StatusCode != 200 {
			t.Fatalf("seed %d: status %d, body %s", seed, resp.StatusCode, body)
		}
		var st service.JobStatus
		if code := getJSON(t, hs, "/v1/jobs/"+resp.Header.Get("X-Hgserved-Job"), &st); code != 200 {
			t.Fatalf("seed %d: job status fetch failed with %d", seed, code)
		}
		if st.Requeues != 0 {
			t.Fatalf("seed %d: requeues = %d after a single clean dispatch, want 0", seed, st.Requeues)
		}
		if st.Worker != workerAddr {
			t.Fatalf("seed %d: worker = %q, want %q", seed, st.Worker, workerAddr)
		}
	}
	close(stop)
	<-donePolling
}
