package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hgpart/internal/chaos"
	"hgpart/internal/hypergraph"
)

// ClusterConfig configures coordinator mode: the node routes jobs to a
// fleet of hgserved workers instead of computing them itself. The zero
// value (no workers) disables clustering.
type ClusterConfig struct {
	// Workers lists worker base addresses ("host:port"). Non-empty enables
	// coordinator mode.
	Workers []string
	// Replicas is the consistent-hash virtual-replica count per worker;
	// <= 0 means 64.
	Replicas int
	// HeartbeatInterval is how often each worker's readiness is probed;
	// <= 0 means 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one probe; <= 0 means 1s.
	HeartbeatTimeout time.Duration
	// FailThreshold is how many consecutive probe failures trip a worker's
	// circuit breaker open; <= 0 means 2. Recovery is deterministic and
	// probe-driven: the first heartbeat success half-opens the breaker
	// (trial dispatches resume), the second closes it.
	FailThreshold int
	// DispatchPerWorker is the number of concurrent dispatches per worker
	// (match the workers' own pool size to keep them saturated without
	// queue buildup); <= 0 means 2.
	DispatchPerWorker int
	// QueuePerWorker bounds each worker's coordinator-side dispatch queue;
	// new submissions beyond every healthy worker's bound are shed with 503
	// + Retry-After. <= 0 means 64.
	QueuePerWorker int
	// DispatchRetries bounds chaos.Retry attempts per dispatch RPC before
	// the worker is declared dead and the job fails over; <= 0 means 3.
	DispatchRetries int
	// RetrySeed seeds the deterministic dispatch-retry jitter streams.
	RetrySeed uint64
	// DispatchDeadline bounds each dispatch RPC attempt end-to-end and is
	// propagated to the worker as an absolute X-Hg-Deadline header, so a
	// worker whose coordinator has failed over abandons the job (its journal
	// keeps the completed starts for the redispatch). <= 0 disables both the
	// bound and the header — a blackholed dispatch then waits until the
	// coordinator shuts down.
	DispatchDeadline time.Duration
}

func (c *ClusterConfig) withDefaults() ClusterConfig {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = 64
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 500 * time.Millisecond
	}
	if out.HeartbeatTimeout <= 0 {
		out.HeartbeatTimeout = time.Second
	}
	if out.FailThreshold <= 0 {
		out.FailThreshold = 2
	}
	if out.DispatchPerWorker <= 0 {
		out.DispatchPerWorker = 2
	}
	if out.QueuePerWorker <= 0 {
		out.QueuePerWorker = 64
	}
	if out.DispatchRetries <= 0 {
		out.DispatchRetries = 3
	}
	return out
}

// errClusterBusy sheds a submission when every healthy worker's dispatch
// queue is full (HTTP 503 + Retry-After at the handler).
var errClusterBusy = fmt.Errorf("cluster dispatch queues are full; retry later")

// clusterJob is one request the coordinator shepherds through the fleet. It
// mirrors Job's lifecycle (queued → running → terminal, singleflight by
// cache key, waiters select on done) but executes remotely — or locally,
// when the whole fleet is unreachable.
type clusterJob struct {
	ID  string
	Key string

	req      PartitionRequest
	inst     *hypergraph.Hypergraph
	instName string
	instHash string
	forward  []byte // marshaled request for dispatch (async stripped)

	mu    sync.Mutex
	state JobState //hglint:guardedby mu
	// worker is the current/last node executing this job ("local" = fallback).
	worker string //hglint:guardedby mu
	// remoteJob is the job id on the worker that produced the result.
	remoteJob string //hglint:guardedby mu
	// dispatches counts routing attempts (initial + failovers).
	dispatches int       //hglint:guardedby mu
	httpStatus int       //hglint:guardedby mu
	body       []byte    //hglint:guardedby mu
	errMsg     string    //hglint:guardedby mu
	enqueued   time.Time //hglint:guardedby mu
	started    time.Time //hglint:guardedby mu
	finished   time.Time //hglint:guardedby mu

	done chan struct{}
}

func (cj *clusterJob) markRunning(worker string) {
	cj.mu.Lock()
	cj.state = JobRunning
	cj.worker = worker
	if cj.started.IsZero() {
		cj.started = time.Now()
	}
	cj.mu.Unlock()
}

// finish moves the cluster job to a terminal state exactly once.
func (cj *clusterJob) finish(code int, body []byte, errMsg, remoteJob string) {
	cj.mu.Lock()
	if cj.state == JobDone || cj.state == JobFailed {
		cj.mu.Unlock()
		return
	}
	if code == http.StatusOK {
		cj.state = JobDone
	} else {
		cj.state = JobFailed
	}
	cj.httpStatus = code
	cj.body = body
	cj.errMsg = errMsg
	if remoteJob != "" {
		cj.remoteJob = remoteJob
	}
	cj.finished = time.Now()
	cj.mu.Unlock()
	close(cj.done)
}

// Done returns a channel closed when the job reaches a terminal state.
func (cj *clusterJob) Done() <-chan struct{} { return cj.done }

// Result returns the terminal HTTP status, report bytes and error message.
func (cj *clusterJob) Result() (int, []byte, string) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.httpStatus, cj.body, cj.errMsg
}

// Status renders the coordinator's job view; Worker/RemoteJob let a caller
// chase the job to the node that actually computed it.
func (cj *clusterJob) Status() JobStatus {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	st := JobStatus{
		ID:        cj.ID,
		State:     cj.state,
		Instance:  cj.instName,
		CacheKey:  cj.Key,
		Priority:  cj.req.Priority,
		Starts:    cj.req.Starts,
		Error:     cj.errMsg,
		Worker:    cj.worker,
		RemoteJob: cj.remoteJob,
		Requeues:  cj.dispatches - 1,
	}
	if cj.dispatches == 0 {
		st.Requeues = 0
	}
	switch {
	case cj.state == JobQueued:
		st.ElapsedMS = 0
	case cj.finished.IsZero():
		st.ElapsedMS = time.Since(cj.started).Milliseconds()
	default:
		st.ElapsedMS = cj.finished.Sub(cj.started).Milliseconds()
	}
	if len(cj.body) > 0 && cj.httpStatus == http.StatusOK {
		st.Report = json.RawMessage(cj.body)
	}
	return st
}

// breakerState is one worker's deterministic circuit-breaker position. All
// transitions are event-driven — consecutive-failure counts and heartbeat
// successes, never timers or randomness — so a replayed fault schedule
// walks the breaker through an identical state sequence.
//
//	closed --(FailThreshold consecutive probe fails, or a dispatch
//	          failover)--> open
//	open --(one probe success)--> half-open     (trial dispatches resume)
//	half-open --(one probe success)--> closed
//	half-open --(any probe fail or dispatch failover)--> open
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

// String renders the GET /v1/cluster form of the state.
func (b breakerState) String() string {
	switch b {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	}
	return fmt.Sprintf("breaker(%d)", b)
}

// workerHealth is the coordinator's view of one worker node. Its fields are
// guarded by the owning Coordinator's mu (it lives only in the health map).
type workerHealth struct {
	addr      string
	breaker   breakerState
	fails     int // consecutive probe failures
	lastErr   string
	lastProbe time.Time
}

// dispatchable reports whether the worker may receive jobs: closed breakers
// take normal traffic, half-open ones take trial traffic, open ones none.
func (h *workerHealth) dispatchable() bool { return h.breaker != breakerOpen }

// Coordinator routes partition jobs across a worker fleet by consistent
// hashing on the content-addressed cache key. Determinism makes this
// trivially safe: any worker produces byte-identical bytes for a key, so
// routing, stealing and failover are pure placement decisions.
//
// Robustness model:
//   - every dispatch RPC runs under chaos.Retry (seeded jitter, Retry-After
//     aware), so transient worker 503s/429s and connection blips are ridden
//     out without failing the job;
//   - every worker response is verified against its sha256 integrity
//     envelope before the bytes are cached or served — a corrupted response
//     is a retryable failure, never a poisoned cache entry;
//   - a per-worker circuit breaker (see breakerState) opens after
//     FailThreshold consecutive heartbeat failures or a dispatch failover
//     and recovers through half-open deterministically, probe by probe;
//   - with DispatchDeadline set, each dispatch attempt carries an absolute
//     X-Hg-Deadline the worker honors, so jobs whose coordinator has moved
//     on are abandoned (journal retained) instead of computed for no one;
//   - when a worker dies mid-job (retries exhausted on a transport error)
//     the job fails over to the next healthy node in ring order, which
//     resumes from the job's v2 CRC checkpoint journal on the shared
//     checkpoint directory — completed starts are never recomputed and the
//     final report stays byte-identical;
//   - idle workers steal queued jobs from the longest sibling queue, so one
//     hot shard cannot starve the fleet;
//   - with NO healthy workers the coordinator degrades to single-node mode:
//     jobs run on its own local Manager instead of erroring, and only a
//     genuinely full system sheds load (503 + Retry-After).
type Coordinator struct {
	cfg    ClusterConfig
	srv    *Server
	ring   *Ring
	client *http.Client
	log    *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	health   map[string]*workerHealth //hglint:guardedby mu
	queues   map[string][]*clusterJob //hglint:guardedby mu
	inflight map[string]*clusterJob   //hglint:guardedby mu
	jobs     map[string]*clusterJob   //hglint:guardedby mu
	order    []string                 //hglint:guardedby mu
	nextSeq  int64                    //hglint:guardedby mu
	closed   bool                     //hglint:guardedby mu

	steals         int64 //hglint:guardedby mu
	failovers      int64 //hglint:guardedby mu
	localFallbacks int64 //hglint:guardedby mu

	wg sync.WaitGroup
}

// maxDispatchesPerJob bounds how many times one job may be (re)routed before
// the coordinator stops trusting the fleet and computes it locally.
func (c *Coordinator) maxDispatchesPerJob() int { return 2*len(c.ring.Nodes()) + 1 }

// newCoordinator builds the coordinator and starts its dispatchers and
// heartbeat probers. Workers start optimistically healthy: a dead node is
// discovered by the first dispatch or probe, whichever comes first.
func newCoordinator(cfg ClusterConfig, s *Server) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		srv:      s,
		ring:     NewRing(cfg.Workers, cfg.Replicas),
		client:   &http.Client{Transport: s.cfg.Transport},
		log:      s.log,
		health:   make(map[string]*workerHealth),
		queues:   make(map[string][]*clusterJob),
		inflight: make(map[string]*clusterJob),
		jobs:     make(map[string]*clusterJob),
	}
	c.cond = sync.NewCond(&c.mu)
	c.baseCtx, c.baseCancel = context.WithCancel(context.Background())
	// Publish every worker's health entry before the first goroutine spawns:
	// a dispatcher started for worker 1 reads c.health under c.mu right away,
	// so interleaving these unlocked map writes with the spawns would race.
	for _, addr := range c.ring.Nodes() {
		c.health[addr] = &workerHealth{addr: addr, breaker: breakerClosed}
	}
	for _, addr := range c.ring.Nodes() {
		for i := 0; i < cfg.DispatchPerWorker; i++ {
			c.wg.Add(1)
			go c.dispatchLoop(addr)
		}
		c.wg.Add(1)
		go c.prober(addr)
	}
	return c
}

// Close stops routing: queued jobs fail with 503, in-flight dispatches are
// cancelled, dispatchers and probers exit. Local-fallback jobs detach from
// their Manager job (the Manager's own drain checkpoints it).
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var queued []*clusterJob
	for _, addr := range c.ring.Nodes() { // sorted, so drain order is deterministic
		queued = append(queued, c.queues[addr]...)
		c.queues[addr] = nil
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, cj := range queued {
		c.finishJob(cj, http.StatusServiceUnavailable, nil, "coordinator draining before the job was dispatched", "")
	}
	c.baseCancel()
	c.wg.Wait()
}

// Submit routes one request into the cluster, coalescing identical in-flight
// requests by cache key exactly like Manager.Submit.
func (c *Coordinator) Submit(req PartitionRequest, inst *hypergraph.Hypergraph,
	instName, instHash, key string) (*clusterJob, bool, error) {
	forwardReq := req
	forwardReq.Async = false // the coordinator itself waits on the worker
	forward, err := json.Marshal(&forwardReq)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, errDraining
	}
	if cj, ok := c.inflight[key]; ok {
		return cj, true, nil
	}
	c.nextSeq++
	cj := &clusterJob{
		ID:       fmt.Sprintf("c-%06d", c.nextSeq),
		Key:      key,
		req:      req,
		inst:     inst,
		instName: instName,
		instHash: instHash,
		forward:  forward,
		state:    JobQueued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}

	// Route by ring order among healthy workers with queue room.
	target := ""
	anyHealthy := false
	for _, addr := range c.ring.Order(key) {
		if !c.health[addr].dispatchable() {
			continue
		}
		anyHealthy = true
		if len(c.queues[addr]) < c.cfg.QueuePerWorker {
			target = addr
			break
		}
	}
	switch {
	case !anyHealthy:
		// Whole fleet unreachable: degrade to single-node mode rather than
		// erroring. The local Manager's own queue bound still applies.
		c.registerLocked(cj)
		c.localFallbackLocked(cj, "no healthy workers")
	case target == "":
		return nil, false, errClusterBusy
	default:
		c.registerLocked(cj)
		// registerLocked published cj (Job/Jobs can hand it out), so its
		// mu-guarded fields need cj.mu from here on — c.mu is not enough.
		cj.mu.Lock()
		cj.dispatches++
		cj.mu.Unlock()
		c.queues[target] = append(c.queues[target], cj)
		c.cond.Broadcast()
	}
	c.srv.metrics.JobSubmitted()
	return cj, false, nil
}

func (c *Coordinator) registerLocked(cj *clusterJob) {
	c.jobs[cj.ID] = cj
	c.order = append(c.order, cj.ID)
	c.inflight[cj.Key] = cj
	c.pruneLocked()
}

// pruneLocked bounds coordinator job history like Manager.pruneLocked.
func (c *Coordinator) pruneLocked() {
	cap := c.srv.cfg.HistoryCap
	if cap <= 0 || len(c.order) <= cap {
		return
	}
	kept := c.order[:0]
	excess := len(c.order) - cap
	for _, id := range c.order {
		cj := c.jobs[id]
		terminal := false
		if cj != nil {
			cj.mu.Lock()
			terminal = cj.state == JobDone || cj.state == JobFailed
			cj.mu.Unlock()
		}
		if excess > 0 && (cj == nil || terminal) {
			delete(c.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	c.order = kept
}

// Job looks a cluster job up by id.
func (c *Coordinator) Job(id string) (*clusterJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cj, ok := c.jobs[id]
	return cj, ok
}

// Jobs snapshots retained cluster jobs in submission order.
func (c *Coordinator) Jobs() []*clusterJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*clusterJob, 0, len(c.order))
	for _, id := range c.order {
		if cj, ok := c.jobs[id]; ok {
			out = append(out, cj)
		}
	}
	return out
}

// dispatchLoop is one dispatcher slot for worker `home`: it pops the home
// queue, or — when home is idle — steals the oldest job from the longest
// sibling queue, then dispatches to home. Stolen work runs on home, which
// is the whole point: the idle node absorbs the imbalance.
func (c *Coordinator) dispatchLoop(home string) {
	defer c.wg.Done()
	for {
		cj := c.next(home)
		if cj == nil {
			return
		}
		c.dispatch(home, cj)
	}
}

// next blocks until home has work (own queue, or a steal) or the
// coordinator closes (nil).
func (c *Coordinator) next(home string) *clusterJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil
		}
		if c.health[home].dispatchable() {
			if q := c.queues[home]; len(q) > 0 {
				cj := q[0]
				c.queues[home] = q[1:]
				return cj
			}
			// Steal from the longest sibling queue, oldest job first (it has
			// waited longest). Ties break by ring node order, deterministically.
			best, bestLen := "", 0
			for _, addr := range c.ring.Nodes() {
				if addr == home {
					continue
				}
				if l := len(c.queues[addr]); l > bestLen {
					best, bestLen = addr, l
				}
			}
			if bestLen > 0 {
				q := c.queues[best]
				cj := q[0]
				c.queues[best] = q[1:]
				c.steals++
				c.srv.metrics.ClusterSteal()
				c.log.Info("cluster: stole queued job", "job", cj.ID, "from", best, "to", home)
				return cj
			}
		}
		c.cond.Wait()
	}
}

// dispatch POSTs the job to worker synchronously under chaos.Retry. A 200
// that passes the integrity envelope finishes the job with the worker's
// report bytes; a corrupted or oversized response is retried like a
// transport error; a non-retryable HTTP error forwards the worker's
// verdict; exhausted retries mean the worker is dead — trip its breaker
// and fail the job over.
func (c *Coordinator) dispatch(worker string, cj *clusterJob) {
	cj.markRunning(worker)
	c.srv.metrics.ClusterDispatch()
	cj.mu.Lock()
	attempt := cj.dispatches
	cj.mu.Unlock()

	var (
		body      []byte
		remoteJob string
		permCode  int
		permMsg   string
	)
	retry := chaos.Retry{
		MaxAttempts: c.cfg.DispatchRetries,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Seed:        c.cfg.RetrySeed ^ ringHash(cj.Key) ^ uint64(attempt),
	}
	err := retry.Do(c.baseCtx, func() (time.Duration, bool, error) {
		// Each attempt gets a fresh deadline: a retry after a worker 504 must
		// grant the redispatch its full budget, not the stale remainder.
		rpcCtx := c.baseCtx
		cancel := context.CancelFunc(func() {})
		deadline := ""
		if c.cfg.DispatchDeadline > 0 {
			dl := time.Now().Add(c.cfg.DispatchDeadline)
			rpcCtx, cancel = context.WithDeadline(c.baseCtx, dl)
			deadline = strconv.FormatInt(dl.UnixMilli(), 10)
		}
		defer cancel()
		req, rerr := http.NewRequestWithContext(rpcCtx, http.MethodPost,
			"http://"+worker+"/v1/partition", bytes.NewReader(cj.forward))
		if rerr != nil {
			return 0, false, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline != "" {
			req.Header.Set(deadlineHeader, deadline)
		}
		resp, rerr := c.client.Do(req)
		if rerr != nil {
			return 0, true, rerr
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
		if rerr != nil {
			return 0, true, rerr
		}
		if int64(len(b)) > maxPeerBody {
			return 0, true, fmt.Errorf("worker %s: response exceeds the %d-byte body bound", worker, int64(maxPeerBody))
		}
		switch resp.StatusCode {
		case http.StatusOK:
			if !integrityOK(resp.Header, b) {
				// Corrupted in transit. The bytes must not reach the cache or
				// a client; retrying (and eventually failing over) recomputes.
				c.srv.metrics.IntegrityFailure("dispatch")
				c.log.Warn("cluster: dispatch response failed the sha256 envelope; recomputing",
					"job", cj.ID, "worker", worker)
				return 0, true, fmt.Errorf("worker %s: response body failed the sha256 integrity check", worker)
			}
			body = b
			remoteJob = resp.Header.Get("X-Hgserved-Job")
			return 0, false, nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			ra, _ := chaos.RetryAfterHeader(resp.Header.Get("Retry-After"))
			return ra, true, fmt.Errorf("worker %s: HTTP %d", worker, resp.StatusCode)
		case http.StatusGatewayTimeout:
			// The worker abandoned on our own propagated deadline; the journal
			// kept its completed starts, so redispatching is cheap.
			return 0, true, fmt.Errorf("worker %s: abandoned on the propagated deadline (HTTP 504)", worker)
		default:
			// The worker judged the request itself bad; no other worker would
			// disagree. Forward its verdict instead of failing over.
			permCode = resp.StatusCode
			permMsg = errorMessage(b, fmt.Sprintf("worker %s: HTTP %d", worker, resp.StatusCode))
			return 0, false, fmt.Errorf("worker %s: HTTP %d", worker, resp.StatusCode)
		}
	})
	switch {
	case err == nil:
		c.srv.cache.Put(cj.Key, body)
		c.finishJob(cj, http.StatusOK, body, "", remoteJob)
	case permCode != 0:
		c.finishJob(cj, permCode, nil, permMsg, "")
	default:
		c.failover(worker, cj, err)
	}
}

// errorMessage extracts the "error" field from a JSON error document,
// falling back to fallback.
func errorMessage(body []byte, fallback string) string {
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return doc.Error
	}
	return fallback
}

// failover reacts to a dead worker: trip its breaker open (draining its
// queue onto survivors) and reroute this job to the next dispatchable node
// in ring order — or compute locally when none remains.
func (c *Coordinator) failover(worker string, cj *clusterJob, cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.finishJob(cj, http.StatusServiceUnavailable, nil, "coordinator draining", "")
		return
	}
	c.failovers++
	c.srv.metrics.ClusterFailover()
	c.log.Warn("cluster: dispatch failed; failing job over", "job", cj.ID, "worker", worker, "err", cause)
	c.tripBreakerLocked(worker, cause)
	c.enqueueLocked(cj)
	c.mu.Unlock()
}

// enqueueLocked (re)routes a job after a failover or an unhealthy-queue
// drain: next healthy worker in ring order, ignoring queue bounds (the job
// was already admitted — failover must not shed it), or local compute when
// the fleet is gone or the job has bounced too often.
func (c *Coordinator) enqueueLocked(cj *clusterJob) {
	cj.mu.Lock()
	cj.dispatches++
	bounced := cj.dispatches > c.maxDispatchesPerJob()
	cj.mu.Unlock()
	if bounced {
		c.localFallbackLocked(cj, "job exceeded the dispatch bound")
		return
	}
	for _, addr := range c.ring.Order(cj.Key) {
		if c.health[addr].dispatchable() {
			c.queues[addr] = append(c.queues[addr], cj)
			c.cond.Broadcast()
			return
		}
	}
	c.localFallbackLocked(cj, "no healthy workers")
}

// localFallbackLocked degrades one job to a local compute on the
// coordinator's own Manager. Called with c.mu held.
func (c *Coordinator) localFallbackLocked(cj *clusterJob, why string) {
	c.localFallbacks++
	c.srv.metrics.ClusterLocalFallback()
	c.log.Warn("cluster: degrading to local compute", "job", cj.ID, "reason", why)
	c.wg.Add(1)
	go c.runLocal(cj)
}

// runLocal executes a cluster job on the coordinator's own Manager —
// single-node degradation. If the coordinator shuts down first, the waiter
// is released with 503 while the Manager's drain checkpoints the job.
func (c *Coordinator) runLocal(cj *clusterJob) {
	defer c.wg.Done()
	cj.markRunning("local")
	job, _, err := c.srv.manager.Submit(cj.req, cj.inst, cj.instName, cj.instHash, cj.Key)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, errDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, errQueueFull):
			code = http.StatusTooManyRequests
		}
		c.finishJob(cj, code, nil, err.Error(), "")
		return
	}
	select {
	case <-job.Done():
		code, body, msg := job.Result()
		c.finishJob(cj, code, body, msg, job.ID)
	case <-c.baseCtx.Done():
		c.finishJob(cj, http.StatusServiceUnavailable, nil,
			"coordinator draining; local job "+job.ID+" is checkpointed", job.ID)
	}
}

// finishJob finalizes a cluster job and releases its singleflight slot.
func (c *Coordinator) finishJob(cj *clusterJob, code int, body []byte, errMsg, remoteJob string) {
	cj.finish(code, body, errMsg, remoteJob)
	c.mu.Lock()
	if c.inflight[cj.Key] == cj {
		delete(c.inflight, cj.Key)
	}
	c.mu.Unlock()
	state := JobDone
	if code != http.StatusOK {
		state = JobFailed
	}
	c.srv.metrics.JobFinished(state)
}

// prober is one worker's heartbeat loop.
func (c *Coordinator) prober(addr string) {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-ticker.C:
		}
		c.noteProbe(addr, c.probe(addr))
	}
}

// probe asks one worker for readiness, bounded by HeartbeatTimeout.
func (c *Coordinator) probe(addr string) error {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// noteProbe folds one heartbeat result into the worker's breaker. Success
// walks open → half-open → closed one probe at a time; a failure trips a
// half-open breaker straight back open, and FailThreshold consecutive
// failures trip a closed one (its queued jobs reroute immediately). All
// transitions are counter-driven — no wall-clock cooldowns — so a replayed
// probe sequence reproduces the exact breaker history.
func (c *Coordinator) noteProbe(addr string, probeErr error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[addr]
	h.lastProbe = time.Now()
	if probeErr == nil {
		h.fails = 0
		switch h.breaker {
		case breakerOpen:
			h.breaker = breakerHalfOpen
			c.log.Info("cluster: worker half-open; trial dispatches resume", "worker", addr)
			c.cond.Broadcast()
		case breakerHalfOpen:
			h.breaker = breakerClosed
			h.lastErr = ""
			c.log.Info("cluster: worker recovered", "worker", addr)
			c.cond.Broadcast()
		}
		return
	}
	h.fails++
	h.lastErr = probeErr.Error()
	switch {
	case h.breaker == breakerHalfOpen:
		c.tripBreakerLocked(addr, fmt.Errorf("heartbeat failed during half-open trial: %w", probeErr))
	case h.breaker == breakerClosed && h.fails >= c.cfg.FailThreshold:
		c.tripBreakerLocked(addr, fmt.Errorf("heartbeat: %d consecutive failures: %w", h.fails, probeErr))
	}
}

// tripBreakerLocked opens a worker's breaker (from closed or half-open),
// taking it out of rotation and rerouting its queued jobs. Called with c.mu
// held.
func (c *Coordinator) tripBreakerLocked(addr string, cause error) {
	h := c.health[addr]
	h.lastErr = cause.Error()
	if h.breaker == breakerOpen {
		return
	}
	h.breaker = breakerOpen
	c.log.Warn("cluster: breaker open; worker out of rotation", "worker", addr, "err", cause)
	q := c.queues[addr]
	c.queues[addr] = nil
	for _, cj := range q {
		c.enqueueLocked(cj)
	}
	c.cond.Broadcast()
}

// WorkerStatus is one row of the GET /v1/cluster document. Healthy means
// dispatchable (breaker closed or half-open); Breaker exposes the exact
// breaker position.
type WorkerStatus struct {
	Addr             string `json:"addr"`
	Healthy          bool   `json:"healthy"`
	Breaker          string `json:"breaker"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	QueueDepth       int    `json:"queue_depth"`
	LastError        string `json:"last_error,omitempty"`
}

// ClusterStatus is the GET /v1/cluster document.
type ClusterStatus struct {
	Mode           string         `json:"mode"`
	Workers        []WorkerStatus `json:"workers,omitempty"`
	Healthy        int            `json:"healthy"`
	Steals         int64          `json:"steals"`
	Failovers      int64          `json:"failovers"`
	LocalFallbacks int64          `json:"local_fallbacks"`
	Jobs           int            `json:"jobs"`
}

// Status snapshots the cluster view.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClusterStatus{
		Mode:           "coordinator",
		Steals:         c.steals,
		Failovers:      c.failovers,
		LocalFallbacks: c.localFallbacks,
		Jobs:           len(c.jobs),
	}
	for _, addr := range c.ring.Nodes() {
		h := c.health[addr]
		st.Workers = append(st.Workers, WorkerStatus{
			Addr:             addr,
			Healthy:          h.dispatchable(),
			Breaker:          h.breaker.String(),
			ConsecutiveFails: h.fails,
			QueueDepth:       len(c.queues[addr]),
			LastError:        h.lastErr,
		})
		if h.dispatchable() {
			st.Healthy++
		}
	}
	return st
}

// healthyCount returns the number of currently dispatchable workers
// (metrics).
func (c *Coordinator) healthyCount() (healthy, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.health {
		if h.dispatchable() {
			healthy++
		}
	}
	return healthy, len(c.health)
}

// breakerStates snapshots each worker's breaker position for the
// hgserved_breaker_state gauge.
func (c *Coordinator) breakerStates() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.health))
	for addr, h := range c.health {
		out[addr] = int(h.breaker)
	}
	return out
}
