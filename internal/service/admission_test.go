package service_test

// Admission hardening tests: oversized bodies get a structured 413 carrying
// the configured limit, oversized instances get a structured 422 carrying
// the cap they exceeded, and every drain-time 503 tells well-behaved clients
// when to come back via Retry-After.

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"hgpart/internal/service"
)

func TestOversizedBodyGets413WithLimit(t *testing.T) {
	_, hs := testServer(t, func(c *service.Config) { c.MaxBodyBytes = 1024 })
	big := `{"hgr":"` + strings.Repeat("x", 4096) + `"}`

	for _, route := range []string{"/v1/partition", "/v1/trace"} {
		resp, err := http.Post(hs.URL+route, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatalf("POST %s: %v", route, err)
		}
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("%s: decode 413 body: %v", route, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", route, resp.StatusCode)
		}
		if lim, _ := doc["limit_bytes"].(float64); lim != 1024 {
			t.Fatalf("%s: limit_bytes = %v, want 1024 (doc %v)", route, doc["limit_bytes"], doc)
		}
		if msg, _ := doc["error"].(string); !strings.Contains(msg, "1024") {
			t.Fatalf("%s: error %q should name the configured limit", route, msg)
		}
	}
}

func TestOversizedInstanceGets422WithCap(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*service.Config)
		field  string
	}{
		{"vertices", func(c *service.Config) { c.MaxVertices = 10 }, "limit_vertices"},
		{"pins", func(c *service.Config) { c.MaxPins = 10 }, "limit_pins"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, hs := testServer(t, tc.mutate)
			resp, body := post(t, hs, smallReq)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("status %d, want 422; body %s", resp.StatusCode, body)
			}
			var doc map[string]any
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("decode 422 body: %v", err)
			}
			if lim, _ := doc[tc.field].(float64); lim != 10 {
				t.Fatalf("%s = %v, want 10 (doc %v)", tc.field, doc[tc.field], doc)
			}
		})
	}
}

func TestDrainResponsesCarryRetryAfter(t *testing.T) {
	srv, hs := testServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, body := post(t, hs, smallReq)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while draining; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want %q on every 503", ra, "1")
	}
}
