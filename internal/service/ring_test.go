package service

import (
	"fmt"
	"testing"
)

// Two rings over the same nodes must route every key identically — the
// property that lets any coordinator (or a restarted one) compute the same
// owner without coordination.
func TestRingDeterministicAcrossInstances(t *testing.T) {
	nodes := []string{"10.0.0.3:8080", "10.0.0.1:8080", "10.0.0.2:8080"}
	shuffled := []string{"10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.1:8080"}
	a, b := NewRing(nodes, 64), NewRing(shuffled, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("cachekey-%d", i)
		oa, ob := a.Order(key), b.Order(key)
		if len(oa) != len(ob) {
			t.Fatalf("key %q: order lengths differ: %v vs %v", key, oa, ob)
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %q: preference order diverges: %v vs %v", key, oa, ob)
			}
		}
	}
}

// Order must list every distinct node exactly once, owner first; duplicates
// and empties in the input collapse.
func TestRingOrderCoversAllNodesOnce(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "a:1", "", "c:1"}, 16)
	if got := r.Nodes(); len(got) != 3 {
		t.Fatalf("Nodes() = %v, want 3 distinct members", got)
	}
	order := r.Order("some-key")
	if len(order) != 3 {
		t.Fatalf("Order = %v, want all 3 nodes", order)
	}
	seen := map[string]bool{}
	for _, n := range order {
		if seen[n] {
			t.Fatalf("Order = %v lists %q twice", order, n)
		}
		seen[n] = true
	}
	if order[0] != r.Owner("some-key") {
		t.Fatalf("Owner %q is not the head of Order %v", r.Owner("some-key"), order)
	}
}

// Consistent hashing's defining property: removing one node only reassigns
// the keys it owned. For every key, the preference order on the smaller ring
// is the full ring's order with the removed node deleted — so failover (skip
// the dead owner) and a permanently shrunk fleet agree on placement.
func TestRingRemovalOnlyMovesOwnedKeys(t *testing.T) {
	nodes := []string{"w1:1", "w2:1", "w3:1", "w4:1"}
	full := NewRing(nodes, 64)
	without := NewRing(nodes[:3], 64) // drop w4:1
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i)
		var filtered []string
		for _, n := range full.Order(key) {
			if n != "w4:1" {
				filtered = append(filtered, n)
			}
		}
		got := without.Order(key)
		for j := range filtered {
			if got[j] != filtered[j] {
				t.Fatalf("key %q: shrunk ring order %v != filtered full order %v", key, got, filtered)
			}
		}
	}
}

// Virtual replicas must spread load: over many keys, no node of three may
// own a wildly disproportionate share.
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"w1:1", "w2:1", "w3:1"}, 64)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for node, c := range counts {
		if c < keys/6 || c > keys/2+keys/10 {
			t.Fatalf("node %s owns %d of %d keys; distribution %v too skewed", node, c, keys, counts)
		}
	}
}

// Degenerate rings: empty input routes nowhere; a single node owns all.
func TestRingDegenerate(t *testing.T) {
	if o := NewRing(nil, 8).Order("k"); o != nil {
		t.Fatalf("empty ring Order = %v, want nil", o)
	}
	if NewRing(nil, 8).Owner("k") != "" {
		t.Fatal("empty ring must have no owner")
	}
	solo := NewRing([]string{"only:1"}, 8)
	if got := solo.Order("anything"); len(got) != 1 || got[0] != "only:1" {
		t.Fatalf("single-node ring Order = %v", got)
	}
}
