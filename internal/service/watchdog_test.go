package service

// In-package watchdog tests: they reach through Config.testFactory to plant
// a heuristic that wedges forever, the one failure mode a cooperative
// cancellation model cannot unstick on its own. The watchdog must notice the
// silent heartbeat, cancel the run, and either requeue (journal-backed
// resume) or fail the job once requeues are exhausted.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hgpart/internal/eval"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func decodeBody(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// stallHeuristic wedges the first wedgeN Run calls (all of them if
// wedgeN < 0) until release closes, then behaves like the real heuristic.
type stallHeuristic struct {
	eval.Heuristic
	calls   *atomic.Int32
	wedgeN  int32
	release <-chan struct{}
}

func (s stallHeuristic) Run(r *rng.RNG) eval.Outcome {
	if n := s.calls.Add(1); s.wedgeN < 0 || n <= s.wedgeN {
		<-s.release
	}
	return s.Heuristic.Run(r)
}

// watchdogServer boots a server whose first (or every) start wedges.
func watchdogServer(t *testing.T, wedgeAll bool, maxRequeues int) (*Server, *httptest.Server) {
	t.Helper()
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // drain wedged goroutines last
	wedgeN := int32(1)
	if wedgeAll {
		wedgeN = -1
	}
	var calls atomic.Int32
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.StartWorkers = 1
	cfg.CheckpointDir = t.TempDir()
	cfg.StuckAfter = 80 * time.Millisecond
	cfg.WatchdogInterval = 10 * time.Millisecond
	cfg.MaxRequeues = maxRequeues
	cfg.testFactory = func(req PartitionRequest, h *hypergraph.Hypergraph, bal partition.Balance) func() eval.Heuristic {
		inner := buildFactory(req, h, bal)
		return func() eval.Heuristic {
			return stallHeuristic{Heuristic: inner(), calls: &calls, wedgeN: wedgeN, release: release}
		}
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

const wedgeReq = `{"benchmark":"ibm01","scale":0.05,"engine":"flat","starts":2,"seed":3}`

func TestWatchdogRequeuesStuckJobAndCompletes(t *testing.T) {
	_, hs := watchdogServer(t, false, 1)
	resp, err := http.Post(hs.URL+"/v1/partition", "application/json", strings.NewReader(wedgeReq))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200 after a watchdog requeue", resp.StatusCode)
	}
	jobID := resp.Header.Get("X-Hgserved-Job")
	if jobID == "" {
		t.Fatal("response lacks X-Hgserved-Job")
	}
	jresp, err := http.Get(hs.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer jresp.Body.Close()
	var st JobStatus
	if err := decodeBody(jresp, &st); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	if st.State != JobDone {
		t.Fatalf("job state %q, want done", st.State)
	}
	if st.Requeues != 1 {
		t.Fatalf("requeues = %d, want exactly 1 (one wedge, one healthy retry)", st.Requeues)
	}
}

func TestWatchdogFailsJobAfterExhaustingRequeues(t *testing.T) {
	_, hs := watchdogServer(t, true, 1)
	resp, err := http.Post(hs.URL+"/v1/partition", "application/json", strings.NewReader(wedgeReq))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status %d, want 500 once requeues are exhausted", resp.StatusCode)
	}
	var doc map[string]any
	if err := decodeBody(resp, &doc); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	msg, _ := doc["error"].(string)
	if !strings.Contains(msg, "no progress") || !strings.Contains(msg, "requeue") {
		t.Fatalf("error %q should explain the stall and the exhausted requeues", msg)
	}
}
