package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"hgpart/internal/service"
)

// portfolioReq is a fast deterministic mode=portfolio request.
const portfolioReq = `{"benchmark":"ibm01","scale":0.1,"mode":"portfolio","starts":2,"seed":7}`

// TestPortfolioModeEndToEnd is the service half of the portfolio determinism
// contract: the same mode=portfolio request must produce byte-identical
// reports on repeat (cache hit), on a storeless server, and on a fresh
// server sharing the first server's checkpoint dir — where the outcome store
// is warm but the result cache is cold, so the report is recomputed with the
// store predicting the winner. A warm store changing a single byte would
// poison the content-addressed cache.
func TestPortfolioModeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, hs := testServer(t, func(c *service.Config) { c.CheckpointDir = dir })

	resp, body := post(t, hs, portfolioReq)
	if resp.StatusCode != 200 {
		t.Fatalf("portfolio request failed: %d %s", resp.StatusCode, body)
	}
	var rep service.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Engine != "portfolio" || rep.Cut <= 0 {
		t.Fatalf("implausible portfolio report: engine %q cut %d", rep.Engine, rep.Cut)
	}
	p := rep.Portfolio
	if p == nil {
		t.Fatal("report has no portfolio section")
	}
	if p.Bucket == "" || p.Winner == "" || len(p.Arms) == 0 {
		t.Fatalf("incomplete portfolio section: %+v", p)
	}
	if p.Source != "race" && p.Source != "commit" {
		t.Fatalf("portfolio source = %q", p.Source)
	}
	won := 0
	for _, a := range p.Arms {
		if a.Won {
			won++
			if a.Arm != p.Winner {
				t.Fatalf("won arm %q != winner %q", a.Arm, p.Winner)
			}
		}
	}
	if won != 1 {
		t.Fatalf("%d arms marked won, want exactly 1", won)
	}

	// Repeat: pure cache hit with identical bytes.
	resp2, body2 := post(t, hs, portfolioReq)
	if resp2.Header.Get("X-Hgserved-Cache") != "hit" {
		t.Fatalf("repeat disposition %q, want hit", resp2.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("cache hit differs from computed body")
	}

	// A storeless server (no checkpoint dir) must agree byte for byte: the
	// store is advisory.
	_, hsNoStore := testServer(t, nil)
	resp3, body3 := post(t, hsNoStore, portfolioReq)
	if resp3.StatusCode != 200 {
		t.Fatalf("storeless request failed: %d %s", resp3.StatusCode, body3)
	}
	if !bytes.Equal(body, body3) {
		t.Fatalf("storeless server disagrees:\n%s\nvs\n%s", body, body3)
	}

	// A fresh server on the same checkpoint dir reopens the outcome store
	// warm (the first race persisted its outcomes) while its result cache is
	// cold: the report is recomputed under a predicting store and must not
	// move a byte.
	_, hsWarm := testServer(t, func(c *service.Config) { c.CheckpointDir = dir })
	resp4, body4 := post(t, hsWarm, portfolioReq)
	if resp4.StatusCode != 200 {
		t.Fatalf("warm-store request failed: %d %s", resp4.StatusCode, body4)
	}
	if resp4.Header.Get("X-Hgserved-Cache") != "miss" {
		t.Fatalf("warm-store disposition %q, want miss (cold cache)", resp4.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body, body4) {
		t.Fatalf("warm-store server disagrees:\n%s\nvs\n%s", body, body4)
	}
}

// TestPortfolioValidationAndMetrics: bad modes are 400s, and a served
// portfolio race shows up in the Prometheus counters with its bucket/arm
// labels.
func TestPortfolioValidationAndMetrics(t *testing.T) {
	_, hs := testServer(t, nil)

	if resp, body := post(t, hs, `{"benchmark":"ibm01","mode":"racing"}`); resp.StatusCode != 400 {
		t.Fatalf("unknown mode: %d %s, want 400", resp.StatusCode, body)
	}
	if resp, body := post(t, hs, `{"benchmark":"ibm01","mode":"portfolio","refine_threads":2}`); resp.StatusCode != 400 {
		t.Fatalf("portfolio+refine_threads: %d %s, want 400", resp.StatusCode, body)
	}

	if resp, body := post(t, hs, portfolioReq); resp.StatusCode != 200 {
		t.Fatalf("portfolio request failed: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"hgserved_portfolio_races_total 1",
		"hgserved_portfolio_store_hits_total 0",
		`hgserved_portfolio_arm_wins_total{bucket="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestStatsHitRatio is the /v1/stats regression for the result-cache hit
// ratio row: one miss plus one hit must render as 0.500, and the row must
// survive the zero-lookup case (fresh server renders 0.000, not NaN).
func TestStatsHitRatio(t *testing.T) {
	_, hs := testServer(t, nil)

	stats := func() string {
		t.Helper()
		resp, err := http.Get(hs.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		resp.Body.Close()
		return b.String()
	}

	if text := stats(); !strings.Contains(text, "cache hit ratio") || !strings.Contains(text, "0.000") {
		t.Fatalf("fresh /v1/stats missing zero hit ratio:\n%s", text)
	}
	post(t, hs, smallReq) // miss
	post(t, hs, smallReq) // hit
	if text := stats(); !strings.Contains(text, "0.500") {
		t.Fatalf("/v1/stats hit ratio not 0.500 after one miss + one hit:\n%s", text)
	}
}
