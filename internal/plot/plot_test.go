package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{Title: "demo", XLabel: "sec", Width: 40, Height: 10}
	c.Add(Series{Name: "a", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}})
	c.Add(Series{Name: "b", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}})
	out := c.Render()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "[sec]") {
		t.Fatal("missing x label")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing plotted markers")
	}
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 10 {
		t.Fatalf("plot area %d rows, want 10", plotLines)
	}
}

func TestRenderDropsNonFinite(t *testing.T) {
	c := Chart{Width: 20, Height: 5}
	c.Add(Series{Name: "x", X: []float64{1, 2}, Y: []float64{math.Inf(1), 5}})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("finite point not plotted:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	c.Add(Series{Name: "none", X: []float64{1}, Y: []float64{math.NaN()}})
	out := c.Render()
	if !strings.Contains(out, "no finite points") {
		t.Fatalf("expected empty notice, got:\n%s", out)
	}
}

func TestLogXRejectsNonPositive(t *testing.T) {
	c := Chart{LogX: true, Width: 30, Height: 6}
	c.Add(Series{Name: "s", X: []float64{0, 0.1, 1, 10}, Y: []float64{9, 4, 2, 1}})
	out := c.Render()
	// x=0 dropped; the rest plot fine.
	if !strings.Contains(out, "*") {
		t.Fatalf("log chart missing points:\n%s", out)
	}
}

func TestMarkerCollision(t *testing.T) {
	c := Chart{Width: 10, Height: 3}
	c.Add(Series{Name: "a", X: []float64{1}, Y: []float64{1}})
	c.Add(Series{Name: "b", X: []float64{1}, Y: []float64{1}})
	out := c.Render()
	if !strings.Contains(out, "?") {
		t.Fatalf("collision glyph missing:\n%s", out)
	}
}

func TestSinglePointDegenerateRanges(t *testing.T) {
	c := Chart{Width: 12, Height: 4}
	c.Add(Series{Name: "p", X: []float64{5}, Y: []float64{7}})
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}
