// Package plot renders simple ASCII line charts and scatter plots for the
// methodology artifacts (best-so-far curves, non-dominated frontiers) so
// cmd/hgeval and the examples can show the *shape* of a comparison directly
// in a terminal, in the spirit of the paper's insistence that the
// quality-runtime tradeoff curve — not a single number — is the result.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named sequence of (X, Y) points.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune // distinct glyph; 0 picks automatically
}

// Chart is an ASCII plot canvas.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height of the plot area in characters (defaults 64 x 20).
	Width, Height int
	// LogX plots the x axis logarithmically (useful for CPU budgets).
	LogX bool

	series []Series
}

// markers cycled for series without an explicit glyph.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series. Points with non-finite coordinates are dropped at
// render time.
func (c *Chart) Add(s Series) {
	if s.Marker == 0 {
		s.Marker = markers[len(c.series)%len(markers)]
	}
	c.series = append(c.series, s)
}

// Render draws the chart.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}

	type pt struct{ x, y float64 }
	var pts [][]pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		var ps []pt
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			ps = append(ps, pt{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		pts = append(pts, ps)
	}
	if math.IsInf(minX, 1) {
		return c.Title + "\n(no finite points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	plotAt := func(x, y float64, m rune) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		row := int(math.Round((maxY - y) / (maxY - minY) * float64(h-1)))
		if col >= 0 && col < w && row >= 0 && row < h {
			if grid[row][col] != ' ' && grid[row][col] != m {
				grid[row][col] = '?' // collision of different series
			} else {
				grid[row][col] = m
			}
		}
	}
	for si, s := range c.series {
		ps := pts[si]
		sort.Slice(ps, func(a, b int) bool { return ps[a].x < ps[b].x })
		for i, p := range ps {
			plotAt(p.x, p.y, s.Marker)
			// Linear interpolation toward the next point for a line feel.
			if i+1 < len(ps) {
				q := ps[i+1]
				steps := 2 * w / maxInt(len(ps), 1)
				for st := 1; st < steps; st++ {
					f := float64(st) / float64(steps)
					ix := p.x + (q.x-p.x)*f
					iy := p.y + (q.y-p.y)*f
					col := int(math.Round((ix - minX) / (maxX - minX) * float64(w-1)))
					row := int(math.Round((maxY - iy) / (maxY - minY) * float64(h-1)))
					if col >= 0 && col < w && row >= 0 && row < h && grid[row][col] == ' ' {
						grid[row][col] = '.'
					}
				}
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintln(&b, c.Title)
	}
	yHi := formatTick(maxY)
	yLo := formatTick(minY)
	labelW := maxInt(len(yHi), len(yLo))
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		if i == 0 {
			label = fmt.Sprintf("%*s", labelW, yHi)
		} else if i == h-1 {
			label = fmt.Sprintf("%*s", labelW, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", w))
	xLo, xHi := minX, maxX
	if c.LogX {
		xLo, xHi = math.Pow(10, minX), math.Pow(10, maxX)
	}
	axis := fmt.Sprintf("%s%s", formatTick(xLo), strings.Repeat(" ", maxInt(1, w-len(formatTick(xLo))-len(formatTick(xHi)))))
	fmt.Fprintf(&b, "%s  %s%s", strings.Repeat(" ", labelW), axis, formatTick(xHi))
	if c.XLabel != "" {
		fmt.Fprintf(&b, "   [%s]", c.XLabel)
	}
	fmt.Fprintln(&b)
	// Legend.
	for _, s := range c.series {
		fmt.Fprintf(&b, "  %c %s\n", s.Marker, s.Name)
	}
	return b.String()
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av != 0 && (av < 0.01 || av >= 100000):
		return fmt.Sprintf("%.1e", v)
	case av < 10:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
