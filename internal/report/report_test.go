package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tab := NewTable("Title", "A", "Column")
	tab.AddRow("x", "1")
	tab.AddRow("longer", "2")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "Column") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.Contains(lines[2], "-") || !strings.Contains(lines[2], "+") {
		t.Fatalf("separator %q", lines[2])
	}
	// All data lines must have identical lengths (alignment).
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("misaligned rows: %q vs %q", lines[3], lines[4])
	}
}

func TestAddRowPadding(t *testing.T) {
	tab := NewTable("", "A", "B", "C")
	tab.AddRow("1")                // short: pad
	tab.AddRow("1", "2", "3", "4") // long: truncate
	if len(tab.Rows[0]) != 3 || len(tab.Rows[1]) != 3 {
		t.Fatalf("row lengths %d/%d", len(tab.Rows[0]), len(tab.Rows[1]))
	}
	if tab.Rows[0][2] != "" || tab.Rows[1][2] != "3" {
		t.Fatal("padding/truncation wrong")
	}
}

func TestAddRowf(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRowf(42, 3.5)
	if tab.Rows[0][0] != "42" || tab.Rows[0][1] != "3.5" {
		t.Fatalf("AddRowf row %v", tab.Rows[0])
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("t", "A", "B")
	tab.AddRow("x,y", "2")
	var buf bytes.Buffer
	tab.WriteCSV(&buf)
	got := buf.String()
	if !strings.HasPrefix(got, "A,B\n") {
		t.Fatalf("csv header: %q", got)
	}
	if !strings.Contains(got, "x;y,2") {
		t.Fatalf("comma not sanitized: %q", got)
	}
}

func TestMinAvgAndCutTime(t *testing.T) {
	if MinAvg(333, 639.4) != "333/639" {
		t.Fatalf("MinAvg: %q", MinAvg(333, 639.4))
	}
	if CutTime(265.72, 6.44) != "265.7/6.4" {
		t.Fatalf("CutTime: %q", CutTime(265.72, 6.44))
	}
}

func TestEmptyTitleOmitted(t *testing.T) {
	tab := NewTable("", "A")
	tab.AddRow("1")
	if strings.HasPrefix(tab.String(), "\n") {
		t.Fatal("empty title printed a blank line")
	}
}
