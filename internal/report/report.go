// Package report renders experiment results as aligned ASCII tables (the
// layouts of the paper's Tables 1-5) and as CSV for downstream analysis.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row built from format/args pairs alternating: each cell
// is its own fmt.Sprintf. Convenience for numeric rows.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	var sep strings.Builder
	for i := range t.Headers {
		sep.WriteString(strings.Repeat("-", widths[i]+2))
		if i < len(t.Headers)-1 {
			sep.WriteString("+")
		}
	}
	line := sep.String()
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, " %-*s ", widths[i], c)
			if i < len(cells)-1 {
				fmt.Fprint(w, "|")
			}
		}
		fmt.Fprintln(w)
	}
	printRow(t.Headers)
	fmt.Fprintln(w, line)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table as CSV (no quoting beyond replacing commas,
// since all producers emit comma-free cells).
func (t *Table) WriteCSV(w io.Writer) {
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = clean(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		for i, c := range row {
			cells[i] = clean(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// MinAvg formats the paper's "minimum/average" cell style, e.g. "333/639".
func MinAvg(min, avg float64) string {
	return fmt.Sprintf("%.0f/%.0f", min, avg)
}

// CutTime formats the Tables 4/5 "average cut / average CPU time" cell
// style, e.g. "265.7/6.4".
func CutTime(cut, seconds float64) string {
	return fmt.Sprintf("%.1f/%.1f", cut, seconds)
}
