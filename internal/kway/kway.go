// Package kway provides k-way hypergraph partitioning by recursive
// bisection — the approach the paper's driving application (top-down
// placement) uses, built from the same 2-way engines the paper studies.
// (The paper restricts its own experiments to FM-based 2-way partitioners
// and names multi-way partitioning as an open gap; recursive bisection is
// the standard bridge.)
//
// Unequal subdivisions (k not a power of two) use the classic dummy-vertex
// trick: to split a region's k parts into k1 and k2 (k1 >= k2), a
// zero-connectivity vertex of weight total*(k1-k2)/k is fixed to the k2
// side, so an ordinary symmetric bisection of the augmented instance yields
// real-weight shares k1/k and k2/k.
package kway

import (
	"context"
	"fmt"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/kwayfm"
	"hgpart/internal/multilevel"
	"hgpart/internal/objective"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Config controls the recursive bisection.
type Config struct {
	// Tolerance is the balance tolerance applied at every bisection.
	// Default 0.05.
	Tolerance float64
	// Refine configures the FM engine. Zero value gets core.StrongConfig.
	Refine core.Config
	// DisableML forces flat FM at every level; by default sub-instances
	// larger than MLThreshold use the multilevel engine.
	DisableML bool
	// MLThreshold is the sub-instance size above which ML is used.
	// Default 1000.
	MLThreshold int
	// Starts is the number of independent starts per bisection (best kept).
	// Default 1.
	Starts int
	// DirectRefine runs a Sanchis-style direct k-way FM refinement pass
	// (internal/kwayfm) over the recursive-bisection result, optimizing the
	// cut across all k parts at once — moves recursive bisection cannot see.
	DirectRefine bool
	// RefineThreads > 0 selects the synchronous-round parallel k-way
	// refiner (kwayfm.ParEngine) for the DirectRefine polish with that
	// many evaluation threads. The refined partition is byte-identical
	// for every positive value — 1 thread and 8 threads produce the same
	// bytes — but differs from the sequential (RefineThreads == 0)
	// trajectory, which remains the default.
	RefineThreads int
}

func (c Config) withDefaults() Config {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.05
	}
	if c.Refine == (core.Config{}) {
		c.Refine = core.StrongConfig(false)
	}
	if c.MLThreshold <= 0 {
		c.MLThreshold = 1000
	}
	if c.Starts <= 0 {
		c.Starts = 1
	}
	return c
}

// Result reports a k-way partitioning.
type Result struct {
	Parts objective.Assignment
	K     int
	// CutNets is the weighted number of nets spanning >1 part.
	CutNets int64
	// ConnectivityMinusOne is sum w(e)*(lambda-1).
	ConnectivityMinusOne int64
	// Imbalance is max part weight relative to ideal, minus one.
	Imbalance float64
	// Bisections performed.
	Bisections int
}

// Partition splits h into k parts by recursive min-cut bisection.
func Partition(h *hypergraph.Hypergraph, k int, cfg Config, r *rng.RNG) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("kway: k must be >= 1, got %d", k)
	}
	if k > h.NumVertices() {
		return Result{}, fmt.Errorf("kway: k=%d exceeds vertex count %d", k, h.NumVertices())
	}
	cfg = cfg.withDefaults()

	parts := make(objective.Assignment, h.NumVertices())
	all := make([]int32, h.NumVertices())
	for i := range all {
		all[i] = int32(i)
	}
	res := Result{K: k}
	bisect(h, cfg, r, all, 0, k, parts, &res)

	if cfg.DirectRefine && k >= 2 {
		// Refinement tolerance: per-part bound equivalent to the
		// per-bisection tolerance compounded once.
		kcfg := kwayfm.Config{
			Tolerance: cfg.Tolerance * 2,
			Objective: kwayfm.CutObjective,
		}
		if cfg.RefineThreads > 0 {
			pcfg := kwayfm.ParConfig{
				Tolerance:       cfg.Tolerance * 2,
				Objective:       kwayfm.CutObjective,
				Threads:         cfg.RefineThreads,
				CheckInvariants: cfg.Refine.CheckInvariants,
			}
			if _, err := kwayfm.ParRefine(context.Background(), h, parts, k, pcfg); err != nil {
				return Result{}, err
			}
			res.Parts = parts
			res.CutNets = objective.CutSize(h, parts)
			res.ConnectivityMinusOne = objective.ConnectivityMinusOne(h, parts)
			res.Imbalance = objective.Imbalance(h, parts, k)
			return res, nil
		}
		kr := r.Split()
		if cfg.Refine.ReferenceImpl {
			// The bisection layers already honored ReferenceImpl through
			// cfg.Refine; extend it to the direct k-way polish so an
			// end-to-end reference run stays reference throughout.
			if _, err := kwayfm.RefineReference(h, parts, k, kcfg, kr); err != nil {
				return Result{}, err
			}
		} else if _, err := kwayfm.Refine(h, parts, k, kcfg, kr); err != nil {
			return Result{}, err
		}
	}

	res.Parts = parts
	res.CutNets = objective.CutSize(h, parts)
	res.ConnectivityMinusOne = objective.ConnectivityMinusOne(h, parts)
	res.Imbalance = objective.Imbalance(h, parts, k)
	return res, nil
}

// bisect assigns part ids [lo, lo+kk) to cells.
func bisect(h *hypergraph.Hypergraph, cfg Config, r *rng.RNG, cells []int32, lo, kk int, parts objective.Assignment, res *Result) {
	if kk == 1 {
		for _, v := range cells {
			parts[v] = int32(lo)
		}
		return
	}
	k1 := (kk + 1) / 2 // side 0 share
	k2 := kk - k1      // side 1 share

	left, right := splitCells(h, cfg, r, cells, k1, k2)
	res.Bisections++
	bisect(h, cfg, r, left, lo, k1, parts, res)
	bisect(h, cfg, r, right, lo+k1, k2, parts, res)
}

// splitCells bisects the sub-hypergraph induced on cells into shares
// k1 : k2 by weight.
func splitCells(h *hypergraph.Hypergraph, cfg Config, r *rng.RNG, cells []int32, k1, k2 int) (left, right []int32) {
	local := make(map[int32]int32, len(cells))
	var subTotal int64
	for i, v := range cells {
		local[v] = int32(i)
		subTotal += h.VertexWeight(v)
	}

	b := hypergraph.NewBuilder(len(cells)+1, len(cells))
	b.Name = "kway-sub"
	for _, v := range cells {
		b.AddVertex(h.VertexWeight(v))
	}
	// Dummy vertex balancing unequal shares; weight 0 when k1 == k2.
	kk := k1 + k2
	dummyWeight := subTotal * int64(k1-k2) / int64(kk)
	dummy := b.AddVertex(dummyWeight)

	seen := make(map[int32]bool)
	for _, v := range cells {
		for _, e := range h.IncidentEdges(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			var pins []int32
			for _, u := range h.Pins(e) {
				if lu, ok := local[u]; ok {
					pins = append(pins, lu)
				}
			}
			if len(pins) >= 2 {
				b.AddEdge(h.EdgeWeight(e), pins...)
			}
		}
	}
	sub := b.MustBuild()
	bal := partition.NewBalance(sub.TotalVertexWeight(), cfg.Tolerance)

	best := runBisection(sub, dummy, cfg, bal, r)
	for i, v := range cells {
		if best.Side(int32(i)) == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Degenerate guard (e.g. one giant macro): split by count.
		half := len(cells) * k1 / kk
		if half == 0 {
			half = 1
		}
		return cells[:half], cells[half:]
	}
	return left, right
}

// runBisection performs cfg.Starts independent bisections of sub with the
// dummy fixed to side 1, returning the best legal partition.
func runBisection(sub *hypergraph.Hypergraph, dummy int32, cfg Config, bal partition.Balance, r *rng.RNG) *partition.P {
	var best *partition.P
	useML := !cfg.DisableML && sub.NumVertices() > cfg.MLThreshold
	var ml *multilevel.Partitioner
	var eng *core.Engine
	if useML {
		ml = multilevel.New(sub, multilevel.Config{Refine: cfg.Refine}, bal)
	} else {
		eng = core.NewEngine(sub, cfg.Refine, bal, r.Split())
	}
	for s := 0; s < cfg.Starts; s++ {
		var p *partition.P
		if useML {
			fixed := make([]int8, sub.NumVertices())
			for i := range fixed {
				fixed[i] = partition.Free
			}
			fixed[dummy] = 1
			p, _ = ml.PartitionFixed(fixed, r.Split())
		} else {
			p = partition.New(sub)
			p.Fix(dummy, 1)
			p.RandomBalanced(r.Split(), bal)
			eng.Run(p)
		}
		if best == nil || (p.Legal(bal) && (!best.Legal(bal) || p.Cut() < best.Cut())) {
			best = p
		}
	}
	return best
}
