package kway

import (
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
	"hgpart/internal/rng"
)

func instance(tb testing.TB, cells int, seed uint64) *hypergraph.Hypergraph {
	tb.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "kway-test", Cells: cells, Nets: cells + cells/10,
		AvgNetSize: 3.4, NumMacros: 3, MaxMacroFrac: 0.02,
		NumGlobalNets: 1, GlobalNetFrac: 0.01, Locality: 2, Seed: seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

func TestKWayBasic(t *testing.T) {
	h := instance(t, 600, 1)
	for _, k := range []int{2, 3, 4, 5, 8} {
		res, err := Partition(h, k, Config{Tolerance: 0.1}, rng.New(uint64(k)))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := res.Parts.Validate(k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Every part must be non-empty.
		seen := make([]bool, k)
		for _, p := range res.Parts {
			seen[p] = true
		}
		for p, ok := range seen {
			if !ok {
				t.Fatalf("k=%d: part %d empty", k, p)
			}
		}
		if res.CutNets <= 0 {
			t.Fatalf("k=%d: zero cut on connected instance", k)
		}
		if res.ConnectivityMinusOne < res.CutNets {
			t.Fatalf("k=%d: lambda-1 (%d) below cut (%d)", k, res.ConnectivityMinusOne, res.CutNets)
		}
	}
}

func TestKWayBalance(t *testing.T) {
	h := instance(t, 900, 2)
	for _, k := range []int{2, 3, 4} {
		res, err := Partition(h, k, Config{Tolerance: 0.1}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		// Recursive bisection compounds tolerance across levels; allow a
		// generous but bounded imbalance.
		if res.Imbalance > 0.35 {
			t.Fatalf("k=%d imbalance %.3f too large", k, res.Imbalance)
		}
	}
}

func TestKWayUnequalSplitShares(t *testing.T) {
	// k=3 must give parts near 1/3 each (the dummy-vertex trick at work:
	// the first bisection targets 2/3 vs 1/3).
	h := instance(t, 900, 3)
	res, err := Partition(h, 3, Config{Tolerance: 0.05}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	w := objective.PartWeights(h, res.Parts, 3)
	ideal := float64(h.TotalVertexWeight()) / 3
	for p, x := range w {
		dev := (float64(x) - ideal) / ideal
		if dev > 0.3 || dev < -0.3 {
			t.Fatalf("part %d weight %d deviates %.2f from ideal %.0f", p, x, dev, ideal)
		}
	}
}

func TestKWayCutGrowsWithK(t *testing.T) {
	h := instance(t, 800, 4)
	prev := int64(0)
	for _, k := range []int{2, 4, 8} {
		res, err := Partition(h, k, Config{Tolerance: 0.1}, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if res.CutNets < prev/2 {
			t.Fatalf("cut collapsed going to k=%d: %d after %d", k, res.CutNets, prev)
		}
		prev = res.CutNets
	}
}

func TestKWayK1(t *testing.T) {
	h := instance(t, 200, 5)
	res, err := Partition(h, 1, Config{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets != 0 || res.Bisections != 0 {
		t.Fatalf("k=1 should be trivial: %+v", res)
	}
}

func TestKWayErrors(t *testing.T) {
	h := instance(t, 50, 6)
	if _, err := Partition(h, 0, Config{}, rng.New(1)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(h, 51, Config{}, rng.New(1)); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestKWayDeterministic(t *testing.T) {
	h := instance(t, 400, 7)
	a, err := Partition(h, 4, Config{Tolerance: 0.1}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, 4, Config{Tolerance: 0.1}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if a.CutNets != b.CutNets {
		t.Fatalf("kway not deterministic: %d vs %d", a.CutNets, b.CutNets)
	}
}

func TestKWayMLPath(t *testing.T) {
	// Force the multilevel path by lowering the threshold.
	h := instance(t, 700, 8)
	res, err := Partition(h, 4, Config{Tolerance: 0.1, MLThreshold: 100}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Parts.Validate(4); err != nil {
		t.Fatal(err)
	}
	if res.Imbalance > 0.4 {
		t.Fatalf("ML-path imbalance %.3f", res.Imbalance)
	}
}

func TestKWayMultipleStarts(t *testing.T) {
	h := instance(t, 500, 9)
	one, err := Partition(h, 2, Config{Tolerance: 0.05, Starts: 1}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Partition(h, 2, Config{Tolerance: 0.05, Starts: 4}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if four.CutNets > one.CutNets*2 {
		t.Fatalf("4 starts (%d) much worse than 1 (%d)", four.CutNets, one.CutNets)
	}
}

func TestDirectRefineImproves(t *testing.T) {
	// DirectRefine optimizes across all parts at once; it must never hurt
	// the cut relative to plain recursive bisection with the same seed.
	h := instance(t, 600, 10)
	plain, err := Partition(h, 4, Config{Tolerance: 0.05}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Partition(h, 4, Config{Tolerance: 0.05, DirectRefine: true}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if refined.CutNets > plain.CutNets {
		t.Fatalf("DirectRefine worsened cut: %d -> %d", plain.CutNets, refined.CutNets)
	}
	if err := refined.Parts.Validate(4); err != nil {
		t.Fatal(err)
	}
	if refined.Imbalance > 0.35 {
		t.Fatalf("DirectRefine imbalance %.3f", refined.Imbalance)
	}
}
