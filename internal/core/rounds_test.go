package core

import (
	"testing"
)

// fillSquares is a round body whose output depends only on the chunk
// bounds, as the determinism contract requires.
func fillSquares(out []int64) func(lo, hi int) {
	return func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = int64(i) * int64(i)
		}
	}
}

func TestRoundPoolCoversEveryIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			for _, chunk := range []int{1, 7, 64, 2000} {
				p := NewRoundPool(threads)
				hits := make([]int32, n)
				p.Run(n, chunk, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						hits[i]++
					}
				})
				p.Close()
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("threads=%d n=%d chunk=%d: index %d executed %d times", threads, n, chunk, i, h)
					}
				}
			}
		}
	}
}

func TestRoundPoolOutputIndependentOfThreads(t *testing.T) {
	const n = 4096
	want := make([]int64, n)
	ref := NewRoundPool(1)
	ref.Run(n, 64, fillSquares(want))
	ref.Close()

	for _, threads := range []int{2, 4, 8} {
		p := NewRoundPool(threads)
		got := make([]int64, n)
		// Many rounds on one pool: reuse must not leak state between rounds.
		for round := 0; round < 50; round++ {
			clear(got)
			p.Run(n, 13, fillSquares(got))
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("threads=%d round=%d: slot %d = %d, want %d", threads, round, i, got[i], want[i])
				}
			}
		}
		p.Close()
	}
}

func TestRoundPoolThreads(t *testing.T) {
	p := NewRoundPool(3)
	if got := p.Threads(); got != 3 {
		t.Fatalf("Threads() = %d, want 3", got)
	}
	p.Close()
	p.Close() // idempotent

	auto := NewRoundPool(0)
	if auto.Threads() < 1 {
		t.Fatalf("auto pool has %d threads", auto.Threads())
	}
	auto.Close()
}

// TestRoundPoolSteadyStateAllocs pins the hotalloc contract dynamically:
// after construction, a round costs zero heap allocations regardless of
// thread count.
func TestRoundPoolSteadyStateAllocs(t *testing.T) {
	for _, threads := range []int{1, 4} {
		p := NewRoundPool(threads)
		out := make([]int64, 2048)
		body := fillSquares(out)
		p.Run(len(out), 64, body) // warm up
		allocs := testing.AllocsPerRun(20, func() {
			p.Run(len(out), 64, body)
		})
		p.Close()
		if allocs != 0 {
			t.Fatalf("threads=%d: %.2f allocs/round, want 0", threads, allocs)
		}
	}
}
