// Invariant checking: the debug-mode safety net behind the fault-tolerant
// evaluation harness. The paper's methodology rests on trusting the numbers
// an experiment reports; a partitioner whose incremental cut drifts from the
// true cut, or whose gain structure silently corrupts, poisons every
// downstream table. The checks here recompute the redundant state from
// scratch and convert any disagreement into a structured error the harness
// (internal/eval) can record as a failed start instead of publishing bogus
// statistics.
package core

import (
	"fmt"

	"hgpart/internal/partition"
)

// InvariantViolation is a structured invariant-check failure. Engine debug
// mode panics with *InvariantViolation (an internal-corruption signal, per
// the library's panic policy); the evaluation harness recovers it into a
// failed outcome.
type InvariantViolation struct {
	// Kind names the violated invariant: "cut", "net-counts", "areas",
	// "balance", "gain-structure".
	Kind string
	// Detail is a human-readable description of the disagreement.
	Detail string
}

func (e *InvariantViolation) Error() string {
	return fmt.Sprintf("core: invariant %q violated: %s", e.Kind, e.Detail)
}

// VerifyPartitionState cross-checks all incrementally maintained partition
// state against a from-scratch recomputation: the weighted cut, the per-net
// side pin counts and the per-side areas. It returns nil when everything
// agrees and an *InvariantViolation describing the first disagreement
// otherwise. Cost is O(pins); intended for debug mode and for the harness's
// per-start verification, not hot loops.
func VerifyPartitionState(p *partition.P) error {
	h := p.H
	if got, want := p.Cut(), p.CutFromScratch(); got != want {
		return &InvariantViolation{Kind: "cut",
			Detail: fmt.Sprintf("incremental cut %d, recomputed %d", got, want)}
	}
	var areas [2]int64
	for v := 0; v < h.NumVertices(); v++ {
		areas[p.Side(int32(v))] += h.VertexWeight(int32(v))
	}
	for s := uint8(0); s < 2; s++ {
		if p.Area(s) != areas[s] {
			return &InvariantViolation{Kind: "areas",
				Detail: fmt.Sprintf("side %d area %d, recomputed %d", s, p.Area(s), areas[s])}
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		var c [2]int32
		for _, v := range h.Pins(int32(e)) {
			c[p.Side(v)]++
		}
		for s := uint8(0); s < 2; s++ {
			if p.SideCount(int32(e), s) != c[s] {
				return &InvariantViolation{Kind: "net-counts",
					Detail: fmt.Sprintf("net %d side %d count %d, recomputed %d",
						e, s, p.SideCount(int32(e), s), c[s])}
			}
		}
	}
	return nil
}

// VerifyPartition is VerifyPartitionState plus the balance constraint: a
// finished start must return a legal partition.
func VerifyPartition(p *partition.P, bal partition.Balance) error {
	if err := VerifyPartitionState(p); err != nil {
		return err
	}
	if !p.Legal(bal) {
		return &InvariantViolation{Kind: "balance",
			Detail: fmt.Sprintf("areas (%d,%d) outside [%d,%d]", p.Area(0), p.Area(1), bal.Lo, bal.Hi)}
	}
	return nil
}

// verifyAfterPass runs the debug-mode checks the engine performs after every
// pass when Config.CheckInvariants is set: partition state consistency and
// gain-container structure. Balance is deliberately not checked — passes
// that legalize an infeasible initial solution leave the partition illegal
// until they succeed.
func (e *Engine) verifyAfterPass(p *partition.P) error {
	if err := VerifyPartitionState(p); err != nil {
		return err
	}
	gainErr := error(nil)
	if e.cfg.ReferenceImpl {
		gainErr = e.refCont.VerifyInvariants()
	} else {
		gainErr = e.cont.VerifyInvariants()
	}
	if gainErr != nil {
		return &InvariantViolation{Kind: "gain-structure", Detail: gainErr.Error()}
	}
	return nil
}
