package core

import (
	"math"

	"hgpart/internal/gain"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Result summarizes one Engine.Run.
type Result struct {
	// Cut is the weighted cut of the final (best legal) solution.
	Cut int64
	// Passes is the number of FM passes executed.
	Passes int
	// Moves is the total number of vertex moves made (including moves later
	// rolled back).
	Moves int64
	// Work counts gain-update pin visits — the deterministic work-unit
	// measure used to normalize "CPU time" across machines in benches, in
	// the spirit of the paper's normalization to a reference workstation.
	Work int64
	// StuckTerminations counts passes that ended with movable vertices
	// still in the gain container but every head move illegal — the
	// signature of the corking effect. The paper reports that "traces of
	// CLIP executions show that corking actually occurs fairly often,
	// particularly with the more modern ISPD98 actual-area benchmarks";
	// this counter is that trace.
	StuckTerminations int
	// ZeroMovePasses counts passes that made no moves at all (a fully
	// corked CLIP pass terminates without making any moves).
	ZeroMovePasses int
	// CorkEvents counts selection rounds in which a side's highest-gain
	// bucket head was an illegal move, disqualifying the whole side — the
	// per-selection cork. Large values relative to Moves mean the engine
	// spent much of the pass unable to use one side.
	CorkEvents int64
	// Pruned reports that a RunPruned predicate abandoned the start early.
	Pruned bool
}

// Engine runs flat FM (or CLIP) passes over a partition according to a
// Config. An Engine is bound to one hypergraph and one balance constraint;
// it may be reused across many starts (allocations are recycled).
type Engine struct {
	h   *hypergraph.Hypergraph
	cfg Config
	bal partition.Balance
	r   *rng.RNG

	cont      *gain.Container
	locked    []bool
	moveStack []int32
	work      int64
	corks     int64

	// Krishnamurthy lookahead state (allocated when LookaheadDepth >= 2).
	immobile [][2]int32 // per net: locked/excluded pins by side
	lookBuf  []int64

	tracer Tracer
}

// Tracer observes the engine's execution — the instrumentation behind the
// "Do collect all data possible" maxim and the corking traces of §2.3.
// Implementations must be cheap; hooks fire on the hot path.
type Tracer interface {
	// PassStart fires at the beginning of each pass with the current cut.
	PassStart(pass int, cut int64)
	// MoveMade fires after each accepted move with the running cut.
	MoveMade(pass int, moveIdx int64, v int32, cut int64)
	// PassEnd fires after rollback with the pass outcome.
	PassEnd(pass int, bestCut int64, moves int64, rolledBack int)
}

// SetTracer attaches a tracer (nil detaches). Not safe to call during Run.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// NewEngine builds an engine for h under balance bal. r drives Random
// insertion order and is required only in that case (a deterministic
// generator may always be passed).
func NewEngine(h *hypergraph.Hypergraph, cfg Config, bal partition.Balance, r *rng.RNG) *Engine {
	maxKey := h.MaxWeightedDegree()
	if cfg.CLIP {
		// Cumulative delta gains range over twice the plain-gain range.
		maxKey *= 2
	}
	var order gain.Order
	switch cfg.Insertion {
	case LIFO:
		order = gain.LIFO
	case FIFO:
		order = gain.FIFO
	case RandomOrder:
		order = gain.Random
	}
	return &Engine{
		h:      h,
		cfg:    cfg,
		bal:    bal,
		r:      r,
		cont:   gain.NewContainer(h.NumVertices(), maxKey, order, r),
		locked: make([]bool, h.NumVertices()),
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Balance returns the engine's balance constraint.
func (e *Engine) Balance() partition.Balance { return e.bal }

// Run improves p in place with FM passes until a pass brings no improvement
// (or cfg.MaxPasses is reached) and returns the outcome. p must be a
// partition of the engine's hypergraph.
func (e *Engine) Run(p *partition.P) Result {
	return e.RunPruned(p, nil)
}

// RunPruned is Run with an optional pruning predicate, enabling the
// early-termination multistart regime the paper's §3.2 describes ("pruning
// (early termination of starts that appear unpromising relative to previous
// starts) can be applied"). After every pass, keepGoing is consulted with
// the pass number and current cut; returning false abandons the start
// immediately (the partition keeps its current — already rolled-back —
// state). A nil predicate never prunes.
func (e *Engine) RunPruned(p *partition.P, keepGoing func(pass int, cut int64) bool) Result {
	if p.H != e.h {
		panic("core: partition belongs to a different hypergraph")
	}
	res := Result{}
	e.work = 0
	e.corks = 0
	for {
		improved, moves, stuck := e.pass(p, res.Passes+1)
		res.Passes++
		res.Moves += moves
		if e.cfg.CheckInvariants {
			if err := e.verifyAfterPass(p); err != nil {
				panic(err)
			}
		}
		if stuck {
			res.StuckTerminations++
		}
		if moves == 0 {
			res.ZeroMovePasses++
		}
		if !improved {
			break
		}
		if keepGoing != nil && !keepGoing(res.Passes, p.Cut()) {
			res.Pruned = true
			break
		}
		if e.cfg.MaxPasses > 0 && res.Passes >= e.cfg.MaxPasses {
			break
		}
	}
	res.Cut = p.Cut()
	res.Work = e.work
	res.CorkEvents = e.corks
	return res
}

// pass executes a single FM pass: insert movable vertices, repeatedly make
// the best legal head move, then roll back to the best legal prefix. stuck
// reports whether the pass ended with unlocked vertices still in the gain
// container but every head move illegal (corking).
func (e *Engine) pass(p *partition.P, passNo int) (improved bool, moves int64, stuck bool) {
	e.cont.Clear()
	for i := range e.locked {
		e.locked[i] = false
	}
	e.moveStack = e.moveStack[:0]
	lookahead := e.cfg.LookaheadDepth >= 2
	if lookahead {
		e.resetImmobile(p)
	}

	slack := e.bal.Slack()
	n := e.h.NumVertices()
	for v := 0; v < n; v++ {
		vv := int32(v)
		if p.IsFixed(vv) {
			continue
		}
		if e.cfg.CorkGuard && e.h.VertexWeight(vv) > slack {
			// This vertex can never move legally while the partition is
			// feasible; left in the container it can only cork a bucket.
			continue
		}
		if e.cfg.BoundaryOnly && !e.isBoundary(p, vv) {
			continue
		}
		if e.cfg.CLIP {
			e.cont.Insert(vv, p.Side(vv), 0)
		} else {
			e.cont.Insert(vv, p.Side(vv), p.Gain(vv))
		}
	}

	startCut := p.Cut()
	if e.tracer != nil {
		e.tracer.PassStart(passNo, startCut)
	}
	startLegal := p.Legal(e.bal)
	bestIdx := -1
	bestCut := startCut
	bestLegal := startLegal
	bestDiff := absDiff(p.Area(0), p.Area(1))
	if !startLegal {
		bestCut = math.MaxInt64
	}

	var lastFrom uint8
	hasLast := false

	for {
		v, ok := e.selectMove(p, lastFrom, hasLast)
		if !ok {
			stuck = e.cont.Size(0)+e.cont.Size(1) > 0
			break
		}
		from := p.Side(v)
		e.cont.Remove(v)
		e.locked[v] = true
		// Neighbor gain updates read pre-move pin counts; order matters.
		e.updateNeighbors(p, v)
		p.Move(v)
		if lookahead {
			e.chargeImmobile(p, v) // locked on its destination side
		}
		if e.cfg.BoundaryOnly {
			e.insertNewBoundary(p, v, slack)
		}
		e.moveStack = append(e.moveStack, v)
		moves++
		lastFrom = from
		hasLast = true
		if e.tracer != nil {
			e.tracer.MoveMade(passNo, moves, v, p.Cut())
		}

		cur := p.Cut()
		if !p.Legal(e.bal) {
			continue
		}
		take := false
		if !bestLegal || cur < bestCut {
			take = true
		} else if cur == bestCut {
			switch e.cfg.BestTie {
			case FirstBest:
				// keep the earlier one
			case LastBest:
				take = true
			case MostBalanced:
				take = absDiff(p.Area(0), p.Area(1)) < bestDiff
			}
		}
		if take {
			bestIdx = len(e.moveStack) - 1
			bestCut = cur
			bestLegal = true
			bestDiff = absDiff(p.Area(0), p.Area(1))
		}
	}

	// Roll back moves made after the best prefix.
	for i := len(e.moveStack) - 1; i > bestIdx; i-- {
		p.Move(e.moveStack[i])
	}
	if e.tracer != nil {
		e.tracer.PassEnd(passNo, p.Cut(), moves, len(e.moveStack)-1-bestIdx)
	}

	if !startLegal {
		return bestLegal, moves, stuck // legalizing counts as improvement
	}
	return bestLegal && bestCut < startCut, moves, stuck
}

// selectMove picks the next move per the paper's selection discipline: each
// side offers only the head of its highest non-empty bucket; an illegal head
// disqualifies the whole side (unless LookPastIllegal). Between two legal
// candidates the higher key wins; equal keys are resolved by the Bias.
func (e *Engine) selectMove(p *partition.P, lastFrom uint8, hasLast bool) (int32, bool) {
	var cand [2]int32
	var key [2]int64
	var have [2]bool

	for s := uint8(0); s < 2; s++ {
		if e.cfg.LookaheadDepth >= 2 {
			if v, k, ok := e.lookaheadHead(p, s); ok {
				cand[s], key[s], have[s] = v, k, true
			}
			continue
		}
		v, k, ok := e.cont.Head(s)
		if !ok {
			continue
		}
		if p.MoveLegal(v, e.bal) {
			cand[s], key[s], have[s] = v, k, true
			continue
		}
		e.corks++
		if e.cfg.LookPastIllegal {
			// Scan the remainder of the head bucket for a legal move —
			// the costly alternative the paper evaluated and rejected.
			e.cont.WalkBucket(s, k, func(u int32) bool {
				e.work++
				if p.MoveLegal(u, e.bal) {
					cand[s], key[s], have[s] = u, k, true
					return false
				}
				return true
			})
			continue
		}
		if e.cfg.SkipBucketOnly {
			// Skip only the corked bucket: examine the head of each lower
			// bucket until a legal move appears.
			e.cont.HeadsDown(s, func(u int32, uk int64) bool {
				e.work++
				if p.MoveLegal(u, e.bal) {
					cand[s], key[s], have[s] = u, uk, true
					return false
				}
				return true
			})
		}
	}

	switch {
	case !have[0] && !have[1]:
		return 0, false
	case have[0] && !have[1]:
		return cand[0], true
	case have[1] && !have[0]:
		return cand[1], true
	}
	if key[0] != key[1] {
		if key[0] > key[1] {
			return cand[0], true
		}
		return cand[1], true
	}
	// Equal keys on both sides: apply the bias.
	var s uint8
	switch e.cfg.Bias {
	case Part0:
		s = 0
	case Away:
		if hasLast {
			s = 1 - lastFrom
		}
	case Toward:
		if hasLast {
			s = lastFrom
		}
	}
	return cand[s], true
}

// updateNeighbors applies the delta-gain updates triggered by moving v,
// using the straightforward method the paper describes: walk v's incident
// nets one at a time, compute each neighbor's delta gain from the four
// before/after criticality values of that net, and immediately update the
// neighbor's position in the gain container. Whether a zero delta triggers
// a reinsertion is the Update policy.
//
// Must be called BEFORE p.Move(v): it reads pre-move pin counts.
func (e *Engine) updateNeighbors(p *partition.P, v int32) {
	from := p.Side(v)
	to := 1 - from
	skipUnchanged := e.cfg.Update == NonzeroOnly
	for _, edge := range e.h.IncidentEdges(v) {
		w := e.h.EdgeWeight(edge)
		cf := p.SideCount(edge, from)
		ct := p.SideCount(edge, to)
		if skipUnchanged && cf > 2 && ct > 1 {
			// No pin of this net can change gain; with NonzeroOnly the whole
			// net is safely skipped. Under AllDeltaGain the straightforward
			// implementation still walks it (and reinserts at zero delta),
			// which is exactly the churn the paper measures.
			continue
		}
		for _, y := range e.h.Pins(edge) {
			if y == v || e.locked[y] || !e.cont.Contains(y) {
				continue
			}
			e.work++
			sy := p.Side(y)
			var bsy, both, asy, aoth int32
			if sy == from {
				bsy, both = cf, ct
				asy, aoth = cf-1, ct+1
			} else {
				bsy, both = ct, cf
				asy, aoth = ct+1, cf-1
			}
			var delta int64
			if asy == 1 {
				delta += w
			}
			if bsy == 1 {
				delta -= w
			}
			if aoth == 0 {
				delta -= w
			}
			if both == 0 {
				delta += w
			}
			if delta == 0 {
				if e.cfg.Update == AllDeltaGain {
					e.cont.Update(y, 0)
				}
				continue
			}
			e.cont.Update(y, delta)
		}
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
