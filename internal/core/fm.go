package core

import (
	"math"

	"hgpart/internal/gain"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Result summarizes one Engine.Run.
type Result struct {
	// Cut is the weighted cut of the final (best legal) solution.
	Cut int64
	// Passes is the number of FM passes executed.
	Passes int
	// Moves is the total number of vertex moves made (including moves later
	// rolled back).
	Moves int64
	// Work counts gain-update pin visits — the deterministic work-unit
	// measure used to normalize "CPU time" across machines in benches, in
	// the spirit of the paper's normalization to a reference workstation.
	Work int64
	// StuckTerminations counts passes that ended with movable vertices
	// still in the gain container but every head move illegal — the
	// signature of the corking effect. The paper reports that "traces of
	// CLIP executions show that corking actually occurs fairly often,
	// particularly with the more modern ISPD98 actual-area benchmarks";
	// this counter is that trace.
	StuckTerminations int
	// ZeroMovePasses counts passes that made no moves at all (a fully
	// corked CLIP pass terminates without making any moves).
	ZeroMovePasses int
	// CorkEvents counts selection rounds in which a side's highest-gain
	// bucket head was an illegal move, disqualifying the whole side — the
	// per-selection cork. Large values relative to Moves mean the engine
	// spent much of the pass unable to use one side.
	CorkEvents int64
	// Pruned reports that a RunPruned predicate abandoned the start early.
	Pruned bool
}

// Engine runs flat FM (or CLIP) passes over a partition according to a
// Config. An Engine is bound to one hypergraph and one balance constraint;
// it may be reused across many starts (allocations are recycled).
type Engine struct {
	h   *hypergraph.Hypergraph
	cfg Config
	bal partition.Balance
	r   *rng.RNG

	cont      *gain.Container
	refCont   *gain.LegacyContainer // reference path only (Config.ReferenceImpl)
	locked    []bool
	gainBuf   []int64 // per-vertex initial gains, filled net-centrically
	moveStack []int32
	work      int64
	corks     int64

	// Partition mirror: during an optimized pass the engine is the source of
	// truth for side assignment, per-net side pin counts, side areas and the
	// running cut. Owning the state lets one sweep per move update counts,
	// cut and neighbor gains together (the seed pays two sweeps: p.Move plus
	// the per-net gain updates), makes rollback a byte flip per move instead
	// of a full counted move, and turns every mid-pass p.Cut/p.Legal/
	// p.MoveLegal call into a local read. The mirror is loaded from p at Run
	// start and written back with one p.Assign per Run (per pass in debug
	// mode, so invariant checks see a synchronized partition).
	side        []uint8
	cnt         [][2]int32
	area        [2]int64
	cut         int64
	mirrorDirty bool // counts/cut/areas stale (bulk rollback); sides are always valid

	// Krishnamurthy lookahead state (allocated when LookaheadDepth >= 2).
	immobile [][2]int32 // per net: locked/excluded pins by side
	lookBuf  []int64

	tracer Tracer
}

// Tracer observes the engine's execution — the instrumentation behind the
// "Do collect all data possible" maxim and the corking traces of §2.3.
// Implementations must be cheap; hooks fire on the hot path.
type Tracer interface {
	// PassStart fires at the beginning of each pass with the current cut.
	PassStart(pass int, cut int64)
	// MoveMade fires after each accepted move with the running cut.
	MoveMade(pass int, moveIdx int64, v int32, cut int64)
	// PassEnd fires after rollback with the pass outcome.
	PassEnd(pass int, bestCut int64, moves int64, rolledBack int)
}

// SetTracer attaches a tracer (nil detaches). Not safe to call during Run.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// NewEngine builds an engine for h under balance bal. r drives Random
// insertion order and is required only in that case (a deterministic
// generator may always be passed).
func NewEngine(h *hypergraph.Hypergraph, cfg Config, bal partition.Balance, r *rng.RNG) *Engine {
	e := &Engine{
		h:      h,
		cfg:    cfg,
		bal:    bal,
		r:      r,
		locked: make([]bool, h.NumVertices()),
	}
	if cfg.ReferenceImpl {
		if cfg.LookaheadDepth >= 2 || cfg.BoundaryOnly {
			panic("core: ReferenceImpl supports neither lookahead nor boundary-only refinement")
		}
		e.refCont = gain.NewLegacyContainer(h.NumVertices(), containerMaxKey(h, cfg), containerOrder(cfg), r)
	} else {
		e.cont = gain.NewContainer(h.NumVertices(), containerMaxKey(h, cfg), containerOrder(cfg), r)
		e.side = make([]uint8, h.NumVertices())
		e.cnt = make([][2]int32, h.NumEdges())
	}
	return e
}

// Rebind re-targets the engine at a different hypergraph and balance
// constraint, recycling every scratch allocation (gain container arrays,
// locked flags, gain and move buffers). Multilevel refinement rebinds one
// scratch engine across the levels of the uncoarsening sweep instead of
// constructing an engine per level; the engine behaves exactly as a freshly
// constructed one (gain.Container.Reinit guarantees no state leaks). A
// non-nil r re-arms the random stream driving Random insertion order; nil
// keeps the current stream (the multilevel case: one stream per start spans
// all levels). Under ReferenceImpl a fresh legacy container is constructed
// instead — the reference path deliberately keeps the seed's allocation
// behavior.
func (e *Engine) Rebind(h *hypergraph.Hypergraph, bal partition.Balance, r *rng.RNG) {
	e.h = h
	e.bal = bal
	if r != nil {
		e.r = r
	}
	if e.cfg.ReferenceImpl {
		e.refCont = gain.NewLegacyContainer(h.NumVertices(), containerMaxKey(h, e.cfg), containerOrder(e.cfg), e.r)
	} else {
		e.cont.Reinit(h.NumVertices(), containerMaxKey(h, e.cfg), containerOrder(e.cfg), e.r)
		if cap(e.side) < h.NumVertices() {
			e.side = make([]uint8, h.NumVertices())
		} else {
			e.side = e.side[:h.NumVertices()]
		}
		if cap(e.cnt) < h.NumEdges() {
			e.cnt = make([][2]int32, h.NumEdges())
		} else {
			e.cnt = e.cnt[:h.NumEdges()]
		}
	}
	if cap(e.locked) < h.NumVertices() {
		e.locked = make([]bool, h.NumVertices())
	} else {
		e.locked = e.locked[:h.NumVertices()]
	}
}

// containerMaxKey is the gain-key magnitude bound the container must cover.
func containerMaxKey(h *hypergraph.Hypergraph, cfg Config) int64 {
	maxKey := h.MaxWeightedDegree()
	if cfg.CLIP {
		// Cumulative delta gains range over twice the plain-gain range.
		maxKey *= 2
	}
	return maxKey
}

func containerOrder(cfg Config) gain.Order {
	switch cfg.Insertion {
	case FIFO:
		return gain.FIFO
	case RandomOrder:
		return gain.Random
	default:
		return gain.LIFO
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Balance returns the engine's balance constraint.
func (e *Engine) Balance() partition.Balance { return e.bal }

// Run improves p in place with FM passes until a pass brings no improvement
// (or cfg.MaxPasses is reached) and returns the outcome. p must be a
// partition of the engine's hypergraph.
func (e *Engine) Run(p *partition.P) Result {
	return e.RunPruned(p, nil)
}

// RunPruned is Run with an optional pruning predicate, enabling the
// early-termination multistart regime the paper's §3.2 describes ("pruning
// (early termination of starts that appear unpromising relative to previous
// starts) can be applied"). After every pass, keepGoing is consulted with
// the pass number and current cut; returning false abandons the start
// immediately (the partition keeps its current — already rolled-back —
// state). A nil predicate never prunes.
func (e *Engine) RunPruned(p *partition.P, keepGoing func(pass int, cut int64) bool) Result {
	if p.H != e.h {
		panic("core: partition belongs to a different hypergraph")
	}
	res := Result{}
	e.work = 0
	e.corks = 0
	reference := e.cfg.ReferenceImpl
	if !reference {
		e.mirrorInit(p)
		e.rebuildMirror()
		e.mirrorDirty = false
	}
	synced := reference
	for {
		var improved bool
		var moves int64
		var stuck bool
		var curCut int64
		if reference {
			improved, moves, stuck = e.referencePass(p, res.Passes+1)
			curCut = p.Cut()
		} else {
			improved, moves, stuck, curCut = e.pass(p, res.Passes+1)
			synced = false
		}
		res.Passes++
		res.Moves += moves
		if e.cfg.CheckInvariants {
			if !synced {
				e.syncPartition(p)
				synced = true
			}
			if err := e.verifyAfterPass(p); err != nil {
				panic(err)
			}
		}
		if stuck {
			res.StuckTerminations++
		}
		if moves == 0 {
			res.ZeroMovePasses++
		}
		if !improved {
			break
		}
		if keepGoing != nil && !keepGoing(res.Passes, curCut) {
			res.Pruned = true
			break
		}
		if e.cfg.MaxPasses > 0 && res.Passes >= e.cfg.MaxPasses {
			break
		}
	}
	if !synced {
		e.syncPartition(p)
	}
	res.Cut = p.Cut()
	res.Work = e.work
	res.CorkEvents = e.corks
	return res
}

// mirrorInit loads the current side assignment from p; rebuildMirror then
// derives counts, areas and cut from it.
func (e *Engine) mirrorInit(p *partition.P) {
	for v := range e.side {
		e.side[v] = p.Side(int32(v))
	}
}

// rebuildMirror recomputes the derived mirror state (per-net counts, areas,
// cut) from the mirror side vector — the same O(vertices + pins) recount
// p.Assign performs, run once per Run against arena storage; passes keep the
// mirror valid incrementally (applyMove forward, unmove on rollback).
func (e *Engine) rebuildMirror() {
	e.area = [2]int64{}
	for v := range e.side {
		e.area[e.side[v]] += e.h.VertexWeight(int32(v))
	}
	e.cut = 0
	for ei := range e.cnt {
		var c [2]int32
		for _, v := range e.h.Pins(int32(ei)) {
			c[e.side[v]]++
		}
		e.cnt[ei] = c
		if c[0] > 0 && c[1] > 0 {
			e.cut += e.h.EdgeWeight(int32(ei))
		}
	}
}

// syncPartition writes the mirror's side vector back into p, which rebuilds
// its own derived state. The mirror only ever makes legal FM moves of
// non-fixed vertices, so Assign cannot fail.
func (e *Engine) syncPartition(p *partition.P) {
	if err := p.Assign(e.side); err != nil {
		panic("core: mirror sync rejected: " + err.Error())
	}
}

// mirrorLegal is p.Legal against the mirror.
//
//hglint:hotpath
func (e *Engine) mirrorLegal() bool {
	return e.bal.Contains(e.area[0]) && e.bal.Contains(e.area[1])
}

// mirrorMoveLegal is p.MoveLegal against the mirror. The fixed-vertex check
// is unnecessary: fixed vertices are never inserted into the gain container,
// and only container members are proposed.
//
//hglint:hotpath
func (e *Engine) mirrorMoveLegal(v int32) bool {
	w := e.h.VertexWeight(v)
	from := e.side[v]
	return e.bal.Contains(e.area[from]-w) && e.bal.Contains(e.area[1-from]+w)
}

// mirrorGain is p.Gain against the mirror.
//
//hglint:hotpath
func (e *Engine) mirrorGain(v int32) int64 {
	from := e.side[v]
	to := 1 - from
	var g int64
	for _, edge := range e.h.IncidentEdges(v) {
		c := e.cnt[edge]
		w := e.h.EdgeWeight(edge)
		if c[from] == 1 {
			g += w
		}
		if c[to] == 0 {
			g -= w
		}
	}
	return g
}

// pass executes a single FM pass: insert movable vertices, repeatedly make
// the best legal head move, then roll back to the best legal prefix. stuck
// reports whether the pass ended with unlocked vertices still in the gain
// container but every head move illegal (corking). curCut is the cut of the
// solution left in the mirror after rollback (the caller syncs p lazily).
//
//hglint:hotpath
func (e *Engine) pass(p *partition.P, passNo int) (improved bool, moves int64, stuck bool, curCut int64) {
	if e.mirrorDirty {
		e.rebuildMirror()
		e.mirrorDirty = false
	}
	e.cont.Clear()
	clear(e.locked)
	e.moveStack = e.moveStack[:0]
	lookahead := e.cfg.LookaheadDepth >= 2
	if lookahead {
		e.resetImmobile(p)
	}

	slack := e.bal.Slack()
	n := e.h.NumVertices()
	if !e.cfg.CLIP {
		e.computeAllGains()
	}
	for v := 0; v < n; v++ {
		vv := int32(v)
		if p.IsFixed(vv) {
			continue
		}
		if e.cfg.CorkGuard && e.h.VertexWeight(vv) > slack {
			// This vertex can never move legally while the partition is
			// feasible; left in the container it can only cork a bucket.
			continue
		}
		if e.cfg.BoundaryOnly && !e.isBoundary(vv) {
			continue
		}
		if e.cfg.CLIP {
			e.cont.Insert(vv, e.side[vv], 0)
		} else {
			e.cont.Insert(vv, e.side[vv], e.gainBuf[vv])
		}
	}

	startCut := e.cut
	if e.tracer != nil {
		e.tracer.PassStart(passNo, startCut)
	}
	startLegal := e.mirrorLegal()
	bestIdx := -1
	bestCut := startCut
	bestLegal := startLegal
	bestDiff := absDiff(e.area[0], e.area[1])
	if !startLegal {
		bestCut = math.MaxInt64
	}

	var lastFrom uint8
	hasLast := false

	for {
		v, ok := e.selectMove(lastFrom, hasLast)
		if !ok {
			stuck = e.cont.Size(0)+e.cont.Size(1) > 0
			break
		}
		from := e.side[v]
		e.cont.Remove(v)
		e.locked[v] = true
		e.applyMove(v)
		if lookahead {
			e.chargeImmobile(v) // locked on its destination side
		}
		if e.cfg.BoundaryOnly {
			e.insertNewBoundary(p, v, slack)
		}
		//hglint:ignore hotalloc arena append: moveStack keeps its capacity across passes, so growth happens once per engine, not per pass
		e.moveStack = append(e.moveStack, v)
		moves++
		lastFrom = from
		hasLast = true
		if e.tracer != nil {
			e.tracer.MoveMade(passNo, moves, v, e.cut)
		}

		cur := e.cut
		if !e.mirrorLegal() {
			continue
		}
		take := false
		if !bestLegal || cur < bestCut {
			take = true
		} else if cur == bestCut {
			switch e.cfg.BestTie {
			case FirstBest:
				// keep the earlier one
			case LastBest:
				take = true
			case MostBalanced:
				take = absDiff(e.area[0], e.area[1]) < bestDiff
			}
		}
		if take {
			bestIdx = len(e.moveStack) - 1
			bestCut = cur
			bestLegal = true
			bestDiff = absDiff(e.area[0], e.area[1])
		}
	}

	// Roll back moves made after the best prefix. A short suffix is reversed
	// incrementally (unmove repairs counts, cut and areas as it goes); a long
	// one — common when a pass moves every vertex and keeps a small prefix —
	// just flips the side bytes back and leaves the derived state to one
	// recount at the next pass. Either way the seed pays more: a fully
	// counted p.Move per rolled move.
	rolled := len(e.moveStack) - 1 - bestIdx
	if rolled <= e.h.NumVertices()/4 {
		for i := len(e.moveStack) - 1; i > bestIdx; i-- {
			e.unmove(e.moveStack[i])
		}
	} else {
		for i := len(e.moveStack) - 1; i > bestIdx; i-- {
			u := e.moveStack[i]
			e.side[u] = 1 - e.side[u]
		}
		e.mirrorDirty = true
	}
	curCut = startCut
	if bestIdx >= 0 {
		curCut = bestCut
	}
	if e.tracer != nil {
		e.tracer.PassEnd(passNo, curCut, moves, len(e.moveStack)-1-bestIdx)
	}

	if !startLegal {
		return bestLegal, moves, stuck, curCut // legalizing counts as improvement
	}
	return bestLegal && bestCut < startCut, moves, stuck, curCut
}

// selectMove picks the next move per the paper's selection discipline: each
// side offers only the head of its highest non-empty bucket; an illegal head
// disqualifies the whole side (unless LookPastIllegal). Between two legal
// candidates the higher key wins; equal keys are resolved by the Bias.
//
//hglint:hotpath
func (e *Engine) selectMove(lastFrom uint8, hasLast bool) (int32, bool) {
	var cand [2]int32
	var key [2]int64
	var have [2]bool

	for s := uint8(0); s < 2; s++ {
		if e.cfg.LookaheadDepth >= 2 {
			if v, k, ok := e.lookaheadHead(s); ok {
				cand[s], key[s], have[s] = v, k, true
			}
			continue
		}
		v, k, ok := e.cont.Head(s)
		if !ok {
			continue
		}
		if e.mirrorMoveLegal(v) {
			cand[s], key[s], have[s] = v, k, true
			continue
		}
		e.corks++
		if e.cfg.LookPastIllegal {
			// Scan the remainder of the head bucket for a legal move —
			// the costly alternative the paper evaluated and rejected.
			//hglint:ignore hotalloc ablation-only branch (LookPastIllegal, off in every default config); its cost is the point of the experiment
			e.cont.WalkBucket(s, k, func(u int32) bool {
				e.work++
				if e.mirrorMoveLegal(u) {
					cand[s], key[s], have[s] = u, k, true
					return false
				}
				return true
			})
			continue
		}
		if e.cfg.SkipBucketOnly {
			// Skip only the corked bucket: examine the head of each lower
			// bucket until a legal move appears.
			//hglint:ignore hotalloc ablation-only branch (SkipBucketOnly, off in every default config); its cost is the point of the experiment
			e.cont.HeadsDown(s, func(u int32, uk int64) bool {
				e.work++
				if e.mirrorMoveLegal(u) {
					cand[s], key[s], have[s] = u, uk, true
					return false
				}
				return true
			})
		}
	}

	switch {
	case !have[0] && !have[1]:
		return 0, false
	case have[0] && !have[1]:
		return cand[0], true
	case have[1] && !have[0]:
		return cand[1], true
	}
	if key[0] != key[1] {
		if key[0] > key[1] {
			return cand[0], true
		}
		return cand[1], true
	}
	// Equal keys on both sides: apply the bias.
	var s uint8
	switch e.cfg.Bias {
	case Part0:
		s = 0
	case Away:
		if hasLast {
			s = 1 - lastFrom
		}
	case Toward:
		if hasLast {
			s = lastFrom
		}
	}
	return cand[s], true
}

// applyMove moves v in the mirror with one sweep over its incident nets,
// folding together what the seed does in two: the partition update (pin
// counts, cut, areas — p.Move) and the neighbor delta-gain application. Per
// net, the paper's pin-count state transitions are batched: a neighbor's
// delta through one net depends only on the neighbor's side and the net's
// pre-move (from, to) pin counts, so both possible deltas are computed once
// per net and applied to each eligible pin by a side lookup — no per-pin
// criticality recomputation. Bit-identical to the reference per-pin method
// (reference.go): a from-side neighbor implies cf >= 2 and a to-side
// neighbor implies ct >= 1, which collapses the four-term formula to the
// two-term ones below; the NonzeroOnly net skip (both deltas zero) is
// exactly the seed's cf > 2 && ct > 1 condition; and the per-pin work
// counter is maintained identically. The seed's locked-pin test is subsumed
// by the membership test: a locked vertex has been removed from the
// container, so Contains is false. Interleaving the count updates with the
// neighbor sweep is safe because each net's deltas read only that net's own
// pre-move counts and the (not yet flipped) side vector.
//
//hglint:hotpath
func (e *Engine) applyMove(v int32) {
	from := e.side[v]
	to := 1 - from
	allDelta := e.cfg.Update == AllDeltaGain
	cont := e.cont
	for _, edge := range e.h.IncidentEdges(v) {
		c := &e.cnt[edge]
		cf := c[from]
		ct := c[to]
		w := e.h.EdgeWeight(edge)
		var dFrom, dTo int64
		if cf == 2 {
			dFrom += w // from side leaves criticality 2 -> 1
		}
		if ct == 0 {
			dFrom += w // net was uncut; from-side pins stop paying for it
		}
		if ct == 1 {
			dTo -= w // to side leaves criticality 1 -> 2
		}
		if cf == 1 {
			dTo -= w // net becomes uncut on the to side
		}
		// Cut maintenance: v sits on from, so the net was cut iff ct > 0.
		if ct == 0 {
			if cf > 1 {
				e.cut += w // uncut net gains its first to-side pin
			}
		} else if cf == 1 {
			e.cut -= w // v was the last from-side pin
		}
		c[from] = cf - 1
		c[to] = ct + 1
		if dFrom == 0 && dTo == 0 && !allDelta {
			// No pin of this net can change gain; with NonzeroOnly the whole
			// net is safely skipped. Under AllDeltaGain the straightforward
			// implementation still walks it (and reinserts at zero delta),
			// which is exactly the churn the paper measures.
			continue
		}
		e.work += int64(cont.ApplyDeltaPins(e.h.Pins(edge), v, from, dFrom, dTo, allDelta))
	}
	e.side[v] = to
	w := e.h.VertexWeight(v)
	e.area[from] -= w
	e.area[to] += w
}

// unmove reverses a move during rollback: counts, cut, areas and side are
// restored with one sweep; no gain bookkeeping is needed because the pass is
// over. This is what keeps the mirror valid across passes — the seed pays a
// fully counted p.Move per rolled move plus per-pass recounts.
//
//hglint:hotpath
func (e *Engine) unmove(v int32) {
	from := e.side[v] // the to-side of the original move
	to := 1 - from
	for _, edge := range e.h.IncidentEdges(v) {
		c := &e.cnt[edge]
		cf := c[from]
		ct := c[to]
		w := e.h.EdgeWeight(edge)
		if ct == 0 {
			if cf > 1 {
				e.cut += w
			}
		} else if cf == 1 {
			e.cut -= w
		}
		c[from] = cf - 1
		c[to] = ct + 1
	}
	e.side[v] = to
	w := e.h.VertexWeight(v)
	e.area[from] -= w
	e.area[to] += w
}

// computeAllGains fills e.gainBuf with every vertex's current gain by a
// single net-centric sweep over the mirror instead of NumVertices
// partition.Gain calls. Only nets in a critical state contribute: a cut net
// with a lone pin on one side gives that pin +w, and an uncut multi-pin net
// charges every pin -w (single-pin nets cancel to zero). Everything else is
// skipped without touching its pin list, so the sweep is O(nets + critical
// pins) rather than O(pins) — and the buffer is an arena, so pass startup
// allocates nothing in steady state.
//
//hglint:hotpath
func (e *Engine) computeAllGains() {
	n := e.h.NumVertices()
	if cap(e.gainBuf) < n {
		//hglint:ignore hotalloc arena grow: taken once per engine/instance pairing, then the capacity check keeps every later pass allocation-free
		e.gainBuf = make([]int64, n)
	} else {
		e.gainBuf = e.gainBuf[:n]
		clear(e.gainBuf)
	}
	g := e.gainBuf
	for ei := range e.cnt {
		edge := int32(ei)
		c0 := e.cnt[ei][0]
		c1 := e.cnt[ei][1]
		w := e.h.EdgeWeight(edge)
		if c0 == 0 || c1 == 0 {
			if c0+c1 <= 1 {
				continue // single-pin (+w-w) or empty net: no contribution
			}
			for _, y := range e.h.Pins(edge) {
				g[y] -= w
			}
			continue
		}
		if c0 == 1 {
			for _, y := range e.h.Pins(edge) {
				if e.side[y] == 0 {
					g[y] += w
				}
			}
		}
		if c1 == 1 {
			for _, y := range e.h.Pins(edge) {
				if e.side[y] == 1 {
					g[y] += w
				}
			}
		}
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}
