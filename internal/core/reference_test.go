package core

import (
	"fmt"
	"testing"

	"hgpart/internal/exact"
	"hgpart/internal/hypergraph"
	"hgpart/internal/objective"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// The differential test layer: the optimized hot path (fm.go) must be
// observably indistinguishable from the frozen seed implementation
// (reference.go) — same seed, same instance, same config implies the same
// move sequence, the same per-move cut trajectory, the same rollbacks and
// the same final partition, not merely the same final cut.

// recorder captures every tracer event so two runs compare move-for-move.
type recorder struct{ events []string }

func (t *recorder) PassStart(pass int, cut int64) {
	t.events = append(t.events, fmt.Sprintf("start %d cut=%d", pass, cut))
}
func (t *recorder) MoveMade(pass int, moveIdx int64, v int32, cut int64) {
	t.events = append(t.events, fmt.Sprintf("move %d.%d v=%d cut=%d", pass, moveIdx, v, cut))
}
func (t *recorder) PassEnd(pass int, bestCut int64, moves int64, rolledBack int) {
	t.events = append(t.events, fmt.Sprintf("end %d best=%d moves=%d rb=%d", pass, bestCut, moves, rolledBack))
}

// differentialConfigs is allConfigs plus the presets and the
// selection-discipline / tie-break variants the tables exercise.
func differentialConfigs() []Config {
	cfgs := allConfigs()
	cfgs = append(cfgs, NaiveConfig(false), NaiveConfig(true), StrongConfig(false), StrongConfig(true))
	lp := StrongConfig(false)
	lp.LookPastIllegal = true
	sb := StrongConfig(true)
	sb.SkipBucketOnly = true
	lb := StrongConfig(false)
	lb.BestTie = LastBest
	ro := NaiveConfig(true)
	ro.Insertion = RandomOrder
	return append(cfgs, lp, sb, lb, ro)
}

// runTraced runs one full FM start and returns the outcome, the final side
// vector and the complete event trace.
func runTraced(h *hypergraph.Hypergraph, cfg Config, bal partition.Balance, pseed, rseed uint64) (Result, []uint8, []string) {
	p := prepared(h, bal, pseed)
	eng := NewEngine(h, cfg, bal, rng.New(rseed))
	rec := &recorder{}
	eng.SetTracer(rec)
	res := eng.Run(p)
	return res, p.Sides(), rec.events
}

func diffTraces(t *testing.T, label string, ref, opt []string) {
	t.Helper()
	for i := 0; i < len(ref) && i < len(opt); i++ {
		if ref[i] != opt[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  reference: %s\n  optimized: %s", label, i, ref[i], opt[i])
		}
	}
	if len(ref) != len(opt) {
		t.Fatalf("%s: trace lengths differ: reference %d, optimized %d", label, len(ref), len(opt))
	}
}

func TestOptimizedMatchesReferenceBitwise(t *testing.T) {
	instances := []*hypergraph.Hypergraph{
		randomGraph(301, 60, 90, 4),
		randomGraph(302, 90, 140, 8), // heavier weight spread: more corking
		localityGraph(303, 80),
	}
	for hi, h := range instances {
		bal := partition.NewBalance(h.TotalVertexWeight(), 0.08)
		for ci, cfg := range differentialConfigs() {
			cfg.CheckInvariants = true
			refCfg := cfg
			refCfg.ReferenceImpl = true
			pseed := uint64(1000*hi + ci)
			rseed := uint64(7*hi + 13*ci + 1)
			refRes, refSides, refTrace := runTraced(h, refCfg, bal, pseed, rseed)
			optRes, optSides, optTrace := runTraced(h, cfg, bal, pseed, rseed)
			label := fmt.Sprintf("instance %d cfg %v", hi, cfg)
			diffTraces(t, label, refTrace, optTrace)
			if refRes != optRes {
				t.Fatalf("%s: results differ:\n  reference: %+v\n  optimized: %+v", label, refRes, optRes)
			}
			for v := range refSides {
				if refSides[v] != optSides[v] {
					t.Fatalf("%s: final side of vertex %d differs: reference %d, optimized %d",
						label, v, refSides[v], optSides[v])
				}
			}
		}
	}
}

func TestReferenceRejectsPostSeedFeatures(t *testing.T) {
	h := randomGraph(310, 20, 30, 2)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	for _, cfg := range []Config{
		{ReferenceImpl: true, LookaheadDepth: 2},
		{ReferenceImpl: true, BoundaryOnly: true},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEngine accepted reference config %+v", cfg)
				}
			}()
			NewEngine(h, cfg, bal, rng.New(1))
		}()
	}
}

// oracleTracer recounts the cut from scratch via internal/objective after
// every pass; an engine whose incremental cut drifts from the true cut is
// caught at the pass where it happened.
type oracleTracer struct {
	t     *testing.T
	label string
	h     *hypergraph.Hypergraph
	p     *partition.P
}

func (o *oracleTracer) PassStart(int, int64)         {}
func (o *oracleTracer) MoveMade(int, int64, int32, int64) {}
func (o *oracleTracer) PassEnd(pass int, bestCut, moves int64, rolledBack int) {
	if got, want := o.p.Cut(), recountCut(o.h, o.p); got != want {
		o.t.Fatalf("%s: after pass %d incremental cut %d disagrees with objective recount %d",
			o.label, pass, got, want)
	}
}

// recountCut recomputes the weighted cut from the side vector alone,
// through the independent internal/objective implementation.
func recountCut(h *hypergraph.Hypergraph, p *partition.P) int64 {
	a := make(objective.Assignment, h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		a[v] = int32(p.Side(int32(v)))
	}
	return objective.CutSize(h, a)
}

// TestDifferentialOracleTinyInstances drives both engine implementations
// over random <= 12-vertex instances and holds them to two oracles: the cut
// reported after every pass must equal a from-scratch recount via
// internal/objective, and any legal final partition must be bounded below by
// the branch-and-bound optimum from internal/exact (which must agree on
// feasibility).
func TestDifferentialOracleTinyInstances(t *testing.T) {
	cfgs := []Config{
		NaiveConfig(false), NaiveConfig(true),
		StrongConfig(false), StrongConfig(true),
		{Update: NonzeroOnly, Bias: Part0, Insertion: RandomOrder, BestTie: LastBest},
	}
	for seed := uint64(1); seed <= 25; seed++ {
		nv := 4 + int(seed%9) // 4..12 vertices
		h := randomGraph(seed*101, nv, nv+4, 3)
		bal := partition.NewBalance(h.TotalVertexWeight(), 0.30)
		ex, exErr := exact.Bisect(h, bal, exact.Options{})
		for ci, cfg := range cfgs {
			cfg.CheckInvariants = true
			for _, reference := range []bool{false, true} {
				cfg.ReferenceImpl = reference
				label := fmt.Sprintf("seed %d cfg %d reference=%v", seed, ci, reference)
				p := prepared(h, bal, seed^0xabc)
				eng := NewEngine(h, cfg, bal, rng.New(seed+uint64(ci)))
				eng.SetTracer(&oracleTracer{t: t, label: label, h: h, p: p})
				res := eng.Run(p)
				if got := recountCut(h, p); res.Cut != got {
					t.Fatalf("%s: final cut %d disagrees with objective recount %d", label, res.Cut, got)
				}
				if p.Legal(bal) {
					if exErr != nil {
						t.Fatalf("%s: engine found a legal partition but exact says infeasible: %v", label, exErr)
					}
					if res.Cut < ex.Cut {
						t.Fatalf("%s: heuristic cut %d beats proven optimum %d", label, res.Cut, ex.Cut)
					}
				}
			}
		}
	}
}

// TestRebindMatchesFresh: an engine rebound onto a new hypergraph (with
// every arena dirty from a previous start on a different graph) must be
// indistinguishable from a freshly constructed one — the guarantee that lets
// multilevel refinement reuse one scratch engine across all levels.
func TestRebindMatchesFresh(t *testing.T) {
	first := randomGraph(401, 150, 220, 6)
	cfgs := []Config{StrongConfig(false), StrongConfig(true), NaiveConfig(false)}
	ro := StrongConfig(false)
	ro.Insertion = RandomOrder
	cfgs = append(cfgs, ro)
	for ci, cfg := range cfgs {
		cfg.CheckInvariants = true
		for si, second := range []*hypergraph.Hypergraph{
			randomGraph(402, 40, 60, 3),   // shrink
			randomGraph(403, 260, 380, 9), // grow
		} {
			balFirst := partition.NewBalance(first.TotalVertexWeight(), 0.10)
			bal := partition.NewBalance(second.TotalVertexWeight(), 0.10)

			reused := NewEngine(first, cfg, balFirst, rng.New(uint64(ci)))
			pWarm := prepared(first, balFirst, 11)
			reused.Run(pWarm) // dirty every arena
			reused.Rebind(second, bal, rng.New(uint64(ci)+99))

			fresh := NewEngine(second, cfg, bal, rng.New(uint64(ci)+99))

			pA := prepared(second, bal, 21)
			pB := prepared(second, bal, 21)
			recA, recB := &recorder{}, &recorder{}
			reused.SetTracer(recA)
			fresh.SetTracer(recB)
			resA := reused.Run(pA)
			resB := fresh.Run(pB)
			label := fmt.Sprintf("cfg %d graph %d rebind", ci, si)
			diffTraces(t, label, recB.events, recA.events)
			if resA != resB {
				t.Fatalf("%s: rebound engine result %+v differs from fresh %+v", label, resA, resB)
			}
			for v := 0; v < second.NumVertices(); v++ {
				if pA.Side(int32(v)) != pB.Side(int32(v)) {
					t.Fatalf("%s: rebound engine side vector differs at %d", label, v)
				}
			}
		}
	}
}
