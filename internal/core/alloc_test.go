package core

import (
	"testing"

	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// TestEngineSteadyStateDoesNotAllocate: once an engine's arenas are sized
// (gain container, locked flags, gain buffer, move stack), running further
// starts must not allocate at all — the multistart harness reuses one
// engine per worker, and pass-loop allocations are exactly what the
// hot-path rework eliminated. cmd/hgbench asserts the same property on the
// pinned micro-suite; this test keeps it from regressing at the unit level.
func TestEngineSteadyStateDoesNotAllocate(t *testing.T) {
	h := randomGraph(91, 300, 450, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	for _, cfg := range []Config{StrongConfig(false), StrongConfig(true), NaiveConfig(false)} {
		eng := NewEngine(h, cfg, bal, rng.New(1))
		p := partition.New(h)
		p.RandomBalanced(rng.New(7), bal)
		start := p.Sides()

		rerun := func() {
			if err := p.Assign(start); err != nil {
				t.Fatal(err)
			}
			eng.Run(p)
		}
		for i := 0; i < 3; i++ {
			rerun() // size the move stack and container arenas
		}
		if allocs := testing.AllocsPerRun(5, rerun); allocs != 0 {
			t.Errorf("%v: steady-state Run allocates %.1f times per start, want 0", cfg, allocs)
		}
	}
}
