package core

import (
	"testing"
	"testing/quick"

	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// randomGraph builds a random connected-ish test hypergraph.
func randomGraph(seed uint64, nv, ne int, maxW int) *hypergraph.Hypergraph {
	r := rng.New(seed)
	b := hypergraph.NewBuilder(nv, ne)
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + r.Intn(maxW)))
	}
	for e := 0; e < ne; e++ {
		size := 2 + r.Intn(4)
		pins := make([]int32, size)
		for i := range pins {
			pins[i] = int32(r.Intn(nv))
		}
		b.AddEdge(1, pins...)
	}
	return b.MustBuild()
}

// prepared returns a random legal starting partition for h under bal.
func prepared(h *hypergraph.Hypergraph, bal partition.Balance, seed uint64) *partition.P {
	p := partition.New(h)
	p.RandomBalanced(rng.New(seed), bal)
	return p
}

// allConfigs enumerates a representative config grid.
func allConfigs() []Config {
	var out []Config
	for _, clip := range []bool{false, true} {
		for _, upd := range []UpdatePolicy{AllDeltaGain, NonzeroOnly} {
			for _, bias := range []Bias{Away, Part0, Toward} {
				for _, ins := range []InsertionOrder{LIFO, FIFO, RandomOrder} {
					out = append(out, Config{
						CLIP: clip, Update: upd, Bias: bias, Insertion: ins,
						BestTie: MostBalanced, CorkGuard: clip,
					})
				}
			}
		}
	}
	return out
}

func TestRunNeverWorsensAndStaysLegal(t *testing.T) {
	h := randomGraph(1, 120, 200, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	for i, cfg := range allConfigs() {
		p := prepared(h, bal, uint64(i+10))
		start := p.Cut()
		eng := NewEngine(h, cfg, bal, rng.New(uint64(i)))
		res := eng.Run(p)
		if res.Cut > start {
			t.Fatalf("cfg %v worsened cut: %d -> %d", cfg, start, res.Cut)
		}
		if res.Cut != p.Cut() || p.Cut() != p.CutFromScratch() {
			t.Fatalf("cfg %v cut inconsistent: res=%d p=%d scratch=%d", cfg, res.Cut, p.Cut(), p.CutFromScratch())
		}
		if !p.Legal(bal) {
			t.Fatalf("cfg %v produced illegal partition", cfg)
		}
		if res.Passes < 1 {
			t.Fatalf("cfg %v reports %d passes", cfg, res.Passes)
		}
	}
}

func TestRunImprovesSubstantially(t *testing.T) {
	// On a structured instance FM must find far better than random cuts.
	h := localityGraph(2, 400)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p := prepared(h, bal, 3)
	start := p.Cut()
	eng := NewEngine(h, StrongConfig(false), bal, rng.New(4))
	res := eng.Run(p)
	if res.Cut*2 > start {
		t.Fatalf("FM barely improved structured instance: %d -> %d", start, res.Cut)
	}
}

// localityGraph is a ring-of-cliques instance with an obvious small cut.
func localityGraph(seed uint64, n int) *hypergraph.Hypergraph {
	r := rng.New(seed)
	b := hypergraph.NewBuilder(n, 2*n)
	b.AddVertices(n, 1)
	for i := 0; i < n; i++ {
		// Local 3-pin nets.
		b.AddEdge(1, int32(i), int32((i+1)%n), int32((i+2)%n))
		if r.Intn(4) == 0 {
			b.AddEdge(1, int32(i), int32((i+r.Intn(5)+1)%n))
		}
	}
	return b.MustBuild()
}

func TestDeterminism(t *testing.T) {
	h := randomGraph(5, 100, 150, 3)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	run := func() int64 {
		p := prepared(h, bal, 77)
		eng := NewEngine(h, StrongConfig(false), bal, rng.New(9))
		return eng.Run(p).Cut
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different cuts: %d vs %d", a, b)
	}
}

func TestRandomInsertionDeterministicGivenSeed(t *testing.T) {
	h := randomGraph(6, 100, 150, 3)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	cfg := Config{Insertion: RandomOrder, Update: NonzeroOnly, BestTie: FirstBest}
	run := func(seed uint64) int64 {
		p := prepared(h, bal, 55)
		eng := NewEngine(h, cfg, bal, rng.New(seed))
		return eng.Run(p).Cut
	}
	if run(1) != run(1) {
		t.Fatal("Random insertion not reproducible from seed")
	}
}

func TestMaxPassesRespected(t *testing.T) {
	h := randomGraph(7, 150, 250, 3)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	cfg := StrongConfig(false)
	cfg.MaxPasses = 1
	p := prepared(h, bal, 8)
	eng := NewEngine(h, cfg, bal, rng.New(1))
	res := eng.Run(p)
	if res.Passes != 1 {
		t.Fatalf("MaxPasses=1 but ran %d passes", res.Passes)
	}
}

func TestCorkGuardExcludesHeavyVertices(t *testing.T) {
	// Build an instance with one vertex heavier than the balance slack; the
	// guard must prevent it from ever moving.
	b := hypergraph.NewBuilder(12, 16)
	b.AddVertices(10, 10) // total 100 light
	heavy := b.AddVertex(40)
	b.AddVertex(40)
	for i := int32(0); i < 10; i++ {
		b.AddEdge(1, i, (i+1)%10)
		b.AddEdge(1, i, heavy)
	}
	h := b.MustBuild()
	// total = 180, 2% tolerance: slack = about 7 < 40.
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.04)
	if bal.Slack() >= 40 {
		t.Fatalf("test setup: slack %d not below heavy weight", bal.Slack())
	}
	cfg := StrongConfig(false)
	cfg.CorkGuard = true
	p := prepared(h, bal, 9)
	sideBefore := p.Side(heavy)
	eng := NewEngine(h, cfg, bal, rng.New(2))
	eng.Run(p)
	if p.Side(heavy) != sideBefore {
		t.Fatal("cork guard failed: heavy vertex moved")
	}
}

func TestFixedVerticesNeverMove(t *testing.T) {
	h := randomGraph(11, 80, 120, 3)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p := partition.New(h)
	p.Fix(0, 0)
	p.Fix(1, 1)
	p.Fix(2, 1)
	p.RandomBalanced(rng.New(3), bal)
	eng := NewEngine(h, StrongConfig(false), bal, rng.New(4))
	eng.Run(p)
	if p.Side(0) != 0 || p.Side(1) != 1 || p.Side(2) != 1 {
		t.Fatal("fixed vertex moved during FM")
	}
}

func TestCLIPTerminates(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		h := randomGraph(seed+20, 200, 300, 8)
		bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
		p := prepared(h, bal, seed)
		eng := NewEngine(h, StrongConfig(true), bal, rng.New(seed))
		res := eng.Run(p)
		if res.Cut != p.CutFromScratch() {
			t.Fatal("CLIP cut inconsistent")
		}
	}
}

func TestLookPastIllegal(t *testing.T) {
	h := randomGraph(31, 150, 220, 6)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	cfg := StrongConfig(false)
	cfg.LookPastIllegal = true
	p := prepared(h, bal, 5)
	start := p.Cut()
	eng := NewEngine(h, cfg, bal, rng.New(6))
	res := eng.Run(p)
	if res.Cut > start || !p.Legal(bal) {
		t.Fatal("LookPastIllegal broke the pass contract")
	}
}

func TestEngineRejectsForeignPartition(t *testing.T) {
	h1 := randomGraph(41, 30, 40, 2)
	h2 := randomGraph(42, 30, 40, 2)
	bal := partition.NewBalance(h1.TotalVertexWeight(), 0.10)
	eng := NewEngine(h1, StrongConfig(false), bal, rng.New(1))
	p := partition.New(h2)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign partition accepted")
		}
	}()
	eng.Run(p)
}

func TestWorkCounterMonotone(t *testing.T) {
	h := randomGraph(51, 200, 300, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p := prepared(h, bal, 1)
	eng := NewEngine(h, StrongConfig(false), bal, rng.New(1))
	res := eng.Run(p)
	if res.Work <= 0 {
		t.Fatalf("work counter %d", res.Work)
	}
	if res.Moves <= 0 {
		t.Fatalf("moves %d", res.Moves)
	}
}

func TestUpdatePolicyIsObservable(t *testing.T) {
	// The paper's point about the zero-delta-gain decision: it is not a
	// no-op. Across a batch of starts the two policies must diverge in
	// trajectory (different cuts or different work) on at least one start.
	h := randomGraph(61, 300, 450, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	run := func(u UpdatePolicy, seed uint64) Result {
		cfg := Config{Update: u, Insertion: LIFO, BestTie: FirstBest}
		p := prepared(h, bal, seed)
		eng := NewEngine(h, cfg, bal, rng.New(1))
		return eng.Run(p)
	}
	diverged := false
	for seed := uint64(0); seed < 8; seed++ {
		a := run(AllDeltaGain, seed)
		b := run(NonzeroOnly, seed)
		if a.Cut != b.Cut || a.Work != b.Work || a.Moves != b.Moves {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("AllDeltaGain and NonzeroOnly are behaviorally identical; the knob is dead")
	}
}

func TestPropertyFinalCutConsistency(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		h := randomGraph(seed, 60, 90, 5)
		bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
		cfgs := allConfigs()
		cfg := cfgs[int(seed%uint64(len(cfgs)))]
		p := prepared(h, bal, seed^0x55)
		start := p.Cut()
		eng := NewEngine(h, cfg, bal, rng.New(seed))
		res := eng.Run(p)
		return res.Cut <= start && res.Cut == p.CutFromScratch() && p.Legal(bal)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigStrings(t *testing.T) {
	cfg := StrongConfig(true)
	s := cfg.String()
	if s != "CLIP/Nonzero/Toward/LIFO/guarded" {
		t.Fatalf("Config.String = %q", s)
	}
	if AllDeltaGain.String() != "AllDeltaGain" || NonzeroOnly.String() != "Nonzero" {
		t.Fatal("UpdatePolicy strings")
	}
	if Away.String() != "Away" || Part0.String() != "Part0" || Toward.String() != "Toward" {
		t.Fatal("Bias strings")
	}
	if FirstBest.String() != "First" || LastBest.String() != "Last" || MostBalanced.String() != "Balance" {
		t.Fatal("BestTie strings")
	}
	if LIFO.String() != "LIFO" || FIFO.String() != "FIFO" || RandomOrder.String() != "Random" {
		t.Fatal("InsertionOrder strings")
	}
}

func TestNaiveAndStrongPresets(t *testing.T) {
	n := NaiveConfig(false)
	if n.CorkGuard || n.MaxPasses != 1 || n.Update != AllDeltaGain {
		t.Fatalf("NaiveConfig unexpected: %+v", n)
	}
	s := StrongConfig(true)
	if !s.CorkGuard || !s.CLIP || s.Update != NonzeroOnly {
		t.Fatalf("StrongConfig unexpected: %+v", s)
	}
}

func TestStrongBeatsNaiveOnAverage(t *testing.T) {
	// The paper's Table 2 phenomenon, as a regression test: over a batch of
	// starts on a weighted instance, the tuned config must clearly beat the
	// naive one on average cut.
	h := randomGraph(71, 500, 700, 12)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.05)
	avg := func(cfg Config) float64 {
		eng := NewEngine(h, cfg, bal, rng.New(1))
		var sum int64
		const runs = 10
		for i := 0; i < runs; i++ {
			p := prepared(h, bal, uint64(1000+i))
			sum += eng.Run(p).Cut
		}
		return float64(sum) / runs
	}
	naive, strong := avg(NaiveConfig(false)), avg(StrongConfig(false))
	if strong >= naive {
		t.Fatalf("strong (%.1f) not better than naive (%.1f)", strong, naive)
	}
}

func TestCorkingTraceCounters(t *testing.T) {
	// Unguarded CLIP on a macro-heavy, tightly balanced instance must show
	// stuck terminations (the corking signature); the guard removes most of
	// them. This reproduces the paper's "traces of CLIP executions show
	// that corking actually occurs fairly often".
	b := hypergraph.NewBuilder(64, 0)
	r := rng.New(5)
	var total int64
	for i := 0; i < 60; i++ {
		b.AddVertex(4)
		total += 4
	}
	for i := 0; i < 4; i++ {
		b.AddVertex(total / 8) // macros far above the 2% slack
	}
	for i := int32(0); i < 60; i++ {
		b.AddEdge(1, i, (i+1)%60, 60+(i%4))
		b.AddEdge(1, i, (i+7)%60)
	}
	h := b.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)

	// A corked CLIP selection skips a whole side because an immovable cell
	// heads its top bucket. Count cork events and moves: corks should be
	// frequent without the guard and the guard should unlock far more moves.
	trace := func(guard bool) (corks, moves int64) {
		cfg := StrongConfig(true)
		cfg.CorkGuard = guard
		eng := NewEngine(h, cfg, bal, rng.New(1))
		for i := 0; i < 20; i++ {
			p := partition.New(h)
			p.RandomBalanced(r.Split(), bal)
			res := eng.Run(p)
			corks += res.CorkEvents
			moves += res.Moves
		}
		return corks, moves
	}
	corksUnguarded, movesUnguarded := trace(false)
	_, movesGuarded := trace(true)
	if corksUnguarded == 0 {
		t.Fatal("no cork events observed without the guard on a macro-heavy instance")
	}
	if movesGuarded <= movesUnguarded {
		t.Fatalf("guarded CLIP should move more (uncorked): %d vs %d moves",
			movesGuarded, movesUnguarded)
	}
}
