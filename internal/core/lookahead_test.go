package core

import (
	"testing"

	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func lookaheadConfig(depth int) Config {
	cfg := StrongConfig(false)
	cfg.LookaheadDepth = depth
	return cfg
}

func TestLookaheadInvariants(t *testing.T) {
	h := randomGraph(81, 200, 300, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	for _, depth := range []int{2, 3, 4} {
		p := prepared(h, bal, uint64(depth))
		start := p.Cut()
		eng := NewEngine(h, lookaheadConfig(depth), bal, rng.New(uint64(depth)))
		res := eng.Run(p)
		if res.Cut > start {
			t.Fatalf("depth %d worsened cut", depth)
		}
		if res.Cut != p.CutFromScratch() || !p.Legal(bal) {
			t.Fatalf("depth %d broke invariants", depth)
		}
	}
}

func TestLookaheadDeterministic(t *testing.T) {
	h := randomGraph(82, 150, 220, 3)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	run := func() int64 {
		p := prepared(h, bal, 7)
		eng := NewEngine(h, lookaheadConfig(3), bal, rng.New(9))
		return eng.Run(p).Cut
	}
	if run() != run() {
		t.Fatal("lookahead not deterministic")
	}
}

func TestLookaheadChangesSelection(t *testing.T) {
	// The knob must be live: across several starts, depth-3 lookahead and
	// plain FM must diverge in at least one trajectory.
	h := randomGraph(83, 250, 380, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	plain := NewEngine(h, lookaheadConfig(0), bal, rng.New(1))
	look := NewEngine(h, lookaheadConfig(3), bal, rng.New(1))
	diverged := false
	for seed := uint64(0); seed < 8; seed++ {
		p1 := prepared(h, bal, seed)
		p2 := prepared(h, bal, seed)
		r1 := plain.Run(p1)
		r2 := look.Run(p2)
		if r1.Cut != r2.Cut || r1.Moves != r2.Moves {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("lookahead is behaviorally identical to plain FM; the knob is dead")
	}
}

func TestGainLevelsAgainstHandComputation(t *testing.T) {
	// Path instance: nets {0,1}, {1,2}, {2,3} with all vertices on side 0
	// except vertex 3. For v=1 (side 0, dst 1), with nothing locked:
	//   net {0,1}: freeSrcOthers=1 -> +1 at level 2; dst free=0 -> -1 at level 1 (not recorded).
	//   net {1,2}: freeSrcOthers=1 -> +1 at level 2; dst free=0 -> level 1.
	// So level-2 entry = +2.
	b := hypergraph.NewBuilder(4, 3)
	b.AddVertices(4, 1)
	b.AddEdge(1, 0, 1)
	b.AddEdge(1, 1, 2)
	b.AddEdge(1, 2, 3)
	h := b.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.6)
	eng := NewEngine(h, lookaheadConfig(3), bal, rng.New(1))
	p := partition.New(h)
	if err := p.Assign([]uint8{0, 0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	eng.mirrorInit(p)
	eng.rebuildMirror()
	eng.resetImmobile(p)
	vec := eng.gainLevels(1, 3, nil)
	if len(vec) != 2 {
		t.Fatalf("vector length %d", len(vec))
	}
	if vec[0] != 2 {
		t.Fatalf("level-2 gain of v1 = %d, want 2", vec[0])
	}
	// v=2 (side 0): net {1,2}: freeSrcOthers=1 -> +1 at level 2.
	// net {2,3}: freeSrcOthers=0 -> level 1; dst side ({3}) free=1 -> -1 at level 2.
	vec = eng.gainLevels(2, 3, nil)
	if vec[0] != 0 {
		t.Fatalf("level-2 gain of v2 = %d, want 0", vec[0])
	}
}

func TestGainLevelsRespectLockedPins(t *testing.T) {
	// Locking a pin on a side removes that side's nets from the lookahead
	// ledger (a net with a locked source pin can never become uncritical).
	b := hypergraph.NewBuilder(3, 1)
	b.AddVertices(3, 1)
	b.AddEdge(1, 0, 1, 2)
	h := b.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.9)
	eng := NewEngine(h, lookaheadConfig(3), bal, rng.New(1))
	p := partition.New(h)
	if err := p.Assign([]uint8{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	eng.mirrorInit(p)
	eng.rebuildMirror()
	eng.resetImmobile(p)
	// Without locks, for v0 (side 0 -> 1) on net {0,1,2}:
	// src: freeSrcOthers=1 -> +1 at level 2; dst: freeDst=1 -> -1 at level
	// 2. They cancel: level-2 gain 0.
	vec := eng.gainLevels(0, 3, nil)
	if vec[0] != 0 {
		t.Fatalf("unlocked level-2 = %d, want 0", vec[0])
	}
	// Fix v1 on side 0: the source side now has a locked pin, so the +1
	// source term disappears and only the -1 destination term remains.
	p.Fix(1, 0)
	eng.mirrorInit(p)
	eng.rebuildMirror()
	eng.resetImmobile(p)
	vec = eng.gainLevels(0, 3, nil)
	if vec[0] != -1 {
		t.Fatalf("locked level-2 = %d, want -1", vec[0])
	}
}

func TestLookaheadWithCLIP(t *testing.T) {
	h := randomGraph(84, 200, 300, 5)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.05)
	cfg := StrongConfig(true)
	cfg.LookaheadDepth = 2
	p := prepared(h, bal, 3)
	eng := NewEngine(h, cfg, bal, rng.New(2))
	res := eng.Run(p)
	if res.Cut != p.CutFromScratch() || !p.Legal(bal) {
		t.Fatal("CLIP+lookahead broke invariants")
	}
}

func TestBoundaryOnlyInvariants(t *testing.T) {
	h := randomGraph(91, 250, 380, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	cfg := StrongConfig(false)
	cfg.BoundaryOnly = true
	for seed := uint64(0); seed < 5; seed++ {
		p := prepared(h, bal, seed)
		start := p.Cut()
		eng := NewEngine(h, cfg, bal, rng.New(seed))
		res := eng.Run(p)
		if res.Cut > start || res.Cut != p.CutFromScratch() || !p.Legal(bal) {
			t.Fatalf("seed %d: boundary FM broke invariants", seed)
		}
	}
}

func TestBoundaryOnlyDoesLessWorkAsRefiner(t *testing.T) {
	// On a good starting solution over a structured instance (small
	// boundary), boundary-only refinement must cost clearly less work than
	// full refinement without losing much quality. (On random graphs nearly
	// every vertex is boundary and the optimization cannot help.)
	h := localityGraph(92, 600)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	base := prepared(h, bal, 1)
	eng := NewEngine(h, StrongConfig(false), bal, rng.New(1))
	eng.Run(base) // now a good solution

	run := func(boundary bool) (int64, int64) {
		cfg := StrongConfig(false)
		cfg.BoundaryOnly = boundary
		p := base.Copy()
		// Perturb slightly so refinement has something to do.
		r := rng.New(7)
		for i := 0; i < 20; i++ {
			v := int32(r.Intn(h.NumVertices()))
			if p.MoveLegal(v, bal) {
				p.Move(v)
			}
		}
		e2 := NewEngine(h, cfg, bal, rng.New(2))
		res := e2.Run(p)
		return res.Cut, res.Work
	}
	fullCut, fullWork := run(false)
	bCut, bWork := run(true)
	if bWork >= fullWork {
		t.Fatalf("boundary refinement not cheaper: %d vs %d work", bWork, fullWork)
	}
	if float64(bCut) > 1.3*float64(fullCut)+10 {
		t.Fatalf("boundary refinement too weak: cut %d vs %d", bCut, fullCut)
	}
}

func TestBoundaryOnlyLazyInsertion(t *testing.T) {
	// A pass starting from a zero-cut solution has an empty boundary; the
	// engine must terminate cleanly (no moves) rather than spin or panic.
	b := hypergraph.NewBuilder(8, 4)
	b.AddVertices(8, 1)
	b.AddEdge(1, 0, 1)
	b.AddEdge(1, 2, 3)
	b.AddEdge(1, 4, 5)
	b.AddEdge(1, 6, 7)
	h := b.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.5)
	cfg := StrongConfig(false)
	cfg.BoundaryOnly = true
	p := partition.New(h)
	if err := p.Assign([]uint8{0, 0, 0, 0, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(h, cfg, bal, rng.New(1))
	res := eng.Run(p)
	if res.Cut != 0 || res.Moves != 0 {
		t.Fatalf("zero-cut start should be a no-op: %+v", res)
	}
}

func TestSkipBucketOnlyInvariants(t *testing.T) {
	h := randomGraph(95, 250, 380, 6)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	cfg := StrongConfig(false)
	cfg.SkipBucketOnly = true
	cfg.CorkGuard = false // make illegal heads common
	for seed := uint64(0); seed < 5; seed++ {
		p := prepared(h, bal, seed)
		start := p.Cut()
		eng := NewEngine(h, cfg, bal, rng.New(seed))
		res := eng.Run(p)
		if res.Cut > start || res.Cut != p.CutFromScratch() || !p.Legal(bal) {
			t.Fatalf("seed %d: SkipBucketOnly broke invariants", seed)
		}
	}
}

func TestSkipBucketOnlyMakesMoreMoves(t *testing.T) {
	// Plant a high-gain, immovably heavy macro at the head of each side's
	// top bucket (plain FM; gains are real, not cumulative). Skipping the
	// whole side kills the pass immediately; skipping only the corked
	// bucket lets the light cells underneath keep moving.
	//
	// Layout: macro0 (w50, side 0) crosses to every side-1 light cell;
	// macro1 (w50, side 1) crosses to every side-0 light cell. Each macro's
	// gain is +20 (all its nets uncut by moving it) — top bucket — but its
	// weight makes every move illegal at 5% tolerance.
	b := hypergraph.NewBuilder(42, 0)
	m0 := b.AddVertex(50)
	m1 := b.AddVertex(50)
	for i := 0; i < 40; i++ {
		b.AddVertex(4)
	}
	light := func(i int) int32 { return int32(2 + i) } // 0..19 side 0, 20..39 side 1
	for i := 0; i < 20; i++ {
		b.AddEdge(1, m0, light(20+i)) // macro0 to side-1 cells
		b.AddEdge(1, m1, light(i))    // macro1 to side-0 cells
	}
	// Light-cell nets crossing the cut so they have movable gain.
	for i := 0; i < 20; i++ {
		b.AddEdge(1, light(i), light(20+(i+3)%20))
	}
	h := b.MustBuild()
	sides := make([]uint8, 42)
	sides[m1] = 1
	for i := 20; i < 40; i++ {
		sides[light(i)] = 1
	}
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.05)

	run := func(skipBucket bool) int64 {
		cfg := Config{
			Update: NonzeroOnly, Bias: Toward, Insertion: LIFO,
			CorkGuard: false, SkipBucketOnly: skipBucket, MaxPasses: 1,
		}
		p := partition.New(h)
		if err := p.Assign(sides); err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(h, cfg, bal, rng.New(1))
		return eng.Run(p).Moves
	}
	side := run(false)
	bucket := run(true)
	if side != 0 {
		t.Fatalf("setup broken: skip-side should cork immediately, made %d moves", side)
	}
	if bucket <= side {
		t.Fatalf("SkipBucketOnly did not unlock moves: %d vs %d", bucket, side)
	}
}
