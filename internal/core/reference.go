// The seed FM pass, frozen verbatim as the differential-testing oracle for
// the optimized hot path in fm.go.
//
// DO NOT OPTIMIZE OR OTHERWISE EDIT THIS FILE. Selecting Config.ReferenceImpl
// runs these routines on gain.LegacyContainer — the straightforward
// implementation the seed test suite and the paper-reproduction experiments
// were validated against. The optimized engine must produce bit-identical
// move sequences, cuts, work counts and cork traces (see reference_test.go
// and cmd/hgpart/determinism_test.go); cmd/hgbench times this path to report
// an honest baseline-vs-optimized speedup.
//
// The reference engine covers the full Table 1–5 configuration space (CLIP,
// Update, Bias, Insertion, BestTie, CorkGuard, LookPastIllegal,
// SkipBucketOnly). It deliberately omits the two post-seed extensions —
// Krishnamurthy lookahead and boundary-only refinement — which NewEngine
// rejects under ReferenceImpl.
package core

import (
	"math"

	"hgpart/internal/partition"
)

// referencePass is the seed Engine.pass running on the legacy gain container.
func (e *Engine) referencePass(p *partition.P, passNo int) (improved bool, moves int64, stuck bool) {
	e.refCont.Clear()
	for i := range e.locked {
		e.locked[i] = false
	}
	e.moveStack = e.moveStack[:0]

	slack := e.bal.Slack()
	n := e.h.NumVertices()
	for v := 0; v < n; v++ {
		vv := int32(v)
		if p.IsFixed(vv) {
			continue
		}
		if e.cfg.CorkGuard && e.h.VertexWeight(vv) > slack {
			// This vertex can never move legally while the partition is
			// feasible; left in the container it can only cork a bucket.
			continue
		}
		if e.cfg.CLIP {
			e.refCont.Insert(vv, p.Side(vv), 0)
		} else {
			e.refCont.Insert(vv, p.Side(vv), p.Gain(vv))
		}
	}

	startCut := p.Cut()
	if e.tracer != nil {
		e.tracer.PassStart(passNo, startCut)
	}
	startLegal := p.Legal(e.bal)
	bestIdx := -1
	bestCut := startCut
	bestLegal := startLegal
	bestDiff := absDiff(p.Area(0), p.Area(1))
	if !startLegal {
		bestCut = math.MaxInt64
	}

	var lastFrom uint8
	hasLast := false

	for {
		v, ok := e.referenceSelectMove(p, lastFrom, hasLast)
		if !ok {
			stuck = e.refCont.Size(0)+e.refCont.Size(1) > 0
			break
		}
		from := p.Side(v)
		e.refCont.Remove(v)
		e.locked[v] = true
		// Neighbor gain updates read pre-move pin counts; order matters.
		e.referenceUpdateNeighbors(p, v)
		p.Move(v)
		e.moveStack = append(e.moveStack, v)
		moves++
		lastFrom = from
		hasLast = true
		if e.tracer != nil {
			e.tracer.MoveMade(passNo, moves, v, p.Cut())
		}

		cur := p.Cut()
		if !p.Legal(e.bal) {
			continue
		}
		take := false
		if !bestLegal || cur < bestCut {
			take = true
		} else if cur == bestCut {
			switch e.cfg.BestTie {
			case FirstBest:
				// keep the earlier one
			case LastBest:
				take = true
			case MostBalanced:
				take = absDiff(p.Area(0), p.Area(1)) < bestDiff
			}
		}
		if take {
			bestIdx = len(e.moveStack) - 1
			bestCut = cur
			bestLegal = true
			bestDiff = absDiff(p.Area(0), p.Area(1))
		}
	}

	// Roll back moves made after the best prefix.
	for i := len(e.moveStack) - 1; i > bestIdx; i-- {
		p.Move(e.moveStack[i])
	}
	if e.tracer != nil {
		e.tracer.PassEnd(passNo, p.Cut(), moves, len(e.moveStack)-1-bestIdx)
	}

	if !startLegal {
		return bestLegal, moves, stuck // legalizing counts as improvement
	}
	return bestLegal && bestCut < startCut, moves, stuck
}

// referenceSelectMove is the seed Engine.selectMove on the legacy container.
func (e *Engine) referenceSelectMove(p *partition.P, lastFrom uint8, hasLast bool) (int32, bool) {
	var cand [2]int32
	var key [2]int64
	var have [2]bool

	for s := uint8(0); s < 2; s++ {
		v, k, ok := e.refCont.Head(s)
		if !ok {
			continue
		}
		if p.MoveLegal(v, e.bal) {
			cand[s], key[s], have[s] = v, k, true
			continue
		}
		e.corks++
		if e.cfg.LookPastIllegal {
			// Scan the remainder of the head bucket for a legal move —
			// the costly alternative the paper evaluated and rejected.
			e.refCont.WalkBucket(s, k, func(u int32) bool {
				e.work++
				if p.MoveLegal(u, e.bal) {
					cand[s], key[s], have[s] = u, k, true
					return false
				}
				return true
			})
			continue
		}
		if e.cfg.SkipBucketOnly {
			// Skip only the corked bucket: examine the head of each lower
			// bucket until a legal move appears.
			e.refCont.HeadsDown(s, func(u int32, uk int64) bool {
				e.work++
				if p.MoveLegal(u, e.bal) {
					cand[s], key[s], have[s] = u, uk, true
					return false
				}
				return true
			})
		}
	}

	switch {
	case !have[0] && !have[1]:
		return 0, false
	case have[0] && !have[1]:
		return cand[0], true
	case have[1] && !have[0]:
		return cand[1], true
	}
	if key[0] != key[1] {
		if key[0] > key[1] {
			return cand[0], true
		}
		return cand[1], true
	}
	// Equal keys on both sides: apply the bias.
	var s uint8
	switch e.cfg.Bias {
	case Part0:
		s = 0
	case Away:
		if hasLast {
			s = 1 - lastFrom
		}
	case Toward:
		if hasLast {
			s = lastFrom
		}
	}
	return cand[s], true
}

// referenceUpdateNeighbors is the seed Engine.updateNeighbors: per-pin delta
// recomputation from the four before/after criticality values, applied
// immediately to the legacy container.
//
// Must be called BEFORE p.Move(v): it reads pre-move pin counts.
func (e *Engine) referenceUpdateNeighbors(p *partition.P, v int32) {
	from := p.Side(v)
	to := 1 - from
	skipUnchanged := e.cfg.Update == NonzeroOnly
	for _, edge := range e.h.IncidentEdges(v) {
		w := e.h.EdgeWeight(edge)
		cf := p.SideCount(edge, from)
		ct := p.SideCount(edge, to)
		if skipUnchanged && cf > 2 && ct > 1 {
			// No pin of this net can change gain; with NonzeroOnly the whole
			// net is safely skipped. Under AllDeltaGain the straightforward
			// implementation still walks it (and reinserts at zero delta),
			// which is exactly the churn the paper measures.
			continue
		}
		for _, y := range e.h.Pins(edge) {
			if y == v || e.locked[y] || !e.refCont.Contains(y) {
				continue
			}
			e.work++
			sy := p.Side(y)
			var bsy, both, asy, aoth int32
			if sy == from {
				bsy, both = cf, ct
				asy, aoth = cf-1, ct+1
			} else {
				bsy, both = ct, cf
				asy, aoth = ct+1, cf-1
			}
			var delta int64
			if asy == 1 {
				delta += w
			}
			if bsy == 1 {
				delta -= w
			}
			if aoth == 0 {
				delta -= w
			}
			if both == 0 {
				delta += w
			}
			if delta == 0 {
				if e.cfg.Update == AllDeltaGain {
					e.refCont.Update(y, 0)
				}
				continue
			}
			e.refCont.Update(y, delta)
		}
	}
}
