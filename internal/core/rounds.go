// Round-structured parallel pass driver. Where fm.go's sequential engine
// interleaves selection and mutation move by move, the synchronous-round
// parallel refiners (internal/kwayfm's ParEngine) split each pass into an
// embarrassingly-parallel evaluation phase over a frozen snapshot followed
// by a single-threaded commit phase. RoundPool is the reusable fork-join
// driver for the evaluation phase: it owns a fixed set of long-lived worker
// goroutines (spawning per round would allocate and defeat the hotalloc
// contract) and hands them deterministic index ranges of the round's work
// list.
//
// Determinism contract: Run chunks [0, n) into fixed-size slices and
// dispatches whole chunks through an atomic cursor. Which worker executes
// which chunk is scheduling-dependent, but the body receives exactly the
// chunk bounds — so as long as body(lo, hi) writes only slots lo..hi-1 of
// output arrays and reads only state that no other chunk writes during the
// round, the memory state after Run is a pure function of (n, chunk, body),
// independent of worker count and interleaving. That is the property the
// kwayfm differential tests prove byte-for-byte at 1, 2, 4 and 8 threads.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RoundPool runs fork-join rounds over a persistent set of workers.
//
// The zero value is not usable; call NewRoundPool. A RoundPool is not safe
// for concurrent Run calls — it belongs to one engine, which alternates
// Run (parallel evaluate) with its own serial commit work. Close releases
// the workers; a pool with Threads() == 1 spawns none and Run degenerates
// to a plain loop on the caller's goroutine.
type RoundPool struct {
	extra int           // workers beyond the caller's own goroutine
	work  chan struct{} // one token per helper per round
	stop  chan struct{} // closed by Close; terminates the worker loops
	done  sync.WaitGroup
	round sync.WaitGroup
	once  sync.Once

	// Round state: written by Run before the helpers are released, read-only
	// while the round is in flight. The channel send/receive pair publishes
	// the writes to the workers; round.Wait() publishes the workers' output
	// back to the caller.
	body  func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
}

// NewRoundPool creates a pool that executes rounds with the given number of
// threads (the caller's goroutine plus threads-1 helpers). threads < 1
// selects GOMAXPROCS. The helpers park on a channel between rounds; call
// Close to terminate them.
func NewRoundPool(threads int) *RoundPool {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	p := &RoundPool{
		extra: threads - 1,
		work:  make(chan struct{}, threads),
		stop:  make(chan struct{}),
	}
	for i := 0; i < p.extra; i++ {
		p.done.Add(1)
		go func() {
			defer p.done.Done()
			for {
				select {
				case <-p.stop:
					return
				case <-p.work:
					p.drain()
					p.round.Done()
				}
			}
		}()
	}
	return p
}

// Threads returns the round parallelism (helpers + the calling goroutine).
func (p *RoundPool) Threads() int { return p.extra + 1 }

// drain claims chunks off the shared cursor until the work list is
// exhausted. Chunk claims are the only cross-worker coordination in a
// round; everything the body does must stay within its chunk bounds.
//
//hglint:hotpath
func (p *RoundPool) drain() {
	n, chunk, body := p.n, p.chunk, p.body
	for {
		c := p.next.Add(1) - 1
		lo := int(c) * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		body(lo, hi)
	}
}

// Run executes body over every chunk of [0, n) and returns when all chunks
// are done. The caller's goroutine participates, so Run on a 1-thread pool
// is a plain serial loop with no synchronization at all. chunk < 1 is
// treated as 1. Run allocates nothing: the per-round bookkeeping is two
// WaitGroup counters, one atomic store and extra buffered channel sends.
//
//hglint:hotpath
func (p *RoundPool) Run(n, chunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	p.body, p.n, p.chunk = body, n, chunk
	p.next.Store(0)
	if p.extra > 0 {
		p.round.Add(p.extra)
		for i := 0; i < p.extra; i++ {
			p.work <- struct{}{}
		}
	}
	p.drain()
	if p.extra > 0 {
		p.round.Wait()
	}
}

// Close terminates the helper goroutines and waits for them to exit. It is
// idempotent and must not be called while a Run is in flight.
func (p *RoundPool) Close() {
	p.once.Do(func() {
		close(p.stop)
		p.done.Wait()
	})
}
