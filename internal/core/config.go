// Package core implements the paper's primary contribution: a
// Fiduccia–Mattheyses testbench in which every "implicit implementation
// decision" — the underspecified features of the original 1982 FM
// description that any implementation must silently resolve — is an
// explicit, independently switchable configuration knob.
//
// The paper (Caldwell, Kahng, Kennings, Markov, DAC 1999) demonstrates that
// the spread of solution quality across combinations of these decisions far
// exceeds the improvements typically claimed for new partitioning
// heuristics. Table 1 of the paper sweeps two of the knobs across four
// engines; Tables 2 and 3 contrast naive and tuned settings.
//
// The knobs:
//
//   - Bias: tie-breaking between equal-gain head moves of the two sides
//     (Away / Part0 / Toward the partition of the last moved vertex);
//   - Update: whether a zero-delta gain update reinserts the vertex in its
//     bucket (AllDeltaGain) or is skipped (NonzeroOnly);
//   - Insertion: LIFO / FIFO / Random placement within a gain bucket;
//   - BestTie: which of several equal-cut prefixes of a pass is kept
//     (first seen, last seen, or the most balanced);
//   - CLIP: Dutt–Deng cluster-oriented iterative improvement — moves keyed
//     by cumulative delta gain, all starting in the zero bucket;
//   - CorkGuard: the paper's fix for CLIP "corking" — cells whose area
//     exceeds the balance slack are never inserted into the gain container
//     (benefits all FM variants, essentially zero overhead);
//   - LookPastIllegal: scan beyond an illegal bucket head (the paper finds
//     this too slow and harmful; provided for the ablation bench).
package core

import "fmt"

// UpdatePolicy controls handling of zero-delta gain updates (§2.2 of the
// paper, the "All∆gain" vs "Nonzero" rows of Table 1).
type UpdatePolicy int

const (
	// AllDeltaGain reinserts a vertex into its gain bucket even when the
	// delta gain of an update is zero, shifting its position within the
	// bucket. A straightforward implementation of the FM gain update does
	// exactly this.
	AllDeltaGain UpdatePolicy = iota
	// NonzeroOnly skips the update when the delta gain is zero, leaving the
	// vertex's position unchanged. The original FM gain-update method has
	// this behaviour as a (netcut- and 2-way-specific) side effect.
	NonzeroOnly
)

func (u UpdatePolicy) String() string {
	switch u {
	case AllDeltaGain:
		return "AllDeltaGain"
	case NonzeroOnly:
		return "Nonzero"
	}
	return "Update(?)"
}

// Bias resolves ties when the head moves of both sides' highest gain
// buckets have equal gain and both are legal (§2.2, the "Bias" column of
// Table 1).
type Bias int

const (
	// Away chooses the move that is NOT from the partition of the last
	// vertex moved.
	Away Bias = iota
	// Part0 always chooses the move from partition 0.
	Part0
	// Toward chooses the move from the same partition as the last vertex
	// moved.
	Toward
)

func (b Bias) String() string {
	switch b {
	case Away:
		return "Away"
	case Part0:
		return "Part0"
	case Toward:
		return "Toward"
	}
	return "Bias(?)"
}

// BestTie selects among equal-cut best solutions seen during a pass (§2.2:
// "choose the first such solution, the last such solution, or the one that
// is furthest from violating balance constraints").
type BestTie int

const (
	// FirstBest keeps the earliest prefix achieving the best cut.
	FirstBest BestTie = iota
	// LastBest keeps the latest prefix achieving the best cut.
	LastBest
	// MostBalanced keeps, among equal-cut prefixes, the one with the
	// smallest side-area difference.
	MostBalanced
)

func (b BestTie) String() string {
	switch b {
	case FirstBest:
		return "First"
	case LastBest:
		return "Last"
	case MostBalanced:
		return "Balance"
	}
	return "BestTie(?)"
}

// InsertionOrder mirrors gain.Order without importing it into every caller.
type InsertionOrder int

const (
	LIFO InsertionOrder = iota
	FIFO
	RandomOrder
)

func (o InsertionOrder) String() string {
	switch o {
	case LIFO:
		return "LIFO"
	case FIFO:
		return "FIFO"
	case RandomOrder:
		return "Random"
	}
	return "Insertion(?)"
}

// Config fully describes an FM variant. The zero value is a plain flat
// LIFO FM with AllDeltaGain updates, Away bias and no corking guard —
// i.e. a faithful "straightforward implementation".
type Config struct {
	// CLIP selects the Dutt–Deng CLIP variant: the gain container is keyed
	// by cumulative delta gain and every movable vertex starts in the zero
	// bucket at the beginning of each pass.
	CLIP bool

	Update    UpdatePolicy
	Bias      Bias
	Insertion InsertionOrder
	BestTie   BestTie

	// CorkGuard, when set, excludes from the gain container any vertex whose
	// weight exceeds the balance slack (Balance.Hi - Balance.Lo): such a
	// vertex can never move legally while the partition is feasible, and at
	// the head of a CLIP zero bucket it "corks" the whole pass.
	CorkGuard bool

	// LookPastIllegal scans the remainder of a bucket when its head move is
	// illegal instead of skipping the side. The paper reports this is
	// time-consuming and appears harmful; kept for the ablation bench.
	LookPastIllegal bool

	// SkipBucketOnly resolves the other reading of the paper's selection
	// rule ("the entire bucket (or perhaps even every bucket for that
	// partition) is skipped"): when a bucket's head move is illegal, descend
	// to the next lower bucket's head instead of disqualifying the whole
	// side. Mutually composable with CorkGuard; ignored when
	// LookPastIllegal is set.
	SkipBucketOnly bool

	// MaxPasses caps the number of passes; 0 means iterate until a pass
	// yields no improvement.
	MaxPasses int

	// LookaheadDepth enables Krishnamurthy higher-order gains: values >= 2
	// break ties inside the head gain bucket by the level-2..depth gain
	// vector (lexicographically). 0 and 1 mean plain FM selection.
	LookaheadDepth int
	// LookaheadScanLimit caps how many head-bucket entries the lookahead
	// selection examines per side per move (default 32 when lookahead is
	// enabled).
	LookaheadScanLimit int

	// BoundaryOnly restricts each pass to boundary vertices (pins of cut
	// nets): only they enter the gain container at pass start, and vertices
	// are added lazily when a move cuts one of their nets. This is the
	// standard multilevel-refinement speedup — during uncoarsening the
	// projected solution is already good and interior vertices almost never
	// move. Quality on cold starts is worse; use it as the MLConfig.Refine
	// engine, not as a flat partitioner.
	BoundaryOnly bool

	// ReferenceImpl runs the frozen seed implementation of the pass loop
	// (reference.go) on the legacy gain container instead of the optimized
	// hot path. The two paths are bit-identical by construction — same move
	// sequence, cut, work count and cork trace for any seed — which the
	// differential test layer enforces; the reference path simply allocates
	// and recomputes the straightforward way. cmd/hgbench times both to
	// report the speedup; it is not a knob the paper's tables vary, so
	// Config.String() deliberately omits it (reports must be byte-identical
	// across implementations). Incompatible with LookaheadDepth >= 2 and
	// BoundaryOnly, which postdate the seed.
	ReferenceImpl bool

	// CheckInvariants enables debug mode: after every pass the engine
	// cross-checks the incremental partition state (cut, per-net side counts,
	// areas) against a from-scratch recomputation and verifies the gain
	// container's linked-list structure. A disagreement panics with an
	// *InvariantViolation, which the evaluation harness recovers into a
	// failed start — silent corruption becomes a recorded error instead of a
	// wrong number in a table. Adds O(pins) per pass; leave off in
	// production sweeps.
	CheckInvariants bool
}

// String renders the configuration compactly, e.g.
// "CLIP/Nonzero/Toward/LIFO/guarded".
func (c Config) String() string {
	engine := "FM"
	if c.CLIP {
		engine = "CLIP"
	}
	guard := "unguarded"
	if c.CorkGuard {
		guard = "guarded"
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s", engine, c.Update, c.Bias, c.Insertion, guard)
}

// NaiveConfig is the deliberately weak testbench standing in for the
// "Reported" rows of Tables 2 and 3: a straightforward implementation that
// resolves every implicit decision the convenient-but-poor way — zero-delta
// churn, fixed Part0 bias, no corking guard, and a single pass. Bucket
// insertion stays LIFO so the configuration remains a "LIFO FM"/"CLIP FM"
// in the paper's sense; the FIFO/Random orders are studied separately in
// the insertion-order ablation bench.
func NaiveConfig(clip bool) Config {
	return Config{
		CLIP:      clip,
		Update:    AllDeltaGain,
		Bias:      Part0,
		Insertion: LIFO,
		BestTie:   FirstBest,
		CorkGuard: false,
		MaxPasses: 1,
	}
}

// StrongConfig is the tuned testbench standing in for the paper's "Our"
// rows: LIFO insertion, Nonzero updates, Toward bias, corking guard, passes
// until convergence.
func StrongConfig(clip bool) Config {
	return Config{
		CLIP:      clip,
		Update:    NonzeroOnly,
		Bias:      Toward,
		Insertion: LIFO,
		BestTie:   MostBalanced,
		CorkGuard: true,
		MaxPasses: 0,
	}
}
