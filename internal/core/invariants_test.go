package core

import (
	"errors"
	"strings"
	"testing"

	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func TestVerifyPartitionStateHealthy(t *testing.T) {
	h := randomGraph(1, 100, 150, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p := prepared(h, bal, 2)
	if err := VerifyPartitionState(p); err != nil {
		t.Fatalf("fresh balanced partition flagged: %v", err)
	}
	// Moves maintain all incremental state; checks must stay quiet.
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		p.Move(int32(r.Intn(h.NumVertices())))
	}
	if err := VerifyPartitionState(p); err != nil {
		t.Fatalf("after random moves: %v", err)
	}
}

func TestVerifyPartitionReportsBalance(t *testing.T) {
	h := randomGraph(4, 60, 90, 3)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p := partition.New(h) // everything on side 0: consistent but illegal
	if err := VerifyPartitionState(p); err != nil {
		t.Fatalf("state check should pass on an unbalanced partition: %v", err)
	}
	err := VerifyPartition(p, bal)
	var iv *InvariantViolation
	if !errors.As(err, &iv) || iv.Kind != "balance" {
		t.Fatalf("want balance violation, got %v", err)
	}
	if !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("error message lacks context: %v", err)
	}
	p.RandomBalanced(rng.New(5), bal)
	if err := VerifyPartition(p, bal); err != nil {
		t.Fatalf("legal partition flagged: %v", err)
	}
}

// Debug mode must be a pure observer: same cuts, same work, no panics on a
// healthy engine, across the full config grid.
func TestCheckInvariantsIsTransparent(t *testing.T) {
	h := randomGraph(8, 120, 180, 4)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	for i, cfg := range allConfigs() {
		run := func(check bool) Result {
			c := cfg
			c.CheckInvariants = check
			p := prepared(h, bal, uint64(i+40))
			return NewEngine(h, c, bal, rng.New(uint64(i))).Run(p)
		}
		plain, checked := run(false), run(true)
		if plain.Cut != checked.Cut || plain.Work != checked.Work || plain.Moves != checked.Moves {
			t.Fatalf("cfg %v: debug mode changed the run: %+v vs %+v", cfg, plain, checked)
		}
	}
}
