package core

// Krishnamurthy lookahead gains ("An Improved Min-cut Algorithm for
// Partitioning VLSI Networks", IEEE ToC 1984 — reference [30] of the
// paper). Plain FM breaks ties among equal-gain moves arbitrarily (which is
// precisely why the insertion-order and bias decisions of Table 1 matter);
// Krishnamurthy breaks them by higher-order gains: the level-n gain of a
// move counts nets that would become uncritical (or critical) after n-1
// further moves, computed from the free/locked pin counts of each net.
//
// This implementation keeps the gain container keyed by the level-1 gain
// and applies the lookahead vector lexicographically *within the head
// bucket* at selection time, scanning at most LookaheadScanLimit entries —
// a standard engineering variant that preserves the tie-breaking semantics
// without multi-key bucket structures. Enable with Config.LookaheadDepth
// >= 2.

import (
	"hgpart/internal/partition"
)

// The mid-pass helpers here read the engine's partition mirror (e.side,
// e.cnt, e.area) rather than p: during an optimized pass the mirror is the
// source of truth. p appears only where fixed-vertex flags are needed.

// gainLevels computes v's Krishnamurthy gain vector levels 2..depth (level
// 1 is the container key and equal for all candidates in a bucket). The
// level-n entry sums, over incident nets:
//
//	+w if the net has no locked pins on v's side and exactly n-1 other
//	    free pins there (n-1 more moves make it uncritical on that side);
//	-w if the net has no locked pins on the destination side and exactly
//	    n-1 free pins there (n-1 more moves make it critical).
func (e *Engine) gainLevels(v int32, depth int, out []int64) []int64 {
	out = out[:0]
	for n := 2; n <= depth; n++ {
		out = append(out, 0)
	}
	src := e.side[v]
	dst := 1 - src
	for _, edge := range e.h.IncidentEdges(v) {
		w := e.h.EdgeWeight(edge)
		lockSrc := e.immobile[edge][src]
		lockDst := e.immobile[edge][dst]
		if lockSrc == 0 {
			freeSrcOthers := int(e.cnt[edge][src]) - 1
			lvl := freeSrcOthers + 1
			if lvl >= 2 && lvl <= depth {
				out[lvl-2] += w
			}
		}
		if lockDst == 0 {
			freeDst := int(e.cnt[edge][dst])
			lvl := freeDst + 1
			if lvl >= 2 && lvl <= depth {
				out[lvl-2] -= w
			}
		}
	}
	return out
}

// lexLess reports whether a < b lexicographically (equal-length vectors).
func lexLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// lookaheadHead returns the best legal candidate from side s's top bucket
// under lookahead ordering: among the first LookaheadScanLimit entries of
// the bucket, the legal move with the lexicographically largest gain vector
// (all entries share the level-1 gain by construction).
func (e *Engine) lookaheadHead(s uint8) (int32, int64, bool) {
	_, key, ok := e.cont.Head(s)
	if !ok {
		return 0, 0, false
	}
	depth := e.cfg.LookaheadDepth
	limit := e.cfg.LookaheadScanLimit
	if limit <= 0 {
		limit = 32
	}

	var best int32 = -1
	var bestVec []int64
	scanned := 0
	e.cont.WalkBucket(s, key, func(u int32) bool {
		scanned++
		e.work++
		if e.mirrorMoveLegal(u) {
			vec := e.gainLevels(u, depth, e.lookBuf)
			e.lookBuf = vec // retain capacity across calls
			if best == -1 || lexLess(bestVec, vec) {
				best = u
				// Copy: lookBuf is reused on the next candidate.
				bestVec = append(bestVec[:0], vec...)
			}
		}
		return scanned < limit
	})
	if best == -1 {
		// Head bucket has no legal move within the scan window: the side is
		// skipped, matching the base engine's head-only discipline.
		e.corks++
		return 0, 0, false
	}
	return best, key, true
}

// resetImmobile clears per-net locked-pin counts at the start of a pass and
// charges vertices that are out of play from the outset (fixed vertices and
// cork-guarded heavy cells).
func (e *Engine) resetImmobile(p *partition.P) {
	if cap(e.immobile) < e.h.NumEdges() {
		e.immobile = make([][2]int32, e.h.NumEdges())
	} else {
		e.immobile = e.immobile[:e.h.NumEdges()]
		clear(e.immobile)
	}
	slack := e.bal.Slack()
	for v := 0; v < e.h.NumVertices(); v++ {
		vv := int32(v)
		excluded := p.IsFixed(vv) || (e.cfg.CorkGuard && e.h.VertexWeight(vv) > slack)
		if excluded {
			e.chargeImmobile(vv)
		}
	}
}

// chargeImmobile marks v's pins as locked on v's current (mirror) side.
func (e *Engine) chargeImmobile(v int32) {
	s := e.side[v]
	for _, edge := range e.h.IncidentEdges(v) {
		e.immobile[edge][s]++
	}
}
