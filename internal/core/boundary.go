package core

import "hgpart/internal/partition"

// Boundary-only refinement support (Config.BoundaryOnly). These helpers run
// mid-pass and therefore read the engine's partition mirror — the source of
// truth while a pass is in flight; p supplies only the fixed-vertex flags,
// which never change during a pass.

// isBoundary reports whether v is incident to at least one cut net.
//
//hglint:hotpath
func (e *Engine) isBoundary(v int32) bool {
	for _, edge := range e.h.IncidentEdges(v) {
		c := e.cnt[edge]
		if c[0] > 0 && c[1] > 0 {
			return true
		}
	}
	return false
}

// insertNewBoundary is called immediately after moving v: any net of v that
// this move just cut (its destination-side pin count went 0 -> 1) has pins
// that were interior a moment ago; eligible absent pins enter the container
// at their full current gain (or at zero under CLIP, matching the CLIP
// convention that container keys are cumulative deltas since insertion).
//
//hglint:hotpath
func (e *Engine) insertNewBoundary(p *partition.P, v int32, slack int64) {
	to := e.side[v] // already moved
	for _, edge := range e.h.IncidentEdges(v) {
		if e.cnt[edge][to] != 1 || e.h.EdgeSize(edge) < 2 {
			continue // this net did not just become cut
		}
		for _, y := range e.h.Pins(edge) {
			if y == v || e.locked[y] || e.cont.Contains(y) || p.IsFixed(y) {
				continue
			}
			if e.cfg.CorkGuard && e.h.VertexWeight(y) > slack {
				continue
			}
			if e.cfg.CLIP {
				e.cont.Insert(y, e.side[y], 0)
			} else {
				e.cont.Insert(y, e.side[y], e.mirrorGain(y))
			}
		}
	}
}
