package eval

import (
	"context"
	"testing"
	"time"

	"hgpart/internal/rng"
)

// stuckHeuristic cancels the run on entry and then wedges until released —
// the shape of a start that never returns, which Go offers no way to kill.
type stuckHeuristic struct {
	stubHeuristic
	cancel  context.CancelFunc
	release <-chan struct{}
}

func (s stuckHeuristic) Run(r *rng.RNG) Outcome {
	s.cancel()
	<-s.release
	return s.stubHeuristic.Run(r)
}

// A cancelled run with an AbandonGrace must return within the grace even
// when an in-flight start is wedged forever, reporting the stragglers as
// skipped and the run as abandoned. This is what lets a service watchdog
// reclaim a stuck job instead of deadlocking behind it.
func TestHarnessAbandonGraceReclaimsStuckRun(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // let the wedged goroutine drain
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	factory := func() Heuristic { return stuckHeuristic{cancel: cancel, release: release} }

	done := make(chan *RunReport, 1)
	go func() {
		done <- RunMultistart(ctx, factory, 3, 5,
			RunOptions{Workers: 1, AbandonGrace: 20 * time.Millisecond})
	}()
	var rep *RunReport
	select {
	case rep = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not abandon its stuck start")
	}
	if !rep.Abandoned || !rep.Incomplete || rep.Reason != "cancelled" {
		t.Fatalf("want an abandoned, cancelled report, got %+v", rep)
	}
	if rep.Completed != 0 || rep.Skipped != 3 {
		t.Fatalf("abandoned starts must count as skipped: ok=%d skipped=%d", rep.Completed, rep.Skipped)
	}
}
