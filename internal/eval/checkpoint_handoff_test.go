package eval

// Cross-process journal handoff: the cluster failover path (DESIGN.md §12)
// depends on a journal written by one process being recoverable by a
// *different* process with a different worker count, yielding the same
// resumed-start set and the same final statistics. These tests simulate the
// handoff in-process by re-opening the journal with fresh Checkpoint
// instances — exactly what a survivor worker does with a dead sibling's
// journal in the shared checkpoint directory.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// handoffHeuristic wraps stubHeuristic and cancels the run's context once a
// fixed number of starts have completed, simulating a process dying mid-job.
// Name and outcomes are identical to stubHeuristic so the journal header and
// per-start cuts match across the handoff.
type handoffHeuristic struct {
	runs   *atomic.Int64
	limit  int64
	cancel context.CancelFunc
}

func (handoffHeuristic) Name() string { return "stub" }
func (h handoffHeuristic) Run(r *rng.RNG) Outcome {
	out := stubHeuristic{}.Run(r)
	if h.runs.Add(1) == h.limit {
		h.cancel()
	}
	return out
}
func (handoffHeuristic) PolishBest(*partition.P, *rng.RNG) Outcome { return Outcome{} }

// A journal written by a single-worker process that died mid-job is resumed
// by a different "process" (a fresh Checkpoint) running three workers: the
// resumed-start set must be exactly the set the first process completed, and
// the finished report must be statistically identical to an uninterrupted
// run at yet another worker count.
func TestJournalV2CrossProcessHandoff(t *testing.T) {
	const n, seed = 12, 77
	path := filepath.Join(t.TempDir(), "job.jsonl")

	want := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 2})
	if want.Completed != n {
		t.Fatalf("reference run: %+v", want)
	}

	// Process A: one worker, dies (ctx cancelled) after 5 completed starts.
	cpA, err := OpenCheckpoint(path, "stub", seed, n, false)
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	var runs atomic.Int64
	factoryA := func() Heuristic {
		return handoffHeuristic{runs: &runs, limit: 5, cancel: cancelA}
	}
	repA := RunMultistart(ctxA, factoryA, n, seed, RunOptions{Workers: 1, Checkpoint: cpA})
	if err := cpA.Close(); err != nil {
		t.Fatal(err)
	}
	if !repA.Incomplete || repA.Completed == 0 || repA.Completed >= n {
		t.Fatalf("process A should die partway through: %+v", repA)
	}
	doneA := make(map[int]int64) // start → cut, as process A computed it
	for _, sr := range repA.Results {
		if sr.Status == StartOK {
			doneA[sr.Start] = sr.Outcome.Cut
		}
	}

	// Process B: different worker count, same journal. The resumed set must
	// be exactly what A durably completed — no more, no fewer.
	cpB, err := OpenCheckpoint(path, "stub", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	if cpB.Resumed() != len(doneA) {
		t.Fatalf("process B resumed %d starts, process A completed %d", cpB.Resumed(), len(doneA))
	}
	for i := 0; i < n; i++ {
		sr, ok := cpB.Completed(i)
		if wantCut, done := doneA[i]; done {
			if !ok || sr.Outcome.Cut != wantCut {
				t.Fatalf("start %d: process B sees (ok=%v cut=%d), process A computed cut=%d",
					i, ok, sr.Outcome.Cut, wantCut)
			}
		} else if ok {
			t.Fatalf("start %d resumed by process B but never completed by process A", i)
		}
	}
	if qs := cpB.Quarantined(); len(qs) != 0 {
		t.Fatalf("clean handoff must not quarantine anything: %+v", qs)
	}
	repB := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 3, Checkpoint: cpB})
	if err := cpB.Close(); err != nil {
		t.Fatal(err)
	}
	if repB.Incomplete || repB.Completed != n || repB.Resumed != len(doneA) {
		t.Fatalf("process B recovery run: %+v", repB)
	}
	if a, b := want.Summary(), repB.Summary(); a != b {
		t.Fatalf("statistics diverge across the handoff:\n%s\n%s", a, b)
	}
}

// Quarantine behavior must also be process-independent: two fresh recoveries
// of the same corrupted journal (as two different survivors would perform)
// report identical quarantine sets and lost starts, and the run completed at
// yet another worker count still matches the uninterrupted statistics.
func TestJournalV2HandoffQuarantineIsDeterministic(t *testing.T) {
	const n, seed = 8, 101
	path := filepath.Join(t.TempDir(), "job.jsonl")

	want := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 2})

	cp, err := OpenCheckpoint(path, "stub", seed, n, false)
	if err != nil {
		t.Fatal(err)
	}
	full := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 2, Checkpoint: cp})
	if full.Completed != n || full.JournalErr != nil {
		t.Fatalf("baseline checkpointed run: %+v", full)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt start 3's record: flip a digit of the cut so the frame length
	// still matches but the CRC does not.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	target := -1
	for i, l := range lines {
		if bytes.Contains(l, []byte(`"start":3`)) {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatalf("no record for start 3 in journal:\n%s", raw)
	}
	cut := bytes.Index(lines[target], []byte(`"cut":`))
	if cut < 0 {
		t.Fatalf("record has no cut field: %q", lines[target])
	}
	digit := lines[target][cut+len(`"cut":`)]
	lines[target][cut+len(`"cut":`)] = '1' + (digit-'0'+1)%9
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Two independent recoveries — what two different surviving workers
	// would each compute from the same bytes.
	type view struct {
		resumed int
		lost    []int
		reasons []string
	}
	recover := func() (*Checkpoint, view) {
		c, err := OpenCheckpoint(path, "stub", seed, n, true)
		if err != nil {
			t.Fatal(err)
		}
		v := view{resumed: c.Resumed(), lost: c.LostStarts()}
		for _, q := range c.Quarantined() {
			v.reasons = append(v.reasons, q.Reason)
		}
		return c, v
	}
	c1, v1 := recover()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2, v2 := recover()
	if v1.resumed != v2.resumed || len(v1.lost) != len(v2.lost) || len(v1.reasons) != len(v2.reasons) {
		t.Fatalf("recovery views diverge: %+v vs %+v", v1, v2)
	}
	for i := range v1.lost {
		if v1.lost[i] != v2.lost[i] || v1.reasons[i] != v2.reasons[i] {
			t.Fatalf("recovery views diverge: %+v vs %+v", v1, v2)
		}
	}
	if v2.resumed != n-1 || len(v2.lost) != 1 || v2.lost[0] != 3 ||
		!strings.Contains(v2.reasons[0], "crc mismatch") {
		t.Fatalf("recovery view %+v, want n-1 resumed and start 3 lost to a crc mismatch", v2)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("quarantine sidecar not written: %v", err)
	}

	// The second survivor finishes the job at a fifth worker count; only the
	// quarantined start re-runs and the statistics still match.
	rep := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 5, Checkpoint: c2})
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete || rep.Completed != n || rep.Resumed != n-1 {
		t.Fatalf("final recovery run: %+v", rep)
	}
	if a, b := want.Summary(), rep.Summary(); a != b {
		t.Fatalf("statistics diverge after quarantine recovery:\n%s\n%s", a, b)
	}
}
