package eval

import (
	"context"
	"math"
	"sort"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Multistart regimes beyond fixed start counts, per §3.2 of the paper:
//
//   - BestWithinBudget models the realistic use regime ("practical runtime
//     budgets are very tight... realistic runtime regimes support at most a
//     few starts"): keep starting until a CPU budget is exhausted.
//   - PrunedMultistart implements the early-termination regime ("pruning
//     (early termination of starts that appear unpromising relative to
//     previous starts) can be applied") for flat engines, which is one of
//     the reasons the paper insists CPU time — not the number of starts —
//     must be the axis of comparison.

// BestWithinBudget runs starts of h until the cumulative normalized CPU
// (work units / WorkUnitsPerSecond) reaches budgetNormSeconds, keeping the
// best legal outcome. At least one start always runs; a cancelled ctx (nil
// means Background) stops the sweep between starts. Returns the best
// outcome, the number of starts performed and the total normalized seconds
// actually spent.
func BestWithinBudget(ctx context.Context, h Heuristic, budgetNormSeconds float64, r *rng.RNG) (Outcome, int, float64) {
	if ctx == nil {
		ctx = context.Background()
	}
	var best Outcome
	starts := 0
	var spent float64
	for {
		o := h.Run(r.Split())
		starts++
		spent += o.NormalizedSeconds()
		if best.P == nil || o.Cut < best.Cut {
			best = o
		}
		if spent >= budgetNormSeconds || ctx.Err() != nil {
			break
		}
	}
	polish := h.PolishBest(best.P, r.Split())
	if polish.P != nil {
		spent += float64(polish.Work) / WorkUnitsPerSecond
		best.Cut = polish.Cut
	}
	return best, starts, spent
}

// PrunedMultistart runs n starts of a flat engine configuration, abandoning
// a start whose cut after `afterPass` passes exceeds pruneFactor times the
// best final cut seen so far. It returns the best outcome, the per-start
// results and how many starts were pruned. The first start always runs to
// completion (there is no reference yet). A cancelled ctx (nil means
// Background) stops the sweep between starts.
func PrunedMultistart(ctx context.Context, h *hypergraph.Hypergraph, cfg core.Config, bal partition.Balance,
	n int, afterPass int, pruneFactor float64, r *rng.RNG) (best Outcome, cuts []int64, pruned int) {
	if ctx == nil {
		ctx = context.Background()
	}
	if afterPass < 1 {
		afterPass = 1
	}
	if pruneFactor <= 1 {
		pruneFactor = 1.5
	}
	eng := core.NewEngine(h, cfg, bal, r.Split())
	bestCut := int64(math.MaxInt64)
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		p := partition.New(h)
		p.RandomBalanced(r.Split(), bal)
		var keep func(int, int64) bool
		if bestCut != int64(math.MaxInt64) {
			threshold := int64(float64(bestCut) * pruneFactor)
			keep = func(pass int, cut int64) bool {
				return pass < afterPass || cut <= threshold
			}
		}
		res := eng.RunPruned(p, keep)
		cuts = append(cuts, res.Cut)
		if res.Pruned {
			pruned++
			continue
		}
		if res.Cut < bestCut {
			bestCut = res.Cut
			best = Outcome{P: p, Cut: res.Cut, Work: res.Work}
		}
	}
	return best, cuts, pruned
}

// CutDistribution summarizes the empirical distribution of single-start
// cuts: sorted values plus selected quantiles — the "standard deviations
// and other descriptors" the paper says a flexible presentation medium
// should carry alongside min/average.
type CutDistribution struct {
	Sorted   []float64
	Mean     float64
	StdDev   float64
	Quantile map[int]float64 // keys 5, 25, 50, 75, 95
}

// NewCutDistribution builds the distribution from outcomes.
func NewCutDistribution(samples []Outcome) CutDistribution {
	d := CutDistribution{Quantile: map[int]float64{}}
	if len(samples) == 0 {
		return d
	}
	for _, s := range samples {
		d.Sorted = append(d.Sorted, float64(s.Cut))
	}
	sort.Float64s(d.Sorted)
	for _, x := range d.Sorted {
		d.Mean += x
	}
	d.Mean /= float64(len(d.Sorted))
	if len(d.Sorted) > 1 {
		var ss float64
		for _, x := range d.Sorted {
			ss += (x - d.Mean) * (x - d.Mean)
		}
		d.StdDev = math.Sqrt(ss / float64(len(d.Sorted)-1))
	}
	for _, q := range []int{5, 25, 50, 75, 95} {
		d.Quantile[q] = quantileSorted(d.Sorted, float64(q)/100)
	}
	return d
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	f := pos - float64(lo)
	return sorted[lo]*(1-f) + sorted[hi]*f
}

// ProbBest estimates, from single-start samples, the probability that
// heuristic A's best-of-kA beats heuristic B's best-of-kB (strictly lower
// cut), where kA and kB are the start counts fitting a common budget tau.
// This is the Schreiber-Martin c_tau comparison: rank heuristics by the
// distribution of the best cost achieved in time tau. Estimation is by
// direct convolution of the empirical order-statistic distributions.
func ProbBest(a, b []Outcome, tau float64, useNormalized bool) float64 {
	ka := startsWithin(a, tau, useNormalized)
	kb := startsWithin(b, tau, useNormalized)
	if ka == 0 && kb == 0 {
		return 0.5 // neither finishes a start: tie
	}
	if ka == 0 {
		return 0
	}
	if kb == 0 {
		return 1
	}
	ca := sortedCuts(a)
	cb := sortedCuts(b)
	// P(minA < minB) = sum over distinct values v of
	// P(minA = v) * P(minB > v).
	var prob float64
	for i := range ca {
		if i > 0 && ca[i] == ca[i-1] {
			continue
		}
		pEq := probMinEquals(ca, i, ka)
		pGt := probMinGreater(cb, ca[i], kb)
		prob += pEq * pGt
	}
	return prob
}

func startsWithin(samples []Outcome, tau float64, useNormalized bool) int {
	if len(samples) == 0 {
		return 0
	}
	var mean float64
	for _, s := range samples {
		if useNormalized {
			mean += s.NormalizedSeconds()
		} else {
			mean += s.Seconds
		}
	}
	mean /= float64(len(samples))
	if mean <= 0 {
		return 1
	}
	return int(tau / mean)
}

func sortedCuts(samples []Outcome) []float64 {
	cuts := make([]float64, len(samples))
	for i, s := range samples {
		cuts[i] = float64(s.Cut)
	}
	sort.Float64s(cuts)
	return cuts
}

// probMinEquals returns P(min of k draws == sorted[i]) where i is the first
// index of its value run.
func probMinEquals(sorted []float64, i int, k int) float64 {
	n := float64(len(sorted))
	v := sorted[i]
	// count of values >= v and > v
	ge := float64(len(sorted) - i)
	gt := 0.0
	for j := len(sorted) - 1; j >= 0; j-- {
		if sorted[j] > v {
			gt++
		} else {
			break
		}
	}
	return math.Pow(ge/n, float64(k)) - math.Pow(gt/n, float64(k))
}

// probMinGreater returns P(min of k draws > v).
func probMinGreater(sorted []float64, v float64, k int) float64 {
	n := float64(len(sorted))
	gt := 0.0
	for j := len(sorted) - 1; j >= 0; j-- {
		if sorted[j] > v {
			gt++
		} else {
			break
		}
	}
	return math.Pow(gt/n, float64(k))
}
