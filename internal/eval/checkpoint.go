package eval

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Checkpoint journals completed starts to a JSONL file so an interrupted
// multistart experiment resumes exactly where it stopped: a killed 1000-start
// sweep loses only the starts in flight, and the resumed run reproduces the
// uninterrupted run's aggregate statistics because each start's outcome is a
// pure function of its pre-split seed.
//
// File layout: a header line identifying the experiment (heuristic name,
// root seed, start count) followed by one record per completed start, in
// completion order:
//
//	{"kind":"header","name":"ML","seed":1999,"n":100}
//	{"kind":"start","start":3,"status":"ok","cut":412,"seconds":0.8,"work":1693412,"attempts":1}
//	{"kind":"start","start":0,"status":"failed","attempts":3,"err":"..."}
//
// Writes are crash-safe: a fresh journal's header is written to a temporary
// file, fsynced and atomically renamed into place (so the journal either
// exists with a valid header or not at all — a crash during creation can
// never leave a truncated half-header a later resume would misread), and
// every record is flushed and fsynced before the harness moves on, so a
// drained or killed run can lose at most the final, partially written line,
// which resume detects and drops. Resuming under a different name, seed or
// start count is refused — a journal replayed into the wrong experiment
// would silently fabricate statistics.
type Checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	done map[int]StartResult
	err  error
}

type checkpointHeader struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	N    int    `json:"n"`
}

type startRecord struct {
	Kind     string  `json:"kind"`
	Start    int     `json:"start"`
	Status   string  `json:"status"`
	Cut      int64   `json:"cut,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
	Work     int64   `json:"work,omitempty"`
	Attempts int     `json:"attempts"`
	Err      string  `json:"err,omitempty"`
}

// OpenCheckpoint opens (or creates) the journal at path for an experiment
// identified by (name, seed, n). With resume set, an existing journal with a
// matching header is loaded and its completed starts will be skipped by
// RunMultistart; a header mismatch is an error. Without resume, any existing
// journal is truncated and a fresh header written.
func OpenCheckpoint(path, name string, seed uint64, n int, resume bool) (*Checkpoint, error) {
	cp := &Checkpoint{done: make(map[int]StartResult)}
	if resume {
		if err := cp.load(path, name, seed, n); err != nil {
			return nil, err
		}
	}
	fresh := !(len(cp.done) > 0 || resume && fileHasHeader(path))
	if fresh {
		hdr := checkpointHeader{Kind: "header", Name: name, Seed: seed, N: n}
		if err := createJournal(path, hdr); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eval: open checkpoint: %w", err)
	}
	cp.f = f
	cp.w = bufio.NewWriter(f)
	return cp, nil
}

// createJournal writes a journal containing only the header to a temporary
// sibling file, fsyncs it, and atomically renames it over path, then fsyncs
// the directory so the rename itself is durable. A crash anywhere in the
// sequence leaves either the old path (or no file) or a complete new
// journal — never a torn header.
func createJournal(path string, hdr checkpointHeader) error {
	b, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("eval: encode checkpoint header: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("eval: create checkpoint: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("eval: write checkpoint header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("eval: sync checkpoint header: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("eval: close checkpoint header: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("eval: install checkpoint: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Errors are ignored: not every platform or filesystem supports
// directory fsync, and the rename itself has already succeeded.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// fileHasHeader reports whether path exists and starts with a header line —
// i.e. appending records to it is meaningful.
func fileHasHeader(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return false
	}
	var hdr checkpointHeader
	return json.Unmarshal(sc.Bytes(), &hdr) == nil && hdr.Kind == "header"
}

// load reads an existing journal, validating the header against the
// experiment identity and collecting completed starts. A missing file is not
// an error (resume of a run that never started is a fresh run); a trailing
// torn line is dropped.
func (c *Checkpoint) load(path, name string, seed uint64, n int) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("eval: open checkpoint for resume: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil // empty file: fresh run
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Kind != "header" {
		return fmt.Errorf("eval: checkpoint %s has no valid header line", path)
	}
	if hdr.Name != name || hdr.Seed != seed || hdr.N != n {
		return fmt.Errorf("eval: checkpoint %s belongs to experiment (name=%q seed=%d n=%d), not (name=%q seed=%d n=%d)",
			path, hdr.Name, hdr.Seed, hdr.N, name, seed, n)
	}
	for sc.Scan() {
		var rec startRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			break // torn final line from a crash: drop it and everything after
		}
		if rec.Kind != "start" || rec.Start < 0 || rec.Start >= n {
			continue
		}
		sr := StartResult{
			Start:    rec.Start,
			Resumed:  true,
			Attempts: rec.Attempts,
			Outcome:  Outcome{Cut: rec.Cut, Seconds: rec.Seconds, Work: rec.Work},
		}
		switch rec.Status {
		case "ok":
			sr.Status = StartOK
		case "failed":
			sr.Status = StartFailed
			sr.Err = errors.New(rec.Err)
		default:
			continue
		}
		c.done[rec.Start] = sr
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return fmt.Errorf("eval: read checkpoint: %w", err)
	}
	return nil
}

// Completed returns the journaled result for start i, if any.
func (c *Checkpoint) Completed(i int) (StartResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.done[i]
	return sr, ok
}

// Resumed returns how many starts were loaded from the journal.
func (c *Checkpoint) Resumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// record journals a completed or failed start. Skipped starts are not
// recorded — they have not happened. Errors are retained (see Err) rather
// than propagated so a full disk cannot destroy the in-memory results.
func (c *Checkpoint) record(sr StartResult) {
	if sr.Status == StartSkipped || sr.Resumed {
		return
	}
	rec := startRecord{
		Kind:     "start",
		Start:    sr.Start,
		Status:   sr.Status.String(),
		Cut:      sr.Outcome.Cut,
		Seconds:  sr.Outcome.Seconds,
		Work:     sr.Outcome.Work,
		Attempts: sr.Attempts,
	}
	if sr.Err != nil {
		rec.Err = sr.Err.Error()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeLine(rec); err != nil && c.err == nil {
		c.err = err
	}
}

// writeLine marshals v, writes it with a trailing newline, flushes and
// fsyncs, so every record is durable — not merely handed to the kernel —
// once the call returns. A start is worth seconds of CPU; one fsync per
// completed start is noise next to that, and it is what lets a drained
// hgserved promise the journal survives an immediately following power
// loss. Callers hold c.mu.
func (c *Checkpoint) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("eval: encode checkpoint record: %w", err)
	}
	if _, err := c.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("eval: write checkpoint record: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	return c.f.Sync()
}

// Err returns the first journaling error encountered, if any. A run whose
// checkpoint hit an error still returns complete in-memory results; callers
// should surface Err so the user knows the journal is not trustworthy for a
// future resume.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes and closes the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	ferr := c.w.Flush()
	cerr := c.f.Close()
	c.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
