package eval

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hgpart/internal/chaos"
)

// Checkpoint journals completed starts to a JSONL file so an interrupted
// multistart experiment resumes exactly where it stopped: a killed 1000-start
// sweep loses only the starts in flight, and the resumed run reproduces the
// uninterrupted run's aggregate statistics because each start's outcome is a
// pure function of its pre-split seed.
//
// File layout (journal v2): a plain-JSON header line identifying the
// experiment (format version, heuristic name, root seed, start count)
// followed by one framed record per completed start, in completion order:
//
//	{"kind":"header","v":2,"name":"ML","seed":1999,"n":100}
//	@97:1afc09e2:{"kind":"start","start":3,"status":"ok","cut":412,"seconds":0.8,"work":1693412,"attempts":1}
//	@58:77b0c428:{"kind":"start","start":0,"status":"failed","attempts":3,"err":"..."}
//
// Each record is framed as "@<len>:<crc32c>:<json>\n" — payload length in
// bytes and the CRC-32C (Castagnoli) of the payload. The frame turns "trust
// whatever parses" into "verify, then trust": a torn write, a flipped bit,
// or a partially recycled block fails the length or CRC check and the record
// is quarantined instead of silently misread. Resume reports exactly which
// records were damaged (see Quarantined and LostStarts); damaged starts are
// simply re-run from their pre-split seeds, so a corrupted journal degrades
// to recomputation, never to wrong statistics. Records that frame-check but
// are semantically invalid — start index out of [0,n), duplicate of an
// already-loaded start, unknown status — are quarantined too: a duplicate
// must not double-count and an out-of-range index must not write outside the
// results slice.
//
// Journals written before v2 framing (header without "v", bare JSON records)
// are still resumed transparently: the loader detects the version from the
// header and, on a v1 journal, keeps appending v1 records so the file stays
// self-consistent.
//
// Writes are crash-safe: a fresh journal's header is written to a temporary
// file, fsynced and atomically renamed into place (so the journal either
// exists with a valid header or not at all — a crash during creation can
// never leave a truncated half-header a later resume would misread), and
// every record is flushed and fsynced before the harness moves on, so a
// drained or killed run can lose at most the final, partially written line,
// which resume detects, quarantines and drops. Resuming under a different
// name, seed or start count is refused — a journal replayed into the wrong
// experiment would silently fabricate statistics.
//
// All I/O goes through a chaos.FS, so the crash-consistency claims above are
// not aspirational: internal/faultinject and cmd/hgchaos drive torn writes,
// ENOSPC, failed fsyncs and SIGKILL through the same code paths production
// uses (DESIGN.md §11).
type Checkpoint struct {
	mu   sync.Mutex
	fsys chaos.FS      // immutable after OpenCheckpointFS
	f    chaos.File    //hglint:guardedby mu
	w    *bufio.Writer //hglint:guardedby mu
	// version is the journal format being appended: 1 or 2.
	version int //hglint:guardedby mu
	// needNL means the file ends mid-line (torn tail); repair before appending.
	needNL      bool                //hglint:guardedby mu
	done        map[int]StartResult //hglint:guardedby mu
	quarantined []Quarantined       //hglint:guardedby mu
	err         error               //hglint:guardedby mu
}

// Quarantined describes one damaged or invalid journal record dropped during
// resume. Start is the record's start index when it could be recovered from
// the damaged bytes (best effort — the payload is still never trusted as a
// result), or -1 when it could not.
type Quarantined struct {
	Line   int    `json:"line"`
	Start  int    `json:"start"`
	Reason string `json:"reason"`
	Raw    string `json:"raw"`
}

type checkpointHeader struct {
	Kind string `json:"kind"`
	V    int    `json:"v,omitempty"`
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	N    int    `json:"n"`
}

type startRecord struct {
	Kind     string  `json:"kind"`
	Start    int     `json:"start"`
	Status   string  `json:"status"`
	Cut      int64   `json:"cut,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
	Work     int64   `json:"work,omitempty"`
	Attempts int     `json:"attempts"`
	Err      string  `json:"err,omitempty"`
}

// journalVersion is the format new journals are created with.
const journalVersion = 2

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameRecord wraps a marshaled record payload in the v2 length+CRC frame,
// newline included.
func frameRecord(payload []byte) []byte {
	crc := crc32.Checksum(payload, castagnoli)
	out := make([]byte, 0, len(payload)+16)
	out = append(out, fmt.Sprintf("@%d:%08x:", len(payload), crc)...)
	out = append(out, payload...)
	return append(out, '\n')
}

// parseFrame validates a v2 frame and returns its payload.
func parseFrame(line []byte) ([]byte, error) {
	if len(line) == 0 || line[0] != '@' {
		return nil, errors.New("missing frame marker")
	}
	rest := line[1:]
	i := bytes.IndexByte(rest, ':')
	if i < 1 {
		return nil, errors.New("missing length field")
	}
	var n int
	for _, ch := range rest[:i] {
		if ch < '0' || ch > '9' {
			return nil, errors.New("malformed length field")
		}
		n = n*10 + int(ch-'0')
		if n > 1<<30 {
			return nil, errors.New("implausible length field")
		}
	}
	rest = rest[i+1:]
	j := bytes.IndexByte(rest, ':')
	if j != 8 {
		return nil, errors.New("missing crc field")
	}
	var want uint32
	for _, ch := range rest[:8] {
		var d uint32
		switch {
		case ch >= '0' && ch <= '9':
			d = uint32(ch - '0')
		case ch >= 'a' && ch <= 'f':
			d = uint32(ch-'a') + 10
		default:
			return nil, errors.New("malformed crc field")
		}
		want = want<<4 | d
	}
	payload := rest[9:]
	if len(payload) != n {
		return nil, fmt.Errorf("length mismatch: frame says %d bytes, line has %d", n, len(payload))
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("crc mismatch: frame says %08x, payload is %08x", want, got)
	}
	return payload, nil
}

// OpenCheckpoint opens (or creates) the journal at path for an experiment
// identified by (name, seed, n), on the real filesystem. See OpenCheckpointFS.
func OpenCheckpoint(path, name string, seed uint64, n int, resume bool) (*Checkpoint, error) {
	return OpenCheckpointFS(chaos.OS(), path, name, seed, n, resume)
}

// OpenCheckpointFS is OpenCheckpoint over an explicit filesystem — the real
// one in production, a chaos.FaultFS under fault injection. With resume set,
// an existing journal with a matching header is loaded and its completed
// starts will be skipped by RunMultistart; a header mismatch is an error.
// Without resume, any existing journal is truncated and a fresh header
// written.
func OpenCheckpointFS(fsys chaos.FS, path, name string, seed uint64, n int, resume bool) (*Checkpoint, error) {
	cp := &Checkpoint{fsys: fsys, version: journalVersion, done: make(map[int]StartResult)}
	if resume {
		if err := cp.load(path, name, seed, n); err != nil {
			return nil, err
		}
	}
	fresh := !(len(cp.done) > 0 || resume && fileHasHeader(fsys, path))
	if fresh {
		hdr := checkpointHeader{Kind: "header", V: journalVersion, Name: name, Seed: seed, N: n}
		if err := createJournal(fsys, path, hdr); err != nil {
			return nil, err
		}
		cp.version = journalVersion
		cp.needNL = false
	}
	if len(cp.quarantined) > 0 {
		writeQuarantine(fsys, path, cp.quarantined)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eval: open checkpoint: %w", err)
	}
	cp.f = f
	cp.w = bufio.NewWriter(f)
	return cp, nil
}

// createJournal writes a journal containing only the header to a temporary
// sibling file, fsyncs it, and atomically renames it over path, then fsyncs
// the directory so the rename itself is durable. A crash anywhere in the
// sequence leaves either the old path (or no file) or a complete new
// journal — never a torn header.
func createJournal(fsys chaos.FS, path string, hdr checkpointHeader) error {
	b, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("eval: encode checkpoint header: %w", err)
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("eval: create checkpoint: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("eval: write checkpoint header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("eval: sync checkpoint header: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("eval: close checkpoint header: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("eval: install checkpoint: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Errors are ignored: not every platform or filesystem supports
// directory fsync, and the rename itself has already succeeded.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// fileHasHeader reports whether path exists and starts with a header line —
// i.e. appending records to it is meaningful.
func fileHasHeader(fsys chaos.FS, path string) bool {
	f, err := fsys.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return false
	}
	var hdr checkpointHeader
	return json.Unmarshal(sc.Bytes(), &hdr) == nil && hdr.Kind == "header"
}

// writeQuarantine dumps the quarantine report next to the journal, one JSON
// line per damaged record, truncating any previous report. Best effort: the
// report is diagnostic — the authoritative effect of quarantine is that the
// affected starts are re-run — so a failure to write it must not fail the
// resume.
func writeQuarantine(fsys chaos.FS, path string, qs []Quarantined) {
	f, err := fsys.OpenFile(path+".quarantine", os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	for _, q := range qs {
		b, err := json.Marshal(q)
		if err != nil {
			continue
		}
		if _, err := f.Write(append(b, '\n')); err != nil {
			return
		}
	}
	_ = f.Sync()
}

// quarantineLocked files one damaged record, truncating the raw bytes to
// keep the report bounded. Called from load with c.mu held.
func (c *Checkpoint) quarantineLocked(line int, start int, reason string, raw []byte) {
	const maxRaw = 256
	if len(raw) > maxRaw {
		raw = raw[:maxRaw]
	}
	c.quarantined = append(c.quarantined, Quarantined{Line: line, Start: start, Reason: reason, Raw: string(raw)})
}

// salvageStart best-effort extracts the start index from a damaged line so
// the quarantine report can name the lost start. The extracted payload is
// used for reporting only — never as a result.
func salvageStart(line []byte, n int) int {
	payload := line
	if len(line) > 0 && line[0] == '@' {
		if i := bytes.IndexByte(line, '{'); i >= 0 {
			payload = line[i:]
		}
	}
	var rec startRecord
	if json.Unmarshal(payload, &rec) != nil || rec.Kind != "start" || rec.Start < 0 || rec.Start >= n {
		return -1
	}
	return rec.Start
}

// load reads an existing journal, validating the header against the
// experiment identity and collecting completed starts. A missing file is not
// an error (resume of a run that never started is a fresh run). Damaged or
// invalid records are quarantined, not fatal.
func (c *Checkpoint) load(path, name string, seed uint64, n int) error {
	// load runs during construction, before the Checkpoint is shared, but it
	// writes every mu-guarded field — holding the lock keeps the discipline
	// uniform (and sharedguard-checkable) at zero contention cost.
	c.mu.Lock()
	defer c.mu.Unlock()
	f, err := c.fsys.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("eval: open checkpoint for resume: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("eval: read checkpoint: %w", err)
	}
	if len(data) == 0 {
		return nil // empty file: fresh run
	}
	torn := data[len(data)-1] != '\n' // final line has no terminator: torn by a crash
	c.needNL = torn                   // appends must not concatenate onto the damaged tail
	lines := bytes.Split(data, []byte("\n"))
	if !torn {
		lines = lines[:len(lines)-1] // drop the empty slot after the final "\n"
	}

	var hdr checkpointHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Kind != "header" {
		return fmt.Errorf("eval: checkpoint %s has no valid header line", path)
	}
	if hdr.Name != name || hdr.Seed != seed || hdr.N != n {
		return fmt.Errorf("eval: checkpoint %s belongs to experiment (name=%q seed=%d n=%d), not (name=%q seed=%d n=%d)",
			path, hdr.Name, hdr.Seed, hdr.N, name, seed, n)
	}
	version := hdr.V
	if version == 0 {
		version = 1
	}
	c.version = version

	for i, line := range lines[1:] {
		lineNo := i + 2
		last := i == len(lines)-2
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if last && torn {
			c.quarantineLocked(lineNo, salvageStart(line, n), "torn final record (crash mid-write)", line)
			continue
		}
		var payload []byte
		if version >= 2 {
			payload, err = parseFrame(line)
			if err != nil {
				c.quarantineLocked(lineNo, salvageStart(line, n), err.Error(), line)
				continue
			}
		} else {
			payload = line
		}
		var rec startRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			if version < 2 {
				// v1 has no framing, so a mid-file parse failure is
				// indistinguishable from a torn tail followed by newer
				// appends; the only safe reading is to drop the remainder.
				c.quarantineLocked(lineNo, salvageStart(line, n), "unparseable v1 record; dropping remainder of journal", line)
				break
			}
			c.quarantineLocked(lineNo, salvageStart(line, n), "framed payload is not valid JSON", line)
			continue
		}
		if rec.Kind != "start" {
			c.quarantineLocked(lineNo, -1, fmt.Sprintf("unexpected record kind %q", rec.Kind), line)
			continue
		}
		if rec.Start < 0 || rec.Start >= n {
			c.quarantineLocked(lineNo, -1, fmt.Sprintf("start %d out of range [0,%d)", rec.Start, n), line)
			continue
		}
		if _, dup := c.done[rec.Start]; dup {
			c.quarantineLocked(lineNo, rec.Start, fmt.Sprintf("duplicate record for start %d; keeping the first", rec.Start), line)
			continue
		}
		sr := StartResult{
			Start:    rec.Start,
			Resumed:  true,
			Attempts: rec.Attempts,
			Outcome:  Outcome{Cut: rec.Cut, Seconds: rec.Seconds, Work: rec.Work},
		}
		switch rec.Status {
		case "ok":
			sr.Status = StartOK
		case "failed":
			sr.Status = StartFailed
			sr.Err = errors.New(rec.Err)
		default:
			c.quarantineLocked(lineNo, rec.Start, fmt.Sprintf("unknown status %q", rec.Status), line)
			continue
		}
		c.done[rec.Start] = sr
	}
	return nil
}

// Completed returns the journaled result for start i, if any.
func (c *Checkpoint) Completed(i int) (StartResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sr, ok := c.done[i]
	return sr, ok
}

// Resumed returns how many starts were loaded from the journal.
func (c *Checkpoint) Resumed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Quarantined returns the damaged or invalid records dropped during resume,
// in journal order. The same report is written to <path>.quarantine.
func (c *Checkpoint) Quarantined() []Quarantined {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Quarantined(nil), c.quarantined...)
}

// LostStarts returns the sorted, de-duplicated start indices of quarantined
// records whose start could be recovered from the damaged bytes and whose
// outcome was actually lost (not resumed via another, intact record) —
// exactly which starts will be recomputed because of journal damage. A
// quarantined duplicate does not appear here: its start survives through
// the first copy. Records too damaged to name a start appear in Quarantined
// with Start == -1 but cannot be listed here.
func (c *Checkpoint) LostStarts() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[int]bool)
	var out []int
	for _, q := range c.quarantined {
		if q.Start < 0 || seen[q.Start] {
			continue
		}
		if _, resumed := c.done[q.Start]; resumed {
			continue
		}
		seen[q.Start] = true
		out = append(out, q.Start)
	}
	sort.Ints(out)
	return out
}

// record journals a completed or failed start. Skipped starts are not
// recorded — they have not happened. Errors are retained (see Err) rather
// than propagated so a full disk cannot destroy the in-memory results.
func (c *Checkpoint) record(sr StartResult) {
	if sr.Status == StartSkipped || sr.Resumed {
		return
	}
	rec := startRecord{
		Kind:     "start",
		Start:    sr.Start,
		Status:   sr.Status.String(),
		Cut:      sr.Outcome.Cut,
		Seconds:  sr.Outcome.Seconds,
		Work:     sr.Outcome.Work,
		Attempts: sr.Attempts,
	}
	if sr.Err != nil {
		rec.Err = sr.Err.Error()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeLine(rec); err != nil && c.err == nil {
		c.err = err
	}
}

// writeLine marshals rec, writes it in the journal's format (framed for v2,
// bare for a resumed v1 journal) with a trailing newline, flushes and
// fsyncs, so every record is durable — not merely handed to the kernel —
// once the call returns. A start is worth seconds of CPU; one fsync per
// completed start is noise next to that, and it is what lets a drained
// hgserved promise the journal survives an immediately following power
// loss. If the file ends in a torn line from a previous crash, a repair
// newline is emitted first so the new record cannot concatenate onto the
// damaged bytes. Callers hold c.mu.
//
//hglint:holds c.mu
func (c *Checkpoint) writeLine(rec startRecord) error {
	if c.f == nil {
		return errors.New("eval: checkpoint journal is closed")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("eval: encode checkpoint record: %w", err)
	}
	var line []byte
	if c.version >= 2 {
		line = frameRecord(b)
	} else {
		line = append(b, '\n')
	}
	if c.needNL {
		if err := c.w.WriteByte('\n'); err != nil {
			return fmt.Errorf("eval: repair torn checkpoint tail: %w", err)
		}
		c.needNL = false
	}
	if _, err := c.w.Write(line); err != nil {
		return fmt.Errorf("eval: write checkpoint record: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	return c.f.Sync()
}

// Err returns the first journaling error encountered, if any. A run whose
// checkpoint hit an error still returns complete in-memory results; callers
// should surface Err so the user knows the journal is not trustworthy for a
// future resume.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes and closes the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	ferr := c.w.Flush()
	cerr := c.f.Close()
	c.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
