package eval

// Journal v2 unit tests, in-package so they can craft framed records and
// drive record() directly: CRC-framed round trips, corruption quarantine
// with exact lost-start reporting, duplicate/out-of-range/unknown-status
// rejection, torn-tail repair, and transparent v1 read-back.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// stubHeuristic is a trivial deterministic Heuristic: the cut is a pure
// function of the start's pre-split seed, which is all the checkpoint tests
// need.
type stubHeuristic struct{}

func (stubHeuristic) Name() string { return "stub" }
func (stubHeuristic) Run(r *rng.RNG) Outcome {
	return Outcome{Cut: int64(10 + r.Uint64()%1000), Work: 3}
}
func (stubHeuristic) PolishBest(*partition.P, *rng.RNG) Outcome { return Outcome{} }

func stubFactory() Heuristic { return stubHeuristic{} }

func frameJSON(t *testing.T, rec startRecord) []byte {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return frameRecord(b)
}

func v2Header(t *testing.T, name string, seed uint64, n int) []byte {
	t.Helper()
	b, err := json.Marshal(checkpointHeader{Kind: "header", V: 2, Name: name, Seed: seed, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestJournalV2AppendAndResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	cp, err := OpenCheckpoint(path, "stub", 9, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	cp.record(StartResult{Start: 0, Status: StartOK, Attempts: 1, Outcome: Outcome{Cut: 42, Work: 7}})
	cp.record(StartResult{Start: 3, Status: StartFailed, Attempts: 2, Err: errors.New("boom")})
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want header + 2 records:\n%s", len(lines), raw)
	}
	if !strings.Contains(lines[0], `"v":2`) {
		t.Fatalf("header lacks version tag: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if payload, err := parseFrame([]byte(l)); err != nil {
			t.Fatalf("record does not frame-check: %q: %v", l, err)
		} else if !bytes.Contains(payload, []byte(`"kind":"start"`)) {
			t.Fatalf("frame payload is not a start record: %q", payload)
		}
	}

	cp2, err := OpenCheckpoint(path, "stub", 9, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Resumed() != 2 || len(cp2.Quarantined()) != 0 {
		t.Fatalf("resumed=%d quarantined=%v, want 2 and none", cp2.Resumed(), cp2.Quarantined())
	}
	if sr, ok := cp2.Completed(0); !ok || sr.Outcome.Cut != 42 || sr.Status != StartOK {
		t.Fatalf("start 0 round trip: %+v ok=%v", sr, ok)
	}
	if sr, ok := cp2.Completed(3); !ok || sr.Status != StartFailed || sr.Err == nil || sr.Err.Error() != "boom" {
		t.Fatalf("start 3 round trip: %+v ok=%v", sr, ok)
	}
}

// A deliberately corrupted record is quarantined with a report naming
// exactly which start was lost, and a resumed run recomputes just that
// start, reproducing the uninterrupted run's statistics.
func TestJournalV2CorruptionQuarantineAndRecovery(t *testing.T) {
	const n, seed = 4, 31
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")

	uninterrupted := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 1})

	cp, err := OpenCheckpoint(path, "stub", seed, n, false)
	if err != nil {
		t.Fatal(err)
	}
	full := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 1, Checkpoint: cp})
	if full.Completed != n || full.JournalErr != nil {
		t.Fatalf("baseline checkpointed run: %+v", full)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one digit inside the record for start 2: the payload stays valid
	// JSON (so the report can still name the start) but the CRC no longer
	// matches, so the value must not be trusted.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	target := -1
	for i, l := range lines {
		if bytes.Contains(l, []byte(`"start":2`)) {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatalf("no record for start 2 in journal:\n%s", raw)
	}
	cut := bytes.Index(lines[target], []byte(`"cut":`))
	if cut < 0 {
		t.Fatalf("record has no cut field: %q", lines[target])
	}
	digit := lines[target][cut+len(`"cut":`)]
	lines[target][cut+len(`"cut":`)] = '1' + (digit-'0'+1)%9 // change the digit, keep it a digit
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path, "stub", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Resumed() != n-1 {
		t.Fatalf("resumed %d starts, want %d (corrupt record dropped)", cp2.Resumed(), n-1)
	}
	qs := cp2.Quarantined()
	if len(qs) != 1 || qs[0].Start != 2 || !strings.Contains(qs[0].Reason, "crc mismatch") {
		t.Fatalf("quarantine report %+v, want exactly start 2 with a crc mismatch", qs)
	}
	if lost := cp2.LostStarts(); len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("LostStarts = %v, want [2]", lost)
	}
	sidecar, err := os.ReadFile(path + ".quarantine")
	if err != nil {
		t.Fatalf("quarantine sidecar not written: %v", err)
	}
	if !bytes.Contains(sidecar, []byte(`"start":2`)) || !bytes.Contains(sidecar, []byte("crc mismatch")) {
		t.Fatalf("sidecar does not name the lost start:\n%s", sidecar)
	}

	recovered := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 1, Checkpoint: cp2})
	if recovered.Resumed != n-1 || recovered.Completed != n || recovered.Incomplete {
		t.Fatalf("recovery run: %+v", recovered)
	}
	for i := range uninterrupted.Results {
		if uninterrupted.Results[i].Outcome.Cut != recovered.Results[i].Outcome.Cut {
			t.Fatalf("start %d: cut %d after recovery, want %d", i,
				recovered.Results[i].Outcome.Cut, uninterrupted.Results[i].Outcome.Cut)
		}
	}
	if a, b := uninterrupted.Summary(), recovered.Summary(); a != b {
		t.Fatalf("statistics diverge after corruption recovery:\n%s\n%s", a, b)
	}
}

// Duplicate, out-of-range and unknown-status records frame-check fine but
// are semantically invalid: all are quarantined, a duplicate never
// double-counts, and the first copy of a duplicated start wins.
func TestJournalV2RejectsDuplicateAndOutOfRange(t *testing.T) {
	const n, seed = 4, 9
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var journal []byte
	journal = append(journal, v2Header(t, "stub", seed, n)...)
	journal = append(journal, frameJSON(t, startRecord{Kind: "start", Start: 0, Status: "ok", Cut: 10, Work: 1, Attempts: 1})...)
	journal = append(journal, frameJSON(t, startRecord{Kind: "start", Start: 0, Status: "ok", Cut: 99, Work: 1, Attempts: 1})...)
	journal = append(journal, frameJSON(t, startRecord{Kind: "start", Start: 7, Status: "ok", Cut: 5, Work: 1, Attempts: 1})...)
	journal = append(journal, frameJSON(t, startRecord{Kind: "start", Start: 2, Status: "weird", Cut: 5, Work: 1, Attempts: 1})...)
	if err := os.WriteFile(path, journal, 0o644); err != nil {
		t.Fatal(err)
	}

	cp, err := OpenCheckpoint(path, "stub", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Resumed() != 1 {
		t.Fatalf("resumed %d, want only the first copy of start 0", cp.Resumed())
	}
	if sr, _ := cp.Completed(0); sr.Outcome.Cut != 10 {
		t.Fatalf("duplicate overwrote the first record: cut %d, want 10", sr.Outcome.Cut)
	}
	qs := cp.Quarantined()
	if len(qs) != 3 {
		t.Fatalf("quarantined %d records, want 3: %+v", len(qs), qs)
	}
	for i, want := range []string{"duplicate", "out of range", "unknown status"} {
		if !strings.Contains(qs[i].Reason, want) {
			t.Errorf("quarantine %d reason %q, want %q", i, qs[i].Reason, want)
		}
	}
	// Start 0 survives through its first copy, so only start 2 was lost.
	if lost := cp.LostStarts(); len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("LostStarts = %v, want [2]", lost)
	}

	// The report must not double-count: start 0 contributes once.
	rep := RunMultistart(context.Background(), stubFactory, n, seed, RunOptions{Workers: 1, Checkpoint: cp})
	if rep.Completed != n || rep.Resumed != 1 || rep.Incomplete {
		t.Fatalf("resumed run: completed=%d resumed=%d incomplete=%v, want %d/1/false",
			rep.Completed, rep.Resumed, rep.Incomplete, n)
	}
	if rep.Results[0].Outcome.Cut != 10 {
		t.Fatalf("start 0 cut %d, want the journaled 10", rep.Results[0].Outcome.Cut)
	}
}

// A torn final record (crash mid-write) is quarantined, and the repair
// newline keeps the next append from concatenating onto the damaged bytes.
func TestJournalV2TornTailRepairedOnAppend(t *testing.T) {
	const n, seed = 4, 9
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var journal []byte
	journal = append(journal, v2Header(t, "stub", seed, n)...)
	journal = append(journal, frameJSON(t, startRecord{Kind: "start", Start: 0, Status: "ok", Cut: 10, Work: 1, Attempts: 1})...)
	torn := frameJSON(t, startRecord{Kind: "start", Start: 1, Status: "ok", Cut: 20, Work: 1, Attempts: 1})
	journal = append(journal, torn[:len(torn)/2]...) // no trailing newline: torn by a crash
	if err := os.WriteFile(path, journal, 0o644); err != nil {
		t.Fatal(err)
	}

	cp, err := OpenCheckpoint(path, "stub", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Resumed() != 1 {
		t.Fatalf("resumed %d, want 1 (torn record dropped)", cp.Resumed())
	}
	if qs := cp.Quarantined(); len(qs) != 1 || !strings.Contains(qs[0].Reason, "torn") {
		t.Fatalf("quarantine = %+v, want one torn-record entry", qs)
	}
	cp.record(StartResult{Start: 2, Status: StartOK, Attempts: 1, Outcome: Outcome{Cut: 30, Work: 1}})
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cp2, err := OpenCheckpoint(path, "stub", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Resumed() != 2 {
		t.Fatalf("after repair+append resumed %d, want starts 0 and 2", cp2.Resumed())
	}
	if sr, ok := cp2.Completed(2); !ok || sr.Outcome.Cut != 30 {
		t.Fatalf("appended record lost after torn-tail repair: %+v ok=%v", sr, ok)
	}
	if _, ok := cp2.Completed(1); ok {
		t.Fatal("torn record must stay dropped")
	}
}

// A pre-framing (v1) journal still resumes, and appends to it stay in v1
// format so the file remains self-consistent.
func TestJournalV1ResumeAppendsV1(t *testing.T) {
	const n, seed = 3, 7
	path := filepath.Join(t.TempDir(), "run.jsonl")
	journal := `{"kind":"header","name":"stub","seed":7,"n":3}` + "\n" +
		`{"kind":"start","start":0,"status":"ok","cut":42,"work":100,"attempts":1}` + "\n"
	if err := os.WriteFile(path, []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(path, "stub", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Resumed() != 1 {
		t.Fatalf("v1 resume loaded %d starts, want 1", cp.Resumed())
	}
	cp.record(StartResult{Start: 1, Status: StartOK, Attempts: 1, Outcome: Outcome{Cut: 50, Work: 1}})
	if err := cp.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("@")) {
		t.Fatalf("append to a v1 journal must stay v1 (no frames):\n%s", raw)
	}
	cp2, err := OpenCheckpoint(path, "stub", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Resumed() != 2 {
		t.Fatalf("v1 journal with v1 append resumed %d starts, want 2", cp2.Resumed())
	}
}
