package eval

import (
	"math"
	"sort"
)

// BSFPoint is one point of a best-so-far curve: the solution cost the
// multistart regime is expected to achieve within a CPU budget.
type BSFPoint struct {
	// Budget is the CPU budget tau in (normalized) seconds.
	Budget float64
	// Starts is the number of independent starts that fit in Budget
	// (the paper notes a time bound converts to a bound on starts via the
	// average single-start runtime).
	Starts int
	// ExpectedBest is E[min of Starts draws] under the empirical
	// single-start cut distribution.
	ExpectedBest float64
}

// BSFCurve computes the best-so-far curve from independent single-start
// samples. For each budget tau, the number of starts k = floor(tau / mean
// single-start time), and the expected best-of-k is computed exactly from
// the empirical distribution:
//
//	E[min of k] = sum_i c_(i) * [ ((n-i+1)/n)^k - ((n-i)/n)^k ]
//
// with c_(1) <= ... <= c_(n) the sorted sample cuts. Budgets too small for
// even one start are reported with Starts == 0 and ExpectedBest == +Inf
// (no solution available yet).
//
// useNormalized selects work-unit-derived normalized seconds instead of
// wall-clock seconds as the time axis.
func BSFCurve(samples []Outcome, budgets []float64, useNormalized bool) []BSFPoint {
	if len(samples) == 0 {
		return nil
	}
	cuts := make([]float64, len(samples))
	var meanTime float64
	for i, s := range samples {
		cuts[i] = float64(s.Cut)
		if useNormalized {
			meanTime += s.NormalizedSeconds()
		} else {
			meanTime += s.Seconds
		}
	}
	meanTime /= float64(len(samples))
	sort.Float64s(cuts)

	out := make([]BSFPoint, 0, len(budgets))
	for _, tau := range budgets {
		k := 0
		if meanTime > 0 {
			k = int(tau / meanTime)
		}
		p := BSFPoint{Budget: tau, Starts: k}
		if k <= 0 {
			p.ExpectedBest = math.Inf(1)
		} else {
			p.ExpectedBest = ExpectedBestOfK(cuts, k)
		}
		out = append(out, p)
	}
	return out
}

// ExpectedBestOfK returns E[min of k i.i.d. draws] from the empirical
// distribution given by sortedCuts (ascending).
func ExpectedBestOfK(sortedCuts []float64, k int) float64 {
	n := float64(len(sortedCuts))
	if n == 0 {
		return math.Inf(1)
	}
	if k <= 1 {
		var s float64
		for _, c := range sortedCuts {
			s += c
		}
		return s / n
	}
	var e float64
	for i, c := range sortedCuts {
		// P(min = c_(i)) for the i-th order statistic position (1-based).
		hi := math.Pow((n-float64(i))/n, float64(k))
		lo := math.Pow((n-float64(i)-1)/n, float64(k))
		e += c * (hi - lo)
	}
	return e
}

// PerfPoint is one (solution cost, runtime) performance point of a
// heuristic configuration.
type PerfPoint struct {
	Label   string
	Cost    float64
	Seconds float64
}

// Dominates reports whether a dominates b in the paper's sense: a has both
// lower cost AND lower runtime ("no one would ever choose to run
// configuration B over configuration A").
func Dominates(a, b PerfPoint) bool {
	return a.Cost < b.Cost && a.Seconds < b.Seconds
}

// ParetoFrontier returns the non-dominated subset of points, sorted by
// increasing runtime. This is exactly the Pareto set of the multi-objective
// (cost, runtime) comparison the paper recommends reporting.
func ParetoFrontier(points []PerfPoint) []PerfPoint {
	var front []PerfPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Seconds != front[j].Seconds {
			return front[i].Seconds < front[j].Seconds
		}
		return front[i].Cost < front[j].Cost
	})
	return front
}

// RankingCell is one cell of a speed-dependent ranking diagram.
type RankingCell struct {
	// InstanceSize is the vertex count of the instance class.
	InstanceSize int
	// Budget is the CPU budget in normalized seconds.
	Budget float64
	// Winner is the name of the heuristic with the lowest expected
	// best-so-far cost at this (size, budget) cell; "-" if no heuristic
	// completes a single start within the budget.
	Winner string
	// Expected maps each heuristic name to its expected BSF cost (may be
	// +Inf when the heuristic cannot finish a start within Budget).
	Expected map[string]float64
}

// RankingDiagram builds the Schreiber–Martin-style dominance diagram from
// per-heuristic single-start samples gathered on instances of several
// sizes. samplesBySize[size][name] holds the single-start outcomes of
// heuristic name on the instance of that size.
func RankingDiagram(samplesBySize map[int]map[string][]Outcome, budgets []float64, useNormalized bool) []RankingCell {
	sizes := make([]int, 0, len(samplesBySize))
	for sz := range samplesBySize {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)

	var cells []RankingCell
	for _, sz := range sizes {
		names := make([]string, 0, len(samplesBySize[sz]))
		for name := range samplesBySize[sz] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, tau := range budgets {
			cell := RankingCell{InstanceSize: sz, Budget: tau, Winner: "-", Expected: map[string]float64{}}
			bestVal := math.Inf(1)
			for _, name := range names {
				pts := BSFCurve(samplesBySize[sz][name], []float64{tau}, useNormalized)
				v := math.Inf(1)
				if len(pts) == 1 {
					v = pts[0].ExpectedBest
				}
				cell.Expected[name] = v
				if v < bestVal {
					bestVal = v
					cell.Winner = name
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells
}
