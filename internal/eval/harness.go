package eval

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hgpart/internal/core"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Fault-tolerant run harness. The paper's experiments are long multistart
// sweeps — "the equivalent of nearly 10,000 starts for each test case" — and
// a production evaluation service must survive a single bad start: a
// panicking engine, a corrupted partition, a run that blows its time budget.
// RunMultistart layers cancellation, panic isolation, wall-clock and
// work-unit budgets, bounded retry-with-reseed, per-start verification and
// checkpoint/resume over any Heuristic while preserving the per-start
// RNG-split determinism the methodology depends on: start i always derives
// its generator from the i-th split of the root seed, so the same seed gives
// the same per-start outcomes regardless of worker count or which faults
// intervene (budget interruptions excepted — they change which starts run,
// never what a start computes).

// StartStatus classifies one start's fate. The zero value is StartSkipped so
// that a start the dispatcher never reached is reported honestly.
type StartStatus int

const (
	// StartSkipped means the start never ran: the run was cancelled or a
	// budget was exhausted first.
	StartSkipped StartStatus = iota
	// StartOK means the start produced a (verified, if requested) outcome.
	StartOK
	// StartFailed means every attempt panicked or failed verification.
	StartFailed
)

// String returns the status name.
func (s StartStatus) String() string {
	switch s {
	case StartSkipped:
		return "skipped"
	case StartOK:
		return "ok"
	case StartFailed:
		return "failed"
	}
	return "status(?)"
}

// PanicError wraps a recovered panic from a heuristic start.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("eval: start panicked: %v", e.Value) }

// Unwrap exposes a panic value that is itself an error (e.g. the engine's
// *core.InvariantViolation) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// StartResult is the fate of one start.
type StartResult struct {
	// Start is the start index in [0, n).
	Start int
	// Status classifies the result.
	Status StartStatus
	// Resumed reports that the result was loaded from a checkpoint rather
	// than computed this run (its Outcome.P is nil and Seconds reflect the
	// original run).
	Resumed bool
	// Attempts is how many attempts ran (1 + retries); 0 for skipped or
	// resumed starts.
	Attempts int
	// Outcome is the start's result; meaningful when Status == StartOK.
	Outcome Outcome
	// Err is the last attempt's failure; non-nil iff Status == StartFailed.
	Err error
}

// RunOptions configures RunMultistart. The zero value runs all starts on
// GOMAXPROCS workers with no budgets, no retries, no verification and no
// checkpointing.
type RunOptions struct {
	// Workers caps concurrent starts; <= 0 means GOMAXPROCS.
	Workers int
	// WallBudget bounds the run's wall-clock time; 0 means unbounded.
	// In-flight starts run to completion; only undispatched starts are
	// skipped.
	WallBudget time.Duration
	// WorkBudget bounds the cumulative deterministic work-unit count; 0
	// means unbounded. Checked before dispatching each start, so the total
	// may overshoot by up to Workers in-flight starts.
	WorkBudget int64
	// MaxRetries is how many times a panicking or verification-failing start
	// is retried with a reseeded generator before being recorded as failed.
	MaxRetries int
	// Verify, when non-nil, is applied to every completed outcome; an error
	// fails the attempt (and triggers a retry if any remain). Use
	// VerifyOutcome for the standard invariant checks.
	Verify func(Outcome) error
	// Checkpoint, when non-nil, journals every completed start and seeds the
	// run with the starts already journaled (see OpenCheckpoint).
	Checkpoint *Checkpoint
	// AbandonGrace bounds how long a cancelled run waits for in-flight
	// starts to finish; 0 means wait indefinitely (in-flight starts always
	// complete, the pre-existing behavior). Go cannot kill a goroutine, so
	// when the grace expires the run returns with Abandoned set and the
	// stuck starts' goroutines are left behind: they drain harmlessly into
	// a buffered channel, and if they ever do complete, their results still
	// reach the checkpoint journal — which is exactly what lets a watchdog
	// requeue a wedged job and have the resume pick up any late finishers.
	AbandonGrace time.Duration
}

// RunReport is the full result of a RunMultistart: per-start results in
// start order plus aggregate bookkeeping. A report with Incomplete set still
// carries every outcome that did complete — partial results are first-class,
// per the harness's design.
type RunReport struct {
	// Results holds one entry per start, in start order.
	Results []StartResult
	// Best is the best successful outcome (lowest cut, ties to the lowest
	// start index). Its P is non-nil only if the best start ran this session
	// (a resumed best has no partition). Zero when no start succeeded.
	Best Outcome
	// BestIdx is the start index of Best, or -1 when no start succeeded.
	BestIdx int
	// Completed, Failed, Skipped and Resumed count starts by fate; Resumed
	// starts are also counted under Completed or Failed.
	Completed, Failed, Skipped, Resumed int
	// Incomplete reports that not every start ran (cancellation or budget).
	Incomplete bool
	// Abandoned reports that the run stopped waiting on in-flight starts
	// after cancellation (see RunOptions.AbandonGrace). Abandoned starts
	// are counted under Skipped.
	Abandoned bool
	// Reason explains Incomplete: "cancelled", "wall-clock budget
	// exhausted" or "work budget exhausted". Empty when complete.
	Reason string
	// JournalErr is the checkpoint journal's first write error, surfaced
	// here so callers of a checkpointed run cannot forget to check whether
	// the journal is trustworthy for a future resume. Nil when no
	// checkpoint was configured or every record landed durably.
	JournalErr error
	// TotalWork is the cumulative work-unit count over completed starts
	// (including resumed ones).
	TotalWork int64
	// Elapsed is the harness's wall-clock time for this session.
	Elapsed time.Duration
}

// Summary renders the aggregate statistics — min and mean cut over
// successful starts plus status counts — in a stable format, so a
// checkpointed-and-resumed run can be compared byte-for-byte against an
// uninterrupted one.
func (r *RunReport) Summary() string {
	minCut, sum, n := int64(0), int64(0), 0
	for _, sr := range r.Results {
		if sr.Status != StartOK {
			continue
		}
		if n == 0 || sr.Outcome.Cut < minCut {
			minCut = sr.Outcome.Cut
		}
		sum += sr.Outcome.Cut
		n++
	}
	avg := "-"
	mn := "-"
	if n > 0 {
		mn = fmt.Sprintf("%d", minCut)
		avg = fmt.Sprintf("%.3f", float64(sum)/float64(n))
	}
	s := fmt.Sprintf("starts=%d ok=%d failed=%d skipped=%d min=%s avg=%s work=%d",
		len(r.Results), r.Completed, r.Failed, r.Skipped, mn, avg, r.TotalWork)
	if r.Incomplete {
		s += " incomplete=" + r.Reason
	}
	return s
}

// attemptSeed derives the deterministic seed for a retry attempt: attempt 0
// reproduces the plain rng.Split discipline, later attempts reseed with a
// SplitMix64-style odd-constant mix so retried starts explore fresh
// randomness without consulting any shared state.
func attemptSeed(startSeed uint64, attempt int) uint64 {
	return startSeed + uint64(attempt)*0x9e3779b97f4a7c15
}

// VerifyOutcome returns the standard per-start verifier: the outcome must
// carry a partition whose incremental state survives a from-scratch
// recomputation (core.VerifyPartition), satisfy the balance constraint, and
// report the cut its partition actually has. Fault-injection tests use it to
// prove that silently corrupted starts are caught and recorded as failures.
func VerifyOutcome(bal partition.Balance) func(Outcome) error {
	return func(o Outcome) error {
		if o.P == nil {
			return fmt.Errorf("eval: outcome carries no partition")
		}
		if err := core.VerifyPartition(o.P, bal); err != nil {
			return err
		}
		if o.Cut != o.P.Cut() {
			return &core.InvariantViolation{Kind: "cut",
				Detail: fmt.Sprintf("outcome reports cut %d but partition has %d", o.Cut, o.P.Cut())}
		}
		return nil
	}
}

// RunMultistart runs n independent starts of the heuristic produced by
// factory across worker goroutines, under ctx and the budgets, retry policy,
// verification and checkpointing of opt. factory is called once per worker
// (and again after a failed attempt, since a panic may leave engine scratch
// state corrupted); it must be safe to call from multiple goroutines and
// each returned Heuristic is used by one goroutine at a time.
//
// Panics inside a start are recovered and recorded as failed results; they
// never abort sibling starts. Cancellation and exhausted budgets stop
// dispatching new starts but let in-flight starts finish, and the report
// marks the run Incomplete with the reason. All partitions except the best
// successful start's are dropped to bound memory.
func RunMultistart(ctx context.Context, factory func() Heuristic, n int, seed uint64, opt RunOptions) *RunReport {
	t0 := time.Now() //hglint:ignore detrand wall clock feeds the report's Elapsed only, never the search
	if ctx == nil {
		ctx = context.Background()
	}
	rep := &RunReport{Results: make([]StartResult, n), BestIdx: -1}
	if n <= 0 {
		rep.Elapsed = time.Since(t0) //hglint:ignore detrand wall clock feeds the report's Elapsed only, never the search
		return rep
	}
	parent := ctx
	if opt.WallBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.WallBudget)
		defer cancel()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Pre-split one seed per start so results are schedule-independent.
	root := rng.New(seed)
	startSeeds := make([]uint64, n)
	for i := range startSeeds {
		startSeeds[i] = root.Uint64()
	}

	for i := range rep.Results {
		rep.Results[i] = StartResult{Start: i, Status: StartSkipped}
	}
	// Seed from the checkpoint journal: already-completed starts are never
	// re-dispatched, so a resumed experiment reproduces the uninterrupted
	// run's aggregate statistics exactly.
	if opt.Checkpoint != nil {
		for i := 0; i < n; i++ {
			if sr, ok := opt.Checkpoint.Completed(i); ok {
				rep.Results[i] = sr
			}
		}
	}

	// Workers never touch rep.Results directly: results flow back over a
	// buffered channel the collector below owns. The buffer holds every
	// dispatched start, so a worker's send can never block — which is what
	// makes abandonment safe: a stuck start's goroutine, once it finally
	// finishes, drains into the buffer (and journals itself) instead of
	// writing into a report the caller has long since consumed.
	var totalWork atomic.Int64
	var wg sync.WaitGroup
	next := make(chan int)
	resc := make(chan StartResult, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := factory()
			for i := range next {
				sr := runStart(&h, factory, i, startSeeds[i], opt)
				totalWork.Add(sr.Outcome.Work)
				if opt.Checkpoint != nil {
					// A journaling error must not lose the computed result;
					// it is surfaced via Checkpoint.Err after the run.
					opt.Checkpoint.record(sr)
				}
				resc <- sr
			}
		}()
	}

	reason := ""
	dispatched := 0
dispatch:
	for i := 0; i < n; i++ {
		if rep.Results[i].Resumed {
			continue
		}
		if opt.WorkBudget > 0 && totalWork.Load() >= opt.WorkBudget {
			reason = "work budget exhausted"
			break
		}
		select {
		case next <- i:
			dispatched++
		case <-ctx.Done():
			if parent.Err() != nil {
				reason = "cancelled"
			} else {
				reason = "wall-clock budget exhausted"
			}
			break dispatch
		}
	}
	close(next)

	// Collect every dispatched result. With no AbandonGrace this waits as
	// long as it takes (in-flight starts always complete); with one, a
	// cancelled run stops waiting once the grace expires after cancellation
	// and reports the stragglers as skipped.
	ctxDone := ctx.Done()
	var graceTimer *time.Timer
	var graceC <-chan time.Time
	for collected := 0; collected < dispatched; {
		select {
		case sr := <-resc:
			rep.Results[sr.Start] = sr
			collected++
		case <-ctxDone:
			ctxDone = nil
			if opt.AbandonGrace > 0 {
				graceTimer = time.NewTimer(opt.AbandonGrace) //hglint:ignore detrand watchdog grace timer, never feeds the search
				graceC = graceTimer.C
			}
		case <-graceC:
			rep.Abandoned = true
		}
		if rep.Abandoned {
			break
		}
	}
	if graceTimer != nil {
		graceTimer.Stop()
	}
	if !rep.Abandoned {
		wg.Wait()
	}

	for _, sr := range rep.Results {
		switch sr.Status {
		case StartOK:
			rep.Completed++
			if sr.Resumed {
				rep.Resumed++
			}
			if rep.BestIdx < 0 || sr.Outcome.Cut < rep.Best.Cut {
				rep.Best = sr.Outcome
				rep.BestIdx = sr.Start
			}
		case StartFailed:
			rep.Failed++
			if sr.Resumed {
				rep.Resumed++
			}
		case StartSkipped:
			rep.Skipped++
		}
	}
	// TotalWork is summed from the sealed report itself — resumed starts
	// included: their work units are part of the experiment's cost even
	// though this session did not spend them. The dispatch-time atomic is
	// deliberately not read here: an abandoned straggler could still bump
	// it after the report is returned.
	var work int64
	for _, sr := range rep.Results {
		work += sr.Outcome.Work
	}
	rep.TotalWork = work
	// Keep only the best partition; per-start partitions would hold the
	// whole multistart's memory live.
	for i := range rep.Results {
		if rep.Results[i].Start != rep.BestIdx {
			rep.Results[i].Outcome.P = nil
		}
	}
	if rep.Skipped > 0 {
		rep.Incomplete = true
		if reason == "" {
			reason = "cancelled"
		}
		rep.Reason = reason
	}
	if opt.Checkpoint != nil {
		rep.JournalErr = opt.Checkpoint.Err()
	}
	rep.Elapsed = time.Since(t0) //hglint:ignore detrand wall clock feeds the report's Elapsed only, never the search
	return rep
}

// runStart executes one start with panic recovery, verification and bounded
// retry-with-reseed. h points to the worker's current heuristic; after any
// failed attempt the heuristic is rebuilt via factory, since a panic may
// have left per-engine scratch state inconsistent.
func runStart(h *Heuristic, factory func() Heuristic, start int, startSeed uint64, opt RunOptions) StartResult {
	sr := StartResult{Start: start}
	for attempt := 0; ; attempt++ {
		sr.Attempts = attempt + 1
		o, err := runAttempt(*h, rng.New(attemptSeed(startSeed, attempt)))
		if err == nil && opt.Verify != nil {
			err = opt.Verify(o)
		}
		if err == nil {
			sr.Status = StartOK
			sr.Outcome = o
			return sr
		}
		*h = factory()
		sr.Err = err
		if attempt >= opt.MaxRetries {
			sr.Status = StartFailed
			return sr
		}
	}
}

// runAttempt runs one attempt, converting a panic into a *PanicError.
func runAttempt(h Heuristic, r *rng.RNG) (o Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return h.Run(r), nil
}

// StartSeed returns the pre-split seed RunMultistart derives for start i of
// a run rooted at seed — the i-th draw from the root generator. Because each
// start's outcome is a pure function of this seed, any single start can be
// recomputed after the fact (see RerunStart) without re-running the sweep.
func StartSeed(seed uint64, i int) uint64 {
	root := rng.New(seed)
	var s uint64
	for j := 0; j <= i; j++ {
		s = root.Uint64()
	}
	return s
}

// RerunStart deterministically recomputes start i of an n-start run rooted
// at seed, replaying attempt number attempts (1 for a start that succeeded
// first try, matching StartResult.Attempts). It reproduces the exact
// outcome RunMultistart recorded — partition included — which is how a
// resumed run whose best start lives only in the journal (Outcome.P == nil)
// recovers the partition without redoing the whole sweep.
func RerunStart(factory func() Heuristic, seed uint64, i, attempts int) (Outcome, error) {
	if attempts < 1 {
		attempts = 1
	}
	return runAttempt(factory(), rng.New(attemptSeed(StartSeed(seed, i), attempts-1)))
}

// MultistartInfo reports the robustness bookkeeping of MultistartRobust.
type MultistartInfo struct {
	// Completed and Failed count starts by fate.
	Completed, Failed int
	// Incomplete reports that the context cancelled the sweep early.
	Incomplete bool
	// FirstErr is the first failure observed, if any.
	FirstErr error
}

// MultistartRobust is the sequential, context-aware counterpart of
// Multistart used by the experiment drivers: the generator-split discipline
// is identical (start i draws from the i-th Split of r), so with no faults
// and no cancellation it returns exactly Multistart's samples. Panics are
// recovered into failed (and omitted) samples, verify (optional) rejects
// corrupt outcomes, and a cancelled context stops the sweep between starts.
func MultistartRobust(ctx context.Context, h Heuristic, n int, r *rng.RNG,
	verify func(Outcome) error) (samples []Outcome, best Outcome, info MultistartInfo) {
	if ctx == nil {
		ctx = context.Background()
	}
	samples = make([]Outcome, 0, n)
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			info.Incomplete = true
			return samples, best, info
		default:
		}
		o, err := runAttempt(h, r.Split())
		if err == nil && verify != nil {
			err = verify(o)
		}
		if err != nil {
			info.Failed++
			if info.FirstErr == nil {
				info.FirstErr = err
			}
			continue
		}
		info.Completed++
		if best.P == nil || o.Cut < best.Cut {
			best = o
		}
		o.P = nil
		samples = append(samples, o)
	}
	return samples, best, info
}
