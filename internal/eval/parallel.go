package eval

import "context"

// ParallelMultistart runs n independent starts across worker goroutines and
// returns per-start outcomes in start order plus the best outcome and its
// index. It is a thin compatibility wrapper over RunMultistart with no
// budgets, no retries and no checkpointing.
//
// Heuristic implementations carry per-engine scratch state and are not safe
// for concurrent use, so the caller provides a factory producing one
// Heuristic per worker. Determinism is preserved regardless of worker count
// or scheduling: start i always draws from the i-th generator split from
// seed, and ties between equal cuts are broken by start index.
//
// A start that panics is isolated by the harness and reported as a zero
// Outcome here (use RunMultistart directly for per-start status and errors).
// n <= 0 returns no outcomes, a zero best and index -1.
//
// The paper measures CPU time, not wall clock, precisely so that results
// stay comparable across execution environments; per-start Work counters
// are unaffected by parallel execution.
func ParallelMultistart(factory func() Heuristic, n int, seed uint64, workers int) ([]Outcome, Outcome, int) {
	rep := RunMultistart(context.Background(), factory, n, seed, RunOptions{Workers: workers})
	if n <= 0 {
		return nil, Outcome{}, -1
	}
	outcomes := make([]Outcome, n)
	for i, sr := range rep.Results {
		outcomes[i] = sr.Outcome
	}
	return outcomes, rep.Best, rep.BestIdx
}
