package eval

import (
	"runtime"
	"sync"

	"hgpart/internal/rng"
)

// ParallelMultistart runs n independent starts across worker goroutines and
// returns per-start outcomes in start order plus the best outcome.
//
// Heuristic implementations carry per-engine scratch state and are not safe
// for concurrent use, so the caller provides a factory producing one
// Heuristic per worker. Determinism is preserved regardless of worker count
// or scheduling: start i always draws from the i-th generator split from
// seed, and ties between equal cuts are broken by start index.
//
// The paper measures CPU time, not wall clock, precisely so that results
// stay comparable across execution environments; per-start Work counters
// are unaffected by parallel execution.
func ParallelMultistart(factory func() Heuristic, n int, seed uint64, workers int) ([]Outcome, Outcome, int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Pre-split one generator per start so results are schedule-independent.
	root := rng.New(seed)
	seeds := make([]*rng.RNG, n)
	for i := range seeds {
		seeds[i] = root.Split()
	}

	outcomes := make([]Outcome, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := factory()
			for i := range next {
				outcomes[i] = h.Run(seeds[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	bestIdx := 0
	for i := 1; i < n; i++ {
		if outcomes[i].Cut < outcomes[bestIdx].Cut {
			bestIdx = i
		}
	}
	best := outcomes[bestIdx]
	// Strip partitions from the sample list (keep only the best's).
	for i := range outcomes {
		if i != bestIdx {
			outcomes[i].P = nil
		}
	}
	return outcomes, best, bestIdx
}
