package eval_test

// Crash-safety tests for the checkpoint journal: creation must be atomic
// (temp file + rename), so no sequence of kills can leave a torn header
// that a later resume would misread, and records must be recoverable even
// with a torn final line.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hgpart/internal/eval"
)

func TestCheckpointFreshCreateIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	cp, err := eval.OpenCheckpoint(path, "flat", 7, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after create: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(b), "\n", 2)[0]
	if !strings.Contains(first, `"kind":"header"`) || !strings.Contains(first, `"name":"flat"`) {
		t.Fatalf("journal does not start with a valid header: %q", first)
	}
}

func TestCheckpointCreateReplacesGarbageAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	// A crash mid-creation under the old write-then-truncate scheme could
	// leave a torn half-header; a stale .tmp from an earlier kill may also
	// linger. Fresh open must recover from both.
	if err := os.WriteFile(path, []byte(`{"kind":"head`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := eval.OpenCheckpoint(path, "flat", 7, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), `{"kind":"header"`) {
		t.Fatalf("garbage journal not replaced by a valid one: %q", string(b))
	}
}

func TestCheckpointResumeRefusesTornHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	if err := os.WriteFile(path, []byte(`{"kind":"head`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := eval.OpenCheckpoint(path, "flat", 7, 10, true); err == nil {
		t.Fatal("resume accepted a journal with a torn header")
	}
}

func TestCheckpointResumeDropsTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	journal := `{"kind":"header","name":"flat","seed":7,"n":10}` + "\n" +
		`{"kind":"start","start":3,"status":"ok","cut":42,"work":100,"attempts":1}` + "\n" +
		`{"kind":"start","start":5,"sta` // torn mid-record by a crash
	if err := os.WriteFile(path, []byte(journal), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := eval.OpenCheckpoint(path, "flat", 7, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Resumed() != 1 {
		t.Fatalf("resumed %d starts, want 1 (torn final record dropped)", cp.Resumed())
	}
	if sr, ok := cp.Completed(3); !ok || sr.Outcome.Cut != 42 {
		t.Fatalf("intact record not resumed: %+v ok=%v", sr, ok)
	}
	if _, ok := cp.Completed(5); ok {
		t.Fatal("torn record was resumed")
	}
}
