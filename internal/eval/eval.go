// Package eval implements the experimental-evaluation and reporting
// machinery the paper advocates in §3.2:
//
//   - multistart runs with min/average statistics (the traditional style);
//   - best-so-far (BSF) curves — expected best solution cost versus CPU
//     budget (Barr et al.);
//   - non-dominated (cost, runtime) frontiers — the Pareto set of
//     performance points across heuristics;
//   - speed-dependent ranking diagrams (Schreiber & Martin) showing which
//     heuristic dominates in each (instance size, CPU budget) region.
//
// Runtime is reported both in wall-clock seconds and in deterministic FM
// work units; a calibration constant converts work units to "normalized
// seconds" the way the paper normalizes all machines to a 200MHz Sun
// Ultra-2.
package eval

import (
	"context"
	"time"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// WorkUnitsPerSecond calibrates the deterministic work counter to the
// paper's reference machine: we declare 2e6 gain-update pin visits per
// normalized CPU second, roughly what a 200MHz Sun Ultra-2 sustained on
// pointer-chasing FM inner loops. All "normalized seconds" in tables derive
// from this constant, so results are machine-independent and reproducible.
const WorkUnitsPerSecond = 2e6

// Outcome is the result of one heuristic start.
type Outcome struct {
	// P is the resulting partition (may be nil for aggregated outcomes).
	P *partition.P
	// Cut is the weighted cut achieved.
	Cut int64
	// Seconds is the wall-clock time of the start.
	Seconds float64
	// Work is the deterministic FM work-unit count.
	Work int64
}

// NormalizedSeconds converts the outcome's work units to normalized seconds.
func (o Outcome) NormalizedSeconds() float64 { return float64(o.Work) / WorkUnitsPerSecond }

// Heuristic is anything that can produce one independent partitioning start.
type Heuristic interface {
	// Name identifies the heuristic in reports.
	Name() string
	// Run performs one independent start using randomness from r.
	Run(r *rng.RNG) Outcome
	// PolishBest optionally improves the best-of-k solution (hMetis-style
	// V-cycling applies only to the best of several starts, which is why —
	// as the paper notes — sampling methods cannot model such heuristics and
	// actual CPU time must be the axis of comparison). Implementations with
	// no polish step return a zero Outcome with P == nil.
	PolishBest(p *partition.P, r *rng.RNG) Outcome
}

// Flat is a single-level FM/CLIP heuristic: random balanced initial
// solution followed by the configured engine.
type Flat struct {
	Label string
	H     *hypergraph.Hypergraph
	Cfg   core.Config
	Bal   partition.Balance

	eng *core.Engine
}

// NewFlat builds a flat heuristic.
func NewFlat(label string, h *hypergraph.Hypergraph, cfg core.Config, bal partition.Balance, r *rng.RNG) *Flat {
	return &Flat{Label: label, H: h, Cfg: cfg, Bal: bal, eng: core.NewEngine(h, cfg, bal, r)}
}

// Name implements Heuristic.
func (f *Flat) Name() string { return f.Label }

// Run implements Heuristic.
func (f *Flat) Run(r *rng.RNG) Outcome {
	t0 := time.Now() //hglint:ignore detrand wall clock feeds the reported Seconds only, never the search
	p := partition.New(f.H)
	p.RandomBalanced(r, f.Bal)
	res := f.eng.Run(p)
	//hglint:ignore detrand wall clock feeds the reported Seconds only, never the search
	return Outcome{P: p, Cut: res.Cut, Seconds: time.Since(t0).Seconds(), Work: res.Work}
}

// PolishBest implements Heuristic; flat FM has no polish step.
func (f *Flat) PolishBest(*partition.P, *rng.RNG) Outcome { return Outcome{} }

// ML is a multilevel heuristic with optional V-cycles on the best solution.
type ML struct {
	Label   string
	P       *multilevel.Partitioner
	VCycles int
}

// NewML builds a multilevel heuristic. vcycles V-cycles are applied to the
// best of a multistart (0 disables polishing).
func NewML(label string, h *hypergraph.Hypergraph, cfg multilevel.Config, bal partition.Balance, vcycles int) *ML {
	return &ML{Label: label, P: multilevel.New(h, cfg, bal), VCycles: vcycles}
}

// Name implements Heuristic.
func (m *ML) Name() string { return m.Label }

// Run implements Heuristic.
func (m *ML) Run(r *rng.RNG) Outcome {
	t0 := time.Now() //hglint:ignore detrand wall clock feeds the reported Seconds only, never the search
	p, st := m.P.Partition(r)
	//hglint:ignore detrand wall clock feeds the reported Seconds only, never the search
	return Outcome{P: p, Cut: st.Cut, Seconds: time.Since(t0).Seconds(), Work: st.Work}
}

// PolishBest implements Heuristic: applies the configured V-cycles.
func (m *ML) PolishBest(p *partition.P, r *rng.RNG) Outcome {
	if m.VCycles <= 0 || p == nil {
		return Outcome{}
	}
	t0 := time.Now() //hglint:ignore detrand wall clock feeds the reported Seconds only, never the search
	var work int64
	var cut int64 = p.Cut()
	for i := 0; i < m.VCycles; i++ {
		st := m.P.VCycle(p, r)
		work += st.Work
		cut = st.Cut
	}
	//hglint:ignore detrand wall clock feeds the reported Seconds only, never the search
	return Outcome{P: p, Cut: cut, Seconds: time.Since(t0).Seconds(), Work: work}
}

// Multistart runs n independent starts of h and returns all outcomes
// (without partitions, to bound memory) plus the best outcome with its
// partition. Each start gets a generator split from r, so results are
// reproducible from a single seed regardless of how many starts ran.
//
// Multistart is the plain, uncancellable convenience form of
// MultistartRobust; callers running sweeps long enough to deserve a deadline
// should use MultistartRobust directly.
func Multistart(h Heuristic, n int, r *rng.RNG) (samples []Outcome, best Outcome) {
	samples, best, _ = MultistartRobust(context.Background(), h, n, r, nil)
	return samples, best
}

// BestOfK runs k starts, applies the heuristic's polish step to the best,
// and returns the final best outcome plus the total cost of the whole
// configuration (sum of all starts plus polish) — the quantity Tables 4/5
// report as "average CPU time" per configuration.
func BestOfK(h Heuristic, k int, r *rng.RNG) (best Outcome, totalSeconds float64, totalWork int64) {
	samples, best := Multistart(h, k, r)
	for _, s := range samples {
		totalSeconds += s.Seconds
		totalWork += s.Work
	}
	polish := h.PolishBest(best.P, r.Split())
	if polish.P != nil {
		totalSeconds += polish.Seconds
		totalWork += polish.Work
		best.Cut = polish.Cut
	}
	best.Seconds = totalSeconds
	best.Work = totalWork
	return best, totalSeconds, totalWork
}

// ConfigurationPoint is one cell of a Table 4/5-style evaluation: a number
// of starts, the average best cut over repetitions, and the average total
// cost of the configuration.
type ConfigurationPoint struct {
	Starts            int
	AvgBestCut        float64
	AvgSeconds        float64
	AvgNormalizedSecs float64
	// Cuts holds the per-repetition best cuts, for distribution reporting.
	Cuts []float64
}

// EvaluateConfigurations reproduces the Tables 4/5 protocol: for each entry
// of startCounts, run the best-of-k configuration reps times and average
// the best cut and total CPU time.
func EvaluateConfigurations(h Heuristic, startCounts []int, reps int, r *rng.RNG) []ConfigurationPoint {
	points, _ := EvaluateConfigurationsCtx(context.Background(), h, startCounts, reps, r)
	return points
}

// EvaluateConfigurationsCtx is EvaluateConfigurations under a context: the
// sweep stops between repetitions when ctx is cancelled, returning the fully
// evaluated configurations so far plus an incomplete flag. Partially
// evaluated configurations are dropped — an average over fewer repetitions
// than requested is not comparable to its neighbors. The per-repetition
// generator splits happen in the same order as the uncancelled sweep, so a
// run that is not interrupted is byte-identical to EvaluateConfigurations.
func EvaluateConfigurationsCtx(ctx context.Context, h Heuristic, startCounts []int, reps int, r *rng.RNG) (points []ConfigurationPoint, incomplete bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	points = make([]ConfigurationPoint, 0, len(startCounts))
	for _, k := range startCounts {
		cp := ConfigurationPoint{Starts: k, Cuts: make([]float64, 0, reps)}
		for rep := 0; rep < reps; rep++ {
			select {
			case <-ctx.Done():
				return points, true
			default:
			}
			best, secs, work := BestOfK(h, k, r.Split())
			cp.AvgBestCut += float64(best.Cut)
			cp.AvgSeconds += secs
			cp.AvgNormalizedSecs += float64(work) / WorkUnitsPerSecond
			cp.Cuts = append(cp.Cuts, float64(best.Cut))
		}
		cp.AvgBestCut /= float64(reps)
		cp.AvgSeconds /= float64(reps)
		cp.AvgNormalizedSecs /= float64(reps)
		points = append(points, cp)
	}
	return points, false
}
