package eval

import (
	"testing"

	"hgpart/internal/core"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func TestParallelMultistartDeterministicAcrossWorkerCounts(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(99))
	}
	run := func(workers int) []int64 {
		outcomes, best, bestIdx := ParallelMultistart(factory, 9, 41, workers)
		if best.P == nil || outcomes[bestIdx].Cut != best.Cut {
			t.Fatal("best bookkeeping broken")
		}
		cuts := make([]int64, len(outcomes))
		for i, o := range outcomes {
			cuts[i] = o.Cut
		}
		return cuts
	}
	a := run(1)
	b := run(4)
	c := run(9)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("start %d differs across worker counts: %d/%d/%d", i, a[i], b[i], c[i])
		}
	}
}

func TestParallelMultistartMatchesSequential(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(7))
	}
	// Sequential reference using the same per-start seed discipline.
	root := rng.New(55)
	ref := make([]int64, 6)
	seqH := factory()
	for i := range ref {
		ref[i] = seqH.Run(root.Split()).Cut
	}
	outcomes, _, _ := ParallelMultistart(factory, 6, 55, 3)
	for i := range ref {
		if outcomes[i].Cut != ref[i] {
			t.Fatalf("start %d: parallel %d vs sequential %d", i, outcomes[i].Cut, ref[i])
		}
	}
}

func TestParallelMultistartSinglePartitionRetained(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(3))
	}
	outcomes, best, bestIdx := ParallelMultistart(factory, 5, 2, 2)
	for i, o := range outcomes {
		if i == bestIdx {
			if o.P == nil {
				t.Fatal("best outcome lost its partition")
			}
			continue
		}
		if o.P != nil {
			t.Fatalf("non-best outcome %d retains a partition", i)
		}
	}
	if !best.P.Legal(bal) {
		t.Fatal("best partition illegal")
	}
}
