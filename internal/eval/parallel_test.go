package eval

import (
	"testing"

	"hgpart/internal/core"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func TestParallelMultistartDeterministicAcrossWorkerCounts(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(99))
	}
	run := func(workers int) []int64 {
		outcomes, best, bestIdx := ParallelMultistart(factory, 9, 41, workers)
		if best.P == nil || outcomes[bestIdx].Cut != best.Cut {
			t.Fatal("best bookkeeping broken")
		}
		cuts := make([]int64, len(outcomes))
		for i, o := range outcomes {
			cuts[i] = o.Cut
		}
		return cuts
	}
	a := run(1)
	b := run(4)
	c := run(9)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("start %d differs across worker counts: %d/%d/%d", i, a[i], b[i], c[i])
		}
	}
}

func TestParallelMultistartMatchesSequential(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(7))
	}
	// Sequential reference using the same per-start seed discipline.
	root := rng.New(55)
	ref := make([]int64, 6)
	seqH := factory()
	for i := range ref {
		ref[i] = seqH.Run(root.Split()).Cut
	}
	outcomes, _, _ := ParallelMultistart(factory, 6, 55, 3)
	for i := range ref {
		if outcomes[i].Cut != ref[i] {
			t.Fatalf("start %d: parallel %d vs sequential %d", i, outcomes[i].Cut, ref[i])
		}
	}
}

// Regression: n=0 used to index outcomes[bestIdx] on an empty slice and
// panic. It must return an empty result set and index -1, for any workers.
func TestParallelMultistartZeroStarts(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(3))
	}
	for _, workers := range []int{-1, 0, 1, 4} {
		outcomes, best, bestIdx := ParallelMultistart(factory, 0, 1, workers)
		if len(outcomes) != 0 || best.P != nil || bestIdx != -1 {
			t.Fatalf("workers=%d: want empty result for n=0, got %d outcomes bestIdx=%d", workers, len(outcomes), bestIdx)
		}
	}
}

// More workers than starts, and non-positive worker counts, must behave like
// a sane default and keep per-start determinism.
func TestParallelMultistartWorkerCountEdges(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(6))
	}
	run := func(workers int) []int64 {
		outcomes, best, bestIdx := ParallelMultistart(factory, 3, 77, workers)
		if bestIdx < 0 || best.P == nil {
			t.Fatalf("workers=%d: no best outcome", workers)
		}
		cuts := make([]int64, len(outcomes))
		for i, o := range outcomes {
			cuts[i] = o.Cut
		}
		return cuts
	}
	ref := run(1)
	for _, workers := range []int{-3, 0, 16} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d start %d: cut %d vs %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestParallelMultistartSinglePartitionRetained(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	factory := func() Heuristic {
		return NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(3))
	}
	outcomes, best, bestIdx := ParallelMultistart(factory, 5, 2, 2)
	for i, o := range outcomes {
		if i == bestIdx {
			if o.P == nil {
				t.Fatal("best outcome lost its partition")
			}
			continue
		}
		if o.P != nil {
			t.Fatalf("non-best outcome %d retains a partition", i)
		}
	}
	if !best.P.Legal(bal) {
		t.Fatal("best partition illegal")
	}
}
