package eval_test

// Harness acceptance tests: fault isolation, cancellation, budgets,
// retry-with-reseed, verification and checkpoint/resume — each proved with
// injected faults per the issue's acceptance criteria. These live in an
// external test package because internal/faultinject imports eval.

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/faultinject"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func harnessInstance(tb testing.TB) (*hypergraph.Hypergraph, partition.Balance) {
	tb.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "harness-test", Cells: 300, Nets: 330, AvgNetSize: 3.3,
		NumMacros: 2, MaxMacroFrac: 0.03, NumGlobalNets: 1,
		GlobalNetFrac: 0.02, Locality: 2, Seed: 5,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h, partition.NewBalance(h.TotalVertexWeight(), 0.10)
}

func flatFactory(h *hypergraph.Hypergraph, bal partition.Balance) func() eval.Heuristic {
	return func() eval.Heuristic {
		return eval.NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(17))
	}
}

func faultyFactory(h *hypergraph.Hypergraph, bal partition.Balance, cfg faultinject.Config) func() eval.Heuristic {
	inner := flatFactory(h, bal)
	return func() eval.Heuristic { return faultinject.Wrap(inner(), cfg) }
}

// A panicking start must be recorded as failed without aborting sibling
// starts, and the surviving outcomes must match a fault-free schedule of the
// same seeds.
func TestHarnessPanicIsolation(t *testing.T) {
	h, bal := harnessInstance(t)
	factory := faultyFactory(h, bal, faultinject.Config{PanicProb: 0.4, Salt: 9})
	rep := eval.RunMultistart(context.Background(), factory, 12, 31, eval.RunOptions{Workers: 4})

	if rep.Failed == 0 || rep.Completed == 0 {
		t.Fatalf("want a mix of failed and completed starts, got ok=%d failed=%d", rep.Completed, rep.Failed)
	}
	if rep.Incomplete || rep.Skipped != 0 {
		t.Fatalf("panics must not skip siblings: %+v", rep)
	}
	for _, sr := range rep.Results {
		if sr.Status != eval.StartFailed {
			continue
		}
		var pe *eval.PanicError
		if !errors.As(sr.Err, &pe) || !errors.Is(sr.Err, faultinject.ErrInjectedPanic) {
			t.Fatalf("start %d: failure not a recovered injected panic: %v", sr.Start, sr.Err)
		}
	}
	// The process survived and the successful starts are deterministic:
	// compare against a single-worker schedule.
	ref := eval.RunMultistart(context.Background(), factory, 12, 31, eval.RunOptions{Workers: 1})
	for i := range rep.Results {
		if rep.Results[i].Status != ref.Results[i].Status ||
			rep.Results[i].Outcome.Cut != ref.Results[i].Outcome.Cut {
			t.Fatalf("start %d differs from single-worker schedule", i)
		}
	}
}

// Bounded retry-with-reseed turns probabilistic panics into completed starts
// while recording the attempt count.
func TestHarnessRetryWithReseed(t *testing.T) {
	h, bal := harnessInstance(t)
	factory := faultyFactory(h, bal, faultinject.Config{PanicProb: 0.6, Salt: 3})
	rep := eval.RunMultistart(context.Background(), factory, 10, 44, eval.RunOptions{Workers: 3, MaxRetries: 16})
	if rep.Failed != 0 {
		t.Fatalf("retries should recover every start at p=0.6: %d failed", rep.Failed)
	}
	retried := 0
	for _, sr := range rep.Results {
		if sr.Attempts > 1 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no start needed a retry at PanicProb 0.6 over 10 starts — injection broken?")
	}
}

// cancellingHeuristic cancels the run's context after its third completed
// start, modeling an external kill arriving mid-sweep.
type cancellingHeuristic struct {
	eval.Heuristic
	runs   *atomic.Int64
	cancel context.CancelFunc
}

func (c *cancellingHeuristic) Run(r *rng.RNG) eval.Outcome {
	o := c.Heuristic.Run(r)
	if c.runs.Add(1) == 3 {
		c.cancel()
	}
	return o
}

// A cancelled context returns partial outcomes marked incomplete.
func TestHarnessCancellationReturnsPartialResults(t *testing.T) {
	h, bal := harnessInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var runs atomic.Int64
	inner := flatFactory(h, bal)
	factory := func() eval.Heuristic {
		return &cancellingHeuristic{Heuristic: inner(), runs: &runs, cancel: cancel}
	}
	rep := eval.RunMultistart(ctx, factory, 30, 7, eval.RunOptions{Workers: 2})
	if !rep.Incomplete || rep.Reason != "cancelled" {
		t.Fatalf("want incomplete/cancelled, got %+v", rep)
	}
	if rep.Completed < 3 || rep.Skipped == 0 {
		t.Fatalf("want partial completion, got ok=%d skipped=%d", rep.Completed, rep.Skipped)
	}
	// Completed outcomes are real results, not placeholders.
	for _, sr := range rep.Results {
		if sr.Status == eval.StartOK && sr.Outcome.Cut <= 0 {
			t.Fatalf("start %d completed with implausible cut %d", sr.Start, sr.Outcome.Cut)
		}
	}
	if rep.BestIdx < 0 || rep.Best.P == nil {
		t.Fatal("partial run should still surface a best partition")
	}
}

// A wall-clock budget stops dispatching but lets in-flight (stalled) starts
// finish.
func TestHarnessWallBudget(t *testing.T) {
	h, bal := harnessInstance(t)
	factory := faultyFactory(h, bal, faultinject.Config{StallProb: 1, StallFor: 30 * time.Millisecond})
	rep := eval.RunMultistart(context.Background(), factory, 16, 21,
		eval.RunOptions{Workers: 2, WallBudget: 45 * time.Millisecond})
	if !rep.Incomplete || rep.Reason != "wall-clock budget exhausted" {
		t.Fatalf("want wall-budget incomplete, got %+v", rep)
	}
	if rep.Completed == 0 || rep.Skipped == 0 {
		t.Fatalf("want partial completion under wall budget, got ok=%d skipped=%d", rep.Completed, rep.Skipped)
	}
}

// A work-unit budget is deterministic: with one worker, exactly one start
// completes before the counter trips.
func TestHarnessWorkBudget(t *testing.T) {
	h, bal := harnessInstance(t)
	rep := eval.RunMultistart(context.Background(), flatFactory(h, bal), 6, 13,
		eval.RunOptions{Workers: 1, WorkBudget: 1})
	if rep.Completed != 1 || rep.Skipped != 5 {
		t.Fatalf("work budget 1 with 1 worker: want 1 completed/5 skipped, got %d/%d", rep.Completed, rep.Skipped)
	}
	if !rep.Incomplete || rep.Reason != "work budget exhausted" {
		t.Fatalf("want work-budget incomplete, got %q", rep.Reason)
	}
}

// Same seed ⇒ same per-start outcomes regardless of worker count, even with
// panics and corruption firing and retries in play.
func TestHarnessDeterministicAcrossWorkersUnderFaults(t *testing.T) {
	h, bal := harnessInstance(t)
	cfg := faultinject.Config{PanicProb: 0.3, CorruptProb: 0.25, Salt: 12}
	opt := func(workers int) eval.RunOptions {
		return eval.RunOptions{Workers: workers, MaxRetries: 3, Verify: eval.VerifyOutcome(bal)}
	}
	base := eval.RunMultistart(context.Background(), faultyFactory(h, bal, cfg), 14, 64, opt(1))
	for _, workers := range []int{3, 8} {
		rep := eval.RunMultistart(context.Background(), faultyFactory(h, bal, cfg), 14, 64, opt(workers))
		for i := range base.Results {
			a, b := base.Results[i], rep.Results[i]
			if a.Status != b.Status || a.Attempts != b.Attempts || a.Outcome.Cut != b.Outcome.Cut || a.Outcome.Work != b.Outcome.Work {
				t.Fatalf("workers=%d start %d: (%v,%d,%d,%d) vs (%v,%d,%d,%d)", workers, i,
					a.Status, a.Attempts, a.Outcome.Cut, a.Outcome.Work,
					b.Status, b.Attempts, b.Outcome.Cut, b.Outcome.Work)
			}
		}
		if rep.Summary() != base.Summary() {
			t.Fatalf("workers=%d summary differs:\n%s\n%s", workers, base.Summary(), rep.Summary())
		}
	}
}

// Silent corruption — a partition modified after its cut was measured — must
// be converted into a recorded failure by outcome verification.
func TestHarnessVerifyCatchesSilentCorruption(t *testing.T) {
	h, bal := harnessInstance(t)
	factory := faultyFactory(h, bal, faultinject.Config{CorruptProb: 1})
	rep := eval.RunMultistart(context.Background(), factory, 5, 3,
		eval.RunOptions{Workers: 2, Verify: eval.VerifyOutcome(bal)})
	if rep.Failed != 5 || rep.Completed != 0 {
		t.Fatalf("all corrupted starts must fail verification: ok=%d failed=%d", rep.Completed, rep.Failed)
	}
	var iv *core.InvariantViolation
	if !errors.As(rep.Results[0].Err, &iv) {
		t.Fatalf("failure should be a structured invariant violation, got %v", rep.Results[0].Err)
	}
	// Without verification the corruption passes silently — the check is
	// what converts it into an error.
	unverified := eval.RunMultistart(context.Background(), factory, 5, 3, eval.RunOptions{Workers: 2})
	if unverified.Completed != 5 {
		t.Fatalf("control run without verify should complete: %+v", unverified)
	}
}

// A killed-then-resumed checkpointed run reproduces byte-identical aggregate
// statistics to an uninterrupted run with the same seed.
func TestHarnessCheckpointResumeReproducesStats(t *testing.T) {
	h, bal := harnessInstance(t)
	factory := flatFactory(h, bal)
	const n, seed = 10, 77
	path := filepath.Join(t.TempDir(), "run.jsonl")

	uninterrupted := eval.RunMultistart(context.Background(), factory, n, seed, eval.RunOptions{Workers: 3})

	// "Kill" a checkpointed run early via a tiny work budget.
	cp1, err := eval.OpenCheckpoint(path, "flat", seed, n, false)
	if err != nil {
		t.Fatal(err)
	}
	killed := eval.RunMultistart(context.Background(), factory, n, seed,
		eval.RunOptions{Workers: 3, WorkBudget: 1, Checkpoint: cp1})
	if err := cp1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cp1.Close(); err != nil {
		t.Fatal(err)
	}
	if !killed.Incomplete || killed.Completed == 0 || killed.Skipped == 0 {
		t.Fatalf("interrupted run not actually partial: %+v", killed)
	}

	// Resume: journaled starts are skipped, the rest run fresh.
	cp2, err := eval.OpenCheckpoint(path, "flat", seed, n, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Resumed() != killed.Completed+killed.Failed {
		t.Fatalf("journal holds %d starts, interrupted run finished %d", cp2.Resumed(), killed.Completed+killed.Failed)
	}
	resumed := eval.RunMultistart(context.Background(), factory, n, seed,
		eval.RunOptions{Workers: 3, Checkpoint: cp2})
	if resumed.Resumed == 0 {
		t.Fatal("resume did not reuse any journaled start")
	}
	if resumed.Incomplete {
		t.Fatalf("resumed run incomplete: %+v", resumed)
	}
	for i := range uninterrupted.Results {
		if uninterrupted.Results[i].Outcome.Cut != resumed.Results[i].Outcome.Cut {
			t.Fatalf("start %d: uninterrupted cut %d vs resumed %d", i,
				uninterrupted.Results[i].Outcome.Cut, resumed.Results[i].Outcome.Cut)
		}
	}
	if a, b := uninterrupted.Summary(), resumed.Summary(); a != b {
		t.Fatalf("aggregate statistics differ:\nuninterrupted: %s\nresumed:       %s", a, b)
	}

	// A journal must never be replayed into a different experiment.
	if _, err := eval.OpenCheckpoint(path, "flat", seed+1, n, true); err == nil {
		t.Fatal("resume with a different seed must be refused")
	}
	if _, err := eval.OpenCheckpoint(path, "ml", seed, n, true); err == nil {
		t.Fatal("resume with a different heuristic name must be refused")
	}
}

// Debug-mode engine invariant checking must not change results — it only
// observes — and the harness must convert an engine-internal violation
// (delivered as a panic) into a failed start. The healthy engine is its own
// control here.
func TestHarnessEngineDebugModeIsTransparent(t *testing.T) {
	h, bal := harnessInstance(t)
	checked := func() eval.Heuristic {
		cfg := core.StrongConfig(false)
		cfg.CheckInvariants = true
		return eval.NewFlat("flat", h, cfg, bal, rng.New(17))
	}
	plain := eval.RunMultistart(context.Background(), flatFactory(h, bal), 6, 11, eval.RunOptions{Workers: 2})
	debug := eval.RunMultistart(context.Background(), checked, 6, 11, eval.RunOptions{Workers: 2})
	if debug.Failed != 0 {
		t.Fatalf("healthy engine failed its own invariants: %v", debug.Results)
	}
	for i := range plain.Results {
		if plain.Results[i].Outcome.Cut != debug.Results[i].Outcome.Cut {
			t.Fatalf("start %d: debug mode changed the result", i)
		}
	}
}

// MultistartRobust with no faults must reproduce Multistart exactly — the
// experiment drivers rely on this to keep published tables stable.
func TestMultistartRobustMatchesMultistart(t *testing.T) {
	h, bal := harnessInstance(t)
	f := flatFactory(h, bal)
	a, abest := eval.Multistart(f(), 7, rng.New(23))
	b, bbest, info := eval.MultistartRobust(context.Background(), f(), 7, rng.New(23), eval.VerifyOutcome(bal))
	if info.Failed != 0 || info.Incomplete || info.Completed != 7 {
		t.Fatalf("robust run misbehaved: %+v", info)
	}
	if len(a) != len(b) || abest.Cut != bbest.Cut {
		t.Fatalf("sample counts or best differ: %d/%d, %d/%d", len(a), len(b), abest.Cut, bbest.Cut)
	}
	for i := range a {
		if a[i].Cut != b[i].Cut || a[i].Work != b[i].Work {
			t.Fatalf("sample %d differs: cut %d/%d work %d/%d", i, a[i].Cut, b[i].Cut, a[i].Work, b[i].Work)
		}
	}
	// And a cancelled context stops between starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, _, info2 := eval.MultistartRobust(ctx, f(), 7, rng.New(23), nil)
	if !info2.Incomplete || len(s) != 0 {
		t.Fatalf("pre-cancelled robust multistart should do nothing: %+v", info2)
	}
}
