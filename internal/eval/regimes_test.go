package eval

import (
	"context"
	"math"
	"testing"

	"hgpart/internal/core"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func TestBestWithinBudget(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	f := NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(21))

	// Calibrate: one start's normalized cost.
	one := f.Run(rng.New(22))
	perStart := one.NormalizedSeconds()

	best, starts, spent := BestWithinBudget(context.Background(), f, perStart*5, rng.New(23))
	if best.P == nil || !best.P.Legal(bal) {
		t.Fatal("budget regime produced no legal result")
	}
	if starts < 2 {
		t.Fatalf("budget of ~5 starts ran only %d", starts)
	}
	if spent < perStart {
		t.Fatal("spent less than one start")
	}
	// Tiny budget: still exactly one start.
	_, starts1, _ := BestWithinBudget(context.Background(), f, perStart/100, rng.New(24))
	if starts1 != 1 {
		t.Fatalf("tiny budget ran %d starts, want 1", starts1)
	}
}

func TestPrunedMultistart(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	best, cuts, pruned := PrunedMultistart(context.Background(), h, core.StrongConfig(false), bal, 12, 1, 1.05, rng.New(25))
	if best.P == nil || !best.P.Legal(bal) {
		t.Fatal("pruned multistart no result")
	}
	if len(cuts) != 12 {
		t.Fatalf("%d cut records", len(cuts))
	}
	// With a tight 1.05 factor, some starts should get pruned on this
	// noisy flat engine.
	if pruned == 0 {
		t.Log("warning: no starts pruned (acceptable but unusual)")
	}
	// The best is at least as good as any completed start's record.
	for _, c := range cuts {
		if c < best.Cut {
			// A pruned start's recorded (partial) cut may be lower only if
			// it was pruned before completing; the best tracks completed
			// starts. Ensure the discrepancy is explained by pruning.
			if pruned == 0 {
				t.Fatalf("cut record %d better than best %d without pruning", c, best.Cut)
			}
		}
	}
}

func TestCutDistribution(t *testing.T) {
	samples := []Outcome{{Cut: 10}, {Cut: 20}, {Cut: 30}, {Cut: 40}, {Cut: 50}}
	d := NewCutDistribution(samples)
	if d.Mean != 30 {
		t.Fatalf("mean %v", d.Mean)
	}
	if d.Quantile[50] != 30 {
		t.Fatalf("median %v", d.Quantile[50])
	}
	if d.Quantile[5] >= d.Quantile[95] {
		t.Fatal("quantiles not ordered")
	}
	if math.Abs(d.StdDev-math.Sqrt(250)) > 1e-9 {
		t.Fatalf("stddev %v", d.StdDev)
	}
	empty := NewCutDistribution(nil)
	if len(empty.Sorted) != 0 {
		t.Fatal("empty distribution not empty")
	}
}

func TestProbBest(t *testing.T) {
	// A strictly better and equally fast: probability approaches 1.
	a := []Outcome{{Cut: 10, Work: WorkUnitsPerSecond}, {Cut: 11, Work: WorkUnitsPerSecond}}
	b := []Outcome{{Cut: 20, Work: WorkUnitsPerSecond}, {Cut: 21, Work: WorkUnitsPerSecond}}
	if p := ProbBest(a, b, 2, true); p != 1 {
		t.Fatalf("dominating heuristic prob %v, want 1", p)
	}
	if p := ProbBest(b, a, 2, true); p != 0 {
		t.Fatalf("dominated heuristic prob %v, want 0", p)
	}
	// Identical distributions: P(A strictly better) symmetric with ties;
	// it must be strictly below 1 and equal both ways.
	if pab, pba := ProbBest(a, a, 2, true), ProbBest(a, a, 2, true); pab != pba || pab >= 1 {
		t.Fatalf("self comparison %v/%v", pab, pba)
	}
	// Budget too small for either: tie at 0.5.
	if p := ProbBest(a, b, 0.001, true); p != 0.5 {
		t.Fatalf("no-finisher prob %v, want 0.5", p)
	}
	// Only A finishes.
	slowB := []Outcome{{Cut: 5, Work: 100 * WorkUnitsPerSecond}}
	if p := ProbBest(a, slowB, 2, true); p != 1 {
		t.Fatalf("only-A-finishes prob %v, want 1", p)
	}
}

func TestProbBestFasterWinsSmallBudget(t *testing.T) {
	// B has better cuts but is 10x slower; at a budget fitting only B
	// zero times, A must win; at a huge budget B should win.
	a := []Outcome{{Cut: 100, Work: WorkUnitsPerSecond / 10}, {Cut: 110, Work: WorkUnitsPerSecond / 10}}
	b := []Outcome{{Cut: 50, Work: WorkUnitsPerSecond * 2}, {Cut: 55, Work: WorkUnitsPerSecond * 2}}
	if p := ProbBest(a, b, 0.5, true); p != 1 {
		t.Fatalf("small budget: %v, want 1", p)
	}
	if p := ProbBest(a, b, 50, true); p != 0 {
		t.Fatalf("large budget: %v, want 0", p)
	}
}
