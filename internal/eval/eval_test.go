package eval

import (
	"math"
	"testing"
	"testing/quick"

	"hgpart/internal/core"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

func instance(tb testing.TB) *hypergraph.Hypergraph {
	tb.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "eval-test", Cells: 400, Nets: 440, AvgNetSize: 3.4,
		NumMacros: 3, MaxMacroFrac: 0.03, NumGlobalNets: 1,
		GlobalNetFrac: 0.02, Locality: 2, Seed: 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

func TestFlatHeuristicRun(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	f := NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(1))
	if f.Name() != "flat" {
		t.Fatal("name")
	}
	o := f.Run(rng.New(2))
	if o.P == nil || o.Cut != o.P.Cut() || !o.P.Legal(bal) {
		t.Fatal("flat outcome invalid")
	}
	if o.Work <= 0 {
		t.Fatal("no work recorded")
	}
	if o.NormalizedSeconds() != float64(o.Work)/WorkUnitsPerSecond {
		t.Fatal("normalized seconds wrong")
	}
	// Flat has no polish step.
	if p := f.PolishBest(o.P, rng.New(3)); p.P != nil {
		t.Fatal("flat PolishBest should be a no-op")
	}
}

func TestMLHeuristicRunAndPolish(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	m := NewML("ml", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 1)
	o := m.Run(rng.New(4))
	if o.P == nil || !o.P.Legal(bal) {
		t.Fatal("ML outcome invalid")
	}
	before := o.P.Cut()
	pol := m.PolishBest(o.P, rng.New(5))
	if pol.P == nil {
		t.Fatal("ML PolishBest should act")
	}
	if pol.Cut > before {
		t.Fatalf("V-cycle polish worsened: %d -> %d", before, pol.Cut)
	}
	// VCycles == 0 disables polish.
	m0 := NewML("ml0", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 0)
	if p := m0.PolishBest(o.P, rng.New(6)); p.P != nil {
		t.Fatal("VCycles=0 should disable polish")
	}
}

func TestMultistartBestIsMin(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	f := NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(7))
	samples, best := Multistart(f, 8, rng.New(8))
	if len(samples) != 8 {
		t.Fatalf("%d samples", len(samples))
	}
	mn := samples[0].Cut
	for _, s := range samples {
		if s.Cut < mn {
			mn = s.Cut
		}
		if s.P != nil {
			t.Fatal("samples must not retain partitions")
		}
	}
	if best.Cut != mn || best.P == nil {
		t.Fatalf("best %d (min %d)", best.Cut, mn)
	}
}

func TestMultistartDeterministic(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	run := func() []int64 {
		f := NewFlat("flat", h, core.StrongConfig(false), bal, rng.New(9))
		samples, _ := Multistart(f, 5, rng.New(10))
		cuts := make([]int64, len(samples))
		for i, s := range samples {
			cuts[i] = s.Cut
		}
		return cuts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("multistart not reproducible at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBestOfKAccounting(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	m := NewML("ml", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 1)
	best, secs, work := BestOfK(m, 3, rng.New(11))
	if best.P == nil || !best.P.Legal(bal) {
		t.Fatal("BestOfK invalid")
	}
	if secs <= 0 || work <= 0 {
		t.Fatal("no cost recorded")
	}
	if best.Work != work || best.Seconds != secs {
		t.Fatal("best outcome should carry total configuration cost")
	}
}

func TestEvaluateConfigurationsShape(t *testing.T) {
	h := instance(t)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	m := NewML("ml", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 0)
	pts := EvaluateConfigurations(m, []int{1, 4}, 3, rng.New(12))
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Starts != 1 || pts[1].Starts != 4 {
		t.Fatal("start counts")
	}
	if len(pts[0].Cuts) != 3 {
		t.Fatal("reps not recorded")
	}
	// More starts must not be cheaper, and should not average worse by much.
	if pts[1].AvgNormalizedSecs <= pts[0].AvgNormalizedSecs {
		t.Fatal("4 starts not more expensive than 1")
	}
	if pts[1].AvgBestCut > pts[0].AvgBestCut*1.25 {
		t.Fatalf("best-of-4 (%f) much worse than best-of-1 (%f)",
			pts[1].AvgBestCut, pts[0].AvgBestCut)
	}
}

func TestExpectedBestOfK(t *testing.T) {
	cuts := []float64{10, 20, 30, 40}
	if got := ExpectedBestOfK(cuts, 1); !closeTo(got, 25, 1e-9) {
		t.Fatalf("k=1: %v", got)
	}
	// k large: converges to the minimum.
	if got := ExpectedBestOfK(cuts, 1000); !closeTo(got, 10, 1e-6) {
		t.Fatalf("k=1000: %v", got)
	}
	// Exact k=2 value: E[min of 2 draws with replacement] =
	// sum c_(i) * ((n-i+1)^2 - (n-i)^2)/n^2 = (10*7+20*5+30*3+40*1)/16.
	want := (10.0*7 + 20*5 + 30*3 + 40*1) / 16.0
	if got := ExpectedBestOfK(cuts, 2); !closeTo(got, want, 1e-9) {
		t.Fatalf("k=2: %v want %v", got, want)
	}
}

func TestExpectedBestMonotoneInK(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + int(seed%20)
		cuts := make([]float64, n)
		for i := range cuts {
			cuts[i] = 100 + 50*r.Float64()
		}
		sortFloat(cuts)
		prev := math.Inf(1)
		for k := 1; k <= 32; k *= 2 {
			e := ExpectedBestOfK(cuts, k)
			if e > prev+1e-9 {
				return false
			}
			if e < cuts[0]-1e-9 || e > cuts[n-1]+1e-9 {
				return false
			}
			prev = e
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBSFCurve(t *testing.T) {
	samples := []Outcome{
		{Cut: 100, Work: WorkUnitsPerSecond}, // 1 normalized second each
		{Cut: 120, Work: WorkUnitsPerSecond},
		{Cut: 80, Work: WorkUnitsPerSecond},
	}
	pts := BSFCurve(samples, []float64{0.5, 1, 3}, true)
	if len(pts) != 3 {
		t.Fatal("points")
	}
	if pts[0].Starts != 0 || !math.IsInf(pts[0].ExpectedBest, 1) {
		t.Fatal("sub-single-start budget should be Inf")
	}
	if pts[1].Starts != 1 || !closeTo(pts[1].ExpectedBest, 100, 1e-9) {
		t.Fatalf("1-start point: %+v", pts[1])
	}
	if pts[2].Starts != 3 || pts[2].ExpectedBest >= pts[1].ExpectedBest {
		t.Fatalf("3-start point should improve: %+v", pts[2])
	}
	if BSFCurve(nil, []float64{1}, true) != nil {
		t.Fatal("empty samples should give nil")
	}
}

func TestDominatesAndPareto(t *testing.T) {
	a := PerfPoint{"a", 10, 1}
	b := PerfPoint{"b", 12, 2}
	c := PerfPoint{"c", 8, 3}
	d := PerfPoint{"d", 14, 4} // dominated by b (and a)
	if !Dominates(a, b) || Dominates(b, a) {
		t.Fatal("Dominates wrong")
	}
	if Dominates(a, c) || Dominates(c, a) {
		t.Fatal("incomparable points must not dominate")
	}
	front := ParetoFrontier([]PerfPoint{a, b, c, d})
	if len(front) != 2 {
		t.Fatalf("frontier size %d: %+v", len(front), front)
	}
	if front[0].Label != "a" || front[1].Label != "c" {
		t.Fatalf("frontier %+v", front)
	}
}

func TestParetoAgainstBruteForce(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + int(seed%15)
		pts := make([]PerfPoint, n)
		for i := range pts {
			pts[i] = PerfPoint{Cost: float64(r.Intn(10)), Seconds: float64(r.Intn(10))}
		}
		front := ParetoFrontier(pts)
		inFront := func(p PerfPoint) bool {
			for _, q := range front {
				if q == p {
					return true
				}
			}
			return false
		}
		for _, p := range pts {
			dominated := false
			for _, q := range pts {
				if q != p && Dominates(q, p) {
					dominated = true
					break
				}
			}
			if dominated == inFront(p) && dominated {
				return false // dominated point on frontier
			}
			if !dominated && !inFront(p) {
				return false // non-dominated point missing
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRankingDiagram(t *testing.T) {
	fast := []Outcome{{Cut: 100, Work: WorkUnitsPerSecond / 10}}
	slowGood := []Outcome{{Cut: 50, Work: WorkUnitsPerSecond}}
	cells := RankingDiagram(map[int]map[string][]Outcome{
		1000: {"fast": fast, "slowgood": slowGood},
	}, []float64{0.2, 2}, true)
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	// Small budget: only the fast heuristic finishes a start.
	if cells[0].Winner != "fast" {
		t.Fatalf("small-budget winner %q", cells[0].Winner)
	}
	// Large budget: the better heuristic wins.
	if cells[1].Winner != "slowgood" {
		t.Fatalf("large-budget winner %q", cells[1].Winner)
	}
}

func closeTo(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func sortFloat(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
