// Package gorolifecycle requires every go statement in the concurrent
// layers to spawn a goroutine with a provable lifecycle:
//
//   - Termination: every unconditional for{} loop in the spawned body must
//     contain an exit — a return (the ctx.Done-select worker pattern), an
//     unlabeled break belonging to that loop, or a panic. Conditional and
//     range loops are accepted as bounded (a range over a channel ends when
//     the channel closes).
//   - Join: the spawned body must make its completion observable — call
//     Done() on a sync.WaitGroup, or close/send on a channel declared
//     outside the body (a captured channel for a literal, a parameter or
//     struct field for a named function). A goroutine nobody can wait for
//     outlives drains, leaks under restart loops, and turns graceful
//     shutdown into a race.
//
// The spawned body is the literal's body for go func(){...}(), or the
// same-package declaration for go m.worker(). A spawn whose body cannot be
// resolved in the package (function values, cross-package calls) is flagged:
// its lifecycle is not verifiable here, so it must either be wrapped in a
// literal that carries the evidence or annotated with
// //hglint:ignore gorolifecycle <reason>.
//
// When the spawn is a literal, the join is missing, and the enclosing
// method's receiver has a sync.WaitGroup field, the finding carries a
// suggested fix adding the wg.Add(1) / defer wg.Done() pair.
//
// The daemon's drain contract (DESIGN.md §10), the cluster coordinator's
// Close (§12), and the harness's worker joins (PR 1) all assume goroutines
// that can be waited out — this analyzer makes that assumption checkable.
package gorolifecycle

import (
	"go/ast"
	"go/token"
	"go/types"

	"hgpart/internal/lint/analysis"
)

// TargetPackages are the module-relative package roots whose go statements
// are checked: every layer that spawns goroutines with shutdown obligations.
var TargetPackages = []string{
	"cmd/hgchaos",
	"cmd/hgserved",
	"internal/chaos",
	"internal/core",
	"internal/eval",
	"internal/portfolio",
	"internal/service",
}

// Analyzer is the gorolifecycle pass.
var Analyzer = &analysis.Analyzer{
	Name: "gorolifecycle",
	Doc:  "go statements must spawn goroutines with a provable termination path and an observable join",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatchesAny(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	// Index same-package function declarations so go m.worker() resolves.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGo(pass, g, decls, fd)
				}
				return true
			})
		}
	}
	return nil
}

func checkGo(pass *analysis.Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl, enclosing *ast.FuncDecl) {
	var body *ast.BlockStmt
	var lit *ast.FuncLit
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		lit = fun
		body = fun.Body
	case *ast.Ident:
		if fd := decls[pass.TypesInfo.Uses[fun]]; fd != nil {
			body = fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.TypesInfo.Uses[fun.Sel]]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		pass.Reportf(g.Pos(),
			"go statement spawns a function whose body cannot be resolved in this package; its lifecycle is unverifiable — wrap it in a literal carrying the termination/join evidence or annotate why it may dangle")
		return
	}
	if loop := unboundedLoop(body); loop != nil {
		pass.Reportf(g.Pos(),
			"spawned goroutine has no provable termination path: the for loop at line %d never returns, breaks, or panics; add a ctx.Done() select case or a bounded exit",
			pass.Fset.Position(loop.Pos()).Line)
	}
	if !joined(pass, body) {
		d := analysis.Diagnostic{
			Pos:     g.Pos(),
			Message: "spawned goroutine is never joined: no WaitGroup.Done and no close/send on a channel from the enclosing scope; a drain cannot wait for it — add wg.Add(1)/defer wg.Done() or annotate why it may dangle",
		}
		if fix := joinFix(pass, g, lit, enclosing); fix != nil {
			d.SuggestedFixes = []analysis.SuggestedFix{*fix}
		}
		pass.Report(d)
	}
}

// unboundedLoop returns the first for{} loop in body (outside nested
// function literals) with no reachable exit, or nil.
func unboundedLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true
		}
		if !exits(loop.Body.List, true) {
			found = loop
			return false
		}
		return true
	})
	return found
}

// exits reports whether the statement list contains a way out of the
// enclosing unconditional loop: a return, a panic, or — while breakOK — an
// unlabeled break. Crossing into a nested loop, switch, or select retargets
// unlabeled break, so breakOK drops; returns keep counting.
func exits(stmts []ast.Stmt, breakOK bool) bool {
	for _, s := range stmts {
		if stmtExits(s, breakOK) {
			return true
		}
	}
	return false
}

func stmtExits(s ast.Stmt, breakOK bool) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return breakOK && s.Tok == token.BREAK && s.Label == nil
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return exits(s.List, breakOK)
	case *ast.IfStmt:
		if exits(s.Body.List, breakOK) {
			return true
		}
		if s.Else != nil {
			return stmtExits(s.Else, breakOK)
		}
	case *ast.LabeledStmt:
		return stmtExits(s.Stmt, breakOK)
	case *ast.ForStmt:
		return exits(s.Body.List, false)
	case *ast.RangeStmt:
		return exits(s.Body.List, false)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok && exits(cc.Body, false) {
				return true
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok && exits(cc.Body, false) {
				return true
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && exits(cc.Body, false) {
				return true
			}
		}
	}
	return false
}

// joined reports whether body makes its completion observable: a
// WaitGroup.Done call, or a close/send on a channel declared outside body.
func joined(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" && isWaitGroup(pass, fun.X) {
					found = true
				}
			case *ast.Ident:
				if fun.Name == "close" && len(n.Args) == 1 && outsideRef(pass, n.Args[0], body) {
					found = true
				}
			}
		case *ast.SendStmt:
			if outsideRef(pass, n.Chan, body) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isWaitGroup(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// outsideRef reports whether e refers to something declared outside body —
// a captured local, a parameter, or a struct field — so an observer on the
// other end can exist.
func outsideRef(pass *analysis.Pass, e ast.Expr, body *ast.BlockStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			// A field or package-qualified name lives outside the body.
			return true
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			return obj != nil && (obj.Pos() < body.Pos() || obj.Pos() > body.End())
		default:
			return false
		}
	}
}

// joinFix builds the wg.Add(1)/defer wg.Done() repair when the spawn is a
// non-empty literal and the enclosing method's receiver carries a
// sync.WaitGroup field.
func joinFix(pass *analysis.Pass, g *ast.GoStmt, lit *ast.FuncLit, enclosing *ast.FuncDecl) *analysis.SuggestedFix {
	if lit == nil || len(lit.Body.List) == 0 || enclosing == nil || enclosing.Recv == nil {
		return nil
	}
	if len(enclosing.Recv.List) != 1 || len(enclosing.Recv.List[0].Names) != 1 {
		return nil
	}
	recv := enclosing.Recv.List[0]
	wgName := ""
	t := pass.TypesInfo.Types[recv.Type].Type
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	stru, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < stru.NumFields(); i++ {
		f := stru.Field(i)
		if named, ok := f.Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				wgName = f.Name()
				break
			}
		}
	}
	if wgName == "" {
		return nil
	}
	wg := recv.Names[0].Name + "." + wgName
	return &analysis.SuggestedFix{
		Message: "join via " + wg,
		TextEdits: []analysis.TextEdit{
			{Pos: g.Pos(), End: g.Pos(), NewText: []byte(wg + ".Add(1)\n\t")},
			{Pos: lit.Body.List[0].Pos(), End: lit.Body.List[0].Pos(), NewText: []byte("defer " + wg + ".Done()\n\t\t")},
		},
	}
}
