// Package other is outside gorolifecycle's target packages; even a blatant
// leak may not produce a finding here.
package other

func Leak(ch chan int) {
	go func() {
		for {
			v := <-ch
			_ = v
		}
	}()
}
