// Package service is a gorolifecycle fixture modeled on the real daemon
// shapes: worker pools joined through a WaitGroup, ctx.Done select loops,
// completion channels, and the leak patterns the analyzer must catch.
package service

import (
	"context"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	jobs chan int
}

// start spawns range-over-channel workers joined via the WaitGroup.
func (p *pool) start(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				_ = j
			}
		}()
	}
}

// watch runs the canonical ctx.Done worker loop.
func (p *pool) watch(ctx context.Context) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-p.jobs:
				_ = j
			}
		}
	}()
}

// sleeper closes a captured channel: straight-line body, observable end.
func sleeper(d int) chan struct{} {
	done := make(chan struct{})
	go func() {
		_ = d
		close(done)
	}()
	return done
}

// runOne reports completion by sending on a captured buffered channel.
func runOne(f func() error) chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- f()
	}()
	return errc
}

// breaker exits its for{} with an unlabeled break owned by the loop.
func (p *pool) breaker() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			if <-p.jobs == 0 {
				break
			}
		}
	}()
}

// run spawns a resolved same-package method that carries its own evidence.
func (p *pool) run() {
	p.wg.Add(1)
	go p.worker()
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		_ = j
	}
}

// leak has neither an exit from its for{} nor any join evidence.
func (p *pool) leak() {
	go func() { // want "no provable termination path" "never joined"
		for {
			j := <-p.jobs
			_ = j
		}
	}()
}

// fire terminates but is unjoined: the suggested-fix case (receiver has wg).
func (p *pool) fire() {
	go func() { // want "never joined"
		j := <-p.jobs
		_ = j
	}()
}

// switchBreak's break belongs to the switch, not the for{}: still unbounded.
func (p *pool) switchBreak() {
	p.wg.Add(1)
	go func() { // want "no provable termination path"
		defer p.wg.Done()
		for {
			switch <-p.jobs {
			case 0:
				break
			}
		}
	}()
}

// runForever resolves to a method with neither exit nor join.
func (p *pool) runForever() {
	go p.forever() // want "no provable termination path" "never joined"
}

func (p *pool) forever() {
	for {
		j := <-p.jobs
		_ = j
	}
}

// spawnUnknown launches a function value: unverifiable here.
func spawnUnknown(f func()) {
	go f() // want "cannot be resolved in this package"
}

// innerChannel closes a channel nobody outside can see: not a join.
func (p *pool) innerChannel() {
	go func() { // want "never joined"
		sub := make(chan struct{})
		close(sub)
	}()
}
