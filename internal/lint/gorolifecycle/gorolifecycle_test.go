package gorolifecycle_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hgpart/internal/lint/analysis"
	"hgpart/internal/lint/gorolifecycle"
	"hgpart/internal/lint/linttest"
)

func TestGoroLifecycle(t *testing.T) {
	linttest.Run(t, "testdata", gorolifecycle.Analyzer,
		"hgpart/internal/service",
		"other",
	)
}

// TestSuggestedFix asserts the wg.Add(1)/defer wg.Done() repair appears on
// the unjoined-literal finding when the receiver carries a WaitGroup.
func TestSuggestedFix(t *testing.T) {
	src := filepath.Join("testdata", "src")
	loader := analysis.NewLoader(src, "")
	pkgs, err := loader.Load("hgpart/internal/service")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.Run(src, pkgs, []*analysis.Analyzer{gorolifecycle.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawFix bool
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		sawFix = true
		fix := f.Fixes[0]
		if len(fix.TextEdits) != 2 {
			t.Fatalf("fix has %d edits, want 2 (Add before the go, Done at body top)", len(fix.TextEdits))
		}
		if !strings.Contains(string(fix.TextEdits[0].NewText), ".Add(1)") {
			t.Errorf("first edit %q does not add wg.Add(1)", fix.TextEdits[0].NewText)
		}
		if !strings.Contains(string(fix.TextEdits[1].NewText), "defer ") ||
			!strings.Contains(string(fix.TextEdits[1].NewText), ".Done()") {
			t.Errorf("second edit %q does not defer wg.Done()", fix.TextEdits[1].NewText)
		}
	}
	if !sawFix {
		t.Error("no finding carried the wg join suggested fix")
	}
}
