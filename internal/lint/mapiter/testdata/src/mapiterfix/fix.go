// Fixture for the suggested fix: collect-keys idiom with no "sort" import,
// so the fix must both insert the sort call and extend the import block.
package mapiterfix

import (
	"fmt"
)

func Collect(m map[int]string) []int {
	var keys []int
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	fmt.Println(keys)
	return keys
}
