// Fixture: every mapiter sink kind plus the exemptions.
package mapitertest

import (
	"fmt"
	"sort"
)

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // clean: sorted in a following statement
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectSortedSlice(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // clean: sort.Slice mentions the target
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func printLoop(m map[string]int) {
	for k, v := range m { // want "range over map m"
		fmt.Println(k, v)
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "range over map m"
		sum += v
	}
	return sum
}

func intAccum(m map[string]int) int {
	sum := 0
	for _, v := range m { // clean: integer accumulation is order-free
		sum += v
	}
	return sum
}

func sendLoop(m map[string]int, ch chan string) {
	for k := range m { // want "range over map m"
		ch <- k
	}
}

func annotated(m map[string]int) []string {
	var keys []string
	//hglint:ignore mapiter key order is irrelevant for this probe
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func buildIndex(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m { // clean: keyed writes are order-free
		inv[v] = k
	}
	return inv
}

func localOnly(m map[string]int) int {
	n := 0
	for k := range m { // clean: append target is loop-local
		parts := []byte(k)
		parts = append(parts, '.')
		n += len(parts)
	}
	return n
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs { // clean: not a map
		out = append(out, x)
	}
	return out
}
