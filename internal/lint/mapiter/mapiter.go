// Package mapiter flags range statements over maps whose loop body feeds a
// result that depends on iteration order.
//
// Go randomizes map iteration order on purpose, so a map range that appends
// to a slice, writes output, sends on a channel or accumulates a float makes
// the program's observable result differ from run to run — the exact
// nondeterminism the paper's reproducible-reporting methodology forbids
// (tables and figures must be byte-comparable across runs and machines).
//
// The canonical repair is recognized and exempted automatically: collect the
// keys, sort them, and iterate the sorted slice —
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys) // ← makes the collection loop above clean
//	for _, k := range keys { ... }
//
// A map range whose only order-dependent effect is collecting into slices
// that are all sorted later in the same block is not reported. For the
// simple collect-keys form the analyzer attaches a suggested fix inserting
// the sort call (applied by hglint -fix). Anything else needs either a key
// sort or an explicit //hglint:ignore mapiter <reason> annotation.
package mapiter

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"hgpart/internal/lint/analysis"
)

// Analyzer is the mapiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "forbid result-affecting iteration over maps in unsorted key order (appends, output writes, channel sends, float accumulation)",
	Run:  run,
}

// sink is one order-dependent effect inside a map-range body.
type sink struct {
	pos  token.Pos
	desc string
	// appendTo is the outer slice appended to, when the sink is an append
	// (the only sink kind the sorted-later exemption applies to).
	appendTo types.Object
	// appendsKeyOnly reports that the append's sole added element is the
	// range key variable itself (the collect-keys idiom).
	appendsKeyOnly bool
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			stmts := stmtList(n)
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkRange(pass, file, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list of nodes that carry one.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func checkRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, after []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sinks := collectSinks(pass, rs)
	if len(sinks) == 0 {
		return
	}

	// Sorted-later exemption: every sink is an append, and every appended-to
	// slice is sorted in a following statement of the same block.
	allSortedAppends := true
	for _, s := range sinks {
		if s.appendTo == nil || !sortedLater(pass, s.appendTo, after) {
			allSortedAppends = false
			break
		}
	}
	if allSortedAppends {
		return
	}

	d := analysis.Diagnostic{
		Pos: rs.Pos(),
		Message: fmt.Sprintf(
			"range over map %s: %s depends on nondeterministic iteration order; iterate sorted keys or annotate //hglint:ignore mapiter <reason>",
			exprString(pass, rs.X), sinks[0].desc),
	}
	if fix, ok := sortKeysFix(pass, file, rs, sinks); ok {
		d.SuggestedFixes = []analysis.SuggestedFix{fix}
	}
	pass.Report(d)
}

// collectSinks walks the range body for order-dependent effects.
func collectSinks(pass *analysis.Pass, rs *ast.RangeStmt) []sink {
	var sinks []sink
	keyObj := rangeKeyObject(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			sinks = append(sinks, assignSinks(pass, rs, n, keyObj)...)
		case *ast.SendStmt:
			sinks = append(sinks, sink{pos: n.Pos(), desc: "a channel send"})
		case *ast.CallExpr:
			if desc, ok := outputCall(pass, n); ok {
				sinks = append(sinks, sink{pos: n.Pos(), desc: desc})
			}
		}
		return true
	})
	return sinks
}

func rangeKeyObject(pass *analysis.Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func assignSinks(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, keyObj types.Object) []sink {
	var sinks []sink
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			target := baseObject(pass, as.Lhs[i])
			if target == nil || declaredWithin(target, rs) {
				continue
			}
			keyOnly := len(call.Args) == 2 && !call.Ellipsis.IsValid() &&
				keyObj != nil && baseObject(pass, call.Args[1]) == keyObj
			sinks = append(sinks, sink{
				pos:            as.Pos(),
				desc:           fmt.Sprintf("an append to %s declared outside the loop", target.Name()),
				appendTo:       target,
				appendsKeyOnly: keyOnly,
			})
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Float accumulation is order-dependent (float addition is not
		// associative); integer accumulation is order-free and allowed.
		for _, lhs := range as.Lhs {
			target := baseObject(pass, lhs)
			if target == nil || declaredWithin(target, rs) {
				continue
			}
			if b, ok := target.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				sinks = append(sinks, sink{
					pos:  as.Pos(),
					desc: fmt.Sprintf("a float accumulation into %s (float addition is not associative)", target.Name()),
				})
			}
		}
	}
	return sinks
}

// outputCall reports calls that externalize data: fmt printers,
// io.WriteString, and methods conventionally writing to a sink (Write*,
// Encode, AddRow).
func outputCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
				return "output written via fmt." + name, true
			}
		case "io":
			if name == "WriteString" {
				return "output written via io.WriteString", true
			}
		}
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch {
		case strings.HasPrefix(name, "Write"), name == "Encode", name == "AddRow":
			return "output written via " + name, true
		}
	}
	return "", false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// baseObject resolves an expression to its root variable: x, x.f and x[i]
// all resolve to x.
func baseObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() >= n.Pos() && obj.Pos() < n.End()
}

// sortedLater reports whether a sort call mentioning obj appears in the
// statements following the range loop.
func sortedLater(pass *analysis.Pass, obj types.Object, after []ast.Stmt) bool {
	for _, s := range after {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				mentioned := false
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						mentioned = true
					}
					return !mentioned
				})
				if mentioned {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// sortKeysFix builds the suggested fix for the collect-keys idiom: a single
// append target collecting only the range key, with a sortable element
// type. The fix inserts the matching sort call right after the loop.
func sortKeysFix(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, sinks []sink) (analysis.SuggestedFix, bool) {
	var target types.Object
	for _, s := range sinks {
		if s.appendTo == nil || !s.appendsKeyOnly {
			return analysis.SuggestedFix{}, false
		}
		if target != nil && s.appendTo != target {
			return analysis.SuggestedFix{}, false
		}
		target = s.appendTo
	}
	if target == nil {
		return analysis.SuggestedFix{}, false
	}
	slice, ok := target.Type().Underlying().(*types.Slice)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	elem, ok := slice.Elem().(*types.Basic)
	if !ok {
		return analysis.SuggestedFix{}, false
	}
	var sortFn string
	switch elem.Kind() {
	case types.String:
		sortFn = "sort.Strings"
	case types.Int:
		sortFn = "sort.Ints"
	case types.Float64:
		sortFn = "sort.Float64s"
	default:
		return analysis.SuggestedFix{}, false
	}

	indent := strings.Repeat("\t", pass.Fset.Position(rs.Pos()).Column-1)
	insert := fmt.Sprintf("\n%s%s(%s)", indent, sortFn, target.Name())
	edits := []analysis.TextEdit{{Pos: rs.End(), End: rs.End(), NewText: []byte(insert)}}
	if edit, ok := ensureImport(file, "sort"); ok {
		edits = append(edits, edit)
	} else if !hasImport(file, "sort") {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message:   fmt.Sprintf("sort the collected keys: insert %s(%s) after the loop", sortFn, target.Name()),
		TextEdits: edits,
	}, true
}

func hasImport(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}

// ensureImport returns an edit adding path to the file's parenthesized
// import block, or ok=false when the import already exists or there is no
// block to extend.
func ensureImport(file *ast.File, path string) (analysis.TextEdit, bool) {
	if hasImport(file, path) {
		return analysis.TextEdit{}, false
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		last := gd.Specs[len(gd.Specs)-1]
		text := fmt.Sprintf("\n\t%q", path)
		return analysis.TextEdit{Pos: last.End(), End: last.End(), NewText: []byte(text)}, true
	}
	return analysis.TextEdit{}, false
}

func exprString(pass *analysis.Pass, e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return exprString(pass, sel.X) + "." + sel.Sel.Name
	}
	return "expression"
}
