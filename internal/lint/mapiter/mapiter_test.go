package mapiter_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hgpart/internal/lint/analysis"
	"hgpart/internal/lint/linttest"
	"hgpart/internal/lint/mapiter"
)

func TestMapiter(t *testing.T) {
	linttest.Run(t, "testdata", mapiter.Analyzer, "mapitertest", "mapiterfix")
}

// TestSortKeysFix applies the suggested fix to a copy of the mapiterfix
// fixture and checks the rewritten file sorts the keys, imports sort, and
// still parses.
func TestSortKeysFix(t *testing.T) {
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "src", "mapiterfix")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join("testdata", "src", "mapiterfix", "fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "fix.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	loader := analysis.NewLoader(filepath.Join(tmp, "src"), "")
	pkgs, err := loader.Load("mapiterfix")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(filepath.Join(tmp, "src"), pkgs, []*analysis.Analyzer{mapiter.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if len(findings[0].Fixes) != 1 {
		t.Fatalf("finding carries %d fixes, want 1", len(findings[0].Fixes))
	}

	changed, err := analysis.ApplyFixes(loader.Fset(), findings)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(changed) != 1 {
		t.Fatalf("changed %d files, want 1: %v", len(changed), changed)
	}

	fixed, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	text := string(fixed)
	if !strings.Contains(text, "sort.Ints(keys)") {
		t.Errorf("fixed file lacks sort.Ints(keys):\n%s", text)
	}
	if !strings.Contains(text, `"sort"`) {
		t.Errorf("fixed file lacks the sort import:\n%s", text)
	}
	if _, err := parser.ParseFile(token.NewFileSet(), target, fixed, 0); err != nil {
		t.Errorf("fixed file no longer parses: %v", err)
	}

	// The fixed fixture must now be clean.
	loader2 := analysis.NewLoader(filepath.Join(tmp, "src"), "")
	pkgs2, err := loader2.Load("mapiterfix")
	if err != nil {
		t.Fatalf("reloading fixed fixture: %v", err)
	}
	after, err := analysis.Run(filepath.Join(tmp, "src"), pkgs2, []*analysis.Analyzer{mapiter.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Errorf("fixed fixture still has findings: %v", after)
	}
}
