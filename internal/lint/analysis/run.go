package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// Finding is one reported, unsuppressed diagnostic in driver form: stable,
// machine-readable file/line/analyzer/message coordinates (the JSON shape
// hglint -json emits for pre-commit hooks and CI annotations).
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the module-root-relative, slash-separated file path.
	File string `json:"file"`
	// Line and Col are the finding's 1-based position.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the finding.
	Message string `json:"message"`
	// Fixes carries any suggested repairs (not serialized; applied by
	// hglint -fix).
	Fixes []SuggestedFix `json:"-"`
}

// String renders the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Options tunes the driver beyond the default Run behavior.
type Options struct {
	// ReportStale turns unused //hglint:ignore directives into findings
	// (under the "hglint" pseudo-analyzer): a suppression that no longer
	// suppresses anything has outlived its bug and must be deleted, not
	// left to silently mask the next regression at the same site.
	ReportStale bool
}

// Run applies every analyzer to every package and returns the surviving
// findings (ignore directives applied), sorted by file, line, column and
// analyzer. modRoot anchors the relative file paths. Malformed ignore
// directives are reported as findings under the "hglint" pseudo-analyzer.
func Run(modRoot string, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunWith(modRoot, pkgs, analyzers, Options{})
}

// RunWith is Run with explicit driver options.
func RunWith(modRoot string, pkgs []*Package, analyzers []*Analyzer, opts Options) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		// Parse each file's suppression directives once per package.
		dirs := make([]*directives, len(pkg.Files))
		relFiles := make([]string, len(pkg.Files))
		for i, f := range pkg.Files {
			relFiles[i] = relPath(modRoot, pkg.Fset, f.Pos())
			dirs[i] = parseDirectives(pkg.Fset, f, known, relFiles[i])
			findings = append(findings, dirs[i].problems...)
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				suppressed := false
				for i, f := range pkg.Files {
					tf := pkg.Fset.File(f.Pos())
					if tf != nil && tf.Name() == pos.Filename && dirs[i].suppressed(a.Name, pos.Line) {
						suppressed = true
						break
					}
				}
				if suppressed {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					File:     relTo(modRoot, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
					Fixes:    d.SuggestedFixes,
				})
			}
		}
		if opts.ReportStale {
			for i, dir := range dirs {
				for _, e := range dir.entries {
					if e.used {
						continue
					}
					scope := "ignore"
					if e.isFile {
						scope = "file-ignore"
					}
					findings = append(findings, Finding{
						Analyzer: DirectiveAnalyzer, File: relFiles[i], Line: e.line, Col: e.col,
						Message: fmt.Sprintf("stale suppression: //hglint:%s no longer suppresses any %s finding; delete the directive or reintroduce the reason it documents", scope, e.analyzer),
					})
				}
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

func relPath(modRoot string, fset *token.FileSet, pos token.Pos) string {
	tf := fset.File(pos)
	if tf == nil {
		return ""
	}
	return relTo(modRoot, tf.Name())
}

func relTo(modRoot, path string) string {
	if rel, err := filepath.Rel(modRoot, path); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// ApplyFixes applies every suggested fix attached to findings to the files
// on disk and returns the changed file names. Edits are applied
// last-position-first per file; overlapping edits are an error.
func ApplyFixes(fset *token.FileSet, findings []Finding) ([]string, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	for _, f := range findings {
		for _, fix := range f.Fixes {
			for _, te := range fix.TextEdits {
				p := fset.Position(te.Pos)
				end := p.Offset
				if te.End.IsValid() {
					end = fset.Position(te.End).Offset
				}
				byFile[p.Filename] = append(byFile[p.Filename], edit{p.Offset, end, te.NewText})
			}
		}
	}
	var changed []string
	for file, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, err
		}
		prevStart := len(src) + 1
		for _, e := range edits {
			if e.end > prevStart || e.start > e.end || e.end > len(src) {
				return changed, fmt.Errorf("%s: overlapping or out-of-range suggested fixes", file)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prevStart = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return changed, err
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	return changed, nil
}
