package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadRepo loads and type-checks the whole module the way cmd/hglint
// does, proving the source-based loader is sound against real code.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module from source")
	}
	modRoot, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("FindModule: %v", err)
	}
	if modPath != "hgpart" {
		t.Fatalf("module path = %q, want hgpart", modPath)
	}
	l := NewLoader(modRoot, modPath)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded %d packages, expected at least 20", len(pkgs))
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		seen[pkg.PkgPath] = true
		if pkg.Types == nil || pkg.TypesInfo == nil || len(pkg.Files) == 0 {
			t.Errorf("%s: incomplete package", pkg.PkgPath)
		}
	}
	for _, want := range []string{"hgpart/internal/eval", "hgpart/internal/experiments", "hgpart/cmd/hgpart"} {
		if !seen[want] {
			t.Errorf("package %s not loaded", want)
		}
	}
}

func TestPathMatchesAny(t *testing.T) {
	cases := []struct {
		path  string
		roots []string
		want  bool
	}{
		{"hgpart/internal/eval", []string{"internal/eval"}, true},
		{"hgpart/internal/eval/sub", []string{"internal/eval"}, true},
		{"internal/eval", []string{"internal/eval"}, true},
		{"hgpart/internal/evaluate", []string{"internal/eval"}, false},
		{"hgpart/cmd/hgpart", []string{"cmd"}, true},
		{"hgpart/internal/report", []string{"internal/eval", "internal/core"}, false},
	}
	for _, c := range cases {
		if got := PathMatchesAny(c.path, c.roots); got != c.want {
			t.Errorf("PathMatchesAny(%q, %v) = %v, want %v", c.path, c.roots, got, c.want)
		}
	}
}

func TestParseDirectives(t *testing.T) {
	src := `package p

func a() {
	bad() //hglint:ignore alpha reason here
}

func b() {
	//hglint:ignore alpha,beta covers the next line
	bad()
}

//hglint:file-ignore beta whole file exempt

func c() {
	bad() //hglint:ignore alpha
	bad() //hglint:ignore gamma unknown analyzer
}
`
	dir := t.TempDir()
	name := filepath.Join(dir, "p.go")
	if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"alpha": true, "beta": true}
	d := parseDirectives(fset, f, known, "p.go")

	if !d.suppressed("alpha", 4) {
		t.Error("trailing directive should suppress alpha on its own line (4)")
	}
	if !d.suppressed("alpha", 9) || !d.suppressed("alpha", 8) {
		t.Error("standalone directive should suppress alpha on lines 8 and 9")
	}
	if !d.suppressed("beta", 9) {
		t.Error("comma list should suppress beta on line 9")
	}
	if !d.suppressed("beta", 16) {
		t.Error("file-ignore should suppress beta anywhere")
	}
	if d.suppressed("alpha", 16) {
		t.Error("alpha must not be suppressed on line 16")
	}

	if len(d.problems) != 2 {
		t.Fatalf("got %d directive problems, want 2: %v", len(d.problems), d.problems)
	}
	for _, p := range d.problems {
		if p.Analyzer != DirectiveAnalyzer {
			t.Errorf("problem reported under %q, want %q", p.Analyzer, DirectiveAnalyzer)
		}
	}
	if d.problems[0].Line != 15 {
		t.Errorf("missing-reason problem on line %d, want 15", d.problems[0].Line)
	}
	if d.problems[1].Line != 16 {
		t.Errorf("unknown-analyzer problem on line %d, want 16", d.problems[1].Line)
	}
}

// TestStaleSuppressionAudit proves RunWith(ReportStale) flags exactly the
// ignore directives that no longer suppress anything, leaving live ones
// alone. A fake analyzer flags every call to bad(); the fixture suppresses
// one real finding (live), one call site that was since fixed (stale), and
// carries a file-ignore for an analyzer that never fires (stale).
func TestStaleSuppressionAudit(t *testing.T) {
	src := `package p

//hglint:file-ignore beta nothing in this file ever triggers beta

func bad() {}
func good() {}

func f() {
	bad() //hglint:ignore alpha live suppression of a real finding
	good() //hglint:ignore alpha stale: the bad call was removed
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	alpha := &Analyzer{
		Name: "alpha",
		Doc:  "flags calls to bad",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
							pass.Reportf(call.Pos(), "call to bad")
						}
					}
					return true
				})
			}
			return nil
		},
	}
	beta := &Analyzer{Name: "beta", Doc: "never fires", Run: func(*Pass) error { return nil }}

	l := NewLoader(dir, "m")
	pkgs, err := l.Load(".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Default driver: the live suppression eats the finding, nothing else.
	quiet, err := Run(dir, pkgs, []*Analyzer{alpha, beta})
	if err != nil {
		t.Fatal(err)
	}
	if len(quiet) != 0 {
		t.Fatalf("Run without ReportStale: got findings %v, want none", quiet)
	}

	got, err := RunWith(dir, pkgs, []*Analyzer{alpha, beta}, Options{ReportStale: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d stale findings, want 2: %v", len(got), got)
	}
	for _, f := range got {
		if f.Analyzer != DirectiveAnalyzer {
			t.Errorf("stale finding under %q, want %q", f.Analyzer, DirectiveAnalyzer)
		}
		if !strings.Contains(f.Message, "stale suppression") {
			t.Errorf("message %q does not mention stale suppression", f.Message)
		}
	}
	if got[0].Line != 3 || !strings.Contains(got[0].Message, "beta") {
		t.Errorf("first stale finding = %v, want the beta file-ignore on line 3", got[0])
	}
	if got[1].Line != 10 || !strings.Contains(got[1].Message, "alpha") {
		t.Errorf("second stale finding = %v, want the alpha ignore on line 10", got[1])
	}
}
