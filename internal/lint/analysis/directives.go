package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// Ignore directives are the lint suite's escape hatch. The format is
//
//	//hglint:ignore <analyzer>[,<analyzer>...] <reason>
//
// which suppresses the named analyzers' findings on the directive's own line
// — or, when the directive stands alone on its line, on the next source
// line. The reason is mandatory: an unexplained suppression is exactly the
// kind of implicit decision the paper's methodology forbids. A whole file
// can be exempted with
//
//	//hglint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// Malformed directives (unknown analyzer, missing reason) are themselves
// reported as findings under the pseudo-analyzer name "hglint", so a typo
// cannot silently disable a check.

const (
	ignorePrefix     = "//hglint:ignore "
	fileIgnorePrefix = "//hglint:file-ignore "
	// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
	// directives are reported.
	DirectiveAnalyzer = "hglint"
)

// directiveEntry is one parsed (analyzer, scope) pair of a directive: a
// single //hglint:ignore a,b comment produces one entry per analyzer name.
// Entries remember whether they ever suppressed a diagnostic so the strict
// driver can flag stale suppressions that outlived their bug.
type directiveEntry struct {
	analyzer string
	// line/col locate the directive comment itself.
	line, col int
	// covers are the source lines this entry suppresses (the directive's own
	// line, plus the next line for stand-alone directives); nil for
	// file-level entries.
	covers []int
	isFile bool
	used   bool
}

// directives is the parsed suppression state of one file.
type directives struct {
	// line maps analyzer name -> set of suppressed lines.
	line map[string]map[int]bool
	// file is the set of analyzers suppressed for the whole file.
	file map[string]bool
	// entries records every well-formed directive for the stale audit.
	entries []*directiveEntry
	// problems are malformed-directive findings.
	problems []Finding
}

func (d *directives) suppressed(analyzer string, line int) bool {
	hit := false
	if d.file[analyzer] {
		hit = true
	} else if d.line[analyzer][line] {
		hit = true
	}
	if !hit {
		return false
	}
	for _, e := range d.entries {
		if e.analyzer != analyzer {
			continue
		}
		if e.isFile {
			e.used = true
			continue
		}
		for _, l := range e.covers {
			if l == line {
				e.used = true
			}
		}
	}
	return true
}

// parseDirectives extracts hglint directives from one parsed file. known is
// the set of valid analyzer names. src may be nil, in which case the file is
// read from disk to decide whether a directive stands alone on its line.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool, relFile string) *directives {
	d := &directives{line: map[string]map[int]bool{}, file: map[string]bool{}}
	var src []byte
	if tf := fset.File(f.Pos()); tf != nil {
		src, _ = os.ReadFile(tf.Name())
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			isFile := strings.HasPrefix(text, fileIgnorePrefix)
			if !isFile && !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(strings.TrimPrefix(text, fileIgnorePrefix), ignorePrefix)
			names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
			if strings.TrimSpace(reason) == "" {
				d.problems = append(d.problems, Finding{
					Analyzer: DirectiveAnalyzer, File: relFile, Line: pos.Line, Col: pos.Column,
					Message: "ignore directive needs a reason: //hglint:ignore <analyzer> <reason>",
				})
				continue
			}
			for _, name := range strings.Split(names, ",") {
				name = strings.TrimSpace(name)
				if !known[name] {
					d.problems = append(d.problems, Finding{
						Analyzer: DirectiveAnalyzer, File: relFile, Line: pos.Line, Col: pos.Column,
						Message: "ignore directive names unknown analyzer " + strconvQuote(name),
					})
					continue
				}
				entry := &directiveEntry{analyzer: name, line: pos.Line, col: pos.Column, isFile: isFile}
				d.entries = append(d.entries, entry)
				if isFile {
					d.file[name] = true
					continue
				}
				if d.line[name] == nil {
					d.line[name] = map[int]bool{}
				}
				d.line[name][pos.Line] = true
				entry.covers = append(entry.covers, pos.Line)
				if standsAlone(src, fset, c.Pos()) {
					d.line[name][pos.Line+1] = true
					entry.covers = append(entry.covers, pos.Line+1)
				}
			}
		}
	}
	return d
}

// standsAlone reports whether only whitespace precedes the token at pos on
// its source line (so an ignore directive on its own line covers the next
// line, the statement it annotates).
func standsAlone(src []byte, fset *token.FileSet, pos token.Pos) bool {
	if src == nil {
		return false
	}
	p := fset.Position(pos)
	if p.Offset > len(src) {
		return false
	}
	lineStart := p.Offset - (p.Column - 1)
	if lineStart < 0 {
		return false
	}
	return strings.TrimSpace(string(src[lineStart:p.Offset])) == ""
}

func strconvQuote(s string) string { return `"` + s + `"` }
