package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Dir is the package's directory on disk.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo is the type-checker's expression/object information.
	TypesInfo *types.Info
}

// Loader loads and type-checks packages of one module plus their standard
// library dependencies (imported from source, so no compiled export data or
// network access is required).
type Loader struct {
	// ModRoot is the module root directory.
	ModRoot string
	// ModPath is the module path from go.mod. When empty, import paths map
	// directly onto directories under ModRoot (the layout linttest uses for
	// fixture trees).
	ModPath string

	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Package // by import path; nil entry = in progress
}

// NewLoader returns a loader for the module rooted at modRoot with module
// path modPath (may be empty; see Loader.ModPath).
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*Package{},
	}
}

// FindModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func FindModule(dir string) (modRoot, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves the patterns and returns the matched packages, loaded and
// type-checked, in import-path order. A pattern is a directory relative to
// the module root ("internal/eval", "." for the root package), optionally
// with a "/..." suffix ("./..." loads every package in the module). Type
// errors in a matched package are returned as errors; analyzers need sound
// type information.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		root := filepath.Join(l.ModRoot, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(root) && !seen[root] {
				seen[root] = true
				dirs = append(dirs, root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module; stay out of it.
			if path != root {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			if hasGoFiles(path) && !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if l.ModPath == "" {
			return "", fmt.Errorf("cannot load module root without a module path")
		}
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module root %s", dir, l.ModRoot)
	}
	if l.ModPath == "" {
		return rel, nil
	}
	return l.ModPath + "/" + rel, nil
}

// dirFor maps an import path to a module directory, or "" when the path does
// not belong to this module.
func (l *Loader) dirFor(path string) string {
	if l.ModPath != "" {
		if path == l.ModPath {
			return l.ModRoot
		}
		if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
			return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
		}
		return ""
	}
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(path))
	if hasGoFiles(dir) {
		return dir
	}
	return ""
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

// Import implements types.Importer: module-local packages are loaded from
// source within the module, everything else comes from the standard library
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return pkg, nil
	}
	l.loaded[path] = nil // cycle guard

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}

	pkg := &Package{
		PkgPath:   path,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}
