// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic,
// SuggestedFix) plus a module-aware package loader and a driver.
//
// The repository's determinism lints (cmd/hglint) are expressed against this
// package exactly as they would be against x/tools; only the driver plumbing
// differs. Everything here is built on the standard library's go/ast,
// go/parser, go/types and go/importer so the lint suite works in hermetic
// build environments with no module downloads.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //hglint:ignore
	// directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package being analyzed.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression and object maps.
	TypesInfo *types.Info
	// report collects diagnostics; use Report/Reportf.
	report func(Diagnostic)
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos is where the finding anchors (start of the offending node).
	Pos token.Pos
	// End optionally marks the end of the offending range.
	End token.Pos
	// Message describes the finding.
	Message string
	// SuggestedFixes optionally carry mechanical repairs (applied by
	// hglint -fix).
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained repair.
type SuggestedFix struct {
	// Message describes the repair.
	Message string
	// TextEdits are the byte-range replacements implementing it.
	TextEdits []TextEdit
}

// TextEdit replaces the source bytes in [Pos, End) with NewText.
// Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// PathMatchesAny reports whether the import path pkgPath lies inside any of
// the package roots in roots. A root is a module-relative path fragment such
// as "internal/core" or "cmd"; pkgPath matches when one of its
// slash-separated suffixstrings starts with the root — e.g.
// "hgpart/internal/core" and "hgpart/internal/core/sub" both match
// "internal/core", while "hgpart/internal/corext" does not.
func PathMatchesAny(pkgPath string, roots []string) bool {
	for _, root := range roots {
		if pathMatches(pkgPath, root) {
			return true
		}
	}
	return false
}

func pathMatches(pkgPath, root string) bool {
	for {
		if pkgPath == root || strings.HasPrefix(pkgPath, root+"/") {
			return true
		}
		i := strings.Index(pkgPath, "/")
		if i < 0 {
			return false
		}
		pkgPath = pkgPath[i+1:]
	}
}
