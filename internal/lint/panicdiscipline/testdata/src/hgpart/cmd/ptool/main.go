// Fixture: a user-reachable CLI package exercising the panic boundary
// policy.
package main

import "hgpart/internal/core"

func main() {
	if bad() {
		panic("boom") // want "panic in user-reachable package"
	}
	run()
}

func bad() bool { return false }

func run() {
	panic("cannot parse input") // want "panic in user-reachable package"
}

func checkInvariant() {
	panic(&core.InvariantViolation{Kind: "cut mismatch"}) // clean: structured invariant signal
}

func checkInvariantValue() {
	panic(core.InvariantViolation{Kind: "cut mismatch"}) // clean: value form allowed too
}

func mustParse(s string) string {
	if s == "" {
		panic("empty flag value") // clean: must* helper crashes on programmer error
	}
	return s
}

func MustEnv(k string) string {
	if k == "" {
		panic("empty key") // clean: Must* helper
	}
	return k
}

func init() {
	if bad() {
		panic("inconsistent build configuration") // clean: init-time setup
	}
}

func annotated() {
	panic("legacy path") //hglint:ignore panicdiscipline scheduled for removal, tracked in ROADMAP
}
