// Stub of the real internal/core package: the structured panic payload the
// boundary policy permits.
package core

type InvariantViolation struct{ Kind string }

func (e *InvariantViolation) Error() string { return e.Kind }
