// Fixture: a deep internal package, outside the user-reachable set — panics
// on contract violations are the documented policy here.
package engine

func Step(n int) int {
	if n < 0 {
		panic("Step: negative n (caller bug)")
	}
	return n + 1
}
