// Package panicdiscipline enforces the repository's panic boundary policy
// (DESIGN.md "Boundary policy from the panic audit"): user-reachable code —
// command-line tools and the netlist parsers that consume arbitrary user
// bytes — validates input and returns errors; it never panics on bad data.
//
// Within those packages a panic is allowed only when it is
//
//   - a *core.InvariantViolation (the structured internal-corruption signal
//     the evaluation harness knows how to recover), or
//   - inside an init function or a must*/Must* helper, whose documented
//     contract is to crash on programmer error during setup.
//
// Everything else must surface as an error. Deeper internal packages keep
// panicking on out-of-contract arguments (programming errors); they are not
// in this analyzer's scope.
package panicdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"hgpart/internal/lint/analysis"
)

// UserReachablePackages are the module-relative package roots where user
// input arrives: the CLI binaries, the netlist parsers, the HTTP service (a
// malformed request must produce a 4xx, never a panic), and the chaos layer
// (a user-supplied -chaos spec must produce an error, and injected faults
// must surface as errors to the code under test, never as panics).
var UserReachablePackages = []string{
	"cmd",
	"internal/chaos",
	"internal/netlist",
	"internal/service",
}

// Analyzer is the panicdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "panicdiscipline",
	Doc:  "in user-reachable packages (cmd, internal/netlist, internal/service), panic only with *core.InvariantViolation or inside init/must* helpers; user input gets errors",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatchesAny(pass.Pkg.Path(), UserReachablePackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if exemptFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if len(call.Args) == 1 && isInvariantViolation(pass, call.Args[0]) {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in user-reachable package %s: boundary policy is to validate input and return an error (or panic with *core.InvariantViolation, or move the check into an init/must* helper)",
					pass.Pkg.Path())
				return true
			})
		}
	}
	return nil
}

func exemptFunc(name string) bool {
	return name == "init" || strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must")
}

// isInvariantViolation reports whether the expression's type is
// core.InvariantViolation or a pointer to it.
func isInvariantViolation(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "InvariantViolation" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "internal/core" || strings.HasSuffix(p, "/internal/core")
}
