package panicdiscipline_test

import (
	"testing"

	"hgpart/internal/lint/linttest"
	"hgpart/internal/lint/panicdiscipline"
)

func TestPanicDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", panicdiscipline.Analyzer,
		"hgpart/cmd/ptool",
		"hgpart/internal/engine",
	)
}
