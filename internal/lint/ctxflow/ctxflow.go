// Package ctxflow requires the experiment-driver layers (internal/eval,
// internal/experiments) to keep multistart sweeps cancellable.
//
// The paper's protocols are long — "the equivalent of nearly 10,000 starts
// for each test case" — and the harness's whole fault-tolerance story (PR 1)
// rests on cancellation reaching every loop that runs starts. An exported
// function in the driver packages whose body loops over heuristic starts
// must therefore accept a context.Context — directly, or via an options
// struct carrying a Ctx field — and actually consult it: either the
// function checks ctx.Done()/ctx.Err() itself, or each starts loop hands
// the context (or the options value that carries it) to the callee doing
// the work.
//
// "Loops over starts" is detected by callee name: a loop whose body calls
// Heuristic.Run or one of the multistart drivers (Multistart,
// RunMultistart, BestOfK, ...) is a starts loop. Unexported helpers and
// packages outside the driver layer are not constrained.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"hgpart/internal/lint/analysis"
)

// TargetPackages are the module-relative package roots whose exported
// functions are checked. internal/chaos and cmd/hgchaos join the driver
// layer: retry loops and kill/restart scenario sweeps are long-running by
// design and must stay cancellable the same way multistart sweeps are.
// internal/service and cmd/hgserved join with the cluster work (DESIGN.md
// §12): any exported service entry point that loops over starts — or grows
// one — must keep the job's context threaded through, or a dead client
// could pin a worker forever.
var TargetPackages = []string{
	"cmd/hgchaos",
	"cmd/hgserved",
	"internal/chaos",
	"internal/eval",
	"internal/experiments",
	"internal/portfolio",
	"internal/service",
}

// startCallNames are callee names that run heuristic starts. A loop body
// containing one of these calls makes the loop a "starts loop".
var startCallNames = map[string]bool{
	"Run": true, "RunPruned": true, "runAttempt": true, "runStart": true,
	"Multistart": true, "MultistartRobust": true, "RunMultistart": true,
	"ParallelMultistart": true, "BestOfK": true, "BestWithinBudget": true,
	"PrunedMultistart": true, "EvaluateConfigurations": true,
	"EvaluateConfigurationsCtx": true, "minAvgCell": true,
}

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported functions in internal/eval and internal/experiments that loop over starts must accept and consult a context.Context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatchesAny(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	loops := startsLoops(pass, fd.Body)
	if len(loops) == 0 {
		return
	}

	ctxParams := map[types.Object]bool{}
	carriers := map[types.Object]bool{}
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				switch {
				case isContext(obj.Type()):
					ctxParams[obj] = true
				case carriesContext(obj.Type()):
					carriers[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)

	if len(ctxParams) == 0 && len(carriers) == 0 {
		pass.Reportf(fd.Name.Pos(),
			"%s loops over heuristic starts but accepts no context.Context (directly or via an options struct with a Ctx field); long sweeps must be cancellable",
			fd.Name.Name)
		return
	}

	// The function as a whole passes when it explicitly consults the
	// context anywhere (ctx.Done/ctx.Err, o.Ctx, o.ctx()).
	if consultsContext(pass, fd.Body, ctxParams, carriers) {
		return
	}
	// Otherwise every starts loop must hand the context (or its carrier) to
	// the callee doing the work.
	for _, loop := range loops {
		if !loopThreadsContext(pass, loop, ctxParams, carriers) {
			pass.Reportf(loop.Pos(),
				"%s runs heuristic starts in a loop that neither checks ctx.Done()/ctx.Err() nor passes the context (or its carrying options value) to the callee; cancellation cannot reach this sweep",
				fd.Name.Name)
		}
	}
}

// startsLoops returns every for/range statement in body whose body contains
// a start-running call (closures included: a loop inside a func literal
// still runs starts on behalf of this function).
func startsLoops(pass *analysis.Pass, body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		if containsStartCall(pass, loopBody) {
			loops = append(loops, n.(ast.Stmt))
		}
		return true
	})
	return loops
}

func containsStartCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if startCallNames[fun.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if startCallNames[fun.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// consultsContext reports an explicit context consultation anywhere in n:
// ctx.Done()/ctx.Err() on a context parameter, a carrier's .Ctx field, or a
// carrier method whose name mentions ctx.
func consultsContext(pass *analysis.Pass, n ast.Node, ctxParams, carriers map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[base]
		switch {
		case ctxParams[obj]:
			if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" || sel.Sel.Name == "Deadline" {
				found = true
			}
		case carriers[obj]:
			if sel.Sel.Name == "Ctx" || strings.Contains(strings.ToLower(sel.Sel.Name), "ctx") {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopThreadsContext reports whether, inside the loop, the context or its
// carrier flows into a call: the ctx parameter as an argument, the carrier
// as an argument, or a method invoked on the carrier (which can consult the
// Ctx it carries).
func loopThreadsContext(pass *analysis.Pass, loop ast.Stmt, ctxParams, carriers map[types.Object]bool) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if base, ok := sel.X.(*ast.Ident); ok && carriers[pass.TypesInfo.Uses[base]] {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			switch a := arg.(type) {
			case *ast.Ident:
				if ctxParams[pass.TypesInfo.Uses[a]] || carriers[pass.TypesInfo.Uses[a]] {
					found = true
					return false
				}
			case *ast.CallExpr:
				// o.ctx() passed as an argument.
				if sel, ok := a.Fun.(*ast.SelectorExpr); ok {
					if base, ok := sel.X.(*ast.Ident); ok && carriers[pass.TypesInfo.Uses[base]] {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// carriesContext reports whether t (or *t) is a struct with a direct field
// of type context.Context.
func carriesContext(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContext(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
