// Fixture: a package outside the driver layer — ctxflow must stay silent.
package other

type Heuristic interface {
	Run(seed uint64) int
}

func Sweep(h Heuristic, n int) int {
	best := 0
	for i := 0; i < n; i++ {
		best += h.Run(uint64(i))
	}
	return best
}
