// Fixture: a driver package (path suffix internal/eval) exercising every
// ctxflow rule.
package eval

import "context"

type Heuristic interface {
	Run(seed uint64) int
}

// NoCtx loops over starts with no way to cancel.
func NoCtx(h Heuristic, n int) int { // want "accepts no context.Context"
	best := 0
	for i := 0; i < n; i++ {
		best += h.Run(uint64(i))
	}
	return best
}

// WithCtx consults the context inside the sweep.
func WithCtx(ctx context.Context, h Heuristic, n int) int {
	best := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		best += h.Run(uint64(i))
	}
	return best
}

// Options carries the context for table/figure drivers.
type Options struct {
	Ctx  context.Context
	Runs int
}

func (o Options) ctx() context.Context { return o.Ctx }

func (o Options) minAvgCell(h Heuristic) int {
	total := 0
	for i := 0; i < o.Runs; i++ {
		if o.ctx() != nil && o.ctx().Err() != nil {
			break
		}
		total += h.Run(uint64(i))
	}
	return total
}

// CarrierThreaded hands each iteration to a method on the carrier, which
// consults the Ctx it carries.
func CarrierThreaded(o Options, hs []Heuristic) int {
	total := 0
	for _, h := range hs {
		total += o.minAvgCell(h)
	}
	return total
}

// CarrierUnthreaded accepts the carrier but never lets its context reach
// the sweep.
func CarrierUnthreaded(o Options, h Heuristic) int {
	total := 0
	for i := 0; i < o.Runs; i++ { // want "cancellation cannot reach"
		total += h.Run(uint64(i))
	}
	return total
}

// PassThrough threads ctx into the callee each start.
func PassThrough(ctx context.Context, h Heuristic, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += observe(ctx, h.Run(uint64(i)))
	}
	return total
}

func observe(ctx context.Context, v int) int {
	if ctx.Err() != nil {
		return 0
	}
	return v
}

// Workers drains starts on a goroutine; the dispatcher consults ctx.
func Workers(ctx context.Context, h Heuristic, n int) int {
	next := make(chan int)
	done := make(chan int)
	go func() {
		total := 0
		for i := range next {
			total += h.Run(uint64(i))
		}
		done <- total
	}()
	count := 0
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
			count++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	return count + <-done
}

// Mean is a pure reduction: no starts, no context needed.
func Mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

//hglint:ignore ctxflow bounded demo sweep, always runs exactly three starts
func TinySweep(h Heuristic) int {
	total := 0
	for i := 0; i < 3; i++ {
		total += h.Run(uint64(i))
	}
	return total
}
