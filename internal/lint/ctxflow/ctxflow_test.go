package ctxflow_test

import (
	"testing"

	"hgpart/internal/lint/ctxflow"
	"hgpart/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata", ctxflow.Analyzer,
		"hgpart/internal/eval",
		"other",
	)
}
