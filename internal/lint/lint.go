// Package lint registers the repository's determinism and reproducibility
// analyzers — the mechanical enforcement of the methodology's "make every
// implicit decision explicit" demand. cmd/hglint runs them; see each
// subpackage for what its analyzer enforces and DESIGN.md ("Static
// enforcement of reproducibility") for the policy rationale.
package lint

import (
	"hgpart/internal/lint/analysis"
	"hgpart/internal/lint/ctxflow"
	"hgpart/internal/lint/detrand"
	"hgpart/internal/lint/mapiter"
	"hgpart/internal/lint/panicdiscipline"
	"hgpart/internal/lint/seedflow"
)

// Analyzers returns every analyzer of the suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		mapiter.Analyzer,
		seedflow.Analyzer,
		panicdiscipline.Analyzer,
		ctxflow.Analyzer,
	}
}
